// Tests for the runtime layer: memory tracker protocol, metrics, the real
// in-situ runtime driving a mini-MD simulation, the virtual executor
// (cross-checked against the Eq 2-9 validator), and the post-processing
// pipeline.

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "insched/analysis/gyration.hpp"
#include "insched/analysis/msd.hpp"
#include "insched/analysis/error_norms.hpp"
#include "insched/analysis/rdf.hpp"
#include "insched/analysis/registry.hpp"
#include "insched/analysis/vorticity.hpp"
#include "insched/runtime/memory_tracker.hpp"
#include "insched/runtime/metrics.hpp"
#include "insched/runtime/postprocess.hpp"
#include "insched/runtime/runtime.hpp"
#include "insched/runtime/virtual_exec.hpp"
#include "insched/scheduler/placement.hpp"
#include "insched/scheduler/solver.hpp"
#include "insched/scheduler/validator.hpp"
#include "insched/sim/grid/sedov.hpp"
#include "insched/sim/particles/builders.hpp"
#include "insched/sim/particles/lj_md.hpp"
#include "insched/support/random.hpp"

namespace insched::runtime {
namespace {

TEST(MemoryTrackerProtocol, FollowsRecurrences) {
  // Mirror of the validator's hand-computed example: fm=10, im=1, cm=5,
  // om=3, steps {1..4}, analysis+output at steps 2 and 4.
  MemoryTracker tracker(1, 25.0);
  tracker.activate(0, 10.0);
  EXPECT_DOUBLE_EQ(tracker.current(0), 10.0);

  for (long step = 1; step <= 4; ++step) {
    tracker.begin_step(step);
    tracker.add_per_step(0, 1.0);
    const bool analysis = step == 2 || step == 4;
    if (analysis) {
      tracker.add_analysis(0, 5.0);
      tracker.add_output(0, 3.0);
    }
    tracker.commit_step();
    if (analysis) tracker.finish_output(0);
  }
  EXPECT_DOUBLE_EQ(tracker.peak(), 20.0);  // 11 + 1 + 5 + 3 at step 2
  EXPECT_EQ(tracker.peak_step(), 2);
  EXPECT_TRUE(tracker.within_budget());

  MemoryTracker tight(1, 15.0);
  tight.activate(0, 10.0);
  tight.begin_step(1);
  tight.add_per_step(0, 1.0);
  tight.add_analysis(0, 5.0);
  tight.commit_step();
  EXPECT_FALSE(tight.within_budget());
  EXPECT_EQ(tight.violations(), 1);
}

TEST(Metrics, AggregationAndRendering) {
  RunMetrics metrics;
  metrics.steps = 10;
  metrics.simulation_seconds = 100.0;
  AnalysisMetrics a;
  a.name = "rdf";
  a.setup_seconds = 1.0;
  a.per_step_seconds = 2.0;
  a.compute_seconds = 3.0;
  a.output_seconds = 4.0;
  metrics.analyses.push_back(a);
  EXPECT_DOUBLE_EQ(metrics.total_analysis_seconds(), 10.0);
  EXPECT_DOUBLE_EQ(metrics.visible_analysis_seconds(), 7.0);
  EXPECT_DOUBLE_EQ(metrics.utilization(20.0), 0.5);
  EXPECT_DOUBLE_EQ(metrics.overhead_fraction(), 0.1);
  EXPECT_NE(metrics.to_string().find("rdf"), std::string::npos);
}

TEST(MetricsRegistry, MergesConcurrentShards) {
  // Eight shard metrics folded in from four threads: counters add, the
  // per-analysis rows join by name, and peak memory takes the max.
  MetricsRegistry registry;
  auto shard = [](int index) {
    RunMetrics m;
    m.steps = 10;
    m.simulation_seconds = 1.5;
    m.peak_memory_bytes = 100.0 * (index + 1);
    AnalysisMetrics a;
    a.name = index % 2 == 0 ? "rdf" : "msd";
    a.analysis_steps = 2;
    a.compute_seconds = 0.25;
    m.analyses.push_back(a);
    return m;
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&registry, &shard, t] {
      registry.merge(shard(2 * t));
      registry.merge(shard(2 * t + 1));
    });
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(registry.merges(), 8);
  const RunMetrics total = registry.snapshot();
  EXPECT_EQ(total.steps, 80);
  EXPECT_DOUBLE_EQ(total.simulation_seconds, 12.0);
  EXPECT_DOUBLE_EQ(total.peak_memory_bytes, 800.0);
  ASSERT_EQ(total.analyses.size(), 2u);
  for (const AnalysisMetrics& a : total.analyses) {
    EXPECT_EQ(a.analysis_steps, 8);
    EXPECT_DOUBLE_EQ(a.compute_seconds, 1.0);
  }

  registry.reset();
  EXPECT_EQ(registry.merges(), 0);
  EXPECT_EQ(registry.snapshot().steps, 0);
}

TEST(Runtime, ExecutesScheduleOnRealSimulation) {
  sim::WaterIonsSpec spec;
  spec.molecules = 150;
  spec.hydronium_fraction = 0.05;
  spec.ion_fraction = 0.05;
  sim::LjSimulation md(sim::water_ions(spec), sim::MdParams{});
  md.minimize(50);
  md.thermalize(5);

  analysis::AnalysisRegistry registry;
  analysis::RdfConfig rdf_config;
  rdf_config.pairs = {{sim::Species::kHydronium, sim::Species::kWaterO}};
  registry.add(std::make_unique<analysis::RdfAnalysis>("A1", md.system(), rdf_config));
  analysis::MsdConfig msd_config;
  msd_config.group = {sim::Species::kIon};
  registry.add(std::make_unique<analysis::MsdAnalysis>("A4", md.system(), msd_config));

  // 30 steps, A1 every 10 (3x), A4 every 15 (2x), outputs at every analysis.
  scheduler::Schedule schedule(
      30, {scheduler::AnalysisSchedule{"A1", {10, 20, 30}, {10, 20, 30}},
           scheduler::AnalysisSchedule{"A4", {15, 30}, {30}}});

  RuntimeConfig config;
  config.storage = machine::StorageModel{.write_bw = 1e9, .read_bw = 1e9, .latency_s = 0.0};
  InsituRuntime runtime(md, registry, schedule, config);
  const RunMetrics metrics = runtime.run();

  EXPECT_EQ(metrics.steps, 30);
  EXPECT_EQ(md.current_step(), 30);
  ASSERT_EQ(metrics.analyses.size(), 2u);
  EXPECT_EQ(metrics.analyses[0].analysis_steps, 3);
  EXPECT_EQ(metrics.analyses[0].output_steps, 3);
  EXPECT_EQ(metrics.analyses[1].analysis_steps, 2);
  EXPECT_EQ(metrics.analyses[1].output_steps, 1);
  EXPECT_GT(metrics.simulation_seconds, 0.0);
  EXPECT_GT(metrics.analyses[0].compute_seconds, 0.0);
  EXPECT_GT(metrics.analyses[1].per_step_seconds, 0.0);  // MSD tracks every step
  EXPECT_GT(metrics.analyses[0].bytes_written, 0.0);
  EXPECT_GT(metrics.peak_memory_bytes, 0.0);
  EXPECT_EQ(metrics.memory_violations, 0);
}

TEST(Runtime, InactiveAnalysesNeverRun) {
  sim::WaterIonsSpec spec;
  spec.molecules = 60;
  sim::LjSimulation md(sim::water_ions(spec), sim::MdParams{});
  md.minimize(30);

  analysis::AnalysisRegistry registry;
  analysis::MsdConfig msd_config;
  msd_config.group = {sim::Species::kWaterO};
  registry.add(std::make_unique<analysis::MsdAnalysis>("idle", md.system(), msd_config));

  scheduler::Schedule schedule(5, {scheduler::AnalysisSchedule{"idle", {}, {}}});
  InsituRuntime runtime(md, registry, schedule, RuntimeConfig{});
  const RunMetrics metrics = runtime.run();
  EXPECT_EQ(metrics.analyses[0].analysis_steps, 0);
  EXPECT_DOUBLE_EQ(metrics.analyses[0].setup_seconds, 0.0);
  EXPECT_DOUBLE_EQ(metrics.analyses[0].per_step_seconds, 0.0);
  EXPECT_DOUBLE_EQ(metrics.peak_memory_bytes, 0.0);
}

// Property: the virtual executor and the validator implement the same
// recurrences, so their totals must agree exactly on any feasible schedule.
class VirtualVsValidator : public ::testing::TestWithParam<int> {};

TEST_P(VirtualVsValidator, TotalsAgree) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 6151u + 23u);
  scheduler::ScheduleProblem problem;
  problem.steps = rng.uniform_int(20, 120);
  problem.threshold_kind = scheduler::ThresholdKind::kTotalSeconds;
  problem.threshold = 1e9;
  problem.output_policy = scheduler::OutputPolicy::kOptimized;
  const int n = static_cast<int>(rng.uniform_int(1, 4));
  for (int i = 0; i < n; ++i) {
    scheduler::AnalysisParams a;
    a.name = "a" + std::to_string(i);
    a.ft = rng.uniform(0.0, 2.0);
    a.it = rng.uniform(0.0, 0.2);
    a.ct = rng.uniform(0.1, 3.0);
    a.ot = rng.uniform(0.0, 1.0);
    a.fm = rng.uniform(0.0, 10.0);
    a.im = rng.uniform(0.0, 1.0);
    a.cm = rng.uniform(0.0, 5.0);
    a.om = rng.uniform(0.0, 5.0);
    a.itv = rng.uniform_int(1, 10);
    problem.analyses.push_back(a);
  }

  // Random feasible counts placed on the timeline.
  scheduler::PlacementRequest request;
  for (int i = 0; i < n; ++i) {
    const long maxc = problem.max_analysis_steps(static_cast<std::size_t>(i));
    const long c = rng.uniform_int(0, maxc);
    request.analysis_counts.push_back(c);
    request.output_counts.push_back(c > 0 ? rng.uniform_int(0, c) : 0);
  }
  const scheduler::Schedule schedule = scheduler::place(problem, request);

  const scheduler::ValidationReport expected = scheduler::validate_schedule(problem, schedule);
  VirtualExecConfig config;
  config.sim_time_per_step = rng.uniform(0.1, 2.0);
  const VirtualRunReport actual = virtual_execute(problem, schedule, config);

  EXPECT_NEAR(actual.metrics.total_analysis_seconds(), expected.total_analysis_time, 1e-9);
  EXPECT_NEAR(actual.metrics.peak_memory_bytes, expected.peak_memory, 1e-9);
  for (std::size_t i = 0; i < problem.size(); ++i) {
    EXPECT_NEAR(actual.metrics.analyses[i].total_seconds(),
                expected.breakdown[i].total(), 1e-9);
    EXPECT_NEAR(actual.metrics.analyses[i].visible_seconds(),
                expected.breakdown[i].visible(), 1e-9);
  }
  // Per-step series sums to simulation + analyses (+ no sim output here).
  double series_total = 0.0;
  for (double s : actual.step_seconds) series_total += s;
  EXPECT_NEAR(series_total + actual.metrics.analyses.size() * 0.0,
              actual.metrics.simulation_seconds +
                  actual.metrics.total_analysis_seconds() -
                  [&] {
                    double setup = 0.0;
                    for (const auto& a : actual.metrics.analyses) setup += a.setup_seconds;
                    return setup;
                  }(),
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, VirtualVsValidator, ::testing::Range(0, 25));

TEST(VirtualExec, SimulationOutputChargedAtInterval) {
  scheduler::ScheduleProblem problem;
  problem.steps = 10;
  problem.threshold_kind = scheduler::ThresholdKind::kTotalSeconds;
  problem.threshold = 100.0;
  problem.analyses.push_back(scheduler::AnalysisParams{.name = "a", .ct = 0.5, .ot = 0.0,
                                                       .itv = 1});
  const scheduler::Schedule schedule =
      scheduler::place(problem, scheduler::PlacementRequest{{2}, {2}});
  VirtualExecConfig config;
  config.sim_time_per_step = 1.0;
  config.sim_output_bytes_per_step = 100.0;
  config.sim_output_interval = 5;
  config.write_bw = 50.0;
  const VirtualRunReport report = virtual_execute(problem, schedule, config);
  EXPECT_DOUBLE_EQ(report.sim_output_seconds, 4.0);  // 2 outputs x 2 s
  EXPECT_DOUBLE_EQ(report.metrics.simulation_seconds, 10.0);
  EXPECT_NEAR(report.end_to_end_seconds, 10.0 + 1.0 + 4.0, 1e-12);
}

TEST(Postprocess, RealPipelineRoundTrips) {
  RealPipelineSpec spec;
  spec.molecules = 120;
  spec.steps = 60;
  spec.output_interval = 20;
  spec.analysis_interval = 20;
  const PostprocessComparison cmp = run_real(spec);
  EXPECT_EQ(cmp.frames, 3);
  EXPECT_GT(cmp.atoms, 120u);
  EXPECT_GT(cmp.write_seconds, 0.0);
  EXPECT_GT(cmp.read_seconds, 0.0);
  EXPECT_GT(cmp.postprocess_seconds, 0.0);
  EXPECT_GT(cmp.insitu_seconds, 0.0);
}

TEST(Postprocess, ModeledTable4Shape) {
  ModeledPipelineSpec spec;
  spec.atoms = 100352;
  spec.analysis_site = machine::workstation();
  spec.simulation_site = machine::mira_partition(1024);
  const PostprocessComparison cmp = model(spec);
  // The paper's Table-4 ordering: read >> serial analysis >> in-situ.
  EXPECT_GT(cmp.read_seconds, cmp.postprocess_seconds);
  EXPECT_GT(cmp.postprocess_seconds, cmp.insitu_seconds);
  EXPECT_GT(cmp.speedup(), 100.0);
}

TEST(Postprocess, ModeledReadGrowsWithAtoms) {
  ModeledPipelineSpec small;
  small.atoms = 12544;
  small.analysis_site = machine::workstation();
  small.simulation_site = machine::mira_partition(1024);
  ModeledPipelineSpec large = small;
  large.atoms = 100352;
  EXPECT_GT(model(large).read_seconds, model(small).read_seconds * 7.0);
}


TEST(Runtime, DrivesGridSimulationWithDiagnostics) {
  // FLASH-like path through the real runtime: Euler/Sedov with scheduled
  // vorticity + L1 norm diagnostics.
  sim::EulerSolver solver(sim::GridGeometry{16, 1.0}, sim::EulerParams{});
  sim::SedovSpec blast;
  sim::initialize_sedov(solver, blast);
  const sim::SedovReference reference(blast, solver.params().gamma);

  analysis::AnalysisRegistry registry;
  registry.add(std::make_unique<analysis::VorticityAnalysis>("F1", solver));
  registry.add(std::make_unique<analysis::ErrorNormAnalysis>(
      "F2", solver, reference, analysis::NormKind::kL1DensityPressure));

  scheduler::Schedule schedule(
      20, {scheduler::AnalysisSchedule{"F1", {10, 20}, {10, 20}},
           scheduler::AnalysisSchedule{"F2", {5, 10, 15, 20}, {20}}});
  RuntimeConfig config;
  config.storage = machine::StorageModel{.write_bw = 1e9, .read_bw = 1e9, .latency_s = 0.0};
  InsituRuntime runtime(solver, registry, schedule, config);
  const RunMetrics metrics = runtime.run();
  EXPECT_EQ(solver.current_step(), 20);
  EXPECT_EQ(metrics.analyses[0].analysis_steps, 2);
  EXPECT_EQ(metrics.analyses[1].analysis_steps, 4);
  EXPECT_GT(metrics.analyses[0].bytes_written, 0.0);  // vorticity field flushed
  EXPECT_GT(metrics.simulation_seconds, 0.0);
  EXPECT_EQ(metrics.memory_violations, 0);
}


TEST(Runtime, AsyncOutputHidesWriteTimeBehindSimulation) {
  // Heavy modeled writes (1 s each at 1 B/s bandwidth... use bytes/bw to get
  // a controlled debt) against slow sim steps: async mode must not charge
  // the write time to the analysis, and the debt must drain.
  sim::WaterIonsSpec spec;
  spec.molecules = 120;
  sim::LjSimulation md(sim::water_ions(spec), sim::MdParams{});
  md.minimize(40);

  analysis::AnalysisRegistry blocking_reg, async_reg;
  analysis::MsdConfig config;
  config.group = {sim::Species::kWaterO};
  blocking_reg.add(std::make_unique<analysis::MsdAnalysis>("m", md.system(), config));
  async_reg.add(std::make_unique<analysis::MsdAnalysis>("m", md.system(), config));

  scheduler::Schedule schedule(
      12, {scheduler::AnalysisSchedule{"m", {4, 8, 12}, {4, 8, 12}}});

  RuntimeConfig blocking;
  blocking.storage = machine::StorageModel{.write_bw = 100.0, .read_bw = 100.0,
                                           .latency_s = 0.0};  // very slow store
  RuntimeConfig async = blocking;
  async.async_output = true;

  sim::LjSimulation md2(md.system(), sim::MdParams{});  // same state, fresh engine
  const RunMetrics b = InsituRuntime(md, blocking_reg, schedule, blocking).run();
  const RunMetrics a = InsituRuntime(md2, async_reg, schedule, async).run();

  // Blocking charges the modeled write to the analysis; async does not.
  EXPECT_GT(b.analyses[0].output_seconds, a.analyses[0].output_seconds);
  EXPECT_GT(a.async_output_seconds, 0.0);
  EXPECT_DOUBLE_EQ(b.async_output_seconds, 0.0);
  // Conservation: issued async time = hidden + drained remainder.
  EXPECT_LE(a.async_drain_seconds, a.async_output_seconds + 1e-12);
}

namespace {

/// Synthetic analysis that records its lifecycle calls — used to verify the
/// runtime follows an arbitrary schedule exactly without kernel cost.
class CountingAnalysis final : public analysis::IAnalysis {
 public:
  explicit CountingAnalysis(std::string name) : name_(std::move(name)) {}
  [[nodiscard]] std::string name() const override { return name_; }
  void setup() override { ++setups; }
  void per_step() override { ++per_steps; }
  analysis::AnalysisResult analyze() override {
    ++analyzes;
    return {};
  }
  double output() override {
    ++outputs;
    return 64.0;
  }
  int setups = 0, per_steps = 0, analyzes = 0, outputs = 0;

 private:
  std::string name_;
};

/// No-op simulation for schedule-conformance tests.
class NullSimulation final : public sim::ISimulation {
 public:
  void step() override { ++step_; }
  [[nodiscard]] long current_step() const noexcept override { return step_; }
  [[nodiscard]] double output_frame_bytes() const noexcept override { return 0.0; }
  [[nodiscard]] std::string name() const override { return "null"; }

 private:
  long step_ = 0;
};

}  // namespace

class RuntimeConformance : public ::testing::TestWithParam<int> {};

TEST_P(RuntimeConformance, FollowsArbitrarySchedulesExactly) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7481u + 5u);
  const long steps = rng.uniform_int(10, 80);
  const int n = static_cast<int>(rng.uniform_int(1, 4));

  std::vector<scheduler::AnalysisSchedule> schedules;
  analysis::AnalysisRegistry registry;
  std::vector<CountingAnalysis*> counters;
  for (int i = 0; i < n; ++i) {
    scheduler::AnalysisSchedule s;
    s.name = "count" + std::to_string(i);
    for (long step = 1; step <= steps; ++step)
      if (rng.bernoulli(0.3)) s.analysis_steps.push_back(step);
    for (long a : s.analysis_steps)
      if (rng.bernoulli(0.4)) s.output_steps.push_back(a);
    auto counter = std::make_unique<CountingAnalysis>(s.name);
    counters.push_back(counter.get());
    registry.add(std::move(counter));
    schedules.push_back(std::move(s));
  }
  const scheduler::Schedule schedule(steps, schedules);

  NullSimulation sim;
  InsituRuntime runtime(sim, registry, schedule, RuntimeConfig{});
  const RunMetrics metrics = runtime.run();

  EXPECT_EQ(sim.current_step(), steps);
  for (int i = 0; i < n; ++i) {
    const auto& s = schedule.analysis(static_cast<std::size_t>(i));
    const bool active = s.active();
    EXPECT_EQ(counters[static_cast<std::size_t>(i)]->setups, active ? 1 : 0);
    EXPECT_EQ(counters[static_cast<std::size_t>(i)]->per_steps, active ? steps : 0);
    EXPECT_EQ(counters[static_cast<std::size_t>(i)]->analyzes, s.analysis_count());
    EXPECT_EQ(counters[static_cast<std::size_t>(i)]->outputs, s.output_count());
    EXPECT_EQ(metrics.analyses[static_cast<std::size_t>(i)].analysis_steps,
              s.analysis_count());
    EXPECT_EQ(metrics.analyses[static_cast<std::size_t>(i)].output_steps, s.output_count());
    if (s.output_count() > 0) {
      EXPECT_DOUBLE_EQ(metrics.analyses[static_cast<std::size_t>(i)].bytes_written,
                       64.0 * s.output_count());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RuntimeConformance, ::testing::Range(0, 20));
}  // namespace
}  // namespace insched::runtime
