// Tests for the numerical-resilience and failure-recovery layer
// (docs/ROBUSTNESS.md): the deterministic fault-injection harness, the LP
// recovery ladder, MIP-level retries and deterministic limits, scheduler
// graceful degradation to the greedy fallback, runtime failure policies,
// and the cut-pool / presolve robustness edge cases.
//
// The staircase sweeps re-solve the three case-study MILPs with an LU or
// pivot fault injected at every event index in turn and assert the known
// optima (water 63, rhodopsin 78, flash 150) still come out, with the
// recovery counters showing the ladder actually ran.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include "insched/analysis/msd.hpp"
#include "insched/analysis/rdf.hpp"
#include "insched/analysis/registry.hpp"
#include "insched/casestudy/flash_sedov.hpp"
#include "insched/casestudy/lammps_rhodo.hpp"
#include "insched/casestudy/lammps_water.hpp"
#include "insched/lp/presolve.hpp"
#include "insched/lp/simplex.hpp"
#include "insched/mip/branch_and_bound.hpp"
#include "insched/mip/cut_pool.hpp"
#include "insched/runtime/runtime.hpp"
#include "insched/scheduler/solver.hpp"
#include "insched/scheduler/timeexp_milp.hpp"
#include "insched/sim/particles/builders.hpp"
#include "insched/sim/particles/lj_md.hpp"
#include "insched/support/fault_inject.hpp"

namespace insched {
namespace {

// ---------------------------------------------------------------------------
// Fault harness semantics.

TEST(FaultSpec, ArmFromSpecParsesValidSpecs) {
  EXPECT_TRUE(fault::arm_from_spec(""));  // empty spec arms nothing
  EXPECT_FALSE(fault::enabled());
  EXPECT_TRUE(fault::arm_from_spec("lu_factorize:2"));
  EXPECT_TRUE(fault::enabled());
  EXPECT_TRUE(fault::arm_from_spec("lu_ftran:1:3,dual_pivot:5"));
  fault::disarm_all();
  fault::reset_counts();
  EXPECT_FALSE(fault::enabled());
}

TEST(FaultSpec, ArmFromSpecRejectsMalformedSpecs) {
  EXPECT_FALSE(fault::arm_from_spec("bogus_hook:1"));
  EXPECT_FALSE(fault::arm_from_spec("lu_ftran"));      // missing event index
  EXPECT_FALSE(fault::arm_from_spec("lu_ftran:abc"));  // non-numeric index
  EXPECT_FALSE(fault::enabled());
  fault::disarm_all();
  fault::reset_counts();
}

TEST(FaultSpec, ShouldFailCoversExactlyTheArmedWindow) {
  fault::arm(fault::Hook::kDualPivot, 2, 2);  // events 2 and 3 fail
  EXPECT_FALSE(fault::should_fail(fault::Hook::kDualPivot));  // event 1
  EXPECT_TRUE(fault::should_fail(fault::Hook::kDualPivot));   // event 2
  EXPECT_TRUE(fault::should_fail(fault::Hook::kDualPivot));   // event 3
  EXPECT_FALSE(fault::should_fail(fault::Hook::kDualPivot));  // window spent
  EXPECT_EQ(fault::injected(fault::Hook::kDualPivot), 2);
  fault::disarm_all();
  fault::reset_counts();
}

TEST(FaultSpec, ScopedFaultDisarmsOnExit) {
  {
    fault::ScopedFault f(fault::Hook::kLuBtran, 1);
    EXPECT_TRUE(fault::enabled());
  }
  EXPECT_FALSE(fault::enabled());
  EXPECT_EQ(fault::events(fault::Hook::kLuBtran), 0);  // counters reset too
}

// ---------------------------------------------------------------------------
// LP recovery ladder.

lp::Model small_lp() {
  // max x + 2y  s.t.  x + y <= 4, y <= 3, 0 <= x,y <= 10.
  lp::Model m;
  const int x = m.add_column("x", 0.0, 10.0, 1.0);
  const int y = m.add_column("y", 0.0, 10.0, 2.0);
  m.add_row("sum", lp::RowType::kLe, 4.0, {{x, 1.0}, {y, 1.0}});
  m.add_row("cap", lp::RowType::kLe, 3.0, {{y, 1.0}});
  m.set_sense(lp::Sense::kMaximize);
  return m;
}

TEST(LpRecovery, CleanRunEmitsCountableEvents) {
  fault::ScopedCounting counting;
  const lp::SimplexResult res = lp::solve_lp(small_lp());
  ASSERT_TRUE(res.optimal());
  EXPECT_EQ(res.recovery.total(), 0);  // nothing injected, nothing recovered
  EXPECT_GE(fault::events(fault::Hook::kLuFactorize), 1);
}

TEST(LpRecovery, SurvivesSingularInitialFactorization) {
  // One injected singularity on the trivial slack basis: the tightened-tau
  // rung re-factorizes and the solve proceeds normally.
  fault::ScopedFault f(fault::Hook::kLuFactorize, 1);
  const lp::SimplexResult res = lp::solve_lp(small_lp());
  ASSERT_TRUE(res.optimal());
  EXPECT_NEAR(res.objective, 7.0, 1e-6);  // x=1, y=3
  EXPECT_GT(res.recovery.refactor_tightened, 0);
}

TEST(LpRecovery, RepeatedSingularityTriggersSlackRepair) {
  // Refactorize after every pivot so a mid-solve basis (which contains
  // structural columns) hits the fault window: both tightened-tau retries
  // fail too, forcing the slack-substitution rung.
  lp::SimplexOptions options;
  options.refactor_interval = 1;
  fault::ScopedFault f(fault::Hook::kLuFactorize, 2, 3);
  const lp::SimplexResult res = lp::solve_lp(small_lp(), options);
  ASSERT_TRUE(res.optimal());
  EXPECT_NEAR(res.objective, 7.0, 1e-6);
  EXPECT_GT(res.recovery.total(), 0);
  EXPECT_GT(res.recovery.refactor_tightened, 0);
}

TEST(LpRecovery, FtranCorruptionNeverCorruptsTheAnswer) {
  // Sweep the fault over every FTRAN event of the clean solve: whichever
  // call is corrupted, the result must stay exactly optimal, and at least
  // one index must trip the residual detector (drifts that would have
  // poisoned x get caught; inconsequential ones need no recovery).
  long events = 0;
  {
    fault::ScopedCounting counting;
    const lp::SimplexResult clean = lp::solve_lp(small_lp());
    ASSERT_TRUE(clean.optimal());
    events = fault::events(fault::Hook::kLuFtran);
  }
  fault::reset_counts();
  ASSERT_GT(events, 0);
  long recovered = 0;
  for (long nth = 1; nth <= events; ++nth) {
    fault::ScopedFault f(fault::Hook::kLuFtran, nth);
    const lp::SimplexResult res = lp::solve_lp(small_lp());
    ASSERT_TRUE(res.optimal()) << "ftran fault at event " << nth;
    EXPECT_NEAR(res.objective, 7.0, 1e-6) << "ftran fault at event " << nth;
    recovered += res.recovery.total();
  }
  EXPECT_GT(recovered, 0);
}

TEST(LpRecovery, DisabledLadderFailsInsteadOfRecovering) {
  fault::ScopedFault f(fault::Hook::kLuFactorize, 1, 64);
  lp::SimplexOptions options;
  options.enable_recovery = false;
  const lp::SimplexResult res = lp::solve_lp(small_lp(), options);
  EXPECT_FALSE(res.optimal());
  EXPECT_EQ(res.recovery.total(), 0);
}

// ---------------------------------------------------------------------------
// Case-study staircase sweeps (the acceptance gate): with a fault injected
// at every event index in turn, the bench-config MILPs still reach their
// known optima and the recovery counters are nonzero.

struct Staircase {
  const char* name;
  lp::Model model;
  double optimum;
};

scheduler::ScheduleProblem staircase_problem(scheduler::ScheduleProblem p,
                                             double weight_scale) {
  // Mirrors bench/solver_perf.cpp run_staircase_mip: steps=500, itv=25,
  // unconstrained memory, scaled weights.
  p.steps = 500;
  p.mth = scheduler::kNoLimit;
  for (auto& a : p.analyses) {
    a.itv = std::max<long>(1, p.steps / 20);
    a.weight *= weight_scale;
  }
  return p;
}

std::vector<Staircase> staircases() {
  std::vector<Staircase> out;
  out.push_back({"water",
                 scheduler::build_time_expanded_milp(
                     staircase_problem(casestudy::water_ions_problem(16384, 0.08), 1.0))
                     .model,
                 63.0});
  out.push_back({"rhodo",
                 scheduler::build_time_expanded_milp(
                     staircase_problem(casestudy::rhodopsin_problem(100.0), 3.0))
                     .model,
                 78.0});
  out.push_back({"flash",
                 scheduler::build_time_expanded_milp(
                     staircase_problem(casestudy::flash_problem({2.0, 1.0, 2.0}, 0.08), 3.0))
                     .model,
                 150.0});
  return out;
}

mip::MipOptions staircase_options() {
  mip::MipOptions opt;
  opt.threads = 1;
  opt.max_nodes = 512;
  opt.time_limit_s = 120.0;
  // A long refactorization interval keeps the LU event stream short enough
  // to sweep exhaustively without changing what the solver computes.
  opt.lp.refactor_interval = 1024;
  return opt;
}

void sweep_hook(const Staircase& cs, fault::Hook hook) {
  // Clean run under a counting scope: establishes the optimum and the event
  // stream length for this exact configuration (threads=1, deterministic).
  long events = 0;
  {
    fault::ScopedCounting counting;
    const mip::MipResult clean = mip::solve_mip(cs.model, staircase_options());
    ASSERT_TRUE(clean.has_solution) << cs.name;
    EXPECT_NEAR(clean.objective, cs.optimum, 1e-6) << cs.name;
    events = fault::events(hook);
  }
  fault::reset_counts();
  ASSERT_GT(events, 0) << cs.name << ": hook " << fault::to_string(hook)
                       << " never fired on a clean run";

  long injected_total = 0;
  for (long nth = 1; nth <= events; ++nth) {
    fault::ScopedFault f(hook, nth);
    const mip::MipResult res = mip::solve_mip(cs.model, staircase_options());
    injected_total += fault::injected(hook);
    ASSERT_TRUE(res.has_solution)
        << cs.name << ": no incumbent with " << fault::to_string(hook) << ":" << nth;
    EXPECT_NEAR(res.objective, cs.optimum, 1e-6)
        << cs.name << ": wrong optimum with " << fault::to_string(hook) << ":" << nth;
    if (fault::injected(hook) > 0) {
      EXPECT_GT(res.counters.recoveries() + res.counters.lp_recover_residual, 0)
          << cs.name << ": fault " << fault::to_string(hook) << ":" << nth
          << " injected but no recovery counted";
    }
  }
  EXPECT_GT(injected_total, 0) << cs.name;
}

TEST(StaircaseRecovery, WaterSurvivesLuSingularityAtEveryEvent) {
  sweep_hook(staircases()[0], fault::Hook::kLuFactorize);
}

TEST(StaircaseRecovery, RhodoSurvivesLuSingularityAtEveryEvent) {
  sweep_hook(staircases()[1], fault::Hook::kLuFactorize);
}

TEST(StaircaseRecovery, FlashSurvivesLuSingularityAtEveryEvent) {
  sweep_hook(staircases()[2], fault::Hook::kLuFactorize);
}

TEST(StaircaseRecovery, WaterSurvivesPivotFailureAtEveryEvent) {
  sweep_hook(staircases()[0], fault::Hook::kDualPivot);
}

TEST(StaircaseRecovery, RhodoSurvivesPivotFailureAtEveryEvent) {
  sweep_hook(staircases()[1], fault::Hook::kDualPivot);
}

TEST(StaircaseRecovery, FlashSurvivesPivotFailureAtEveryEvent) {
  sweep_hook(staircases()[2], fault::Hook::kDualPivot);
}

// ---------------------------------------------------------------------------
// MIP-level limits and fault-spec plumbing.

TEST(MipLimits, WorkLimitTerminatesDeterministically) {
  const Staircase cs = staircases()[2];  // flash: fastest of the three
  mip::MipOptions opt = staircase_options();
  opt.max_lp_iterations = 1;  // exhausted by the root LP alone
  const mip::MipResult res = mip::solve_mip(cs.model, opt);
  EXPECT_EQ(res.termination, mip::MipTermination::kWorkLimit);
  EXPECT_TRUE(res.truncated());
  // The root heuristic still provides an incumbent with a certified gap.
  if (res.has_solution) {
    EXPECT_GE(res.gap(), 0.0);
  }
}

TEST(MipLimits, FaultSpecOptionArmsTheHarness) {
  const Staircase cs = staircases()[2];
  mip::MipOptions opt = staircase_options();
  opt.fault_spec = "lu_factorize:1";
  const mip::MipResult res = mip::solve_mip(cs.model, opt);
  ASSERT_TRUE(res.has_solution);
  EXPECT_NEAR(res.objective, cs.optimum, 1e-6);
  EXPECT_GT(res.counters.recoveries(), 0);
  EXPECT_FALSE(fault::enabled());  // single-shot: disarmed after firing
  fault::reset_counts();
}

TEST(MipLimits, MalformedFaultSpecIsIgnored) {
  mip::MipOptions opt = staircase_options();
  opt.fault_spec = "not_a_hook:1";
  const mip::MipResult res = mip::solve_mip(staircases()[2].model, opt);
  EXPECT_TRUE(res.has_solution);  // solve proceeds un-faulted
  fault::disarm_all();
  fault::reset_counts();
}

// ---------------------------------------------------------------------------
// Scheduler graceful degradation.

scheduler::ScheduleProblem tiny_problem() {
  scheduler::ScheduleProblem p;
  p.steps = 40;
  p.sim_time_per_step = 1.0;
  p.threshold = 0.2;
  p.threshold_kind = scheduler::ThresholdKind::kFractionOfSimTime;
  scheduler::AnalysisParams a;
  a.name = "a1";
  a.ct = 1.0;
  a.itv = 4;
  p.analyses.push_back(a);
  scheduler::AnalysisParams b;
  b.name = "a2";
  b.ct = 2.0;
  b.itv = 8;
  p.analyses.push_back(b);
  return p;
}

TEST(Degradation, ZeroTimeLimitFallsBackToGreedy) {
  scheduler::SolveOptions options;
  options.mip.time_limit_s = 0.0;  // budget exhausted before the MILP exists
  const scheduler::ScheduleSolution sol =
      scheduler::solve_schedule(tiny_problem(), options);
  ASSERT_TRUE(sol.solved);
  EXPECT_TRUE(sol.degraded);
  EXPECT_TRUE(sol.diagnostics.degraded);
  EXPECT_FALSE(sol.proven_optimal);
  EXPECT_EQ(sol.diagnostics.failure, scheduler::FailureClass::kTimeLimit);
  EXPECT_TRUE(sol.validation.feasible);  // greedy fallback is validated
  EXPECT_GT(sol.schedule.total_analysis_steps(), 0);
}

TEST(Degradation, ZeroTimeLimitWithoutFallbackReportsFailure) {
  scheduler::SolveOptions options;
  options.mip.time_limit_s = 0.0;
  options.fallback_to_greedy = false;
  const scheduler::ScheduleSolution sol =
      scheduler::solve_schedule(tiny_problem(), options);
  EXPECT_FALSE(sol.solved);
  EXPECT_FALSE(sol.degraded);
  EXPECT_EQ(sol.diagnostics.failure, scheduler::FailureClass::kTimeLimit);
  EXPECT_FALSE(sol.diagnostics.message.empty());
}

TEST(Degradation, CleanSolveReportsNoFailure) {
  const scheduler::ScheduleSolution sol = scheduler::solve_schedule(tiny_problem());
  ASSERT_TRUE(sol.solved);
  EXPECT_FALSE(sol.degraded);
  EXPECT_EQ(sol.diagnostics.failure, scheduler::FailureClass::kNone);
  EXPECT_EQ(sol.diagnostics.resolve_attempts, 0);
}

TEST(Degradation, FaultySolveStillValidatesAndCountsRecoveries) {
  scheduler::SolveOptions options;
  options.formulation = scheduler::Formulation::kTimeExpanded;
  options.mip.threads = 1;
  options.mip.fault_spec = "lu_factorize:1";
  const scheduler::ScheduleSolution sol =
      scheduler::solve_schedule(tiny_problem(), options);
  ASSERT_TRUE(sol.solved);
  EXPECT_TRUE(sol.validation.feasible);
  EXPECT_GT(sol.diagnostics.recoveries, 0);
  fault::disarm_all();
  fault::reset_counts();
}

// ---------------------------------------------------------------------------
// Runtime failure policies.

struct RuntimeFixture {
  std::unique_ptr<sim::LjSimulation> md;
  analysis::AnalysisRegistry registry;
  scheduler::Schedule schedule{0, {}};

  RuntimeFixture() {
    sim::WaterIonsSpec spec;
    spec.molecules = 120;
    spec.hydronium_fraction = 0.05;
    spec.ion_fraction = 0.05;
    md = std::make_unique<sim::LjSimulation>(sim::water_ions(spec), sim::MdParams{});
    md->minimize(30);
    md->thermalize(3);
    analysis::RdfConfig rdf_config;
    rdf_config.pairs = {{sim::Species::kHydronium, sim::Species::kWaterO}};
    registry.add(
        std::make_unique<analysis::RdfAnalysis>("A1", md->system(), rdf_config));
    analysis::MsdConfig msd_config;
    msd_config.group = {sim::Species::kIon};
    registry.add(std::make_unique<analysis::MsdAnalysis>("A4", md->system(), msd_config));
    // 20 steps, A1 analyses+outputs at 5/10/15/20, A4 at 10/20.
    schedule = scheduler::Schedule(
        20, {scheduler::AnalysisSchedule{"A1", {5, 10, 15, 20}, {5, 10, 15, 20}},
             scheduler::AnalysisSchedule{"A4", {10, 20}, {20}}});
  }
};

TEST(RuntimePolicy, SkipAndLogDropsTheFailedStepOnly) {
  RuntimeFixture fix;
  fault::ScopedFault f(fault::Hook::kRuntimeAnalyze, 1);
  runtime::InsituRuntime rt(*fix.md, fix.registry, fix.schedule, {});
  const runtime::RunMetrics metrics = rt.run();
  EXPECT_EQ(metrics.analysis_failures, 1);
  EXPECT_EQ(metrics.analyses_disabled, 0);
  // A1's first analysis step (step 5) failed; the other three still ran.
  EXPECT_EQ(metrics.analyses[0].failures, 1);
  EXPECT_EQ(metrics.analyses[0].analysis_steps, 3);
  EXPECT_EQ(metrics.analyses[1].analysis_steps, 2);  // A4 untouched
}

TEST(RuntimePolicy, DisableAnalysisTurnsTheOffenderOff) {
  RuntimeFixture fix;
  fault::ScopedFault f(fault::Hook::kRuntimeAnalyze, 1);
  runtime::RuntimeConfig config;
  config.on_analysis_failure = runtime::FailurePolicy::kDisableAnalysis;
  runtime::InsituRuntime rt(*fix.md, fix.registry, fix.schedule, config);
  const runtime::RunMetrics metrics = rt.run();
  EXPECT_EQ(metrics.analysis_failures, 1);
  EXPECT_EQ(metrics.analyses_disabled, 1);
  EXPECT_TRUE(metrics.analyses[0].disabled);
  EXPECT_EQ(metrics.analyses[0].analysis_steps, 0);   // never ran again
  EXPECT_EQ(metrics.analyses[1].analysis_steps, 2);   // A4 unaffected
  EXPECT_EQ(metrics.steps, 20);                       // simulation completed
}

TEST(RuntimePolicy, AbortPropagatesTheException) {
  RuntimeFixture fix;
  fault::ScopedFault f(fault::Hook::kRuntimeAnalyze, 1);
  runtime::RuntimeConfig config;
  config.on_analysis_failure = runtime::FailurePolicy::kAbort;
  runtime::InsituRuntime rt(*fix.md, fix.registry, fix.schedule, config);
  EXPECT_THROW(rt.run(), std::runtime_error);
}

TEST(RuntimePolicy, OutputFailureIsDroppedNotFatal) {
  RuntimeFixture fix;
  fault::ScopedFault f(fault::Hook::kRuntimeOutput, 1);
  runtime::InsituRuntime rt(*fix.md, fix.registry, fix.schedule, {});
  const runtime::RunMetrics metrics = rt.run();
  EXPECT_EQ(metrics.analysis_failures, 1);
  // The failed flush is dropped: one fewer output than scheduled, but the
  // analysis work itself completed.
  EXPECT_EQ(metrics.analyses[0].output_steps, 3);
  EXPECT_EQ(metrics.analyses[0].analysis_steps, 4);
}

TEST(RuntimePolicy, MemoryOverrunSkipAndLogCountsEveryViolation) {
  RuntimeFixture fix;
  runtime::RuntimeConfig config;
  config.memory_budget = 1.0;  // one byte: every committed step violates
  runtime::InsituRuntime rt(*fix.md, fix.registry, fix.schedule, config);
  const runtime::RunMetrics metrics = rt.run();
  EXPECT_GT(metrics.memory_overruns, 0);
  EXPECT_EQ(metrics.analyses_disabled, 0);
  EXPECT_EQ(metrics.steps, 20);
}

TEST(RuntimePolicy, MemoryOverrunDisableShedsTheLargestAnalysis) {
  RuntimeFixture fix;
  runtime::RuntimeConfig config;
  config.memory_budget = 1.0;
  config.on_memory_overrun = runtime::FailurePolicy::kDisableAnalysis;
  runtime::InsituRuntime rt(*fix.md, fix.registry, fix.schedule, config);
  const runtime::RunMetrics metrics = rt.run();
  EXPECT_GE(metrics.analyses_disabled, 1);
  EXPECT_EQ(metrics.steps, 20);  // the simulation itself is never sacrificed
}

TEST(RuntimePolicy, MemoryOverrunAbortThrows) {
  RuntimeFixture fix;
  runtime::RuntimeConfig config;
  config.memory_budget = 1.0;
  config.on_memory_overrun = runtime::FailurePolicy::kAbort;
  runtime::InsituRuntime rt(*fix.md, fix.registry, fix.schedule, config);
  EXPECT_THROW(rt.run(), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Cut-pool capacity (satellite: aging at capacity).

mip::Cut make_cut(int col_a, int col_b, double rhs) {
  mip::Cut cut;
  cut.type = lp::RowType::kLe;
  cut.family = mip::CutFamily::kCover;
  cut.rhs = rhs;
  cut.entries = {{col_a, 1.0}, {col_b, 1.0}};
  cut.violation = 0.5;
  return cut;
}

TEST(CutPoolCapacity, EvictsTheStalestEntryAtCapacity) {
  mip::CutPool pool(/*max_age=*/8, /*capacity=*/2);
  ASSERT_TRUE(pool.add(make_cut(0, 1, 1.0)));
  ASSERT_TRUE(pool.add(make_cut(0, 2, 1.0)));
  EXPECT_EQ(pool.size(), 2);
  // Age the residents: x satisfies both cuts, so select() applies nothing.
  const std::vector<double> x = {0.0, 0.0, 0.0, 0.0};
  EXPECT_TRUE(pool.select(x, 8).empty());
  // A third cut displaces the stalest resident instead of growing the pool.
  ASSERT_TRUE(pool.add(make_cut(0, 3, 1.0)));
  EXPECT_EQ(pool.size(), 2);
  EXPECT_EQ(pool.counters().evicted, 1);
}

TEST(CutPoolCapacity, AgingStillWorksAtCapacity) {
  mip::CutPool pool(/*max_age=*/2, /*capacity=*/2);
  ASSERT_TRUE(pool.add(make_cut(0, 1, 1.0)));
  ASSERT_TRUE(pool.add(make_cut(0, 2, 1.0)));
  const std::vector<double> x = {0.0, 0.0, 0.0};
  for (int round = 0; round < 3; ++round) EXPECT_TRUE(pool.select(x, 8).empty());
  EXPECT_EQ(pool.size(), 0);  // both aged out despite the capacity cap
  EXPECT_GE(pool.counters().aged_out, 2L);
  EXPECT_EQ(pool.counters().evicted, 0);
}

TEST(CutPoolCapacity, UnboundedPoolNeverEvicts) {
  mip::CutPool pool(/*max_age=*/8, /*capacity=*/0);
  for (int j = 1; j <= 16; ++j) ASSERT_TRUE(pool.add(make_cut(0, j, 1.0)));
  EXPECT_EQ(pool.size(), 16);
  EXPECT_EQ(pool.counters().evicted, 0);
}

// ---------------------------------------------------------------------------
// Presolve restore edge cases (satellite: fully-fixed / empty reductions).

TEST(PresolveRestore, FullyFixedModelRestoresFromEmptySolution) {
  lp::Model m;
  m.add_column("x", 2.0, 2.0, 1.0);   // fixed at 2
  m.add_column("y", -1.0, -1.0, 1.0); // fixed at -1
  m.add_row("r", lp::RowType::kLe, 5.0, {{0, 1.0}, {1, 1.0}});
  const lp::PresolveResult pre = lp::presolve(m);
  ASSERT_FALSE(pre.infeasible);
  EXPECT_EQ(pre.removed_columns, 2);
  EXPECT_EQ(pre.reduced.num_columns(), 0);
  const std::vector<double> full = pre.restore({});
  ASSERT_EQ(full.size(), 2u);
  EXPECT_DOUBLE_EQ(full[0], 2.0);
  EXPECT_DOUBLE_EQ(full[1], -1.0);
  EXPECT_TRUE(m.is_feasible(full, 1e-9));
}

TEST(PresolveRestore, EmptyReductionPassesSolutionsThrough) {
  lp::Model m;
  m.add_column("x", 0.0, 5.0, 1.0);
  m.add_column("y", 0.0, 5.0, 2.0);
  m.add_row("r", lp::RowType::kLe, 6.0, {{0, 1.0}, {1, 2.0}});
  const lp::PresolveResult pre = lp::presolve(m);
  ASSERT_FALSE(pre.infeasible);
  EXPECT_EQ(pre.removed_columns, 0);
  const std::vector<double> full = pre.restore({1.5, 2.0});
  ASSERT_EQ(full.size(), 2u);
  EXPECT_DOUBLE_EQ(full[0], 1.5);
  EXPECT_DOUBLE_EQ(full[1], 2.0);
}

}  // namespace
}  // namespace insched
