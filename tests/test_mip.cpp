// Unit and property tests for the branch-and-bound MIP solver, heuristics,
// cover cuts, and cross-validation against exhaustive enumeration.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <optional>
#include <vector>

#include "insched/lp/model.hpp"
#include "insched/mip/branch_and_bound.hpp"
#include "insched/mip/cuts.hpp"
#include "insched/mip/heuristics.hpp"
#include "insched/support/random.hpp"

namespace insched::mip {
namespace {

using lp::kInf;
using lp::Model;
using lp::RowEntry;
using lp::RowType;
using lp::Sense;
using lp::VarType;

// Exhaustively enumerates all integer assignments of a pure-integer model
// with finite bounds; returns the best objective (nullopt if infeasible).
std::optional<double> brute_force(const Model& m) {
  const int n = m.num_columns();
  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  std::optional<double> best;
  const bool maximize = m.sense() == Sense::kMaximize;
  std::function<void(int)> rec = [&](int j) {
    if (j == n) {
      if (!m.is_feasible(x, 1e-9)) return;
      const double obj = m.objective_value(x);
      if (!best || (maximize ? obj > *best : obj < *best)) best = obj;
      return;
    }
    const lp::Column& c = m.column(j);
    const auto lo = static_cast<long>(std::ceil(c.lower - 1e-9));
    const auto hi = static_cast<long>(std::floor(c.upper + 1e-9));
    for (long v = lo; v <= hi; ++v) {
      x[static_cast<std::size_t>(j)] = static_cast<double>(v);
      rec(j + 1);
    }
  };
  rec(0);
  return best;
}

TEST(Mip, SmallKnapsack) {
  // max 10a + 13b + 7c, 3a + 4b + 2c <= 6, binary -> a=0? enumerate: best is
  // a+c (17, weight 5) vs b+c (20, weight 6) -> 20.
  Model m;
  m.set_sense(Sense::kMaximize);
  const int a = m.add_column("a", 0, 1, 10.0, VarType::kBinary);
  const int b = m.add_column("b", 0, 1, 13.0, VarType::kBinary);
  const int c = m.add_column("c", 0, 1, 7.0, VarType::kBinary);
  m.add_row("w", RowType::kLe, 6.0, {{a, 3.0}, {b, 4.0}, {c, 2.0}});
  const MipResult res = solve_mip(m);
  ASSERT_TRUE(res.optimal());
  EXPECT_NEAR(res.objective, 20.0, 1e-9);
  EXPECT_NEAR(res.x[1], 1.0, 1e-9);
  EXPECT_NEAR(res.x[2], 1.0, 1e-9);
}

TEST(Mip, IntegerRoundingMatters) {
  // max x + y, 2x + 2y <= 5 integer -> LP gives 2.5, MIP must give 2.
  Model m;
  m.set_sense(Sense::kMaximize);
  const int x = m.add_column("x", 0, kInf, 1.0, VarType::kInteger);
  const int y = m.add_column("y", 0, kInf, 1.0, VarType::kInteger);
  m.add_row("c", RowType::kLe, 5.0, {{x, 2.0}, {y, 2.0}});
  const MipResult res = solve_mip(m);
  ASSERT_TRUE(res.optimal());
  EXPECT_NEAR(res.objective, 2.0, 1e-9);
}

TEST(Mip, MixedIntegerContinuous) {
  // max 5i + c, i integer in [0,3], c in [0, 10], i + c <= 4.2.
  // Optimum: i=3 (15), c=1.2 -> 16.2.
  Model m;
  m.set_sense(Sense::kMaximize);
  const int i = m.add_column("i", 0, 3, 5.0, VarType::kInteger);
  const int c = m.add_column("c", 0, 10, 1.0);
  m.add_row("cap", RowType::kLe, 4.2, {{i, 1.0}, {c, 1.0}});
  const MipResult res = solve_mip(m);
  ASSERT_TRUE(res.optimal());
  EXPECT_NEAR(res.objective, 16.2, 1e-8);
  EXPECT_NEAR(res.x[0], 3.0, 1e-9);
  EXPECT_NEAR(res.x[1], 1.2, 1e-8);
}

TEST(Mip, InfeasibleDetected) {
  Model m;
  const int x = m.add_column("x", 0, 1, 1.0, VarType::kBinary);
  const int y = m.add_column("y", 0, 1, 1.0, VarType::kBinary);
  m.add_row("ge", RowType::kGe, 3.0, {{x, 1.0}, {y, 1.0}});
  const MipResult res = solve_mip(m);
  EXPECT_EQ(res.status, lp::SolveStatus::kInfeasible);
  EXPECT_FALSE(res.has_solution);
}

TEST(Mip, EqualityConstrainedInteger) {
  // min x + y with x + 2y = 7, x,y integer >= 0 -> (1,3) obj 4 or (3,2) obj 5
  // or (7,0)=7, (5,1)=6 -> best 4.
  Model m;
  const int x = m.add_column("x", 0, 20, 1.0, VarType::kInteger);
  const int y = m.add_column("y", 0, 20, 1.0, VarType::kInteger);
  m.add_row("eq", RowType::kEq, 7.0, {{x, 1.0}, {y, 2.0}});
  const MipResult res = solve_mip(m);
  ASSERT_TRUE(res.optimal());
  EXPECT_NEAR(res.objective, 4.0, 1e-9);
}

TEST(Mip, PureLpPassThrough) {
  Model m;
  m.set_sense(Sense::kMaximize);
  const int x = m.add_column("x", 0.0, 2.5, 1.0);
  m.add_row("r", RowType::kLe, 100.0, {{x, 1.0}});
  const MipResult res = solve_mip(m);
  ASSERT_TRUE(res.optimal());
  EXPECT_NEAR(res.objective, 2.5, 1e-9);
}

TEST(Mip, GapIsZeroOnProvenOptimum) {
  Model m;
  m.set_sense(Sense::kMaximize);
  const int x = m.add_column("x", 0, 10, 3.0, VarType::kInteger);
  m.add_row("r", RowType::kLe, 7.5, {{x, 1.0}});
  const MipResult res = solve_mip(m);
  ASSERT_TRUE(res.optimal());
  EXPECT_NEAR(res.objective, 21.0, 1e-9);
  EXPECT_LE(res.gap(), 1e-5);
}

TEST(Mip, RespectsBothBranchingRules) {
  for (const Branching rule : {Branching::kMostFractional, Branching::kPseudoCost}) {
    Model m;
    m.set_sense(Sense::kMaximize);
    std::vector<double> weights{3, 5, 7, 4, 6, 2, 9, 8};
    std::vector<double> profits{4, 7, 9, 5, 8, 3, 11, 10};
    for (std::size_t j = 0; j < weights.size(); ++j)
      m.add_column("b", 0, 1, profits[j], VarType::kBinary);
    std::vector<RowEntry> entries;
    for (std::size_t j = 0; j < weights.size(); ++j)
      entries.push_back(RowEntry{static_cast<int>(j), weights[j]});
    m.add_row("cap", RowType::kLe, 20.0, entries);
    MipOptions opt;
    opt.branching = rule;
    const MipResult res = solve_mip(m, opt);
    ASSERT_TRUE(res.optimal());
    const auto expected = brute_force(m);
    ASSERT_TRUE(expected.has_value());
    EXPECT_NEAR(res.objective, *expected, 1e-8);
  }
}

TEST(Heuristics, RoundAndFixFindsFeasible) {
  Model m;
  m.set_sense(Sense::kMaximize);
  const int x = m.add_column("x", 0, 5, 1.0, VarType::kInteger);
  const int y = m.add_column("y", 0.0, 10.0, 0.5);
  m.add_row("cap", RowType::kLe, 6.0, {{x, 1.0}, {y, 1.0}});
  const std::vector<double> lp_point{2.4, 3.6};
  const auto sol = round_and_fix(m, lp_point, {}, 1e-6);
  ASSERT_TRUE(sol.has_value());
  EXPECT_TRUE(m.is_feasible(*sol, 1e-6));
  EXPECT_NEAR((*sol)[0], 2.0, 1e-9);
}

TEST(Heuristics, DiveReachesIntegrality) {
  Model m;
  m.set_sense(Sense::kMaximize);
  for (int j = 0; j < 6; ++j) m.add_column("b", 0, 1, 1.0 + j * 0.1, VarType::kBinary);
  std::vector<RowEntry> entries;
  for (int j = 0; j < 6; ++j) entries.push_back(RowEntry{j, 1.0 + j});
  m.add_row("cap", RowType::kLe, 9.5, entries);
  const lp::SimplexResult rel = lp::solve_lp(m);
  ASSERT_TRUE(rel.optimal());
  const auto sol = dive(m, rel.x, {}, 1e-6);
  ASSERT_TRUE(sol.has_value());
  EXPECT_TRUE(m.is_feasible(*sol, 1e-6));
}

TEST(Cuts, CoverCutIsValidForAllIntegerPoints) {
  Model m;
  m.set_sense(Sense::kMaximize);
  for (int j = 0; j < 5; ++j) m.add_column("b", 0, 1, 1.0, VarType::kBinary);
  std::vector<RowEntry> entries;
  const std::vector<double> w{5, 4, 3, 3, 2};
  for (int j = 0; j < 5; ++j) entries.push_back(RowEntry{j, w[static_cast<std::size_t>(j)]});
  m.add_row("cap", RowType::kLe, 8.0, entries);
  const lp::SimplexResult rel = lp::solve_lp(m);
  ASSERT_TRUE(rel.optimal());
  const std::vector<Cut> cuts = generate_cover_cuts(m, rel.x);
  // Whatever cuts were produced must not exclude any feasible binary point.
  for (int mask = 0; mask < 32; ++mask) {
    std::vector<double> x(5);
    double weight = 0.0;
    for (int j = 0; j < 5; ++j) {
      x[static_cast<std::size_t>(j)] = (mask >> j) & 1;
      weight += x[static_cast<std::size_t>(j)] * w[static_cast<std::size_t>(j)];
    }
    if (weight > 8.0) continue;  // infeasible for the row anyway
    for (const Cut& cut : cuts) {
      double lhs = 0.0;
      for (const RowEntry& e : cut.entries) lhs += e.coeff * x[static_cast<std::size_t>(e.column)];
      EXPECT_LE(lhs, cut.rhs + 1e-9) << "cut excludes feasible point mask=" << mask;
    }
  }
}

TEST(Mip, CutsDoNotChangeOptimum) {
  Rng rng(123);
  for (int trial = 0; trial < 10; ++trial) {
    Model m;
    m.set_sense(Sense::kMaximize);
    const int n = 8;
    std::vector<RowEntry> entries;
    for (int j = 0; j < n; ++j) {
      m.add_column("b", 0, 1, rng.uniform(1.0, 10.0), VarType::kBinary);
      entries.push_back(RowEntry{j, rng.uniform(1.0, 6.0)});
    }
    m.add_row("cap", RowType::kLe, rng.uniform(6.0, 14.0), entries);
    MipOptions with_cuts;
    with_cuts.use_cover_cuts = true;
    MipOptions without_cuts;
    without_cuts.use_cover_cuts = false;
    const MipResult a = solve_mip(m, with_cuts);
    const MipResult b = solve_mip(m, without_cuts);
    ASSERT_TRUE(a.optimal());
    ASSERT_TRUE(b.optimal());
    EXPECT_NEAR(a.objective, b.objective, 1e-8);
  }
}


TEST(Mip, TimeLimitReturnsIncumbentNotOptimal) {
  // A symmetric time-indexed-style model with many equal-objective solutions
  // and a tiny time limit: the solver must return a feasible incumbent and
  // report the limit status.
  Model m;
  m.set_sense(Sense::kMaximize);
  const int n = 40;
  std::vector<RowEntry> cap;
  for (int j = 0; j < n; ++j) {
    m.add_column("b", 0, 1, 1.0, VarType::kBinary);
    cap.push_back(RowEntry{j, 1.0});
  }
  m.add_row("half", RowType::kLe, n / 2.0 - 0.5, cap);  // fractional capacity
  MipOptions opt;
  opt.time_limit_s = 0.0;  // expire immediately after the root
  opt.use_rounding_heuristic = true;
  const MipResult res = solve_mip(m, opt);
  EXPECT_TRUE(res.has_solution);  // the root heuristic found something
  EXPECT_TRUE(m.is_feasible(res.x, 1e-6));
}

TEST(Mip, NodeLimitRespected) {
  Model m;
  m.set_sense(Sense::kMaximize);
  Rng rng(7);
  std::vector<RowEntry> cap;
  for (int j = 0; j < 30; ++j) {
    m.add_column("b", 0, 1, rng.uniform(1.0, 2.0), VarType::kBinary);
    cap.push_back(RowEntry{j, rng.uniform(1.0, 2.0)});
  }
  m.add_row("cap", RowType::kLe, 20.0, cap);
  MipOptions opt;
  opt.max_nodes = 5;
  const MipResult res = solve_mip(m, opt);
  EXPECT_LE(res.nodes, 5);
  EXPECT_TRUE(res.has_solution);
}

TEST(Mip, PresolvePathPreservesOptimum) {
  // Fixed columns + singleton rows: the presolve branch must restore the
  // full solution vector correctly.
  Model m;
  m.set_sense(Sense::kMaximize);
  const int fixed = m.add_column("fixed", 3, 3, 2.0, VarType::kInteger);
  const int x = m.add_column("x", 0, 10, 1.0, VarType::kInteger);
  const int y = m.add_column("y", 0, 10, 1.0, VarType::kInteger);
  m.add_row("single", RowType::kLe, 4.2, {{x, 1.0}});  // singleton: x <= 4
  m.add_row("mix", RowType::kLe, 9.0, {{x, 1.0}, {y, 1.0}, {fixed, 1.0}});
  MipOptions with;
  with.use_presolve = true;
  MipOptions without;
  without.use_presolve = false;
  const MipResult a = solve_mip(m, with);
  const MipResult b = solve_mip(m, without);
  ASSERT_TRUE(a.optimal());
  ASSERT_TRUE(b.optimal());
  EXPECT_NEAR(a.objective, b.objective, 1e-9);
  ASSERT_EQ(a.x.size(), 3u);
  EXPECT_DOUBLE_EQ(a.x[static_cast<std::size_t>(fixed)], 3.0);
  EXPECT_TRUE(m.is_feasible(a.x, 1e-6));
}

TEST(Mip, CoverCutsReduceNodesOnHardKnapsacks) {
  // Aggregate over several instances: cuts should not hurt and usually help.
  Rng rng(99);
  long nodes_with = 0, nodes_without = 0;
  for (int trial = 0; trial < 8; ++trial) {
    Model m;
    m.set_sense(Sense::kMaximize);
    const int n = 24;
    std::vector<RowEntry> cap;
    for (int j = 0; j < n; ++j) {
      const double w = rng.uniform(3.0, 9.0);
      m.add_column("b", 0, 1, w + rng.uniform(-0.2, 0.2), VarType::kBinary);
      cap.push_back(RowEntry{j, w});
    }
    m.add_row("cap", RowType::kLe, 40.0, cap);
    MipOptions with;
    with.use_cover_cuts = true;
    MipOptions without;
    without.use_cover_cuts = false;
    const MipResult a = solve_mip(m, with);
    const MipResult b = solve_mip(m, without);
    ASSERT_TRUE(a.optimal());
    ASSERT_TRUE(b.optimal());
    EXPECT_NEAR(a.objective, b.objective, 1e-7);
    nodes_with += a.nodes;
    nodes_without += b.nodes;
  }
  // Not asserted strictly per-instance (branching luck varies); in aggregate
  // the cut version must not explode relative to the plain version.
  EXPECT_LT(nodes_with, nodes_without * 3 + 50);
}

// Property test: random small pure-integer programs vs exhaustive search.
class RandomIp : public ::testing::TestWithParam<int> {};

TEST_P(RandomIp, MatchesBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337u + 17u);
  Model m;
  const bool maximize = rng.bernoulli(0.5);
  m.set_sense(maximize ? Sense::kMaximize : Sense::kMinimize);
  const int n = static_cast<int>(rng.uniform_int(2, 5));
  for (int j = 0; j < n; ++j) {
    const double lo = static_cast<double>(rng.uniform_int(0, 2));
    const double hi = lo + static_cast<double>(rng.uniform_int(1, 4));
    m.add_column("v", lo, hi, rng.uniform(-5.0, 5.0), VarType::kInteger);
  }
  const int rows = static_cast<int>(rng.uniform_int(1, 4));
  for (int i = 0; i < rows; ++i) {
    std::vector<RowEntry> entries;
    for (int j = 0; j < n; ++j)
      if (rng.bernoulli(0.7)) entries.push_back(RowEntry{j, rng.uniform(-3.0, 3.0)});
    if (entries.empty()) entries.push_back(RowEntry{0, 1.0});
    const double rhs = rng.uniform(-5.0, 15.0);
    const RowType type = rng.bernoulli(0.7) ? RowType::kLe : RowType::kGe;
    m.add_row("r", type, rhs, std::move(entries));
  }
  const auto expected = brute_force(m);
  const MipResult res = solve_mip(m);
  if (!expected.has_value()) {
    EXPECT_EQ(res.status, lp::SolveStatus::kInfeasible) << m.to_string();
  } else {
    ASSERT_TRUE(res.optimal()) << m.to_string();
    EXPECT_NEAR(res.objective, *expected, 1e-7) << m.to_string();
    EXPECT_TRUE(m.is_feasible(res.x, 1e-6));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomIp, ::testing::Range(0, 60));

// ---------------------------------------------------------------------------
// Termination accounting: truncated searches must never claim optimality and
// gap()/best_bound must describe the open tree.

namespace {

// Knapsack with irrational-ish weights: no pruning shortcuts, so node and
// time limits actually truncate the search.
// The cutting-plane engine closes small knapsacks at the root; tests that
// specifically exercise the *tree* (truncation reporting, warm re-solves)
// pin it off so a search actually happens.
MipOptions tree_only(MipOptions opt = {}) {
  opt.use_probing = false;
  opt.use_cover_cuts = false;
  opt.use_clique_cuts = false;
  opt.use_gomory_cuts = false;
  opt.use_mir_cuts = false;
  opt.in_tree_cuts = false;
  return opt;
}

Model hard_knapsack(int n, unsigned seed) {
  Model m;
  m.set_sense(Sense::kMaximize);
  Rng rng(seed);
  std::vector<RowEntry> cap;
  for (int j = 0; j < n; ++j) {
    m.add_column("b", 0, 1, rng.uniform(1.0, 2.0), VarType::kBinary);
    cap.push_back(RowEntry{j, rng.uniform(1.0, 2.0)});
  }
  m.add_row("cap", RowType::kLe, 0.62 * n, cap);
  return m;
}

}  // namespace

TEST(MipTermination, ProvedOptimalHasZeroGap) {
  const Model m = hard_knapsack(12, 3);
  const MipResult res = solve_mip(m);
  ASSERT_TRUE(res.optimal());
  EXPECT_EQ(res.termination, MipTermination::kProvedOptimal);
  EXPECT_FALSE(res.truncated());
  EXPECT_DOUBLE_EQ(res.gap(), 0.0);
  EXPECT_DOUBLE_EQ(res.gap_rel(), 0.0);
  EXPECT_DOUBLE_EQ(res.best_bound, res.objective);
}

TEST(MipTermination, NodeLimitNeverReportsOptimal) {
  const Model m = hard_knapsack(30, 11);
  MipOptions opt = tree_only();
  opt.max_nodes = 3;
  const MipResult res = solve_mip(m, opt);
  EXPECT_LE(res.nodes, 3);
  EXPECT_FALSE(res.optimal());
  EXPECT_EQ(res.status, lp::SolveStatus::kIterationLimit);
  EXPECT_EQ(res.termination, MipTermination::kNodeLimit);
  EXPECT_TRUE(res.truncated());
  ASSERT_TRUE(res.has_solution);  // heuristic incumbent survives truncation
  // Maximize: the proven bound must dominate the incumbent, and the gap must
  // be the distance between them (not zero, not infinity).
  EXPECT_GE(res.best_bound, res.objective - 1e-9);
  EXPECT_GE(res.gap(), 0.0);
  EXPECT_TRUE(std::isfinite(res.gap()));
  EXPECT_NEAR(res.gap(), std::fabs(res.best_bound - res.objective), 1e-12);
}

TEST(MipTermination, TimeLimitNeverReportsOptimal) {
  const Model m = hard_knapsack(30, 13);
  MipOptions opt;
  opt.time_limit_s = 0.0;  // expire immediately after the root
  const MipResult res = solve_mip(m, opt);
  EXPECT_FALSE(res.optimal());
  EXPECT_EQ(res.status, lp::SolveStatus::kIterationLimit);
  EXPECT_EQ(res.termination, MipTermination::kTimeLimit);
  EXPECT_TRUE(res.truncated());
  ASSERT_TRUE(res.has_solution);
  EXPECT_GE(res.best_bound, res.objective - 1e-9);
  EXPECT_TRUE(std::isfinite(res.gap()));
}

TEST(MipTermination, InfeasibleModelReportsProvedInfeasible) {
  Model m;
  m.set_sense(Sense::kMaximize);
  const int x = m.add_column("x", 0, 5, 1.0, VarType::kInteger);
  m.add_row("lo", RowType::kGe, 10.0, {{x, 1.0}});  // x >= 10 vs x <= 5
  const MipResult res = solve_mip(m);
  EXPECT_EQ(res.status, lp::SolveStatus::kInfeasible);
  EXPECT_EQ(res.termination, MipTermination::kProvedInfeasible);
  EXPECT_FALSE(res.has_solution);
  EXPECT_TRUE(std::isinf(res.gap()));
}

TEST(MipTermination, PureLpPassthroughTermination) {
  Model m;
  m.set_sense(Sense::kMaximize);
  const int x = m.add_column("x", 0, 4, 1.0, VarType::kContinuous);
  m.add_row("cap", RowType::kLe, 2.5, {{x, 1.0}});
  const MipResult res = solve_mip(m);
  ASSERT_TRUE(res.optimal());
  EXPECT_EQ(res.termination, MipTermination::kProvedOptimal);
  EXPECT_DOUBLE_EQ(res.gap(), 0.0);
}

TEST(MipTermination, WarmAndColdSearchesAgreeOnOptimum) {
  for (unsigned seed = 0; seed < 8; ++seed) {
    const Model m = hard_knapsack(16, 100 + seed);
    MipOptions warm = tree_only();
    warm.warm_start = true;
    MipOptions cold = tree_only();
    cold.warm_start = false;
    const MipResult a = solve_mip(m, warm);
    const MipResult b = solve_mip(m, cold);
    ASSERT_TRUE(a.optimal());
    ASSERT_TRUE(b.optimal());
    EXPECT_NEAR(a.objective, b.objective, 1e-8) << "seed " << seed;
    EXPECT_GT(a.counters.warm_solves, 0) << "warm path never engaged";
  }
}

// ---------------------------------------------------------------------------
// Reduction pipeline: probing fixes and aggregations are substituted out of
// the model handed to the search, and PresolveResult::restore must expand
// the reduced solution back to the full original space.

TEST(Mip, ProbingReductionsRestoreInFullSpace) {
  // y == 1 - x via the equality row (complement aggregation), z forced to 0
  // by the budget row, w an ordinary free binary.
  Model m;
  m.set_sense(Sense::kMaximize);
  const int x = m.add_column("x", 0, 1, 4.0, VarType::kBinary);
  const int y = m.add_column("y", 0, 1, 1.0, VarType::kBinary);
  const int z = m.add_column("z", 0, 1, 5.0, VarType::kBinary);
  const int w = m.add_column("w", 0, 1, 2.0, VarType::kBinary);
  m.add_row("complement", RowType::kEq, 1.0, {{x, 1.0}, {y, 1.0}});
  m.add_row("force_z", RowType::kLe, 1.0, {{z, 2.0}});
  m.add_row("cap", RowType::kLe, 1.0, {{x, 1.0}, {w, 1.0}});

  const ProbingResult probing = probe_binaries(m);
  ASSERT_FALSE(probing.infeasible);
  EXPECT_FALSE(probing.fixed_columns.empty());      // z = 0
  EXPECT_FALSE(probing.aggregations.empty());       // y = 1 - x

  // solve_mip runs the same reductions internally and must hand back a
  // full-space solution: every eliminated column re-derived.
  const MipResult res = solve_mip(m);
  ASSERT_TRUE(res.optimal());
  ASSERT_EQ(res.x.size(), static_cast<std::size_t>(m.num_columns()));
  EXPECT_TRUE(m.is_feasible(res.x, 1e-7));
  EXPECT_NEAR(res.x[static_cast<std::size_t>(z)], 0.0, 1e-9);
  EXPECT_NEAR(res.x[static_cast<std::size_t>(x)] + res.x[static_cast<std::size_t>(y)], 1.0,
              1e-9);
  // Optimum: x = 1 (4) beats y + w (3); cap stops x + w together.
  EXPECT_NEAR(res.objective, 4.0, 1e-9);
}

}  // namespace
}  // namespace insched::mip
