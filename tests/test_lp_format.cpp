// Tests for the CPLEX LP-format writer/reader: round trips, objective
// equivalence under the solver, parse errors, and interop with the
// scheduling models.

#include <gtest/gtest.h>

#include "insched/lp/lp_format.hpp"
#include "insched/lp/simplex.hpp"
#include "insched/mip/branch_and_bound.hpp"
#include "insched/scheduler/aggregate_milp.hpp"
#include "insched/scheduler/params.hpp"
#include "insched/support/random.hpp"

namespace insched::lp {
namespace {

TEST(LpFormat, WritesCanonicalSections) {
  Model m;
  m.set_sense(Sense::kMaximize);
  const int x = m.add_column("x", 0.0, 4.0, 3.0);
  const int y = m.add_column("y", 0.0, kInf, 5.0, VarType::kInteger);
  const int b = m.add_column("flag", 0, 1, 1.0, VarType::kBinary);
  m.add_row("cap", RowType::kLe, 18.0, {{x, 3.0}, {y, 2.0}, {b, 1.0}});
  const std::string text = write_lp(m);
  EXPECT_NE(text.find("Maximize"), std::string::npos);
  EXPECT_NE(text.find("Subject To"), std::string::npos);
  EXPECT_NE(text.find("Bounds"), std::string::npos);
  EXPECT_NE(text.find("General"), std::string::npos);
  EXPECT_NE(text.find("Binary"), std::string::npos);
  EXPECT_NE(text.find("End"), std::string::npos);
  EXPECT_NE(text.find("3 x"), std::string::npos);
}

TEST(LpFormat, SanitizesAwkwardNames) {
  Model m;
  (void)m.add_column("hydronium rdf (A1)", 0.0, 1.0, 1.0);
  (void)m.add_column("hydronium rdf (A1)", 0.0, 1.0, 2.0);  // collision after sanitize
  (void)m.add_column("", 0.0, 1.0, 3.0);
  (void)m.add_column("2fast", 0.0, 1.0, 4.0);
  const std::string text = write_lp(m);
  const Model parsed = read_lp(text);
  EXPECT_EQ(parsed.num_columns(), 4);
  // Distinct names survived the round trip.
  EXPECT_NE(parsed.column(0).name, parsed.column(1).name);
}

TEST(LpFormat, RoundTripPreservesOptimum) {
  Rng rng(41);
  for (int trial = 0; trial < 20; ++trial) {
    Model m;
    m.set_sense(rng.bernoulli(0.5) ? Sense::kMaximize : Sense::kMinimize);
    const int n = static_cast<int>(rng.uniform_int(2, 6));
    for (int j = 0; j < n; ++j) {
      const double lo = rng.uniform(-3.0, 0.0);
      const double hi = rng.uniform(1.0, 6.0);
      const VarType type = rng.bernoulli(0.4) ? VarType::kInteger : VarType::kContinuous;
      m.add_column("v" + std::to_string(j), type == VarType::kInteger ? 0.0 : lo, hi,
                   rng.uniform(-4.0, 4.0), type);
    }
    const int rows = static_cast<int>(rng.uniform_int(1, 4));
    for (int i = 0; i < rows; ++i) {
      std::vector<RowEntry> entries;
      for (int j = 0; j < n; ++j)
        if (rng.bernoulli(0.6)) entries.push_back({j, rng.uniform(-2.0, 2.0)});
      if (entries.empty()) entries.push_back({0, 1.0});
      const RowType type =
          rng.bernoulli(0.5) ? RowType::kLe : (rng.bernoulli(0.5) ? RowType::kGe : RowType::kEq);
      // Keep instances feasible-ish: generous rhs for Le/Ge, tight for Eq.
      const double rhs = type == RowType::kEq ? 0.0 : rng.uniform(1.0, 10.0) *
                                                          (type == RowType::kGe ? -1.0 : 1.0);
      m.add_row("r" + std::to_string(i), type, rhs, std::move(entries));
    }

    const Model parsed = read_lp(write_lp(m));
    ASSERT_EQ(parsed.num_columns(), m.num_columns());
    ASSERT_EQ(parsed.num_rows(), m.num_rows());
    const mip::MipResult a = mip::solve_mip(m);
    const mip::MipResult b = mip::solve_mip(parsed);
    ASSERT_EQ(a.status, b.status) << write_lp(m);
    if (a.has_solution && b.has_solution) {
      EXPECT_NEAR(a.objective, b.objective, 1e-6);
    }
  }
}

TEST(LpFormat, SchedulingModelRoundTrips) {
  scheduler::ScheduleProblem p;
  p.steps = 1000;
  p.threshold_kind = scheduler::ThresholdKind::kTotalSeconds;
  p.threshold = 100.0;
  p.mth = 4e9;
  scheduler::AnalysisParams a;
  a.name = "membrane histogram (R2)";
  a.ct = 17.193;
  a.om = 64e6;
  a.ot = 0.0;
  a.cm = 64e6;
  a.itv = 100;
  p.analyses.push_back(a);
  const scheduler::AggregateModel built = scheduler::build_aggregate_milp(p);

  const Model parsed = read_lp(write_lp(built.model));
  const mip::MipResult original = mip::solve_mip(built.model);
  const mip::MipResult reparsed = mip::solve_mip(parsed);
  ASSERT_TRUE(original.optimal());
  ASSERT_TRUE(reparsed.optimal());
  EXPECT_NEAR(original.objective, reparsed.objective, 1e-6);
}

TEST(LpFormat, ParsesHandWrittenFile) {
  const Model m = read_lp(
      "\\ a comment line\n"
      "Minimize\n"
      " cost: 2 x + 3 y - z\n"
      "Subject To\n"
      " c1: x + y >= 4\n"
      " c2: - x + 2 z <= 10\n"
      "Bounds\n"
      " 1 <= x <= 5\n"
      " z free\n"
      "General\n"
      " y\n"
      "End\n");
  EXPECT_EQ(m.num_columns(), 3);
  EXPECT_EQ(m.num_rows(), 2);
  EXPECT_EQ(m.sense(), Sense::kMinimize);
  EXPECT_DOUBLE_EQ(m.column(0).lower, 1.0);
  EXPECT_DOUBLE_EQ(m.column(0).upper, 5.0);
  EXPECT_EQ(m.column(1).type, VarType::kInteger);
  EXPECT_TRUE(std::isinf(m.column(2).lower));
  const SimplexResult res = solve_lp(m);
  ASSERT_TRUE(res.optimal());
}

TEST(LpFormat, RejectsMalformedInput) {
  EXPECT_THROW((void)read_lp("Optimize\n x\nEnd\n"), std::runtime_error);
  EXPECT_THROW((void)read_lp("Minimize\n x\n"), std::runtime_error);  // no Subject To
  EXPECT_THROW((void)read_lp("Minimize\n x\nSubject To\n c1: x ? 3\nEnd\n"),
               std::runtime_error);
}

}  // namespace
}  // namespace insched::lp
