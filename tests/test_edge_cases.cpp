// Assorted edge-case and failure-path coverage across modules: empty inputs,
// boundary sizes, error paths, and odd-but-legal configurations.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "insched/lp/lp_format.hpp"
#include "insched/lp/simplex.hpp"
#include "insched/machine/storage.hpp"
#include "insched/scheduler/problem_io.hpp"
#include "insched/scheduler/serialize.hpp"
#include "insched/scheduler/solver.hpp"
#include "insched/sim/grid/euler.hpp"
#include "insched/sim/particles/cell_list.hpp"
#include "insched/sim/particles/trajectory.hpp"
#include "insched/support/config.hpp"
#include "insched/support/log.hpp"
#include "insched/support/string_util.hpp"
#include "insched/support/table.hpp"

namespace insched {
namespace {

TEST(EdgeCases, EmptyParticleSystemCellList) {
  sim::ParticleSystem sys(sim::Box{5, 5, 5});
  const sim::CellList cells(sys, 1.0);
  int visits = 0;
  cells.for_each_pair([&](std::size_t, std::size_t, double) { ++visits; });
  EXPECT_EQ(visits, 0);
  EXPECT_GT(cells.num_cells(), 0u);
}

TEST(EdgeCases, SingleParticleHasNoPairs) {
  sim::ParticleSystem sys(sim::Box{5, 5, 5});
  sys.add_particle(sim::Species::kIon, 2.5, 2.5, 2.5);
  const sim::CellList cells(sys, 2.0);
  int visits = 0;
  cells.for_each_pair([&](std::size_t, std::size_t, double) { ++visits; });
  EXPECT_EQ(visits, 0);
}

TEST(EdgeCases, TwoParticlesAcrossTheWholeBoxPeriodic) {
  // Distance through the boundary is 1.0 even though coordinates differ by 4.
  sim::ParticleSystem sys(sim::Box{5, 5, 5});
  sys.add_particle(sim::Species::kIon, 0.5, 2.5, 2.5);
  sys.add_particle(sim::Species::kIon, 4.5, 2.5, 2.5);
  const sim::CellList cells(sys, 1.5);
  int visits = 0;
  double r2_seen = 0.0;
  cells.for_each_pair([&](std::size_t, std::size_t, double r2) {
    ++visits;
    r2_seen = r2;
  });
  EXPECT_EQ(visits, 1);
  EXPECT_NEAR(r2_seen, 1.0, 1e-12);
}

TEST(EdgeCases, TrajectoryReaderRejectsGarbage) {
  machine::TempDir dir("edge");
  const std::string path = dir.file("bad.itrj").string();
  std::ofstream(path) << "this is not a trajectory";
  EXPECT_THROW((void)sim::TrajectoryReader{path}, std::runtime_error);
  EXPECT_THROW((void)sim::TrajectoryReader{"/nonexistent/nowhere.itrj"}, std::runtime_error);
}

TEST(EdgeCases, TrajectoryTruncatedFrameDetected) {
  machine::TempDir dir("edge2");
  const std::string path = dir.file("trunc.itrj").string();
  sim::ParticleSystem sys(sim::Box{5, 5, 5});
  for (int i = 0; i < 8; ++i) sys.add_particle(sim::Species::kIon, 1, 1, 1);
  {
    sim::TrajectoryWriter writer(path, 8);
    writer.write_frame(1, sys);
    writer.close();
  }
  // Chop the file mid-frame.
  std::filesystem::resize_file(path, std::filesystem::file_size(path) - 50);
  sim::TrajectoryReader reader(path);
  sim::TrajectoryFrame frame;
  EXPECT_FALSE(reader.read_frame(frame));  // graceful end, no crash
}

TEST(EdgeCases, ScheduleProblemWithoutAnalyses) {
  scheduler::ScheduleProblem p;
  p.steps = 10;
  p.threshold_kind = scheduler::ThresholdKind::kTotalSeconds;
  p.threshold = 5.0;
  const scheduler::ScheduleSolution sol = scheduler::solve_schedule(p);
  EXPECT_TRUE(sol.solved);
  EXPECT_TRUE(sol.frequencies.empty());
  EXPECT_DOUBLE_EQ(sol.objective, 0.0);
}

TEST(EdgeCases, ZeroBudgetSchedulesNothing) {
  scheduler::ScheduleProblem p;
  p.steps = 100;
  p.threshold_kind = scheduler::ThresholdKind::kTotalSeconds;
  p.threshold = 0.0;
  scheduler::AnalysisParams a;
  a.name = "a";
  a.ct = 1.0;
  a.itv = 10;
  p.analyses.push_back(a);
  const scheduler::ScheduleSolution sol = scheduler::solve_schedule(p);
  ASSERT_TRUE(sol.solved);
  EXPECT_EQ(sol.frequencies[0], 0);
}

TEST(EdgeCases, FreeCostAnalysisMaxesOut) {
  // ct = 0: the only caps are the interval rule.
  scheduler::ScheduleProblem p;
  p.steps = 100;
  p.threshold_kind = scheduler::ThresholdKind::kTotalSeconds;
  p.threshold = 0.0;
  scheduler::AnalysisParams a;
  a.name = "free";
  a.ct = 0.0;
  a.itv = 7;
  p.analyses.push_back(a);
  const scheduler::ScheduleSolution sol = scheduler::solve_schedule(p);
  ASSERT_TRUE(sol.solved);
  EXPECT_EQ(sol.frequencies[0], 100 / 7);
  EXPECT_TRUE(sol.validation.feasible);
}

TEST(EdgeCases, SingleStepProblem) {
  scheduler::ScheduleProblem p;
  p.steps = 1;
  p.threshold_kind = scheduler::ThresholdKind::kTotalSeconds;
  p.threshold = 10.0;
  scheduler::AnalysisParams a;
  a.name = "once";
  a.ct = 1.0;
  a.itv = 1;
  p.analyses.push_back(a);
  const scheduler::ScheduleSolution sol = scheduler::solve_schedule(p);
  ASSERT_TRUE(sol.solved);
  EXPECT_EQ(sol.frequencies[0], 1);
  EXPECT_EQ(sol.schedule.analysis(0).analysis_steps, (std::vector<long>{1}));
}

TEST(EdgeCases, ConfigFileRoundTripThroughDisk) {
  machine::TempDir dir("cfg");
  const std::string path = dir.file("p.ini").string();
  scheduler::ScheduleProblem p;
  p.steps = 123;
  p.threshold_kind = scheduler::ThresholdKind::kTotalSeconds;
  p.threshold = 9.5;
  scheduler::AnalysisParams a;
  a.name = "disk";
  a.ct = 0.25;
  a.itv = 3;
  p.analyses.push_back(a);
  std::ofstream(path) << scheduler::problem_to_config(p);
  const scheduler::ScheduleProblem loaded =
      scheduler::problem_from_config(Config::load(path));
  EXPECT_EQ(loaded.steps, 123);
  EXPECT_EQ(loaded.analyses[0].itv, 3);
  EXPECT_THROW((void)Config::load("/nonexistent/p.ini"), std::runtime_error);
}

TEST(EdgeCases, LpFormatFileRoundTrip) {
  machine::TempDir dir("lp");
  const std::string path = dir.file("m.lp").string();
  lp::Model m;
  m.set_sense(lp::Sense::kMaximize);
  const int x = m.add_column("x", 0, 7, 2.0, lp::VarType::kInteger);
  m.add_row("r", lp::RowType::kLe, 5.5, {{x, 1.0}});
  std::ofstream(path) << lp::write_lp(m);
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const lp::Model parsed = lp::read_lp(buffer.str());
  const lp::SimplexResult res = lp::solve_lp(parsed);
  ASSERT_TRUE(res.optimal());
  EXPECT_NEAR(res.objective, 11.0, 1e-9);  // LP relaxation: 2 * 5.5
}

TEST(EdgeCases, GanttHandlesEmptyAndWideSchedules) {
  EXPECT_NE(scheduler::render_gantt(scheduler::Schedule{}, 40).find("empty"),
            std::string::npos);
  // One analysis step in a one-step schedule at minimal width.
  const scheduler::Schedule tiny(1, {scheduler::AnalysisSchedule{"t", {1}, {1}}});
  const std::string gantt = scheduler::render_gantt(tiny, 10);
  EXPECT_NE(gantt.find('O'), std::string::npos);
}

TEST(EdgeCases, TableWithoutHeaderRenders) {
  Table t;
  t.add("a", 1);
  t.add("bb", 22);
  const std::string out = t.render();
  EXPECT_NE(out.find("| a "), std::string::npos);
  EXPECT_NE(out.find("| bb"), std::string::npos);
}

TEST(EdgeCases, LogLevelGatesOutput) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_FALSE(detail::log_enabled(LogLevel::kInfo));
  EXPECT_TRUE(detail::log_enabled(LogLevel::kError));
  set_log_level(LogLevel::kDebug);
  EXPECT_TRUE(detail::log_enabled(LogLevel::kInfo));
  set_log_level(saved);
}

TEST(EdgeCases, FormatSecondsExtremes) {
  EXPECT_EQ(format_seconds(2.5e-9), "2.5 ns");
  EXPECT_EQ(format_seconds(90.0), "90.00 s");
  EXPECT_EQ(format_seconds(600.0), "10.0 min");
  EXPECT_EQ(format_seconds(7300.0), "2.03 h");
}

TEST(EdgeCases, MinimalGridSolverIsStable) {
  // 2^3 grid: the smallest the Euler solver accepts; steps must not blow up.
  sim::EulerSolver solver(sim::GridGeometry{2, 1.0}, sim::EulerParams{});
  for (int s = 0; s < 10; ++s) solver.step();
  const sim::Primitive p = solver.cell(0, 0, 0);
  EXPECT_GT(p.rho, 0.0);
  EXPECT_GT(p.p, 0.0);
}

}  // namespace
}  // namespace insched
