// Tests for the scheduling core: Table-1 parameters, schedules, the exact
// Eq 2-9 validator, placement, both MILP formulations (cross-validated
// against each other), greedy baselines and the solver facade.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "insched/mip/branch_and_bound.hpp"
#include "insched/scheduler/aggregate_milp.hpp"
#include "insched/scheduler/greedy.hpp"
#include "insched/scheduler/params.hpp"
#include "insched/scheduler/placement.hpp"
#include "insched/scheduler/recommend.hpp"
#include "insched/scheduler/schedule.hpp"
#include "insched/scheduler/solver.hpp"
#include "insched/scheduler/timeexp_milp.hpp"
#include "insched/scheduler/validator.hpp"
#include "insched/support/random.hpp"

namespace insched::scheduler {
namespace {

AnalysisParams simple_analysis(std::string name, double ct, double ot, long itv,
                               double weight = 1.0) {
  AnalysisParams a;
  a.name = std::move(name);
  a.ct = ct;
  a.ot = ot;
  a.itv = itv;
  a.weight = weight;
  return a;
}

TEST(Params, TimeBudgetForms) {
  ScheduleProblem p;
  p.steps = 1000;
  p.sim_time_per_step = 0.5;
  p.threshold = 0.1;
  p.threshold_kind = ThresholdKind::kFractionOfSimTime;
  EXPECT_DOUBLE_EQ(p.time_budget(), 50.0);
  p.threshold_kind = ThresholdKind::kTotalSeconds;
  p.threshold = 42.0;
  EXPECT_DOUBLE_EQ(p.time_budget(), 42.0);
  p.threshold_kind = ThresholdKind::kPerStepSeconds;
  p.threshold = 0.01;
  EXPECT_DOUBLE_EQ(p.time_budget(), 10.0);
}

TEST(Params, OutputTimeDerivedFromBandwidth) {
  AnalysisParams a;
  a.om = 100.0;
  a.ot = -1.0;
  EXPECT_DOUBLE_EQ(a.output_time(50.0), 2.0);  // om / bw (Section 3.2)
  a.ot = 7.0;
  EXPECT_DOUBLE_EQ(a.output_time(50.0), 7.0);  // explicit ot wins
}

TEST(Params, MaxAnalysisStepsIsStepsOverItv) {
  ScheduleProblem p;
  p.steps = 1000;
  p.analyses.push_back(simple_analysis("a", 1.0, 0.0, 100));
  p.analyses.push_back(simple_analysis("b", 1.0, 0.0, 33));
  EXPECT_EQ(p.max_analysis_steps(0), 10);
  EXPECT_EQ(p.max_analysis_steps(1), 30);
}

TEST(Params, ValidateRejectsBadInput) {
  ScheduleProblem p;
  p.steps = 10;
  p.analyses.push_back(simple_analysis("a", 1.0, 0.0, 0));  // itv < 1
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.analyses[0].itv = 20;  // itv > steps
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.analyses[0].itv = 2;
  p.analyses[0].weight = -1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.analyses[0].weight = 1.0;
  p.validate();  // now fine
}

TEST(ScheduleType, CountsAndObjective) {
  AnalysisSchedule a{"a", {2, 4, 6}, {6}};
  AnalysisSchedule b{"b", {}, {}};
  const Schedule s(10, {a, b});
  EXPECT_EQ(s.active_count(), 1);
  EXPECT_EQ(s.total_analysis_steps(), 3);
  EXPECT_EQ(s.frequencies(), (std::vector<long>{3, 0}));
  EXPECT_DOUBLE_EQ(s.objective({2.0, 5.0}), 1.0 + 2.0 * 3.0);
  EXPECT_TRUE(s.analysis(0).is_analysis_step(4));
  EXPECT_FALSE(s.analysis(0).is_analysis_step(3));
  EXPECT_TRUE(s.analysis(0).is_output_step(6));
}

TEST(ScheduleType, RenderMarksAnalysisAndOutput) {
  const Schedule s(6, {AnalysisSchedule{"a", {2, 4}, {4}}});
  const std::string line = s.render();
  // Steps: S SA S SAO S S
  EXPECT_EQ(line, "S SA S SAO S S ");
}

TEST(Validator, TimeRecurrenceMatchesHandComputation) {
  // One analysis: ft=2, it=0.1, ct=1, ot=0.5; steps=6, C={2,4}, O={4}.
  // tAnalyze = 2 + 6*0.1 + 2*1 + 1*0.5 = 5.1.
  ScheduleProblem p;
  p.steps = 6;
  p.threshold_kind = ThresholdKind::kTotalSeconds;
  p.threshold = 5.1;
  p.output_policy = OutputPolicy::kOptimized;
  AnalysisParams a = simple_analysis("a", 1.0, 0.5, 2);
  a.ft = 2.0;
  a.it = 0.1;
  p.analyses.push_back(a);

  const Schedule s(6, {AnalysisSchedule{"a", {2, 4}, {4}}});
  const ValidationReport report = validate_schedule(p, s);
  EXPECT_TRUE(report.feasible) << (report.violations.empty() ? "" : report.violations[0]);
  EXPECT_NEAR(report.total_analysis_time, 5.1, 1e-12);
  ASSERT_EQ(report.breakdown.size(), 1u);
  EXPECT_NEAR(report.breakdown[0].setup, 2.0, 1e-12);
  EXPECT_NEAR(report.breakdown[0].per_step, 0.6, 1e-12);
  EXPECT_NEAR(report.breakdown[0].compute, 2.0, 1e-12);
  EXPECT_NEAR(report.breakdown[0].output, 0.5, 1e-12);
  EXPECT_NEAR(report.breakdown[0].visible(), 2.5, 1e-12);

  // Tighten the budget below 5.1: must be infeasible.
  p.threshold = 5.0;
  const ValidationReport tight = validate_schedule(p, s);
  EXPECT_FALSE(tight.feasible);
}

TEST(Validator, MemoryRecurrenceResetsAtOutput) {
  // fm=10, im=1, cm=5, om=3; steps=4, C={2,4}, O={2,4} (policy optimized).
  // mEnd0=10; j1: mStart 11, mEnd 11; j2 (A+O): mStart 11+1+5+3=20, mEnd=10;
  // j3: 11; j4 (A+O): 11+1+5+3=20 -> peak 20.
  ScheduleProblem p;
  p.steps = 4;
  p.threshold_kind = ThresholdKind::kTotalSeconds;
  p.threshold = 100.0;
  p.output_policy = OutputPolicy::kOptimized;
  p.mth = 20.0;
  AnalysisParams a = simple_analysis("a", 0.1, 0.1, 2);
  a.fm = 10.0;
  a.im = 1.0;
  a.cm = 5.0;
  a.om = 3.0;
  p.analyses.push_back(a);

  const Schedule s(4, {AnalysisSchedule{"a", {2, 4}, {2, 4}}});
  const ValidationReport ok = validate_schedule(p, s);
  EXPECT_TRUE(ok.feasible) << (ok.violations.empty() ? "" : ok.violations[0]);
  EXPECT_NEAR(ok.peak_memory, 20.0, 1e-12);
  EXPECT_EQ(ok.peak_memory_step, 2);

  // Without the first output the memory keeps growing: j4 mStart =
  // 10+2*1+5 ... walk: j1 11, j2 (A) 17, j3 18, j4 (A+O) 27 -> violates 20.
  const Schedule bad(4, {AnalysisSchedule{"a", {2, 4}, {4}}});
  const ValidationReport violated = validate_schedule(p, bad);
  EXPECT_FALSE(violated.feasible);
  EXPECT_NEAR(violated.peak_memory, 27.0, 1e-12);
}

TEST(Validator, IntervalViolationsDetected) {
  ScheduleProblem p;
  p.steps = 10;
  p.threshold_kind = ThresholdKind::kTotalSeconds;
  p.threshold = 100.0;
  p.output_policy = OutputPolicy::kNone;
  p.analyses.push_back(simple_analysis("a", 0.1, 0.0, 3));

  const Schedule ok(10, {AnalysisSchedule{"a", {3, 6, 9}, {}}});
  EXPECT_TRUE(validate_schedule(p, ok).feasible);

  const Schedule close(10, {AnalysisSchedule{"a", {3, 5}, {}}});  // gap 2 < 3
  EXPECT_FALSE(validate_schedule(p, close).feasible);

  const Schedule many(10, {AnalysisSchedule{"a", {1, 4, 7, 10}, {}}});
  // 4 steps allowed? Steps/itv = 3 -> violates Eq 9 even though gaps are 3.
  EXPECT_FALSE(validate_schedule(p, many).feasible);
}

TEST(Validator, InactiveAnalysisCostsNothing) {
  ScheduleProblem p;
  p.steps = 5;
  p.threshold_kind = ThresholdKind::kTotalSeconds;
  p.threshold = 0.0;  // zero budget
  AnalysisParams a = simple_analysis("a", 10.0, 1.0, 1);
  a.ft = 5.0;
  a.it = 1.0;
  a.fm = 100.0;
  p.analyses.push_back(a);
  p.mth = 1.0;

  const Schedule empty(5, {AnalysisSchedule{"a", {}, {}}});
  const ValidationReport report = validate_schedule(p, empty);
  EXPECT_TRUE(report.feasible);
  EXPECT_DOUBLE_EQ(report.total_analysis_time, 0.0);
  EXPECT_DOUBLE_EQ(report.peak_memory, 0.0);
}

TEST(Placement, EvenSpacingRespectsInterval) {
  ScheduleProblem p;
  p.steps = 1000;
  p.threshold_kind = ThresholdKind::kTotalSeconds;
  p.threshold = 1e9;
  p.analyses.push_back(simple_analysis("a", 1.0, 0.0, 100));
  const Schedule s = place(p, PlacementRequest{{10}, {10}});
  ASSERT_EQ(s.analysis(0).analysis_count(), 10);
  // Every 100 steps: 100, 200, ..., 1000 (paper's "once every 100 steps").
  for (long k = 0; k < 10; ++k)
    EXPECT_EQ(s.analysis(0).analysis_steps[static_cast<std::size_t>(k)], (k + 1) * 100);
  EXPECT_TRUE(validate_schedule(p, s).feasible);
}

TEST(Placement, OutputsSubsetIncludesLastStep) {
  ScheduleProblem p;
  p.steps = 100;
  p.threshold_kind = ThresholdKind::kTotalSeconds;
  p.threshold = 1e9;
  p.output_policy = OutputPolicy::kOptimized;
  p.analyses.push_back(simple_analysis("a", 1.0, 0.1, 10));
  const Schedule s = place(p, PlacementRequest{{10}, {3}});
  EXPECT_EQ(s.analysis(0).output_count(), 3);
  EXPECT_EQ(s.analysis(0).output_steps.back(), s.analysis(0).analysis_steps.back());
  for (long o : s.analysis(0).output_steps) EXPECT_TRUE(s.analysis(0).is_analysis_step(o));
}

TEST(Placement, StaggersMultipleAnalyses) {
  ScheduleProblem p;
  p.steps = 103;  // slack of 3 after 10 x 10 placement
  p.threshold_kind = ThresholdKind::kTotalSeconds;
  p.threshold = 1e9;
  for (int i = 0; i < 3; ++i)
    p.analyses.push_back(simple_analysis("a" + std::to_string(i), 1.0, 0.0, 10));
  const Schedule s = place(p, PlacementRequest{{10, 10, 10}, {10, 10, 10}});
  // Offsets 0, 1, 2: first steps differ.
  EXPECT_NE(s.analysis(0).analysis_steps[0], s.analysis(1).analysis_steps[0]);
  EXPECT_NE(s.analysis(1).analysis_steps[0], s.analysis(2).analysis_steps[0]);
  EXPECT_TRUE(validate_schedule(p, s).feasible);
}

TEST(AggregateMilp, PicksCheapAnalysesFirst) {
  // Budget 10: cheap (ct 1) can run 5x (itv 2, steps 10 -> max 5); expensive
  // (ct 100) never fits. Expect c = (5, 0).
  ScheduleProblem p;
  p.steps = 10;
  p.threshold_kind = ThresholdKind::kTotalSeconds;
  p.threshold = 10.0;
  p.analyses.push_back(simple_analysis("cheap", 1.0, 0.0, 2));
  p.analyses.push_back(simple_analysis("expensive", 100.0, 0.0, 2));
  const ScheduleSolution sol = solve_schedule(p);
  ASSERT_TRUE(sol.solved);
  EXPECT_TRUE(sol.proven_optimal);
  EXPECT_EQ(sol.frequencies, (std::vector<long>{5, 0}));
  EXPECT_TRUE(sol.validation.feasible);
}

TEST(AggregateMilp, WeightsChangePriorities) {
  // Two analyses with equal cost; budget for 5 steps total. Higher weight
  // gets the max (itv caps each at 3 for steps=9, itv=3).
  ScheduleProblem p;
  p.steps = 9;
  p.threshold_kind = ThresholdKind::kTotalSeconds;
  p.threshold = 5.0;
  p.analyses.push_back(simple_analysis("low", 1.0, 0.0, 3, 1.0));
  p.analyses.push_back(simple_analysis("high", 1.0, 0.0, 3, 10.0));
  const ScheduleSolution sol = solve_schedule(p);
  ASSERT_TRUE(sol.solved);
  EXPECT_EQ(sol.frequencies[1], 3);  // maxed
  EXPECT_EQ(sol.frequencies[0], 2);  // leftover budget
}

TEST(AggregateMilp, MemoryForcesOutputs) {
  // im accumulates 1 MB/step over 100 steps; mth only allows ~26 steps of
  // accumulation, so the solver must schedule >= 4 outputs (policy
  // optimized) even though each costs time.
  ScheduleProblem p;
  p.steps = 100;
  p.threshold_kind = ThresholdKind::kTotalSeconds;
  p.threshold = 50.0;
  p.output_policy = OutputPolicy::kOptimized;
  p.mth = 30.0;
  AnalysisParams a = simple_analysis("acc", 1.0, 2.0, 10);
  a.im = 1.0;
  a.fm = 1.0;
  a.cm = 0.0;
  a.om = 0.0;
  a.ot = 2.0;
  p.analyses.push_back(a);
  const ScheduleSolution sol = solve_schedule(p);
  ASSERT_TRUE(sol.solved);
  EXPECT_GT(sol.frequencies[0], 0);
  EXPECT_GE(sol.output_counts[0], 4);  // ceil(100/k) + 1 <= 30 -> k >= 4
  EXPECT_TRUE(sol.validation.feasible);
  EXPECT_LE(sol.validation.peak_memory, 30.0 + 1e-9);
}

TEST(AggregateMilp, InfeasibleMemoryMeansNoAnalyses) {
  ScheduleProblem p;
  p.steps = 10;
  p.threshold_kind = ThresholdKind::kTotalSeconds;
  p.threshold = 100.0;
  p.mth = 5.0;
  AnalysisParams a = simple_analysis("big", 1.0, 0.0, 1);
  a.fm = 50.0;  // can never fit
  p.analyses.push_back(a);
  const ScheduleSolution sol = solve_schedule(p);
  ASSERT_TRUE(sol.solved);
  EXPECT_EQ(sol.frequencies[0], 0);  // scheduled out, not infeasible
}

TEST(TimeExpanded, MatchesHandOptimumTinyInstance) {
  // steps=4, itv=2 -> max 2 analyses; budget 2.5 with ct 1 -> c = 2.
  ScheduleProblem p;
  p.steps = 4;
  p.threshold_kind = ThresholdKind::kTotalSeconds;
  p.threshold = 2.5;
  p.analyses.push_back(simple_analysis("a", 1.0, 0.0, 2));
  SolveOptions opt;
  opt.formulation = Formulation::kTimeExpanded;
  const ScheduleSolution sol = solve_schedule(p, opt);
  ASSERT_TRUE(sol.solved);
  EXPECT_EQ(sol.frequencies, (std::vector<long>{2}));
  EXPECT_TRUE(sol.validation.feasible);
}

TEST(TimeExpanded, MemoryBigMRecurrenceWorks) {
  // Same setup as AggregateMilp.MemoryForcesOutputs but tiny: steps=10,
  // im=1, fm=0, mth=4 -> at most 4 steps between resets (mStart <= 4).
  ScheduleProblem p;
  p.steps = 10;
  p.threshold_kind = ThresholdKind::kTotalSeconds;
  p.threshold = 20.0;
  p.output_policy = OutputPolicy::kOptimized;
  p.mth = 4.0;
  AnalysisParams a = simple_analysis("acc", 0.5, 1.0, 2);
  a.im = 1.0;
  a.ot = 1.0;
  p.analyses.push_back(a);
  SolveOptions opt;
  opt.formulation = Formulation::kTimeExpanded;
  const ScheduleSolution sol = solve_schedule(p, opt);
  ASSERT_TRUE(sol.solved);
  EXPECT_GT(sol.frequencies[0], 0);
  EXPECT_GE(sol.output_counts[0], 2);
  EXPECT_TRUE(sol.validation.feasible);
  EXPECT_LE(sol.validation.peak_memory, 4.0 + 1e-9);
}

// Property: on random small instances the aggregate optimum equals the
// time-expanded optimum when memory is unconstrained, and never exceeds it
// when memory binds (the aggregate bound is conservative). Both schedules
// must pass exact validation.
class CrossValidate : public ::testing::TestWithParam<int> {};

TEST_P(CrossValidate, AggregateVsTimeExpanded) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761u + 99u);
  ScheduleProblem p;
  p.steps = rng.uniform_int(4, 10);
  p.threshold_kind = ThresholdKind::kTotalSeconds;
  p.output_policy = OutputPolicy::kEveryAnalysis;
  const int n = static_cast<int>(rng.uniform_int(1, 2));
  double cost_scale = 0.0;
  for (int i = 0; i < n; ++i) {
    AnalysisParams a;
    a.name = "a" + std::to_string(i);
    a.ct = rng.uniform(0.5, 3.0);
    a.ot = rng.uniform(0.0, 1.0);
    a.ft = rng.bernoulli(0.5) ? rng.uniform(0.0, 1.0) : 0.0;
    a.it = rng.bernoulli(0.3) ? rng.uniform(0.0, 0.1) : 0.0;
    a.itv = rng.uniform_int(1, 3);
    a.weight = rng.uniform(0.5, 2.0);
    cost_scale += a.ct + a.ot;
    p.analyses.push_back(a);
  }
  p.threshold = rng.uniform(0.5, 4.0) * cost_scale;

  const bool with_memory = rng.bernoulli(0.4);
  if (with_memory) {
    for (AnalysisParams& a : p.analyses) {
      a.fm = rng.uniform(0.0, 2.0);
      a.im = rng.uniform(0.0, 1.0);
      a.cm = rng.uniform(0.0, 1.0);
      a.om = rng.uniform(0.0, 1.0);
    }
    p.mth = rng.uniform(4.0, 20.0);
  }

  SolveOptions agg;
  agg.formulation = Formulation::kAggregate;
  SolveOptions te;
  te.formulation = Formulation::kTimeExpanded;

  const ScheduleSolution sa = solve_schedule(p, agg);
  const ScheduleSolution st = solve_schedule(p, te);
  ASSERT_TRUE(sa.solved);
  ASSERT_TRUE(st.solved);
  ASSERT_TRUE(sa.proven_optimal);
  ASSERT_TRUE(st.proven_optimal);
  EXPECT_TRUE(sa.validation.feasible);
  EXPECT_TRUE(st.validation.feasible);

  if (with_memory) {
    EXPECT_LE(sa.objective, st.objective + 1e-6);
  } else {
    EXPECT_NEAR(sa.objective, st.objective, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CrossValidate, ::testing::Range(0, 30));


// Property: under the optimized output policy with unconstrained memory the
// aggregate model can be more conservative (it requires one output per
// active analysis; the time-expanded program allows zero), so agg <= te;
// both must validate.
class CrossValidateOptimized : public ::testing::TestWithParam<int> {};

TEST_P(CrossValidateOptimized, AggregateNeverExceedsTimeExpanded) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 333667u + 11u);
  ScheduleProblem p;
  p.steps = rng.uniform_int(4, 9);
  p.threshold_kind = ThresholdKind::kTotalSeconds;
  p.output_policy = OutputPolicy::kOptimized;
  const int n = static_cast<int>(rng.uniform_int(1, 2));
  double scale = 0.0;
  for (int i = 0; i < n; ++i) {
    AnalysisParams a;
    a.name = "o" + std::to_string(i);
    a.ct = rng.uniform(0.5, 2.0);
    a.ot = rng.uniform(0.1, 1.5);
    a.itv = rng.uniform_int(1, 3);
    scale += a.ct + a.ot;
    p.analyses.push_back(a);
  }
  p.threshold = rng.uniform(0.8, 3.0) * scale;

  SolveOptions agg;
  agg.formulation = Formulation::kAggregate;
  SolveOptions te;
  te.formulation = Formulation::kTimeExpanded;
  const ScheduleSolution sa = solve_schedule(p, agg);
  const ScheduleSolution st = solve_schedule(p, te);
  ASSERT_TRUE(sa.solved);
  ASSERT_TRUE(st.solved);
  EXPECT_TRUE(sa.validation.feasible);
  EXPECT_TRUE(st.validation.feasible);
  EXPECT_LE(sa.objective, st.objective + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CrossValidateOptimized, ::testing::Range(0, 20));

TEST(Greedy, FixedFrequencyHonorsIntervalFloor) {
  ScheduleProblem p;
  p.steps = 100;
  p.threshold_kind = ThresholdKind::kTotalSeconds;
  p.threshold = 1e9;
  p.analyses.push_back(simple_analysis("a", 1.0, 0.0, 25));
  p.analyses.push_back(simple_analysis("b", 1.0, 0.0, 5));
  const Schedule s = fixed_frequency(p, 10);
  EXPECT_EQ(s.analysis(0).analysis_count(), 4);   // clamped to itv 25
  EXPECT_EQ(s.analysis(1).analysis_count(), 10);  // every 10
}

TEST(Greedy, NeverBeatsOptimalButIsFeasible) {
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    ScheduleProblem p;
    p.steps = 100;
    p.threshold_kind = ThresholdKind::kTotalSeconds;
    p.threshold = rng.uniform(5.0, 50.0);
    const int n = static_cast<int>(rng.uniform_int(1, 4));
    for (int i = 0; i < n; ++i) {
      AnalysisParams a = simple_analysis("a" + std::to_string(i), rng.uniform(0.5, 5.0),
                                         rng.uniform(0.0, 2.0),
                                         rng.uniform_int(5, 25), rng.uniform(0.5, 3.0));
      p.analyses.push_back(a);
    }
    const Schedule g = greedy_schedule(p);
    const ValidationReport report = validate_schedule(p, g);
    EXPECT_TRUE(report.feasible);
    const ScheduleSolution opt = solve_schedule(p);
    ASSERT_TRUE(opt.solved);
    std::vector<double> w;
    for (const auto& a : p.analyses) w.push_back(a.weight);
    EXPECT_LE(g.objective(w), opt.objective + 1e-9);
  }
}

TEST(SolverFacade, RhodopsinTable6Totals) {
  // R1/R2/R3 per-step (analysis+output) times from the paper: 0.003, 17.193,
  // 17.194 s; itv=100, Steps=1000. Total recommended analyses per budget:
  // 200 s -> 21, 100 s -> 15, 60 s -> 13, 20 s -> 11, 10 s -> 10.
  ScheduleProblem p;
  p.steps = 1000;
  p.threshold_kind = ThresholdKind::kTotalSeconds;
  p.analyses.push_back(simple_analysis("R1", 0.003, 0.0, 100));
  p.analyses.push_back(simple_analysis("R2", 17.193, 0.0, 100));
  p.analyses.push_back(simple_analysis("R3", 17.194, 0.0, 100));

  const std::vector<std::pair<double, long>> expected{
      {200.0, 21}, {100.0, 15}, {60.0, 13}, {20.0, 11}, {10.0, 10}};
  for (const auto& [budget, total] : expected) {
    p.threshold = budget;
    const ScheduleSolution sol = solve_schedule(p);
    ASSERT_TRUE(sol.solved);
    EXPECT_EQ(std::accumulate(sol.frequencies.begin(), sol.frequencies.end(), 0L), total)
        << "budget " << budget;
    EXPECT_TRUE(sol.validation.feasible);
  }
}

TEST(Recommend, ThresholdSweepIsMonotone) {
  ScheduleProblem p;
  p.steps = 1000;
  p.sim_time_per_step = 0.6;
  p.analyses.push_back(simple_analysis("a", 0.07, 0.0, 100));
  p.analyses.push_back(simple_analysis("b", 25.0, 0.0, 100));
  const auto rows = threshold_sweep(p, {0.20, 0.10, 0.05, 0.01});
  ASSERT_EQ(rows.size(), 4u);
  long prev_total = std::numeric_limits<long>::max();
  for (const SweepRow& row : rows) {
    const long total = std::accumulate(row.frequencies.begin(), row.frequencies.end(), 0L);
    EXPECT_LE(total, prev_total);
    prev_total = total;
    EXPECT_LE(row.analyses_time, row.budget_seconds + 1e-9);
  }
}

TEST(Recommend, OutputTradeoffGrowsAnalyses) {
  // Table 7 logic: halving simulation outputs frees time for more analyses.
  ScheduleProblem p;
  p.steps = 1000;
  p.threshold_kind = ThresholdKind::kTotalSeconds;
  p.analyses.push_back(simple_analysis("R1", 0.003, 0.0, 100));
  p.analyses.push_back(simple_analysis("R2", 17.193, 0.0, 100));
  p.analyses.push_back(simple_analysis("R3", 17.194, 0.0, 100));
  const double bytes_per_output = 91.0e9;
  const double bw = bytes_per_output * 10.0 / 200.6;  // 10 outputs cost 200.6 s
  const auto rows = output_tradeoff(p, bytes_per_output, bw, 10, 50.0, {10, 5, 2});
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_LT(rows[0].total_analyses, rows[1].total_analyses);
  EXPECT_LT(rows[1].total_analyses, rows[2].total_analyses);
}

TEST(Recommend, SummaryMentionsEveryAnalysis) {
  ScheduleProblem p;
  p.steps = 100;
  p.threshold_kind = ThresholdKind::kTotalSeconds;
  p.threshold = 10.0;
  p.analyses.push_back(simple_analysis("rdf", 1.0, 0.0, 10));
  p.analyses.push_back(simple_analysis("msd", 100.0, 0.0, 10));
  const Recommendation rec = recommend(p);
  ASSERT_TRUE(rec.solution.solved);
  EXPECT_NE(rec.summary.find("rdf"), std::string::npos);
  EXPECT_NE(rec.summary.find("msd"), std::string::npos);
  EXPECT_NE(rec.summary.find("not scheduled"), std::string::npos);
}



// Property: the output-count expansion dominates the conservative memory
// bound — it never schedules less (both are sound upper bounds on memory,
// the expansion is tighter).
class ExpansionDominates : public ::testing::TestWithParam<int> {};

TEST_P(ExpansionDominates, ConservativeBoundNeverBeatsExpansion) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 52361u + 13u);
  ScheduleProblem p;
  p.steps = rng.uniform_int(60, 300);
  p.threshold_kind = ThresholdKind::kTotalSeconds;
  p.output_policy = OutputPolicy::kOptimized;
  p.mth = rng.uniform(400.0, 3000.0);
  double scale = 0.0;
  const int n = static_cast<int>(rng.uniform_int(1, 3));
  for (int i = 0; i < n; ++i) {
    AnalysisParams a;
    a.name = "e" + std::to_string(i);
    a.ct = rng.uniform(0.5, 2.0);
    a.ot = rng.uniform(0.2, 1.0);
    a.im = rng.uniform(0.5, 8.0);
    a.cm = rng.uniform(0.0, 40.0);
    a.om = rng.uniform(0.0, 80.0);
    a.itv = rng.uniform_int(5, 25);
    scale += a.ct + a.ot;
    p.analyses.push_back(a);
  }
  p.threshold = rng.uniform(3.0, 10.0) * scale;

  const AggregateModel with = build_aggregate_milp(p);
  AggregateBuildOptions off;
  off.allow_expansion = false;
  const AggregateModel without = build_aggregate_milp(p, {}, off);
  const mip::MipResult a = mip::solve_mip(with.model);
  const mip::MipResult b = mip::solve_mip(without.model);
  ASSERT_TRUE(a.optimal());
  ASSERT_TRUE(b.optimal());
  EXPECT_GE(a.objective, b.objective - 1e-6);
  // Both decode into schedules the exact validator accepts.
  const AggregateCounts ca = decode_aggregate(with, a.x);
  const Schedule sa = place(p, PlacementRequest{ca.analysis_counts, ca.output_counts});
  EXPECT_TRUE(validate_schedule(p, sa).feasible);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ExpansionDominates, ::testing::Range(0, 20));

TEST(Recommend, ParetoFrontierIsMonotoneAndDeduplicated) {
  ScheduleProblem p;
  p.steps = 1000;
  p.threshold_kind = ThresholdKind::kTotalSeconds;
  p.analyses.push_back(simple_analysis("cheap", 0.5, 0.0, 100));
  p.analyses.push_back(simple_analysis("heavy", 20.0, 0.0, 100));
  const auto frontier = pareto_frontier(p, 0.4, 300.0, 20);
  ASSERT_GE(frontier.size(), 3u);
  for (std::size_t k = 1; k < frontier.size(); ++k) {
    EXPECT_GT(frontier[k].budget_seconds, frontier[k - 1].budget_seconds);
    EXPECT_GT(frontier[k].objective, frontier[k - 1].objective);  // strictly improving
  }
  // The top of the ladder saturates at every analysis maxed: obj = 2 + 20.
  EXPECT_DOUBLE_EQ(frontier.back().objective, 22.0);
}

// Property: memory-heavy problems under the optimized output policy — the
// aggregate model's gap bounds plus placement's output rule must always
// yield schedules that pass the exact Eq 5-8 recurrence, and the coupled
// (flush-every-analysis) mode must be reachable.
class MemoryStress : public ::testing::TestWithParam<int> {};

TEST_P(MemoryStress, OptimizedOutputsStayWithinMemory) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 48611u + 7u);
  ScheduleProblem p;
  p.steps = rng.uniform_int(50, 400);
  p.threshold_kind = ThresholdKind::kTotalSeconds;
  p.output_policy = OutputPolicy::kOptimized;
  const int n = static_cast<int>(rng.uniform_int(1, 3));
  double scale = 0.0;
  for (int i = 0; i < n; ++i) {
    AnalysisParams a;
    a.name = "m" + std::to_string(i);
    a.ct = rng.uniform(0.2, 3.0);
    a.ot = rng.uniform(0.05, 1.0);
    a.ft = rng.uniform(0.0, 2.0);
    a.it = rng.bernoulli(0.5) ? rng.uniform(0.0, 0.005) : 0.0;
    a.fm = rng.uniform(0.0, 50.0);
    a.im = rng.uniform(0.5, 20.0);   // accumulates: outputs are forced
    a.cm = rng.uniform(0.0, 100.0);
    a.om = rng.uniform(0.0, 200.0);
    a.itv = rng.uniform_int(1, 20);
    a.weight = rng.uniform(0.5, 3.0);
    scale += a.ct + a.ot;
    p.analyses.push_back(a);
  }
  p.threshold = rng.uniform(2.0, 15.0) * scale;
  // Memory cap somewhere between "one analysis barely fits" and "roomy".
  p.mth = rng.uniform(300.0, 5000.0);

  const ScheduleSolution sol = solve_schedule(p);
  ASSERT_TRUE(sol.solved);
  EXPECT_TRUE(sol.validation.feasible)
      << (sol.validation.violations.empty() ? "" : sol.validation.violations[0]);
  EXPECT_LE(sol.validation.peak_memory, p.mth + 1e-6);
  EXPECT_LE(sol.validation.total_analysis_time, p.time_budget() * (1.0 + 1e-9) + 1e-9);
  // An active analysis whose no-output accumulation would blow the memory
  // budget must flush at least once (o = 0 is legal when memory fits).
  for (std::size_t i = 0; i < p.size(); ++i) {
    const AnalysisParams& a = p.analyses[i];
    const double no_output_peak = a.fm + a.im * static_cast<double>(p.steps) + a.cm;
    if (sol.frequencies[i] > 0 && no_output_peak > p.mth) {
      EXPECT_GE(sol.output_counts[i], 1) << a.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, MemoryStress, ::testing::Range(0, 40));

TEST(CoupledMode, RecoversFlushEveryAnalysisSolutions) {
  // im-heavy analysis where only o = c keeps memory low enough while the
  // time budget caps c: the decoupled bound alone would reject it.
  ScheduleProblem p;
  p.steps = 500;
  p.threshold_kind = ThresholdKind::kTotalSeconds;
  p.threshold = 48.0;
  p.output_policy = OutputPolicy::kOptimized;
  p.mth = 2e9;
  AnalysisParams a;
  a.name = "temporal";
  a.ft = 3.0;
  a.it = 0.002;
  a.im = 40e6;
  a.ct = 2.5;
  a.cm = 100e6;
  a.om = 400e6;
  a.ot = 0.4;
  a.itv = 10;
  a.weight = 2.0;
  p.analyses.push_back(a);
  const ScheduleSolution sol = solve_schedule(p);
  ASSERT_TRUE(sol.solved);
  EXPECT_GE(sol.frequencies[0], 12);  // coupled mode: 14-15 steps fit
  EXPECT_EQ(sol.output_counts[0], sol.frequencies[0]);
  EXPECT_TRUE(sol.validation.feasible);
}


// Property: the validator detects injected violations. Start from a
// feasible optimal schedule and corrupt it in ways that must be flagged.
class ValidatorFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ValidatorFuzz, DetectsInjectedViolations) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 9176u + 31u);
  ScheduleProblem p;
  p.steps = rng.uniform_int(40, 200);
  p.threshold_kind = ThresholdKind::kTotalSeconds;
  p.output_policy = OutputPolicy::kOptimized;
  AnalysisParams a;
  a.name = "target";
  a.ct = rng.uniform(0.5, 2.0);
  a.ot = rng.uniform(0.1, 0.5);
  a.itv = rng.uniform_int(4, 12);
  a.fm = 1.0;
  a.im = rng.uniform(0.5, 2.0);
  a.cm = 1.0;
  a.om = 1.0;
  p.analyses.push_back(a);
  p.threshold = rng.uniform(4.0, 10.0) * (a.ct + a.ot);
  p.mth = 1e9;  // roomy: corruption targets time/structure first

  const ScheduleSolution sol = solve_schedule(p);
  ASSERT_TRUE(sol.solved);
  ASSERT_TRUE(sol.validation.feasible);
  const AnalysisSchedule& good = sol.schedule.analysis(0);
  if (good.analysis_steps.size() < 2) return;  // too small to corrupt meaningfully

  // 1. Interval violation: move the second step right next to the first.
  {
    AnalysisSchedule bad = good;
    bad.analysis_steps[1] = bad.analysis_steps[0] + 1;
    std::sort(bad.analysis_steps.begin(), bad.analysis_steps.end());
    bad.output_steps.clear();
    bad.output_steps.push_back(bad.analysis_steps.back());
    if (bad.analysis_steps[1] - bad.analysis_steps[0] < p.analyses[0].itv) {
      const ValidationReport rep = validate_schedule(p, Schedule(p.steps, {bad}));
      EXPECT_FALSE(rep.feasible);
    }
  }
  // (Outputs at non-analysis steps cannot even be constructed: the Schedule
  // constructor enforces O_i subset of C_i as a precondition.)
  // 3. Time violation: shrink the budget below the schedule's exact cost.
  {
    ScheduleProblem tight = p;
    tight.threshold = sol.validation.total_analysis_time * 0.5;
    const ValidationReport rep = validate_schedule(tight, sol.schedule);
    EXPECT_FALSE(rep.feasible);
  }
  // 4. Memory violation: shrink mth below the schedule's exact peak.
  {
    ScheduleProblem tight = p;
    tight.mth = sol.validation.peak_memory * 0.5;
    const ValidationReport rep = validate_schedule(tight, sol.schedule);
    EXPECT_FALSE(rep.feasible);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ValidatorFuzz, ::testing::Range(0, 25));

}  // namespace
}  // namespace insched::scheduler
