// Unit tests for the sparse LU basis factorization kernel (lp/factor.hpp):
// FTRAN/BTRAN agreement with dense reference solves, singular-basis
// rejection, eta-file updates staying consistent with fresh factorizations
// over long pivot sequences, and snapshot serialization round-trips.

#include <cmath>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "insched/lp/factor.hpp"

namespace {

using insched::lp::Factorization;
using insched::lp::LuEntry;
using insched::lp::LuFactors;
using insched::lp::SparseVec;

using DenseMatrix = std::vector<std::vector<double>>;  // column-major: mat[j][i]

// Random sparse nonsingular-ish matrix: a permuted diagonal of +-[1, 2]
// plus `extra` random off-diagonal entries per column.
DenseMatrix random_basis(int m, int extra, std::mt19937* rng) {
  std::uniform_real_distribution<double> mag(1.0, 2.0);
  std::uniform_real_distribution<double> off(-1.0, 1.0);
  std::uniform_int_distribution<int> row(0, m - 1);
  std::vector<int> perm(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) perm[static_cast<std::size_t>(i)] = i;
  std::shuffle(perm.begin(), perm.end(), *rng);

  DenseMatrix mat(static_cast<std::size_t>(m),
                  std::vector<double>(static_cast<std::size_t>(m), 0.0));
  for (int j = 0; j < m; ++j) {
    auto& col = mat[static_cast<std::size_t>(j)];
    col[static_cast<std::size_t>(perm[static_cast<std::size_t>(j)])] =
        ((*rng)() % 2 == 0 ? 1.0 : -1.0) * mag(*rng);
    for (int k = 0; k < extra; ++k) col[static_cast<std::size_t>(row(*rng))] += 0.25 * off(*rng);
  }
  return mat;
}

std::vector<std::vector<LuEntry>> to_sparse(const DenseMatrix& mat) {
  std::vector<std::vector<LuEntry>> cols(mat.size());
  for (std::size_t j = 0; j < mat.size(); ++j)
    for (std::size_t i = 0; i < mat[j].size(); ++i)
      if (mat[j][i] != 0.0) cols[j].push_back({static_cast<int>(i), mat[j][i]});
  return cols;
}

// Dense Gaussian elimination solve of B x = b (partial pivoting), the
// reference the sparse kernel is checked against.
std::vector<double> dense_solve(DenseMatrix mat, std::vector<double> b) {
  const int m = static_cast<int>(b.size());
  std::vector<int> cols(static_cast<std::size_t>(m));
  for (int j = 0; j < m; ++j) cols[static_cast<std::size_t>(j)] = j;
  // Work on the row-major transpose view: aug[i][j] = mat[j][i].
  DenseMatrix aug(static_cast<std::size_t>(m),
                  std::vector<double>(static_cast<std::size_t>(m), 0.0));
  for (int j = 0; j < m; ++j)
    for (int i = 0; i < m; ++i)
      aug[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          mat[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)];
  for (int k = 0; k < m; ++k) {
    int pivot = k;
    for (int i = k + 1; i < m; ++i)
      if (std::fabs(aug[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)]) >
          std::fabs(aug[static_cast<std::size_t>(pivot)][static_cast<std::size_t>(k)]))
        pivot = i;
    std::swap(aug[static_cast<std::size_t>(k)], aug[static_cast<std::size_t>(pivot)]);
    std::swap(b[static_cast<std::size_t>(k)], b[static_cast<std::size_t>(pivot)]);
    const double d = aug[static_cast<std::size_t>(k)][static_cast<std::size_t>(k)];
    for (int i = k + 1; i < m; ++i) {
      const double f = aug[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)] / d;
      if (f == 0.0) continue;
      for (int j = k; j < m; ++j)
        aug[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] -=
            f * aug[static_cast<std::size_t>(k)][static_cast<std::size_t>(j)];
      b[static_cast<std::size_t>(i)] -= f * b[static_cast<std::size_t>(k)];
    }
  }
  std::vector<double> x(static_cast<std::size_t>(m), 0.0);
  for (int k = m - 1; k >= 0; --k) {
    double acc = b[static_cast<std::size_t>(k)];
    for (int j = k + 1; j < m; ++j)
      acc -= aug[static_cast<std::size_t>(k)][static_cast<std::size_t>(j)] *
             x[static_cast<std::size_t>(j)];
    x[static_cast<std::size_t>(k)] = acc / aug[static_cast<std::size_t>(k)][static_cast<std::size_t>(k)];
  }
  return x;
}

std::vector<double> mat_vec(const DenseMatrix& mat, const std::vector<double>& x) {
  const int m = static_cast<int>(x.size());
  std::vector<double> r(static_cast<std::size_t>(m), 0.0);
  for (int j = 0; j < m; ++j)
    for (int i = 0; i < m; ++i)
      r[static_cast<std::size_t>(i)] +=
          mat[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] *
          x[static_cast<std::size_t>(j)];
  return r;
}

std::vector<double> mat_t_vec(const DenseMatrix& mat, const std::vector<double>& y) {
  const int m = static_cast<int>(y.size());
  std::vector<double> r(static_cast<std::size_t>(m), 0.0);
  for (int j = 0; j < m; ++j)
    for (int i = 0; i < m; ++i)
      r[static_cast<std::size_t>(j)] +=
          mat[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] *
          y[static_cast<std::size_t>(i)];
  return r;
}

void load_vec(SparseVec* v, const std::vector<double>& dense) {
  v->resize(static_cast<int>(dense.size()));
  for (std::size_t i = 0; i < dense.size(); ++i)
    if (dense[i] != 0.0) v->add(static_cast<int>(i), dense[i]);
}

TEST(Factor, FtranMatchesDenseSolve) {
  std::mt19937 rng(7);
  for (const int m : {1, 2, 5, 20, 60}) {
    const DenseMatrix mat = random_basis(m, 3, &rng);
    LuFactors lu;
    ASSERT_TRUE(lu.factorize(to_sparse(mat), 1e-11));
    std::uniform_real_distribution<double> val(-2.0, 2.0);
    for (int trial = 0; trial < 4; ++trial) {
      std::vector<double> b(static_cast<std::size_t>(m), 0.0);
      for (int i = 0; i < m; ++i)
        if (trial == 0 || i % (trial + 1) == 0) b[static_cast<std::size_t>(i)] = val(rng);
      SparseVec x;
      load_vec(&x, b);
      lu.ftran(&x);
      // Verify B x = b directly (robust even if the reference solve drifts).
      std::vector<double> xv(x.values.begin(), x.values.end());
      const std::vector<double> back = mat_vec(mat, xv);
      for (int i = 0; i < m; ++i)
        EXPECT_NEAR(back[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i)], 1e-8)
            << "m=" << m << " row " << i;
      const std::vector<double> ref = dense_solve(mat, b);
      for (int i = 0; i < m; ++i)
        EXPECT_NEAR(xv[static_cast<std::size_t>(i)], ref[static_cast<std::size_t>(i)], 1e-7);
    }
  }
}

TEST(Factor, BtranMatchesDenseTransposeSolve) {
  std::mt19937 rng(11);
  for (const int m : {1, 3, 12, 50}) {
    const DenseMatrix mat = random_basis(m, 2, &rng);
    LuFactors lu;
    ASSERT_TRUE(lu.factorize(to_sparse(mat), 1e-11));
    std::uniform_real_distribution<double> val(-2.0, 2.0);
    std::vector<double> c(static_cast<std::size_t>(m), 0.0);
    for (int i = 0; i < m; i += 2) c[static_cast<std::size_t>(i)] = val(rng);
    SparseVec y;
    load_vec(&y, c);
    lu.btran(&y);
    // Verify B^T y = c.
    std::vector<double> yv(y.values.begin(), y.values.end());
    const std::vector<double> back = mat_t_vec(mat, yv);
    for (int i = 0; i < m; ++i)
      EXPECT_NEAR(back[static_cast<std::size_t>(i)], c[static_cast<std::size_t>(i)], 1e-8)
          << "m=" << m << " pos " << i;
  }
}

TEST(Factor, RejectsSingularBasis) {
  LuFactors lu;
  // Zero column.
  EXPECT_FALSE(lu.factorize({{{0, 1.0}}, {}}, 1e-11));
  // Duplicate columns.
  EXPECT_FALSE(lu.factorize({{{0, 1.0}, {1, 2.0}}, {{0, 1.0}, {1, 2.0}}}, 1e-11));
  // Structurally rank-deficient: both columns hit only row 0.
  EXPECT_FALSE(lu.factorize({{{0, 1.0}}, {{0, 2.0}}}, 1e-11));
  // Numerically singular: second column is a tiny perturbation multiple.
  EXPECT_FALSE(lu.factorize({{{0, 1.0}, {1, 1.0}}, {{0, 2.0}, {1, 2.0 + 1e-14}}}, 1e-9));
  EXPECT_FALSE(lu.ready());
  // A failed factorize must not clobber previously good factors.
  ASSERT_TRUE(lu.factorize({{{0, 2.0}}, {{1, 4.0}}}, 1e-11));
  EXPECT_FALSE(lu.factorize({{{0, 1.0}}, {{0, 2.0}}}, 1e-11));
  ASSERT_TRUE(lu.ready());
  SparseVec x;
  load_vec(&x, {1.0, 2.0});
  lu.ftran(&x);
  EXPECT_NEAR(x.values[0], 0.5, 1e-12);
  EXPECT_NEAR(x.values[1], 0.5, 1e-12);
}

// Replaces basis column `pos` with `col` and records the eta update, exactly
// like a simplex pivot: w = FTRAN(col), then append_eta(pos, w).
void pivot_in(LuFactors* lu, DenseMatrix* mat, int pos, const std::vector<double>& col) {
  SparseVec w;
  load_vec(&w, col);
  lu->ftran(&w);
  lu->append_eta(pos, w);
  (*mat)[static_cast<std::size_t>(pos)] = col;
}

TEST(Factor, EtaUpdatesMatchFreshFactorizationOver100Pivots) {
  const int m = 40;
  std::mt19937 rng(23);
  DenseMatrix mat = random_basis(m, 3, &rng);
  LuFactors lu;
  ASSERT_TRUE(lu.factorize(to_sparse(mat), 1e-11));

  std::uniform_int_distribution<int> pick(0, m - 1);
  std::uniform_real_distribution<double> val(-1.0, 1.0);
  int applied = 0;
  while (applied < 120) {
    // A replacement column dominated by its own position so the basis stays
    // comfortably conditioned over the whole sequence.
    const int pos = pick(rng);
    std::vector<double> col(static_cast<std::size_t>(m), 0.0);
    col[static_cast<std::size_t>(pos)] = 4.0 + val(rng);
    col[static_cast<std::size_t>(pick(rng))] += 0.5 * val(rng);

    // Reject candidates whose pivot element is small (the simplex ratio
    // test does the same via pivot_tol).
    SparseVec probe;
    load_vec(&probe, col);
    lu.ftran(&probe);
    if (std::fabs(probe.values[static_cast<std::size_t>(pos)]) < 0.5) continue;

    pivot_in(&lu, &mat, pos, col);
    ++applied;

    if (applied % 20 != 0) continue;
    // Compare the eta-updated solve against a freshly factorized basis.
    LuFactors fresh;
    ASSERT_TRUE(fresh.factorize(to_sparse(mat), 1e-11)) << "pivot " << applied;
    std::vector<double> b(static_cast<std::size_t>(m), 0.0);
    for (int i = 0; i < m; i += 3) b[static_cast<std::size_t>(i)] = val(rng) + 1.0;
    SparseVec xe, xf;
    load_vec(&xe, b);
    load_vec(&xf, b);
    lu.ftran(&xe);
    fresh.ftran(&xf);
    for (int i = 0; i < m; ++i)
      EXPECT_NEAR(xe.values[static_cast<std::size_t>(i)],
                  xf.values[static_cast<std::size_t>(i)], 1e-6)
          << "pivot " << applied << " pos " << i;
    SparseVec ye, yf;
    load_vec(&ye, b);
    load_vec(&yf, b);
    lu.btran(&ye);
    fresh.btran(&yf);
    for (int i = 0; i < m; ++i)
      EXPECT_NEAR(ye.values[static_cast<std::size_t>(i)],
                  yf.values[static_cast<std::size_t>(i)], 1e-6)
          << "pivot " << applied << " pos " << i;
  }
  EXPECT_EQ(lu.eta_count(), 120);
  EXPECT_GE(lu.stats().peak_eta_length, 120);
}

TEST(Factor, SnapshotSharesCoreAndRoundTripsThroughText) {
  const int m = 60;
  std::mt19937 rng(31);
  DenseMatrix mat = random_basis(m, 2, &rng);
  LuFactors lu;
  ASSERT_TRUE(lu.factorize(to_sparse(mat), 1e-11));

  std::uniform_int_distribution<int> pick(0, m - 1);
  std::uniform_real_distribution<double> val(-1.0, 1.0);
  for (int p = 0; p < 5;) {
    const int pos = pick(rng);
    std::vector<double> col(static_cast<std::size_t>(m), 0.0);
    col[static_cast<std::size_t>(pos)] = 2.5 + val(rng);
    col[static_cast<std::size_t>(pick(rng))] += 0.5 * val(rng);
    // Only admissible pivots (the ratio test guarantees |w_r| > pivot_tol).
    SparseVec probe;
    load_vec(&probe, col);
    lu.ftran(&probe);
    if (std::fabs(probe.values[static_cast<std::size_t>(pos)]) < 0.5) continue;
    pivot_in(&lu, &mat, pos, col);
    ++p;
  }

  const Factorization snap = lu.snapshot();
  EXPECT_EQ(snap.rows(), m);
  EXPECT_EQ(snap.eta_count(), 5);
  // Sibling snapshots share the LU core by pointer.
  EXPECT_EQ(snap.core.get(), lu.snapshot().core.get());
  EXPECT_GT(snap.bytes(), 0u);
  EXPECT_LT(snap.bytes(), snap.dense_equivalent_bytes());

  const std::string text = snap.to_string();
  const auto parsed = Factorization::from_string(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->rows(), m);
  EXPECT_EQ(parsed->eta_count(), 5);
  EXPECT_EQ(parsed->to_string(), text);  // value-exact round trip

  // Loading the parsed snapshot reproduces the original solves exactly.
  LuFactors reloaded;
  reloaded.load(*parsed);
  std::vector<double> b(static_cast<std::size_t>(m), 0.0);
  for (int i = 0; i < m; ++i) b[static_cast<std::size_t>(i)] = val(rng);
  SparseVec xa, xb;
  load_vec(&xa, b);
  load_vec(&xb, b);
  lu.ftran(&xa);
  reloaded.ftran(&xb);
  for (int i = 0; i < m; ++i)
    EXPECT_EQ(xa.values[static_cast<std::size_t>(i)], xb.values[static_cast<std::size_t>(i)]);

  EXPECT_FALSE(Factorization::from_string("factor v2 1 0").has_value());
  EXPECT_FALSE(Factorization::from_string("basis v1 0 0").has_value());
  EXPECT_FALSE(Factorization::from_string(text.substr(0, text.size() / 2)).has_value());
}

TEST(Factor, StatsCountCallsAndDensity) {
  LuFactors lu;
  ASSERT_TRUE(lu.factorize({{{0, 2.0}}, {{1, 4.0}}}, 1e-11));
  EXPECT_EQ(lu.stats().refactorizations, 1);
  SparseVec v;
  load_vec(&v, {1.0, 0.0});
  lu.ftran(&v);
  load_vec(&v, {1.0, 1.0});
  lu.btran(&v);
  EXPECT_EQ(lu.stats().ftran_calls, 1);
  EXPECT_EQ(lu.stats().btran_calls, 1);
  EXPECT_EQ(lu.stats().rhs_dimension, 4);
  EXPECT_EQ(lu.stats().rhs_nonzeros, 3);
  EXPECT_NEAR(lu.stats().rhs_density(), 0.75, 1e-12);
  lu.reset_stats();
  EXPECT_EQ(lu.stats().ftran_calls, 0);
  EXPECT_EQ(lu.stats().refactorizations, 0);
}

}  // namespace
