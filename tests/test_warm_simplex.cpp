// Tests for the dual-simplex warm-start path: Basis/Factorization
// snapshots, solve_lp_dual, and the reusable WarmSimplex workspace. The core
// property is cross-validation against the cold two-phase primal on
// randomized bound-perturbed LPs — exactly the branch-and-bound re-solve
// pattern (children differ from the parent only in tightened column bounds).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "insched/lp/basis.hpp"
#include "insched/lp/model.hpp"
#include "insched/lp/simplex.hpp"
#include "insched/support/random.hpp"

namespace insched::lp {
namespace {

// Fully bounded random LP with kLe rows anchored to a known feasible point,
// so the base problem is always feasible.
Model random_bounded_lp(Rng& rng, int n, int rows) {
  Model m;
  m.set_sense(rng.bernoulli(0.5) ? Sense::kMaximize : Sense::kMinimize);
  for (int j = 0; j < n; ++j)
    m.add_column("x", 0.0, rng.uniform(2.0, 8.0), rng.uniform(-4.0, 4.0));
  for (int r = 0; r < rows; ++r) {
    std::vector<RowEntry> entries;
    double activity = 0.0;
    for (int j = 0; j < n; ++j) {
      if (!rng.bernoulli(0.7)) continue;
      const double a = rng.uniform(0.1, 2.0);
      entries.push_back(RowEntry{j, a});
      activity += a * 1.0;  // feasible point: x = 1 everywhere
    }
    if (entries.empty()) entries.push_back(RowEntry{0, 1.0});
    m.add_row("r", RowType::kLe, activity + rng.uniform(0.5, 4.0), std::move(entries));
  }
  return m;
}

TEST(Basis, SerializationRoundTrip) {
  Basis b;
  b.basic = {3, 0, 7};
  b.status = {BasisStatus::kBasic, BasisStatus::kAtLower, BasisStatus::kAtUpper,
              BasisStatus::kBasic, BasisStatus::kFree,    BasisStatus::kAtLower,
              BasisStatus::kAtLower, BasisStatus::kBasic};
  ASSERT_TRUE(b.consistent());
  const std::string text = b.to_string();
  const auto parsed = Basis::from_string(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->basic, b.basic);
  EXPECT_EQ(parsed->status, b.status);
  EXPECT_FALSE(Basis::from_string("garbage").has_value());
}

TEST(Basis, ConsistencyRejectsMismatches) {
  Basis b;
  b.basic = {0, 1};
  b.status = {BasisStatus::kBasic, BasisStatus::kAtLower, BasisStatus::kAtUpper};
  EXPECT_FALSE(b.consistent());  // status[1] must be kBasic
  b.status[1] = BasisStatus::kBasic;
  EXPECT_TRUE(b.consistent());
  b.basic[1] = 5;  // out of range for 3 variables
  EXPECT_FALSE(b.consistent());
}

TEST(WarmSimplex, CollectBasisExportsConsistentSnapshot) {
  Rng rng(42);
  const Model m = random_bounded_lp(rng, 6, 4);
  SimplexOptions opt;
  opt.collect_basis = true;
  const SimplexResult res = solve_lp(m, opt);
  ASSERT_TRUE(res.optimal());
  ASSERT_FALSE(res.basis.empty());
  EXPECT_TRUE(res.basis.consistent());
  EXPECT_EQ(res.basis.rows(), m.num_rows());
  ASSERT_NE(res.factor, nullptr);
  EXPECT_EQ(res.factor->rows(), m.num_rows());
}

TEST(WarmSimplex, DualResolveFromOwnBasisIsANoop) {
  // Re-solving the *unchanged* problem from its own optimal basis must
  // terminate immediately at the same objective.
  Rng rng(7);
  const Model m = random_bounded_lp(rng, 8, 5);
  SimplexOptions opt;
  opt.collect_basis = true;
  const SimplexResult cold = solve_lp(m, opt);
  ASSERT_TRUE(cold.optimal());
  ASSERT_FALSE(cold.basis.empty());
  const SimplexResult warm = solve_lp_dual(m, cold.basis, opt);
  ASSERT_TRUE(warm.optimal());
  EXPECT_NEAR(warm.objective, cold.objective, 1e-8);
}

// Property test: tighten random column bounds (the branch-and-bound child
// pattern) and compare the warm dual re-solve against a cold primal solve of
// the perturbed model. Statuses must agree; on optimal, objectives must
// match to tolerance.
class WarmVsCold : public ::testing::TestWithParam<int> {};

TEST_P(WarmVsCold, BoundPerturbedResolveAgrees) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 6151u + 17u);
  const int n = static_cast<int>(rng.uniform_int(3, 10));
  const int rows = static_cast<int>(rng.uniform_int(2, 7));
  const Model base = random_bounded_lp(rng, n, rows);

  SimplexOptions opt;
  opt.collect_basis = true;
  const SimplexResult parent = solve_lp(base, opt);
  ASSERT_TRUE(parent.optimal());
  ASSERT_FALSE(parent.basis.empty());

  WarmSimplex ws(base, opt);
  for (int trial = 0; trial < 8; ++trial) {
    // Random branch-like overrides: floor/ceil splits around the parent
    // optimum plus occasional hard fixings. May be infeasible — that is part
    // of what the statuses must agree on.
    std::vector<BoundOverride> overrides;
    for (int j = 0; j < n; ++j) {
      if (!rng.bernoulli(0.4)) continue;
      const double v = parent.x[static_cast<std::size_t>(j)];
      const Column& c = base.column(j);
      if (rng.bernoulli(0.5)) {
        overrides.push_back({j, c.lower, std::max(c.lower, std::floor(v))});
      } else {
        overrides.push_back({j, std::min(c.upper, std::floor(v) + 1.0), c.upper});
      }
    }
    if (overrides.empty()) overrides.push_back({0, 0.0, 0.0});

    Model child = base;
    for (const BoundOverride& o : overrides) child.set_bounds(o.column, o.lower, o.upper);
    const SimplexResult cold = solve_lp(child);

    const SimplexResult warm = ws.solve_dual(overrides, parent.basis, parent.factor.get());
    if (warm.status == SolveStatus::kNumericalFailure ||
        warm.status == SolveStatus::kIterationLimit) {
      // The contract: warm trouble is reported, and the cold fallback on the
      // same workspace must recover the answer.
      const SimplexResult fallback = ws.solve_cold(overrides);
      EXPECT_EQ(fallback.status, cold.status);
      if (cold.optimal()) {
        EXPECT_NEAR(fallback.objective, cold.objective, 1e-6);
      }
      continue;
    }
    EXPECT_EQ(warm.status, cold.status) << "trial " << trial;
    if (cold.optimal() && warm.optimal()) {
      EXPECT_NEAR(warm.objective, cold.objective, 1e-6) << "trial " << trial;
      EXPECT_TRUE(child.is_feasible(warm.x, 1e-5));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, WarmVsCold, ::testing::Range(0, 40));

TEST(WarmSimplex, ColdSolveOnWorkspaceMatchesSolveLp) {
  Rng rng(99);
  for (int i = 0; i < 10; ++i) {
    const Model m = random_bounded_lp(rng, 7, 4);
    WarmSimplex ws(m);
    const SimplexResult a = ws.solve_cold();
    const SimplexResult b = solve_lp(m);
    ASSERT_EQ(a.status, b.status);
    if (b.optimal()) {
      EXPECT_NEAR(a.objective, b.objective, 1e-8);
    }
  }
}

TEST(WarmSimplex, RepeatedResolvesReuseWorkspace) {
  // The workspace must be reusable across many override sets without state
  // leaking between solves: interleave perturbed and empty-override solves
  // and check the base optimum is always recovered.
  Rng rng(123);
  const Model m = random_bounded_lp(rng, 6, 4);
  SimplexOptions opt;
  opt.collect_basis = true;
  const SimplexResult cold = solve_lp(m, opt);
  ASSERT_TRUE(cold.optimal());
  WarmSimplex ws(m, opt);
  for (int i = 0; i < 6; ++i) {
    std::vector<BoundOverride> tight;
    tight.push_back({static_cast<int>(i % m.num_columns()), 0.0, 1.0});
    (void)ws.solve_dual(tight, cold.basis, cold.factor.get());
    const SimplexResult again = ws.solve_dual({}, cold.basis, cold.factor.get());
    ASSERT_TRUE(again.optimal());
    EXPECT_NEAR(again.objective, cold.objective, 1e-8);
  }
}

}  // namespace
}  // namespace insched::lp
