// Tests for the pre-solve model linter (scheduler/lint.hpp): one crafted
// instance per catalog diagnostic — each must fire exactly once on its
// instance — plus clean passes over the three paper case studies, the
// report plumbing (severity ordering, exit codes, JSON), and the routing of
// the config reader's validation through the shared field checks.

#include <gtest/gtest.h>

#include "insched/casestudy/flash_sedov.hpp"
#include "insched/casestudy/lammps_rhodo.hpp"
#include "insched/casestudy/lammps_water.hpp"
#include "insched/scheduler/aggregate_milp.hpp"
#include "insched/scheduler/lint.hpp"
#include "insched/scheduler/problem_io.hpp"

namespace insched {
namespace {

using scheduler::AnalysisParams;
using scheduler::LintReport;
using scheduler::LintSeverity;
using scheduler::ScheduleProblem;

int count_id(const LintReport& report, const std::string& id) {
  int n = 0;
  for (const auto& d : report.diagnostics)
    if (d.id == id) ++n;
  return n;
}

/// Lint-clean baseline: whole-run budget 10 s, memory 1000 B, one cheap
/// analysis. Every crafted-defect test perturbs exactly one aspect.
ScheduleProblem base_problem() {
  ScheduleProblem p;
  p.steps = 100;
  p.threshold = 0.1;
  p.threshold_kind = scheduler::ThresholdKind::kFractionOfSimTime;
  p.sim_time_per_step = 1.0;
  p.mth = 1000.0;
  p.bw = 100.0;
  AnalysisParams a;
  a.name = "probe";
  a.ct = 0.5;
  a.ot = 0.0;
  a.itv = 10;
  p.analyses.push_back(a);
  return p;
}

/// The single expected diagnostic of the crafted instance.
void expect_fires_once(const ScheduleProblem& p, const char* id, LintSeverity severity) {
  const LintReport report = scheduler::lint_problem(p);
  EXPECT_EQ(count_id(report, id), 1) << report.to_string();
  EXPECT_EQ(static_cast<int>(report.diagnostics.size()), 1) << report.to_string();
  ASSERT_FALSE(report.diagnostics.empty());
  EXPECT_EQ(report.diagnostics.front().severity, severity);
}

TEST(LintProblem, BaselineIsClean) {
  const LintReport report = scheduler::lint_problem(base_problem());
  EXPECT_TRUE(report.clean()) << report.to_string();
  EXPECT_EQ(report.exit_code(), 0);
}

// --- trivial-infeasibility and sign errors (severity: error) ---------------

TEST(LintProblem, StepsNotPositive) {
  ScheduleProblem p = base_problem();
  p.steps = 0;
  // itv (10) now also exceeds steps (0)? No: the interval check is gated on
  // steps > 0, so only the steps diagnostic fires.
  expect_fires_once(p, "steps-not-positive", LintSeverity::kError);
}

TEST(LintProblem, SimTimeNotPositive) {
  ScheduleProblem p = base_problem();
  p.sim_time_per_step = -0.5;
  expect_fires_once(p, "sim-time-per-step-not-positive", LintSeverity::kError);
}

TEST(LintProblem, ThresholdNotPositive) {
  ScheduleProblem p = base_problem();
  p.threshold = 0.0;
  expect_fires_once(p, "threshold-not-positive", LintSeverity::kError);
}

TEST(LintProblem, MemoryNotPositive) {
  ScheduleProblem p = base_problem();
  p.mth = -1.0;
  expect_fires_once(p, "memory-not-positive", LintSeverity::kError);
}

TEST(LintProblem, BandwidthNotPositive) {
  ScheduleProblem p = base_problem();
  p.bw = 0.0;
  expect_fires_once(p, "bandwidth-not-positive", LintSeverity::kError);
}

TEST(LintProblem, UnlimitedBudgetsAreFine) {
  ScheduleProblem p = base_problem();
  p.mth = scheduler::kNoLimit;
  p.bw = scheduler::kNoLimit;
  EXPECT_TRUE(scheduler::lint_problem(p).clean());
}

TEST(LintProblem, NoAnalyses) {
  ScheduleProblem p = base_problem();
  p.analyses.clear();
  expect_fires_once(p, "no-analyses", LintSeverity::kError);
}

TEST(LintProblem, NegativeParameter) {
  ScheduleProblem p = base_problem();
  p.analyses[0].fm = -64.0;
  expect_fires_once(p, "parameter-negative", LintSeverity::kError);
}

TEST(LintProblem, NanParameterIsNegative) {
  ScheduleProblem p = base_problem();
  p.analyses[0].ct = std::numeric_limits<double>::quiet_NaN();
  const LintReport report = scheduler::lint_problem(p);
  EXPECT_EQ(count_id(report, "parameter-negative"), 1) << report.to_string();
}

TEST(LintProblem, IntervalNotPositive) {
  ScheduleProblem p = base_problem();
  p.analyses[0].itv = 0;
  expect_fires_once(p, "itv-not-positive", LintSeverity::kError);
}

TEST(LintProblem, IntervalExceedsSteps) {
  ScheduleProblem p = base_problem();
  p.analyses[0].itv = 101;
  expect_fires_once(p, "interval-exceeds-steps", LintSeverity::kError);
}

// The budget cross-checks are warnings: activation is a decision variable,
// so an analysis that can never be enabled leaves the model feasible — the
// solver just proves it stays inactive.
TEST(LintProblem, ActivationMemoryExceedsBudget) {
  ScheduleProblem p = base_problem();
  p.analyses[0].fm = 800.0;
  p.analyses[0].im = 300.0;  // fm + im = 1100 > mth = 1000
  expect_fires_once(p, "memory-exceeds-budget", LintSeverity::kWarning);
}

TEST(LintProblem, SingleStepExceedsTimeBudget) {
  ScheduleProblem p = base_problem();
  p.analyses[0].ft = 4.0;
  p.analyses[0].ct = 5.0;
  p.analyses[0].ot = 2.0;  // 4 + 5 + 2 = 11 > budget = 10
  expect_fires_once(p, "step-cost-exceeds-budget", LintSeverity::kWarning);
}

TEST(LintProblem, OutputTimeCountsOnlyUnderEveryAnalysis) {
  ScheduleProblem p = base_problem();
  p.analyses[0].ft = 4.0;
  p.analyses[0].ct = 5.0;
  p.analyses[0].ot = 2.0;
  p.output_policy = scheduler::OutputPolicy::kNone;  // 4 + 5 = 9 <= 10
  EXPECT_TRUE(scheduler::lint_problem(p).clean());
}

// --- modelling smells (severity: warning / info) ---------------------------

TEST(LintProblem, ZeroWeight) {
  ScheduleProblem p = base_problem();
  p.analyses[0].weight = 0.0;
  expect_fires_once(p, "zero-weight", LintSeverity::kWarning);
}

TEST(LintProblem, DuplicateName) {
  ScheduleProblem p = base_problem();
  AnalysisParams twin = p.analyses[0];
  twin.ct = 0.25;  // different costs: only the name collides
  p.analyses.push_back(twin);
  expect_fires_once(p, "duplicate-name", LintSeverity::kWarning);
}

TEST(LintProblem, DominatedAnalysis) {
  ScheduleProblem p = base_problem();
  AnalysisParams twin = p.analyses[0];
  twin.name = "probe-copy";  // identical cost vector, different name
  twin.weight = 0.5;
  p.analyses.push_back(twin);
  expect_fires_once(p, "dominated-analysis", LintSeverity::kInfo);
}

TEST(LintProblem, ExtremeTimeCoefficientRange) {
  ScheduleProblem p = base_problem();
  AnalysisParams tiny = p.analyses[0];
  tiny.name = "tiny";
  tiny.ct = 1e-9;  // 0.5 / 1e-9 = 5e8 > 1e8
  p.analyses.push_back(tiny);
  expect_fires_once(p, "extreme-coefficient-range", LintSeverity::kWarning);
}

TEST(LintProblem, ExtremeMemoryCoefficientRange) {
  ScheduleProblem p = base_problem();
  p.mth = scheduler::kNoLimit;  // keep the budget check out of the way
  p.analyses[0].fm = 1e-6;
  AnalysisParams big = p.analyses[0];
  big.name = "big";
  big.fm = 1e6;
  p.analyses.push_back(big);
  const LintReport report = scheduler::lint_problem(p);
  EXPECT_EQ(count_id(report, "extreme-coefficient-range"), 1) << report.to_string();
}

// --- generated-model lint --------------------------------------------------

TEST(LintModel, EmptyRowRedundantAndInfeasible) {
  lp::Model m;
  m.add_column("x", 0.0, 1.0, 1.0);
  m.add_row("vacuous", lp::RowType::kLe, 5.0, {});
  m.add_row("broken", lp::RowType::kGe, 1.0, {});
  const LintReport report = scheduler::lint_model(m);
  EXPECT_EQ(count_id(report, "empty-row"), 1) << report.to_string();
  EXPECT_EQ(count_id(report, "empty-row-infeasible"), 1) << report.to_string();
  EXPECT_TRUE(report.has_errors());
}

TEST(LintModel, SingletonRow) {
  lp::Model m;
  const int x = m.add_column("x", 0.0, 10.0, 1.0);
  m.add_row("bound_in_disguise", lp::RowType::kLe, 4.0, {{x, 2.0}});
  const LintReport report = scheduler::lint_model(m);
  EXPECT_EQ(count_id(report, "singleton-row"), 1) << report.to_string();
  EXPECT_EQ(report.exit_code(), 0);  // info only
}

TEST(LintModel, DuplicateRow) {
  lp::Model m;
  const int x = m.add_column("x", 0.0, 10.0, 1.0);
  const int y = m.add_column("y", 0.0, 10.0, 1.0);
  m.add_row("r0", lp::RowType::kLe, 4.0, {{x, 1.0}, {y, 2.0}});
  m.add_row("r1", lp::RowType::kLe, 4.0, {{y, 2.0}, {x, 1.0}});  // same, permuted
  const LintReport report = scheduler::lint_model(m);
  EXPECT_EQ(count_id(report, "duplicate-row"), 1) << report.to_string();
}

TEST(LintModel, FixedRowRedundantAndInfeasible) {
  lp::Model m;
  const int x = m.add_column("x", 3.0, 3.0, 1.0);  // fixed at 3
  m.add_row("constant_ok", lp::RowType::kLe, 10.0, {{x, 1.0}});
  m.add_row("constant_bad", lp::RowType::kGe, 10.0, {{x, 1.0}});
  const LintReport report = scheduler::lint_model(m);
  EXPECT_EQ(count_id(report, "fixed-row"), 1) << report.to_string();
  EXPECT_EQ(count_id(report, "fixed-row-infeasible"), 1) << report.to_string();
}

TEST(LintModel, RowCoefficientRange) {
  lp::Model m;
  const int x = m.add_column("x", 0.0, 1.0, 1.0);
  const int y = m.add_column("y", 0.0, 1.0, 1.0);
  m.add_row("ill_scaled", lp::RowType::kLe, 1.0, {{x, 1e9}, {y, 1.0}});
  const LintReport report = scheduler::lint_model(m);
  EXPECT_EQ(count_id(report, "row-coefficient-range"), 1) << report.to_string();
  EXPECT_EQ(report.exit_code(), 1);
  EXPECT_EQ(report.exit_code(/*strict=*/true), 2);
}

// --- clean passes over the paper case studies ------------------------------

TEST(LintCaseStudies, InstancesAndGeneratedModelsAreClean) {
  const ScheduleProblem cases[] = {
      casestudy::water_ions_problem(16384, 0.08),
      casestudy::rhodopsin_problem(100.0),
      casestudy::flash_problem({2.0, 1.0, 2.0}, 0.08),
  };
  for (const ScheduleProblem& p : cases) {
    const LintReport instance = scheduler::lint_problem(p);
    EXPECT_TRUE(instance.clean()) << instance.to_string();
    const LintReport model =
        scheduler::lint_model(scheduler::build_aggregate_milp(p).model);
    EXPECT_TRUE(model.clean()) << model.to_string();
  }
}

// --- report plumbing -------------------------------------------------------

TEST(LintReport, ExitCodesAndCounts) {
  LintReport report;
  EXPECT_EQ(report.exit_code(), 0);
  report.add(LintSeverity::kInfo, "note", "x", "m");
  EXPECT_EQ(report.exit_code(), 0);  // info never affects the exit code
  report.add(LintSeverity::kWarning, "warn", "x", "m");
  EXPECT_EQ(report.exit_code(), 1);
  EXPECT_EQ(report.exit_code(/*strict=*/true), 2);
  report.add(LintSeverity::kError, "err", "x", "m");
  EXPECT_EQ(report.exit_code(), 2);
  EXPECT_EQ(report.count(LintSeverity::kInfo), 1);
  EXPECT_EQ(report.count(LintSeverity::kWarning), 1);
  EXPECT_EQ(report.count(LintSeverity::kError), 1);
}

TEST(LintReport, ToStringPutsErrorsFirst) {
  LintReport report;
  report.add(LintSeverity::kInfo, "note-id", "locus-a", "info message");
  report.add(LintSeverity::kError, "err-id", "locus-b", "error message", "fix it");
  const std::string text = report.to_string();
  const auto err_pos = text.find("error: locus-b");
  const auto info_pos = text.find("info: locus-a");
  ASSERT_NE(err_pos, std::string::npos) << text;
  ASSERT_NE(info_pos, std::string::npos) << text;
  EXPECT_LT(err_pos, info_pos);
  EXPECT_NE(text.find("(hint: fix it)"), std::string::npos);
  EXPECT_NE(text.find("[err-id]"), std::string::npos);
}

TEST(LintReport, JsonEscapesAndCounts) {
  LintReport report;
  report.add(LintSeverity::kWarning, "w", "[analysis] \"q\"", "line1\nline2");
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\\\"q\\\""), std::string::npos) << json;
  EXPECT_NE(json.find("line1\\nline2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"warnings\":1"), std::string::npos) << json;
}

// --- config-reader routing -------------------------------------------------

TEST(LintConfig, ReaderThrowsTheSharedDiagnosticMessage) {
  const std::string text = R"(
[run]
steps = 100
threshold = -0.5

[analysis]
name = a
ct = 0.1
)";
  try {
    (void)scheduler::problem_from_string(text);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("config: [run] / threshold"), std::string::npos) << what;
    EXPECT_NE(what.find("'threshold' must be positive, got -0.5"), std::string::npos)
        << what;
  }
}

TEST(LintConfig, LenientParseDefersToLint) {
  const std::string text = R"(
[run]
steps = 100
threshold = -0.5

[analysis]
name = a
ct = 0.1
)";
  const ScheduleProblem p =
      scheduler::problem_from_config_lenient(Config::parse(text));
  EXPECT_EQ(p.threshold, -0.5);  // kept for the linter to report
  const LintReport report = scheduler::lint_problem(p);
  EXPECT_EQ(count_id(report, "threshold-not-positive"), 1) << report.to_string();
}

TEST(LintConfig, SharedChecksAgreeWithReader) {
  const auto bad = scheduler::check_positive_number("[run]", "threshold", -1.0);
  ASSERT_TRUE(bad.has_value());
  EXPECT_EQ(bad->id, "threshold-not-positive");
  EXPECT_EQ(bad->severity, LintSeverity::kError);
  EXPECT_EQ(scheduler::config_error_message(*bad),
            "config: [run] / threshold: 'threshold' must be positive, got -1");
  EXPECT_FALSE(scheduler::check_positive_number("[run]", "threshold", 0.5).has_value());
  EXPECT_FALSE(scheduler::check_interval_within_steps("[analysis] 'a'", 10, 100));
  EXPECT_TRUE(scheduler::check_interval_within_steps("[analysis] 'a'", 101, 100));
}

}  // namespace
}  // namespace insched
