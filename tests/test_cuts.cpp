// Validity and concurrency tests for the cutting-plane layer: separators
// (lifted covers, cliques, MIR, Gomory) must never cut an integer feasible
// point, the cut pool must stay consistent under concurrent offers, probing
// reductions must round-trip through PresolveResult::restore, and the
// deterministic wave mode must stay bit-identical with the cut engine on.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <thread>
#include <vector>

#include "insched/casestudy/flash_sedov.hpp"
#include "insched/casestudy/lammps_rhodo.hpp"
#include "insched/casestudy/lammps_water.hpp"
#include "insched/lp/model.hpp"
#include "insched/lp/simplex.hpp"
#include "insched/mip/branch_and_bound.hpp"
#include "insched/mip/cut_pool.hpp"
#include "insched/mip/cuts.hpp"
#include "insched/mip/probing.hpp"
#include "insched/scheduler/timeexp_milp.hpp"
#include "insched/support/random.hpp"

namespace insched::mip {
namespace {

using insched::Rng;
using lp::Model;
using lp::RowEntry;
using lp::RowType;
using lp::Sense;
using lp::VarType;

double cut_lhs(const Cut& cut, const std::vector<double>& x) {
  double lhs = 0.0;
  for (const RowEntry& e : cut.entries) lhs += e.coeff * x[static_cast<std::size_t>(e.column)];
  return lhs;
}

bool cut_satisfied(const Cut& cut, const std::vector<double>& x, double tol = 1e-7) {
  const double lhs = cut_lhs(cut, x);
  switch (cut.type) {
    case RowType::kLe: return lhs <= cut.rhs + tol;
    case RowType::kGe: return lhs >= cut.rhs - tol;
    case RowType::kEq: return std::fabs(lhs - cut.rhs) <= tol;
  }
  return false;
}

// Runs `check` on every integer-feasible point of a pure-binary model.
void for_each_feasible(const Model& m, const std::function<void(const std::vector<double>&)>& check) {
  const int n = m.num_columns();
  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  std::function<void(int)> rec = [&](int j) {
    if (j == n) {
      if (m.is_feasible(x, 1e-9)) check(x);
      return;
    }
    for (int v = 0; v <= 1; ++v) {
      x[static_cast<std::size_t>(j)] = v;
      rec(j + 1);
    }
  };
  rec(0);
}

// Random binary knapsack model: `rows` <= rows over `n` binaries with
// positive coefficients, maximizing a positive objective.
Model random_knapsack(Rng* rng, int n, int rows) {
  Model m;
  m.set_sense(Sense::kMaximize);
  for (int j = 0; j < n; ++j)
    m.add_column("x", 0, 1, rng->uniform(1.0, 10.0), VarType::kBinary);
  for (int r = 0; r < rows; ++r) {
    std::vector<RowEntry> entries;
    double total = 0.0;
    for (int j = 0; j < n; ++j) {
      const double a = rng->uniform(1.0, 8.0);
      entries.push_back({j, a});
      total += a;
    }
    m.add_row("k", RowType::kLe, rng->uniform(0.3, 0.7) * total, std::move(entries));
  }
  return m;
}

// Every cut a separator emits must hold at every integer feasible point —
// separators only see rows and global bounds, so validity is global.
TEST(Cuts, SeparatorsNeverCutIntegerPointsOnRandomKnapsacks) {
  Rng rng(20240807);
  for (int trial = 0; trial < 20; ++trial) {
    const Model m = random_knapsack(&rng, 9, trial % 3 + 1);
    lp::SimplexOptions lpopt;
    lpopt.collect_basis = true;
    const lp::SimplexResult rel = lp::solve_lp(m, lpopt);
    ASSERT_TRUE(rel.optimal());

    std::vector<Cut> cuts;
    for (Cut& c : generate_cover_cuts(m, rel.x, 1e-5, /*lift=*/true))
      cuts.push_back(std::move(c));
    for (Cut& c : generate_mir_cuts(m, rel.x, 1e-5)) cuts.push_back(std::move(c));
    ConflictGraph conflicts;
    conflicts.build(m, {});
    for (Cut& c : generate_clique_cuts(m, rel.x, conflicts, 1e-5))
      cuts.push_back(std::move(c));
    if (!rel.basis.empty()) {
      for (Cut& c : generate_gomory_cuts(m, rel.x, rel.basis, rel.factor.get()))
        cuts.push_back(std::move(c));
    }

    // Every emitted cut is violated at the fractional LP optimum (that is
    // what makes it a cut)...
    for (const Cut& cut : cuts) EXPECT_FALSE(cut_satisfied(cut, rel.x, 1e-9));
    // ...and satisfied at every integer feasible point (what makes it valid).
    for_each_feasible(m, [&](const std::vector<double>& x) {
      for (const Cut& cut : cuts)
        ASSERT_TRUE(cut_satisfied(cut, x))
            << cut_family_name(cut.family) << " cut violated by an integer point";
    });
  }
}

// MIR rounding on a budget row with near-equal costs must produce the
// cardinality bound that plain branching cannot infer.
TEST(Cuts, MirClosesNearEqualCostBudgetRow) {
  Model m;
  m.set_sense(Sense::kMaximize);
  std::vector<RowEntry> budget;
  for (int j = 0; j < 10; ++j) {
    const int col = m.add_column("x", 0, 1, 1.0, VarType::kBinary);
    budget.push_back({col, 17.193 + 1e-3 * j});
  }
  m.add_row("budget", RowType::kLe, 100.0, std::move(budget));
  // Fractional point spreading the budget: 100 / ~17.2 = 5.8 per-unit total.
  std::vector<double> x(10, 0.58);
  const std::vector<Cut> cuts = generate_mir_cuts(m, x, 1e-4);
  ASSERT_FALSE(cuts.empty());
  const Cut& cut = cuts.front();
  EXPECT_EQ(cut.family, CutFamily::kMir);
  // floor(100 / 17.193..) = 5: at most five analysis steps fit the budget.
  EXPECT_NEAR(cut.rhs, 5.0, 1e-9);
  EXPECT_GT(cut.violation, 0.5);
  for_each_feasible(m, [&](const std::vector<double>& xi) {
    EXPECT_TRUE(cut_satisfied(cut, xi));
  });
}

// Cuts separated at the root of the three case-study staircase MILPs must
// be satisfied by the (independently proved) integer optimum.
TEST(Cuts, CaseStudyOptimaSatisfyAllRootCuts) {
  struct Case {
    const char* name;
    scheduler::ScheduleProblem problem;
  };
  const Case cases[] = {
      {"water", casestudy::water_ions_problem(16384, 0.10)},
      {"rhodo", casestudy::rhodopsin_problem(100.0)},
      {"flash", casestudy::flash_problem({2.0, 1.0, 2.0})},
  };
  for (const Case& cs : cases) {
    scheduler::ScheduleProblem p = cs.problem;
    p.steps = 40;
    p.mth = scheduler::kNoLimit;
    for (auto& a : p.analyses) a.itv = std::max<long>(1, p.steps / 5);
    const Model model = scheduler::build_time_expanded_milp(p).model;

    MipOptions opt;
    opt.threads = 1;
    const MipResult res = solve_mip(model, opt);
    ASSERT_TRUE(res.optimal()) << cs.name;

    lp::SimplexOptions lpopt;
    lpopt.collect_basis = true;
    const lp::SimplexResult rel = lp::solve_lp(model, lpopt);
    ASSERT_TRUE(rel.optimal()) << cs.name;

    std::vector<Cut> cuts;
    for (Cut& c : generate_cover_cuts(model, rel.x)) cuts.push_back(std::move(c));
    for (Cut& c : generate_mir_cuts(model, rel.x)) cuts.push_back(std::move(c));
    ConflictGraph conflicts;
    conflicts.build(model, {});
    for (Cut& c : generate_clique_cuts(model, rel.x, conflicts))
      cuts.push_back(std::move(c));
    if (!rel.basis.empty()) {
      for (Cut& c : generate_gomory_cuts(model, rel.x, rel.basis, rel.factor.get()))
        cuts.push_back(std::move(c));
    }
    for (const Cut& cut : cuts) {
      EXPECT_TRUE(cut_satisfied(cut, res.x))
          << cs.name << ": " << cut_family_name(cut.family)
          << " cut violated by the integer optimum";
    }
  }
}

Cut make_cut(int col_a, int col_b, double rhs) {
  Cut cut;
  cut.type = RowType::kLe;
  cut.family = CutFamily::kCover;
  cut.rhs = rhs;
  cut.entries = {{col_a, 1.0}, {col_b, 1.0}};
  cut.violation = 0.5;
  return cut;
}

TEST(CutPool, DeduplicatesAcrossSelect) {
  CutPool pool(/*max_age=*/4);
  EXPECT_TRUE(pool.add(make_cut(0, 1, 1.0)));
  EXPECT_FALSE(pool.add(make_cut(0, 1, 1.0)));  // identical: rejected
  EXPECT_TRUE(pool.add(make_cut(0, 2, 1.0)));
  EXPECT_EQ(pool.size(), 2);

  // Select everything; the pool must remember applied cuts forever so a
  // restart never appends a duplicate row.
  const std::vector<double> x = {1.0, 1.0, 1.0};
  const std::vector<Cut> picked = pool.select(x, 8, 1e-6, 1.0);
  EXPECT_EQ(picked.size(), 2u);
  EXPECT_EQ(pool.size(), 0);
  EXPECT_FALSE(pool.add(make_cut(0, 1, 1.0)));
  EXPECT_FALSE(pool.add(make_cut(0, 2, 1.0)));
  const CutPoolCounters c = pool.counters();
  EXPECT_EQ(c.separated, 5);  // every offer, fresh or not
  EXPECT_EQ(c.duplicates, 3);
  EXPECT_EQ(c.applied, 2);
}

TEST(CutPool, UnselectedCutsAgeOut) {
  CutPool pool(/*max_age=*/2);
  ASSERT_TRUE(pool.add(make_cut(0, 1, 1.0)));
  // x satisfies the cut: zero violation, never selected, ages each round.
  const std::vector<double> x = {0.0, 0.0};
  for (int round = 0; round < 3; ++round) EXPECT_TRUE(pool.select(x, 8).empty());
  EXPECT_EQ(pool.size(), 0);
  EXPECT_GE(pool.counters().aged_out, 1L);
}

TEST(CutPool, ConcurrentOffersStayConsistent) {
  CutPool pool(/*max_age=*/4);
  constexpr int kThreads = 8;
  constexpr int kCutsPerThread = 64;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&pool, t] {
      for (int i = 0; i < kCutsPerThread; ++i) {
        // Half the ids collide across threads, half are thread-unique.
        const int a = (i % 2 == 0) ? i : t * kCutsPerThread + i;
        (void)pool.add(make_cut(a, a + 1, 1.0));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const CutPoolCounters c = pool.counters();
  EXPECT_EQ(c.separated, static_cast<long>(kThreads) * kCutsPerThread);
  EXPECT_EQ(pool.size(), static_cast<int>(c.separated - c.duplicates));
  EXPECT_GT(c.duplicates, 0L);
}

// Probing on a model with a forced variable and a binary equivalence must
// reproduce both through PresolveResult::restore.
TEST(Probing, ApplyAndRestoreRoundTrip) {
  Model m;
  m.set_sense(Sense::kMaximize);
  const int x = m.add_column("x", 0, 1, 3.0, VarType::kBinary);
  const int y = m.add_column("y", 0, 1, 2.0, VarType::kBinary);
  const int z = m.add_column("z", 0, 1, 1.0, VarType::kBinary);
  // y == x (equality links them), z is forced to 0 by the budget row.
  m.add_row("link", RowType::kEq, 0.0, {{x, 1.0}, {y, -1.0}});
  m.add_row("force", RowType::kLe, 1.5, {{x, 1.0}, {z, 2.0}});

  const ProbingResult probing = probe_binaries(m);
  ASSERT_FALSE(probing.infeasible);
  EXPECT_TRUE(probing.has_reductions());

  long tightened = 0;
  const lp::PresolveResult pre = apply_probing(m, probing, &tightened);
  ASSERT_FALSE(pre.infeasible);
  ASSERT_LT(pre.reduced.num_columns(), m.num_columns());

  // Solve the reduced MIP and expand: the original-space point must be
  // feasible for the original model and reproduce the eliminated columns.
  MipOptions opt;
  opt.threads = 1;
  const MipResult res = solve_mip(pre.reduced, opt);
  ASSERT_TRUE(res.optimal());
  const std::vector<double> full = pre.restore(res.x);
  ASSERT_EQ(full.size(), static_cast<std::size_t>(m.num_columns()));
  EXPECT_TRUE(m.is_feasible(full, 1e-7));
  EXPECT_NEAR(full[static_cast<std::size_t>(x)], full[static_cast<std::size_t>(y)], 1e-9);
  EXPECT_NEAR(full[static_cast<std::size_t>(z)], 0.0, 1e-9);
  // Optimum of the original model: x = y = 1, z = 0 -> 5.
  EXPECT_NEAR(m.objective_value(full), 5.0, 1e-9);
}

// Deterministic wave mode must stay bit-identical across thread counts with
// the full cut engine (root + in-tree separation and restarts) enabled.
TEST(Cuts, DeterministicModeBitIdenticalWithCuts) {
  scheduler::ScheduleProblem p = casestudy::flash_problem({2.0, 1.0, 2.0});
  p.steps = 60;
  p.mth = scheduler::kNoLimit;
  for (auto& a : p.analyses) a.itv = std::max<long>(1, p.steps / 10);
  const Model model = scheduler::build_time_expanded_milp(p).model;

  const auto run = [&](int threads) {
    MipOptions opt;
    opt.threads = threads;
    opt.deterministic = true;
    return solve_mip(model, opt);
  };
  const MipResult one = run(1);
  const MipResult four = run(4);
  ASSERT_TRUE(one.optimal());
  ASSERT_TRUE(four.optimal());
  EXPECT_EQ(one.objective, four.objective);  // bitwise, not approximate
  EXPECT_EQ(one.nodes, four.nodes);
  ASSERT_EQ(one.x.size(), four.x.size());
  for (std::size_t j = 0; j < one.x.size(); ++j) EXPECT_EQ(one.x[j], four.x[j]);
  EXPECT_EQ(one.counters.cuts_applied, four.counters.cuts_applied);
  EXPECT_EQ(one.counters.tree_restarts, four.counters.tree_restarts);
}

}  // namespace
}  // namespace insched::mip
