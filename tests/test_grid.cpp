// Tests for the grid substrate: fields, the Euler solver's conservation
// properties, and the Sedov blast initial condition + reference solution.

#include <gtest/gtest.h>

#include <cmath>

#include "insched/sim/grid/amr.hpp"
#include "insched/sim/grid/euler.hpp"
#include "insched/sim/grid/grid3d.hpp"
#include "insched/sim/grid/sedov.hpp"

namespace insched::sim {
namespace {

TEST(Field, IndexingAndPeriodicAccess) {
  Field3D f(4, 3, 2, 0.0);
  f.at(1, 2, 1) = 7.0;
  EXPECT_DOUBLE_EQ(f.at(1, 2, 1), 7.0);
  EXPECT_EQ(f.size(), 24u);
  EXPECT_DOUBLE_EQ(f.periodic(1, 2, 1), 7.0);
  EXPECT_DOUBLE_EQ(f.periodic(5, -1, 3), 7.0);  // wraps to (1, 2, 1)
  f.fill(1.5);
  EXPECT_DOUBLE_EQ(f.at(0, 0, 0), 1.5);
}

TEST(Geometry, CellCentersAndSpacing) {
  GridGeometry g{10, 2.0};
  EXPECT_DOUBLE_EQ(g.dx(), 0.2);
  EXPECT_DOUBLE_EQ(g.center(0), 0.1);
  EXPECT_DOUBLE_EQ(g.center(9), 1.9);
  EXPECT_EQ(g.cells(), 1000u);
}

TEST(Euler, UniformStateStaysUniform) {
  EulerSolver solver(GridGeometry{8, 1.0}, EulerParams{});
  for (std::size_t k = 0; k < 8; ++k)
    for (std::size_t j = 0; j < 8; ++j)
      for (std::size_t i = 0; i < 8; ++i)
        solver.set_cell(i, j, k, Primitive{1.0, 0.0, 0.0, 0.0, 1.0});
  for (int s = 0; s < 5; ++s) solver.step();
  const Primitive p = solver.cell(3, 4, 5);
  EXPECT_NEAR(p.rho, 1.0, 1e-12);
  EXPECT_NEAR(p.p, 1.0, 1e-12);
  EXPECT_NEAR(p.u, 0.0, 1e-12);
}

TEST(Euler, ConservesMassAndEnergyThroughBlast) {
  EulerSolver solver(GridGeometry{16, 1.0}, EulerParams{});
  initialize_sedov(solver, SedovSpec{});
  const double m0 = solver.total_mass();
  const double e0 = solver.total_energy();
  for (int s = 0; s < 20; ++s) solver.step();
  EXPECT_NEAR(solver.total_mass(), m0, m0 * 1e-10);
  EXPECT_NEAR(solver.total_energy(), e0, e0 * 1e-10);
}

TEST(Euler, SedovBlastExpandsOutward) {
  EulerSolver solver(GridGeometry{24, 1.0}, EulerParams{});
  SedovSpec spec;
  initialize_sedov(solver, spec);

  const auto density_peak_radius = [&] {
    const std::size_t n = solver.geometry().n;
    const double c = 0.5 * solver.geometry().length;
    double best_r = 0.0;
    double best_rho = 0.0;
    for (std::size_t k = 0; k < n; ++k)
      for (std::size_t j = 0; j < n; ++j)
        for (std::size_t i = 0; i < n; ++i) {
          const double rho = solver.density().at(i, j, k);
          if (rho > best_rho) {
            best_rho = rho;
            const double x = solver.geometry().center(i) - c;
            const double y = solver.geometry().center(j) - c;
            const double z = solver.geometry().center(k) - c;
            best_r = std::sqrt(x * x + y * y + z * z);
          }
        }
    return best_r;
  };

  for (int s = 0; s < 15; ++s) solver.step();
  const double r1 = density_peak_radius();
  for (int s = 0; s < 30; ++s) solver.step();
  const double r2 = density_peak_radius();
  EXPECT_GT(r2, r1);               // the shell moves outward
  EXPECT_GT(solver.time(), 0.0);
  // Shocked shell must be denser than ambient.
  double max_rho = 0.0;
  for (double v : solver.density().data()) max_rho = std::max(max_rho, v);
  EXPECT_GT(max_rho, 1.3);
}

TEST(Euler, OutputFrameIsTenVariablesPerCell) {
  EulerSolver solver(GridGeometry{16, 1.0}, EulerParams{});
  EXPECT_DOUBLE_EQ(solver.output_frame_bytes(), 16.0 * 16.0 * 16.0 * 10.0 * 8.0);
  EXPECT_EQ(solver.name(), "euler3d");
}

TEST(SedovReferenceProfile, ShockRadiusScalesAsT25) {
  const SedovReference ref(SedovSpec{}, 1.4);
  const double r1 = ref.shock_radius(0.1);
  const double r2 = ref.shock_radius(0.2);
  EXPECT_NEAR(r2 / r1, std::pow(2.0, 0.4), 1e-9);
}

TEST(SedovReferenceProfile, StrongShockJumps) {
  const SedovReference ref(SedovSpec{}, 1.4);
  const double t = 0.1;
  const double rs = ref.shock_radius(t);
  // Just inside the shock: density jump (g+1)/(g-1) = 6 for gamma = 1.4.
  EXPECT_NEAR(ref.density(rs * 0.999, t), 6.0, 0.1);
  // Outside: ambient.
  EXPECT_DOUBLE_EQ(ref.density(rs * 1.01, t), 1.0);
  EXPECT_DOUBLE_EQ(ref.radial_velocity(rs * 1.01, t), 0.0);
  // Interior density far below the shell's.
  EXPECT_LT(ref.density(rs * 0.2, t), 0.1);
  // Pressure positive everywhere inside.
  EXPECT_GT(ref.pressure(0.0, t), 0.0);
  EXPECT_GT(ref.pressure(rs * 0.5, t), ref.pressure(rs * 1.5, t));
}


TEST(Amr, UniformFieldHasNoRefinement) {
  const GridGeometry geom{32, 1.0};
  Field3D rho(32, 32, 32, 1.0);
  const AmrMesh mesh(rho, geom, AmrConfig{});
  EXPECT_EQ(mesh.blocks_per_axis(), 2u);
  EXPECT_EQ(mesh.refined_blocks(), 0u);
  EXPECT_EQ(mesh.coarse_blocks(), 8u);
  EXPECT_EQ(mesh.leaf_cells(), 32u * 32 * 32);
  EXPECT_DOUBLE_EQ(mesh.compression_ratio(), 8.0);  // vs everything refined
}

TEST(Amr, SharpJumpRefinesItsBlock) {
  const GridGeometry geom{32, 1.0};
  Field3D rho(32, 32, 32, 1.0);
  rho.at(5, 5, 5) = 3.0;  // jump inside block (0,0,0)
  AmrConfig config;
  config.refine_threshold = 0.5;
  const AmrMesh mesh(rho, geom, config);
  EXPECT_TRUE(mesh.is_refined(0, 0, 0));
  EXPECT_FALSE(mesh.is_refined(1, 1, 1));
  EXPECT_EQ(mesh.refined_blocks(), 8u);  // one parent -> 8 children
  EXPECT_EQ(mesh.coarse_blocks(), 7u);
  // 7 coarse blocks + 8 children, 16^3 cells each.
  EXPECT_EQ(mesh.leaf_cells(), (7u + 8u) * 16 * 16 * 16);
  EXPECT_DOUBLE_EQ(mesh.checkpoint_bytes(), mesh.leaf_cells() * 10.0 * 8.0);
}

TEST(Amr, SedovShockRefinesMoreBlocksOverTime) {
  EulerSolver solver(GridGeometry{64, 1.0}, EulerParams{});
  initialize_sedov(solver, SedovSpec{});
  AmrConfig config;
  config.refine_threshold = 0.08;
  const AmrMesh early(solver.density(), solver.geometry(), config);
  for (int s = 0; s < 40; ++s) solver.step();
  const AmrMesh late(solver.density(), solver.geometry(), config);
  // The expanding shell intersects more blocks.
  EXPECT_GT(late.refined_blocks(), early.refined_blocks());
  EXPECT_GT(late.checkpoint_bytes(), early.checkpoint_bytes());
  EXPECT_LT(late.compression_ratio(), early.compression_ratio());
}

TEST(Amr, RestrictionConservesMass) {
  Field3D fine(8, 8, 8);
  double total = 0.0;
  for (std::size_t k = 0; k < 8; ++k)
    for (std::size_t j = 0; j < 8; ++j)
      for (std::size_t i = 0; i < 8; ++i) {
        fine.at(i, j, k) = 1.0 + 0.1 * static_cast<double>(i + 2 * j + 3 * k);
        total += fine.at(i, j, k);
      }
  const Field3D coarse = AmrMesh::restrict_field(fine);
  EXPECT_EQ(coarse.nx(), 4u);
  double coarse_total = 0.0;
  for (double v : coarse.data()) coarse_total += v;
  // Each coarse cell covers 8x the volume: total integral must match.
  EXPECT_NEAR(coarse_total * 8.0, total, 1e-10);
}

TEST(Amr, ProlongThenRestrictIsIdentity) {
  Field3D coarse(4, 4, 4);
  for (std::size_t k = 0; k < 4; ++k)
    for (std::size_t j = 0; j < 4; ++j)
      for (std::size_t i = 0; i < 4; ++i)
        coarse.at(i, j, k) = std::sin(static_cast<double>(i + 5 * j + 17 * k));
  const Field3D round_trip = AmrMesh::restrict_field(AmrMesh::prolong_field(coarse));
  for (std::size_t k = 0; k < 4; ++k)
    for (std::size_t j = 0; j < 4; ++j)
      for (std::size_t i = 0; i < 4; ++i)
        EXPECT_NEAR(round_trip.at(i, j, k), coarse.at(i, j, k), 1e-12);
}
}  // namespace
}  // namespace insched::sim
