// Tests for the bilinear-interpolation performance model and the HPM-like
// profiler. The RandomSurface property suites mirror the paper's Section 4
// claim: <6% compute-time and <8% communication-time prediction error.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <thread>

#include "insched/perfmodel/bilinear.hpp"
#include "insched/perfmodel/predictor.hpp"
#include "insched/perfmodel/profiler.hpp"
#include "insched/perfmodel/sample_grid.hpp"
#include "insched/support/random.hpp"
#include "insched/support/stats.hpp"

namespace insched::perfmodel {
namespace {

TEST(SampleGrid, StoresRowMajorValues) {
  const SampleGrid g({1.0, 2.0}, {10.0, 20.0, 30.0}, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(g.nx(), 2u);
  EXPECT_EQ(g.ny(), 3u);
  EXPECT_DOUBLE_EQ(g.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(g.at(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(g.at(0, 2), 5.0);
  EXPECT_TRUE(g.contains(1.5, 15.0));
  EXPECT_FALSE(g.contains(0.5, 15.0));
}

TEST(SampleGrid, SampleFunctionHelper) {
  const SampleGrid g = sample_function({1.0, 2.0, 3.0}, {1.0, 2.0},
                                       [](double x, double y) { return x * y; });
  EXPECT_DOUBLE_EQ(g.at(2, 1), 6.0);
}

TEST(Bilinear, ExactOnGridPoints) {
  const SampleGrid g = sample_function({1.0, 2.0, 4.0}, {1.0, 3.0},
                                       [](double x, double y) { return 2 * x + y; });
  const BilinearInterpolator f(g);
  for (std::size_t ix = 0; ix < g.nx(); ++ix)
    for (std::size_t iy = 0; iy < g.ny(); ++iy)
      EXPECT_NEAR(f(g.xs()[ix], g.ys()[iy]), g.at(ix, iy), 1e-12);
}

TEST(Bilinear, ExactForBilinearFunctions) {
  // Bilinear interpolation reproduces any function a + bx + cy + dxy exactly.
  const auto fn = [](double x, double y) { return 3.0 + 2.0 * x - y + 0.5 * x * y; };
  const SampleGrid g = sample_function({0.0, 5.0, 10.0}, {0.0, 4.0, 8.0}, fn);
  const BilinearInterpolator f(g);
  Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform(0.0, 10.0);
    const double y = rng.uniform(0.0, 8.0);
    EXPECT_NEAR(f(x, y), fn(x, y), 1e-9);
  }
}

TEST(Bilinear, ExtrapolatesLinearlyBeyondEdges) {
  const auto fn = [](double x, double y) { return x + 2.0 * y; };
  const SampleGrid g = sample_function({1.0, 2.0}, {1.0, 2.0}, fn);
  const BilinearInterpolator f(g);
  EXPECT_NEAR(f(3.0, 1.0), 5.0, 1e-12);   // beyond x range
  EXPECT_NEAR(f(1.0, 0.0), 1.0, 1e-12);   // below y range
}

TEST(Bilinear, SinglePointGridIsConstant) {
  const SampleGrid g({4.0}, {8.0}, {42.0});
  const BilinearInterpolator f(g);
  EXPECT_DOUBLE_EQ(f(4.0, 8.0), 42.0);
  EXPECT_DOUBLE_EQ(f(100.0, -3.0), 42.0);
}

TEST(Bilinear, LogAxesHandleDecades) {
  // t(n, p) = c * n / p is linear in (log n, log p) after log of value? No:
  // but sampling densely in log space keeps relative error small.
  const auto fn = [](double n, double p) { return 1e-6 * n / p; };
  std::vector<double> ns, ps;
  for (double n = 1e4; n <= 1e8 + 1; n *= 10.0) ns.push_back(n);
  for (double p = 64; p <= 65536 + 1; p *= 4.0) ps.push_back(p);
  const SampleGrid g = sample_function(ns, ps, fn);
  const BilinearInterpolator f(g, AxisScale::kLog, AxisScale::kLog);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const double n = rng.uniform(1e4, 1e8);
    const double p = rng.uniform(64.0, 65536.0);
    const double rel = std::fabs(f(n, p) - fn(n, p)) / fn(n, p);
    EXPECT_LT(rel, 1.5);  // coarse grid; accuracy tested tighter below
  }
}

// Property suite reproducing the Section 4 error bounds: realistic smooth
// cost surfaces sampled on the measurement grid the paper describes (a few
// problem sizes x a few core counts), evaluated at dense off-grid points.
class ComputeSurface : public ::testing::TestWithParam<int> {};

TEST_P(ComputeSurface, PredictionErrorUnderSixPercent) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 911u + 5u);
  // t(n, p) = a*n/p + b*log2(p) + c  — compute scales, plus overhead terms.
  const double a = rng.uniform(1e-7, 5e-7);
  const double b = rng.uniform(1e-3, 5e-3);
  const double c = rng.uniform(0.01, 0.05);
  const auto fn = [&](double n, double p) {
    return a * n / p + b * std::log2(p) + c;
  };
  // Factor-2 measurement grid ("few problem sizes on few core counts").
  std::vector<double> ns, ps;
  for (double n = 16e6; n <= 1024e6 + 1; n *= 2.0) ns.push_back(n);
  for (double p = 2048; p <= 32768 + 1; p *= 2.0) ps.push_back(p);
  const SampleGrid g = sample_function(ns, ps, fn);
  const BilinearInterpolator f(g, AxisScale::kLog, AxisScale::kLog, AxisScale::kLog);

  std::vector<double> pred, actual;
  for (double n = 16e6; n <= 1024e6; n *= 1.7)
    for (double p = 2048; p <= 32768; p *= 1.6) {
      pred.push_back(f(n, p));
      actual.push_back(fn(n, p));
    }
  EXPECT_LT(max_relative_error(pred, actual), 0.06);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ComputeSurface, ::testing::Range(0, 20));

class CommSurface : public ::testing::TestWithParam<int> {};

TEST_P(CommSurface, PredictionErrorUnderEightPercent) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 401u + 3u);
  // Collective time grows with message size and network diameter:
  // t(n, d) = alpha*d + beta*n^(2/3)*d + gamma (allreduce-like).
  const double alpha = rng.uniform(1e-6, 5e-6);
  const double beta = rng.uniform(1e-9, 4e-9);
  const double gamma = rng.uniform(1e-5, 1e-4);
  const auto fn = [&](double n, double d) {
    return alpha * d + beta * std::pow(n, 2.0 / 3.0) * d + gamma;
  };
  std::vector<double> ns, ds{10, 14, 18, 22, 26, 30, 34};
  for (double n = 16e6; n <= 1024e6 + 1; n *= 2.0) ns.push_back(n);
  const SampleGrid g = sample_function(ns, ds, fn);
  const BilinearInterpolator f(g, AxisScale::kLog, AxisScale::kLinear, AxisScale::kLog);

  std::vector<double> pred, actual;
  for (double n = 16e6; n <= 1024e6; n *= 1.9)
    for (double d = 10; d <= 34; d += 3.0) {
      pred.push_back(f(n, d));
      actual.push_back(fn(n, d));
    }
  EXPECT_LT(max_relative_error(pred, actual), 0.08);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CommSurface, ::testing::Range(0, 20));

TEST(Predictor, CombinesComputeAndComm) {
  // Bilinear cost surfaces (exactly representable) on linear axes.
  KernelPredictor pred;
  pred.set_scales({AxisScale::kLinear, AxisScale::kLinear, AxisScale::kLinear});
  pred.set_compute(sample_function({1.0, 10.0}, {1.0, 4.0},
                                   [](double n, double p) { return 2.0 * n + p; }));
  pred.set_communication(sample_function({1.0, 10.0}, {2.0, 6.0},
                                         [](double n, double d) { return 0.1 * n * d; }));
  pred.set_memory(sample_function({1.0, 10.0}, {1.0, 4.0},
                                  [](double n, double p) { return 8.0 * n + p; }));
  EXPECT_NEAR(pred.compute_time(10.0, 2.0), 22.0, 1e-9);
  EXPECT_NEAR(pred.comm_time(10.0, 4.0), 4.0, 1e-9);
  EXPECT_NEAR(pred.total_time(10.0, 2.0, 4.0), 26.0, 1e-9);
  EXPECT_NEAR(pred.memory(10.0, 4.0), 84.0, 1e-9);
  EXPECT_TRUE(pred.has_compute());
  EXPECT_TRUE(pred.has_communication());
}

TEST(Profiler, AccumulatesRegions) {
  Profiler p;
  p.add_sample("sim", 1.0);
  p.add_sample("sim", 3.0);
  p.add_sample("analysis/rdf", 0.5);
  const RegionStats s = p.stats("sim");
  EXPECT_EQ(s.count, 2);
  EXPECT_DOUBLE_EQ(s.total_s, 4.0);
  EXPECT_DOUBLE_EQ(s.min_s, 1.0);
  EXPECT_DOUBLE_EQ(s.max_s, 3.0);
  EXPECT_DOUBLE_EQ(s.mean_s(), 2.0);
  EXPECT_EQ(p.all().size(), 2u);
}

TEST(Profiler, StartStopMeasuresWallClock) {
  Profiler p;
  p.start("outer");
  p.start("inner");
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  p.stop("inner");
  p.stop("outer");
  EXPECT_GE(p.stats("outer").total_s, 0.004);
  EXPECT_GE(p.stats("outer/inner").total_s, 0.004);
  EXPECT_EQ(p.stats("inner").count, 0);  // nested key, not a flat one
}

TEST(Profiler, ScopedRegionAndReport) {
  Profiler p;
  {
    ScopedRegion r(p, "scoped");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(p.stats("scoped").count, 1);
  const std::string report = p.report();
  EXPECT_NE(report.find("scoped"), std::string::npos);
  p.reset();
  EXPECT_TRUE(p.all().empty());
}

}  // namespace
}  // namespace insched::perfmodel
