// Unit and property tests for the bounded-variable simplex (sparse LU +
// eta-file basis kernel).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "insched/casestudy/flash_sedov.hpp"
#include "insched/casestudy/lammps_rhodo.hpp"
#include "insched/casestudy/lammps_water.hpp"
#include "insched/lp/model.hpp"
#include "insched/lp/presolve.hpp"
#include "insched/lp/simplex.hpp"
#include "insched/scheduler/params.hpp"
#include "insched/scheduler/timeexp_milp.hpp"
#include "insched/support/random.hpp"

namespace insched::lp {
namespace {

TEST(LpModel, BuildsAndEvaluates) {
  Model m;
  const int x = m.add_column("x", 0.0, 10.0, 1.0);
  const int y = m.add_column("y", 0.0, 10.0, 2.0);
  m.add_row("r0", RowType::kLe, 5.0, {{x, 1.0}, {y, 1.0}});
  EXPECT_EQ(m.num_columns(), 2);
  EXPECT_EQ(m.num_rows(), 1);
  EXPECT_DOUBLE_EQ(m.objective_value({1.0, 2.0}), 5.0);
  EXPECT_DOUBLE_EQ(m.row_activity(0, {1.0, 2.0}), 3.0);
  EXPECT_TRUE(m.is_feasible({1.0, 2.0}));
  EXPECT_FALSE(m.is_feasible({4.0, 4.0}));
}

TEST(LpModel, MergesDuplicateEntries) {
  Model m;
  const int x = m.add_column("x", 0.0, 1.0, 1.0);
  m.add_row("r", RowType::kEq, 3.0, {{x, 1.0}, {x, 2.0}});
  ASSERT_EQ(m.row(0).entries.size(), 1u);
  EXPECT_DOUBLE_EQ(m.row(0).entries[0].coeff, 3.0);
}

TEST(Simplex, TwoVariableMaximize) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  -> x=2, y=6, obj=36.
  Model m;
  m.set_sense(Sense::kMaximize);
  const int x = m.add_column("x", 0.0, kInf, 3.0);
  const int y = m.add_column("y", 0.0, kInf, 5.0);
  m.add_row("c1", RowType::kLe, 4.0, {{x, 1.0}});
  m.add_row("c2", RowType::kLe, 12.0, {{y, 2.0}});
  m.add_row("c3", RowType::kLe, 18.0, {{x, 3.0}, {y, 2.0}});
  const SimplexResult res = solve_lp(m);
  ASSERT_TRUE(res.optimal());
  EXPECT_NEAR(res.objective, 36.0, 1e-8);
  EXPECT_NEAR(res.x[0], 2.0, 1e-8);
  EXPECT_NEAR(res.x[1], 6.0, 1e-8);
}

TEST(Simplex, MinimizeWithGeRowsNeedsPhase1) {
  // min x + 2y s.t. x + y >= 4, x - y >= -2, x,y >= 0 -> (4,0), obj 4.
  Model m;
  const int x = m.add_column("x", 0.0, kInf, 1.0);
  const int y = m.add_column("y", 0.0, kInf, 2.0);
  m.add_row("c1", RowType::kGe, 4.0, {{x, 1.0}, {y, 1.0}});
  m.add_row("c2", RowType::kGe, -2.0, {{x, 1.0}, {y, -1.0}});
  const SimplexResult res = solve_lp(m);
  ASSERT_TRUE(res.optimal());
  EXPECT_NEAR(res.objective, 4.0, 1e-8);
  EXPECT_NEAR(res.x[0], 4.0, 1e-8);
  EXPECT_NEAR(res.x[1], 0.0, 1e-8);
}

TEST(Simplex, EqualityConstraints) {
  // min x + y + z s.t. x + y + z = 6, x - y = 1, bounds [0, 10].
  Model m;
  const int x = m.add_column("x", 0.0, 10.0, 1.0);
  const int y = m.add_column("y", 0.0, 10.0, 1.0);
  const int z = m.add_column("z", 0.0, 10.0, 1.0);
  m.add_row("sum", RowType::kEq, 6.0, {{x, 1.0}, {y, 1.0}, {z, 1.0}});
  m.add_row("diff", RowType::kEq, 1.0, {{x, 1.0}, {y, -1.0}});
  const SimplexResult res = solve_lp(m);
  ASSERT_TRUE(res.optimal());
  EXPECT_NEAR(res.objective, 6.0, 1e-8);
  EXPECT_NEAR(res.x[0] - res.x[1], 1.0, 1e-8);
  EXPECT_NEAR(res.x[0] + res.x[1] + res.x[2], 6.0, 1e-8);
}

TEST(Simplex, DetectsInfeasible) {
  Model m;
  const int x = m.add_column("x", 0.0, 1.0, 1.0);
  m.add_row("c1", RowType::kGe, 5.0, {{x, 1.0}});
  const SimplexResult res = solve_lp(m);
  EXPECT_EQ(res.status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  Model m;
  m.set_sense(Sense::kMaximize);
  const int x = m.add_column("x", 0.0, kInf, 1.0);
  const int y = m.add_column("y", 0.0, kInf, 0.0);
  m.add_row("c1", RowType::kGe, 0.0, {{x, 1.0}, {y, -1.0}});
  const SimplexResult res = solve_lp(m);
  EXPECT_EQ(res.status, SolveStatus::kUnbounded);
}

TEST(Simplex, NoRowsPicksBestBounds) {
  Model m;
  m.add_column("a", -3.0, 7.0, 1.0);   // min -> lower
  m.add_column("b", -3.0, 7.0, -2.0);  // min -> upper
  const SimplexResult res = solve_lp(m);
  ASSERT_TRUE(res.optimal());
  EXPECT_NEAR(res.x[0], -3.0, 1e-9);
  EXPECT_NEAR(res.x[1], 7.0, 1e-9);
  EXPECT_NEAR(res.objective, -17.0, 1e-9);
}

TEST(Simplex, FreeVariables) {
  // min x s.t. x + y = 3, y <= 1, x free, y free -> x = 2 when y at 1.
  Model m;
  const int x = m.add_column("x", -kInf, kInf, 1.0);
  const int y = m.add_column("y", -kInf, kInf, 0.0);
  m.add_row("sum", RowType::kEq, 3.0, {{x, 1.0}, {y, 1.0}});
  m.add_row("cap", RowType::kLe, 1.0, {{y, 1.0}});
  const SimplexResult res = solve_lp(m);
  ASSERT_TRUE(res.optimal());
  EXPECT_NEAR(res.objective, 2.0, 1e-8);
}

TEST(Simplex, NegativeRhsRows) {
  // min -x - y s.t. -x - y >= -4 (i.e. x + y <= 4), bounds [0, 3].
  Model m;
  const int x = m.add_column("x", 0.0, 3.0, -1.0);
  const int y = m.add_column("y", 0.0, 3.0, -1.0);
  m.add_row("c", RowType::kGe, -4.0, {{x, -1.0}, {y, -1.0}});
  const SimplexResult res = solve_lp(m);
  ASSERT_TRUE(res.optimal());
  EXPECT_NEAR(res.objective, -4.0, 1e-8);
}

TEST(Simplex, DegenerateManyRedundantRows) {
  // The same binding constraint repeated: classic degeneracy stressor.
  Model m;
  m.set_sense(Sense::kMaximize);
  const int x = m.add_column("x", 0.0, kInf, 1.0);
  const int y = m.add_column("y", 0.0, kInf, 1.0);
  for (int k = 0; k < 8; ++k) m.add_row("dup", RowType::kLe, 10.0, {{x, 1.0}, {y, 1.0}});
  const SimplexResult res = solve_lp(m);
  ASSERT_TRUE(res.optimal());
  EXPECT_NEAR(res.objective, 10.0, 1e-8);
}

TEST(Simplex, TightDualOnBindingRows) {
  // Duals must be zero on non-binding rows (complementary slackness).
  Model m;
  m.set_sense(Sense::kMaximize);
  const int x = m.add_column("x", 0.0, kInf, 3.0);
  const int y = m.add_column("y", 0.0, kInf, 5.0);
  m.add_row("c1", RowType::kLe, 4.0, {{x, 1.0}});          // slack at optimum
  m.add_row("c2", RowType::kLe, 12.0, {{y, 2.0}});         // binding
  m.add_row("c3", RowType::kLe, 18.0, {{x, 3.0}, {y, 2.0}});  // binding
  const SimplexResult res = solve_lp(m);
  ASSERT_TRUE(res.optimal());
  ASSERT_EQ(res.duals.size(), 3u);
  EXPECT_NEAR(res.duals[0], 0.0, 1e-7);
  // Strong duality for this all-<= problem with x >= 0: obj == y.b
  const double dual_obj = res.duals[0] * 4.0 + res.duals[1] * 12.0 + res.duals[2] * 18.0;
  EXPECT_NEAR(dual_obj, res.objective, 1e-6);
}

TEST(Simplex, KleeMintyCube3) {
  // Klee-Minty with epsilon = 0.1 in 3 dimensions; stresses pivoting.
  // max 100 x1 + 10 x2 + x3, s.t. x1 <= 1; 20 x1 + x2 <= 100;
  // 200 x1 + 20 x2 + x3 <= 10000. Optimum 10000.
  Model m;
  m.set_sense(Sense::kMaximize);
  const int x1 = m.add_column("x1", 0.0, kInf, 100.0);
  const int x2 = m.add_column("x2", 0.0, kInf, 10.0);
  const int x3 = m.add_column("x3", 0.0, kInf, 1.0);
  m.add_row("r1", RowType::kLe, 1.0, {{x1, 1.0}});
  m.add_row("r2", RowType::kLe, 100.0, {{x1, 20.0}, {x2, 1.0}});
  m.add_row("r3", RowType::kLe, 10000.0, {{x1, 200.0}, {x2, 20.0}, {x3, 1.0}});
  const SimplexResult res = solve_lp(m);
  ASSERT_TRUE(res.optimal());
  EXPECT_NEAR(res.objective, 10000.0, 1e-6);
}

// Property test: construct LPs whose optimum is a known box corner and add
// random rows that are strictly slack there; the simplex must recover the
// corner objective exactly.
class RandomBoxLp : public ::testing::TestWithParam<int> {};

TEST_P(RandomBoxLp, FindsKnownCornerOptimum) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919u + 13u);
  const int n = static_cast<int>(rng.uniform_int(2, 12));
  Model m;
  std::vector<double> corner(static_cast<std::size_t>(n));
  double expected = 0.0;
  for (int j = 0; j < n; ++j) {
    const double lo = rng.uniform(-10.0, 0.0);
    const double hi = rng.uniform(1.0, 10.0);
    double c = rng.uniform(-5.0, 5.0);
    if (std::fabs(c) < 0.1) c = 0.5;  // avoid near-zero costs: keeps optimum unique
    m.add_column("x", lo, hi, c);
    corner[static_cast<std::size_t>(j)] = c > 0.0 ? lo : hi;
    expected += c * corner[static_cast<std::size_t>(j)];
  }
  const int rows = static_cast<int>(rng.uniform_int(1, 8));
  for (int i = 0; i < rows; ++i) {
    std::vector<RowEntry> entries;
    double activity = 0.0;
    for (int j = 0; j < n; ++j) {
      if (!rng.bernoulli(0.6)) continue;
      const double a = rng.uniform(-3.0, 3.0);
      entries.push_back(RowEntry{j, a});
      activity += a * corner[static_cast<std::size_t>(j)];
    }
    if (entries.empty()) continue;
    // Strictly slack at the corner so the row cannot move the optimum.
    m.add_row("r", RowType::kLe, activity + rng.uniform(0.5, 5.0), std::move(entries));
  }
  const SimplexResult res = solve_lp(m);
  ASSERT_TRUE(res.optimal());
  EXPECT_NEAR(res.objective, expected, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomBoxLp, ::testing::Range(0, 40));

// Property test: random fully-bounded LPs; verify the returned point is
// feasible and satisfies LP optimality via a feasibility re-check of a
// slightly perturbed objective bound (no strictly better vertex reachable by
// checking the reported objective against many random feasible points).
class RandomFeasibleLp : public ::testing::TestWithParam<int> {};

TEST_P(RandomFeasibleLp, ReturnsFeasibleAndNotDominated) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729u + 7u);
  const int n = static_cast<int>(rng.uniform_int(2, 8));
  Model m;
  for (int j = 0; j < n; ++j)
    m.add_column("x", 0.0, rng.uniform(1.0, 5.0), rng.uniform(-3.0, 3.0));
  const int rows = static_cast<int>(rng.uniform_int(1, 6));
  for (int i = 0; i < rows; ++i) {
    std::vector<RowEntry> entries;
    for (int j = 0; j < n; ++j) {
      if (rng.bernoulli(0.5)) entries.push_back(RowEntry{j, rng.uniform(0.0, 2.0)});
    }
    if (entries.empty()) entries.push_back(RowEntry{0, 1.0});
    // rhs >= 0 keeps the origin feasible, so the LP is always feasible.
    m.add_row("r", RowType::kLe, rng.uniform(1.0, 10.0), std::move(entries));
  }
  const SimplexResult res = solve_lp(m);
  ASSERT_TRUE(res.optimal());
  EXPECT_TRUE(m.is_feasible(res.x, 1e-6));
  // Monte-Carlo domination check.
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> p(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j)
      p[static_cast<std::size_t>(j)] = rng.uniform(0.0, m.column(j).upper);
    if (!m.is_feasible(p, 0.0)) continue;
    EXPECT_LE(res.objective, m.objective_value(p) + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomFeasibleLp, ::testing::Range(0, 30));


// Property: KKT conditions at the reported optimum. For a minimize LP the
// returned duals/reduced costs must satisfy complementary slackness and the
// sign conditions: reduced cost >= 0 for variables at their lower bound,
// <= 0 at their upper bound, ~0 for strictly interior (basic) variables;
// row duals vanish on non-binding rows.
class KktCheck : public ::testing::TestWithParam<int> {};

TEST_P(KktCheck, OptimalityCertificate) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 15013u + 3u);
  Model m;  // minimize
  const int n = static_cast<int>(rng.uniform_int(2, 7));
  for (int j = 0; j < n; ++j)
    m.add_column("x", 0.0, rng.uniform(1.0, 8.0), rng.uniform(-3.0, 3.0));
  const int rows = static_cast<int>(rng.uniform_int(1, 5));
  for (int i = 0; i < rows; ++i) {
    std::vector<RowEntry> entries;
    for (int j = 0; j < n; ++j)
      if (rng.bernoulli(0.6)) entries.push_back(RowEntry{j, rng.uniform(0.2, 2.0)});
    if (entries.empty()) entries.push_back(RowEntry{0, 1.0});
    // Mix of >= rows (origin-infeasible: forces phase 1) and <= rows.
    if (rng.bernoulli(0.5)) {
      m.add_row("ge", RowType::kGe, rng.uniform(0.5, 3.0), std::move(entries));
    } else {
      m.add_row("le", RowType::kLe, rng.uniform(2.0, 12.0), std::move(entries));
    }
  }
  const SimplexResult res = solve_lp(m);
  if (res.status == SolveStatus::kInfeasible) return;  // nothing to certify
  ASSERT_TRUE(res.optimal());
  ASSERT_TRUE(m.is_feasible(res.x, 1e-6));

  constexpr double kTol = 1e-6;
  // Stationarity is implied by construction (reduced costs are derived from
  // the duals); check the sign and complementarity conditions.
  for (int j = 0; j < n; ++j) {
    const Column& c = m.column(j);
    const double x = res.x[static_cast<std::size_t>(j)];
    const double d = res.reduced_costs[static_cast<std::size_t>(j)];
    const bool at_lower = x <= c.lower + kTol;
    const bool at_upper = x >= c.upper - kTol;
    if (at_lower && !at_upper) {
      EXPECT_GE(d, -kTol) << "col " << j;
    }
    if (at_upper && !at_lower) {
      EXPECT_LE(d, kTol) << "col " << j;
    }
    if (!at_lower && !at_upper) {
      EXPECT_NEAR(d, 0.0, kTol) << "col " << j;
    }
  }
  for (int i = 0; i < m.num_rows(); ++i) {
    const Row& row = m.row(i);
    const double activity = m.row_activity(i, res.x);
    const bool binding = std::fabs(activity - row.rhs) <= kTol;
    if (!binding) {
      EXPECT_NEAR(res.duals[static_cast<std::size_t>(i)], 0.0, kTol) << "row " << i;
    }
  }
  // Strong duality: c'x = y'b + bound contributions; equivalently
  // c'x - y'b = sum_j d_j x_j (bounded-variable LP identity).
  double ytb = 0.0;
  for (int i = 0; i < m.num_rows(); ++i)
    ytb += res.duals[static_cast<std::size_t>(i)] * m.row(i).rhs;
  double dtx = 0.0;
  for (int j = 0; j < n; ++j)
    dtx += res.reduced_costs[static_cast<std::size_t>(j)] * res.x[static_cast<std::size_t>(j)];
  EXPECT_NEAR(res.objective - ytb, dtx, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Sweep, KktCheck, ::testing::Range(0, 40));

TEST(Presolve, RemovesFixedColumnsAndSingletonRows) {
  Model m;
  const int x = m.add_column("x", 2.0, 2.0, 1.0);  // fixed
  const int y = m.add_column("y", 0.0, 10.0, 1.0);
  m.add_row("single", RowType::kLe, 4.0, {{y, 1.0}});            // singleton -> bound
  m.add_row("mix", RowType::kLe, 8.0, {{x, 1.0}, {y, 1.0}});
  const PresolveResult pre = presolve(m);
  ASSERT_FALSE(pre.infeasible);
  EXPECT_EQ(pre.removed_columns, 1);
  EXPECT_GE(pre.removed_rows, 1);
  EXPECT_EQ(pre.column_map[0], -1);
  EXPECT_DOUBLE_EQ(pre.fixed_values[0], 2.0);
  // Solve reduced, restore, verify against original.
  const SimplexResult res = solve_lp(pre.reduced);
  ASSERT_TRUE(res.optimal());
  const std::vector<double> full = pre.restore(res.x);
  EXPECT_TRUE(m.is_feasible(full, 1e-7));
}

TEST(Presolve, DetectsInfeasibleBounds) {
  Model m;
  const int x = m.add_column("x", 0.0, 1.0, 1.0);
  m.add_row("c", RowType::kGe, 3.0, {{x, 1.0}});  // singleton forces x >= 3 > upper
  const PresolveResult pre = presolve(m);
  EXPECT_TRUE(pre.infeasible);
}

TEST(Presolve, IntegerBoundRounding) {
  Model m;
  const int x = m.add_column("x", 0.0, 10.0, -1.0, VarType::kInteger);
  m.add_row("c", RowType::kLe, 4.5, {{x, 1.0}});
  const PresolveResult pre = presolve(m);
  ASSERT_FALSE(pre.infeasible);
  // x's upper bound must have been tightened to 4 (integral).
  bool found = false;
  for (const Column& c : pre.reduced.columns()) {
    if (c.type == VarType::kInteger) {
      EXPECT_DOUBLE_EQ(c.upper, 4.0);
      found = true;
    }
  }
  EXPECT_TRUE(found || pre.removed_columns == 1);
}

// Large-staircase regression over the paper's time-expanded formulation:
// Steps = 2000 LP relaxations of all three case studies (O(|A| * Steps)
// columns, sliding-window interval rows -> a staircase matrix with a handful
// of nonzeros per row; the regime the sparse LU kernel exists for). The
// seed's dense-inverse engine (commit 7fd4967) cannot reach this size (a
// dense m x m inverse at m = 16005 is ~2 GB with O(m^3) refactorizations),
// so agreement with it was established at Steps = 500 on the same model
// family; the Steps = 2000 reference objectives below are anchored by the
// sparse engine itself and must be reproduced to 1e-6 both by the default
// hyper-sparse configuration and by a dense-like configuration (full
// Dantzig pricing, near-per-pivot refactorization) that disables the
// partial-pricing and eta-chain shortcuts — two code paths with no shared
// numerical shortcuts. The memory recurrence is left unbounded: its big-M
// rows are
// ill-conditioned enough that both the seed and the sparse engine reject
// the basis on the residual check, so they exercise nothing useful here
// (BM_schedule_time_expanded drops them for the same reason).
Model staircase_model(scheduler::ScheduleProblem p) {
  p.steps = 2000;
  p.mth = scheduler::kNoLimit;
  for (auto& a : p.analyses) a.itv = std::max<long>(1, p.steps / 20);
  return scheduler::build_time_expanded_milp(p).model;
}

void check_staircase(const Model& m, double seed_dense_objective) {
  const SimplexResult sparse = solve_lp(m);
  ASSERT_EQ(sparse.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sparse.objective, seed_dense_objective, 1e-6);
  // The hyper-sparse machinery must actually have been engaged: FTRAN/BTRAN
  // right-hand sides on a staircase basis stay far from dense.
  EXPECT_GE(sparse.factor_stats.refactorizations, 1L);
  EXPECT_GT(sparse.factor_stats.ftran_calls, 0L);
  EXPECT_LT(sparse.factor_stats.rhs_density(), 0.5);

  SimplexOptions dense_like;
  dense_like.price_block_size = 0;
  dense_like.refactor_interval = 16;
  const SimplexResult ref = solve_lp(m, dense_like);
  ASSERT_EQ(ref.status, SolveStatus::kOptimal);
  EXPECT_NEAR(ref.objective, seed_dense_objective, 1e-6);
}

TEST(StaircaseLp, WaterIonsSteps2000) {
  check_staircase(staircase_model(casestudy::water_ions_problem(16384, 0.10)),
                  68.608524073);
}

TEST(StaircaseLp, RhodopsinSteps2000) {
  check_staircase(staircase_model(casestudy::rhodopsin_problem(100.0)), 28.812772640);
}

TEST(StaircaseLp, FlashSedovSteps2000) {
  check_staircase(staircase_model(casestudy::flash_problem({2.0, 1.0, 2.0})),
                  67.024539877);
}

}  // namespace
}  // namespace insched::lp
