// End-to-end reproduction checks of the paper's evaluation rows from the
// calibrated case studies — these are the same computations the benches
// print, asserted as regression tests.

#include <gtest/gtest.h>

#include <numeric>

#include "insched/casestudy/flash_sedov.hpp"
#include "insched/casestudy/lammps_rhodo.hpp"
#include "insched/casestudy/lammps_water.hpp"
#include "insched/scheduler/recommend.hpp"
#include "insched/scheduler/solver.hpp"

namespace insched::casestudy {
namespace {

using scheduler::ScheduleProblem;
using scheduler::ScheduleSolution;
using scheduler::SolveOptions;
using scheduler::solve_schedule;

long total(const std::vector<long>& v) { return std::accumulate(v.begin(), v.end(), 0L); }

TEST(Table5, ThresholdSweepFrequencies) {
  // Paper Table 5 (100 M atoms, 16384 cores): A1=A2=A3=10 at every
  // threshold; A4 = 4 / 2 / 1 / 0 at 20 / 10 / 5 / 1 %.
  const std::vector<std::pair<double, long>> expected{
      {0.20, 4}, {0.10, 2}, {0.05, 1}, {0.01, 0}};
  for (const auto& [fraction, a4] : expected) {
    const ScheduleProblem problem =
        water_ions_problem(16384, fraction, true, kWaterIonsTable5SimTime);
    const ScheduleSolution sol = solve_schedule(problem);
    ASSERT_TRUE(sol.solved);
    ASSERT_EQ(sol.frequencies.size(), 4u);
    EXPECT_EQ(sol.frequencies[0], 10) << "threshold " << fraction;
    EXPECT_EQ(sol.frequencies[1], 10);
    EXPECT_EQ(sol.frequencies[2], 10);
    EXPECT_EQ(sol.frequencies[3], a4) << "threshold " << fraction;
    EXPECT_TRUE(sol.validation.feasible);
  }
}

TEST(Table5, AnalysesTimesMatchPaper) {
  // Visible analysis times: 103.47 / 52.79 / 27.45 / 2.11 s (paper column 6).
  const std::vector<std::pair<double, double>> expected{
      {0.20, 103.47}, {0.10, 52.79}, {0.05, 27.45}, {0.01, 2.11}};
  for (const auto& [fraction, seconds] : expected) {
    const ScheduleProblem problem =
        water_ions_problem(16384, fraction, true, kWaterIonsTable5SimTime);
    const ScheduleSolution sol = solve_schedule(problem);
    ASSERT_TRUE(sol.solved);
    double visible = 0.0;
    for (const auto& tb : sol.validation.breakdown) visible += tb.visible();
    EXPECT_NEAR(visible, seconds, 0.25) << "threshold " << fraction;
  }
}

TEST(Figure5, StrongScalingA4Falloff) {
  // Paper Figure 5: with a 10% threshold and analyses {A1, A2, A4}, A1 and
  // A2 stay at 10 on all core counts while A4 drops 10, 8, 4, 2, 1.
  const std::vector<long> expected_a4{10, 8, 4, 2, 1};
  const auto& cores = water_ions_core_counts();
  for (std::size_t k = 0; k < cores.size(); ++k) {
    const ScheduleProblem problem =
        water_ions_problem(cores[k], 0.10, /*include_vacf=*/false);
    const ScheduleSolution sol = solve_schedule(problem);
    ASSERT_TRUE(sol.solved) << cores[k];
    EXPECT_EQ(sol.frequencies[0], 10) << cores[k];
    EXPECT_EQ(sol.frequencies[1], 10) << cores[k];
    EXPECT_EQ(sol.frequencies[2], expected_a4[k]) << cores[k];
  }
}

TEST(Table6, TotalThresholdSweep) {
  // Paper Table 6 (1 G atoms rhodopsin, 32768 cores): total analyses
  // 21 / 15 / 13 / 11 / 10 for budgets 200 / 100 / 60 / 20 / 10 s, with R1
  // always at its maximum frequency 10.
  const std::vector<std::pair<double, long>> expected{
      {200.0, 21}, {100.0, 15}, {60.0, 13}, {20.0, 11}, {10.0, 10}};
  for (const auto& [budget, count] : expected) {
    const ScheduleProblem problem = rhodopsin_problem(budget);
    const ScheduleSolution sol = solve_schedule(problem);
    ASSERT_TRUE(sol.solved);
    EXPECT_EQ(total(sol.frequencies), count) << "budget " << budget;
    EXPECT_EQ(sol.frequencies[0], 10) << "budget " << budget;
    EXPECT_TRUE(sol.validation.feasible);
    // Utilization: paper reports >= 85% for budgets where R2/R3 fit.
    if (budget >= 20.0 && budget <= 200.0) {
      EXPECT_GT(sol.validation.utilization(), 0.80) << "budget " << budget;
    }
  }
}

TEST(Table7, OutputFrequencyTradeoff) {
  // Paper Table 7: halving the simulation output frequency frees output
  // time (200.6 -> 100.3 -> 50.1 s in the paper, which implies a fractional
  // 2.5 output steps for the last row; with whole output steps the closest
  // realizable point is 3 outputs = 60.2 s). The recommended analysis count
  // grows 12 -> 18 -> 21 exactly as in the paper.
  ScheduleProblem problem = rhodopsin_problem(50.0);
  const auto rows = scheduler::output_tradeoff(
      problem, kRhodoSimOutputBytes, rhodopsin_write_bw(), kRhodoDefaultOutputSteps, 50.0,
      {10, 5, 3});
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_NEAR(rows[0].output_seconds, 200.6, 0.1);
  EXPECT_NEAR(rows[1].output_seconds, 100.3, 0.1);
  EXPECT_NEAR(rows[2].output_seconds, 60.18, 0.1);
  EXPECT_EQ(rows[0].total_analyses, 12);
  EXPECT_EQ(rows[1].total_analyses, 18);
  EXPECT_EQ(rows[2].total_analyses, 21);
}

TEST(Table8, EqualWeightsThrottleVorticity) {
  // I1 = (1,1,1): F1 once, F2 and F3 at the maximum frequency 10.
  const ScheduleProblem problem = flash_problem({1.0, 1.0, 1.0});
  const ScheduleSolution sol = solve_schedule(problem);
  ASSERT_TRUE(sol.solved);
  EXPECT_EQ(sol.frequencies, (std::vector<long>{1, 10, 10}));
}

TEST(Table8, PriorityWeightsBoostVorticity) {
  // I2 = (2,1,2) under the lexicographic (strict-priority) reading:
  // F1 = 5, F2 = 0, F3 = 10 — the paper's row.
  const ScheduleProblem problem = flash_problem({2.0, 1.0, 2.0});
  SolveOptions options;
  options.weight_mode = scheduler::WeightMode::kLexicographic;
  const ScheduleSolution sol = solve_schedule(problem, options);
  ASSERT_TRUE(sol.solved);
  EXPECT_EQ(sol.frequencies, (std::vector<long>{5, 0, 10}));
  EXPECT_TRUE(sol.validation.feasible);
}

TEST(Table8, WeightedSumModePrefersCheapMix) {
  // Under the plain Eq-1 weighted sum, (1,10,10) dominates (5,0,10) for any
  // costs — documented in EXPERIMENTS.md. Verify our exact solver agrees.
  const ScheduleProblem problem = flash_problem({2.0, 1.0, 2.0});
  const ScheduleSolution sol = solve_schedule(problem);
  ASSERT_TRUE(sol.solved);
  EXPECT_EQ(sol.frequencies, (std::vector<long>{1, 10, 10}));
}

TEST(CaseStudies, SolverRuntimesAreCplexLike) {
  // Paper Section 5.3: CPLEX solve times 0.17 - 1.36 s. Our branch-and-bound
  // on the same instances should be comfortably within the same order.
  double worst = 0.0;
  for (double fraction : {0.20, 0.10, 0.05, 0.01}) {
    const ScheduleSolution sol = solve_schedule(water_ions_problem(16384, fraction));
    worst = std::max(worst, sol.solver_seconds);
  }
  for (double budget : {200.0, 100.0, 60.0, 20.0, 10.0}) {
    const ScheduleSolution sol = solve_schedule(rhodopsin_problem(budget));
    worst = std::max(worst, sol.solver_seconds);
  }
  EXPECT_LT(worst, 1.5);
}

}  // namespace
}  // namespace insched::casestudy
