// Tests for the in-situ analysis kernels: RDF, MSD, VACF, radius of
// gyration, density histograms, vorticity, error norms, the registry and
// the cost probe.

#include <gtest/gtest.h>

#include <cmath>

#include "insched/analysis/cost_probe.hpp"
#include "insched/analysis/density_histogram.hpp"
#include "insched/analysis/descriptive_stats.hpp"
#include "insched/analysis/error_norms.hpp"
#include "insched/analysis/gyration.hpp"
#include "insched/analysis/isosurface.hpp"
#include "insched/analysis/msd.hpp"
#include "insched/analysis/rdf.hpp"
#include "insched/analysis/registry.hpp"
#include "insched/analysis/vacf.hpp"
#include "insched/analysis/vorticity.hpp"
#include "insched/sim/grid/sedov.hpp"
#include "insched/support/random.hpp"

namespace insched::analysis {
namespace {

using sim::Box;
using sim::ParticleSystem;
using sim::Species;

ParticleSystem random_gas(std::size_t n, double side, std::uint64_t seed,
                          Species species = Species::kWaterO) {
  Rng rng(seed);
  ParticleSystem sys(Box{side, side, side});
  for (std::size_t i = 0; i < n; ++i)
    sys.add_particle(species, rng.uniform(0.0, side), rng.uniform(0.0, side),
                     rng.uniform(0.0, side));
  return sys;
}

TEST(Rdf, IdealGasIsFlatAtOne) {
  // Uniform random points: g(r) ~ 1 for all r beyond the first tiny bins.
  const ParticleSystem sys = random_gas(4000, 12.0, 31);
  RdfConfig config;
  config.pairs = {{Species::kWaterO, Species::kWaterO}};
  config.r_max = 3.0;
  config.bins = 30;
  RdfAnalysis rdf("rdf", sys, config);
  rdf.setup();
  (void)rdf.analyze();
  const std::vector<double> g = rdf.g_of_r(0);
  for (std::size_t b = 5; b < g.size(); ++b)
    EXPECT_NEAR(g[b], 1.0, 0.25) << "bin " << b;
}

TEST(Rdf, CrossSpeciesPairCountsMatchBruteForce) {
  const double side = 8.0;
  ParticleSystem sys = random_gas(300, side, 17, Species::kWaterO);
  Rng rng(18);
  for (int i = 0; i < 100; ++i)
    sys.add_particle(Species::kIon, rng.uniform(0.0, side), rng.uniform(0.0, side),
                     rng.uniform(0.0, side));

  RdfConfig config;
  config.pairs = {{Species::kWaterO, Species::kIon}};
  config.r_max = 2.0;
  config.bins = 8;
  config.parallel = false;
  RdfAnalysis rdf("xrdf", sys, config);
  rdf.setup();
  (void)rdf.analyze();

  // Brute-force count of O-ion pairs within r_max.
  std::size_t expected = 0;
  for (std::size_t i = 0; i < sys.size(); ++i)
    for (std::size_t j = i + 1; j < sys.size(); ++j) {
      const bool cross = (sys.species[i] == Species::kWaterO &&
                          sys.species[j] == Species::kIon) ||
                         (sys.species[i] == Species::kIon &&
                          sys.species[j] == Species::kWaterO);
      if (!cross) continue;
      const double dx = Box::min_image(sys.x[i] - sys.x[j], side);
      const double dy = Box::min_image(sys.y[i] - sys.y[j], side);
      const double dz = Box::min_image(sys.z[i] - sys.z[j], side);
      if (dx * dx + dy * dy + dz * dz <= 4.0) ++expected;
    }
  // Reconstruct the raw histogram total from g(r): easier to re-run with
  // resident bytes — instead verify via output() bytes + samples: the
  // histogram sum equals the pair count.
  double total = 0.0;
  const std::vector<double> g = rdf.g_of_r(0);
  // Convert g back to counts: counts = g * expected_shell.
  const double na = static_cast<double>(sys.count(Species::kWaterO));
  const double nb = static_cast<double>(sys.count(Species::kIon));
  const double volume = sys.box().volume();
  const double bin_width = 2.0 / 8.0;
  for (std::size_t b = 0; b < g.size(); ++b) {
    const double r_lo = static_cast<double>(b) * bin_width;
    const double r_hi = r_lo + bin_width;
    const double shell = 4.0 / 3.0 * M_PI * (r_hi * r_hi * r_hi - r_lo * r_lo * r_lo);
    total += g[b] * (na * nb * shell / volume);
  }
  EXPECT_NEAR(total, static_cast<double>(expected), 1e-6);
}

TEST(Rdf, ParallelMatchesSerial) {
  const ParticleSystem sys = random_gas(2000, 10.0, 77);
  RdfConfig base;
  base.pairs = {{Species::kWaterO, Species::kWaterO}};
  base.r_max = 2.5;
  base.bins = 25;

  RdfConfig serial = base;
  serial.parallel = false;
  RdfAnalysis a("serial", sys, serial);
  a.setup();
  (void)a.analyze();

  RdfConfig parallel = base;
  parallel.parallel = true;
  RdfAnalysis b("parallel", sys, parallel);
  b.setup();
  (void)b.analyze();

  const auto ga = a.g_of_r(0);
  const auto gb = b.g_of_r(0);
  for (std::size_t k = 0; k < ga.size(); ++k) EXPECT_NEAR(ga[k], gb[k], 1e-9);
}

TEST(Rdf, OutputResetsAccumulation) {
  const ParticleSystem sys = random_gas(500, 8.0, 3);
  RdfConfig config;
  config.pairs = {{Species::kWaterO, Species::kWaterO}};
  RdfAnalysis rdf("rdf", sys, config);
  rdf.setup();
  (void)rdf.analyze();
  EXPECT_GT(rdf.resident_bytes(), 0.0);
  const double bytes = rdf.output();
  EXPECT_GT(bytes, 0.0);
  // After output the histogram is zeroed: g(r) all zero until next analyze.
  for (double v : rdf.g_of_r(0)) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Msd, BallisticParticleGrowsQuadratically) {
  ParticleSystem sys(Box{100, 100, 100});
  const std::size_t i = sys.add_particle(Species::kIon, 50, 50, 50);
  sys.vx[i] = 0.0;  // moved manually below
  MsdConfig config;
  config.group = {Species::kIon};
  MsdAnalysis msd("msd", sys, config);
  msd.setup();
  const double step_dx = 0.1;
  for (int k = 1; k <= 30; ++k) {
    sys.x[i] = Box::wrap(sys.x[i] + step_dx, 100.0);
    msd.per_step();
    const AnalysisResult r = msd.analyze();
    EXPECT_NEAR(r.values[0], (step_dx * k) * (step_dx * k), 1e-9) << "step " << k;
  }
}

TEST(Msd, UnwrapsThroughPeriodicBoundary) {
  ParticleSystem sys(Box{10, 10, 10});
  const std::size_t i = sys.add_particle(Species::kIon, 9.5, 5, 5);
  MsdConfig config;
  config.group = {Species::kIon};
  MsdAnalysis msd("msd", sys, config);
  msd.setup();
  // Cross the boundary: 9.5 -> 0.5 is +1.0 displacement, not -9.0.
  sys.x[i] = 0.5;
  msd.per_step();
  const AnalysisResult r = msd.analyze();
  EXPECT_NEAR(r.values[0], 1.0, 1e-9);
}

TEST(Msd, OutputFlushesCurve) {
  ParticleSystem sys = random_gas(10, 5.0, 2, Species::kIon);
  MsdConfig config;
  config.group = {Species::kIon};
  MsdAnalysis msd("msd", sys, config);
  msd.setup();
  (void)msd.analyze();
  (void)msd.analyze();
  EXPECT_EQ(msd.curve().size(), 2u);
  EXPECT_DOUBLE_EQ(msd.output(), 2.0 * sizeof(double));
  EXPECT_TRUE(msd.curve().empty());
}

TEST(Vacf, ConstantVelocityGivesUnity) {
  ParticleSystem sys(Box{10, 10, 10});
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    const auto id = sys.add_particle(Species::kWaterO, rng.uniform(0.0, 10.0),
                                     rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0));
    sys.vx[id] = rng.normal();
    sys.vy[id] = rng.normal();
    sys.vz[id] = rng.normal();
  }
  VacfConfig config;
  config.group = {Species::kWaterO};
  VacfAnalysis vacf("vacf", sys, config);
  vacf.setup();
  EXPECT_NEAR(vacf.analyze().values[0], 1.0, 1e-12);
  // Reverse all velocities: correlation = -1.
  for (std::size_t i = 0; i < sys.size(); ++i) {
    sys.vx[i] = -sys.vx[i];
    sys.vy[i] = -sys.vy[i];
    sys.vz[i] = -sys.vz[i];
  }
  EXPECT_NEAR(vacf.analyze().values[0], -1.0, 1e-12);
}

TEST(Gyration, TwoParticleDumbbell) {
  ParticleSystem sys(Box{10, 10, 10});
  sys.add_particle(Species::kProtein, 4.0, 5.0, 5.0, 1.0);
  sys.add_particle(Species::kProtein, 6.0, 5.0, 5.0, 1.0);
  GyrationAnalysis rg("rg", sys, Species::kProtein);
  rg.setup();
  EXPECT_NEAR(rg.analyze().values[0], 1.0, 1e-12);  // d/2
}

TEST(Gyration, HandlesPeriodicWrap) {
  ParticleSystem sys(Box{10, 10, 10});
  // Dumbbell across the boundary: 9.5 and 0.5 are 1.0 apart, Rg = 0.5.
  sys.add_particle(Species::kProtein, 9.5, 5.0, 5.0, 1.0);
  sys.add_particle(Species::kProtein, 0.5, 5.0, 5.0, 1.0);
  GyrationAnalysis rg("rg", sys, Species::kProtein);
  rg.setup();
  EXPECT_NEAR(rg.analyze().values[0], 0.5, 1e-12);
}

TEST(DensityHistogram, SlabOccupiesExpectedBins) {
  ParticleSystem sys(Box{10, 10, 10});
  Rng rng(6);
  // Membrane slab at z in [4, 6).
  for (int i = 0; i < 2000; ++i)
    sys.add_particle(Species::kMembrane, rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0),
                     rng.uniform(4.0, 6.0));
  DensityHistogramConfig config;
  config.group = Species::kMembrane;
  config.axis_a = 0;  // x
  config.axis_b = 2;  // z
  config.bins_a = 10;
  config.bins_b = 10;
  DensityHistogramAnalysis hist("mem", sys, config);
  hist.setup();
  const AnalysisResult r = hist.analyze();
  EXPECT_DOUBLE_EQ(r.values[0], 2000.0);  // every particle binned
  // Occupancy limited to the slab: 2 of 10 z-bins -> at most 20% + noise.
  EXPECT_LE(r.values[1], 0.21);
  // Check the actual z localization.
  const auto& h = hist.histogram();
  double in_slab = 0.0;
  for (std::size_t a = 0; a < 10; ++a)
    for (std::size_t b = 4; b < 6; ++b) in_slab += h[a * 10 + b];
  EXPECT_DOUBLE_EQ(in_slab, 2000.0);
}

TEST(DensityHistogram, ParallelMatchesSerial) {
  ParticleSystem sys = random_gas(3000, 10.0, 13, Species::kProtein);
  DensityHistogramConfig config;
  config.group = Species::kProtein;
  DensityHistogramAnalysis serial("s", sys, [&] {
    auto c = config;
    c.parallel = false;
    return c;
  }());
  DensityHistogramAnalysis parallel("p", sys, config);
  serial.setup();
  parallel.setup();
  (void)serial.analyze();
  (void)parallel.analyze();
  for (std::size_t k = 0; k < serial.histogram().size(); ++k)
    EXPECT_DOUBLE_EQ(serial.histogram()[k], parallel.histogram()[k]);
}

TEST(Vorticity, ShearFlowHasKnownCurl) {
  // u(z) = U sin(2 pi z / L): |curl| = |du/dz| = (2 pi U / L)|cos(2 pi z/L)|.
  const std::size_t n = 32;
  sim::EulerSolver solver(sim::GridGeometry{n, 1.0}, sim::EulerParams{});
  for (std::size_t k = 0; k < n; ++k)
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t i = 0; i < n; ++i) {
        const double z = solver.geometry().center(k);
        sim::Primitive prim;
        prim.rho = 1.0;
        prim.p = 1.0;
        prim.u = 0.1 * std::sin(2.0 * M_PI * z);
        solver.set_cell(i, j, k, prim);
      }
  VorticityAnalysis vort("vort", solver);
  (void)vort.analyze();
  const double expected_max = 2.0 * M_PI * 0.1;
  double measured_max = 0.0;
  for (double v : vort.field().data()) measured_max = std::max(measured_max, v);
  EXPECT_NEAR(measured_max, expected_max, expected_max * 0.05);
}

TEST(Vorticity, OutputReleasesField) {
  sim::EulerSolver solver(sim::GridGeometry{8, 1.0}, sim::EulerParams{});
  VorticityAnalysis vort("vort", solver);
  (void)vort.analyze();
  EXPECT_GT(vort.resident_bytes(), 0.0);
  EXPECT_GT(vort.output(), 0.0);
  EXPECT_DOUBLE_EQ(vort.resident_bytes(), 0.0);
}

TEST(ErrorNorms, DecreaseTowardReferenceAndParallelMatches) {
  sim::EulerSolver solver(sim::GridGeometry{24, 1.0}, sim::EulerParams{});
  sim::SedovSpec spec;
  initialize_sedov(solver, spec);
  for (int s = 0; s < 25; ++s) solver.step();
  const sim::SedovReference ref(spec, solver.params().gamma);

  ErrorNormAnalysis l1("F2", solver, ref, NormKind::kL1DensityPressure);
  const AnalysisResult r1 = l1.analyze();
  ASSERT_EQ(r1.values.size(), 2u);
  EXPECT_GT(r1.values[0], 0.0);
  EXPECT_LT(r1.values[0], 2.0);  // bounded: first-order solver vs reference

  ErrorNormAnalysis l2p("F3p", solver, ref, NormKind::kL2Velocity, true);
  ErrorNormAnalysis l2s("F3s", solver, ref, NormKind::kL2Velocity, false);
  const AnalysisResult rp = l2p.analyze();
  const AnalysisResult rs = l2s.analyze();
  for (std::size_t k = 0; k < 3; ++k) EXPECT_NEAR(rp.values[k], rs.values[k], 1e-9);
}


TEST(DescriptiveStats, UniformFieldHasZeroVariance) {
  sim::EulerSolver solver(sim::GridGeometry{8, 1.0}, sim::EulerParams{});
  for (std::size_t k = 0; k < 8; ++k)
    for (std::size_t j = 0; j < 8; ++j)
      for (std::size_t i = 0; i < 8; ++i)
        solver.set_cell(i, j, k, sim::Primitive{2.5, 0, 0, 0, 1.0});
  DescriptiveStatsAnalysis stats("stats", solver, FieldSelector::kDensity);
  const AnalysisResult r = stats.analyze();
  ASSERT_EQ(r.values.size(), 4u);
  EXPECT_DOUBLE_EQ(r.values[0], 2.5);  // min
  EXPECT_DOUBLE_EQ(r.values[1], 2.5);  // max
  EXPECT_DOUBLE_EQ(r.values[2], 2.5);  // mean
  EXPECT_NEAR(r.values[3], 0.0, 1e-12);  // stddev
  EXPECT_GT(stats.output(), 0.0);
  EXPECT_DOUBLE_EQ(stats.resident_bytes(), 0.0);
}

TEST(DescriptiveStats, SedovBlastHasWideDensityRange) {
  sim::EulerSolver solver(sim::GridGeometry{16, 1.0}, sim::EulerParams{});
  sim::initialize_sedov(solver, sim::SedovSpec{});
  for (int s = 0; s < 15; ++s) solver.step();
  DescriptiveStatsAnalysis stats("rho", solver, FieldSelector::kDensity);
  const AnalysisResult r = stats.analyze();
  EXPECT_LT(r.values[0], 1.0);   // evacuated center
  EXPECT_GT(r.values[1], 1.2);   // shocked shell
  EXPECT_GT(r.values[3], 0.0);   // nonzero spread
  // Velocity magnitude stats also behave.
  DescriptiveStatsAnalysis vel("v", solver, FieldSelector::kVelocityMagnitude);
  const AnalysisResult rv = vel.analyze();
  EXPECT_GE(rv.values[0], 0.0);
  EXPECT_GT(rv.values[1], 0.0);
}

TEST(Isosurface, SphereHasExpectedCellCensus) {
  // Density 2 inside a radius-0.25 sphere, 1 outside: the crossed cells form
  // the spherical shell; area estimate should be near 4*pi*r^2 = 0.785.
  const std::size_t n = 48;
  sim::EulerSolver solver(sim::GridGeometry{n, 1.0}, sim::EulerParams{});
  for (std::size_t k = 0; k < n; ++k)
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t i = 0; i < n; ++i) {
        const double x = solver.geometry().center(i) - 0.5;
        const double y = solver.geometry().center(j) - 0.5;
        const double z = solver.geometry().center(k) - 0.5;
        const double r = std::sqrt(x * x + y * y + z * z);
        solver.set_cell(i, j, k, sim::Primitive{r < 0.25 ? 2.0 : 1.0, 0, 0, 0, 1.0});
      }
  IsosurfaceAnalysis iso("shell", solver, 1.5);
  const AnalysisResult r = iso.analyze();
  EXPECT_GT(iso.last_crossed_cells(), 0);
  const double area = r.values[2];
  EXPECT_NEAR(area, 4.0 * M_PI * 0.25 * 0.25, 4.0 * M_PI * 0.25 * 0.25 * 0.35);
  // Geometry buffered until output.
  EXPECT_GT(iso.resident_bytes(), 0.0);
  EXPECT_GT(iso.output(), 0.0);
  EXPECT_DOUBLE_EQ(iso.resident_bytes(), 0.0);
}

TEST(Isosurface, NoCrossingWhenIsoOutsideRange) {
  sim::EulerSolver solver(sim::GridGeometry{8, 1.0}, sim::EulerParams{});
  IsosurfaceAnalysis iso("none", solver, 99.0);  // uniform rho = 1
  const AnalysisResult r = iso.analyze();
  EXPECT_DOUBLE_EQ(r.values[0], 0.0);
  EXPECT_DOUBLE_EQ(iso.output(), 0.0);
}

TEST(Isosurface, ParallelMatchesSerial) {
  sim::EulerSolver solver(sim::GridGeometry{24, 1.0}, sim::EulerParams{});
  sim::initialize_sedov(solver, sim::SedovSpec{});
  for (int s = 0; s < 10; ++s) solver.step();
  IsosurfaceAnalysis par("p", solver, 1.2, true);
  IsosurfaceAnalysis ser("s", solver, 1.2, false);
  EXPECT_DOUBLE_EQ(par.analyze().values[0], ser.analyze().values[0]);
}

TEST(Registry, AddFindNames) {
  ParticleSystem sys = random_gas(10, 5.0, 1, Species::kIon);
  AnalysisRegistry registry;
  MsdConfig mc;
  mc.group = {Species::kIon};
  registry.add(std::make_unique<MsdAnalysis>("A4", sys, mc));
  registry.add(std::make_unique<GyrationAnalysis>("R1", sys, Species::kProtein));
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.names(), (std::vector<std::string>{"A4", "R1"}));
  EXPECT_NE(registry.find("A4"), nullptr);
  EXPECT_EQ(registry.find("nope"), nullptr);
  EXPECT_EQ(registry.at(1).name(), "R1");
}

TEST(CostProbe, MeasuresMsdLifecycle) {
  ParticleSystem sys = random_gas(5000, 12.0, 8, Species::kIon);
  MsdConfig config;
  config.group = {Species::kIon};
  MsdAnalysis msd("A4", sys, config);
  const scheduler::AnalysisParams params = probe_analysis(msd);
  EXPECT_EQ(params.name, "A4");
  EXPECT_GT(params.ft, 0.0);
  EXPECT_GT(params.ct, 0.0);
  EXPECT_GT(params.fm, 0.0);   // reference buffers
  EXPECT_GT(params.om, 0.0);   // buffered curve flushed at output
  EXPECT_GE(params.ot, 0.0);
}

}  // namespace
}  // namespace insched::analysis
