// Positive TU for the thread-safety negative-compile gate
// (tools/check_thread_safety.sh). Everything here follows the declared
// locking discipline, so a Clang -Wthread-safety -Werror syntax-only pass
// must ACCEPT this file; if it does not, the annotations themselves are
// wrong. The mis-locked counterpart lives in thread_safety_negative.cpp.
//
// The annotated concurrent-core headers are included so their declarations
// are themselves checked for consistency.

#include "insched/mip/cut_pool.hpp"
#include "insched/mip/node_pool.hpp"
#include "insched/support/thread_annotations.hpp"

namespace {

struct Counter {
  insched::Mutex mu;
  int value INSCHED_GUARDED_BY(mu) = 0;
};

int read_locked(Counter& c) {
  insched::MutexLock lock(c.mu);
  return c.value;
}

void write_locked(Counter& c) {
  c.mu.lock();
  ++c.value;
  c.mu.unlock();
}

// The drop-the-lock-around-work pattern used by the task pool: the analysis
// must track the explicit unlock()/lock() cycle on the scoped capability.
int relock_cycle(Counter& c) {
  insched::MutexLock lock(c.mu);
  const int before = c.value;
  lock.unlock();
  // ... unguarded work here ...
  lock.lock();
  return c.value - before;
}

// A function-level contract: callers must already hold the mutex.
int read_with_contract(Counter& c) INSCHED_REQUIRES(c.mu) { return c.value; }

int call_with_contract(Counter& c) {
  insched::MutexLock lock(c.mu);
  return read_with_contract(c);
}

}  // namespace

int thread_safety_positive_entry(insched::mip::CutPool& pool) {
  (void)read_locked;
  (void)write_locked;
  (void)relock_cycle;
  (void)call_with_contract;
  return pool.size();
}
