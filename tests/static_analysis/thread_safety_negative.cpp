// Negative TU for the thread-safety gate (tools/check_thread_safety.sh):
// this file accesses a guarded member WITHOUT holding its mutex, and the
// gate asserts that a Clang -Wthread-safety -Werror pass REJECTS it. If
// this file ever compiles under that configuration, the annotation macros
// have silently degraded to no-ops on a compiler that should enforce them,
// and the static locking guarantee is gone.
//
// Never added to any build target; only the gate script compiles it.

#include "insched/support/thread_annotations.hpp"

namespace {

struct Counter {
  insched::Mutex mu;
  int value INSCHED_GUARDED_BY(mu) = 0;
};

}  // namespace

int thread_safety_negative_entry(Counter& c) {
  return c.value;  // mis-locked: no MutexLock, no REQUIRES contract
}
