// Tests for the support utilities: RNG determinism, statistics, string and
// table formatting, parallel helpers.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "insched/support/parallel.hpp"
#include "insched/support/random.hpp"
#include "insched/support/stats.hpp"
#include "insched/support/string_util.hpp"
#include "insched/support/table.hpp"
#include "insched/support/units.hpp"

namespace insched {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(11);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 10000; ++i) ++hits[rng.uniform_index(10)];
  for (int h : hits) EXPECT_GT(h, 700);  // roughly uniform
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo = saw_lo || v == -2;
    saw_hi = saw_hi || v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(5);
  Accumulator acc;
  for (int i = 0; i < 50000; ++i) acc.add(rng.normal(3.0, 2.0));
  EXPECT_NEAR(acc.mean(), 3.0, 0.05);
  EXPECT_NEAR(acc.stddev(), 2.0, 0.05);
}

TEST(Stats, SummaryBasics) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_NEAR(s.stddev, 1.2909944, 1e-6);
}

TEST(Stats, SummaryEmptyIsZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> v{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 25.0);
}

TEST(Stats, RelativeErrors) {
  const std::vector<double> pred{1.1, 1.9};
  const std::vector<double> act{1.0, 2.0};
  EXPECT_NEAR(mean_relative_error(pred, act), 0.075, 1e-12);
  EXPECT_NEAR(max_relative_error(pred, act), 0.1, 1e-12);
}

TEST(Stats, LinearFitRecoversLine) {
  std::vector<double> x(20), y(20);
  for (int i = 0; i < 20; ++i) {
    x[static_cast<std::size_t>(i)] = i;
    y[static_cast<std::size_t>(i)] = 2.5 * i - 4.0;
  }
  const LinearFit fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 2.5, 1e-10);
  EXPECT_NEAR(fit.intercept, -4.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Stats, AccumulatorMatchesBatch) {
  Rng rng(9);
  std::vector<double> values;
  Accumulator acc;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.uniform(-5.0, 5.0);
    values.push_back(v);
    acc.add(v);
  }
  const Summary s = summarize(values);
  EXPECT_NEAR(acc.mean(), s.mean, 1e-12);
  EXPECT_NEAR(acc.stddev(), s.stddev, 1e-9);
  EXPECT_DOUBLE_EQ(acc.min(), s.min);
  EXPECT_DOUBLE_EQ(acc.max(), s.max);
}

TEST(StringUtil, FormatAndSplit) {
  EXPECT_EQ(format("%d-%s", 3, "x"), "3-x");
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(trim("  hi \n"), "hi");
  EXPECT_EQ(join({"a", "b"}, "::"), "a::b");
}

TEST(StringUtil, HumanReadable) {
  EXPECT_EQ(format_seconds(0.0123), "12.30 ms");
  EXPECT_EQ(format_seconds(3.5), "3.50 s");
  EXPECT_EQ(format_bytes(1.5 * GiB), "1.50 GiB");
}

TEST(TableRender, AlignsColumns) {
  Table t("demo");
  t.set_header({"name", "value"});
  t.add("alpha", 1.5);
  t.add("b", 22);
  const std::string out = t.render();
  EXPECT_NE(out.find("| alpha | 1.5"), std::string::npos);
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Parallel, ForCoversAllIndices) {
  const std::size_t n = 100000;
  std::vector<int> hits(n, 0);
  parallel_for(n, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i] += 1;
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), static_cast<int>(n));
}

TEST(Parallel, ReduceMatchesSerialSum) {
  const std::size_t n = 200000;
  const double total = parallel_reduce_sum(n, [](std::size_t i) { return static_cast<double>(i); });
  EXPECT_DOUBLE_EQ(total, static_cast<double>(n) * (n - 1) / 2.0);
}

TEST(Parallel, ThreadCountOverride) {
  set_thread_count(2);
  EXPECT_EQ(thread_count(), 2);
  set_thread_count(0);
  EXPECT_GE(thread_count(), 1);
}

}  // namespace
}  // namespace insched
