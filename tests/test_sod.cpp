// Sod shock-tube validation of the Euler solver against the exact Riemann
// solution (Toro's iterative star-state solver). This pins down the
// hydrodynamics beyond conservation checks: wave structure, shock position
// and the L1 convergence expected of a first-order scheme.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "insched/sim/grid/euler.hpp"

namespace insched::sim {
namespace {

struct RiemannState {
  double rho, u, p;
};

/// Exact solution of the 1-D Riemann problem sampled at xi = x/t
/// (Toro, "Riemann Solvers and Numerical Methods for Fluid Dynamics").
class ExactRiemann {
 public:
  ExactRiemann(RiemannState left, RiemannState right, double gamma)
      : l_(left), r_(right), g_(gamma) {
    cl_ = std::sqrt(g_ * l_.p / l_.rho);
    cr_ = std::sqrt(g_ * r_.p / r_.rho);
    solve_star();
  }

  [[nodiscard]] RiemannState sample(double xi) const {
    if (xi <= u_star_) return sample_left(xi);
    return sample_right(xi);
  }

  [[nodiscard]] double p_star() const noexcept { return p_star_; }
  [[nodiscard]] double u_star() const noexcept { return u_star_; }

 private:
  // f_K(p): velocity change across the wave on side K.
  [[nodiscard]] double wave_fn(double p, const RiemannState& s, double c) const {
    if (p > s.p) {  // shock
      const double a = 2.0 / ((g_ + 1.0) * s.rho);
      const double b = (g_ - 1.0) / (g_ + 1.0) * s.p;
      return (p - s.p) * std::sqrt(a / (p + b));
    }
    // rarefaction
    return 2.0 * c / (g_ - 1.0) * (std::pow(p / s.p, (g_ - 1.0) / (2.0 * g_)) - 1.0);
  }

  void solve_star() {
    // Newton iteration on f(p) = fL + fR + (uR - uL) = 0.
    double p = std::max(1e-8, 0.5 * (l_.p + r_.p));
    for (int it = 0; it < 100; ++it) {
      const double f = wave_fn(p, l_, cl_) + wave_fn(p, r_, cr_) + (r_.u - l_.u);
      const double eps = std::max(1e-10, p * 1e-7);
      const double f_eps =
          wave_fn(p + eps, l_, cl_) + wave_fn(p + eps, r_, cr_) + (r_.u - l_.u);
      const double df = (f_eps - f) / eps;
      const double step = f / df;
      p = std::max(1e-8, p - step);
      if (std::fabs(step) < 1e-12 * p) break;
    }
    p_star_ = p;
    u_star_ = 0.5 * (l_.u + r_.u) + 0.5 * (wave_fn(p, r_, cr_) - wave_fn(p, l_, cl_));
  }

  [[nodiscard]] RiemannState sample_left(double xi) const {
    if (p_star_ > l_.p) {  // left shock
      const double ratio = p_star_ / l_.p;
      const double shock_speed =
          l_.u - cl_ * std::sqrt((g_ + 1.0) / (2.0 * g_) * ratio + (g_ - 1.0) / (2.0 * g_));
      if (xi < shock_speed) return l_;
      const double rho = l_.rho * (ratio + (g_ - 1.0) / (g_ + 1.0)) /
                         ((g_ - 1.0) / (g_ + 1.0) * ratio + 1.0);
      return {rho, u_star_, p_star_};
    }
    // left rarefaction
    const double head = l_.u - cl_;
    const double c_star = cl_ * std::pow(p_star_ / l_.p, (g_ - 1.0) / (2.0 * g_));
    const double tail = u_star_ - c_star;
    if (xi < head) return l_;
    if (xi > tail) {
      const double rho = l_.rho * std::pow(p_star_ / l_.p, 1.0 / g_);
      return {rho, u_star_, p_star_};
    }
    // inside the fan
    const double u = 2.0 / (g_ + 1.0) * (cl_ + (g_ - 1.0) / 2.0 * l_.u + xi);
    const double c = 2.0 / (g_ + 1.0) * (cl_ + (g_ - 1.0) / 2.0 * (l_.u - xi));
    const double rho = l_.rho * std::pow(c / cl_, 2.0 / (g_ - 1.0));
    const double p = l_.p * std::pow(c / cl_, 2.0 * g_ / (g_ - 1.0));
    return {rho, u, p};
  }

  [[nodiscard]] RiemannState sample_right(double xi) const {
    if (p_star_ > r_.p) {  // right shock
      const double ratio = p_star_ / r_.p;
      const double shock_speed =
          r_.u + cr_ * std::sqrt((g_ + 1.0) / (2.0 * g_) * ratio + (g_ - 1.0) / (2.0 * g_));
      if (xi > shock_speed) return r_;
      const double rho = r_.rho * (ratio + (g_ - 1.0) / (g_ + 1.0)) /
                         ((g_ - 1.0) / (g_ + 1.0) * ratio + 1.0);
      return {rho, u_star_, p_star_};
    }
    // right rarefaction
    const double head = r_.u + cr_;
    const double c_star = cr_ * std::pow(p_star_ / r_.p, (g_ - 1.0) / (2.0 * g_));
    const double tail = u_star_ + c_star;
    if (xi > head) return r_;
    if (xi < tail) {
      const double rho = r_.rho * std::pow(p_star_ / r_.p, 1.0 / g_);
      return {rho, u_star_, p_star_};
    }
    const double u = 2.0 / (g_ + 1.0) * (-cr_ + (g_ - 1.0) / 2.0 * r_.u + xi);
    const double c = 2.0 / (g_ + 1.0) * (cr_ - (g_ - 1.0) / 2.0 * (r_.u - xi));
    const double rho = r_.rho * std::pow(c / cr_, 2.0 / (g_ - 1.0));
    const double p = r_.p * std::pow(c / cr_, 2.0 * g_ / (g_ - 1.0));
    return {rho, u, p};
  }

  RiemannState l_, r_;
  double g_;
  double cl_ = 0.0, cr_ = 0.0;
  double p_star_ = 0.0, u_star_ = 0.0;
};

TEST(ExactRiemannSolver, SodStarStateMatchesLiterature) {
  // Classic Sod: (1, 0, 1) | (0.125, 0, 0.1), gamma = 1.4.
  // Literature: p* = 0.30313, u* = 0.92745.
  const ExactRiemann exact({1.0, 0.0, 1.0}, {0.125, 0.0, 0.1}, 1.4);
  EXPECT_NEAR(exact.p_star(), 0.30313, 2e-4);
  EXPECT_NEAR(exact.u_star(), 0.92745, 2e-4);
  // Spot values: left state ahead of the rarefaction head, right state
  // beyond the shock.
  EXPECT_NEAR(exact.sample(-1.3).rho, 1.0, 1e-12);
  EXPECT_NEAR(exact.sample(1.8).rho, 0.125, 1e-12);
  // Contact discontinuity: density jumps at u*, pressure does not.
  const RiemannState just_left = exact.sample(exact.u_star() - 1e-6);
  const RiemannState just_right = exact.sample(exact.u_star() + 1e-6);
  EXPECT_NEAR(just_left.p, just_right.p, 1e-6);
  EXPECT_GT(just_left.rho, just_right.rho + 0.1);
}

TEST(EulerSod, MatchesExactRiemannSolution) {
  // Double shock tube on the periodic domain: left state inside
  // [0.25, 0.75), right state outside, so both discontinuities (at 0.25 and
  // 0.75) evolve identically and waves do not interact before t ~ 0.07.
  const std::size_t n = 64;
  EulerSolver solver(GridGeometry{n, 1.0}, EulerParams{});
  const RiemannState left{1.0, 0.0, 1.0};
  const RiemannState right{0.125, 0.0, 0.1};
  for (std::size_t k = 0; k < n; ++k)
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t i = 0; i < n; ++i) {
        const double x = solver.geometry().center(i);
        const RiemannState& s = (x >= 0.25 && x < 0.75) ? left : right;
        solver.set_cell(i, j, k, Primitive{s.rho, s.u, 0.0, 0.0, s.p});
      }

  const double t_target = 0.06;
  while (solver.time() < t_target) solver.step();
  const double t = solver.time();

  // Compare the x-profile (any j, k — the flow is 1-D) around the
  // discontinuity at x0 = 0.75 against the exact solution.
  const ExactRiemann exact(left, right, solver.params().gamma);
  const double x0 = 0.75;
  double l1 = 0.0;
  long samples = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = solver.geometry().center(i);
    if (x < 0.55 || x > 0.97) continue;  // stay clear of the other wave fan
    const RiemannState ref = exact.sample((x - x0) / t);
    l1 += std::fabs(solver.density().at(i, 5, 9) - ref.rho);
    ++samples;
  }
  l1 /= static_cast<double>(samples);
  // First-order Rusanov at n = 64: L1(rho) well under 0.05 in this window.
  EXPECT_LT(l1, 0.05);

  // Shock position: the steepest density drop near the predicted location.
  const double shock_speed =
      right.u + std::sqrt(1.4 * right.p / right.rho) *
                    std::sqrt((1.4 + 1.0) / (2.0 * 1.4) * exact.p_star() / right.p +
                              (1.4 - 1.0) / (2.0 * 1.4));
  const double shock_x = x0 + shock_speed * t;
  // Search beyond the contact (x0 + u* t): the rarefaction tail and the
  // contact both have steep gradients in a first-order solution.
  const double contact_x = x0 + exact.u_star() * t;
  double steepest = 0.0;
  double steepest_x = 0.0;
  for (std::size_t i = 0; i < n - 1; ++i) {
    const double x = solver.geometry().center(i);
    if (x < contact_x + 0.015 || x > 0.97) continue;
    const double drop = solver.density().at(i, 5, 9) - solver.density().at(i + 1, 5, 9);
    if (drop > steepest) {
      steepest = drop;
      steepest_x = solver.geometry().center(i);
    }
  }
  EXPECT_NEAR(steepest_x, shock_x, 3.0 / static_cast<double>(n));  // within 3 cells

  // The y/z velocities stay identically zero (1-D flow in a 3-D solver).
  for (std::size_t i = 0; i < n; i += 7) {
    const Primitive prim = solver.cell(i, 3, 11);
    EXPECT_NEAR(prim.v, 0.0, 1e-12);
    EXPECT_NEAR(prim.w, 0.0, 1e-12);
  }
}

}  // namespace
}  // namespace insched::sim
