// Tests for the machine model: torus topology, Mira presets, storage
// accounting, temp directories.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "insched/machine/collectives.hpp"
#include "insched/machine/machine.hpp"
#include "insched/machine/storage.hpp"
#include "insched/machine/topology.hpp"
#include "insched/support/units.hpp"

namespace insched::machine {
namespace {

TEST(Torus, NodeCountAndDiameter) {
  const Torus5D t({4, 4, 4, 4, 2});
  EXPECT_EQ(t.num_nodes(), 512);
  EXPECT_EQ(t.diameter(), 2 + 2 + 2 + 2 + 1);
  EXPECT_EQ(t.to_string(), "4x4x4x4x2");
}

TEST(Torus, BgqPartitionsAreConsistent) {
  for (std::int64_t nodes : {512L, 1024L, 2048L, 4096L, 8192L, 16384L, 32768L, 49152L}) {
    ASSERT_TRUE(is_valid_bgq_partition(nodes));
    const Torus5D t = bgq_partition(nodes);
    EXPECT_EQ(t.num_nodes(), nodes) << t.to_string();
  }
  EXPECT_FALSE(is_valid_bgq_partition(777));
}

TEST(Torus, DiameterGrowsWithPartitionSize) {
  int prev = 0;
  for (std::int64_t nodes : {512L, 2048L, 8192L, 32768L}) {
    const int d = bgq_partition(nodes).diameter();
    EXPECT_GE(d, prev);
    prev = d;
  }
}

TEST(Machine, MiraPreset) {
  const MachineModel m = mira();
  EXPECT_EQ(m.nodes, 49152);
  EXPECT_EQ(m.total_cores(), 49152 * 16);
  EXPECT_DOUBLE_EQ(m.mem_per_node_bytes, 16.0 * GiB);
  EXPECT_DOUBLE_EQ(m.peak_io_bw, 240.0 * GB);
  EXPECT_DOUBLE_EQ(m.mem_per_rank(), GiB);
}

TEST(Machine, PartitionScalesIoBandwidth) {
  const MachineModel part = mira_partition(1024);
  // 1024 of 49152 nodes -> proportional share of 240 GB/s.
  EXPECT_NEAR(part.peak_io_bw, 240.0 * GB * 1024.0 / 49152.0, 1e-3);
  EXPECT_EQ(part.total_ranks(), 1024 * 16);
}

TEST(Machine, GenericClusterPreset) {
  const MachineModel m = generic_cluster(256);
  EXPECT_EQ(m.nodes, 256);
  EXPECT_EQ(m.total_cores(), 256 * 64);
  EXPECT_EQ(m.total_ranks(), 256 * 8);
  EXPECT_DOUBLE_EQ(m.mem_per_rank(), 32.0 * GiB);
  EXPECT_GT(m.peak_io_bw, mira().peak_io_bw);  // a decade newer
}

TEST(Machine, IoBandwidthSaturatesAtPeak) {
  const MachineModel m = mira();
  EXPECT_DOUBLE_EQ(m.io_bandwidth(m.nodes), m.peak_io_bw);
  EXPECT_LT(m.io_bandwidth(512), m.peak_io_bw);
  EXPECT_DOUBLE_EQ(m.io_bandwidth(0), 0.0);
}

TEST(Storage, WriteReadTimesFollowModel) {
  const StorageModel model{.write_bw = 100.0, .read_bw = 50.0, .latency_s = 0.5};
  EXPECT_DOUBLE_EQ(model.write_time(1000.0), 0.5 + 10.0);
  EXPECT_DOUBLE_EQ(model.read_time(1000.0), 0.5 + 20.0);
  EXPECT_DOUBLE_EQ(model.write_time(0.0), 0.0);
}

TEST(Storage, SimulatedStoreAccumulates) {
  SimulatedStore store(StorageModel{.write_bw = 10.0, .read_bw = 10.0, .latency_s = 0.0});
  EXPECT_DOUBLE_EQ(store.write(100.0), 10.0);
  EXPECT_DOUBLE_EQ(store.write(50.0), 5.0);
  EXPECT_DOUBLE_EQ(store.read(20.0), 2.0);
  EXPECT_DOUBLE_EQ(store.bytes_written(), 150.0);
  EXPECT_DOUBLE_EQ(store.write_seconds(), 15.0);
  EXPECT_DOUBLE_EQ(store.bytes_read(), 20.0);
  EXPECT_EQ(store.writes(), 2);
}

TEST(Storage, TempDirCreatesAndCleansUp) {
  std::filesystem::path where;
  {
    TempDir dir("insched-test");
    where = dir.path();
    EXPECT_TRUE(std::filesystem::exists(where));
    std::ofstream(dir.file("probe.bin")) << "data";
    EXPECT_TRUE(std::filesystem::exists(dir.file("probe.bin")));
  }
  EXPECT_FALSE(std::filesystem::exists(where));
}


TEST(Collectives, AllreduceGrowsWithDiameterAndBytes) {
  const NetworkParams net;
  const CollectiveModel small(bgq_partition(512), net);
  const CollectiveModel large(bgq_partition(32768), net);
  // Larger partitions (bigger diameter) cost more for the same payload.
  EXPECT_GT(large.allreduce_seconds(1e6), small.allreduce_seconds(1e6));
  // More bytes cost more on the same partition.
  EXPECT_GT(small.allreduce_seconds(1e7), small.allreduce_seconds(1e3));
  // Latency floor: even a zero-byte allreduce pays the per-hop latency.
  EXPECT_GE(small.allreduce_seconds(0.0),
            2.0 * net.link_latency_s * small.topology().diameter());
}

TEST(Collectives, BroadcastCheaperThanAllreduce) {
  const CollectiveModel model(bgq_partition(8192), NetworkParams{});
  EXPECT_LT(model.broadcast_seconds(1e6), model.allreduce_seconds(1e6));
}

TEST(Collectives, AllgatherScalesWithRanks) {
  const CollectiveModel model(bgq_partition(1024), NetworkParams{});
  EXPECT_GT(model.allgather_seconds(1e4, 4096), model.allgather_seconds(1e4, 64));
}

TEST(Collectives, HaloExchangeIsNeighborOnly) {
  // Halo exchange must not depend on the partition size, only on face bytes.
  const NetworkParams net;
  const CollectiveModel small(bgq_partition(512), net);
  const CollectiveModel large(bgq_partition(32768), net);
  EXPECT_DOUBLE_EQ(small.halo_exchange_seconds(1e5), large.halo_exchange_seconds(1e5));
  EXPECT_GT(small.halo_exchange_seconds(1e6), small.halo_exchange_seconds(1e3));
}
}  // namespace
}  // namespace insched::machine
