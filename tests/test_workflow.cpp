// End-to-end workflow integration tests: the paper's full loop on real
// (laptop-scale) data — probe kernel costs (Section 4), build the model,
// solve for the optimal schedule (Section 3.2), execute it in-situ and
// compare predicted against measured behaviour (Section 5). Also wires the
// domain decomposition and collective models together the way the paper's
// communication predictor assumes.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>

#include "insched/analysis/cost_probe.hpp"
#include "insched/analysis/msd.hpp"
#include "insched/analysis/rdf.hpp"
#include "insched/analysis/registry.hpp"
#include "insched/machine/collectives.hpp"
#include "insched/runtime/runtime.hpp"
#include "insched/scheduler/problem_io.hpp"
#include "insched/scheduler/solver.hpp"
#include "insched/sim/particles/builders.hpp"
#include "insched/sim/particles/decomposition.hpp"
#include "insched/sim/particles/lj_md.hpp"

namespace insched {
namespace {

TEST(Workflow, ProbeSolveExecuteRoundTrip) {
  // 1. Build and equilibrate a small water+ions system.
  sim::WaterIonsSpec spec;
  spec.molecules = 250;
  spec.hydronium_fraction = 0.04;
  spec.ion_fraction = 0.04;
  sim::LjSimulation md(sim::water_ions(spec), sim::MdParams{});
  md.minimize(60);
  md.thermalize(77);

  // 2. Register analyses and probe their Table-1 costs.
  analysis::AnalysisRegistry registry;
  analysis::RdfConfig rdf_config;
  rdf_config.pairs = {{sim::Species::kHydronium, sim::Species::kWaterO}};
  registry.add(std::make_unique<analysis::RdfAnalysis>("rdf", md.system(), rdf_config));
  analysis::MsdConfig msd_config;
  msd_config.group = {sim::Species::kIon};
  registry.add(std::make_unique<analysis::MsdAnalysis>("msd", md.system(), msd_config));

  scheduler::ScheduleProblem problem;
  problem.steps = 60;
  problem.threshold = 0.15;
  problem.threshold_kind = scheduler::ThresholdKind::kFractionOfSimTime;
  problem.output_policy = scheduler::OutputPolicy::kEveryAnalysis;
  problem.bw = 1e9;
  {
    const auto begin = std::chrono::steady_clock::now();
    for (int s = 0; s < 3; ++s) md.step();
    problem.sim_time_per_step =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - begin).count() / 3.0;
  }
  for (std::size_t i = 0; i < registry.size(); ++i) {
    scheduler::AnalysisParams params = analysis::probe_analysis(registry.at(i));
    params.itv = 6;
    problem.analyses.push_back(params);
  }

  // 3. Solve and verify structure.
  const scheduler::ScheduleSolution sol = scheduler::solve_schedule(problem);
  ASSERT_TRUE(sol.solved);
  ASSERT_TRUE(sol.validation.feasible);
  EXPECT_GT(sol.frequencies[0] + sol.frequencies[1], 0);

  // 4. Execute the schedule for real and compare against the plan.
  runtime::RuntimeConfig config;
  config.storage = machine::StorageModel{.write_bw = problem.bw, .read_bw = problem.bw,
                                         .latency_s = 0.0};
  runtime::InsituRuntime runner(md, registry, sol.schedule, config);
  const runtime::RunMetrics metrics = runner.run();
  for (std::size_t i = 0; i < problem.size(); ++i) {
    EXPECT_EQ(metrics.analyses[i].analysis_steps, sol.frequencies[i]);
    EXPECT_EQ(metrics.analyses[i].output_steps, sol.output_counts[i]);
  }
  EXPECT_EQ(metrics.memory_violations, 0);
  // Wall-clock agreement is noisy on shared machines; require the measured
  // visible analysis time to be within 5x of the probe-based prediction.
  const double predicted = sol.validation.total_analysis_time;
  const double measured = metrics.total_analysis_seconds();
  if (predicted > 1e-4) {
    EXPECT_LT(measured, predicted * 5.0);
    EXPECT_GT(measured, predicted / 5.0);
  }
}

TEST(Workflow, ConfigFileDrivesTheSameSolution) {
  // A problem built in code and the same problem round-tripped through the
  // INI format must produce identical schedules.
  scheduler::ScheduleProblem problem;
  problem.steps = 500;
  problem.threshold = 40.0;
  problem.threshold_kind = scheduler::ThresholdKind::kTotalSeconds;
  problem.mth = 3e9;
  problem.bw = 2e9;
  problem.output_policy = scheduler::OutputPolicy::kOptimized;
  scheduler::AnalysisParams a;
  a.name = "temporal";
  a.ft = 1.0;
  a.it = 0.004;
  a.im = 10e6;
  a.ct = 2.0;
  a.cm = 40e6;
  a.om = 200e6;
  a.itv = 10;
  a.weight = 2.0;
  problem.analyses.push_back(a);
  scheduler::AnalysisParams b;
  b.name = "spectrum";
  b.ct = 0.7;
  b.om = 30e6;
  b.itv = 25;
  problem.analyses.push_back(b);

  const scheduler::ScheduleProblem reloaded =
      scheduler::problem_from_string(scheduler::problem_to_config(problem));
  const auto sol_a = scheduler::solve_schedule(problem);
  const auto sol_b = scheduler::solve_schedule(reloaded);
  ASSERT_TRUE(sol_a.solved);
  ASSERT_TRUE(sol_b.solved);
  EXPECT_EQ(sol_a.frequencies, sol_b.frequencies);
  EXPECT_EQ(sol_a.output_counts, sol_b.output_counts);
  EXPECT_NEAR(sol_a.objective, sol_b.objective, 1e-9);
}

TEST(Workflow, DecompositionFeedsCollectiveModel) {
  // Section-4 style communication prediction from first principles: the RDF
  // reduces its histograms across ranks; the payload comes from the kernel,
  // the cost from the torus model, and the halo volume from the real
  // decomposition of a real particle system.
  sim::WaterIonsSpec spec;
  spec.molecules = 2000;
  const sim::ParticleSystem system = sim::water_ions(spec);

  const sim::DomainDecomposition decomp(system, 4);  // 64 virtual ranks
  const sim::DecompositionStats stats = decomp.stats(2.5);
  ASSERT_GT(stats.mean_halo_bytes, 0.0);

  const machine::CollectiveModel collectives(machine::bgq_partition(512),
                                             machine::NetworkParams{});
  // Histogram allreduce: 100 bins x 3 pairs x 8 bytes.
  const double reduce_bytes = 100.0 * 3.0 * sizeof(double);
  const double comm = collectives.allreduce_seconds(reduce_bytes) +
                      collectives.halo_exchange_seconds(stats.mean_halo_bytes);
  EXPECT_GT(comm, 0.0);
  EXPECT_LT(comm, 0.1);  // collectives on 512 nodes are sub-100ms

  // Larger partition, same payload: more expensive (diameter term).
  const machine::CollectiveModel big(machine::bgq_partition(32768),
                                     machine::NetworkParams{});
  EXPECT_GT(big.allreduce_seconds(reduce_bytes),
            collectives.allreduce_seconds(reduce_bytes));
}

}  // namespace
}  // namespace insched
