// Tests for the co-analysis (in-transit) extension: mode selection follows
// the paper's qualitative guidance — cheap analyses stay in-situ, compute-
// heavy/low-data analyses move to staging, data-heavy analyses stay put; and
// the staging resource budgets bind correctly.

#include <gtest/gtest.h>

#include "insched/machine/energy.hpp"
#include "insched/runtime/hybrid_exec.hpp"
#include "insched/scheduler/coanalysis.hpp"
#include "insched/scheduler/solver.hpp"
#include "insched/support/random.hpp"

namespace insched::scheduler {
namespace {

AnalysisParams insitu_analysis(std::string name, double ct, long itv, double weight = 1.0) {
  AnalysisParams a;
  a.name = std::move(name);
  a.ct = ct;
  a.ot = 0.0;
  a.itv = itv;
  a.weight = weight;
  return a;
}

CoanalysisProblem base_problem(double budget_seconds) {
  CoanalysisProblem p;
  p.base.steps = 1000;
  p.base.threshold_kind = ThresholdKind::kTotalSeconds;
  p.base.threshold = budget_seconds;
  p.base.output_policy = OutputPolicy::kEveryAnalysis;
  p.network_bw = 1e9;  // 1 GB/s to staging
  p.stage_capacity_seconds = 500.0;
  p.stage_memory = 8e9;
  return p;
}

TEST(Coanalysis, CheapAnalysisStaysInsitu) {
  CoanalysisProblem p = base_problem(100.0);
  p.base.analyses.push_back(insitu_analysis("cheap", 0.1, 100));
  // Staging it would cost 2 s of transfer per step vs 0.1 s in-situ.
  p.remote.push_back(StagingParams{.transfer_bytes = 2e9, .stage_ct = 0.1, .stage_mem = 1e6});
  const CoanalysisSolution sol = solve_coanalysis(p);
  ASSERT_TRUE(sol.solved);
  EXPECT_EQ(sol.modes[0], ExecutionMode::kInsitu);
  EXPECT_EQ(sol.frequencies[0], 10);
}

TEST(Coanalysis, HeavyComputeSmallDataMovesToStaging) {
  // In-situ it eats 30 s/step of a 50 s budget (1 step); staged, the sim
  // only pays 0.5 s transfer per step -> full frequency.
  CoanalysisProblem p = base_problem(50.0);
  p.base.analyses.push_back(insitu_analysis("pca", 30.0, 100));
  p.remote.push_back(StagingParams{.transfer_bytes = 5e8, .stage_ct = 30.0, .stage_mem = 1e9});
  const CoanalysisSolution sol = solve_coanalysis(p);
  ASSERT_TRUE(sol.solved);
  EXPECT_EQ(sol.modes[0], ExecutionMode::kStaging);
  EXPECT_EQ(sol.frequencies[0], 10);
  EXPECT_NEAR(sol.network_bytes, 5e9, 1.0);
  EXPECT_NEAR(sol.staging_seconds, 300.0, 1e-9);
}

TEST(Coanalysis, HugeDataStaysInsituDespiteComputeCost) {
  // Shipping 100 GB per step (100 s of transfer) is worse than computing
  // 3 s in-situ — the paper's "faster in some cases to analyze in-situ than
  // to transfer" observation.
  CoanalysisProblem p = base_problem(40.0);
  p.base.analyses.push_back(insitu_analysis("rdf-on-raw", 3.0, 100));
  p.remote.push_back(
      StagingParams{.transfer_bytes = 100e9, .stage_ct = 0.5, .stage_mem = 1e9});
  const CoanalysisSolution sol = solve_coanalysis(p);
  ASSERT_TRUE(sol.solved);
  EXPECT_EQ(sol.modes[0], ExecutionMode::kInsitu);
  EXPECT_EQ(sol.frequencies[0], 10);
}

TEST(Coanalysis, StagingCapacityBindsFrequency) {
  CoanalysisProblem p = base_problem(20.0);
  p.stage_capacity_seconds = 100.0;
  p.base.analyses.push_back(insitu_analysis("expensive", 50.0, 100));
  p.remote.push_back(StagingParams{.transfer_bytes = 1e8, .stage_ct = 40.0, .stage_mem = 1e8});
  const CoanalysisSolution sol = solve_coanalysis(p);
  ASSERT_TRUE(sol.solved);
  EXPECT_EQ(sol.modes[0], ExecutionMode::kStaging);
  EXPECT_EQ(sol.frequencies[0], 2);  // 2 x 40 s fits the 100 s staging budget
}

TEST(Coanalysis, StagingMemoryExcludesLargeResidents) {
  CoanalysisProblem p = base_problem(10.0);
  p.stage_memory = 1e9;
  p.base.analyses.push_back(insitu_analysis("large-resident", 20.0, 100));
  p.remote.push_back(StagingParams{.transfer_bytes = 1e8, .stage_ct = 1.0, .stage_mem = 2e9});
  const CoanalysisSolution sol = solve_coanalysis(p);
  ASSERT_TRUE(sol.solved);
  // Staging memory forbids the move; in-situ does not fit the 10 s budget.
  EXPECT_EQ(sol.modes[0], ExecutionMode::kSkipped);
  EXPECT_EQ(sol.frequencies[0], 0);
}

TEST(Coanalysis, TransferOverlapEnablesStaging) {
  CoanalysisProblem p = base_problem(15.0);
  p.base.analyses.push_back(insitu_analysis("borderline", 5.0, 100));
  p.remote.push_back(StagingParams{.transfer_bytes = 2e9, .stage_ct = 5.0, .stage_mem = 1e8});
  // Blocking transfers: 2 s/step -> 7 steps affordable either way; in-situ
  // gives 3 (15/5); staging 7 (15/2).
  const CoanalysisSolution blocking = solve_coanalysis(p);
  ASSERT_TRUE(blocking.solved);
  EXPECT_EQ(blocking.modes[0], ExecutionMode::kStaging);
  EXPECT_EQ(blocking.frequencies[0], 7);
  // 90% overlap: 0.2 s visible/step -> full frequency.
  p.transfer_overlap = 0.9;
  const CoanalysisSolution overlapped = solve_coanalysis(p);
  ASSERT_TRUE(overlapped.solved);
  EXPECT_EQ(overlapped.frequencies[0], 10);
}

TEST(Coanalysis, DisabledStagingMatchesInsituSolver) {
  Rng rng(2718);
  for (int trial = 0; trial < 10; ++trial) {
    CoanalysisProblem p = base_problem(rng.uniform(10.0, 80.0));
    const int n = static_cast<int>(rng.uniform_int(1, 4));
    for (int i = 0; i < n; ++i) {
      p.base.analyses.push_back(insitu_analysis("a" + std::to_string(i),
                                                rng.uniform(0.5, 8.0),
                                                rng.uniform_int(50, 200),
                                                rng.uniform(0.5, 2.0)));
      p.remote.push_back(StagingParams{.transfer_bytes = 1e9, .stage_ct = 1.0,
                                       .stage_mem = 1e8});
    }
    p.stage_capacity_seconds = 0.0;  // staging unusable
    const CoanalysisSolution hybrid = solve_coanalysis(p);
    const ScheduleSolution insitu_only = solve_schedule(p.base);
    ASSERT_TRUE(hybrid.solved);
    ASSERT_TRUE(insitu_only.solved);
    EXPECT_NEAR(hybrid.objective, insitu_only.objective, 1e-6);
    for (const ExecutionMode mode : hybrid.modes)
      EXPECT_NE(mode, ExecutionMode::kStaging);
  }
}

TEST(Coanalysis, HybridNeverWorseThanInsituOnly) {
  Rng rng(315);
  for (int trial = 0; trial < 15; ++trial) {
    CoanalysisProblem p = base_problem(rng.uniform(10.0, 60.0));
    const int n = static_cast<int>(rng.uniform_int(1, 4));
    for (int i = 0; i < n; ++i) {
      p.base.analyses.push_back(insitu_analysis("a" + std::to_string(i),
                                                rng.uniform(0.5, 20.0),
                                                rng.uniform_int(50, 250),
                                                rng.uniform(0.5, 2.0)));
      p.remote.push_back(StagingParams{.transfer_bytes = rng.uniform(1e8, 20e9),
                                       .stage_ct = rng.uniform(0.5, 10.0),
                                       .stage_mem = rng.uniform(1e7, 4e9)});
    }
    const CoanalysisSolution hybrid = solve_coanalysis(p);
    const ScheduleSolution insitu_only = solve_schedule(p.base);
    ASSERT_TRUE(hybrid.solved);
    ASSERT_TRUE(insitu_only.solved);
    EXPECT_GE(hybrid.objective, insitu_only.objective - 1e-6);
  }
}

TEST(Coanalysis, ValidatesInputs) {
  CoanalysisProblem p = base_problem(10.0);
  p.base.analyses.push_back(insitu_analysis("a", 1.0, 100));
  EXPECT_THROW(p.validate(), std::invalid_argument);  // remote size mismatch
  p.remote.push_back(StagingParams{});
  p.transfer_overlap = 1.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.transfer_overlap = 0.0;
  p.base.output_policy = OutputPolicy::kOptimized;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}


TEST(HybridExec, StagingDrainsBehindSimulation) {
  // 10 staged steps of 30 s compute over a 870 s run: staging keeps up, the
  // sim lane is the critical path.
  CoanalysisProblem p = base_problem(50.0);
  p.base.sim_time_per_step = 0.87;
  p.base.analyses.push_back(insitu_analysis("pca", 30.0, 100));
  p.remote.push_back(StagingParams{.transfer_bytes = 5e8, .stage_ct = 30.0, .stage_mem = 1e9});
  const CoanalysisSolution sol = solve_coanalysis(p);
  ASSERT_TRUE(sol.solved);
  ASSERT_EQ(sol.modes[0], ExecutionMode::kStaging);

  const runtime::HybridRunReport report = runtime::hybrid_execute(p, sol);
  EXPECT_GT(report.sim_lane_seconds, 870.0);  // sim steps dominate
  EXPECT_NEAR(report.staging_busy_seconds, 300.0, 1e-9);
  EXPECT_DOUBLE_EQ(report.end_to_end_seconds, report.staging_lane_seconds);
  EXPECT_NEAR(report.network_bytes, 5e9, 1.0);
  // Staging keeps pace: the backlog never exceeds one analysis, and the run
  // extends past the simulation only by the final analysis (whose transfer
  // arrives at the last step).
  EXPECT_LE(report.peak_staging_backlog_seconds, 30.0 + 1e-9);
  EXPECT_LE(report.end_to_end_seconds - report.sim_lane_seconds, 30.0 + 1e-9);
}

TEST(HybridExec, SlowStagingBecomesCriticalPath) {
  // A staged kernel needing 200 s per step on a short run: the staging lane
  // finishes long after the simulation.
  CoanalysisProblem p = base_problem(50.0);
  p.base.steps = 100;
  p.base.sim_time_per_step = 0.1;
  p.stage_capacity_seconds = 1e9;
  p.base.analyses.push_back(insitu_analysis("deep", 45.0, 20));
  p.remote.push_back(StagingParams{.transfer_bytes = 1e8, .stage_ct = 200.0,
                                   .stage_mem = 1e8});
  const CoanalysisSolution sol = solve_coanalysis(p);
  ASSERT_TRUE(sol.solved);
  ASSERT_EQ(sol.modes[0], ExecutionMode::kStaging);
  const runtime::HybridRunReport report = runtime::hybrid_execute(p, sol);
  EXPECT_TRUE(report.staging_is_critical_path);
  EXPECT_GT(report.staging_lane_seconds, report.sim_lane_seconds);
  EXPECT_GT(report.peak_staging_backlog_seconds, 100.0);
}

TEST(EnergyModel, AccountsComputeNetworkStorage) {
  machine::EnergyModel energy(machine::EnergyParams{});
  // 100 nodes busy 10 s: 100 * 80 W * 10 s = 80 kJ.
  EXPECT_DOUBLE_EQ(energy.node_energy(100, 10.0), 80000.0);
  // Idle draw at 70%.
  EXPECT_DOUBLE_EQ(energy.node_energy(100, 0.0, 10.0), 56000.0);
  EXPECT_DOUBLE_EQ(energy.transfer_energy(1e9), 0.5);
  EXPECT_DOUBLE_EQ(energy.storage_energy(1e9), 2.0);
  const machine::EnergyBreakdown run =
      energy.run_energy(100, 10.0, 10, 5.0, 5.0, 1e9, 1e9);
  EXPECT_DOUBLE_EQ(run.compute_joules, 80000.0 + 10 * 80.0 * 5.0 + 10 * 80.0 * 0.7 * 5.0);
  EXPECT_DOUBLE_EQ(run.total(), run.compute_joules + 0.5 + 2.0);
}

TEST(EnergyModel, InsituBeatsPostprocessingOnIo) {
  // Same analysis work; post-processing additionally writes + reads the full
  // trajectory. With equal compute, the I/O bytes decide.
  machine::EnergyModel energy(machine::EnergyParams{});
  const double trajectory_bytes = 5e12;  // 5 TB of frames
  const double insitu = energy.run_energy(1024, 600.0, 0, 0, 0, 0, 1e9).total();
  const double post =
      energy.run_energy(1024, 600.0, 0, 0, 0, 0, 1e9 + 2.0 * trajectory_bytes).total();
  EXPECT_GT(post, insitu + 1e4);  // tens of kJ of storage traffic
}
}  // namespace
}  // namespace insched::scheduler
