// Tests for JSON schedule/solution serialization, the Gantt renderer, and
// the Section-4 cost database (probe-grid interpolation of Table-1 costs).

#include <gtest/gtest.h>

#include "insched/scheduler/cost_database.hpp"
#include "insched/scheduler/serialize.hpp"
#include "insched/scheduler/solver.hpp"
#include "insched/support/random.hpp"

namespace insched::scheduler {
namespace {

Schedule sample_schedule() {
  return Schedule(100, {AnalysisSchedule{"rdf \"fast\"", {10, 20, 30, 40}, {20, 40}},
                        AnalysisSchedule{"msd", {50, 100}, {100}},
                        AnalysisSchedule{"idle", {}, {}}});
}

TEST(ScheduleJson, RoundTripsExactly) {
  const Schedule original = sample_schedule();
  const std::string json = schedule_to_json(original);
  const Schedule parsed = schedule_from_json(json);
  ASSERT_EQ(parsed.size(), original.size());
  EXPECT_EQ(parsed.steps(), original.steps());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(parsed.analysis(i).name, original.analysis(i).name);
    EXPECT_EQ(parsed.analysis(i).analysis_steps, original.analysis(i).analysis_steps);
    EXPECT_EQ(parsed.analysis(i).output_steps, original.analysis(i).output_steps);
  }
  // Escaped quote in the name survived.
  EXPECT_EQ(parsed.analysis(0).name, "rdf \"fast\"");
}

TEST(ScheduleJson, RandomSchedulesRoundTrip) {
  Rng rng(404);
  for (int trial = 0; trial < 20; ++trial) {
    const long steps = rng.uniform_int(5, 200);
    std::vector<AnalysisSchedule> analyses;
    const int n = static_cast<int>(rng.uniform_int(1, 5));
    for (int i = 0; i < n; ++i) {
      AnalysisSchedule a;
      a.name = "a" + std::to_string(i);
      for (long s = 1; s <= steps; ++s)
        if (rng.bernoulli(0.2)) a.analysis_steps.push_back(s);
      for (long s : a.analysis_steps)
        if (rng.bernoulli(0.5)) a.output_steps.push_back(s);
      analyses.push_back(std::move(a));
    }
    const Schedule original(steps, analyses);
    const Schedule parsed = schedule_from_json(schedule_to_json(original));
    EXPECT_EQ(parsed.steps(), original.steps());
    for (std::size_t i = 0; i < original.size(); ++i) {
      EXPECT_EQ(parsed.analysis(i).analysis_steps, original.analysis(i).analysis_steps);
      EXPECT_EQ(parsed.analysis(i).output_steps, original.analysis(i).output_steps);
    }
  }
}

TEST(ScheduleJson, RejectsMalformedInput) {
  EXPECT_THROW((void)schedule_from_json("not json"), std::runtime_error);
  EXPECT_THROW((void)schedule_from_json("{\"steps\":5"), std::runtime_error);
  EXPECT_THROW((void)schedule_from_json("{\"bogus\":1}"), std::runtime_error);
}

TEST(SolutionJson, CarriesSolverResults) {
  ScheduleProblem p;
  p.steps = 100;
  p.threshold_kind = ThresholdKind::kTotalSeconds;
  p.threshold = 10.0;
  AnalysisParams a;
  a.name = "x";
  a.ct = 1.0;
  a.itv = 10;
  p.analyses.push_back(a);
  const ScheduleSolution sol = solve_schedule(p);
  ASSERT_TRUE(sol.solved);
  const std::string json = solution_to_json(sol);
  EXPECT_NE(json.find("\"solved\":true"), std::string::npos);
  EXPECT_NE(json.find("\"frequencies\":[10]"), std::string::npos);
  EXPECT_NE(json.find("\"schedule\":{"), std::string::npos);
  // The embedded schedule is itself parseable.
  const std::size_t pos = json.find("\"schedule\":");
  const Schedule embedded = schedule_from_json(json.substr(pos + 11, json.size() - pos - 12));
  EXPECT_EQ(embedded.analysis(0).analysis_count(), 10);
}

TEST(Gantt, MarksAnalysisAndOutputColumns) {
  const Schedule s(100, {AnalysisSchedule{"alpha", {25, 50, 75, 100}, {50, 100}}});
  const std::string gantt = render_gantt(s, 20);
  // 5 steps/column: steps 25/50/75/100 -> columns 4/9/14/19.
  EXPECT_NE(gantt.find("alpha"), std::string::npos);
  const std::size_t row_start = gantt.find('|');
  ASSERT_NE(row_start, std::string::npos);
  const std::string row = gantt.substr(row_start + 1, 20);
  EXPECT_EQ(row[4], '#');
  EXPECT_EQ(row[9], 'O');
  EXPECT_EQ(row[14], '#');
  EXPECT_EQ(row[19], 'O');
  EXPECT_EQ(row[0], '.');
}

TEST(CostDatabaseType, InterpolatesPowerLawCostsExactly) {
  // ct = 1e-6 * n / p is a power law: log-value bilinear interpolation is
  // exact at any query point.
  CostDatabase db;
  for (double n : {1000.0, 4000.0, 16000.0})
    for (double p : {1.0, 4.0, 16.0}) {
      CostSample s;
      s.problem_size = n;
      s.procs = p;
      s.costs.name = "k";
      s.costs.ct = 1e-6 * n / p;
      s.costs.fm = 8.0 * n;
      s.costs.ot = 0.0;
      s.costs.itv = 25;
      s.costs.weight = 2.0;
      db.add_sample("k", s);
    }
  EXPECT_TRUE(db.has_kernel("k"));
  EXPECT_EQ(db.sample_count("k"), 9u);
  const AnalysisParams mid = db.predict("k", 2000.0, 2.0);
  EXPECT_NEAR(mid.ct, 1e-6 * 2000.0 / 2.0, 1e-12);
  EXPECT_NEAR(mid.fm, 8.0 * 2000.0, 1e-9);
  EXPECT_EQ(mid.itv, 25);
  EXPECT_DOUBLE_EQ(mid.weight, 2.0);
  // Extrapolation beyond the grid follows the power law too.
  const AnalysisParams big = db.predict("k", 64000.0, 32.0);
  EXPECT_NEAR(big.ct, 1e-6 * 64000.0 / 32.0, 1e-9);
}

TEST(CostDatabaseType, RejectsUnknownAndNonGridKernels) {
  CostDatabase db;
  EXPECT_THROW((void)db.predict("nope", 1.0, 1.0), std::runtime_error);
  CostSample s;
  s.problem_size = 100.0;
  s.procs = 1.0;
  db.add_sample("partial", s);
  CostSample t = s;
  t.problem_size = 200.0;
  t.procs = 2.0;
  db.add_sample("partial", t);  // diagonal points: 2 of the 4 grid cells
  EXPECT_THROW((void)db.predict("partial", 150.0, 1.5), std::runtime_error);
}

TEST(CostDatabaseType, ZeroComponentsStayZero) {
  CostDatabase db;
  for (double n : {100.0, 200.0})
    for (double p : {1.0, 2.0}) {
      CostSample s;
      s.problem_size = n;
      s.procs = p;
      s.costs.ct = 1.0;
      s.costs.it = 0.0;  // never pays per-step time
      s.costs.ot = 0.0;
      db.add_sample("z", s);
    }
  const AnalysisParams mid = db.predict("z", 150.0, 1.5);
  EXPECT_DOUBLE_EQ(mid.it, 0.0);
  EXPECT_DOUBLE_EQ(mid.fm, 0.0);
}

}  // namespace
}  // namespace insched::scheduler
