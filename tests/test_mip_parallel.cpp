// Tests for the parallel branch-and-bound search: deterministic mode must
// produce bit-identical incumbents for any thread count (enforced on the
// three paper case-study MILPs), async mode must agree on the optimum, and
// the warm/cold counters must account for every node LP.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "insched/casestudy/flash_sedov.hpp"
#include "insched/casestudy/lammps_rhodo.hpp"
#include "insched/casestudy/lammps_water.hpp"
#include "insched/lp/model.hpp"
#include "insched/mip/branch_and_bound.hpp"
#include "insched/scheduler/aggregate_milp.hpp"
#include "insched/scheduler/solver.hpp"
#include "insched/support/random.hpp"

namespace insched::mip {
namespace {

using lp::Model;
using lp::RowEntry;
using lp::RowType;
using lp::Sense;
using lp::VarType;

struct CaseStudy {
  const char* name;
  Model model;
};

std::vector<CaseStudy> case_study_models() {
  std::vector<CaseStudy> cases;
  cases.push_back({"water", scheduler::build_aggregate_milp(
                                casestudy::water_ions_problem(16384, 0.10))
                                .model});
  cases.push_back(
      {"rhodo", scheduler::build_aggregate_milp(casestudy::rhodopsin_problem(100.0)).model});
  cases.push_back({"flash", scheduler::build_aggregate_milp(
                                casestudy::flash_problem({2.0, 1.0, 2.0}))
                                .model});
  return cases;
}

// Pins the cutting-plane engine off for tests whose point is the *tree*
// (node accounting, truncation): the cut engine closes these instances at
// the root, leaving no search to observe.
MipOptions tree_only(MipOptions opt = {}) {
  opt.use_probing = false;
  opt.use_cover_cuts = false;
  opt.use_clique_cuts = false;
  opt.use_gomory_cuts = false;
  opt.use_mir_cuts = false;
  opt.in_tree_cuts = false;
  return opt;
}

Model knapsack(int n, unsigned seed) {
  Model m;
  m.set_sense(Sense::kMaximize);
  Rng rng(seed);
  std::vector<RowEntry> cap;
  for (int j = 0; j < n; ++j) {
    m.add_column("b", 0, 1, rng.uniform(1.0, 2.0), VarType::kBinary);
    cap.push_back(RowEntry{j, rng.uniform(1.0, 2.0)});
  }
  m.add_row("cap", RowType::kLe, 0.6 * n, cap);
  return m;
}

// The acceptance criterion for deterministic mode: incumbents are
// bit-identical (==, not near) across thread counts on the case studies.
TEST(MipParallel, DeterministicModeBitIdenticalAcrossThreadCounts) {
  for (CaseStudy& cs : case_study_models()) {
    MipResult reference;
    for (const int threads : {1, 2, 4}) {
      MipOptions opt;
      opt.threads = threads;
      opt.deterministic = true;
      // Run the workers for real even on single-core CI machines.
      opt.oversubscribe = true;
      const MipResult res = solve_mip(cs.model, opt);
      ASSERT_TRUE(res.optimal()) << cs.name << " threads=" << threads;
      EXPECT_EQ(res.threads_used, threads);
      if (threads == 1) {
        reference = res;
        continue;
      }
      // Bit-identical: the full incumbent vector, objective, bound, node and
      // iteration counts must match the single-thread search exactly.
      EXPECT_EQ(res.x, reference.x) << cs.name << " threads=" << threads;
      EXPECT_EQ(res.objective, reference.objective) << cs.name;
      EXPECT_EQ(res.best_bound, reference.best_bound) << cs.name;
      EXPECT_EQ(res.nodes, reference.nodes) << cs.name;
      EXPECT_EQ(res.lp_iterations, reference.lp_iterations) << cs.name;
    }
  }
}

TEST(MipParallel, DeterministicModeBitIdenticalOnRandomInstances) {
  for (unsigned seed = 0; seed < 6; ++seed) {
    const Model m = knapsack(24, 500 + seed);
    MipOptions one;
    one.threads = 1;
    one.deterministic = true;
    one.oversubscribe = true;
    const MipResult a = solve_mip(m, one);
    MipOptions four = one;
    four.threads = 4;
    const MipResult b = solve_mip(m, four);
    ASSERT_TRUE(a.optimal());
    ASSERT_TRUE(b.optimal());
    EXPECT_EQ(a.x, b.x) << "seed " << seed;
    EXPECT_EQ(a.objective, b.objective) << "seed " << seed;
    EXPECT_EQ(a.nodes, b.nodes) << "seed " << seed;
  }
}

TEST(MipParallel, AsyncSearchAgreesOnCaseStudyOptima) {
  for (CaseStudy& cs : case_study_models()) {
    MipOptions serial;
    serial.threads = 1;
    const MipResult ref = solve_mip(cs.model, serial);
    ASSERT_TRUE(ref.optimal()) << cs.name;
    for (const int threads : {2, 4}) {
      MipOptions opt;
      opt.threads = threads;
      opt.oversubscribe = true;
      const MipResult res = solve_mip(cs.model, opt);
      ASSERT_TRUE(res.optimal()) << cs.name << " threads=" << threads;
      // Alternative optima are allowed across schedules, but the optimal
      // objective value is unique.
      EXPECT_NEAR(res.objective, ref.objective, 1e-8) << cs.name;
      EXPECT_TRUE(cs.model.is_feasible(res.x, 1e-5)) << cs.name;
    }
  }
}

TEST(MipParallel, AsyncSearchAgreesOnRandomInstances) {
  for (unsigned seed = 0; seed < 8; ++seed) {
    const Model m = knapsack(20, 900 + seed);
    MipOptions serial;
    serial.threads = 1;
    MipOptions parallel;
    parallel.threads = 4;
    parallel.oversubscribe = true;
    const MipResult a = solve_mip(m, serial);
    const MipResult b = solve_mip(m, parallel);
    ASSERT_TRUE(a.optimal());
    ASSERT_TRUE(b.optimal());
    EXPECT_NEAR(a.objective, b.objective, 1e-8) << "seed " << seed;
  }
}

TEST(MipParallel, CountersAccountForEveryNodeSolve) {
  for (CaseStudy& cs : case_study_models()) {
    MipOptions opt = tree_only();
    opt.threads = 1;
    // The rounding/dive/greedy-fill heuristics can close a root outright
    // (nodes == 0), which would make the node-accounting identity below
    // vacuous — force an actual tree.
    opt.use_rounding_heuristic = false;
    const MipResult res = solve_mip(cs.model, opt);
    ASSERT_TRUE(res.optimal()) << cs.name;
    // Every processed node is either a consumed root relaxation (one per
    // tree, and cut-and-branch restarts start a fresh tree), a warm dual
    // solve, or a cold primal solve.
    EXPECT_EQ(res.counters.warm_solves + res.counters.cold_solves + 1 +
                  res.counters.tree_restarts,
              res.nodes)
        << cs.name;
    EXPECT_GT(res.counters.warm_solves, 0) << cs.name << ": warm path never engaged";
    // Warm failures fall back to cold, so they can never exceed cold solves.
    EXPECT_LE(res.counters.warm_failures, res.counters.cold_solves) << cs.name;
  }
}

TEST(MipParallel, WarmStartOffRunsColdOnly) {
  for (CaseStudy& cs : case_study_models()) {
    MipOptions opt;
    opt.warm_start = false;
    const MipResult res = solve_mip(cs.model, opt);
    ASSERT_TRUE(res.optimal()) << cs.name;
    EXPECT_EQ(res.counters.warm_solves, 0) << cs.name;
    EXPECT_EQ(res.counters.warm_failures, 0) << cs.name;
  }
}

TEST(MipParallel, ThreadsZeroUsesAutoDetection) {
  const Model m = knapsack(12, 77);
  MipOptions opt;
  opt.threads = 0;
  const MipResult res = solve_mip(m, opt);
  ASSERT_TRUE(res.optimal());
  EXPECT_GE(res.threads_used, 1);
}

TEST(MipParallel, DeterministicTruncationStillNeverOptimal) {
  const Model m = knapsack(30, 4242);
  MipOptions opt = tree_only();
  opt.threads = 4;
  opt.deterministic = true;
  opt.oversubscribe = true;
  opt.max_nodes = 8;
  const MipResult res = solve_mip(m, opt);
  EXPECT_FALSE(res.optimal());
  EXPECT_EQ(res.termination, MipTermination::kNodeLimit);
  ASSERT_TRUE(res.has_solution);
  EXPECT_GE(res.best_bound, res.objective - 1e-9);  // maximize
}

// The scheduler-level determinism check: full solve_schedule pipelines give
// identical tables in deterministic mode regardless of thread count.
TEST(MipParallel, SchedulerDeterministicAcrossThreads) {
  const auto p = casestudy::rhodopsin_problem(100.0);
  scheduler::SolveOptions one;
  one.mip.threads = 1;
  one.mip.deterministic = true;
  one.mip.oversubscribe = true;
  const auto a = scheduler::solve_schedule(p, one);
  scheduler::SolveOptions four = one;
  four.mip.threads = 4;
  const auto b = scheduler::solve_schedule(p, four);
  ASSERT_TRUE(a.solved);
  ASSERT_TRUE(b.solved);
  EXPECT_EQ(a.frequencies, b.frequencies);
  EXPECT_EQ(a.output_counts, b.output_counts);
  EXPECT_EQ(a.objective, b.objective);
}

}  // namespace
}  // namespace insched::mip
