// Tests for the particle substrate: box arithmetic, SoA container, cell list
// (cross-checked against O(n^2) brute force), the mini-MD engine and the
// trajectory format.

#include <gtest/gtest.h>

#include <cmath>
#include <mutex>
#include <set>

#include "insched/machine/storage.hpp"
#include "insched/sim/particles/builders.hpp"
#include "insched/sim/particles/cell_list.hpp"
#include "insched/sim/particles/decomposition.hpp"
#include "insched/sim/particles/lj_md.hpp"
#include "insched/sim/particles/particle_system.hpp"
#include "insched/sim/particles/trajectory.hpp"
#include "insched/support/random.hpp"

namespace insched::sim {
namespace {

TEST(BoxMath, WrapAndMinImage) {
  EXPECT_DOUBLE_EQ(Box::wrap(-1.0, 10.0), 9.0);
  EXPECT_DOUBLE_EQ(Box::wrap(12.5, 10.0), 2.5);
  EXPECT_DOUBLE_EQ(Box::wrap(3.0, 10.0), 3.0);
  EXPECT_DOUBLE_EQ(Box::min_image(7.0, 10.0), -3.0);
  EXPECT_DOUBLE_EQ(Box::min_image(-7.0, 10.0), 3.0);
  EXPECT_DOUBLE_EQ(Box::min_image(4.0, 10.0), 4.0);
}

TEST(ParticleSystemType, AddAndQuery) {
  ParticleSystem sys(Box{10, 10, 10});
  sys.add_particle(Species::kWaterO, 1, 2, 3, 16.0);
  sys.add_particle(Species::kIon, 4, 5, 6, 35.0);
  sys.add_particle(Species::kWaterO, 7, 8, 9, 16.0);
  EXPECT_EQ(sys.size(), 3u);
  EXPECT_EQ(sys.count(Species::kWaterO), 2u);
  EXPECT_EQ(sys.count(Species::kIon), 1u);
  EXPECT_EQ(sys.indices_of(Species::kWaterO), (std::vector<std::size_t>{0, 2}));
  EXPECT_DOUBLE_EQ(sys.frame_bytes(), 3 * 6 * 8.0);
}

TEST(ParticleSystemType, KineticEnergyAndTemperature) {
  ParticleSystem sys(Box{10, 10, 10});
  const std::size_t i = sys.add_particle(Species::kIon, 0, 0, 0, 2.0);
  sys.vx[i] = 3.0;
  EXPECT_DOUBLE_EQ(sys.kinetic_energy(), 0.5 * 2.0 * 9.0);
  EXPECT_DOUBLE_EQ(sys.temperature(), 2.0 * 9.0 / 3.0);
}

// Property: the cell list must find exactly the pairs an O(n^2) sweep finds.
class CellListPairs : public ::testing::TestWithParam<int> {};

TEST_P(CellListPairs, MatchesBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7717u + 1u);
  const double side = rng.uniform(5.0, 12.0);
  const double cutoff = rng.uniform(1.0, side / 2.0);
  ParticleSystem sys(Box{side, side, side});
  const int n = static_cast<int>(rng.uniform_int(2, 200));
  for (int i = 0; i < n; ++i)
    sys.add_particle(Species::kWaterO, rng.uniform(0.0, side), rng.uniform(0.0, side),
                     rng.uniform(0.0, side));

  std::set<std::pair<std::size_t, std::size_t>> brute;
  for (std::size_t i = 0; i < sys.size(); ++i)
    for (std::size_t j = i + 1; j < sys.size(); ++j) {
      const double dx = Box::min_image(sys.x[i] - sys.x[j], side);
      const double dy = Box::min_image(sys.y[i] - sys.y[j], side);
      const double dz = Box::min_image(sys.z[i] - sys.z[j], side);
      if (dx * dx + dy * dy + dz * dz <= cutoff * cutoff) brute.insert({i, j});
    }

  const CellList cells(sys, cutoff);
  std::set<std::pair<std::size_t, std::size_t>> found;
  std::size_t duplicates = 0;
  cells.for_each_pair([&](std::size_t i, std::size_t j, double r2) {
    EXPECT_LE(r2, cutoff * cutoff + 1e-12);
    const auto key = std::minmax(i, j);
    if (!found.insert({key.first, key.second}).second) ++duplicates;
  });
  EXPECT_EQ(duplicates, 0u);
  EXPECT_EQ(found, brute);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CellListPairs, ::testing::Range(0, 25));

TEST(CellListParallel, SamePairsAsSerial) {
  Rng rng(5);
  ParticleSystem sys(Box{10, 10, 10});
  for (int i = 0; i < 500; ++i)
    sys.add_particle(Species::kWaterO, rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0),
                     rng.uniform(0.0, 10.0));
  const CellList cells(sys, 2.0);
  std::set<std::pair<std::size_t, std::size_t>> serial;
  cells.for_each_pair([&](std::size_t i, std::size_t j, double) {
    const auto key = std::minmax(i, j);
    serial.insert({key.first, key.second});
  });
  std::mutex mutex;
  std::set<std::pair<std::size_t, std::size_t>> parallel;
  cells.for_each_pair(
      [&](std::size_t i, std::size_t j, double) {
        const auto key = std::minmax(i, j);
        std::lock_guard<std::mutex> lock(mutex);
        parallel.insert({key.first, key.second});
      },
      true);
  EXPECT_EQ(serial, parallel);
}

TEST(LjMd, ConservesEnergyWithoutThermostat) {
  WaterIonsSpec spec;
  spec.molecules = 200;
  ParticleSystem sys = water_ions(spec);
  MdParams params;
  params.gamma = 0.0;  // NVE
  params.dt = 0.002;
  LjSimulation md(std::move(sys), params);
  md.minimize(200);
  md.thermalize(7);
  // Let initial lattice artifacts relax, then track drift.
  for (int s = 0; s < 20; ++s) md.step();
  const double e0 = md.total_energy();
  for (int s = 0; s < 100; ++s) md.step();
  const double e1 = md.total_energy();
  EXPECT_NEAR(e1, e0, std::max(1.0, std::fabs(e0)) * 0.05);
}

TEST(LjMd, ThermostatReachesTargetTemperature) {
  WaterIonsSpec spec;
  spec.molecules = 150;
  ParticleSystem sys = water_ions(spec);
  MdParams params;
  params.temperature = 0.8;
  params.gamma = 2.0;
  LjSimulation md(std::move(sys), params);
  md.minimize(200);
  md.thermalize(3);
  double avg = 0.0;
  const int measure = 150;
  for (int s = 0; s < 100; ++s) md.step();
  for (int s = 0; s < measure; ++s) {
    md.step();
    avg += md.system().temperature();
  }
  avg /= measure;
  EXPECT_NEAR(avg, 0.8, 0.15);
}

TEST(LjMd, ThermalizeRemovesNetMomentum) {
  WaterIonsSpec spec;
  spec.molecules = 100;
  ParticleSystem sys = water_ions(spec);
  LjSimulation md(std::move(sys), MdParams{});
  md.thermalize(11);
  const ParticleSystem& s = md.system();
  double px = 0.0;
  for (std::size_t i = 0; i < s.size(); ++i) px += s.mass[i] * s.vx[i];
  EXPECT_NEAR(px, 0.0, 1e-9);
  EXPECT_GT(s.temperature(), 0.1);
}

TEST(LjMd, ImplementsSimulationInterface) {
  WaterIonsSpec spec;
  spec.molecules = 50;
  LjSimulation md(water_ions(spec), MdParams{});
  md.minimize(50);
  ISimulation& sim = md;
  EXPECT_EQ(sim.current_step(), 0);
  sim.step();
  EXPECT_EQ(sim.current_step(), 1);
  EXPECT_GT(sim.output_frame_bytes(), 0.0);
  EXPECT_EQ(sim.name(), "lj-md");
}

TEST(Builders, WaterIonsSpeciesMix) {
  WaterIonsSpec spec;
  spec.molecules = 4000;
  spec.hydronium_fraction = 0.05;
  spec.ion_fraction = 0.05;
  const ParticleSystem sys = water_ions(spec);
  const double waters = static_cast<double>(sys.count(Species::kWaterO));
  const double hyd = static_cast<double>(sys.count(Species::kHydronium));
  const double ion = static_cast<double>(sys.count(Species::kIon));
  EXPECT_EQ(sys.count(Species::kWaterH), 2 * sys.count(Species::kWaterO));
  EXPECT_NEAR(hyd / 4000.0, 0.05, 0.02);
  EXPECT_NEAR(ion / 4000.0, 0.05, 0.02);
  EXPECT_GT(waters, 3000);
}

TEST(Builders, RhodopsinLayout) {
  RhodopsinSpec spec;
  spec.total_particles = 20000;
  const ParticleSystem sys = rhodopsin_like(spec);
  EXPECT_EQ(sys.size(), 20000u);
  EXPECT_GT(sys.count(Species::kProtein), 1000u);
  EXPECT_GT(sys.count(Species::kMembrane), 3000u);
  EXPECT_GT(sys.count(Species::kWaterO), 8000u);
  // Protein particles concentrated near the center.
  const Box& box = sys.box();
  double max_r = 0.0;
  for (std::size_t i : sys.indices_of(Species::kProtein)) {
    const double dx = sys.x[i] - 0.5 * box.lx;
    const double dy = sys.y[i] - 0.5 * box.ly;
    const double dz = sys.z[i] - 0.5 * box.lz;
    max_r = std::max(max_r, std::sqrt(dx * dx + dy * dy + dz * dz));
  }
  EXPECT_LT(max_r, 0.5 * box.lx);
}


TEST(Decomposition, CountsPartitionAllParticles) {
  Rng rng(21);
  ParticleSystem sys(Box{12, 12, 12});
  for (int i = 0; i < 5000; ++i)
    sys.add_particle(Species::kWaterO, rng.uniform(0.0, 12.0), rng.uniform(0.0, 12.0),
                     rng.uniform(0.0, 12.0));
  const DomainDecomposition decomp(sys, 4);
  EXPECT_EQ(decomp.ranks(), 64);
  std::size_t total = 0;
  for (std::size_t c : decomp.counts()) total += c;
  EXPECT_EQ(total, sys.size());
  // Uniform gas over 64 ranks: near-even split.
  const DecompositionStats stats = decomp.stats(1.0);
  EXPECT_NEAR(stats.mean_particles, 5000.0 / 64.0, 1e-9);
  EXPECT_LT(stats.imbalance, 1.7);
  EXPECT_GT(stats.mean_halo_particles, 0.0);
  EXPECT_DOUBLE_EQ(stats.mean_halo_bytes, stats.mean_halo_particles * 48.0);
}

TEST(Decomposition, OwnerMatchesSubdomain) {
  ParticleSystem sys(Box{8, 8, 8});
  sys.add_particle(Species::kIon, 1.0, 1.0, 1.0);  // rank (0,0,0)
  sys.add_particle(Species::kIon, 7.0, 7.0, 7.0);  // rank (1,1,1) of 2^3
  const DomainDecomposition decomp(sys, 2);
  EXPECT_EQ(decomp.owner(0), 0);
  EXPECT_EQ(decomp.owner(1), 7);
}

TEST(Decomposition, HaloGrowsWithCutoffAndRankCount) {
  Rng rng(33);
  ParticleSystem sys(Box{16, 16, 16});
  for (int i = 0; i < 8000; ++i)
    sys.add_particle(Species::kWaterO, rng.uniform(0.0, 16.0), rng.uniform(0.0, 16.0),
                     rng.uniform(0.0, 16.0));
  const DomainDecomposition coarse(sys, 2);
  const DomainDecomposition fine(sys, 4);
  // More ranks -> smaller subdomains -> larger halo fraction.
  EXPECT_GT(fine.stats(1.0).mean_halo_particles / fine.stats(1.0).mean_particles,
            coarse.stats(1.0).mean_halo_particles / coarse.stats(1.0).mean_particles);
  // Larger cutoff -> more halo.
  EXPECT_GT(coarse.stats(2.0).mean_halo_particles, coarse.stats(0.5).mean_halo_particles);
}

TEST(Decomposition, ClusteredSystemIsImbalanced) {
  ParticleSystem sys(Box{10, 10, 10});
  Rng rng(3);
  for (int i = 0; i < 2000; ++i)  // everything in one corner octant
    sys.add_particle(Species::kWaterO, rng.uniform(0.0, 4.9), rng.uniform(0.0, 4.9),
                     rng.uniform(0.0, 4.9));
  const DomainDecomposition decomp(sys, 2);
  EXPECT_GT(decomp.stats(1.0).imbalance, 7.0);  // ~8x: one of 8 ranks owns all
}

TEST(Trajectory, RoundTrip) {
  machine::TempDir dir("traj");
  ParticleSystem sys(Box{5, 5, 5});
  Rng rng(9);
  for (int i = 0; i < 17; ++i)
    sys.add_particle(Species::kWaterO, rng.uniform(0.0, 5.0), rng.uniform(0.0, 5.0),
                     rng.uniform(0.0, 5.0));
  sys.vx[3] = 1.25;

  const std::string path = dir.file("test.itrj").string();
  {
    TrajectoryWriter writer(path, sys.size());
    writer.write_frame(10, sys);
    sys.x[0] += 0.5;
    writer.write_frame(20, sys);
    EXPECT_EQ(writer.frames_written(), 2u);
    writer.close();
  }
  TrajectoryReader reader(path);
  EXPECT_EQ(reader.natoms(), 17u);
  TrajectoryFrame frame;
  ASSERT_TRUE(reader.read_frame(frame));
  EXPECT_EQ(frame.step, 10);
  EXPECT_DOUBLE_EQ(frame.vx[3], 1.25);
  const double first_x0 = frame.x[0];
  ASSERT_TRUE(reader.read_frame(frame));
  EXPECT_EQ(frame.step, 20);
  EXPECT_DOUBLE_EQ(frame.x[0], first_x0 + 0.5);
  EXPECT_FALSE(reader.read_frame(frame));
}

TEST(Trajectory, BytesWrittenMatchesLayout) {
  machine::TempDir dir("traj2");
  ParticleSystem sys(Box{5, 5, 5});
  sys.add_particle(Species::kIon, 1, 1, 1);
  const std::string path = dir.file("b.itrj").string();
  TrajectoryWriter writer(path, 1);
  writer.write_frame(0, sys);
  writer.close();
  EXPECT_DOUBLE_EQ(writer.bytes_written(), 20.0 + 8.0 + 6 * 8.0);
  EXPECT_EQ(static_cast<double>(std::filesystem::file_size(path)), writer.bytes_written());
}

}  // namespace
}  // namespace insched::sim
