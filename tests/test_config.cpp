// Tests for the INI config reader, unit parsing, the problem loader used by
// the insched_plan CLI, and the sensitivity analyzer.

#include <gtest/gtest.h>

#include "insched/scheduler/problem_io.hpp"
#include "insched/scheduler/sensitivity.hpp"
#include "insched/scheduler/solver.hpp"
#include "insched/support/config.hpp"

namespace insched {
namespace {

TEST(UnitParsing, NumbersAndSuffixes) {
  EXPECT_DOUBLE_EQ(*parse_number_with_units("42"), 42.0);
  EXPECT_DOUBLE_EQ(*parse_number_with_units("-1.5"), -1.5);
  EXPECT_DOUBLE_EQ(*parse_number_with_units("2e3"), 2000.0);
  EXPECT_DOUBLE_EQ(*parse_number_with_units("4 GB"), 4e9);
  EXPECT_DOUBLE_EQ(*parse_number_with_units("16GiB"), 16.0 * 1024 * 1024 * 1024);
  EXPECT_DOUBLE_EQ(*parse_number_with_units("2 TiB"), 2.0 * 1024.0 * 1024 * 1024 * 1024);
  EXPECT_DOUBLE_EQ(*parse_number_with_units("250 ms"), 0.25);
  EXPECT_DOUBLE_EQ(*parse_number_with_units("3 s"), 3.0);
  EXPECT_DOUBLE_EQ(*parse_number_with_units("2 h"), 7200.0);
  EXPECT_DOUBLE_EQ(*parse_number_with_units("10 %"), 0.1);
  EXPECT_FALSE(parse_number_with_units("abc").has_value());
  EXPECT_FALSE(parse_number_with_units("3 parsecs").has_value());
  EXPECT_FALSE(parse_number_with_units("").has_value());
}

TEST(ConfigParse, SectionsKeysComments) {
  const Config config = Config::parse(
      "top = 1\n"
      "# full-line comment\n"
      "[alpha]\n"
      "x = 10   ; trailing comment\n"
      "y = hello world\n"
      "[beta]\n"
      "x = 2.5\n"
      "[alpha]\n"
      "x = 99\n");
  ASSERT_NE(config.section(""), nullptr);
  EXPECT_DOUBLE_EQ(config.section("")->get_number("top", 0), 1.0);
  const auto alphas = config.sections("alpha");
  ASSERT_EQ(alphas.size(), 2u);
  EXPECT_DOUBLE_EQ(alphas[0]->get_number("x", 0), 10.0);
  EXPECT_EQ(alphas[0]->get_string("y"), "hello world");
  EXPECT_DOUBLE_EQ(alphas[1]->get_number("x", 0), 99.0);
  EXPECT_DOUBLE_EQ(config.section("beta")->get_number("x", 0), 2.5);
  EXPECT_EQ(config.section("gamma"), nullptr);
}

TEST(ConfigParse, LastAssignmentWinsWithinSection) {
  const Config config = Config::parse("[s]\nk = 1\nk = 2\n");
  EXPECT_DOUBLE_EQ(config.section("s")->get_number("k", 0), 2.0);
}

TEST(ConfigParse, BooleansAndFallbacks) {
  const Config config = Config::parse("[s]\nyes1 = true\nno1 = off\n");
  const ConfigSection* s = config.section("s");
  EXPECT_TRUE(s->get_bool("yes1", false));
  EXPECT_FALSE(s->get_bool("no1", true));
  EXPECT_TRUE(s->get_bool("missing", true));
  EXPECT_EQ(s->get_integer("missing", 7), 7);
}

TEST(ConfigParse, SyntaxErrorsCarryLineNumbers) {
  EXPECT_THROW((void)Config::parse("[unterminated\n"), std::runtime_error);
  EXPECT_THROW((void)Config::parse("[s]\nno_equals_here\n"), std::runtime_error);
  EXPECT_THROW((void)Config::parse("[s]\n= value\n"), std::runtime_error);
}

namespace sched = ::insched::scheduler;

TEST(ProblemIo, LoadsFullProblem) {
  const sched::ScheduleProblem p = sched::problem_from_string(
      "[run]\n"
      "steps = 500\n"
      "sim_time_per_step = 1.2 s\n"
      "threshold = 8 %\n"
      "threshold_kind = fraction\n"
      "memory = 2 GB\n"
      "bandwidth = 1 GB\n"
      "output_policy = optimized\n"
      "[analysis]\n"
      "name = temporal\n"
      "ft = 3 s\nit = 2 ms\nim = 40 MB\nct = 2.5 s\ncm = 100 MB\nom = 400 MB\n"
      "itv = 10\nweight = 2\n"
      "[analysis]\n"
      "name = spectrum\n"
      "ct = 0.9\nitv = 25\n");
  EXPECT_EQ(p.steps, 500);
  EXPECT_DOUBLE_EQ(p.sim_time_per_step, 1.2);
  EXPECT_DOUBLE_EQ(p.threshold, 0.08);
  EXPECT_EQ(p.threshold_kind, sched::ThresholdKind::kFractionOfSimTime);
  EXPECT_DOUBLE_EQ(p.mth, 2e9);
  EXPECT_EQ(p.output_policy, sched::OutputPolicy::kOptimized);
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p.analyses[0].name, "temporal");
  EXPECT_DOUBLE_EQ(p.analyses[0].it, 0.002);
  EXPECT_DOUBLE_EQ(p.analyses[0].im, 40e6);
  EXPECT_DOUBLE_EQ(p.analyses[0].weight, 2.0);
  EXPECT_EQ(p.analyses[0].itv, 10);
  EXPECT_EQ(p.analyses[1].itv, 25);
}

TEST(ProblemIo, RejectsIncompleteConfigs) {
  EXPECT_THROW((void)sched::problem_from_string("[analysis]\nname = x\n"),
               std::runtime_error);  // no [run]
  EXPECT_THROW((void)sched::problem_from_string("[run]\nsteps = 10\n"),
               std::runtime_error);  // no analyses
  EXPECT_THROW((void)sched::problem_from_string("[run]\nsteps = 10\n[analysis]\nct = 1\n"),
               std::runtime_error);  // unnamed analysis
  EXPECT_THROW(
      (void)sched::problem_from_string(
          "[run]\nsteps = 10\nthreshold_kind = bogus\n[analysis]\nname = a\n"),
      std::runtime_error);
}

TEST(ProblemIo, RoundTripsThroughConfigText) {
  sched::ScheduleProblem p;
  p.steps = 777;
  p.sim_time_per_step = 0.25;
  p.threshold = 12.5;
  p.threshold_kind = sched::ThresholdKind::kTotalSeconds;
  p.mth = 3e9;
  p.bw = 2e9;
  p.output_policy = sched::OutputPolicy::kOptimized;
  sched::AnalysisParams a;
  a.name = "alpha";
  a.ft = 0.5;
  a.it = 0.001;
  a.ct = 1.5;
  a.fm = 1e6;
  a.im = 2e6;
  a.cm = 3e6;
  a.om = 4e6;
  a.weight = 2.5;
  a.itv = 7;
  p.analyses.push_back(a);

  const sched::ScheduleProblem q = sched::problem_from_string(sched::problem_to_config(p));
  EXPECT_EQ(q.steps, p.steps);
  EXPECT_DOUBLE_EQ(q.threshold, p.threshold);
  EXPECT_EQ(q.threshold_kind, p.threshold_kind);
  EXPECT_DOUBLE_EQ(q.mth, p.mth);
  EXPECT_EQ(q.output_policy, p.output_policy);
  ASSERT_EQ(q.size(), 1u);
  EXPECT_EQ(q.analyses[0].name, "alpha");
  EXPECT_DOUBLE_EQ(q.analyses[0].it, a.it);
  EXPECT_DOUBLE_EQ(q.analyses[0].om, a.om);
  EXPECT_DOUBLE_EQ(q.analyses[0].weight, a.weight);
  EXPECT_EQ(q.analyses[0].itv, a.itv);
}


TEST(ProblemIo, HybridConfigLoadsStagingParams) {
  const std::string text =
      "[run]\n"
      "steps = 1000\nsim_time_per_step = 0.87\nthreshold = 5 %\n"
      "threshold_kind = fraction\noutput_policy = every_analysis\n"
      "[staging]\n"
      "network_bw = 16 GB\ncapacity = 870 s\nmemory = 1 TiB\n"
      "transfer_overlap = 0.5\n"
      "[analysis]\n"
      "name = f1\nct = 8 s\nitv = 100\n"
      "transfer_bytes = 40 GB\nstage_ct = 60 s\nstage_mem = 48 GiB\n";
  const Config config = Config::parse(text);
  EXPECT_TRUE(sched::has_staging_section(config));
  const sched::CoanalysisProblem p = sched::coanalysis_from_config(config);
  EXPECT_DOUBLE_EQ(p.network_bw, 16e9);
  EXPECT_DOUBLE_EQ(p.stage_capacity_seconds, 870.0);
  EXPECT_DOUBLE_EQ(p.transfer_overlap, 0.5);
  ASSERT_EQ(p.remote.size(), 1u);
  EXPECT_DOUBLE_EQ(p.remote[0].transfer_bytes, 40e9);
  EXPECT_DOUBLE_EQ(p.remote[0].stage_ct, 60.0);
  // Visible transfer at 50% overlap: 40e9/16e9 * 0.5 = 1.25 s.
  EXPECT_NEAR(p.transfer_time(0), 1.25, 1e-12);
}

TEST(ProblemIo, HybridConfigRequiresStagingSection) {
  const Config config = Config::parse(
      "[run]\nsteps = 10\n[analysis]\nname = a\nct = 1\n");
  EXPECT_FALSE(sched::has_staging_section(config));
  EXPECT_THROW((void)sched::coanalysis_from_config(config), std::runtime_error);
}

TEST(Sensitivity, BindingBudgetHasPositiveShadowPrice) {
  // Tight budget: one more second clearly buys objective.
  sched::ScheduleProblem p;
  p.steps = 100;
  p.threshold_kind = sched::ThresholdKind::kTotalSeconds;
  p.threshold = 10.0;
  sched::AnalysisParams a;
  a.name = "a";
  a.ct = 1.0;
  a.itv = 5;  // max 20 steps, budget allows 10
  p.analyses.push_back(a);

  sched::SensitivityOptions options;
  options.relative_delta = 0.15;  // +-1.5 s: enough to add/remove one step
  const sched::SensitivityReport report = sched::analyze_sensitivity(p, options);
  EXPECT_TRUE(report.time_constraint_binding);
  EXPECT_GT(report.time_shadow_price, 0.0);
  EXPECT_GT(report.objective_plus, report.objective);
  EXPECT_LT(report.objective_minus, report.objective);
  // One more step costs exactly 1 s.
  EXPECT_GT(report.next_improvement_seconds, 0.0);
  EXPECT_LE(report.next_improvement_seconds, 1.05);
}

TEST(Sensitivity, SlackBudgetHasNoImprovement) {
  sched::ScheduleProblem p;
  p.steps = 100;
  p.threshold_kind = sched::ThresholdKind::kTotalSeconds;
  p.threshold = 1000.0;  // everything fits
  sched::AnalysisParams a;
  a.name = "a";
  a.ct = 1.0;
  a.itv = 10;
  p.analyses.push_back(a);

  const sched::SensitivityReport report = sched::analyze_sensitivity(p);
  EXPECT_FALSE(report.time_constraint_binding);
  EXPECT_DOUBLE_EQ(report.objective, report.objective_plus);
  EXPECT_LT(report.next_improvement_seconds, 0.0);
}

}  // namespace
}  // namespace insched
