#include "insched/scheduler/timeexp_milp.hpp"

#include <cmath>

#include "insched/support/assert.hpp"
#include "insched/support/string_util.hpp"

namespace insched::scheduler {

TimeExpandedModel build_time_expanded_milp(const ScheduleProblem& problem) {
  problem.validate();
  TimeExpandedModel built;
  built.policy = problem.output_policy;
  lp::Model& m = built.model;
  m.set_sense(lp::Sense::kMaximize);

  const std::size_t n = problem.size();
  const long steps = problem.steps;
  const bool memory_constrained = std::isfinite(problem.mth);
  const bool separate_outputs = problem.output_policy == OutputPolicy::kOptimized;
  const bool has_outputs = problem.output_policy != OutputPolicy::kNone;

  built.vars.active.assign(n, -1);
  built.vars.analysis.assign(n, {});
  built.vars.output.assign(n, {});
  built.vars.mem_start.assign(n, {});
  built.vars.mem_end.assign(n, {});

  // --- Variables -----------------------------------------------------------
  for (std::size_t i = 0; i < n; ++i) {
    const AnalysisParams& p = problem.analyses[i];
    built.vars.active[i] =
        m.add_column(format("a_%s", p.name.c_str()), 0, 1, 1.0, lp::VarType::kBinary);
    auto& xs = built.vars.analysis[i];
    xs.reserve(static_cast<std::size_t>(steps));
    for (long j = 1; j <= steps; ++j) {
      xs.push_back(m.add_column(format("x_%s_%ld", p.name.c_str(), j), 0, 1, p.weight,
                                lp::VarType::kBinary));
    }
    if (separate_outputs) {
      auto& os = built.vars.output[i];
      os.reserve(static_cast<std::size_t>(steps));
      for (long j = 1; j <= steps; ++j) {
        os.push_back(m.add_column(format("z_%s_%ld", p.name.c_str(), j), 0, 1, 0.0,
                                  lp::VarType::kBinary));
      }
    }
    if (memory_constrained) {
      auto& ms = built.vars.mem_start[i];
      auto& me = built.vars.mem_end[i];
      ms.reserve(static_cast<std::size_t>(steps));
      me.reserve(static_cast<std::size_t>(steps));
      for (long j = 1; j <= steps; ++j) {
        ms.push_back(m.add_column(format("mS_%s_%ld", p.name.c_str(), j), 0, lp::kInf, 0.0));
        me.push_back(m.add_column(format("mE_%s_%ld", p.name.c_str(), j), 0, lp::kInf, 0.0));
      }
    }
  }

  // --- Linking, interval and output-subset rows ----------------------------
  for (std::size_t i = 0; i < n; ++i) {
    const AnalysisParams& p = problem.analyses[i];
    const int a = built.vars.active[i];
    const auto& xs = built.vars.analysis[i];

    // analysis_{i,j} <= a_i ; a_i <= sum_j analysis_{i,j}.
    std::vector<lp::RowEntry> sum_entries{{a, -1.0}};
    for (long j = 0; j < steps; ++j) {
      m.add_row(format("act_%s_%ld", p.name.c_str(), j + 1), lp::RowType::kLe, 0.0,
                {{xs[static_cast<std::size_t>(j)], 1.0}, {a, -1.0}});
      sum_entries.push_back({xs[static_cast<std::size_t>(j)], 1.0});
    }
    m.add_row(format("act_lb_%s", p.name.c_str()), lp::RowType::kGe, 0.0, sum_entries);

    // Eq 9 cardinality cap: sum_j analysis_{i,j} <= Steps/itv_i. Stricter
    // than the sliding-window gap rule when itv does not divide Steps.
    {
      std::vector<lp::RowEntry> cap;
      cap.reserve(static_cast<std::size_t>(steps));
      for (long j = 0; j < steps; ++j) cap.push_back({xs[static_cast<std::size_t>(j)], 1.0});
      const int r = m.add_row(format("card_%s", p.name.c_str()), lp::RowType::kLe,
                              static_cast<double>(problem.max_analysis_steps(i)),
                              std::move(cap));
      m.set_row_kind(r, lp::RowKind::kInterval);
    }

    // Interval rule: at most one analysis step inside any itv-wide window.
    if (p.itv > 1) {
      for (long j = 0; j + 1 < steps; ++j) {
        std::vector<lp::RowEntry> window;
        for (long k = j; k < std::min(steps, j + p.itv); ++k)
          window.push_back({xs[static_cast<std::size_t>(k)], 1.0});
        if (window.size() > 1) {
          const int r = m.add_row(format("itv_%s_%ld", p.name.c_str(), j + 1),
                                  lp::RowType::kLe, 1.0, std::move(window));
          m.set_row_kind(r, lp::RowKind::kInterval);
        }
      }
    }

    // Outputs only at analysis steps.
    if (separate_outputs) {
      const auto& os = built.vars.output[i];
      for (long j = 0; j < steps; ++j) {
        m.add_row(format("out_%s_%ld", p.name.c_str(), j + 1), lp::RowType::kLe, 0.0,
                  {{os[static_cast<std::size_t>(j)], 1.0},
                   {xs[static_cast<std::size_t>(j)], -1.0}});
      }
    }
  }

  // --- Time budget (Eqs 2-4 collapsed) --------------------------------------
  {
    std::vector<lp::RowEntry> entries;
    for (std::size_t i = 0; i < n; ++i) {
      const AnalysisParams& p = problem.analyses[i];
      const double fixed = p.ft + p.it * static_cast<double>(steps);
      if (fixed > 0.0) entries.push_back({built.vars.active[i], fixed});
      const double ot = has_outputs ? problem.output_time(i) : 0.0;
      for (long j = 0; j < steps; ++j) {
        double coeff = p.ct;
        if (has_outputs && !separate_outputs) coeff += ot;  // output rides on x
        if (coeff > 0.0)
          entries.push_back({built.vars.analysis[i][static_cast<std::size_t>(j)], coeff});
        if (separate_outputs && ot > 0.0)
          entries.push_back({built.vars.output[i][static_cast<std::size_t>(j)], ot});
      }
    }
    const int r =
        m.add_row("time_budget", lp::RowType::kLe, problem.time_budget(), std::move(entries));
    m.set_row_kind(r, lp::RowKind::kBudget);
  }

  // --- Memory recurrence (Eqs 5-8) -------------------------------------------
  if (memory_constrained) {
    for (std::size_t i = 0; i < n; ++i) {
      const AnalysisParams& p = problem.analyses[i];
      const int a = built.vars.active[i];
      const auto& xs = built.vars.analysis[i];
      const auto& ms = built.vars.mem_start[i];
      const auto& me = built.vars.mem_end[i];
      const double big_m =
          p.fm + p.im * static_cast<double>(steps) + p.cm + p.om + 1.0;

      for (long j = 0; j < steps; ++j) {
        const int m_start = ms[static_cast<std::size_t>(j)];
        const int m_end = me[static_cast<std::size_t>(j)];
        const int x = xs[static_cast<std::size_t>(j)];
        // Output indicator for this step: its own variable or x itself.
        const int z = separate_outputs ? built.vars.output[i][static_cast<std::size_t>(j)]
                                       : (has_outputs ? x : -1);

        // Eq 5: mStart_j = mEnd_{j-1} + im a + cm x + om z.
        std::vector<lp::RowEntry> rec{{m_start, 1.0}, {a, -p.im}, {x, -p.cm}};
        if (z >= 0) {
          if (z == x) {
            rec[2].coeff -= p.om;  // cm and om on the same indicator
          } else {
            rec.push_back({z, -p.om});
          }
        }
        if (j == 0) {
          rec.push_back({a, -p.fm});  // mEnd_{i,0} = fm a (Eq 7)
        } else {
          rec.push_back({me[static_cast<std::size_t>(j - 1)], -1.0});
        }
        m.add_row(format("mrec_%s_%ld", p.name.c_str(), j + 1), lp::RowType::kEq, 0.0,
                  std::move(rec));

        // Eq 6 linearized: z = 1 -> mEnd = fm a ; z = 0 -> mEnd = mStart.
        if (z >= 0) {
          // z = 1 -> mEnd = fm a:
          m.add_row("", lp::RowType::kLe, big_m,
                    {{m_end, 1.0}, {a, -p.fm}, {z, big_m}});
          m.add_row("", lp::RowType::kGe, -big_m,
                    {{m_end, 1.0}, {a, -p.fm}, {z, -big_m}});
          // z = 0 -> mEnd = mStart:
          m.add_row("", lp::RowType::kLe, 0.0,
                    {{m_end, 1.0}, {m_start, -1.0}, {z, -big_m}});
          m.add_row("", lp::RowType::kGe, 0.0,
                    {{m_end, 1.0}, {m_start, -1.0}, {z, big_m}});
        } else {
          m.add_row("", lp::RowType::kEq, 0.0, {{m_end, 1.0}, {m_start, -1.0}});
        }
      }
    }
    // Eq 8: per-step total mStart <= mth.
    for (long j = 0; j < steps; ++j) {
      std::vector<lp::RowEntry> entries;
      for (std::size_t i = 0; i < n; ++i)
        entries.push_back({built.vars.mem_start[i][static_cast<std::size_t>(j)], 1.0});
      const int r =
          m.add_row(format("mth_%ld", j + 1), lp::RowType::kLe, problem.mth, std::move(entries));
      m.set_row_kind(r, lp::RowKind::kBudget);
    }
  }

  return built;
}

Schedule decode_time_expanded(const ScheduleProblem& problem, const TimeExpandedModel& built,
                              const std::vector<double>& x) {
  const std::size_t n = problem.size();
  std::vector<AnalysisSchedule> analyses;
  analyses.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    AnalysisSchedule s;
    s.name = problem.analyses[i].name;
    for (long j = 0; j < problem.steps; ++j) {
      const bool on =
          x.at(static_cast<std::size_t>(built.vars.analysis[i][static_cast<std::size_t>(j)])) >
          0.5;
      if (!on) continue;
      s.analysis_steps.push_back(j + 1);
      bool out = false;
      if (built.policy == OutputPolicy::kEveryAnalysis) {
        out = true;
      } else if (built.policy == OutputPolicy::kOptimized) {
        out = x.at(static_cast<std::size_t>(
                  built.vars.output[i][static_cast<std::size_t>(j)])) > 0.5;
      }
      if (out) s.output_steps.push_back(j + 1);
    }
    analyses.push_back(std::move(s));
  }
  return Schedule(problem.steps, std::move(analyses));
}

}  // namespace insched::scheduler
