#include "insched/scheduler/validator.hpp"

#include <algorithm>
#include <cmath>

#include "insched/support/assert.hpp"
#include "insched/support/string_util.hpp"

namespace insched::scheduler {

namespace {
// Relative slack applied to budget comparisons so that schedules sitting
// exactly on the budget (the optimum frequently does) are not rejected for
// floating-point crumbs.
constexpr double kRelTol = 1e-9;
}  // namespace

ValidationReport validate_schedule(const ScheduleProblem& problem, const Schedule& schedule) {
  problem.validate();
  ValidationReport report;
  report.time_budget = problem.time_budget();
  report.memory_budget = problem.mth;

  if (schedule.size() != problem.size()) {
    report.violations.push_back(
        format("schedule has %zu analyses, problem has %zu", schedule.size(), problem.size()));
    return report;
  }
  if (schedule.steps() != problem.steps) {
    report.violations.push_back(format("schedule covers %ld steps, problem has %ld",
                                       schedule.steps(), problem.steps));
    return report;
  }

  const long steps = problem.steps;
  const std::size_t n = problem.size();

  // --- Structural checks: O_i subset of C_i, interval rule (Eq 9) ---------
  for (std::size_t i = 0; i < n; ++i) {
    const AnalysisParams& p = problem.analyses[i];
    const AnalysisSchedule& s = schedule.analysis(i);
    for (long o : s.output_steps) {
      if (!s.is_analysis_step(o))
        report.violations.push_back(
            format("%s: output step %ld is not an analysis step", p.name.c_str(), o));
    }
    if (problem.output_policy == OutputPolicy::kEveryAnalysis &&
        s.output_count() != s.analysis_count()) {
      report.violations.push_back(format("%s: policy requires output at every analysis step",
                                         p.name.c_str()));
    }
    if (problem.output_policy == OutputPolicy::kNone && s.output_count() != 0) {
      report.violations.push_back(format("%s: policy forbids outputs", p.name.c_str()));
    }
    if (s.analysis_count() > problem.max_analysis_steps(i)) {
      report.violations.push_back(format("%s: %ld analysis steps exceed Steps/itv = %ld",
                                         p.name.c_str(), s.analysis_count(),
                                         problem.max_analysis_steps(i)));
    }
    for (std::size_t k = 1; k < s.analysis_steps.size(); ++k) {
      const long gap = s.analysis_steps[k] - s.analysis_steps[k - 1];
      if (gap < p.itv) {
        report.violations.push_back(format("%s: gap %ld between steps %ld and %ld below itv %ld",
                                           p.name.c_str(), gap, s.analysis_steps[k - 1],
                                           s.analysis_steps[k], p.itv));
      }
    }
  }

  // --- Time recurrence (Eqs 2-4) ------------------------------------------
  report.breakdown.reserve(n);
  double total_time = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const AnalysisParams& p = problem.analyses[i];
    const AnalysisSchedule& s = schedule.analysis(i);
    TimeBreakdown tb;
    tb.name = p.name;
    if (s.active()) {
      tb.setup = p.ft;                                      // Eq 3
      tb.per_step = p.it * static_cast<double>(steps);      // it every step
      tb.compute = p.ct * static_cast<double>(s.analysis_count());
      tb.output = problem.output_time(i) * static_cast<double>(s.output_count());
    }
    total_time += tb.total();
    report.breakdown.push_back(std::move(tb));
  }
  report.total_analysis_time = total_time;
  if (total_time > report.time_budget * (1.0 + kRelTol) + 1e-9) {
    report.violations.push_back(format("total analysis time %.6f exceeds budget %.6f",
                                       total_time, report.time_budget));
  }

  // --- Memory recurrence (Eqs 5-8), walked step by step -------------------
  // mEnd_{i,0} = fm_i; at each step j: mStart = mEnd + im + cm[j in C] +
  // om[j in O]; mEnd = fm at output steps, else mStart.
  std::vector<double> mem_end(n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    if (schedule.analysis(i).active()) mem_end[i] = problem.analyses[i].fm;

  double peak = 0.0;
  long peak_step = 0;
  // Track per-analysis positions in their sorted step lists for O(1) checks.
  std::vector<std::size_t> next_a(n, 0), next_o(n, 0);
  for (long j = 1; j <= steps; ++j) {
    double total_start = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const AnalysisSchedule& s = schedule.analysis(i);
      if (!s.active()) continue;
      const AnalysisParams& p = problem.analyses[i];
      const bool is_analysis =
          next_a[i] < s.analysis_steps.size() && s.analysis_steps[next_a[i]] == j;
      const bool is_output =
          next_o[i] < s.output_steps.size() && s.output_steps[next_o[i]] == j;
      double m_start = mem_end[i] + p.im;
      if (is_analysis) {
        m_start += p.cm;
        ++next_a[i];
      }
      if (is_output) {
        m_start += p.om;
        ++next_o[i];
      }
      total_start += m_start;
      mem_end[i] = is_output ? p.fm : m_start;  // Eq 6
    }
    if (total_start > peak) {
      peak = total_start;
      peak_step = j;
    }
  }
  report.peak_memory = peak;
  report.peak_memory_step = peak_step;
  if (std::isfinite(problem.mth) && peak > problem.mth * (1.0 + kRelTol) + 1e-6) {
    report.violations.push_back(format("peak memory %.0f at step %ld exceeds mth %.0f", peak,
                                       peak_step, problem.mth));
  }

  report.feasible = report.violations.empty();
  return report;
}

}  // namespace insched::scheduler
