#pragma once

// Aggregate (count-based) MILP formulation of the in-situ scheduling problem.
//
// Instead of one 0-1 variable per (analysis, step) pair as in the paper's
// time-expanded program, this formulation decides per analysis i:
//   a_i  (binary)  — is the analysis performed at all (membership in A),
//   c_i  (integer) — number of analysis steps |C_i|,
//   o_i  (integer) — number of output steps |O_i|, via a binary expansion
//                    y_{i,k} (o_i = k) that makes the memory peak linear.
//
// Time (Eq 4):   sum_i ft_i a_i + it_i Steps a_i + ct_i c_i + ot_i o_i <= budget
// Interval (Eq 9): c_i <= (Steps/itv_i) a_i   — even placement then realizes
//                  the minimum-gap rule exactly (placement.hpp).
// Memory (Eq 8):  with k output steps spread evenly, at most ceil(Steps/k)
//                 steps elapse between two memory resets, so the analysis's
//                 per-step memory peaks at
//                     peak_i(k) = fm_i + im_i ceil(Steps/k) + cm_i + om_i
//                 (k = 0: no resets, gap = Steps, no om term). Summing the
//                 selected peak over analyses upper-bounds the true per-step
//                 sum, so a feasible aggregate solution is always feasible
//                 for the exact recurrence — tests cross-validate this and
//                 the optimal objective against the time-expanded program.
//
// The expansion is exact for the instance sizes the paper solves (max count
// Steps/itv = 10). When max counts are very large and memory is actually
// constrained, a conservative single-bound fallback is used (documented in
// DESIGN.md ablations).

#include <optional>

#include "insched/lp/model.hpp"
#include "insched/scheduler/params.hpp"

namespace insched::scheduler {

struct AggregateVarMap {
  // Column indices per analysis; -1 when the variable does not exist under
  // the chosen policy.
  std::vector<int> active;      ///< a_i
  std::vector<int> count;       ///< c_i
  std::vector<int> out_count;   ///< o_i (kOptimized without expansion)
  std::vector<std::vector<int>> out_choice;  ///< y_{i,k}: o_i = k, o decoupled from c
  /// w_{i,k}: "coupled mode" o_i = c_i = k (flush at every analysis step) —
  /// its memory-reset gap is just the analysis spacing, much tighter than
  /// the decoupled bound; only built under OutputPolicy::kOptimized.
  std::vector<std::vector<int>> out_choice_coupled;
};

struct AggregateModel {
  lp::Model model;
  AggregateVarMap vars;
  bool used_expansion = false;  ///< memory handled by binary expansion
  OutputPolicy policy = OutputPolicy::kEveryAnalysis;
};

/// Largest per-analysis count for which the exact output-count expansion is
/// used; beyond it the conservative memory fallback applies.
inline constexpr long kMaxExpansion = 256;

struct AggregateBuildOptions {
  /// Disable the output-count binary expansion and use the conservative
  /// single-bound memory linearization instead (the DESIGN.md ablation;
  /// bench/ablation_formulations quantifies the objective gap).
  bool allow_expansion = true;
};

/// Builds the MILP. `fixed_counts` (optional, one entry per analysis) pins
/// |C_i| to a value with an equality row — used by the lexicographic solver
/// to freeze higher-priority tiers while optimizing lower ones.
[[nodiscard]] AggregateModel build_aggregate_milp(
    const ScheduleProblem& problem,
    const std::vector<std::optional<long>>& fixed_counts = {},
    const AggregateBuildOptions& options = {});

/// Extracts (analysis_counts, output_counts) from a solution vector of the
/// aggregate model.
struct AggregateCounts {
  std::vector<long> analysis_counts;
  std::vector<long> output_counts;
};
[[nodiscard]] AggregateCounts decode_aggregate(const AggregateModel& built,
                                               const std::vector<double>& x);

}  // namespace insched::scheduler
