#include "insched/scheduler/sensitivity.hpp"

#include <cmath>

#include "insched/lp/simplex.hpp"
#include "insched/scheduler/aggregate_milp.hpp"
#include "insched/support/assert.hpp"

namespace insched::scheduler {

SensitivityReport analyze_sensitivity(const ScheduleProblem& problem,
                                      const SensitivityOptions& options) {
  problem.validate();
  SensitivityReport report;

  // --- LP relaxation duals ---------------------------------------------
  const AggregateModel built = build_aggregate_milp(problem);
  const lp::SimplexResult relaxation = lp::solve_lp(built.model);
  if (relaxation.optimal()) {
    for (int i = 0; i < built.model.num_rows(); ++i) {
      const lp::Row& row = built.model.row(i);
      if (row.name == "time_budget") {
        report.time_shadow_price = relaxation.duals[static_cast<std::size_t>(i)];
        const double activity = built.model.row_activity(i, relaxation.x);
        report.time_constraint_binding = activity >= row.rhs - 1e-6;
      } else if (row.name == "memory_budget") {
        report.memory_shadow_price = relaxation.duals[static_cast<std::size_t>(i)];
        const double activity = built.model.row_activity(i, relaxation.x);
        report.memory_constraint_binding = activity >= row.rhs - 1e-6;
      }
    }
  }

  // --- Exact finite differences of the integer optimum --------------------
  const double budget = problem.time_budget();
  report.budget_delta_seconds = budget * options.relative_delta;

  const auto solve_at = [&](double scale) {
    ScheduleProblem scaled = problem;
    scaled.threshold = problem.threshold * scale;
    const ScheduleSolution sol = solve_schedule(scaled, options.solve);
    return sol.solved ? sol.objective : 0.0;
  };
  report.objective = solve_at(1.0);
  report.objective_plus = solve_at(1.0 + options.relative_delta);
  report.objective_minus = solve_at(1.0 - options.relative_delta);

  // --- Smallest budget increase that buys another analysis step -----------
  // Doubling search over the extra budget, then refinement by bisection on
  // the first improving bracket.
  const double base_objective = report.objective;
  double lo = 0.0;
  double hi = -1.0;
  for (double extra = budget * 0.01; extra <= budget * options.max_extra_fraction;
       extra *= 2.0) {
    if (solve_at(1.0 + extra / budget) > base_objective + 1e-9) {
      hi = extra;
      break;
    }
    lo = extra;
  }
  if (hi > 0.0) {
    for (int iter = 0; iter < 12 && hi - lo > budget * 1e-4; ++iter) {
      const double mid = 0.5 * (lo + hi);
      if (solve_at(1.0 + mid / budget) > base_objective + 1e-9) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    report.next_improvement_seconds = hi;
  }
  return report;
}

}  // namespace insched::scheduler
