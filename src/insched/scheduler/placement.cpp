#include "insched/scheduler/placement.hpp"

#include <algorithm>

#include "insched/support/assert.hpp"

namespace insched::scheduler {

Schedule place(const ScheduleProblem& problem, const PlacementRequest& request) {
  const std::size_t n = problem.size();
  INSCHED_EXPECTS(request.analysis_counts.size() == n);
  INSCHED_EXPECTS(request.output_counts.size() == n);

  std::vector<AnalysisSchedule> placed;
  placed.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const AnalysisParams& p = problem.analyses[i];
    const long c = request.analysis_counts[i];
    const long o = request.output_counts[i];
    INSCHED_EXPECTS(c >= 0 && c <= problem.max_analysis_steps(i));
    INSCHED_EXPECTS(o >= 0 && o <= c);

    AnalysisSchedule s;
    s.name = p.name;
    if (c > 0) {
      // Even distribution over the whole horizon: j_k = floor(k*Steps/c).
      // Consecutive gaps are floor(Steps/c) or ceil(Steps/c), the minimum
      // gap floor(Steps/c) >= itv (since c <= Steps/itv), the last step is
      // exactly Steps — no reset-free tail where im could pile up.
      const long spacing = problem.steps / c;
      INSCHED_ASSERT(spacing >= p.itv);
      // Stagger different analyses backwards within the first gap so their
      // memory peaks (at analysis/output steps) do not all land on the same
      // simulation step.
      const long offset = std::min<long>(static_cast<long>(i), spacing - 1);
      s.analysis_steps.reserve(static_cast<std::size_t>(c));
      for (long k = 1; k <= c; ++k)
        s.analysis_steps.push_back(k * problem.steps / c - offset);

      if (o == c) {
        s.output_steps = s.analysis_steps;  // flush at every analysis step
      } else if (o > 0) {
        // Exactly o outputs, spread evenly over the ANALYSIS INDEX space:
        // the r-th output sits at grid index floor(r*c/o) - 1, ending on the
        // last analysis step. Index gaps are floor(c/o) or ceil(c/o), so at
        // most ceil(c/o) analysis steps (each possibly allocating cm)
        // accumulate between memory resets — the bound the aggregate MILP's
        // cm term assumes — and the sim-step reset gap stays within
        // ceil(Steps/o) + floor(Steps/o) (each index gap spans at most
        // ceil(c/o)*ceil(Steps/c) simulation steps).
        s.output_steps.reserve(static_cast<std::size_t>(o));
        for (long r = 1; r <= o; ++r) {
          const long idx = r * c / o - 1;  // strictly increasing; last = c-1
          s.output_steps.push_back(s.analysis_steps[static_cast<std::size_t>(idx)]);
        }
      }
    }
    placed.push_back(std::move(s));
  }
  return Schedule(problem.steps, std::move(placed));
}

}  // namespace insched::scheduler
