#pragma once

// Cost database: the bridge between Section 4 (measure kernels at a few
// scales, interpolate) and Section 3.2 (feed Table-1 parameters to the
// MILP). Each named kernel stores measured samples of its Table-1 components
// over (problem size x process count); queries interpolate to any scale and
// assemble a ready-to-schedule AnalysisParams.

#include <map>
#include <string>
#include <vector>

#include <functional>
#include <limits>

#include "insched/perfmodel/bilinear.hpp"
#include "insched/scheduler/params.hpp"

namespace insched::scheduler {

/// One measurement of a kernel's Table-1 components at a given scale.
struct CostSample {
  double problem_size = 0.0;  ///< particles, cells, ... (x-variable)
  double procs = 1.0;         ///< process/thread count (y-variable)
  AnalysisParams costs;  ///< measured ft/it/ct/ot + fm/im/cm/om
};

class CostDatabase {
 public:
  /// Registers a measurement. Samples for one kernel must eventually cover a
  /// full rectilinear grid of (problem_size, procs) points.
  void add_sample(const std::string& kernel, const CostSample& sample);

  [[nodiscard]] bool has_kernel(const std::string& kernel) const;
  [[nodiscard]] std::vector<std::string> kernels() const;
  [[nodiscard]] std::size_t sample_count(const std::string& kernel) const;

  /// Interpolated Table-1 parameters at (problem_size, procs). Times and
  /// memories are interpolated independently (log-log axes, log values for
  /// strictly positive components, linear otherwise). itv and weight are
  /// copied from the nearest sample. Throws std::runtime_error when the
  /// kernel is unknown or its samples do not form a grid.
  [[nodiscard]] AnalysisParams predict(const std::string& kernel, double problem_size,
                                       double procs) const;

 private:
  std::map<std::string, std::vector<CostSample>> samples_;
};

}  // namespace insched::scheduler
