#include "insched/scheduler/recommend.hpp"

#include <cmath>

#include "insched/support/string_util.hpp"

namespace insched::scheduler {

namespace {

double visible_time(const ValidationReport& report) {
  double total = 0.0;
  for (const TimeBreakdown& tb : report.breakdown) total += tb.visible();
  return total;
}

SweepRow make_row(double value, const ScheduleProblem& problem,
                  const ScheduleSolution& solution) {
  SweepRow row;
  row.threshold_value = value;
  row.budget_seconds = problem.time_budget();
  row.frequencies = solution.frequencies;
  row.analyses_time = visible_time(solution.validation);
  row.utilization =
      row.budget_seconds > 0.0 ? row.analyses_time / row.budget_seconds : 0.0;
  row.solver_seconds = solution.solver_seconds;
  return row;
}

}  // namespace

Recommendation recommend(const ScheduleProblem& problem, const SolveOptions& options) {
  Recommendation rec;
  rec.solution = solve_schedule(problem, options);
  if (!rec.solution.solved) {
    rec.summary = "no feasible in-situ schedule within the given budgets";
    return rec;
  }
  std::string s = format("budget %.2f s, recommended schedule uses %.2f s (%.1f%%)\n",
                         problem.time_budget(), rec.solution.validation.total_analysis_time,
                         100.0 * rec.solution.validation.utilization());
  for (std::size_t i = 0; i < problem.size(); ++i) {
    const long c = rec.solution.frequencies[i];
    const long steps_between = c > 0 ? problem.steps / c : 0;
    s += format("  %-24s x%ld%s", problem.analyses[i].name.c_str(), c,
                c > 0 ? format(" (every ~%ld steps, %ld outputs)", steps_between,
                               rec.solution.output_counts[i])
                            .c_str()
                      : " (not scheduled)");
    s += '\n';
  }
  rec.summary = std::move(s);
  return rec;
}

std::vector<SweepRow> threshold_sweep(ScheduleProblem problem,
                                      const std::vector<double>& fractions,
                                      const SolveOptions& options) {
  problem.threshold_kind = ThresholdKind::kFractionOfSimTime;
  std::vector<SweepRow> rows;
  rows.reserve(fractions.size());
  for (double f : fractions) {
    problem.threshold = f;
    const ScheduleSolution sol = solve_schedule(problem, options);
    rows.push_back(make_row(f, problem, sol));
  }
  return rows;
}

std::vector<SweepRow> total_threshold_sweep(ScheduleProblem problem,
                                            const std::vector<double>& budgets,
                                            const SolveOptions& options) {
  problem.threshold_kind = ThresholdKind::kTotalSeconds;
  std::vector<SweepRow> rows;
  rows.reserve(budgets.size());
  for (double b : budgets) {
    problem.threshold = b;
    const ScheduleSolution sol = solve_schedule(problem, options);
    rows.push_back(make_row(b, problem, sol));
  }
  return rows;
}

std::vector<OutputTradeRow> output_tradeoff(ScheduleProblem problem,
                                            double sim_output_bytes_per_step, double write_bw,
                                            long base_output_steps, double base_budget_seconds,
                                            const std::vector<long>& output_step_choices,
                                            const SolveOptions& options) {
  problem.threshold_kind = ThresholdKind::kTotalSeconds;
  const double per_output_seconds = sim_output_bytes_per_step / write_bw;
  const double base_output_seconds = per_output_seconds * static_cast<double>(base_output_steps);

  std::vector<OutputTradeRow> rows;
  rows.reserve(output_step_choices.size());
  for (long outputs : output_step_choices) {
    OutputTradeRow row;
    row.sim_output_steps = outputs;
    row.output_seconds = per_output_seconds * static_cast<double>(outputs);
    // Time saved on simulation output is granted to the analyses.
    row.threshold_seconds = base_budget_seconds + (base_output_seconds - row.output_seconds);
    problem.threshold = row.threshold_seconds;
    const ScheduleSolution sol = solve_schedule(problem, options);
    row.frequencies = sol.frequencies;
    for (long c : sol.frequencies) row.total_analyses += c;
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<ScalingRow> strong_scaling(const std::vector<ScalePoint>& scales,
                                       const SolveOptions& options) {
  std::vector<ScalingRow> rows;
  rows.reserve(scales.size());
  for (const ScalePoint& point : scales) {
    ScalingRow row;
    row.processes = point.processes;
    row.budget_seconds = point.problem.time_budget();
    const ScheduleSolution sol = solve_schedule(point.problem, options);
    row.frequencies = sol.frequencies;
    for (const TimeBreakdown& tb : sol.validation.breakdown)
      row.per_analysis_seconds.push_back(tb.visible());
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<ParetoPoint> pareto_frontier(ScheduleProblem problem, double min_budget,
                                         double max_budget, int samples,
                                         const SolveOptions& options) {
  problem.threshold_kind = ThresholdKind::kTotalSeconds;
  std::vector<ParetoPoint> frontier;
  if (samples < 2 || !(min_budget > 0.0) || max_budget <= min_budget) return frontier;
  const double ratio = std::pow(max_budget / min_budget,
                                1.0 / static_cast<double>(samples - 1));
  double budget = min_budget;
  for (int s = 0; s < samples; ++s, budget *= ratio) {
    problem.threshold = budget;
    const ScheduleSolution sol = solve_schedule(problem, options);
    if (!sol.solved) continue;
    if (!frontier.empty() && sol.objective <= frontier.back().objective + 1e-9) continue;
    frontier.push_back(ParetoPoint{budget, sol.objective, sol.frequencies});
  }
  return frontier;
}

}  // namespace insched::scheduler
