#pragma once

// Baseline schedulers the optimizer is compared against:
//  - fixed_frequency: "what scientists do today" (paper Section 1) — every
//    analysis at one empirically chosen frequency, outputs at every analysis
//    step, no feasibility reasoning.
//  - greedy_schedule: marginal-gain knapsack heuristic — repeatedly grant one
//    more analysis step to the analysis with the best weight/time ratio that
//    still fits the time budget and the (conservative) memory bound.

#include "insched/scheduler/params.hpp"
#include "insched/scheduler/schedule.hpp"

namespace insched::scheduler {

/// Every analysis every `interval` steps (clamped to its itv), output at
/// every analysis step. May violate the problem's budgets — that is the
/// point of the baseline; validate_schedule() reports by how much.
[[nodiscard]] Schedule fixed_frequency(const ScheduleProblem& problem, long interval);

/// Greedy weight/cost heuristic; always returns a schedule that satisfies
/// the time budget and the conservative per-analysis memory bound.
[[nodiscard]] Schedule greedy_schedule(const ScheduleProblem& problem);

}  // namespace insched::scheduler
