#pragma once

// Input parameters of the in-situ scheduling problem — a direct encoding of
// the paper's Table 1. Every time is in seconds, every memory in bytes.

#include <limits>
#include <string>
#include <vector>

namespace insched::scheduler {

inline constexpr double kNoLimit = std::numeric_limits<double>::infinity();

/// Per-analysis resource requirements (Table 1, rows ft..itv).
struct AnalysisParams {
  std::string name;

  double ft = 0.0;  ///< fixed setup time, paid once at step 0 when active
  double it = 0.0;  ///< facilitation time paid every simulation step when active
  double ct = 0.0;  ///< compute time per analysis step
  double ot = -1.0; ///< output time per output step; negative = derive om/bw

  double fm = 0.0;  ///< fixed memory allocated when active
  double im = 0.0;  ///< memory allocated every simulation step when active
  double cm = 0.0;  ///< extra memory allocated at an analysis step
  double om = 0.0;  ///< extra memory allocated at an output step

  double weight = 1.0;  ///< importance w_i (>= 0)
  long itv = 1;         ///< minimum interval between analysis steps (>= 1)

  /// Output time: explicit ot when given, otherwise om / bw (Section 3.2).
  [[nodiscard]] double output_time(double bw) const noexcept {
    if (ot >= 0.0) return ot;
    return bw > 0.0 && om > 0.0 ? om / bw : 0.0;
  }
};

/// How the user expresses the analysis-time budget.
enum class ThresholdKind {
  kFractionOfSimTime,  ///< cth = fraction * simulation time (Table 5, Fig 5)
  kTotalSeconds,       ///< absolute budget for the whole run (Table 6, 7)
  kPerStepSeconds,     ///< cth per simulation step (paper's native form)
};

/// When analyses write their results.
enum class OutputPolicy {
  kEveryAnalysis,  ///< each analysis step is followed by an output step
  kOptimized,      ///< the solver chooses output steps (memory/time trade)
  kNone,           ///< analyses never write (exploratory steering runs)
};

/// One full instance of the scheduling problem (Table 1 plus run context).
struct ScheduleProblem {
  std::vector<AnalysisParams> analyses;

  long steps = 1000;                 ///< simulation time steps
  double threshold = 0.1;            ///< meaning depends on threshold_kind
  ThresholdKind threshold_kind = ThresholdKind::kFractionOfSimTime;
  double sim_time_per_step = 1.0;    ///< seconds; needed for the fraction form
  double mth = kNoLimit;             ///< memory available for analyses (bytes)
  double bw = kNoLimit;              ///< average write bandwidth (bytes/s)
  OutputPolicy output_policy = OutputPolicy::kEveryAnalysis;

  /// Whole-run analysis-time budget in seconds (cth * Steps).
  [[nodiscard]] double time_budget() const noexcept;

  /// Max analysis steps for analysis i: floor(Steps / itv_i)  (Eq 9).
  [[nodiscard]] long max_analysis_steps(std::size_t i) const;

  /// Effective output time for analysis i.
  [[nodiscard]] double output_time(std::size_t i) const;

  [[nodiscard]] std::size_t size() const noexcept { return analyses.size(); }

  /// Throws std::invalid_argument on inconsistent parameters.
  void validate() const;
};

}  // namespace insched::scheduler
