#pragma once

// A concrete in-situ schedule: for each analysis the sorted simulation steps
// at which it runs (the paper's set C_i) and at which it writes output (O_i).
// Steps are 1-based like the paper's recurrences; step 0 carries only the
// fixed setup of active analyses.

#include <string>
#include <vector>

namespace insched::scheduler {

struct AnalysisSchedule {
  std::string name;
  std::vector<long> analysis_steps;  ///< sorted, in [1, steps]; the set C_i
  std::vector<long> output_steps;    ///< sorted subset of analysis_steps; O_i

  [[nodiscard]] long analysis_count() const noexcept {
    return static_cast<long>(analysis_steps.size());
  }
  [[nodiscard]] long output_count() const noexcept {
    return static_cast<long>(output_steps.size());
  }
  [[nodiscard]] bool active() const noexcept { return !analysis_steps.empty(); }
  [[nodiscard]] bool is_analysis_step(long step) const;
  [[nodiscard]] bool is_output_step(long step) const;
};

class Schedule {
 public:
  Schedule() = default;
  Schedule(long steps, std::vector<AnalysisSchedule> analyses);

  [[nodiscard]] long steps() const noexcept { return steps_; }
  [[nodiscard]] std::size_t size() const noexcept { return analyses_.size(); }
  [[nodiscard]] const AnalysisSchedule& analysis(std::size_t i) const;
  [[nodiscard]] const std::vector<AnalysisSchedule>& analyses() const noexcept {
    return analyses_;
  }

  /// Number of active analyses (|A| in the objective).
  [[nodiscard]] long active_count() const noexcept;

  /// Total analysis steps across analyses (sum |C_i|).
  [[nodiscard]] long total_analysis_steps() const noexcept;

  /// Analysis frequencies as a vector of |C_i| (paper tables report these).
  [[nodiscard]] std::vector<long> frequencies() const;

  /// Paper-objective value |A| + sum_i w_i |C_i| given the weights.
  [[nodiscard]] double objective(const std::vector<double>& weights) const;

  /// Figure-1 style timeline: "S S S S A S OA ..." — S for a simulation
  /// step, A/O suffixes when any analysis/output runs after it. Truncated to
  /// `max_steps` steps for display.
  [[nodiscard]] std::string render(long max_steps = 60,
                                   const std::vector<long>& sim_output_steps = {}) const;

 private:
  long steps_ = 0;
  std::vector<AnalysisSchedule> analyses_;
};

}  // namespace insched::scheduler
