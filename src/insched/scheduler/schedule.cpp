#include "insched/scheduler/schedule.hpp"

#include <algorithm>

#include "insched/support/assert.hpp"
#include "insched/support/string_util.hpp"

namespace insched::scheduler {

bool AnalysisSchedule::is_analysis_step(long step) const {
  return std::binary_search(analysis_steps.begin(), analysis_steps.end(), step);
}

bool AnalysisSchedule::is_output_step(long step) const {
  return std::binary_search(output_steps.begin(), output_steps.end(), step);
}

Schedule::Schedule(long steps, std::vector<AnalysisSchedule> analyses)
    : steps_(steps), analyses_(std::move(analyses)) {
  INSCHED_EXPECTS(steps_ >= 0);
  for (const AnalysisSchedule& a : analyses_) {
    INSCHED_EXPECTS(std::is_sorted(a.analysis_steps.begin(), a.analysis_steps.end()));
    INSCHED_EXPECTS(std::is_sorted(a.output_steps.begin(), a.output_steps.end()));
    if (!a.analysis_steps.empty()) {
      INSCHED_EXPECTS(a.analysis_steps.front() >= 1);
      INSCHED_EXPECTS(a.analysis_steps.back() <= steps_);
    }
    for (long o : a.output_steps) INSCHED_EXPECTS(a.is_analysis_step(o));
  }
}

const AnalysisSchedule& Schedule::analysis(std::size_t i) const {
  INSCHED_EXPECTS(i < analyses_.size());
  return analyses_[i];
}

long Schedule::active_count() const noexcept {
  long active = 0;
  for (const AnalysisSchedule& a : analyses_)
    if (a.active()) ++active;
  return active;
}

long Schedule::total_analysis_steps() const noexcept {
  long total = 0;
  for (const AnalysisSchedule& a : analyses_) total += a.analysis_count();
  return total;
}

std::vector<long> Schedule::frequencies() const {
  std::vector<long> freq;
  freq.reserve(analyses_.size());
  for (const AnalysisSchedule& a : analyses_) freq.push_back(a.analysis_count());
  return freq;
}

double Schedule::objective(const std::vector<double>& weights) const {
  INSCHED_EXPECTS(weights.size() == analyses_.size());
  double value = static_cast<double>(active_count());
  for (std::size_t i = 0; i < analyses_.size(); ++i)
    value += weights[i] * static_cast<double>(analyses_[i].analysis_count());
  return value;
}

std::string Schedule::render(long max_steps, const std::vector<long>& sim_output_steps) const {
  std::string out;
  const long shown = std::min(steps_, max_steps);
  for (long j = 1; j <= shown; ++j) {
    out += 'S';
    if (std::binary_search(sim_output_steps.begin(), sim_output_steps.end(), j)) out += 'o';
    bool any_analysis = false;
    bool any_output = false;
    for (const AnalysisSchedule& a : analyses_) {
      any_analysis = any_analysis || a.is_analysis_step(j);
      any_output = any_output || a.is_output_step(j);
    }
    if (any_analysis) out += 'A';
    if (any_output) out += 'O';
    out += ' ';
  }
  if (shown < steps_) out += format("... (%ld more steps)", steps_ - shown);
  return out;
}

}  // namespace insched::scheduler
