#include "insched/scheduler/lint.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "insched/support/string_util.hpp"

namespace insched::scheduler {

namespace {

constexpr double kRangeLimit = 1e8;  ///< max/min magnitude ratio before a numerics warning

std::string analysis_locus(const AnalysisParams& a, const char* key) {
  return format("[analysis] '%s' / %s", a.name.c_str(), key);
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          out += format("\\u%04x", static_cast<unsigned>(static_cast<unsigned char>(c)));
        else
          out += c;
    }
  }
  return out;
}

/// max/min ratio over the nonzero magnitudes in `values`; 1 when fewer than
/// two nonzeros.
double magnitude_range(const std::vector<double>& values) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = 0.0;
  for (const double v : values) {
    const double m = std::fabs(v);
    if (m <= 0.0 || !std::isfinite(m)) continue;
    lo = std::min(lo, m);
    hi = std::max(hi, m);
  }
  return hi > 0.0 && std::isfinite(lo) ? hi / lo : 1.0;
}

}  // namespace

// ---------------------------------------------------------------------------
// Report plumbing

const char* to_string(LintSeverity severity) noexcept {
  switch (severity) {
    case LintSeverity::kInfo: return "info";
    case LintSeverity::kWarning: return "warning";
    case LintSeverity::kError: return "error";
  }
  return "?";
}

std::string LintDiagnostic::to_string() const {
  std::string out = format("%s: %s: %s", scheduler::to_string(severity), locus.c_str(),
                           message.c_str());
  if (!hint.empty()) out += format(" (hint: %s)", hint.c_str());
  out += format(" [%s]", id.c_str());
  return out;
}

int LintReport::count(LintSeverity severity) const noexcept {
  int n = 0;
  for (const LintDiagnostic& d : diagnostics)
    if (d.severity == severity) ++n;
  return n;
}

void LintReport::add(LintSeverity severity, std::string id, std::string locus,
                     std::string message, std::string hint) {
  diagnostics.push_back(LintDiagnostic{severity, std::move(id), std::move(locus),
                                       std::move(message), std::move(hint)});
}

void LintReport::merge(const LintReport& other) {
  diagnostics.insert(diagnostics.end(), other.diagnostics.begin(), other.diagnostics.end());
}

int LintReport::exit_code(bool strict) const noexcept {
  if (has_errors()) return 2;
  if (has_warnings()) return strict ? 2 : 1;
  return 0;
}

std::string LintReport::to_string() const {
  // Errors first so the blocking findings lead; stable within a severity.
  std::vector<const LintDiagnostic*> sorted;
  sorted.reserve(diagnostics.size());
  for (const LintDiagnostic& d : diagnostics) sorted.push_back(&d);
  std::stable_sort(sorted.begin(), sorted.end(), [](const auto* a, const auto* b) {
    return static_cast<int>(a->severity) > static_cast<int>(b->severity);
  });
  std::string out;
  for (const LintDiagnostic* d : sorted) out += d->to_string() + "\n";
  out += format("lint: %d error(s), %d warning(s), %d note(s)\n",
                count(LintSeverity::kError), count(LintSeverity::kWarning),
                count(LintSeverity::kInfo));
  return out;
}

std::string LintReport::to_json() const {
  std::string out = "{\"diagnostics\":[";
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    const LintDiagnostic& d = diagnostics[i];
    if (i > 0) out += ",";
    out += format("{\"severity\":\"%s\",\"id\":\"%s\",\"locus\":\"%s\",\"message\":\"%s\"",
                  scheduler::to_string(d.severity), json_escape(d.id).c_str(),
                  json_escape(d.locus).c_str(), json_escape(d.message).c_str());
    if (!d.hint.empty()) out += format(",\"hint\":\"%s\"", json_escape(d.hint).c_str());
    out += "}";
  }
  out += format("],\"errors\":%d,\"warnings\":%d,\"infos\":%d}", count(LintSeverity::kError),
                count(LintSeverity::kWarning), count(LintSeverity::kInfo));
  return out;
}

// ---------------------------------------------------------------------------
// Shared field checks

std::optional<LintDiagnostic> check_positive_number(const std::string& locus, const char* key,
                                                    double value, const char* hint) {
  if (value > 0.0 && !std::isnan(value)) return std::nullopt;
  LintDiagnostic d;
  d.severity = LintSeverity::kError;
  d.id = format("%s-not-positive", key);
  std::replace(d.id.begin(), d.id.end(), '_', '-');
  d.locus = locus + " / " + key;
  d.message = format("'%s' must be positive, got %g", key, value);
  if (hint != nullptr) d.hint = hint;
  return d;
}

std::optional<LintDiagnostic> check_positive_integer(const std::string& locus, const char* key,
                                                     long value, const char* hint) {
  if (value > 0) return std::nullopt;
  LintDiagnostic d;
  d.severity = LintSeverity::kError;
  d.id = format("%s-not-positive", key);
  std::replace(d.id.begin(), d.id.end(), '_', '-');
  d.locus = locus + " / " + key;
  d.message = format("'%s' must be positive, got %ld", key, value);
  if (hint != nullptr) d.hint = hint;
  return d;
}

std::optional<LintDiagnostic> check_nonnegative_number(const std::string& locus,
                                                       const char* key, double value) {
  if (value >= 0.0 && std::isfinite(value)) return std::nullopt;
  LintDiagnostic d;
  d.severity = LintSeverity::kError;
  d.id = "parameter-negative";
  d.locus = locus + " / " + key;
  d.message = format("'%s' must be a finite number >= 0, got %g", key, value);
  d.hint = "all Table 1 times and memories are magnitudes";
  return d;
}

std::optional<LintDiagnostic> check_interval_within_steps(const std::string& locus, long itv,
                                                          long steps) {
  if (itv <= steps) return std::nullopt;
  LintDiagnostic d;
  d.severity = LintSeverity::kError;
  d.id = "interval-exceeds-steps";
  d.locus = locus + " / itv";
  d.message = format("'itv' (%ld) exceeds [run] steps (%ld): the analysis could never run",
                     itv, steps);
  d.hint = "shorten the interval or lengthen the run";
  return d;
}

std::string config_error_message(const LintDiagnostic& diagnostic) {
  std::string out = "config: " + diagnostic.locus + ": " + diagnostic.message;
  if (!diagnostic.hint.empty()) out += " (" + diagnostic.hint + ")";
  return out;
}

// ---------------------------------------------------------------------------
// Instance lint

namespace {

void lint_run_section(const ScheduleProblem& problem, LintReport& report) {
  const std::string locus = "[run]";
  if (auto d = check_positive_integer(locus, "steps", problem.steps)) report.diagnostics.push_back(*d);
  if (auto d = check_positive_number(locus, "sim_time_per_step", problem.sim_time_per_step))
    report.diagnostics.push_back(*d);
  if (auto d = check_positive_number(locus, "threshold", problem.threshold,
                                     "a zero analysis budget schedules nothing"))
    report.diagnostics.push_back(*d);
  // Infinity means "unlimited" for both budgets, so only the sign is checked.
  if (auto d = check_positive_number(locus, "memory", problem.mth,
                                     "omit the key for an unlimited memory budget"))
    report.diagnostics.push_back(*d);
  if (auto d = check_positive_number(locus, "bandwidth", problem.bw,
                                     "derived output time ot = om/bw would divide by zero; "
                                     "omit the key for unlimited bandwidth"))
    report.diagnostics.push_back(*d);
}

void lint_analysis_fields(const ScheduleProblem& problem, const AnalysisParams& a,
                          LintReport& report) {
  const std::string locus = format("[analysis] '%s'", a.name.c_str());
  const auto nonneg = [&](const char* key, double value) {
    if (auto d = check_nonnegative_number(locus, key, value)) report.diagnostics.push_back(*d);
  };
  nonneg("ft", a.ft);
  nonneg("it", a.it);
  nonneg("ct", a.ct);
  if (a.ot >= 0.0 || std::isnan(a.ot)) nonneg("ot", a.ot);  // negative = derive om/bw
  nonneg("fm", a.fm);
  nonneg("im", a.im);
  nonneg("cm", a.cm);
  nonneg("om", a.om);
  nonneg("weight", a.weight);
  if (auto d = check_positive_integer(locus, "itv", a.itv)) report.diagnostics.push_back(*d);
  if (a.itv > 0 && problem.steps > 0)
    if (auto d = check_interval_within_steps(locus, a.itv, problem.steps))
      report.diagnostics.push_back(*d);
}

/// Budget cross-checks that need a consistent run section; skipped while
/// sign errors are present (garbage budgets would mis-fire them). These are
/// warnings, not errors: activation is a decision variable, so an analysis
/// whose cheapest step or activation footprint already busts a budget does
/// not make the model infeasible — the solver just proves a_i = 0 — but it
/// is dead weight the user almost certainly did not intend.
void lint_analysis_budgets(const ScheduleProblem& problem, LintReport& report) {
  const double budget = problem.time_budget();
  for (std::size_t i = 0; i < problem.analyses.size(); ++i) {
    const AnalysisParams& a = problem.analyses[i];
    const std::string locus = format("[analysis] '%s'", a.name.c_str());

    // Memory: activating the analysis at all costs fm + one step of im.
    const double activation_memory = a.fm + a.im;
    if (std::isfinite(problem.mth) && activation_memory > problem.mth)
      report.add(LintSeverity::kWarning, "memory-exceeds-budget", locus + " / fm",
                 format("activation memory fm + im = %g bytes exceeds the [run] memory "
                        "budget (%g bytes): the analysis can never be enabled",
                        activation_memory, problem.mth),
                 "raise [run] memory or shrink the analysis footprint");

    // Time: the cheapest possible schedule that runs the analysis once pays
    // setup + one compute step (+ one output under every_analysis).
    double single_step = a.ft + a.ct;
    if (problem.output_policy == OutputPolicy::kEveryAnalysis)
      single_step += problem.output_time(i);
    if (std::isfinite(budget) && single_step > budget)
      report.add(LintSeverity::kWarning, "step-cost-exceeds-budget", locus + " / ct",
                 format("a single analysis step costs %g s (ft + ct + ot) but the whole-run "
                        "analysis budget is %g s: the analysis can never run",
                        single_step, budget),
                 "raise [run] threshold or drop the analysis");

    if (a.weight == 0.0)
      report.add(LintSeverity::kWarning, "zero-weight", locus + " / weight",
                 "weight is 0: the objective ignores this analysis and the solver will "
                 "schedule it only by accident",
                 "give it a positive weight or remove it");
  }
}

void lint_analysis_relations(const ScheduleProblem& problem, LintReport& report) {
  // Duplicate names: everything downstream (reports, fixed counts, runtime
  // metrics) keys analyses by name.
  std::map<std::string, std::size_t> first_seen;
  for (std::size_t i = 0; i < problem.analyses.size(); ++i) {
    const AnalysisParams& a = problem.analyses[i];
    const auto [it, inserted] = first_seen.emplace(a.name, i);
    if (!inserted)
      report.add(LintSeverity::kWarning, "duplicate-name", analysis_locus(a, "name"),
                 format("analysis name '%s' already used by analysis #%zu", a.name.c_str(),
                        it->second),
                 "names key reports and fixed-count overrides; make them unique");
  }

  // Exact cost twins: identical resource vector and interval with no larger
  // weight — the schedule never prefers the copy, so it is dominated.
  const auto same_costs = [](const AnalysisParams& x, const AnalysisParams& y) {
    return x.ft == y.ft && x.it == y.it && x.ct == y.ct && x.ot == y.ot && x.fm == y.fm &&
           x.im == y.im && x.cm == y.cm && x.om == y.om && x.itv == y.itv;
  };
  for (std::size_t i = 0; i < problem.analyses.size(); ++i)
    for (std::size_t j = 0; j < i; ++j) {
      const AnalysisParams& a = problem.analyses[i];
      const AnalysisParams& b = problem.analyses[j];
      if (!same_costs(a, b)) continue;
      const AnalysisParams& loser = a.weight <= b.weight ? a : b;
      const AnalysisParams& keeper = a.weight <= b.weight ? b : a;
      report.add(LintSeverity::kInfo, "dominated-analysis", analysis_locus(loser, "weight"),
                 format("identical cost vector and interval as '%s' with weight %g <= %g: "
                        "a dominated duplicate",
                        keeper.name.c_str(), loser.weight, keeper.weight),
                 "merge the twins (sum their weights) to shrink the model");
      break;  // one report per analysis is enough
    }
}

void lint_numerics(const ScheduleProblem& problem, LintReport& report) {
  // Kappa-style proxy: the time budget row mixes every time coefficient and
  // the memory rows mix every memory coefficient; a huge magnitude spread
  // within either class makes the simplex fight round-off.
  std::vector<double> times, memories;
  for (std::size_t i = 0; i < problem.analyses.size(); ++i) {
    const AnalysisParams& a = problem.analyses[i];
    times.insert(times.end(), {a.ft, a.it, a.ct, problem.output_time(i)});
    memories.insert(memories.end(), {a.fm, a.im, a.cm, a.om});
  }
  const double time_range = magnitude_range(times);
  if (time_range > kRangeLimit)
    report.add(LintSeverity::kWarning, "extreme-coefficient-range", "[analysis] * / ct",
               format("time coefficients span %.1e : 1 across analyses; the budget row "
                      "will mix them and lose precision",
                      time_range),
               "rescale near-zero times to 0 or split the run");
  const double mem_range = magnitude_range(memories);
  if (mem_range > kRangeLimit)
    report.add(LintSeverity::kWarning, "extreme-coefficient-range", "[analysis] * / fm",
               format("memory coefficients span %.1e : 1 across analyses; the memory rows "
                      "will mix them and lose precision",
                      mem_range),
               "rescale near-zero footprints to 0");
}

}  // namespace

LintReport lint_problem(const ScheduleProblem& problem) {
  LintReport report;
  lint_run_section(problem, report);
  if (problem.analyses.empty())
    report.add(LintSeverity::kError, "no-analyses", "[analysis]",
               "the instance declares no analyses: nothing to schedule",
               "add at least one [analysis] section");
  for (const AnalysisParams& a : problem.analyses) lint_analysis_fields(problem, a, report);
  // Budget cross-checks assume the run section and the per-field values are
  // sane; with errors already present they would only add noise.
  if (!report.has_errors()) lint_analysis_budgets(problem, report);
  lint_analysis_relations(problem, report);
  lint_numerics(problem, report);
  return report;
}

// ---------------------------------------------------------------------------
// Generated-model lint

namespace {

std::string row_locus(const lp::Row& row, int index) {
  return row.name.empty() ? format("row #%d", index) : format("row '%s'", row.name.c_str());
}

/// Entries with zero coefficients dropped, sorted by column — the canonical
/// pattern used for duplicate detection.
std::vector<lp::RowEntry> canonical_entries(const lp::Row& row) {
  std::vector<lp::RowEntry> entries;
  for (const lp::RowEntry& e : row.entries)
    if (e.coeff != 0.0) entries.push_back(e);
  std::sort(entries.begin(), entries.end(),
            [](const lp::RowEntry& a, const lp::RowEntry& b) { return a.column < b.column; });
  return entries;
}

bool zero_violates(const lp::Row& row) {
  switch (row.type) {
    case lp::RowType::kLe: return 0.0 > row.rhs + 1e-12;
    case lp::RowType::kGe: return 0.0 < row.rhs - 1e-12;
    case lp::RowType::kEq: return std::fabs(row.rhs) > 1e-12;
  }
  return false;
}

}  // namespace

LintReport lint_model(const lp::Model& model) {
  LintReport report;
  std::map<std::pair<int, double>, std::vector<std::pair<std::vector<lp::RowEntry>, int>>>
      by_shape;  // (type, rhs) -> [(pattern, row index)]

  for (int i = 0; i < model.num_rows(); ++i) {
    const lp::Row& row = model.row(i);
    const std::vector<lp::RowEntry> entries = canonical_entries(row);
    const std::string locus = row_locus(row, i);

    if (entries.empty()) {
      if (zero_violates(row))
        report.add(LintSeverity::kError, "empty-row-infeasible", locus,
                   format("row has no nonzero coefficients but rhs %g cannot be satisfied "
                          "by an empty sum: the model is trivially infeasible",
                          row.rhs),
                   "the generator emitted a constraint over eliminated variables");
      else
        report.add(LintSeverity::kInfo, "empty-row", locus,
                   "row has no nonzero coefficients and is vacuously satisfied",
                   "drop the row; it only enlarges the basis");
      continue;
    }

    // Rows whose every column is fixed by its bounds have a constant
    // activity: either dead weight or a contradiction.
    bool all_fixed = true;
    double activity = 0.0;
    for (const lp::RowEntry& e : entries) {
      const lp::Column& col = model.column(e.column);
      if (col.lower != col.upper) {
        all_fixed = false;
        break;
      }
      activity += e.coeff * col.lower;
    }
    if (all_fixed) {
      const bool violated = (row.type == lp::RowType::kLe && activity > row.rhs + 1e-9) ||
                            (row.type == lp::RowType::kGe && activity < row.rhs - 1e-9) ||
                            (row.type == lp::RowType::kEq &&
                             std::fabs(activity - row.rhs) > 1e-9);
      if (violated)
        report.add(LintSeverity::kError, "fixed-row-infeasible", locus,
                   format("every column in the row is fixed; activity %g violates rhs %g",
                          activity, row.rhs),
                   "the fixed bounds contradict the constraint");
      else
        report.add(LintSeverity::kInfo, "fixed-row", locus,
                   format("every column in the row is fixed; activity is constant %g",
                          activity),
                   "presolve can delete the row");
    } else if (entries.size() == 1) {
      report.add(LintSeverity::kInfo, "singleton-row", locus,
                 format("row constrains the single column '%s': it is a bound in disguise",
                        model.column(entries.front().column).name.c_str()),
                 "fold it into the column bounds to shrink the basis");
    }

    std::vector<double> magnitudes;
    magnitudes.reserve(entries.size());
    for (const lp::RowEntry& e : entries) magnitudes.push_back(e.coeff);
    const double range = magnitude_range(magnitudes);
    if (range > kRangeLimit)
      report.add(LintSeverity::kWarning, "row-coefficient-range", locus,
                 format("coefficient magnitudes span %.1e : 1 within one row; pivots on the "
                        "small entries will amplify round-off",
                        range),
                 "rescale the row or the offending columns");

    auto& bucket = by_shape[{static_cast<int>(row.type), row.rhs}];
    bool duplicate = false;
    for (const auto& [pattern, other] : bucket) {
      if (pattern.size() != entries.size()) continue;
      bool same = true;
      for (std::size_t k = 0; k < entries.size(); ++k)
        if (pattern[k].column != entries[k].column || pattern[k].coeff != entries[k].coeff) {
          same = false;
          break;
        }
      if (same) {
        report.add(LintSeverity::kInfo, "duplicate-row", locus,
                   format("identical to %s (same type, rhs and coefficients)",
                          row_locus(model.row(other), other).c_str()),
                   "drop one copy; duplicate rows create degenerate bases");
        duplicate = true;
        break;
      }
    }
    if (!duplicate) bucket.emplace_back(entries, i);
  }
  return report;
}

}  // namespace insched::scheduler
