#include "insched/scheduler/coanalysis.hpp"

#include <cmath>
#include <stdexcept>

#include "insched/lp/model.hpp"
#include "insched/scheduler/placement.hpp"
#include "insched/support/assert.hpp"
#include "insched/support/string_util.hpp"

namespace insched::scheduler {

double CoanalysisProblem::transfer_time(std::size_t i) const {
  INSCHED_EXPECTS(i < remote.size());
  if (!(network_bw > 0.0) || remote[i].transfer_bytes <= 0.0) return 0.0;
  const double raw = remote[i].transfer_bytes / network_bw;
  return raw * (1.0 - transfer_overlap);
}

void CoanalysisProblem::validate() const {
  base.validate();
  if (remote.size() != base.analyses.size())
    throw std::invalid_argument("CoanalysisProblem: remote params size mismatch");
  if (base.output_policy != OutputPolicy::kEveryAnalysis)
    throw std::invalid_argument("CoanalysisProblem: only kEveryAnalysis is supported");
  if (transfer_overlap < 0.0 || transfer_overlap >= 1.0)
    throw std::invalid_argument("CoanalysisProblem: transfer_overlap must be in [0, 1)");
  for (const StagingParams& r : remote) {
    if (r.transfer_bytes < 0.0 || r.stage_ct < 0.0 || r.stage_mem < 0.0)
      throw std::invalid_argument("CoanalysisProblem: negative staging parameter");
  }
}

const char* to_string(ExecutionMode mode) noexcept {
  switch (mode) {
    case ExecutionMode::kSkipped: return "skipped";
    case ExecutionMode::kInsitu: return "in-situ";
    case ExecutionMode::kStaging: return "staging";
  }
  return "?";
}

CoanalysisSolution solve_coanalysis(const CoanalysisProblem& problem,
                                    const mip::MipOptions& options) {
  problem.validate();
  const std::size_t n = problem.base.size();
  const long steps = problem.base.steps;

  lp::Model m;
  m.set_sense(lp::Sense::kMaximize);

  // Per analysis: mode binaries s_i (in-situ), g_i (staging); counts per
  // mode cs_i, cg_i.
  std::vector<int> s_var(n), g_var(n), cs_var(n), cg_var(n);
  for (std::size_t i = 0; i < n; ++i) {
    const AnalysisParams& a = problem.base.analyses[i];
    const long maxc = problem.base.max_analysis_steps(i);
    s_var[i] = m.add_column(format("s_%s", a.name.c_str()), 0, 1, 1.0, lp::VarType::kBinary);
    g_var[i] = m.add_column(format("g_%s", a.name.c_str()), 0, 1, 1.0, lp::VarType::kBinary);
    cs_var[i] = m.add_column(format("cs_%s", a.name.c_str()), 0, static_cast<double>(maxc),
                             a.weight, lp::VarType::kInteger);
    cg_var[i] = m.add_column(format("cg_%s", a.name.c_str()), 0, static_cast<double>(maxc),
                             a.weight, lp::VarType::kInteger);

    // One mode at most; counts live only in the chosen mode, active modes
    // perform at least one step.
    m.add_row(format("mode_%s", a.name.c_str()), lp::RowType::kLe, 1.0,
              {{s_var[i], 1.0}, {g_var[i], 1.0}});
    m.add_row(format("cs_hi_%s", a.name.c_str()), lp::RowType::kLe, 0.0,
              {{cs_var[i], 1.0}, {s_var[i], -static_cast<double>(maxc)}});
    m.add_row(format("cs_lo_%s", a.name.c_str()), lp::RowType::kGe, 0.0,
              {{cs_var[i], 1.0}, {s_var[i], -1.0}});
    m.add_row(format("cg_hi_%s", a.name.c_str()), lp::RowType::kLe, 0.0,
              {{cg_var[i], 1.0}, {g_var[i], -static_cast<double>(maxc)}});
    m.add_row(format("cg_lo_%s", a.name.c_str()), lp::RowType::kGe, 0.0,
              {{cg_var[i], 1.0}, {g_var[i], -1.0}});
  }

  // Simulation-side time budget: in-situ costs plus visible transfer time.
  // An epsilon objective penalty on simulation-side time breaks mode ties in
  // favor of the cheaper placement (too small to ever flip a count or
  // activation decision: the total penalty is <= kTieBreak).
  constexpr double kTieBreak = 1e-4;
  const double budget = problem.base.time_budget();
  const double tie_scale = budget > 0.0 ? kTieBreak / budget : 0.0;
  {
    std::vector<lp::RowEntry> entries;
    for (std::size_t i = 0; i < n; ++i) {
      const AnalysisParams& a = problem.base.analyses[i];
      const double fixed = a.ft + a.it * static_cast<double>(steps);
      if (fixed > 0.0) entries.push_back({s_var[i], fixed});
      const double per_step = a.ct + problem.base.output_time(i);
      if (per_step > 0.0) entries.push_back({cs_var[i], per_step});
      const double tx = problem.transfer_time(i);
      if (tx > 0.0) entries.push_back({cg_var[i], tx});
      // Tie-break penalties (maximization: subtract).
      m.set_objective(s_var[i], 1.0 - tie_scale * fixed);
      m.set_objective(cs_var[i], a.weight - tie_scale * per_step);
      m.set_objective(cg_var[i], a.weight - tie_scale * tx);
    }
    m.add_row("sim_time_budget", lp::RowType::kLe, budget, std::move(entries));
  }

  // Staging compute capacity.
  if (std::isfinite(problem.stage_capacity_seconds)) {
    std::vector<lp::RowEntry> entries;
    for (std::size_t i = 0; i < n; ++i) {
      if (problem.remote[i].stage_ct > 0.0)
        entries.push_back({cg_var[i], problem.remote[i].stage_ct});
    }
    if (!entries.empty())
      m.add_row("stage_capacity", lp::RowType::kLe, problem.stage_capacity_seconds,
                std::move(entries));
  }

  // Staging memory.
  if (std::isfinite(problem.stage_memory)) {
    std::vector<lp::RowEntry> entries;
    for (std::size_t i = 0; i < n; ++i) {
      if (problem.remote[i].stage_mem > 0.0)
        entries.push_back({g_var[i], problem.remote[i].stage_mem});
    }
    if (!entries.empty())
      m.add_row("stage_memory", lp::RowType::kLe, problem.stage_memory, std::move(entries));
  }

  // Simulation-side memory: with outputs at every in-situ analysis step the
  // reset window holds one analysis (cm once); im accumulates between steps.
  if (std::isfinite(problem.base.mth)) {
    std::vector<lp::RowEntry> entries;
    for (std::size_t i = 0; i < n; ++i) {
      const AnalysisParams& a = problem.base.analyses[i];
      // Worst window when in-situ: the interval between analysis steps can
      // be as long as Steps (c = 1).
      const double peak = a.fm + a.im * static_cast<double>(steps) + a.cm + a.om;
      if (peak > 0.0) entries.push_back({s_var[i], peak});
    }
    if (!entries.empty())
      m.add_row("sim_memory", lp::RowType::kLe, problem.base.mth, std::move(entries));
  }

  const mip::MipResult res = mip::solve_mip(m, options);
  CoanalysisSolution out;
  out.solver_seconds = res.solve_seconds;
  out.nodes = res.nodes;
  if (!res.has_solution) return out;
  out.solved = true;
  out.proven_optimal = res.optimal();

  out.modes.assign(n, ExecutionMode::kSkipped);
  out.frequencies.assign(n, 0);
  PlacementRequest request;
  request.analysis_counts.assign(n, 0);
  request.output_counts.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const long cs = std::lround(res.x[static_cast<std::size_t>(cs_var[i])]);
    const long cg = std::lround(res.x[static_cast<std::size_t>(cg_var[i])]);
    if (cs > 0) {
      out.modes[i] = ExecutionMode::kInsitu;
      out.frequencies[i] = cs;
      out.sim_side_seconds +=
          problem.base.analyses[i].ft +
          problem.base.analyses[i].it * static_cast<double>(steps) +
          static_cast<double>(cs) *
              (problem.base.analyses[i].ct + problem.base.output_time(i));
    } else if (cg > 0) {
      out.modes[i] = ExecutionMode::kStaging;
      out.frequencies[i] = cg;
      out.sim_side_seconds += static_cast<double>(cg) * problem.transfer_time(i);
      out.staging_seconds += static_cast<double>(cg) * problem.remote[i].stage_ct;
      out.network_bytes += static_cast<double>(cg) * problem.remote[i].transfer_bytes;
    }
    request.analysis_counts[i] = out.frequencies[i];
    request.output_counts[i] =
        out.modes[i] == ExecutionMode::kInsitu ? out.frequencies[i] : 0;
  }
  out.schedule = place(problem.base, request);
  // Report the paper's Eq-1 objective (without the tie-break epsilon).
  for (std::size_t i = 0; i < n; ++i) {
    if (out.modes[i] != ExecutionMode::kSkipped)
      out.objective += 1.0 + problem.base.analyses[i].weight *
                                 static_cast<double>(out.frequencies[i]);
  }
  return out;
}

}  // namespace insched::scheduler
