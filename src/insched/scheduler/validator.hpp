#pragma once

// Exact replay of the paper's constraints (Eqs 2-9) for a concrete schedule.
// This is the ground truth the MILP formulations and the runtime are tested
// against: it walks every simulation step and evaluates the tAnalyze and
// mStart/mEnd recurrences literally.

#include <string>
#include <vector>

#include "insched/scheduler/params.hpp"
#include "insched/scheduler/schedule.hpp"

namespace insched::scheduler {

/// Per-analysis cumulative time breakdown (tAnalyze_{i,Steps} decomposed).
struct TimeBreakdown {
  std::string name;
  double setup = 0.0;     ///< ft (once, when active)
  double per_step = 0.0;  ///< it * Steps (when active)
  double compute = 0.0;   ///< ct * |C_i|
  double output = 0.0;    ///< ot * |O_i|
  [[nodiscard]] double total() const noexcept { return setup + per_step + compute + output; }
  /// The part a user observes as "analysis time" in the paper's tables
  /// (compute + output, excluding one-time setup and facilitation).
  [[nodiscard]] double visible() const noexcept { return compute + output; }
};

struct ValidationReport {
  bool feasible = false;
  std::vector<std::string> violations;

  double total_analysis_time = 0.0;  ///< sum_i tAnalyze_{i,Steps}   (Eq 4 LHS)
  double time_budget = 0.0;          ///< cth * Steps                (Eq 4 RHS)
  double peak_memory = 0.0;          ///< max_j sum_i mStart_{i,j}   (Eq 8 LHS)
  long peak_memory_step = 0;
  double memory_budget = 0.0;        ///< mth
  std::vector<TimeBreakdown> breakdown;

  /// Fraction of the allowed analysis time actually used ("% within
  /// threshold" in Tables 5 and 6).
  [[nodiscard]] double utilization() const noexcept {
    return time_budget > 0.0 ? total_analysis_time / time_budget : 0.0;
  }
};

/// Validates `schedule` against `problem`. The report is returned even when
/// infeasible; `violations` lists each violated constraint with context.
[[nodiscard]] ValidationReport validate_schedule(const ScheduleProblem& problem,
                                                 const Schedule& schedule);

}  // namespace insched::scheduler
