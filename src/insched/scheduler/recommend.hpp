#pragma once

// User-facing what-if facade covering the paper's usage scenarios:
//   - recommend():            one-shot recommendation (Section 3.2 solution)
//   - threshold_sweep():      threshold as % of simulation time   (Table 5)
//   - total_threshold_sweep():absolute time budgets               (Table 6)
//   - output_tradeoff():      simulation-output frequency trade   (Table 7)
//   - strong_scaling():       moldable-job advisor                (Figure 5)

#include <string>
#include <vector>

#include "insched/scheduler/solver.hpp"

namespace insched::scheduler {

struct Recommendation {
  ScheduleSolution solution;
  std::string summary;  ///< printable multi-line description of the advice
};

[[nodiscard]] Recommendation recommend(const ScheduleProblem& problem,
                                       const SolveOptions& options = {});

/// One row of a sweep: the varied budget plus the recommended frequencies.
struct SweepRow {
  double threshold_value = 0.0;   ///< fraction or seconds, as given
  double budget_seconds = 0.0;    ///< resolved absolute budget
  std::vector<long> frequencies;
  double analyses_time = 0.0;     ///< visible analysis time of the schedule
  double utilization = 0.0;       ///< analyses_time / budget ("% within threshold")
  double solver_seconds = 0.0;
};

/// Table 5: vary the threshold as a fraction of total simulation time.
[[nodiscard]] std::vector<SweepRow> threshold_sweep(ScheduleProblem problem,
                                                    const std::vector<double>& fractions,
                                                    const SolveOptions& options = {});

/// Table 6: vary an absolute whole-run budget in seconds.
[[nodiscard]] std::vector<SweepRow> total_threshold_sweep(ScheduleProblem problem,
                                                          const std::vector<double>& budgets,
                                                          const SolveOptions& options = {});

/// Table 7: reduce the *simulation* output frequency; the saved I/O time is
/// granted to the analyses on top of `base_budget_seconds`.
struct OutputTradeRow {
  long sim_output_steps = 0;     ///< simulation outputs during the run
  double output_seconds = 0.0;   ///< time those outputs cost (bytes/bw)
  double threshold_seconds = 0.0;///< resulting analysis budget
  long total_analyses = 0;       ///< sum of recommended frequencies
  std::vector<long> frequencies;
};

[[nodiscard]] std::vector<OutputTradeRow> output_tradeoff(
    ScheduleProblem problem, double sim_output_bytes_per_step, double write_bw,
    long base_output_steps, double base_budget_seconds,
    const std::vector<long>& output_step_choices, const SolveOptions& options = {});

/// Figure 5: one problem instance per machine scale (strong scaling). Each
/// entry provides the per-scale simulation time and analysis costs.
struct ScalePoint {
  long processes = 0;
  ScheduleProblem problem;  ///< fully specified at this scale
};

struct ScalingRow {
  long processes = 0;
  std::vector<long> frequencies;
  std::vector<double> per_analysis_seconds;  ///< visible time per analysis
  double budget_seconds = 0.0;
};

[[nodiscard]] std::vector<ScalingRow> strong_scaling(const std::vector<ScalePoint>& scales,
                                                     const SolveOptions& options = {});

/// Marginal value of overhead: solves across a geometric ladder of budgets
/// and returns the (budget, objective, frequencies) frontier, deduplicated
/// to the points where the objective actually changes. Science teams use
/// this to pick the overhead they are willing to pay.
struct ParetoPoint {
  double budget_seconds = 0.0;
  double objective = 0.0;
  std::vector<long> frequencies;
};

[[nodiscard]] std::vector<ParetoPoint> pareto_frontier(ScheduleProblem problem,
                                                       double min_budget, double max_budget,
                                                       int samples = 24,
                                                       const SolveOptions& options = {});

}  // namespace insched::scheduler
