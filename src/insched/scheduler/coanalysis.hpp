#pragma once

// Co-analysis (in-transit) extension — the paper's stated future work
// ("optimally schedule the analyses computations on different resources.
// This requires transferring huge data"). Each analysis may now run:
//   - in-situ:   on the simulation resource, Table-1 costs as before;
//   - staging:   on dedicated staging nodes — the simulation only pays the
//                (partially overlappable) data transfer per analysis step,
//                while compute and memory land on the staging resource;
//   - not at all.
// The MILP picks the mode, the frequency and the staging load subject to the
// simulation-side time budget, both memory budgets, the network, and the
// staging-compute capacity (staging must keep pace with the run).
//
// Restricted to OutputPolicy::kEveryAnalysis (the common production mode);
// in-situ memory then resets at each analysis step, so per-analysis peaks
// are exact.

#include <vector>

#include "insched/mip/branch_and_bound.hpp"
#include "insched/scheduler/params.hpp"
#include "insched/scheduler/schedule.hpp"

namespace insched::scheduler {

/// Per-analysis costs of running on the staging side.
struct StagingParams {
  double transfer_bytes = 0.0;  ///< data shipped per analysis step
  double stage_ct = 0.0;        ///< staging compute seconds per analysis step
  double stage_mem = 0.0;       ///< resident staging memory while active
};

struct CoanalysisProblem {
  ScheduleProblem base;               ///< in-situ costs, budgets, itv, weights
  std::vector<StagingParams> remote;  ///< parallel to base.analyses
  double network_bw = kNoLimit;       ///< simulation -> staging bytes/s
  double transfer_overlap = 0.0;      ///< fraction of transfer hidden behind
                                      ///< the simulation (0 = fully blocking)
  double stage_capacity_seconds = kNoLimit;  ///< total staging compute budget
  double stage_memory = kNoLimit;            ///< staging memory budget

  /// Simulation-visible seconds per staged analysis step of analysis i.
  [[nodiscard]] double transfer_time(std::size_t i) const;

  void validate() const;
};

enum class ExecutionMode { kSkipped, kInsitu, kStaging };

[[nodiscard]] const char* to_string(ExecutionMode mode) noexcept;

struct CoanalysisSolution {
  bool solved = false;
  bool proven_optimal = false;
  double objective = 0.0;
  std::vector<ExecutionMode> modes;
  std::vector<long> frequencies;
  Schedule schedule;             ///< analysis steps for both modes (staged
                                 ///< steps are where transfers happen)
  double sim_side_seconds = 0.0;     ///< in-situ time + visible transfer time
  double staging_seconds = 0.0;      ///< staging compute consumed
  double network_bytes = 0.0;        ///< total data shipped
  double solver_seconds = 0.0;
  long nodes = 0;
};

[[nodiscard]] CoanalysisSolution solve_coanalysis(const CoanalysisProblem& problem,
                                                  const mip::MipOptions& options = {});

}  // namespace insched::scheduler
