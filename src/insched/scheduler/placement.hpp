#pragma once

// Turns per-analysis counts (|C_i| analysis steps, |O_i| output steps) into a
// concrete schedule on the timeline: analysis steps are spaced evenly (the
// paper's recommended frequencies are periodic, e.g. "every 100 steps"),
// outputs are spread evenly over the analysis steps and always include the
// last one so memory is flushed near the end of the run. Different analyses
// are staggered within their slack to avoid coincident memory peaks.

#include <vector>

#include "insched/scheduler/params.hpp"
#include "insched/scheduler/schedule.hpp"

namespace insched::scheduler {

struct PlacementRequest {
  std::vector<long> analysis_counts;  ///< desired |C_i| per analysis
  std::vector<long> output_counts;    ///< desired |O_i| per analysis (<= |C_i|)
};

/// Places counts onto the timeline. Preconditions: counts within
/// [0, Steps/itv_i] and output_counts[i] <= analysis_counts[i].
[[nodiscard]] Schedule place(const ScheduleProblem& problem, const PlacementRequest& request);

}  // namespace insched::scheduler
