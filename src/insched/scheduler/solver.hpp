#pragma once

// InsituScheduler — the library's main entry point. Builds the MILP for a
// ScheduleProblem (aggregate by default, time-expanded on request), solves it
// with the branch-and-bound engine, places the recommended counts on the
// timeline, and validates the resulting schedule against the exact Eqs 2-9.

#include "insched/mip/branch_and_bound.hpp"
#include "insched/scheduler/params.hpp"
#include "insched/scheduler/schedule.hpp"
#include "insched/scheduler/validator.hpp"

namespace insched::scheduler {

enum class Formulation {
  kAggregate,     ///< count-based (default; scales to Steps = 10^3 and beyond)
  kTimeExpanded,  ///< the paper's per-step 0-1 program (exact oracle, small Steps)
};

/// How importance weights enter the optimization (the paper says "a higher
/// weight implies more importance"; both readings are provided):
enum class WeightMode {
  kWeightedSum,    ///< Eq 1 verbatim: maximize |A| + sum w_i |C_i|
  kLexicographic,  ///< strict priority tiers by descending weight: maximize
                   ///< higher-weight analyses first, then lower tiers with
                   ///< the leftover budget (reproduces Table 8's behaviour)
};

struct SolveOptions {
  Formulation formulation = Formulation::kAggregate;
  WeightMode weight_mode = WeightMode::kWeightedSum;
  mip::MipOptions mip;
  bool run_validation = true;
};

struct ScheduleSolution {
  bool solved = false;       ///< a feasible schedule was found
  bool proven_optimal = false;
  Schedule schedule;
  std::vector<long> frequencies;    ///< |C_i| per analysis (paper-table rows)
  std::vector<long> output_counts;  ///< |O_i| per analysis
  double objective = 0.0;           ///< |A| + sum w_i |C_i|
  double solver_seconds = 0.0;
  long nodes = 0;
  long lp_iterations = 0;
  ValidationReport validation;      ///< filled when run_validation
  lp::SolveStatus status = lp::SolveStatus::kNumericalFailure;
  /// Why the (final) MIP solve stopped; lexicographic solves report the last
  /// tier's termination but accumulate nodes/iterations/counters over all.
  mip::MipTermination termination = mip::MipTermination::kNumericalFailure;
  mip::MipCounters mip_counters;    ///< warm/cold solves, steals, ... summed over tiers
};

[[nodiscard]] ScheduleSolution solve_schedule(const ScheduleProblem& problem,
                                              const SolveOptions& options = {});

}  // namespace insched::scheduler
