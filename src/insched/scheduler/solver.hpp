#pragma once

// InsituScheduler — the library's main entry point. Builds the MILP for a
// ScheduleProblem (aggregate by default, time-expanded on request), solves it
// with the branch-and-bound engine, places the recommended counts on the
// timeline, and validates the resulting schedule against the exact Eqs 2-9.
//
// Failure handling (docs/ROBUSTNESS.md): every exit is classified into a
// FailureClass and reported in ScheduleSolution::diagnostics. When the MILP
// cannot deliver a validated schedule — blown time budget, node/work limit
// without an incumbent, numerical collapse, or a validation failure that
// survives the tightened re-solves — solve_schedule degrades to the greedy
// heuristic (greedy.hpp) instead of asserting or returning nothing: the
// caller always gets a feasible schedule, flagged `degraded`, unless
// `fallback_to_greedy` is disabled.

#include <string>

#include "insched/mip/branch_and_bound.hpp"
#include "insched/scheduler/params.hpp"
#include "insched/scheduler/schedule.hpp"
#include "insched/scheduler/validator.hpp"

namespace insched::scheduler {

enum class Formulation {
  kAggregate,     ///< count-based (default; scales to Steps = 10^3 and beyond)
  kTimeExpanded,  ///< the paper's per-step 0-1 program (exact oracle, small Steps)
};

/// How importance weights enter the optimization (the paper says "a higher
/// weight implies more importance"; both readings are provided):
enum class WeightMode {
  kWeightedSum,    ///< Eq 1 verbatim: maximize |A| + sum w_i |C_i|
  kLexicographic,  ///< strict priority tiers by descending weight: maximize
                   ///< higher-weight analyses first, then lower tiers with
                   ///< the leftover budget (reproduces Table 8's behaviour)
};

struct SolveOptions {
  Formulation formulation = Formulation::kAggregate;
  WeightMode weight_mode = WeightMode::kWeightedSum;
  mip::MipOptions mip;
  bool run_validation = true;
  /// Degrade to the greedy schedule (flagged in diagnostics) when the MILP
  /// fails outright or its schedule cannot be validated. Off: failures are
  /// reported as `solved == false` with the failure class filled in.
  bool fallback_to_greedy = true;
};

/// Coarse taxonomy of why a solve fell short of a proven-optimal, validated
/// schedule (docs/ROBUSTNESS.md).
enum class FailureClass {
  kNone,              ///< clean solve
  kInfeasibleModel,   ///< the MILP itself is infeasible
  kTimeLimit,         ///< wall-clock budget exhausted
  kNodeLimit,         ///< node budget exhausted without an incumbent
  kWorkLimit,         ///< LP-iteration budget exhausted without an incumbent
  kNumerical,         ///< solver numerical failure after all recovery rungs
  kValidationFailed,  ///< MILP schedule kept failing the exact Eq 2-9 check
};

[[nodiscard]] const char* to_string(FailureClass failure) noexcept;

/// Structured failure/recovery report attached to every ScheduleSolution.
struct SolveDiagnostics {
  FailureClass failure = FailureClass::kNone;
  bool degraded = false;      ///< schedule came from the greedy fallback
  int resolve_attempts = 0;   ///< validation-driven tightened re-solves
  double gap_abs = 0.0;       ///< |bound - incumbent| of the final MIP solve
  double gap_rel = 0.0;       ///< gap_abs / max(1, |objective|)
  long recoveries = 0;        ///< MipCounters::recoveries() summed over tiers
  std::string message;        ///< one-line human-readable explanation
};

struct ScheduleSolution {
  bool solved = false;       ///< a feasible schedule was found
  bool proven_optimal = false;
  /// True when `schedule` is the greedy fallback, not a MILP optimum
  /// (mirrors diagnostics.degraded for quick checks).
  bool degraded = false;
  Schedule schedule;
  std::vector<long> frequencies;    ///< |C_i| per analysis (paper-table rows)
  std::vector<long> output_counts;  ///< |O_i| per analysis
  double objective = 0.0;           ///< |A| + sum w_i |C_i|
  double solver_seconds = 0.0;
  long nodes = 0;
  long lp_iterations = 0;
  ValidationReport validation;      ///< filled when run_validation
  lp::SolveStatus status = lp::SolveStatus::kNumericalFailure;
  /// Why the (final) MIP solve stopped; lexicographic solves report the last
  /// tier's termination but accumulate nodes/iterations/counters over all.
  mip::MipTermination termination = mip::MipTermination::kNumericalFailure;
  mip::MipCounters mip_counters;    ///< warm/cold solves, steals, ... summed over tiers
  SolveDiagnostics diagnostics;     ///< failure taxonomy + recovery counters
};

[[nodiscard]] ScheduleSolution solve_schedule(const ScheduleProblem& problem,
                                              const SolveOptions& options = {});

}  // namespace insched::scheduler
