#pragma once

// Reads a ScheduleProblem from the INI-style planner config and writes one
// back (round-trippable). This is the surface the `insched_plan` CLI and
// batch tooling use:
//
//   [run]
//   steps = 1000
//   sim_time_per_step = 0.64678 s
//   threshold = 10 %            ; or "43.5 s" with kind = total
//   threshold_kind = fraction   ; fraction | total | per_step
//   memory = 4 TiB
//   bandwidth = 4.54 GB
//   output_policy = every_analysis   ; every_analysis | optimized | none
//
//   [analysis]
//   name = msd
//   ct = 20 s
//   ot = 5.34 s
//   ft = 1 s
//   fm = 2.4 GB
//   itv = 100
//   weight = 1

#include <string>

#include "insched/scheduler/coanalysis.hpp"
#include "insched/scheduler/params.hpp"
#include "insched/support/config.hpp"

namespace insched::scheduler {

/// Builds a problem from a parsed config; throws std::runtime_error on
/// missing/invalid fields (and runs ScheduleProblem::validate()).
[[nodiscard]] ScheduleProblem problem_from_config(const Config& config);

/// Convenience: parse text then build.
[[nodiscard]] ScheduleProblem problem_from_string(const std::string& text);

/// Lenient variant for the linter (insched_lint): value-level violations are
/// left in the returned problem for lint_problem() to report instead of
/// throwing. Structural problems — missing [run], no [analysis] sections,
/// unnamed analyses, unknown enum text — still throw, since no meaningful
/// problem can be built from them.
[[nodiscard]] ScheduleProblem problem_from_config_lenient(const Config& config);

/// Serializes a problem to config text that problem_from_config() accepts.
[[nodiscard]] std::string problem_to_config(const ScheduleProblem& problem);

/// Builds a hybrid in-situ / in-transit problem. Requires a [staging]
/// section (network_bw, capacity, memory, optional transfer_overlap) and,
/// per analysis, optional staging keys (transfer_bytes, stage_ct, stage_mem):
///
///   [staging]
///   network_bw = 16 GB
///   capacity = 870 s
///   memory = 1 TiB
///
///   [analysis]
///   name = vorticity
///   ct = 8.15 s
///   transfer_bytes = 40 GB
///   stage_ct = 60 s
///   stage_mem = 48 GiB
[[nodiscard]] CoanalysisProblem coanalysis_from_config(const Config& config);

/// True when the config carries a [staging] section.
[[nodiscard]] bool has_staging_section(const Config& config);

}  // namespace insched::scheduler
