#pragma once

// Sensitivity analysis on the scheduling problem: how much would one more
// second of analysis budget (or one more byte of memory) buy? Computed from
// the LP relaxation's duals of the aggregate model — the shadow prices the
// paper's "flexibility to the user" discussion implies — plus finite
// differences of the integer optimum for the exact marginal counts.

#include <vector>

#include "insched/scheduler/params.hpp"
#include "insched/scheduler/solver.hpp"

namespace insched::scheduler {

struct SensitivityReport {
  // LP shadow prices (relaxation): objective gain per unit of extra budget.
  double time_shadow_price = 0.0;    ///< per second of analysis budget
  double memory_shadow_price = 0.0;  ///< per byte of memory budget (0 if slack)
  bool time_constraint_binding = false;
  bool memory_constraint_binding = false;

  // Exact finite differences of the integer optimum.
  double objective = 0.0;            ///< optimum at the given budget
  double objective_plus = 0.0;       ///< optimum with budget * (1 + delta)
  double objective_minus = 0.0;      ///< optimum with budget * (1 - delta)
  double budget_delta_seconds = 0.0; ///< the absolute step used

  /// Smallest extra budget (seconds) that increases the integer optimum, up
  /// to `max_extra`; negative if no improvement was found in range.
  double next_improvement_seconds = -1.0;
};

struct SensitivityOptions {
  double relative_delta = 0.05;  ///< finite-difference step as budget fraction
  double max_extra_fraction = 1.0;  ///< search range for next_improvement
  SolveOptions solve;
};

[[nodiscard]] SensitivityReport analyze_sensitivity(const ScheduleProblem& problem,
                                                    const SensitivityOptions& options = {});

}  // namespace insched::scheduler
