#include "insched/scheduler/greedy.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "insched/scheduler/placement.hpp"
#include "insched/support/assert.hpp"

namespace insched::scheduler {

Schedule fixed_frequency(const ScheduleProblem& problem, long interval) {
  INSCHED_EXPECTS(interval >= 1);
  PlacementRequest req;
  const std::size_t n = problem.size();
  req.analysis_counts.assign(n, 0);
  req.output_counts.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const long eff = std::max(interval, problem.analyses[i].itv);
    const long count = problem.steps / eff;
    req.analysis_counts[i] = count;
    req.output_counts[i] = problem.output_policy == OutputPolicy::kNone ? 0 : count;
  }
  return place(problem, req);
}

Schedule greedy_schedule(const ScheduleProblem& problem) {
  problem.validate();
  const std::size_t n = problem.size();
  PlacementRequest req;
  req.analysis_counts.assign(n, 0);
  req.output_counts.assign(n, 0);

  const double budget = problem.time_budget();
  double used = 0.0;
  double mem_used = 0.0;
  std::vector<bool> active(n, false);

  // Marginal cost of one more analysis step (first step also pays the
  // activation costs ft + it*Steps).
  const auto step_cost = [&](std::size_t i, bool first) {
    const AnalysisParams& p = problem.analyses[i];
    double cost = p.ct;
    if (problem.output_policy == OutputPolicy::kEveryAnalysis)
      cost += problem.output_time(i);
    if (first) {
      cost += p.ft + p.it * static_cast<double>(problem.steps);
      if (problem.output_policy == OutputPolicy::kOptimized)
        cost += problem.output_time(i);  // the single end-of-run flush
    }
    return cost;
  };
  // Conservative per-analysis memory footprint once activated (one output at
  // the end; everything before accumulates).
  const auto mem_cost = [&](std::size_t i) {
    const AnalysisParams& p = problem.analyses[i];
    double peak = p.fm + p.im * static_cast<double>(problem.steps) + p.cm;
    if (problem.output_policy != OutputPolicy::kNone) peak += p.om;
    return peak;
  };

  while (true) {
    std::size_t best = n;
    double best_ratio = -1.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (req.analysis_counts[i] >= problem.max_analysis_steps(i)) continue;
      const bool first = !active[i];
      const double cost = step_cost(i, first);
      if (used + cost > budget * (1.0 + 1e-12)) continue;
      if (first && std::isfinite(problem.mth) && mem_used + mem_cost(i) > problem.mth)
        continue;
      // Gain: weight per step, plus the |A| bonus on activation.
      const double gain = problem.analyses[i].weight + (first ? 1.0 : 0.0);
      const double ratio = cost > 0.0 ? gain / cost : std::numeric_limits<double>::infinity();
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best = i;
      }
    }
    if (best == n) break;
    const bool first = !active[best];
    used += step_cost(best, first);
    if (first) {
      mem_used += mem_cost(best);
      active[best] = true;
    }
    ++req.analysis_counts[best];
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (problem.output_policy == OutputPolicy::kEveryAnalysis) {
      req.output_counts[i] = req.analysis_counts[i];
    } else if (problem.output_policy == OutputPolicy::kOptimized) {
      req.output_counts[i] = req.analysis_counts[i] > 0 ? 1 : 0;  // flush once
    }
  }
  return place(problem, req);
}

}  // namespace insched::scheduler
