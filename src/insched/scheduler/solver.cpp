#include "insched/scheduler/solver.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <optional>
#include <string>
#include <utility>

#include "insched/scheduler/aggregate_milp.hpp"
#include "insched/scheduler/greedy.hpp"
#include "insched/scheduler/placement.hpp"
#include "insched/scheduler/timeexp_milp.hpp"
#include "insched/support/assert.hpp"
#include "insched/support/log.hpp"

namespace insched::scheduler {

const char* to_string(FailureClass failure) noexcept {
  switch (failure) {
    case FailureClass::kNone: return "none";
    case FailureClass::kInfeasibleModel: return "infeasible_model";
    case FailureClass::kTimeLimit: return "time_limit";
    case FailureClass::kNodeLimit: return "node_limit";
    case FailureClass::kWorkLimit: return "work_limit";
    case FailureClass::kNumerical: return "numerical";
    case FailureClass::kValidationFailed: return "validation_failed";
  }
  return "unknown";
}

namespace {

void add_counters(mip::MipCounters* into, const mip::MipCounters& c) {
  into->warm_solves += c.warm_solves;
  into->cold_solves += c.cold_solves;
  into->warm_failures += c.warm_failures;
  into->steals += c.steals;
  into->factor_hits += c.factor_hits;
  into->factor_misses += c.factor_misses;
  into->pc_merges += c.pc_merges;
  into->heur_warm += c.heur_warm;
  into->heur_warm_failed += c.heur_warm_failed;
  into->cuts_separated += c.cuts_separated;
  into->cuts_applied += c.cuts_applied;
  into->cuts_aged += c.cuts_aged;
  into->cuts_duplicate += c.cuts_duplicate;
  into->tree_restarts += c.tree_restarts;
  into->probing_probes += c.probing_probes;
  into->probing_fixed += c.probing_fixed;
  into->probing_aggregated += c.probing_aggregated;
  into->probing_implications += c.probing_implications;
  into->probing_tightened += c.probing_tightened;
  into->strong_branch_lps += c.strong_branch_lps;
  into->lp_ftran += c.lp_ftran;
  into->lp_btran += c.lp_btran;
  into->lp_refactorizations += c.lp_refactorizations;
  into->lp_eta_pivots += c.lp_eta_pivots;
  into->lp_rhs_nonzeros += c.lp_rhs_nonzeros;
  into->lp_rhs_dimension += c.lp_rhs_dimension;
  into->cuts_evicted += c.cuts_evicted;
  into->lp_recover_refactor += c.lp_recover_refactor;
  into->lp_recover_repair += c.lp_recover_repair;
  into->lp_recover_perturb += c.lp_recover_perturb;
  into->lp_recover_residual += c.lp_recover_residual;
  into->lp_recover_resolve += c.lp_recover_resolve;
  into->node_retries += c.node_retries;
  into->root_retries += c.root_retries;
  into->factor_cache_peak_bytes =
      std::max(into->factor_cache_peak_bytes, c.factor_cache_peak_bytes);
  into->factor_cache_peak_dense_bytes =
      std::max(into->factor_cache_peak_dense_bytes, c.factor_cache_peak_dense_bytes);
}

std::vector<double> weights_of(const ScheduleProblem& problem) {
  std::vector<double> w;
  w.reserve(problem.size());
  for (const AnalysisParams& a : problem.analyses) w.push_back(a.weight);
  return w;
}

ScheduleSolution solve_aggregate(const ScheduleProblem& problem, const SolveOptions& options,
                                 const std::vector<std::optional<long>>& fixed_counts = {}) {
  ScheduleSolution out;
  const AggregateModel built = build_aggregate_milp(problem, fixed_counts);
  const mip::MipResult res = mip::solve_mip(built.model, options.mip);
  out.status = res.status;
  out.termination = res.termination;
  out.solver_seconds = res.solve_seconds;
  out.nodes = res.nodes;
  out.lp_iterations = res.lp_iterations;
  out.mip_counters = res.counters;
  out.diagnostics.gap_abs = res.gap();
  out.diagnostics.gap_rel = res.gap_rel();
  if (!res.has_solution) return out;

  const AggregateCounts counts = decode_aggregate(built, res.x);
  out.schedule = place(problem, PlacementRequest{counts.analysis_counts, counts.output_counts});
  out.frequencies = counts.analysis_counts;
  out.output_counts = counts.output_counts;
  out.objective = out.schedule.objective(weights_of(problem));
  out.solved = true;
  out.proven_optimal = res.optimal();
  return out;
}

ScheduleSolution solve_time_expanded(const ScheduleProblem& problem,
                                     const SolveOptions& options) {
  ScheduleSolution out;
  const TimeExpandedModel built = build_time_expanded_milp(problem);
  const mip::MipResult res = mip::solve_mip(built.model, options.mip);
  out.status = res.status;
  out.termination = res.termination;
  out.solver_seconds = res.solve_seconds;
  out.nodes = res.nodes;
  out.lp_iterations = res.lp_iterations;
  out.mip_counters = res.counters;
  out.diagnostics.gap_abs = res.gap();
  out.diagnostics.gap_rel = res.gap_rel();
  if (!res.has_solution) return out;

  out.schedule = decode_time_expanded(problem, built, res.x);
  out.frequencies = out.schedule.frequencies();
  out.output_counts.clear();
  for (const AnalysisSchedule& a : out.schedule.analyses())
    out.output_counts.push_back(a.output_count());
  out.objective = out.schedule.objective(weights_of(problem));
  out.solved = true;
  out.proven_optimal = res.optimal();
  return out;
}

// Strict-priority solve: analyses are grouped into tiers by descending
// weight; each tier is maximized (|A_tier| + sum |C_i| over the tier) with
// all higher tiers' counts frozen and all lower tiers disabled, so a
// higher-priority analysis never gives up budget for a lower-priority one.
ScheduleSolution solve_lexicographic(const ScheduleProblem& problem,
                                     const SolveOptions& options) {
  if (problem.analyses.empty()) return solve_aggregate(problem, options);
  // Distinct weights, descending.
  std::vector<double> tiers;
  for (const AnalysisParams& a : problem.analyses) tiers.push_back(a.weight);
  std::sort(tiers.begin(), tiers.end(), std::greater<>());
  tiers.erase(std::unique(tiers.begin(), tiers.end()), tiers.end());

  std::vector<std::optional<long>> fixed(problem.size());
  ScheduleSolution last;
  double total_seconds = 0.0;
  long total_nodes = 0;
  long total_iterations = 0;
  mip::MipCounters total_counters;
  for (double tier : tiers) {
    // Sub-problem: current-tier analyses carry unit weight; lower tiers are
    // disabled (count pinned to 0 unless already fixed).
    ScheduleProblem sub = problem;
    std::vector<std::optional<long>> sub_fixed = fixed;
    for (std::size_t i = 0; i < problem.size(); ++i) {
      if (fixed[i].has_value()) continue;
      if (problem.analyses[i].weight == tier) {
        sub.analyses[i].weight = 1.0;
      } else {
        sub_fixed[i] = 0;  // lower tier: excluded from this pass
      }
    }
    last = solve_aggregate(sub, options, sub_fixed);
    total_seconds += last.solver_seconds;
    total_nodes += last.nodes;
    total_iterations += last.lp_iterations;
    add_counters(&total_counters, last.mip_counters);
    if (!last.solved) {
      last.solver_seconds = total_seconds;
      return last;
    }
    for (std::size_t i = 0; i < problem.size(); ++i) {
      if (!fixed[i].has_value() && problem.analyses[i].weight == tier)
        fixed[i] = last.frequencies[i];
    }
  }
  last.solver_seconds = total_seconds;
  last.nodes = total_nodes;
  last.lp_iterations = total_iterations;
  last.mip_counters = total_counters;
  // Report the objective in the paper's Eq-1 form for comparability.
  std::vector<double> w = weights_of(problem);
  last.objective = last.schedule.objective(w);
  return last;
}

// Maps a failed MILP outcome to the taxonomy. Only called when no usable
// schedule came back, so a limit termination here means "truncated without
// an incumbent".
FailureClass classify_failure(const ScheduleSolution& out) {
  switch (out.termination) {
    case mip::MipTermination::kProvedInfeasible: return FailureClass::kInfeasibleModel;
    case mip::MipTermination::kTimeLimit: return FailureClass::kTimeLimit;
    case mip::MipTermination::kNodeLimit: return FailureClass::kNodeLimit;
    case mip::MipTermination::kWorkLimit: return FailureClass::kWorkLimit;
    default: return FailureClass::kNumerical;
  }
}

// Graceful degradation: replace the (missing or invalid) MILP schedule with
// the greedy heuristic's. The greedy schedule satisfies the time budget and
// the conservative per-analysis memory bound by construction, so it is
// validated and only committed when the exact recurrence accepts it.
void degrade_to_greedy(const ScheduleProblem& problem, const SolveOptions& options,
                       FailureClass why, const std::string& message,
                       ScheduleSolution* out) {
  Schedule fallback = greedy_schedule(problem);
  if (options.run_validation) {
    out->validation = validate_schedule(problem, fallback);
    if (!out->validation.feasible) {
      // Even the heuristic cannot satisfy the exact recurrence: report the
      // original failure honestly instead of shipping an infeasible plan.
      out->solved = false;
      out->degraded = false;
      out->diagnostics.degraded = false;
      out->diagnostics.failure = why;
      out->diagnostics.message = message + "; greedy fallback failed validation";
      return;
    }
  }
  out->schedule = std::move(fallback);
  out->frequencies = out->schedule.frequencies();
  out->output_counts.clear();
  for (const AnalysisSchedule& a : out->schedule.analyses())
    out->output_counts.push_back(a.output_count());
  out->objective = out->schedule.objective(weights_of(problem));
  out->solved = true;
  out->proven_optimal = false;
  out->degraded = true;
  out->diagnostics.degraded = true;
  out->diagnostics.failure = why;
  out->diagnostics.message = message;
  INSCHED_LOG_WARN("scheduler degraded to greedy schedule: %s", message.c_str());
}

}  // namespace

ScheduleSolution solve_schedule(const ScheduleProblem& problem, const SolveOptions& options) {
  problem.validate();
  ScheduleSolution out;

  // A non-positive time budget is honored before any MILP work: the MILP
  // cannot finish in 0 seconds, so skip straight to the greedy fallback
  // (deterministic, crash-free) instead of building and truncating a model.
  if (options.mip.time_limit_s <= 0.0) {
    out.status = lp::SolveStatus::kIterationLimit;
    out.termination = mip::MipTermination::kTimeLimit;
    out.diagnostics.failure = FailureClass::kTimeLimit;
    out.diagnostics.message = "time budget exhausted before the MILP solve started";
    if (options.fallback_to_greedy)
      degrade_to_greedy(problem, options, FailureClass::kTimeLimit,
                        "time budget exhausted before the MILP solve started", &out);
    return out;
  }

  const auto run = [&](const ScheduleProblem& p) {
    if (options.formulation == Formulation::kAggregate) {
      return options.weight_mode == WeightMode::kLexicographic
                 ? solve_lexicographic(p, options)
                 : solve_aggregate(p, options);
    }
    return solve_time_expanded(p, options);
  };

  out = run(problem);
  int resolve_attempts = 0;
  if (out.solved && options.run_validation) {
    out.validation = validate_schedule(problem, out.schedule);
    // The aggregate memory bound is conservative against placement's gap
    // guarantee, so validation normally passes. If an edge case slips
    // through (e.g. an exotic grid/output interaction), re-solve with a
    // tightened memory budget until the exact recurrence accepts the
    // schedule, rather than returning an infeasible plan.
    ScheduleProblem tightened = problem;
    for (int attempt = 0; !out.validation.feasible && attempt < 4; ++attempt) {
      bool memory_violation = false;
      for (const std::string& v : out.validation.violations) {
        INSCHED_LOG_WARN("schedule validation: %s", v.c_str());
        memory_violation = memory_violation || v.find("memory") != std::string::npos;
      }
      if (!memory_violation || !std::isfinite(problem.mth)) break;
      tightened.mth *= 0.9;
      ++resolve_attempts;
      out = run(tightened);
      if (!out.solved) break;
      out.validation = validate_schedule(problem, out.schedule);
    }
  }
  out.diagnostics.resolve_attempts = resolve_attempts;
  out.diagnostics.recoveries = out.mip_counters.recoveries();

  if (!out.solved) {
    const FailureClass why = classify_failure(out);
    out.diagnostics.failure = why;
    out.diagnostics.message =
        std::string("MILP solve failed: ") + mip::to_string(out.termination);
    if (options.fallback_to_greedy && why != FailureClass::kInfeasibleModel) {
      // A proven-infeasible model is a statement about the problem, not a
      // solver failure — substituting a heuristic schedule would mask it.
      degrade_to_greedy(problem, options, why, out.diagnostics.message, &out);
      out.diagnostics.resolve_attempts = resolve_attempts;
    }
  } else if (options.run_validation && !out.validation.feasible) {
    // Tightened re-solves exhausted without an acceptable schedule.
    out.diagnostics.failure = FailureClass::kValidationFailed;
    out.diagnostics.message = "MILP schedule failed exact validation";
    if (options.fallback_to_greedy) {
      degrade_to_greedy(problem, options, FailureClass::kValidationFailed,
                        out.diagnostics.message, &out);
      out.diagnostics.resolve_attempts = resolve_attempts;
    } else {
      out.solved = false;
    }
  }
  return out;
}

}  // namespace insched::scheduler
