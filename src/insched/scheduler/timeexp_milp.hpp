#pragma once

// Time-expanded MILP — the paper's formulation (Section 3.2) verbatim: one
// 0-1 variable analysis_{i,j} and output_{i,j} per analysis and simulation
// step, continuous mStart/mEnd memory recurrences (Eqs 5-7) linearized with
// big-M rows around the output indicator, the cumulative time constraint
// (Eqs 2-4) collapsed to its equivalent single linear row, and the interval
// rule enforced by sliding-window rows ("running total" in the paper).
//
// Exact but large: O(|A| * Steps) binaries. Use for small horizons and as a
// correctness oracle for the aggregate formulation (tests cross-validate
// their optimal objectives).

#include "insched/lp/model.hpp"
#include "insched/scheduler/params.hpp"
#include "insched/scheduler/schedule.hpp"

namespace insched::scheduler {

struct TimeExpandedVarMap {
  std::vector<int> active;                    ///< a_i
  std::vector<std::vector<int>> analysis;     ///< analysis_{i,j}, j = 1..Steps
  std::vector<std::vector<int>> output;       ///< output_{i,j}; empty under kEveryAnalysis/kNone
  std::vector<std::vector<int>> mem_start;    ///< mStart_{i,j}; empty when mth unbounded
  std::vector<std::vector<int>> mem_end;      ///< mEnd_{i,j}
};

struct TimeExpandedModel {
  lp::Model model;
  TimeExpandedVarMap vars;
  OutputPolicy policy = OutputPolicy::kEveryAnalysis;
};

[[nodiscard]] TimeExpandedModel build_time_expanded_milp(const ScheduleProblem& problem);

/// Reads a concrete schedule out of a solution vector.
[[nodiscard]] Schedule decode_time_expanded(const ScheduleProblem& problem,
                                            const TimeExpandedModel& built,
                                            const std::vector<double>& x);

}  // namespace insched::scheduler
