#include "insched/scheduler/serialize.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "insched/support/assert.hpp"
#include "insched/support/string_util.hpp"

namespace insched::scheduler {

namespace {

void append_escaped(std::string& out, const std::string& text) {
  out += '"';
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += '"';
}

void append_steps(std::string& out, const std::vector<long>& steps) {
  out += '[';
  for (std::size_t i = 0; i < steps.size(); ++i) {
    if (i) out += ',';
    out += format("%ld", steps[i]);
  }
  out += ']';
}

/// Minimal recursive-descent scanner for the subset we emit.
class JsonScanner {
 public:
  explicit JsonScanner(const std::string& text) : text_(text) {}

  void expect(char c) {
    skip();
    if (pos_ >= text_.size() || text_[pos_] != c)
      throw std::runtime_error(format("json: expected '%c' at offset %zu", c, pos_));
    ++pos_;
  }

  [[nodiscard]] bool accept(char c) {
    skip();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] std::string string_value() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        c = esc == 'n' ? '\n' : (esc == 't' ? '\t' : esc);
      }
      out += c;
    }
    if (pos_ >= text_.size()) throw std::runtime_error("json: unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  [[nodiscard]] long integer_value() {
    skip();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    if (pos_ == start) throw std::runtime_error("json: expected integer");
    return std::stol(text_.substr(start, pos_ - start));
  }

  [[nodiscard]] std::vector<long> integer_array() {
    std::vector<long> out;
    expect('[');
    if (accept(']')) return out;
    while (true) {
      out.push_back(integer_value());
      if (accept(']')) break;
      expect(',');
    }
    return out;
  }

  void skip() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string schedule_to_json(const Schedule& schedule) {
  std::string out = format("{\"steps\":%ld,\"analyses\":[", schedule.steps());
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    const AnalysisSchedule& a = schedule.analysis(i);
    if (i) out += ',';
    out += "{\"name\":";
    append_escaped(out, a.name);
    out += ",\"analysis_steps\":";
    append_steps(out, a.analysis_steps);
    out += ",\"output_steps\":";
    append_steps(out, a.output_steps);
    out += '}';
  }
  out += "]}";
  return out;
}

Schedule schedule_from_json(const std::string& json) {
  JsonScanner scan(json);
  scan.expect('{');
  long steps = 0;
  std::vector<AnalysisSchedule> analyses;
  while (true) {
    const std::string key = scan.string_value();
    scan.expect(':');
    if (key == "steps") {
      steps = scan.integer_value();
    } else if (key == "analyses") {
      scan.expect('[');
      if (!scan.accept(']')) {
        while (true) {
          scan.expect('{');
          AnalysisSchedule a;
          while (true) {
            const std::string field = scan.string_value();
            scan.expect(':');
            if (field == "name") {
              a.name = scan.string_value();
            } else if (field == "analysis_steps") {
              a.analysis_steps = scan.integer_array();
            } else if (field == "output_steps") {
              a.output_steps = scan.integer_array();
            } else {
              throw std::runtime_error("json: unknown analysis field '" + field + "'");
            }
            if (!scan.accept(',')) break;
          }
          scan.expect('}');
          analyses.push_back(std::move(a));
          if (!scan.accept(',')) break;
        }
        scan.expect(']');
      }
    } else {
      throw std::runtime_error("json: unknown schedule field '" + key + "'");
    }
    if (!scan.accept(',')) break;
  }
  scan.expect('}');
  return Schedule(steps, std::move(analyses));  // constructor re-validates
}

std::string solution_to_json(const ScheduleSolution& solution) {
  std::string out = "{\"solved\":";
  out += solution.solved ? "true" : "false";
  out += format(",\"proven_optimal\":%s", solution.proven_optimal ? "true" : "false");
  out += format(",\"objective\":%.10g", solution.objective);
  out += format(",\"solver_seconds\":%.6g", solution.solver_seconds);
  out += format(",\"nodes\":%ld", solution.nodes);
  out += ",\"frequencies\":";
  append_steps(out, solution.frequencies);
  out += ",\"output_counts\":";
  append_steps(out, solution.output_counts);
  out += format(",\"total_analysis_time\":%.10g", solution.validation.total_analysis_time);
  out += format(",\"time_budget\":%.10g", solution.validation.time_budget);
  out += format(",\"peak_memory\":%.10g", solution.validation.peak_memory);
  out += ",\"schedule\":";
  out += schedule_to_json(solution.schedule);
  out += '}';
  return out;
}

std::string render_gantt(const Schedule& schedule, int width) {
  INSCHED_EXPECTS(width >= 10);
  if (schedule.steps() == 0 || schedule.size() == 0) return "(empty schedule)\n";

  std::size_t label_width = 0;
  for (const AnalysisSchedule& a : schedule.analyses())
    label_width = std::max(label_width, a.name.size());
  label_width = std::min<std::size_t>(label_width, 24);

  const double steps_per_col =
      static_cast<double>(schedule.steps()) / static_cast<double>(width);
  std::string out = format("steps 1..%ld, %.1f steps per column\n", schedule.steps(),
                           steps_per_col);
  for (const AnalysisSchedule& a : schedule.analyses()) {
    std::string label = a.name.substr(0, label_width);
    label.resize(label_width, ' ');
    std::string row(static_cast<std::size_t>(width), '.');
    for (long step : a.analysis_steps) {
      auto col = static_cast<std::size_t>(static_cast<double>(step - 1) / steps_per_col);
      col = std::min<std::size_t>(col, static_cast<std::size_t>(width) - 1);
      if (row[col] != 'O') row[col] = '#';
    }
    for (long step : a.output_steps) {
      auto col = static_cast<std::size_t>(static_cast<double>(step - 1) / steps_per_col);
      col = std::min<std::size_t>(col, static_cast<std::size_t>(width) - 1);
      row[col] = 'O';
    }
    out += label + " |" + row + "|\n";
  }
  out += format("%*s  ('#' analysis, 'O' analysis+output)\n", static_cast<int>(label_width),
                "");
  return out;
}

}  // namespace insched::scheduler
