#include "insched/scheduler/cost_database.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <set>
#include <stdexcept>

#include "insched/support/assert.hpp"

namespace insched::scheduler {

using perfmodel::AxisScale;
using perfmodel::BilinearInterpolator;
using perfmodel::SampleGrid;

void CostDatabase::add_sample(const std::string& kernel, const CostSample& sample) {
  INSCHED_EXPECTS(sample.problem_size > 0.0 && sample.procs > 0.0);
  samples_[kernel].push_back(sample);
}

bool CostDatabase::has_kernel(const std::string& kernel) const {
  return samples_.count(kernel) > 0;
}

std::vector<std::string> CostDatabase::kernels() const {
  std::vector<std::string> names;
  names.reserve(samples_.size());
  for (const auto& [name, list] : samples_) names.push_back(name);
  return names;
}

std::size_t CostDatabase::sample_count(const std::string& kernel) const {
  const auto it = samples_.find(kernel);
  return it == samples_.end() ? 0 : it->second.size();
}

AnalysisParams CostDatabase::predict(const std::string& kernel, double problem_size,
                                     double procs) const {
  const auto it = samples_.find(kernel);
  if (it == samples_.end())
    throw std::runtime_error("CostDatabase: unknown kernel '" + kernel + "'");
  const std::vector<CostSample>& list = it->second;
  INSCHED_EXPECTS(!list.empty());

  // Collect the grid axes.
  std::set<double> xs_set, ys_set;
  for (const CostSample& s : list) {
    xs_set.insert(s.problem_size);
    ys_set.insert(s.procs);
  }
  const std::vector<double> xs(xs_set.begin(), xs_set.end());
  const std::vector<double> ys(ys_set.begin(), ys_set.end());
  if (xs.size() * ys.size() != list.size())
    throw std::runtime_error("CostDatabase: samples for '" + kernel +
                             "' do not form a rectilinear grid");

  // Row-major value matrix for one component.
  const auto grid_of = [&](const std::function<double(const CostSample&)>& get) {
    std::vector<double> values(xs.size() * ys.size(), 0.0);
    for (const CostSample& s : list) {
      const auto ix = static_cast<std::size_t>(
          std::lower_bound(xs.begin(), xs.end(), s.problem_size) - xs.begin());
      const auto iy = static_cast<std::size_t>(
          std::lower_bound(ys.begin(), ys.end(), s.procs) - ys.begin());
      values[iy * xs.size() + ix] = get(s);
    }
    return SampleGrid(xs, ys, values);
  };

  const auto interpolate = [&](const std::function<double(const CostSample&)>& get) {
    // Log-value interpolation needs strictly positive samples; fall back to
    // linear values when any sample is zero/negative.
    bool positive = true;
    for (const CostSample& s : list) positive = positive && get(s) > 0.0;
    const BilinearInterpolator f(grid_of(get), AxisScale::kLog, AxisScale::kLog,
                                 positive ? AxisScale::kLog : AxisScale::kLinear);
    return std::max(0.0, f(problem_size, procs));
  };

  AnalysisParams out;
  out.name = kernel;
  out.ft = interpolate([](const CostSample& s) { return s.costs.ft; });
  out.it = interpolate([](const CostSample& s) { return s.costs.it; });
  out.ct = interpolate([](const CostSample& s) { return s.costs.ct; });
  // ot may be the sentinel -1 (derive from om/bw); interpolate only when all
  // samples carry an explicit time.
  bool explicit_ot = true;
  for (const CostSample& s : list) explicit_ot = explicit_ot && s.costs.ot >= 0.0;
  out.ot = explicit_ot ? interpolate([](const CostSample& s) { return s.costs.ot; }) : -1.0;
  out.fm = interpolate([](const CostSample& s) { return s.costs.fm; });
  out.im = interpolate([](const CostSample& s) { return s.costs.im; });
  out.cm = interpolate([](const CostSample& s) { return s.costs.cm; });
  out.om = interpolate([](const CostSample& s) { return s.costs.om; });

  // Nearest sample (log distance) donates the non-interpolable fields.
  const CostSample* nearest = &list.front();
  double best = std::numeric_limits<double>::infinity();
  for (const CostSample& s : list) {
    const double dx = std::log(s.problem_size / problem_size);
    const double dy = std::log(s.procs / procs);
    const double d = dx * dx + dy * dy;
    if (d < best) {
      best = d;
      nearest = &s;
    }
  }
  out.itv = nearest->costs.itv;
  out.weight = nearest->costs.weight;
  return out;
}

}  // namespace insched::scheduler
