#include "insched/scheduler/problem_io.hpp"

#include <cmath>
#include <stdexcept>

#include "insched/scheduler/lint.hpp"
#include "insched/support/string_util.hpp"

namespace insched::scheduler {

namespace {

ThresholdKind parse_kind(const std::string& text) {
  if (text == "fraction" || text == "fraction_of_sim_time") return ThresholdKind::kFractionOfSimTime;
  if (text == "total" || text == "total_seconds") return ThresholdKind::kTotalSeconds;
  if (text == "per_step" || text == "per_step_seconds") return ThresholdKind::kPerStepSeconds;
  throw std::runtime_error("config: unknown threshold_kind '" + text + "'");
}

const char* kind_name(ThresholdKind kind) {
  switch (kind) {
    case ThresholdKind::kFractionOfSimTime: return "fraction";
    case ThresholdKind::kTotalSeconds: return "total";
    case ThresholdKind::kPerStepSeconds: return "per_step";
  }
  return "fraction";
}

OutputPolicy parse_policy(const std::string& text) {
  if (text == "every_analysis") return OutputPolicy::kEveryAnalysis;
  if (text == "optimized") return OutputPolicy::kOptimized;
  if (text == "none") return OutputPolicy::kNone;
  throw std::runtime_error("config: unknown output_policy '" + text + "'");
}

const char* policy_name(OutputPolicy policy) {
  switch (policy) {
    case OutputPolicy::kEveryAnalysis: return "every_analysis";
    case OutputPolicy::kOptimized: return "optimized";
    case OutputPolicy::kNone: return "none";
  }
  return "every_analysis";
}

// Config-layer rejection reuses the lint field checks, so the
// "[section] / key" messages the reader throws and the diagnostics
// insched_lint prints come from one place (lint.cpp). The structural rules
// still live in ScheduleProblem::validate(); these checks are stricter
// (e.g. threshold must be strictly positive here, while a directly
// constructed problem may legitimately model a zero budget).
void require(const std::optional<LintDiagnostic>& diagnostic) {
  if (diagnostic) throw std::runtime_error(config_error_message(*diagnostic));
}

void require_positive(const std::string& where, const char* key, double value,
                      const char* hint = nullptr) {
  require(check_positive_number(where, key, value, hint));
}

void require_nonneg(const std::string& where, const char* key, double value) {
  require(check_nonnegative_number(where, key, value));
}

ScheduleProblem problem_from_config_impl(const Config& config, bool validate) {
  const ConfigSection* run = config.section("run");
  if (run == nullptr) throw std::runtime_error("config: missing [run] section");

  ScheduleProblem problem;
  problem.steps = run->get_integer("steps", 1000);
  if (validate) require(check_positive_integer("[run]", "steps", problem.steps));
  problem.sim_time_per_step = run->get_number("sim_time_per_step", 1.0);
  if (validate) require_positive("[run]", "sim_time_per_step", problem.sim_time_per_step);
  problem.threshold = run->get_number("threshold", 0.1);
  if (validate)
    require_positive("[run]", "threshold", problem.threshold,
                     "a zero analysis budget schedules nothing");
  problem.threshold_kind = parse_kind(run->get_string("threshold_kind", "fraction"));
  problem.mth = run->has("memory") ? run->get_number("memory", kNoLimit) : kNoLimit;
  if (validate && run->has("memory") && std::isfinite(problem.mth))
    require_positive("[run]", "memory", problem.mth,
                     "omit the key for an unlimited memory budget");
  problem.bw = run->has("bandwidth") ? run->get_number("bandwidth", kNoLimit) : kNoLimit;
  if (validate && run->has("bandwidth") && std::isfinite(problem.bw))
    require_positive("[run]", "bandwidth", problem.bw,
                     "derived output time ot = om/bw would divide by zero; omit the "
                     "key for unlimited bandwidth");
  problem.output_policy = parse_policy(run->get_string("output_policy", "every_analysis"));

  const auto analyses = config.sections("analysis");
  if (analyses.empty()) throw std::runtime_error("config: no [analysis] sections");
  for (const ConfigSection* section : analyses) {
    AnalysisParams a;
    a.name = section->get_string("name");
    if (a.name.empty())
      throw std::runtime_error("config: [analysis] section without a name");
    const std::string where = "[analysis] '" + a.name + "'";
    a.ft = section->get_number("ft", 0.0);
    a.it = section->get_number("it", 0.0);
    a.ct = section->get_number("ct", 0.0);
    a.ot = section->has("ot") ? section->get_number("ot", -1.0) : -1.0;
    a.fm = section->get_number("fm", 0.0);
    a.im = section->get_number("im", 0.0);
    a.cm = section->get_number("cm", 0.0);
    a.om = section->get_number("om", 0.0);
    a.weight = section->get_number("weight", 1.0);
    a.itv = section->get_integer("itv", 1);
    if (validate) {
      require_nonneg(where, "ft", a.ft);
      require_nonneg(where, "it", a.it);
      require_nonneg(where, "ct", a.ct);
      if (section->has("ot")) require_nonneg(where, "ot", a.ot);
      require_nonneg(where, "fm", a.fm);
      require_nonneg(where, "im", a.im);
      require_nonneg(where, "cm", a.cm);
      require_nonneg(where, "om", a.om);
      require_nonneg(where, "weight", a.weight);
      require(check_positive_integer(where, "itv", a.itv));
      require(check_interval_within_steps(where, a.itv, problem.steps));
    }
    problem.analyses.push_back(std::move(a));
  }

  if (validate) problem.validate();
  return problem;
}

}  // namespace

ScheduleProblem problem_from_config(const Config& config) {
  return problem_from_config_impl(config, /*validate=*/true);
}

ScheduleProblem problem_from_config_lenient(const Config& config) {
  return problem_from_config_impl(config, /*validate=*/false);
}

ScheduleProblem problem_from_string(const std::string& text) {
  return problem_from_config(Config::parse(text));
}

std::string problem_to_config(const ScheduleProblem& problem) {
  std::string out = "[run]\n";
  out += format("steps = %ld\n", problem.steps);
  out += format("sim_time_per_step = %.9g\n", problem.sim_time_per_step);
  out += format("threshold = %.9g\n", problem.threshold);
  out += format("threshold_kind = %s\n", kind_name(problem.threshold_kind));
  if (std::isfinite(problem.mth)) out += format("memory = %.9g\n", problem.mth);
  if (std::isfinite(problem.bw)) out += format("bandwidth = %.9g\n", problem.bw);
  out += format("output_policy = %s\n", policy_name(problem.output_policy));
  for (const AnalysisParams& a : problem.analyses) {
    out += format("\n[analysis]\nname = %s\n", a.name.c_str());
    if (a.ft != 0.0) out += format("ft = %.9g\n", a.ft);
    if (a.it != 0.0) out += format("it = %.9g\n", a.it);
    if (a.ct != 0.0) out += format("ct = %.9g\n", a.ct);
    if (a.ot >= 0.0) out += format("ot = %.9g\n", a.ot);
    if (a.fm != 0.0) out += format("fm = %.9g\n", a.fm);
    if (a.im != 0.0) out += format("im = %.9g\n", a.im);
    if (a.cm != 0.0) out += format("cm = %.9g\n", a.cm);
    if (a.om != 0.0) out += format("om = %.9g\n", a.om);
    if (a.weight != 1.0) out += format("weight = %.9g\n", a.weight);
    if (a.itv != 1) out += format("itv = %ld\n", a.itv);
  }
  return out;
}

bool has_staging_section(const Config& config) {
  return config.section("staging") != nullptr;
}

CoanalysisProblem coanalysis_from_config(const Config& config) {
  CoanalysisProblem problem;
  problem.base = problem_from_config(config);

  const ConfigSection* staging = config.section("staging");
  if (staging == nullptr)
    throw std::runtime_error("config: hybrid planning needs a [staging] section");
  problem.network_bw = staging->get_number("network_bw", kNoLimit);
  problem.stage_capacity_seconds = staging->get_number("capacity", kNoLimit);
  problem.stage_memory = staging->get_number("memory", kNoLimit);
  problem.transfer_overlap = staging->get_number("transfer_overlap", 0.0);

  for (const ConfigSection* section : config.sections("analysis")) {
    StagingParams remote;
    remote.transfer_bytes = section->get_number("transfer_bytes", 0.0);
    remote.stage_ct = section->get_number("stage_ct", 0.0);
    remote.stage_mem = section->get_number("stage_mem", 0.0);
    problem.remote.push_back(remote);
  }
  problem.validate();
  return problem;
}

}  // namespace insched::scheduler
