#pragma once

// Pre-solve static analysis ("lint") of scheduling instances and the MILPs
// generated from them. The linter never solves anything: every check is a
// cheap structural pass that catches configuration mistakes before they
// surface as a mysteriously infeasible or ill-conditioned solve —
//
//   * trivial infeasibility: an analysis whose activation memory alone
//     exceeds the memory budget, a single analysis step that exceeds the
//     whole-run time budget, an interval longer than the run, sign errors
//     on steps/threshold/bandwidth/memory;
//   * modelling smells: zero-weight analyses the objective ignores,
//     duplicate names, exact cost-twin (dominated) analyses;
//   * numerics: coefficient magnitude ranges wide enough to threaten the
//     simplex (a cheap kappa-style conditioning proxy);
//   * generated-LP structure: empty, duplicate, singleton and fixed rows.
//
// Diagnostics are structured (severity, check id, "[section] / key" locus,
// message, remediation hint) so tools can render them as text or JSON.
// problem_io.cpp routes its config validation through the same field checks
// (check_positive_number & co.), keeping one source of truth for the
// "[section]: 'key' must be ..." messages. docs/STATIC_ANALYSIS.md lists the
// full diagnostic catalog.

#include <optional>
#include <string>
#include <vector>

#include "insched/lp/model.hpp"
#include "insched/scheduler/params.hpp"

namespace insched::scheduler {

enum class LintSeverity {
  kInfo,     ///< stylistic / redundancy note; never affects the exit code
  kWarning,  ///< suspicious but solvable; exit 1 (or 2 under --strict)
  kError,    ///< the instance is broken; exit 2, planning refuses to run
};

[[nodiscard]] const char* to_string(LintSeverity severity) noexcept;

/// One finding. `id` is the stable kebab-case check name from the catalog
/// (docs/STATIC_ANALYSIS.md); `locus` pinpoints the input ("[analysis]
/// 'msd' / itv" or "row 'memory_peak'"); `hint` suggests a remediation and
/// may be empty.
struct LintDiagnostic {
  LintSeverity severity = LintSeverity::kWarning;
  std::string id;
  std::string locus;
  std::string message;
  std::string hint;

  /// "error: [run] / steps: 'steps' must be positive, got -5 (hint: ...)"
  [[nodiscard]] std::string to_string() const;
};

/// Ordered collection of findings plus the exit-code policy shared by
/// insched_lint and insched_plan --lint.
struct LintReport {
  std::vector<LintDiagnostic> diagnostics;

  [[nodiscard]] int count(LintSeverity severity) const noexcept;
  [[nodiscard]] bool has_errors() const noexcept { return count(LintSeverity::kError) > 0; }
  [[nodiscard]] bool has_warnings() const noexcept {
    return count(LintSeverity::kWarning) > 0;
  }
  [[nodiscard]] bool clean() const noexcept { return diagnostics.empty(); }

  void add(LintSeverity severity, std::string id, std::string locus, std::string message,
           std::string hint = {});
  void merge(const LintReport& other);

  /// 0 = clean (info-only counts as clean), 1 = warnings, 2 = errors.
  /// `strict` promotes warnings to the error exit code.
  [[nodiscard]] int exit_code(bool strict = false) const noexcept;

  /// One line per diagnostic, errors first, input order preserved within a
  /// severity.
  [[nodiscard]] std::string to_string() const;

  /// {"diagnostics":[...],"errors":N,"warnings":N,"infos":N}
  [[nodiscard]] std::string to_json() const;
};

/// Lints a scheduling instance (Table 1 parameters + run context).
[[nodiscard]] LintReport lint_problem(const ScheduleProblem& problem);

/// Lints a generated LP/MILP (any lp::Model, typically the aggregate MILP).
[[nodiscard]] LintReport lint_model(const lp::Model& model);

// ---------------------------------------------------------------------------
// Field checks shared with the config reader. Each returns nullopt when the
// value is fine, otherwise an error diagnostic whose message matches what
// lint_problem would emit — problem_from_config throws it, insched_lint
// collects it.

[[nodiscard]] std::optional<LintDiagnostic> check_positive_number(
    const std::string& locus, const char* key, double value, const char* hint = nullptr);
[[nodiscard]] std::optional<LintDiagnostic> check_positive_integer(
    const std::string& locus, const char* key, long value, const char* hint = nullptr);
[[nodiscard]] std::optional<LintDiagnostic> check_nonnegative_number(
    const std::string& locus, const char* key, double value);
[[nodiscard]] std::optional<LintDiagnostic> check_interval_within_steps(
    const std::string& locus, long itv, long steps);

/// Message for the std::runtime_error thrown by the config reader:
/// "config: [run] / steps: 'steps' must be positive, got -5".
[[nodiscard]] std::string config_error_message(const LintDiagnostic& diagnostic);

}  // namespace insched::scheduler
