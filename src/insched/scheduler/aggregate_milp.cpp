#include "insched/scheduler/aggregate_milp.hpp"

#include <algorithm>
#include <cmath>

#include "insched/support/assert.hpp"
#include "insched/support/string_util.hpp"

namespace insched::scheduler {

namespace {

/// Worst steps-between-resets when k outputs are placed on the analysis
/// grid over Steps steps.
///  - coupled (o = c = k): outputs at every analysis step, so the gap is the
///    analysis spacing ceil(Steps/k) plus the small stagger offset.
///  - decoupled (o = k <= c): outputs can only land on analysis steps;
///    placing each at the last grid point before its ideal position
///    r*Steps/k bounds the gap by ceil(Steps/k) + floor(Steps/k) + offset.
///    (ceil(Steps/k) alone is NOT realizable in general: with c = 15, k = 2
///    over 500 steps the best grid placement still leaves a 264-step gap.)
/// `offset_slack` covers placement's per-analysis stagger (< #analyses).
long reset_gap(long steps, long k, bool coupled, long offset_slack) {
  if (k <= 0) return steps;
  const long base = coupled ? (steps + k - 1) / k : (steps + k - 1) / k + steps / k;
  return std::min(steps, base + offset_slack);
}

/// Memory peak of analysis `p` when it performs outputs k times (0 = never).
/// Eq 5/6: cm allocated at an analysis step persists until the next output
/// reset, so a reset window holds up to ceil(c/k) analysis steps worth of
/// cm. The decoupled expansion does not know c, so it assumes the worst
/// (c = maxc); the coupled mode (o = c) pays cm exactly once per window.
double memory_peak(const AnalysisParams& p, long steps, long maxc, long k,
                   bool coupled = false, long offset_slack = 0) {
  const long cm_steps =
      coupled ? 1 : (k <= 0 ? maxc : std::min(maxc, (maxc + k - 1) / k + 1));
  double peak = p.fm +
                p.im * static_cast<double>(reset_gap(steps, k, coupled, offset_slack)) +
                p.cm * static_cast<double>(cm_steps);
  if (k >= 1) peak += p.om;
  return peak;
}

/// Memory peak with no information about the output count: assumes the
/// worst (no resets at all) — the conservative fallback bound.
double memory_peak_worst(const AnalysisParams& p, long steps, long maxc) {
  return p.fm + p.im * static_cast<double>(steps) +
         p.cm * static_cast<double>(maxc) + p.om;
}

}  // namespace

AggregateModel build_aggregate_milp(const ScheduleProblem& problem,
                                    const std::vector<std::optional<long>>& fixed_counts,
                                    const AggregateBuildOptions& options) {
  problem.validate();
  INSCHED_EXPECTS(fixed_counts.empty() || fixed_counts.size() == problem.size());
  AggregateModel built;
  built.policy = problem.output_policy;
  lp::Model& m = built.model;
  m.set_sense(lp::Sense::kMaximize);

  const std::size_t n = problem.size();
  const bool memory_constrained = std::isfinite(problem.mth);
  long max_count = 0;
  for (std::size_t i = 0; i < n; ++i)
    max_count = std::max(max_count, problem.max_analysis_steps(i));
  built.used_expansion = options.allow_expansion && memory_constrained &&
                         max_count <= kMaxExpansion &&
                         problem.output_policy != OutputPolicy::kNone;

  built.vars.active.assign(n, -1);
  built.vars.count.assign(n, -1);
  built.vars.out_count.assign(n, -1);
  built.vars.out_choice.assign(n, {});
  built.vars.out_choice_coupled.assign(n, {});

  // --- Variables -----------------------------------------------------------
  for (std::size_t i = 0; i < n; ++i) {
    const AnalysisParams& p = problem.analyses[i];
    const long maxc = problem.max_analysis_steps(i);
    built.vars.active[i] =
        m.add_column(format("a_%s", p.name.c_str()), 0, 1, 1.0, lp::VarType::kBinary);
    built.vars.count[i] = m.add_column(format("c_%s", p.name.c_str()), 0,
                                       static_cast<double>(maxc), p.weight,
                                       lp::VarType::kInteger);
    if (problem.output_policy == OutputPolicy::kOptimized && !built.used_expansion) {
      built.vars.out_count[i] = m.add_column(format("o_%s", p.name.c_str()), 0,
                                             static_cast<double>(maxc), 0.0,
                                             lp::VarType::kInteger);
    }
    if (built.used_expansion) {
      auto& choice = built.vars.out_choice[i];
      choice.reserve(static_cast<std::size_t>(maxc) + 1);
      for (long k = 0; k <= maxc; ++k) {
        choice.push_back(m.add_column(format("y_%s_%ld", p.name.c_str(), k), 0, 1, 0.0,
                                      lp::VarType::kBinary));
      }
      if (problem.output_policy == OutputPolicy::kOptimized) {
        auto& coupled = built.vars.out_choice_coupled[i];
        coupled.reserve(static_cast<std::size_t>(maxc));
        for (long k = 1; k <= maxc; ++k) {
          coupled.push_back(m.add_column(format("w_%s_%ld", p.name.c_str(), k), 0, 1, 0.0,
                                         lp::VarType::kBinary));
        }
      }
    }
  }

  // --- Per-analysis structural rows ---------------------------------------
  for (std::size_t i = 0; i < n; ++i) {
    const AnalysisParams& p = problem.analyses[i];
    const long maxc = problem.max_analysis_steps(i);
    const int a = built.vars.active[i];
    const int c = built.vars.count[i];

    // c_i <= maxc * a_i  and  c_i >= a_i (active iff at least one step).
    m.add_row(format("link_hi_%s", p.name.c_str()), lp::RowType::kLe, 0.0,
              {{c, 1.0}, {a, -static_cast<double>(maxc)}});
    m.add_row(format("link_lo_%s", p.name.c_str()), lp::RowType::kGe, 0.0,
              {{c, 1.0}, {a, -1.0}});

    // Lexicographic support: freeze this analysis's count.
    if (!fixed_counts.empty() && fixed_counts[i].has_value()) {
      m.add_row(format("fix_%s", p.name.c_str()), lp::RowType::kEq,
                static_cast<double>(*fixed_counts[i]), {{c, 1.0}});
    }

    if (built.used_expansion) {
      const auto& y = built.vars.out_choice[i];
      const auto& w = built.vars.out_choice_coupled[i];
      // Exactly one mode+count selected when active, none when inactive:
      //   sum_k y_ik + sum_k w_ik = a_i.
      {
        std::vector<lp::RowEntry> entries;
        for (int col : y) entries.push_back({col, 1.0});
        for (int col : w) entries.push_back({col, 1.0});
        entries.push_back({a, -1.0});
        m.add_row(format("pick_%s", p.name.c_str()), lp::RowType::kEq, 0.0,
                  std::move(entries));
      }
      // Decoupled: o_i = sum_k k y_ik <= c_i.
      {
        std::vector<lp::RowEntry> entries;
        for (long k = 0; k <= maxc; ++k)
          entries.push_back({y[static_cast<std::size_t>(k)], static_cast<double>(k)});
        entries.push_back({c, -1.0});
        m.add_row(format("out_le_count_%s", p.name.c_str()), lp::RowType::kLe, 0.0,
                  std::move(entries));
      }
      if (!w.empty()) {
        // Coupled: selecting w_ik pins c_i = k (and o_i = k).
        //   c_i >= sum_k k w_ik
        //   c_i <= sum_k k w_ik + maxc * sum_k y_ik
        std::vector<lp::RowEntry> ge_entries{{c, 1.0}};
        std::vector<lp::RowEntry> le_entries{{c, 1.0}};
        for (long k = 1; k <= maxc; ++k) {
          ge_entries.push_back({w[static_cast<std::size_t>(k - 1)], -static_cast<double>(k)});
          le_entries.push_back({w[static_cast<std::size_t>(k - 1)], -static_cast<double>(k)});
        }
        for (int col : y) le_entries.push_back({col, -static_cast<double>(maxc)});
        m.add_row(format("coupled_ge_%s", p.name.c_str()), lp::RowType::kGe, 0.0,
                  std::move(ge_entries));
        m.add_row(format("coupled_le_%s", p.name.c_str()), lp::RowType::kLe, 0.0,
                  std::move(le_entries));
      }
      if (problem.output_policy == OutputPolicy::kEveryAnalysis) {
        // o_i = c_i: the selected output count must equal the step count.
        std::vector<lp::RowEntry> entries;
        for (long k = 0; k <= maxc; ++k)
          entries.push_back({y[static_cast<std::size_t>(k)], static_cast<double>(k)});
        entries.push_back({c, -1.0});
        m.add_row(format("out_eq_count_%s", p.name.c_str()), lp::RowType::kEq, 0.0,
                  std::move(entries));
      }
    } else if (built.vars.out_count[i] >= 0) {
      // kOptimized without expansion: 1 <= o_i <= c_i when active (at least
      // one output so results persist and the fallback memory bound holds).
      m.add_row(format("out_le_count_%s", p.name.c_str()), lp::RowType::kLe, 0.0,
                {{built.vars.out_count[i], 1.0}, {c, -1.0}});
      m.add_row(format("out_ge_active_%s", p.name.c_str()), lp::RowType::kGe, 0.0,
                {{built.vars.out_count[i], 1.0}, {a, -1.0}});
    }
  }

  // --- Time budget (Eq 4) ---------------------------------------------------
  {
    std::vector<lp::RowEntry> entries;
    for (std::size_t i = 0; i < n; ++i) {
      const AnalysisParams& p = problem.analyses[i];
      const double fixed = p.ft + p.it * static_cast<double>(problem.steps);
      if (fixed > 0.0) entries.push_back({built.vars.active[i], fixed});
      if (p.ct > 0.0) entries.push_back({built.vars.count[i], p.ct});
      const double ot = problem.output_time(i);
      if (ot > 0.0 && problem.output_policy != OutputPolicy::kNone) {
        if (built.used_expansion) {
          const auto& y = built.vars.out_choice[i];
          for (std::size_t k = 1; k < y.size(); ++k)
            entries.push_back({y[k], ot * static_cast<double>(k)});
          const auto& w = built.vars.out_choice_coupled[i];
          for (std::size_t k = 0; k < w.size(); ++k)
            entries.push_back({w[k], ot * static_cast<double>(k + 1)});
        } else if (built.vars.out_count[i] >= 0) {
          entries.push_back({built.vars.out_count[i], ot});
        } else {
          // kEveryAnalysis without expansion: outputs ride on the count.
          entries.push_back({built.vars.count[i], ot});
        }
      }
      m.set_objective(built.vars.active[i], 1.0);
    }
    const int r =
        m.add_row("time_budget", lp::RowType::kLe, problem.time_budget(), std::move(entries));
    m.set_row_kind(r, lp::RowKind::kBudget);
  }

  // --- Memory budget (Eq 8 upper bound) --------------------------------------
  if (memory_constrained) {
    std::vector<lp::RowEntry> entries;
    for (std::size_t i = 0; i < n; ++i) {
      const AnalysisParams& p = problem.analyses[i];
      if (built.used_expansion) {
        const long stagger = static_cast<long>(n);
        const auto& y = built.vars.out_choice[i];
        // Under kEveryAnalysis the y expansion encodes o = c, so the tight
        // coupled gap applies; under kOptimized it is the decoupled mode.
        const bool y_coupled = problem.output_policy == OutputPolicy::kEveryAnalysis;
        const long maxc_i = problem.max_analysis_steps(i);
        for (std::size_t k = 0; k < y.size(); ++k) {
          const double peak = memory_peak(p, problem.steps, maxc_i,
                                          static_cast<long>(k), y_coupled, stagger);
          if (peak > 0.0) entries.push_back({y[k], peak});
        }
        const auto& w = built.vars.out_choice_coupled[i];
        for (std::size_t k = 0; k < w.size(); ++k) {
          const double peak = memory_peak(p, problem.steps, maxc_i,
                                          static_cast<long>(k + 1),
                                          /*coupled=*/true, stagger);
          if (peak > 0.0) entries.push_back({w[k], peak});
        }
      } else {
        const long maxc_i = problem.max_analysis_steps(i);
        double peak = memory_peak_worst(p, problem.steps, maxc_i);
        if (problem.output_policy == OutputPolicy::kOptimized &&
            built.vars.out_count[i] >= 0) {
          // o_i >= 1 is enforced above, so the k = 1 bound applies.
          peak = memory_peak(p, problem.steps, maxc_i, 1);
        } else if (problem.output_policy == OutputPolicy::kNone) {
          peak = memory_peak(p, problem.steps, maxc_i, 0);  // no om ever
        }
        if (peak > 0.0) entries.push_back({built.vars.active[i], peak});
      }
    }
    if (!entries.empty()) {
      const int r =
          m.add_row("memory_budget", lp::RowType::kLe, problem.mth, std::move(entries));
      m.set_row_kind(r, lp::RowKind::kBudget);
    }
  }

  return built;
}

AggregateCounts decode_aggregate(const AggregateModel& built, const std::vector<double>& x) {
  const std::size_t n = built.vars.active.size();
  AggregateCounts counts;
  counts.analysis_counts.assign(n, 0);
  counts.output_counts.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const long c = std::lround(x.at(static_cast<std::size_t>(built.vars.count[i])));
    counts.analysis_counts[i] = c;
    long o = 0;
    if (!built.vars.out_choice[i].empty()) {
      for (std::size_t k = 0; k < built.vars.out_choice[i].size(); ++k) {
        if (x.at(static_cast<std::size_t>(built.vars.out_choice[i][k])) > 0.5)
          o = static_cast<long>(k);
      }
      for (std::size_t k = 0; k < built.vars.out_choice_coupled[i].size(); ++k) {
        if (x.at(static_cast<std::size_t>(built.vars.out_choice_coupled[i][k])) > 0.5)
          o = static_cast<long>(k + 1);
      }
    } else if (built.vars.out_count[i] >= 0) {
      o = std::lround(x.at(static_cast<std::size_t>(built.vars.out_count[i])));
    } else {
      o = built.policy == OutputPolicy::kNone ? 0 : c;  // kEveryAnalysis rides on c
    }
    counts.output_counts[i] = std::min(o, c);
  }
  return counts;
}

}  // namespace insched::scheduler
