#pragma once

// JSON serialization of schedules and solutions for downstream tooling
// (dashboards, notebooks, workflow managers). Hand-rolled emitter — the
// structures are small and flat, so no JSON library is needed. The schedule
// JSON can be parsed back, enabling plan-now/execute-later workflows.

#include <string>

#include "insched/scheduler/schedule.hpp"
#include "insched/scheduler/solver.hpp"

namespace insched::scheduler {

/// {"steps": N, "analyses": [{"name": ..., "analysis_steps": [...],
///  "output_steps": [...]}, ...]}
[[nodiscard]] std::string schedule_to_json(const Schedule& schedule);

/// Parses schedule_to_json output. Throws std::runtime_error on malformed
/// input (including outputs that are not analysis steps).
[[nodiscard]] Schedule schedule_from_json(const std::string& json);

/// Full solution: schedule + frequencies + validation summary.
[[nodiscard]] std::string solution_to_json(const ScheduleSolution& solution);

/// Gantt-style multi-row timeline: one row per analysis, one column per
/// simulation step bucket; '#' marks analysis steps, 'O' output steps.
/// `width` is the number of character columns the timeline is compressed to.
[[nodiscard]] std::string render_gantt(const Schedule& schedule, int width = 80);

}  // namespace insched::scheduler
