#include "insched/scheduler/params.hpp"

#include <cmath>
#include <stdexcept>

#include "insched/support/string_util.hpp"

namespace insched::scheduler {

double ScheduleProblem::time_budget() const noexcept {
  switch (threshold_kind) {
    case ThresholdKind::kFractionOfSimTime:
      return threshold * sim_time_per_step * static_cast<double>(steps);
    case ThresholdKind::kTotalSeconds:
      return threshold;
    case ThresholdKind::kPerStepSeconds:
      return threshold * static_cast<double>(steps);
  }
  return 0.0;
}

long ScheduleProblem::max_analysis_steps(std::size_t i) const {
  const AnalysisParams& a = analyses.at(i);
  return steps / a.itv;
}

double ScheduleProblem::output_time(std::size_t i) const {
  return analyses.at(i).output_time(bw);
}

void ScheduleProblem::validate() const {
  if (steps <= 0) throw std::invalid_argument("ScheduleProblem: steps must be positive");
  if (!(threshold >= 0.0))  // also rejects NaN
    throw std::invalid_argument("ScheduleProblem: threshold must be >= 0 (and not NaN)");
  if (threshold_kind == ThresholdKind::kFractionOfSimTime && !(sim_time_per_step > 0.0))
    throw std::invalid_argument("ScheduleProblem: fraction threshold needs sim_time_per_step");
  if (!(mth >= 0.0))  // +infinity (kNoLimit) passes, NaN does not
    throw std::invalid_argument("ScheduleProblem: memory threshold must be >= 0 (or kNoLimit)");
  if (!(bw > 0.0))  // bw == 0 would turn ot = om/bw into a division by zero
    throw std::invalid_argument(
        "ScheduleProblem: bandwidth must be positive (use kNoLimit for no bottleneck)");
  for (const AnalysisParams& a : analyses) {
    if (a.itv < 1)
      throw std::invalid_argument(format("analysis %s: itv must be >= 1", a.name.c_str()));
    if (a.itv > steps)
      throw std::invalid_argument(
          format("analysis %s: itv %ld exceeds steps %ld", a.name.c_str(), a.itv, steps));
    if (!(a.weight >= 0.0))
      throw std::invalid_argument(format("analysis %s: weight must be >= 0", a.name.c_str()));
    if (!(a.ft >= 0.0) || !(a.it >= 0.0) || !(a.ct >= 0.0) ||
        !std::isfinite(a.ft) || !std::isfinite(a.it) || !std::isfinite(a.ct))
      throw std::invalid_argument(
          format("analysis %s: times (ft/it/ct) must be finite and >= 0", a.name.c_str()));
    if (!(a.fm >= 0.0) || !(a.im >= 0.0) || !(a.cm >= 0.0) || !(a.om >= 0.0) ||
        !std::isfinite(a.fm) || !std::isfinite(a.im) || !std::isfinite(a.cm) ||
        !std::isfinite(a.om))
      throw std::invalid_argument(
          format("analysis %s: memory (fm/im/cm/om) must be finite and >= 0", a.name.c_str()));
  }
}

}  // namespace insched::scheduler
