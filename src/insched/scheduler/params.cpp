#include "insched/scheduler/params.hpp"

#include <cmath>
#include <stdexcept>

#include "insched/support/string_util.hpp"

namespace insched::scheduler {

double ScheduleProblem::time_budget() const noexcept {
  switch (threshold_kind) {
    case ThresholdKind::kFractionOfSimTime:
      return threshold * sim_time_per_step * static_cast<double>(steps);
    case ThresholdKind::kTotalSeconds:
      return threshold;
    case ThresholdKind::kPerStepSeconds:
      return threshold * static_cast<double>(steps);
  }
  return 0.0;
}

long ScheduleProblem::max_analysis_steps(std::size_t i) const {
  const AnalysisParams& a = analyses.at(i);
  return steps / a.itv;
}

double ScheduleProblem::output_time(std::size_t i) const {
  return analyses.at(i).output_time(bw);
}

void ScheduleProblem::validate() const {
  if (steps <= 0) throw std::invalid_argument("ScheduleProblem: steps must be positive");
  if (threshold < 0.0) throw std::invalid_argument("ScheduleProblem: negative threshold");
  if (threshold_kind == ThresholdKind::kFractionOfSimTime && sim_time_per_step <= 0.0)
    throw std::invalid_argument("ScheduleProblem: fraction threshold needs sim_time_per_step");
  if (mth < 0.0) throw std::invalid_argument("ScheduleProblem: negative memory threshold");
  for (const AnalysisParams& a : analyses) {
    if (a.itv < 1)
      throw std::invalid_argument(format("analysis %s: itv must be >= 1", a.name.c_str()));
    if (a.itv > steps)
      throw std::invalid_argument(
          format("analysis %s: itv %ld exceeds steps %ld", a.name.c_str(), a.itv, steps));
    if (a.weight < 0.0)
      throw std::invalid_argument(format("analysis %s: negative weight", a.name.c_str()));
    if (a.ft < 0.0 || a.it < 0.0 || a.ct < 0.0)
      throw std::invalid_argument(format("analysis %s: negative time", a.name.c_str()));
    if (a.fm < 0.0 || a.im < 0.0 || a.cm < 0.0 || a.om < 0.0)
      throw std::invalid_argument(format("analysis %s: negative memory", a.name.c_str()));
    if (a.ot < 0.0 && a.om > 0.0 && !(bw > 0.0))
      throw std::invalid_argument(
          format("analysis %s: derived output time needs bandwidth", a.name.c_str()));
  }
}

}  // namespace insched::scheduler
