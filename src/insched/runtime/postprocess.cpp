#include "insched/runtime/postprocess.hpp"

#include <chrono>

#include "insched/analysis/msd.hpp"
#include "insched/machine/storage.hpp"
#include "insched/sim/particles/builders.hpp"
#include "insched/sim/particles/lj_md.hpp"
#include "insched/sim/particles/trajectory.hpp"
#include "insched/support/assert.hpp"
#include "insched/support/parallel.hpp"

namespace insched::runtime {

namespace {
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point begin) {
  return std::chrono::duration<double>(Clock::now() - begin).count();
}
}  // namespace

PostprocessComparison run_real(const RealPipelineSpec& spec) {
  PostprocessComparison out;
  out.steps = spec.steps;

  sim::WaterIonsSpec wspec;
  wspec.molecules = spec.molecules;
  wspec.hydronium_fraction = 0.02;
  wspec.ion_fraction = 0.02;
  sim::ParticleSystem system = sim::water_ions(wspec);
  out.atoms = system.size();

  sim::MdParams md_params;
  md_params.dt = 0.002;
  sim::LjSimulation md(std::move(system), md_params);
  md.minimize(100);
  md.thermalize(17);

  // Warm the thread pool so first-use startup cost is not billed to the
  // in-situ arm of the comparison.
  (void)parallel_reduce_sum(1 << 14, [](std::size_t i) { return static_cast<double>(i); });

  // --- In-situ arm: MSD computed in the simulation's memory ---------------
  analysis::MsdConfig msd_config;
  msd_config.group = {sim::Species::kHydronium, sim::Species::kIon};
  analysis::MsdAnalysis insitu("msd", md.system(), msd_config);
  {
    const auto begin = Clock::now();
    insitu.setup();
    out.insitu_seconds += seconds_since(begin);
  }

  machine::TempDir dir("postproc");
  const std::string path = dir.file("run.itrj").string();
  sim::TrajectoryWriter writer(path, md.system().size());

  for (long step = 1; step <= spec.steps; ++step) {
    md.step();
    {
      const auto begin = Clock::now();
      insitu.per_step();
      if (step % spec.analysis_interval == 0) (void)insitu.analyze();
      out.insitu_seconds += seconds_since(begin);
    }
    if (step % spec.output_interval == 0) {
      const auto begin = Clock::now();
      writer.write_frame(step, md.system());
      out.write_seconds += seconds_since(begin);
    }
  }
  writer.close();
  out.frames = static_cast<long>(writer.frames_written());

  // --- Post-processing arm: serial read + serial MSD ----------------------
  const int saved_threads = thread_count();
  set_thread_count(1);  // the paper's post-processing tool is serial
  {
    sim::TrajectoryReader reader(path);
    sim::TrajectoryFrame frame;
    sim::ParticleSystem replay = md.system();  // layout/species template
    bool have_reference = false;
    std::vector<double> ref_x, ref_y, ref_z;
    while (true) {
      const auto read_begin = Clock::now();
      const bool ok = reader.read_frame(frame);
      out.read_seconds += seconds_since(read_begin);
      if (!ok) break;

      const auto begin = Clock::now();
      if (!have_reference) {
        ref_x = frame.x;
        ref_y = frame.y;
        ref_z = frame.z;
        have_reference = true;
      } else {
        // Serial MSD over the tracked species relative to the first frame.
        double msd = 0.0;
        std::size_t count = 0;
        for (std::size_t i = 0; i < replay.size(); ++i) {
          if (replay.species[i] != sim::Species::kHydronium &&
              replay.species[i] != sim::Species::kIon)
            continue;
          const sim::Box& box = replay.box();
          const double dx = sim::Box::min_image(frame.x[i] - ref_x[i], box.lx);
          const double dy = sim::Box::min_image(frame.y[i] - ref_y[i], box.ly);
          const double dz = sim::Box::min_image(frame.z[i] - ref_z[i], box.lz);
          msd += dx * dx + dy * dy + dz * dz;
          ++count;
        }
        INSCHED_ASSERT(count > 0);
      }
      out.postprocess_seconds += seconds_since(begin);
    }
  }
  set_thread_count(saved_threads);
  return out;
}

PostprocessComparison model(const ModeledPipelineSpec& spec) {
  PostprocessComparison out;
  out.atoms = spec.atoms;
  out.steps = spec.steps;
  out.frames = spec.steps / spec.output_interval;

  const double frame_bytes = static_cast<double>(spec.atoms) * 6.0 * sizeof(double);
  const double file_bytes = frame_bytes * static_cast<double>(out.frames);

  // Simulation site writes the trajectory through the parallel filesystem.
  out.write_seconds = file_bytes / spec.simulation_site.peak_io_bw;

  // Analysis site reads it back: parse-bandwidth limited, and a naive tool
  // re-scans the file once per analyzed frame (this is what makes the
  // paper's read column explode superlinearly with system size).
  out.read_seconds = file_bytes * spec.rescans_per_frame *
                     static_cast<double>(out.frames) / spec.parse_bw;

  // Serial analysis on one workstation core (includes data marshalling).
  out.postprocess_seconds = static_cast<double>(spec.atoms) *
                            static_cast<double>(out.frames) *
                            spec.post_seconds_per_atom_frame;

  // In-situ: the same flops spread over every core of the partition plus a
  // collective latency floor per analysis step; no storage read at all.
  const double analysis_flops = static_cast<double>(spec.atoms) *
                                spec.flops_per_atom_analysis *
                                static_cast<double>(out.frames);
  out.insitu_seconds =
      analysis_flops / (static_cast<double>(spec.simulation_site.total_cores()) *
                        spec.simulation_site.flops_per_core) +
      spec.collective_floor_seconds * static_cast<double>(out.frames);
  return out;
}

}  // namespace insched::runtime
