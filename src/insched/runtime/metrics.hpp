#pragma once

// Measured metrics of an in-situ run: the runtime's observed counterpart of
// the validator's predicted report. Times are wall-clock seconds.

#include <string>
#include <vector>

#include "insched/support/thread_annotations.hpp"

namespace insched::runtime {

struct AnalysisMetrics {
  std::string name;
  long analysis_steps = 0;
  long output_steps = 0;
  double setup_seconds = 0.0;     ///< measured ft
  double per_step_seconds = 0.0;  ///< accumulated it
  double compute_seconds = 0.0;   ///< accumulated ct
  double output_seconds = 0.0;    ///< accumulated ot (measured or modeled)
  double bytes_written = 0.0;
  long failures = 0;              ///< analyze()/output() calls that threw
  bool disabled = false;          ///< turned off mid-run by a failure policy

  [[nodiscard]] double total_seconds() const noexcept {
    return setup_seconds + per_step_seconds + compute_seconds + output_seconds;
  }
  [[nodiscard]] double visible_seconds() const noexcept {
    return compute_seconds + output_seconds;
  }
};

struct RunMetrics {
  long steps = 0;
  double simulation_seconds = 0.0;
  std::vector<AnalysisMetrics> analyses;
  double peak_memory_bytes = 0.0;
  long memory_violations = 0;
  // Asynchronous (GLEAN-style staged) output accounting: total modeled write
  // time issued to the background channel, and the part that could not be
  // hidden behind subsequent simulation steps (charged at the end).
  double async_output_seconds = 0.0;
  double async_drain_seconds = 0.0;
  // Failure-policy accounting (RuntimeConfig::on_analysis_failure /
  // on_memory_overrun): exceptions swallowed, analyses disabled mid-run,
  // and steps whose committed memory peak exceeded the budget.
  long analysis_failures = 0;
  long analyses_disabled = 0;
  long memory_overruns = 0;

  [[nodiscard]] double total_analysis_seconds() const noexcept;
  [[nodiscard]] double visible_analysis_seconds() const noexcept;
  /// Fraction of the given budget consumed by analysis time.
  [[nodiscard]] double utilization(double budget_seconds) const noexcept;
  /// Overhead of in-situ analysis relative to the pure simulation time.
  [[nodiscard]] double overhead_fraction() const noexcept;

  [[nodiscard]] std::string to_string() const;
};

/// Thread-safe accumulator for metrics produced by concurrent runtime
/// shards (ensemble members, replicated virtual runs). Partial RunMetrics
/// merge under a lock: scalar counters and times add, per-analysis rows
/// join by name, and peak memory takes the max. The locking discipline is
/// declared with thread-safety annotations, so a Clang -Wthread-safety
/// build rejects unguarded access to the accumulated state.
class MetricsRegistry {
 public:
  /// Folds one shard's metrics into the running total.
  void merge(const RunMetrics& partial);

  /// Copy of the accumulated state.
  [[nodiscard]] RunMetrics snapshot() const;

  /// Number of merge() calls folded in so far.
  [[nodiscard]] long merges() const;

  void reset();

 private:
  mutable Mutex mu_;
  RunMetrics total_ INSCHED_GUARDED_BY(mu_);
  long merges_ INSCHED_GUARDED_BY(mu_) = 0;
};

}  // namespace insched::runtime
