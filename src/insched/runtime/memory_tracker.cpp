#include "insched/runtime/memory_tracker.hpp"

#include <cmath>
#include <numeric>

#include "insched/support/assert.hpp"

namespace insched::runtime {

MemoryTracker::MemoryTracker(std::size_t analyses, double mth)
    : mth_(mth), fm_(analyses, 0.0), mem_(analyses, 0.0) {
  INSCHED_EXPECTS(mth >= 0.0);
}

void MemoryTracker::activate(std::size_t i, double fm) {
  INSCHED_EXPECTS(i < mem_.size());
  INSCHED_EXPECTS(fm >= 0.0);
  fm_[i] = fm;
  mem_[i] = fm;
}

void MemoryTracker::begin_step(long step) { current_step_ = step; }

void MemoryTracker::add_per_step(std::size_t i, double im) {
  INSCHED_EXPECTS(i < mem_.size());
  mem_[i] += im;
}

void MemoryTracker::add_analysis(std::size_t i, double cm) {
  INSCHED_EXPECTS(i < mem_.size());
  mem_[i] += cm;
}

void MemoryTracker::add_output(std::size_t i, double om) {
  INSCHED_EXPECTS(i < mem_.size());
  mem_[i] += om;
}

void MemoryTracker::commit_step() {
  // Samples sum_i mStart_{i,j} (Eq 8): all of the step's allocations have
  // been reported, resets have not yet happened.
  const double total = current_total();
  if (total > peak_) {
    peak_ = total;
    peak_step_ = current_step_;
  }
  if (std::isfinite(mth_) && total > mth_ * (1.0 + 1e-12)) ++violations_;
}

void MemoryTracker::finish_output(std::size_t i) {
  INSCHED_EXPECTS(i < mem_.size());
  mem_[i] = fm_[i];  // Eq 6: memory resets to the fixed allocation
}

double MemoryTracker::current(std::size_t i) const {
  INSCHED_EXPECTS(i < mem_.size());
  return mem_[i];
}

double MemoryTracker::current_total() const {
  return std::accumulate(mem_.begin(), mem_.end(), 0.0);
}

}  // namespace insched::runtime
