#pragma once

// Virtual executor for hybrid in-situ / in-transit schedules: replays a
// CoanalysisSolution on two lanes — the simulation resource (sim steps,
// in-situ analyses, visible transfer time) and the staging resource
// (analysis compute that arrives with each transfer). Staging work drains
// concurrently with the simulation; the run ends when both lanes finish, so
// the report exposes whether staging is the critical path.

#include <vector>

#include "insched/scheduler/coanalysis.hpp"

namespace insched::runtime {

struct HybridRunReport {
  double sim_lane_seconds = 0.0;      ///< sim steps + in-situ + visible transfers
  double staging_lane_seconds = 0.0;  ///< when the staging queue finally drains
  double end_to_end_seconds = 0.0;    ///< max of the lanes
  double staging_busy_seconds = 0.0;  ///< total staging compute executed
  double staging_idle_seconds = 0.0;  ///< staging capacity left unused
  double network_bytes = 0.0;
  bool staging_is_critical_path = false;
  /// Maximum staging backlog (seconds of queued work) observed at any step.
  double peak_staging_backlog_seconds = 0.0;
};

[[nodiscard]] HybridRunReport hybrid_execute(const scheduler::CoanalysisProblem& problem,
                                             const scheduler::CoanalysisSolution& solution);

}  // namespace insched::runtime
