#include "insched/runtime/virtual_exec.hpp"

#include "insched/runtime/memory_tracker.hpp"
#include "insched/support/assert.hpp"

namespace insched::runtime {

VirtualRunReport virtual_execute(const scheduler::ScheduleProblem& problem,
                                 const scheduler::Schedule& schedule,
                                 const VirtualExecConfig& config) {
  INSCHED_EXPECTS(schedule.size() == problem.size());
  INSCHED_EXPECTS(schedule.steps() == problem.steps);

  const std::size_t n = problem.size();
  VirtualRunReport report;
  report.metrics.steps = problem.steps;
  report.metrics.analyses.resize(n);
  report.step_seconds.assign(static_cast<std::size_t>(problem.steps), 0.0);

  MemoryTracker tracker(n, problem.mth);
  std::vector<std::size_t> next_a(n, 0), next_o(n, 0);

  for (std::size_t i = 0; i < n; ++i) {
    const scheduler::AnalysisSchedule& s = schedule.analysis(i);
    report.metrics.analyses[i].name = s.name;
    if (!s.active()) continue;
    const scheduler::AnalysisParams& p = problem.analyses[i];
    report.metrics.analyses[i].setup_seconds = p.ft;
    tracker.activate(i, p.fm);
  }

  for (long step = 1; step <= problem.steps; ++step) {
    double step_time = config.sim_time_per_step;
    report.metrics.simulation_seconds += config.sim_time_per_step;

    tracker.begin_step(step);
    for (std::size_t i = 0; i < n; ++i) {
      const scheduler::AnalysisSchedule& s = schedule.analysis(i);
      if (!s.active()) continue;
      const scheduler::AnalysisParams& p = problem.analyses[i];
      report.metrics.analyses[i].per_step_seconds += p.it;
      step_time += p.it;
      tracker.add_per_step(i, p.im);

      const bool analysis_step =
          next_a[i] < s.analysis_steps.size() && s.analysis_steps[next_a[i]] == step;
      if (analysis_step) {
        ++next_a[i];
        report.metrics.analyses[i].compute_seconds += p.ct;
        ++report.metrics.analyses[i].analysis_steps;
        step_time += p.ct;
        tracker.add_analysis(i, p.cm);
      }
      const bool output_step =
          analysis_step && next_o[i] < s.output_steps.size() && s.output_steps[next_o[i]] == step;
      if (output_step) {
        tracker.add_output(i, p.om);
      }
    }
    tracker.commit_step();
    for (std::size_t i = 0; i < n; ++i) {
      const scheduler::AnalysisSchedule& s = schedule.analysis(i);
      const bool output_step =
          next_o[i] < s.output_steps.size() && s.output_steps[next_o[i]] == step;
      if (!output_step) continue;
      ++next_o[i];
      const double ot = problem.output_time(i);
      report.metrics.analyses[i].output_seconds += ot;
      report.metrics.analyses[i].bytes_written += problem.analyses[i].om;
      ++report.metrics.analyses[i].output_steps;
      step_time += ot;
      tracker.finish_output(i);
    }

    // Simulation output frames.
    if (config.sim_output_interval > 0 && step % config.sim_output_interval == 0 &&
        config.write_bw > 0.0) {
      const double t = config.sim_output_bytes_per_step / config.write_bw;
      report.sim_output_seconds += t;
      step_time += t;
    }
    report.step_seconds[static_cast<std::size_t>(step - 1)] = step_time;
  }

  report.metrics.peak_memory_bytes = tracker.peak();
  report.metrics.memory_violations = tracker.violations();
  report.end_to_end_seconds = report.metrics.simulation_seconds +
                              report.metrics.total_analysis_seconds() +
                              report.sim_output_seconds;
  return report;
}

}  // namespace insched::runtime
