#pragma once

// Virtual executor: replays a schedule against the Table-1 cost parameters
// and a machine model instead of real kernels — this is how the paper-scale
// experiments (100M-1G atoms on 2Ki-32Ki cores of Mira) are reproduced on a
// laptop. It walks the same per-step loop as InsituRuntime, but "time" is
// the modeled cost and "memory" the modeled recurrence, so its reports have
// exactly the same shape as real runs.

#include <vector>

#include "insched/runtime/metrics.hpp"
#include "insched/scheduler/params.hpp"
#include "insched/scheduler/schedule.hpp"

namespace insched::runtime {

struct VirtualRunReport {
  RunMetrics metrics;                   ///< modeled times in RunMetrics form
  std::vector<double> step_seconds;     ///< per-step total (sim + analyses)
  double sim_output_seconds = 0.0;      ///< simulation output I/O, if modeled
  double end_to_end_seconds = 0.0;      ///< sim + analyses + sim output
};

struct VirtualExecConfig {
  double sim_time_per_step = 0.0;        ///< seconds per simulation step
  double sim_output_bytes_per_step = 0.0;///< simulation output frame size
  long sim_output_interval = 0;          ///< 0 = simulation writes nothing
  double write_bw = 0.0;                 ///< bytes/s for simulation output
};

/// Replays `schedule` for `problem`'s analyses under the virtual costs.
[[nodiscard]] VirtualRunReport virtual_execute(const scheduler::ScheduleProblem& problem,
                                               const scheduler::Schedule& schedule,
                                               const VirtualExecConfig& config);

}  // namespace insched::runtime
