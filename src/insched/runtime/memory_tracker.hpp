#pragma once

// Online implementation of the paper's memory recurrences (Eqs 5-8): the
// runtime reports events (activation, per-step allocation, analysis step,
// output step) and the tracker maintains mStart/mEnd per analysis plus the
// global per-step peak, flagging threshold violations as they happen.

#include <cstddef>
#include <string>
#include <vector>

namespace insched::runtime {

class MemoryTracker {
 public:
  /// `mth` may be infinity for untracked budgets.
  MemoryTracker(std::size_t analyses, double mth);

  /// Activation at step 0: mEnd_{i,0} = fm_i (Eq 7).
  void activate(std::size_t i, double fm);

  /// Per-step protocol, mirroring Eqs 5-8:
  ///   begin_step(j); add_per_step/add_analysis/add_output events;
  ///   commit_step();                 // samples sum(mStart) against mth
  ///   finish_output(i) for output steps;  // Eq 6 reset to fm
  void begin_step(long step);
  void add_per_step(std::size_t i, double im);
  void add_analysis(std::size_t i, double cm);
  void add_output(std::size_t i, double om);
  void commit_step();
  /// Marks the output reset: mEnd = fm (Eq 6). Call after commit_step().
  void finish_output(std::size_t i);

  [[nodiscard]] double current(std::size_t i) const;
  [[nodiscard]] double current_total() const;
  [[nodiscard]] double peak() const noexcept { return peak_; }
  [[nodiscard]] long peak_step() const noexcept { return peak_step_; }
  [[nodiscard]] bool within_budget() const noexcept { return violations_ == 0; }
  [[nodiscard]] long violations() const noexcept { return violations_; }
  [[nodiscard]] double budget() const noexcept { return mth_; }

 private:
  double mth_;
  std::vector<double> fm_;
  std::vector<double> mem_;  ///< running mStart/mEnd per analysis
  double peak_ = 0.0;
  long peak_step_ = 0;
  long current_step_ = 0;
  long violations_ = 0;
};

}  // namespace insched::runtime
