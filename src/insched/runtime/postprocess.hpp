#pragma once

// Post-processing pipeline — the baseline the paper's Table 4 compares
// in-situ analysis against: the simulation writes its trajectory to storage,
// then a serial tool reads it back and computes the analysis (here: MSD).
// Two modes:
//   run_real():    actually writes/reads files in a temp dir on this machine
//                  and times every phase (laptop-scale Table 4).
//   model():       predicts the phase times from machine/storage models at
//                  paper scale (the 16 Ki-core Mira vs. workstation setup).

#include <cstddef>

#include "insched/machine/machine.hpp"

namespace insched::runtime {

struct PostprocessComparison {
  std::size_t atoms = 0;
  long steps = 0;
  long frames = 0;
  double write_seconds = 0.0;        ///< simulation writing the trajectory
  double read_seconds = 0.0;         ///< post-processing tool reading it back
  double postprocess_seconds = 0.0;  ///< serial analysis on the read frames
  double insitu_seconds = 0.0;       ///< same analysis in-situ
  [[nodiscard]] double speedup() const noexcept {
    return insitu_seconds > 0.0 ? (read_seconds + postprocess_seconds) / insitu_seconds : 0.0;
  }
};

struct RealPipelineSpec {
  std::size_t molecules = 500;   ///< water+ions size (3 particles/molecule)
  long steps = 200;              ///< simulation steps
  long output_interval = 20;     ///< trajectory frame every k steps
  long analysis_interval = 20;   ///< in-situ MSD every k steps
};

/// Runs the full real pipeline locally (mini-MD + files + serial re-read).
[[nodiscard]] PostprocessComparison run_real(const RealPipelineSpec& spec);

struct ModeledPipelineSpec {
  std::size_t atoms = 12544;
  long steps = 1000;
  long output_interval = 100;
  machine::MachineModel analysis_site;    ///< workstation reading the dump
  machine::MachineModel simulation_site;  ///< in-situ resource (Mira partition)

  // Post-processing tool model (the paper used a serial custom tool reading
  // LAMMPS text dumps — dominated by parsing, not raw disk bandwidth):
  double parse_bw = 10e6;                   ///< bytes/s the serial parser sustains
  double rescans_per_frame = 1.0;           ///< naive tools re-scan the file per frame
  double post_seconds_per_atom_frame = 8.2e-6;  ///< serial analysis incl. marshalling
  // In-situ side: flop cost spread over the partition plus a collective
  // latency floor (an MPI_Allreduce never beats network latency).
  double flops_per_atom_analysis = 200.0;
  double collective_floor_seconds = 1e-3;   ///< per analysis step
};

/// Predicts the comparison at paper scale from the machine models.
[[nodiscard]] PostprocessComparison model(const ModeledPipelineSpec& spec);

}  // namespace insched::runtime
