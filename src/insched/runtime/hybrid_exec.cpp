#include "insched/runtime/hybrid_exec.hpp"

#include <algorithm>

#include "insched/support/assert.hpp"

namespace insched::runtime {

HybridRunReport hybrid_execute(const scheduler::CoanalysisProblem& problem,
                               const scheduler::CoanalysisSolution& solution) {
  problem.validate();
  INSCHED_EXPECTS(solution.solved);
  const std::size_t n = problem.base.size();
  INSCHED_EXPECTS(solution.schedule.size() == n);

  HybridRunReport report;
  double sim_clock = 0.0;       // simulation-lane time
  double staging_done_at = 0.0; // when the staging queue drains

  std::vector<std::size_t> cursor(n, 0);
  for (long step = 1; step <= problem.base.steps; ++step) {
    sim_clock += problem.base.sim_time_per_step;
    // Active in-situ analyses pay their per-step facilitation.
    for (std::size_t i = 0; i < n; ++i) {
      if (solution.modes[i] == scheduler::ExecutionMode::kInsitu &&
          solution.schedule.analysis(i).active())
        sim_clock += problem.base.analyses[i].it;
    }

    for (std::size_t i = 0; i < n; ++i) {
      const scheduler::AnalysisSchedule& s = solution.schedule.analysis(i);
      const bool analysis_now =
          cursor[i] < s.analysis_steps.size() && s.analysis_steps[cursor[i]] == step;
      if (!analysis_now) continue;
      ++cursor[i];

      if (solution.modes[i] == scheduler::ExecutionMode::kInsitu) {
        sim_clock += problem.base.analyses[i].ct + problem.base.output_time(i);
      } else if (solution.modes[i] == scheduler::ExecutionMode::kStaging) {
        // The simulation blocks for the visible part of the transfer; the
        // staging lane enqueues the compute once the data has arrived.
        sim_clock += problem.transfer_time(i);
        const double arrival = sim_clock;
        const double start = std::max(arrival, staging_done_at);
        staging_done_at = start + problem.remote[i].stage_ct;
        report.staging_busy_seconds += problem.remote[i].stage_ct;
        report.network_bytes += problem.remote[i].transfer_bytes;
        report.peak_staging_backlog_seconds =
            std::max(report.peak_staging_backlog_seconds, staging_done_at - sim_clock);
      }
    }
  }

  // Setup costs of active in-situ analyses (paid once, before step 1; added
  // here so the lane total matches the validator's accounting).
  for (std::size_t i = 0; i < n; ++i) {
    if (solution.modes[i] == scheduler::ExecutionMode::kInsitu &&
        solution.schedule.analysis(i).active())
      sim_clock += problem.base.analyses[i].ft;
  }

  report.sim_lane_seconds = sim_clock;
  report.staging_lane_seconds = std::max(staging_done_at, sim_clock);
  report.end_to_end_seconds = report.staging_lane_seconds;
  report.staging_is_critical_path = staging_done_at > sim_clock;
  report.staging_idle_seconds =
      std::max(0.0, report.end_to_end_seconds - report.staging_busy_seconds);
  return report;
}

}  // namespace insched::runtime
