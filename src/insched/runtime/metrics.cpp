#include "insched/runtime/metrics.hpp"

#include <algorithm>

#include "insched/support/string_util.hpp"
#include "insched/support/table.hpp"

namespace insched::runtime {

double RunMetrics::total_analysis_seconds() const noexcept {
  double total = 0.0;
  for (const AnalysisMetrics& a : analyses) total += a.total_seconds();
  return total;
}

double RunMetrics::visible_analysis_seconds() const noexcept {
  double total = 0.0;
  for (const AnalysisMetrics& a : analyses) total += a.visible_seconds();
  return total;
}

double RunMetrics::utilization(double budget_seconds) const noexcept {
  return budget_seconds > 0.0 ? total_analysis_seconds() / budget_seconds : 0.0;
}

double RunMetrics::overhead_fraction() const noexcept {
  return simulation_seconds > 0.0 ? total_analysis_seconds() / simulation_seconds : 0.0;
}

std::string RunMetrics::to_string() const {
  Table table(format("run metrics: %ld steps, simulation %s, analyses %s (%.2f%% overhead)",
                     steps, format_seconds(simulation_seconds).c_str(),
                     format_seconds(total_analysis_seconds()).c_str(),
                     100.0 * overhead_fraction()));
  table.set_header({"analysis", "steps", "outputs", "setup", "per-step", "compute", "output",
                    "written"});
  for (const AnalysisMetrics& a : analyses) {
    std::string name = a.name;
    if (a.disabled) name += " [disabled]";
    table.add_row({name, format("%ld", a.analysis_steps), format("%ld", a.output_steps),
                   format_seconds(a.setup_seconds), format_seconds(a.per_step_seconds),
                   format_seconds(a.compute_seconds), format_seconds(a.output_seconds),
                   format_bytes(a.bytes_written)});
  }
  std::string out = table.render();
  if (analysis_failures > 0 || analyses_disabled > 0 || memory_overruns > 0)
    out += format("failures: %ld analysis step(s) failed, %ld analysis(es) disabled, "
                  "%ld memory overrun(s)\n",
                  analysis_failures, analyses_disabled, memory_overruns);
  return out;
}

// ---------------------------------------------------------------------------
// MetricsRegistry

namespace {

void merge_analysis(AnalysisMetrics& into, const AnalysisMetrics& from) {
  into.analysis_steps += from.analysis_steps;
  into.output_steps += from.output_steps;
  into.setup_seconds += from.setup_seconds;
  into.per_step_seconds += from.per_step_seconds;
  into.compute_seconds += from.compute_seconds;
  into.output_seconds += from.output_seconds;
  into.bytes_written += from.bytes_written;
  into.failures += from.failures;
  into.disabled = into.disabled || from.disabled;
}

}  // namespace

void MetricsRegistry::merge(const RunMetrics& partial) {
  MutexLock lock(mu_);
  total_.steps += partial.steps;
  total_.simulation_seconds += partial.simulation_seconds;
  total_.peak_memory_bytes = std::max(total_.peak_memory_bytes, partial.peak_memory_bytes);
  total_.memory_violations += partial.memory_violations;
  total_.async_output_seconds += partial.async_output_seconds;
  total_.async_drain_seconds += partial.async_drain_seconds;
  total_.analysis_failures += partial.analysis_failures;
  total_.analyses_disabled += partial.analyses_disabled;
  total_.memory_overruns += partial.memory_overruns;
  for (const AnalysisMetrics& a : partial.analyses) {
    auto it = std::find_if(total_.analyses.begin(), total_.analyses.end(),
                           [&](const AnalysisMetrics& b) { return b.name == a.name; });
    if (it == total_.analyses.end())
      total_.analyses.push_back(a);
    else
      merge_analysis(*it, a);
  }
  ++merges_;
}

RunMetrics MetricsRegistry::snapshot() const {
  MutexLock lock(mu_);
  return total_;
}

long MetricsRegistry::merges() const {
  MutexLock lock(mu_);
  return merges_;
}

void MetricsRegistry::reset() {
  MutexLock lock(mu_);
  total_ = RunMetrics{};
  merges_ = 0;
}

}  // namespace insched::runtime
