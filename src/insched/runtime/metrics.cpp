#include "insched/runtime/metrics.hpp"

#include "insched/support/string_util.hpp"
#include "insched/support/table.hpp"

namespace insched::runtime {

double RunMetrics::total_analysis_seconds() const noexcept {
  double total = 0.0;
  for (const AnalysisMetrics& a : analyses) total += a.total_seconds();
  return total;
}

double RunMetrics::visible_analysis_seconds() const noexcept {
  double total = 0.0;
  for (const AnalysisMetrics& a : analyses) total += a.visible_seconds();
  return total;
}

double RunMetrics::utilization(double budget_seconds) const noexcept {
  return budget_seconds > 0.0 ? total_analysis_seconds() / budget_seconds : 0.0;
}

double RunMetrics::overhead_fraction() const noexcept {
  return simulation_seconds > 0.0 ? total_analysis_seconds() / simulation_seconds : 0.0;
}

std::string RunMetrics::to_string() const {
  Table table(format("run metrics: %ld steps, simulation %s, analyses %s (%.2f%% overhead)",
                     steps, format_seconds(simulation_seconds).c_str(),
                     format_seconds(total_analysis_seconds()).c_str(),
                     100.0 * overhead_fraction()));
  table.set_header({"analysis", "steps", "outputs", "setup", "per-step", "compute", "output",
                    "written"});
  for (const AnalysisMetrics& a : analyses) {
    std::string name = a.name;
    if (a.disabled) name += " [disabled]";
    table.add_row({name, format("%ld", a.analysis_steps), format("%ld", a.output_steps),
                   format_seconds(a.setup_seconds), format_seconds(a.per_step_seconds),
                   format_seconds(a.compute_seconds), format_seconds(a.output_seconds),
                   format_bytes(a.bytes_written)});
  }
  std::string out = table.render();
  if (analysis_failures > 0 || analyses_disabled > 0 || memory_overruns > 0)
    out += format("failures: %ld analysis step(s) failed, %ld analysis(es) disabled, "
                  "%ld memory overrun(s)\n",
                  analysis_failures, analyses_disabled, memory_overruns);
  return out;
}

}  // namespace insched::runtime
