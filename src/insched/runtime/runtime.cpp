#include "insched/runtime/runtime.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <string>
#include <vector>

#include "insched/perfmodel/profiler.hpp"
#include "insched/support/assert.hpp"
#include "insched/support/fault_inject.hpp"
#include "insched/support/log.hpp"

namespace insched::runtime {

const char* to_string(FailurePolicy policy) noexcept {
  switch (policy) {
    case FailurePolicy::kSkipAndLog: return "skip_and_log";
    case FailurePolicy::kDisableAnalysis: return "disable_analysis";
    case FailurePolicy::kAbort: return "abort";
  }
  return "unknown";
}

namespace {
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point begin) {
  return std::chrono::duration<double>(Clock::now() - begin).count();
}
}  // namespace

InsituRuntime::InsituRuntime(sim::ISimulation& simulation,
                             analysis::AnalysisRegistry& analyses,
                             const scheduler::Schedule& schedule, RuntimeConfig config)
    : simulation_(simulation), analyses_(analyses), schedule_(schedule), config_(config) {
  INSCHED_EXPECTS(analyses.size() == schedule.size());
}

RunMetrics InsituRuntime::run() {
  const std::size_t n = schedule_.size();
  RunMetrics metrics;
  metrics.steps = schedule_.steps();
  metrics.analyses.resize(n);

  MemoryTracker tracker(n, config_.memory_budget);
  std::optional<machine::SimulatedStore> store;
  if (config_.storage) store.emplace(*config_.storage);

  // Step 0: setup of active analyses (Eq 3 / Eq 7).
  for (std::size_t i = 0; i < n; ++i) {
    const scheduler::AnalysisSchedule& s = schedule_.analysis(i);
    metrics.analyses[i].name = s.name;
    if (!s.active()) continue;
    analysis::IAnalysis& a = analyses_.at(i);
    const auto begin = Clock::now();
    {
      INSCHED_PROFILE("insitu/setup");
      a.setup();
    }
    if (config_.measure_time) metrics.analyses[i].setup_seconds = seconds_since(begin);
    tracker.activate(i, a.resident_bytes());
  }

  // Per-analysis cursors over the sorted step lists.
  std::vector<std::size_t> next_a(n, 0), next_o(n, 0);
  double async_debt = 0.0;  // modeled write time not yet hidden

  // Failure-policy state: analyses turned off mid-run, and the violation
  // count already attributed to a policy decision.
  std::vector<char> disabled(n, 0);
  long violations_seen = 0;
  const auto disable = [&](std::size_t i, const char* why) {
    disabled[i] = 1;
    metrics.analyses[i].disabled = true;
    ++metrics.analyses_disabled;
    INSCHED_LOG_WARN("insitu runtime: disabling analysis '%s' (%s)",
                     metrics.analyses[i].name.c_str(), why);
  };
  // Shared analyze/output failure handling; returns after applying the
  // configured policy (kAbort rethrows from the catch site instead).
  const auto note_failure = [&](std::size_t i, long step, const char* phase,
                                const char* what) {
    ++metrics.analyses[i].failures;
    ++metrics.analysis_failures;
    INSCHED_LOG_WARN("insitu runtime: analysis '%s' %s failed at step %ld: %s",
                     metrics.analyses[i].name.c_str(), phase, step, what);
    if (config_.on_analysis_failure == FailurePolicy::kDisableAnalysis)
      disable(i, "analysis failure policy");
  };

  for (long step = 1; step <= schedule_.steps(); ++step) {
    {
      INSCHED_PROFILE("simulation/step");
      const auto begin = Clock::now();
      simulation_.step();
      const double sim_seconds = seconds_since(begin);
      if (config_.measure_time) metrics.simulation_seconds += sim_seconds;
      // The background output channel drains while the simulation computes.
      async_debt = std::max(0.0, async_debt - sim_seconds);
    }

    tracker.begin_step(step);
    // Per-step facilitation of every active analysis (it / im).
    for (std::size_t i = 0; i < n; ++i) {
      const scheduler::AnalysisSchedule& s = schedule_.analysis(i);
      if (!s.active() || disabled[i]) continue;
      analysis::IAnalysis& a = analyses_.at(i);
      const double before = a.resident_bytes();
      const auto begin = Clock::now();
      {
        INSCHED_PROFILE("insitu/per_step");
        a.per_step();
      }
      if (config_.measure_time)
        metrics.analyses[i].per_step_seconds += seconds_since(begin);
      tracker.add_per_step(i, std::max(0.0, a.resident_bytes() - before));
    }

    // Analysis steps (ct / cm).
    std::vector<bool> output_now(n, false);
    for (std::size_t i = 0; i < n; ++i) {
      const scheduler::AnalysisSchedule& s = schedule_.analysis(i);
      const bool analysis_step =
          next_a[i] < s.analysis_steps.size() && s.analysis_steps[next_a[i]] == step;
      if (!analysis_step) continue;
      ++next_a[i];
      const bool output_due =
          next_o[i] < s.output_steps.size() && s.output_steps[next_o[i]] == step;
      if (disabled[i]) {
        // Keep the output cursor aligned with the schedule even while off.
        if (output_due) ++next_o[i];
        continue;
      }
      analysis::IAnalysis& a = analyses_.at(i);
      const double before = a.resident_bytes();
      const auto begin = Clock::now();
      bool ok = true;
      try {
        INSCHED_PROFILE("insitu/analyze");
        if (fault::enabled() && fault::should_fail(fault::Hook::kRuntimeAnalyze))
          throw std::runtime_error("injected analysis fault");
        (void)a.analyze();
      } catch (const std::exception& e) {
        if (config_.on_analysis_failure == FailurePolicy::kAbort) throw;
        ok = false;
        note_failure(i, step, "analyze", e.what());
      }
      if (config_.measure_time)
        metrics.analyses[i].compute_seconds += seconds_since(begin);
      if (!ok) {
        // The failed step produced nothing to flush.
        if (output_due) ++next_o[i];
        continue;
      }
      ++metrics.analyses[i].analysis_steps;
      tracker.add_analysis(i, std::max(0.0, a.resident_bytes() - before));

      output_now[i] = output_due;
    }

    // Output allocation happens before the step's memory peak is sampled,
    // the reset after (Eqs 5-6).
    for (std::size_t i = 0; i < n; ++i) {
      if (output_now[i]) tracker.add_output(i, 0.0);  // om folded into bytes below
    }
    tracker.commit_step();

    // Memory-budget overrun policy: the tracker samples the step's committed
    // peak against the budget; new violations trigger the configured action.
    const long violations_now = tracker.violations();
    if (violations_now > violations_seen) {
      metrics.memory_overruns += violations_now - violations_seen;
      violations_seen = violations_now;
      switch (config_.on_memory_overrun) {
        case FailurePolicy::kAbort:
          throw std::runtime_error("in-situ memory budget overrun at step " +
                                   std::to_string(step));
        case FailurePolicy::kDisableAnalysis: {
          // Shed the largest-footprint analysis still running; its tracked
          // memory stops growing and later steps skip it entirely.
          std::size_t victim = n;
          double worst = -1.0;
          for (std::size_t i = 0; i < n; ++i) {
            if (disabled[i] || !schedule_.analysis(i).active()) continue;
            const double b = analyses_.at(i).resident_bytes();
            if (b > worst) {
              worst = b;
              victim = i;
            }
          }
          if (victim < n) disable(victim, "memory budget overrun");
          break;
        }
        case FailurePolicy::kSkipAndLog:
          INSCHED_LOG_WARN("insitu runtime: memory budget overrun at step %ld "
                           "(peak %.0f bytes)",
                           step, tracker.peak());
          break;
      }
    }

    for (std::size_t i = 0; i < n; ++i) {
      if (!output_now[i]) continue;
      ++next_o[i];
      analysis::IAnalysis& a = analyses_.at(i);
      const auto begin = Clock::now();
      double bytes = 0.0;
      bool ok = true;
      try {
        INSCHED_PROFILE("insitu/output");
        if (fault::enabled() && fault::should_fail(fault::Hook::kRuntimeOutput))
          throw std::runtime_error("injected output fault");
        bytes = a.output();
      } catch (const std::exception& e) {
        if (config_.on_analysis_failure == FailurePolicy::kAbort) throw;
        ok = false;
        note_failure(i, step, "output", e.what());
      }
      if (config_.measure_time)
        metrics.analyses[i].output_seconds += seconds_since(begin);
      if (ok) {
        if (store) {
          const double write_seconds = store->write(bytes);
          if (config_.async_output) {
            metrics.async_output_seconds += write_seconds;
            async_debt += write_seconds;  // hidden behind later sim steps
          } else {
            metrics.analyses[i].output_seconds += write_seconds;
          }
        }
        metrics.analyses[i].bytes_written += bytes;
        ++metrics.analyses[i].output_steps;
      }
      // The output buffer is released either way (a failed flush is dropped),
      // keeping the Eq 5-6 recurrence consistent.
      tracker.finish_output(i);
    }
  }

  metrics.peak_memory_bytes = tracker.peak();
  metrics.memory_violations = tracker.violations();
  metrics.async_drain_seconds = async_debt;  // unhidden remainder at the end
  return metrics;
}

}  // namespace insched::runtime
