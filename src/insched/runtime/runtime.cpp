#include "insched/runtime/runtime.hpp"

#include <algorithm>
#include <chrono>

#include "insched/perfmodel/profiler.hpp"
#include "insched/support/assert.hpp"

namespace insched::runtime {

namespace {
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point begin) {
  return std::chrono::duration<double>(Clock::now() - begin).count();
}
}  // namespace

InsituRuntime::InsituRuntime(sim::ISimulation& simulation,
                             analysis::AnalysisRegistry& analyses,
                             const scheduler::Schedule& schedule, RuntimeConfig config)
    : simulation_(simulation), analyses_(analyses), schedule_(schedule), config_(config) {
  INSCHED_EXPECTS(analyses.size() == schedule.size());
}

RunMetrics InsituRuntime::run() {
  const std::size_t n = schedule_.size();
  RunMetrics metrics;
  metrics.steps = schedule_.steps();
  metrics.analyses.resize(n);

  MemoryTracker tracker(n, config_.memory_budget);
  std::optional<machine::SimulatedStore> store;
  if (config_.storage) store.emplace(*config_.storage);

  // Step 0: setup of active analyses (Eq 3 / Eq 7).
  for (std::size_t i = 0; i < n; ++i) {
    const scheduler::AnalysisSchedule& s = schedule_.analysis(i);
    metrics.analyses[i].name = s.name;
    if (!s.active()) continue;
    analysis::IAnalysis& a = analyses_.at(i);
    const auto begin = Clock::now();
    {
      INSCHED_PROFILE("insitu/setup");
      a.setup();
    }
    if (config_.measure_time) metrics.analyses[i].setup_seconds = seconds_since(begin);
    tracker.activate(i, a.resident_bytes());
  }

  // Per-analysis cursors over the sorted step lists.
  std::vector<std::size_t> next_a(n, 0), next_o(n, 0);
  double async_debt = 0.0;  // modeled write time not yet hidden

  for (long step = 1; step <= schedule_.steps(); ++step) {
    {
      INSCHED_PROFILE("simulation/step");
      const auto begin = Clock::now();
      simulation_.step();
      const double sim_seconds = seconds_since(begin);
      if (config_.measure_time) metrics.simulation_seconds += sim_seconds;
      // The background output channel drains while the simulation computes.
      async_debt = std::max(0.0, async_debt - sim_seconds);
    }

    tracker.begin_step(step);
    // Per-step facilitation of every active analysis (it / im).
    for (std::size_t i = 0; i < n; ++i) {
      const scheduler::AnalysisSchedule& s = schedule_.analysis(i);
      if (!s.active()) continue;
      analysis::IAnalysis& a = analyses_.at(i);
      const double before = a.resident_bytes();
      const auto begin = Clock::now();
      {
        INSCHED_PROFILE("insitu/per_step");
        a.per_step();
      }
      if (config_.measure_time)
        metrics.analyses[i].per_step_seconds += seconds_since(begin);
      tracker.add_per_step(i, std::max(0.0, a.resident_bytes() - before));
    }

    // Analysis steps (ct / cm).
    std::vector<bool> output_now(n, false);
    for (std::size_t i = 0; i < n; ++i) {
      const scheduler::AnalysisSchedule& s = schedule_.analysis(i);
      const bool analysis_step =
          next_a[i] < s.analysis_steps.size() && s.analysis_steps[next_a[i]] == step;
      if (!analysis_step) continue;
      ++next_a[i];
      analysis::IAnalysis& a = analyses_.at(i);
      const double before = a.resident_bytes();
      const auto begin = Clock::now();
      {
        INSCHED_PROFILE("insitu/analyze");
        (void)a.analyze();
      }
      if (config_.measure_time)
        metrics.analyses[i].compute_seconds += seconds_since(begin);
      ++metrics.analyses[i].analysis_steps;
      tracker.add_analysis(i, std::max(0.0, a.resident_bytes() - before));

      output_now[i] = next_o[i] < s.output_steps.size() && s.output_steps[next_o[i]] == step;
    }

    // Output allocation happens before the step's memory peak is sampled,
    // the reset after (Eqs 5-6).
    for (std::size_t i = 0; i < n; ++i) {
      if (output_now[i]) tracker.add_output(i, 0.0);  // om folded into bytes below
    }
    tracker.commit_step();

    for (std::size_t i = 0; i < n; ++i) {
      if (!output_now[i]) continue;
      ++next_o[i];
      analysis::IAnalysis& a = analyses_.at(i);
      const auto begin = Clock::now();
      double bytes = 0.0;
      {
        INSCHED_PROFILE("insitu/output");
        bytes = a.output();
      }
      if (config_.measure_time)
        metrics.analyses[i].output_seconds += seconds_since(begin);
      if (store) {
        const double write_seconds = store->write(bytes);
        if (config_.async_output) {
          metrics.async_output_seconds += write_seconds;
          async_debt += write_seconds;  // hidden behind later sim steps
        } else {
          metrics.analyses[i].output_seconds += write_seconds;
        }
      }
      metrics.analyses[i].bytes_written += bytes;
      ++metrics.analyses[i].output_steps;
      tracker.finish_output(i);
    }
  }

  metrics.peak_memory_bytes = tracker.peak();
  metrics.memory_violations = tracker.violations();
  metrics.async_drain_seconds = async_debt;  // unhidden remainder at the end
  return metrics;
}

}  // namespace insched::runtime
