#pragma once

// The in-situ coupling layer (the paper's Figure-1 loop): drives the
// simulation step by step, interleaves the scheduled analyses on the same
// resources and address space, tracks memory per the Eq 5-8 recurrences and
// models output I/O through a storage model. The GLEAN-analog of this
// library.

#include <limits>
#include <optional>

#include "insched/analysis/registry.hpp"
#include "insched/machine/storage.hpp"
#include "insched/runtime/memory_tracker.hpp"
#include "insched/runtime/metrics.hpp"
#include "insched/scheduler/params.hpp"
#include "insched/scheduler/schedule.hpp"
#include "insched/sim/simulation.hpp"

namespace insched::runtime {

/// What the runtime does when an analysis step throws or a committed step's
/// memory peak overruns the budget (docs/ROBUSTNESS.md). The simulation
/// itself is never sacrificed: analyses are the expendable part of the loop.
enum class FailurePolicy {
  kSkipAndLog,       ///< drop this step's analysis work, keep it scheduled
  kDisableAnalysis,  ///< permanently disable the offending analysis
  kAbort,            ///< propagate: the exception leaves run()
};

[[nodiscard]] const char* to_string(FailurePolicy policy) noexcept;

struct RuntimeConfig {
  /// Storage model for analysis outputs; when set, each output's modeled
  /// write time (bytes/bw) is charged to the analysis's output_seconds in
  /// addition to the measured serialization cost.
  std::optional<machine::StorageModel> storage;
  /// Memory budget for the tracker (bytes); infinity disables violations.
  double memory_budget = std::numeric_limits<double>::infinity();
  /// Record wall-clock per-phase times (off for pure functional runs).
  bool measure_time = true;
  /// GLEAN-style asynchronous output: modeled write time drains behind
  /// subsequent simulation steps instead of blocking the analysis; any
  /// remainder at the end of the run is charged as async_drain_seconds.
  bool async_output = false;
  /// Applied when IAnalysis::analyze() or output() throws.
  FailurePolicy on_analysis_failure = FailurePolicy::kSkipAndLog;
  /// Applied when a committed step's memory peak exceeds `memory_budget`.
  /// kDisableAnalysis turns off the largest-footprint active analysis.
  FailurePolicy on_memory_overrun = FailurePolicy::kSkipAndLog;
};

class InsituRuntime {
 public:
  /// The registry must hold exactly one analysis per schedule entry, in the
  /// same order. The schedule is typically the output of solve_schedule().
  InsituRuntime(sim::ISimulation& simulation, analysis::AnalysisRegistry& analyses,
                const scheduler::Schedule& schedule, RuntimeConfig config = {});

  /// Runs the whole schedule (schedule.steps() simulation steps) and returns
  /// the measured metrics.
  RunMetrics run();

 private:
  sim::ISimulation& simulation_;
  analysis::AnalysisRegistry& analyses_;
  const scheduler::Schedule& schedule_;
  RuntimeConfig config_;
};

}  // namespace insched::runtime
