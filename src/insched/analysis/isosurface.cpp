#include "insched/analysis/isosurface.hpp"

#include <cmath>

#include "insched/support/assert.hpp"
#include "insched/support/parallel.hpp"

namespace insched::analysis {

IsosurfaceAnalysis::IsosurfaceAnalysis(std::string name, const sim::EulerSolver& solver,
                                       double iso_density, bool parallel)
    : name_(std::move(name)), solver_(solver), iso_(iso_density), parallel_(parallel) {
  INSCHED_EXPECTS(iso_density > 0.0);
}

AnalysisResult IsosurfaceAnalysis::analyze() {
  const std::size_t n = solver_.geometry().n;
  const sim::Field3D& rho = solver_.density();

  // A cell is "crossed" when its 8 corners do not all sit on one side of the
  // isovalue — the marching-cubes activity test. Corner samples come from
  // the cell-centered field (periodic).
  const auto crossed = [&](std::size_t flat) -> double {
    const std::size_t i = flat % (n - 1);
    const std::size_t j = (flat / (n - 1)) % (n - 1);
    const std::size_t k = flat / ((n - 1) * (n - 1));
    bool any_below = false;
    bool any_above = false;
    for (int c = 0; c < 8; ++c) {
      const double v = rho.at(i + (c & 1), j + ((c >> 1) & 1), k + ((c >> 2) & 1));
      any_below = any_below || v < iso_;
      any_above = any_above || v >= iso_;
    }
    return any_below && any_above ? 1.0 : 0.0;
  };

  const std::size_t cells = (n - 1) * (n - 1) * (n - 1);
  const double count = parallel_ ? parallel_reduce_sum(cells, crossed) : [&] {
    double s = 0.0;
    for (std::size_t f = 0; f < cells; ++f) s += crossed(f);
    return s;
  }();

  last_crossed_ = static_cast<long>(count);
  // Marching cubes emits ~2.4 triangles per active cell. The corner-based
  // census marks ~1.5 cell layers around the surface, so the effective area
  // per triangle is ~0.28 dx^2 (calibrated against analytic spheres; see
  // tests/test_analysis.cpp Isosurface.SphereHasExpectedCellCensus).
  const double dx = solver_.geometry().dx();
  const double triangles = 2.4 * count;
  const double area = triangles * 0.28 * dx * dx;
  // Geometry buffered for the next output: 3 vertices x 3 doubles each.
  pending_bytes_ += triangles * 9.0 * sizeof(double);

  AnalysisResult result;
  result.label = name_ + ":isosurface";
  result.values = {count, triangles, area};
  return result;
}

double IsosurfaceAnalysis::output() {
  const double bytes = pending_bytes_;
  pending_bytes_ = 0.0;
  return bytes;
}

double IsosurfaceAnalysis::resident_bytes() const { return pending_bytes_; }

}  // namespace insched::analysis
