#pragma once

// 2-D density histogram of a species group projected onto a coordinate plane
// (the paper's R2 "membrane histogram" and R3 "protein histogram": density
// profiles of assembled structures). Accumulates over analysis steps.

#include <vector>

#include "insched/analysis/analysis.hpp"
#include "insched/sim/particles/particle_system.hpp"

namespace insched::analysis {

struct DensityHistogramConfig {
  sim::Species group = sim::Species::kMembrane;
  int axis_a = 0;           ///< first histogram axis (0=x, 1=y, 2=z)
  int axis_b = 2;           ///< second histogram axis
  std::size_t bins_a = 64;
  std::size_t bins_b = 64;
  bool parallel = true;
};

class DensityHistogramAnalysis final : public IAnalysis {
 public:
  DensityHistogramAnalysis(std::string name, const sim::ParticleSystem& system,
                           DensityHistogramConfig config);

  [[nodiscard]] std::string name() const override { return name_; }
  void setup() override;
  AnalysisResult analyze() override;
  double output() override;
  [[nodiscard]] double resident_bytes() const override;

  [[nodiscard]] const std::vector<double>& histogram() const noexcept { return histogram_; }
  [[nodiscard]] long samples() const noexcept { return samples_; }

 private:
  std::string name_;
  const sim::ParticleSystem& system_;
  DensityHistogramConfig config_;
  std::vector<std::size_t> members_;
  std::vector<double> histogram_;  ///< bins_a x bins_b, row-major
  long samples_ = 0;
};

}  // namespace insched::analysis
