#pragma once

// Descriptive statistics of a grid field — the cheapest class of in-situ
// analysis the paper's related work names ("descriptive statistics,
// topological analysis and visualization", Bennett et al.): min / max /
// mean / variance of a chosen field per analysis step, accumulated into a
// time series until the next output.

#include <functional>

#include "insched/analysis/analysis.hpp"
#include "insched/sim/grid/euler.hpp"

namespace insched::analysis {

enum class FieldSelector { kDensity, kPressure, kVelocityMagnitude, kEnergy };

class DescriptiveStatsAnalysis final : public IAnalysis {
 public:
  DescriptiveStatsAnalysis(std::string name, const sim::EulerSolver& solver,
                           FieldSelector field, bool parallel = true);

  [[nodiscard]] std::string name() const override { return name_; }
  AnalysisResult analyze() override;  ///< values = {min, max, mean, stddev}
  double output() override;
  [[nodiscard]] double resident_bytes() const override;

 private:
  std::string name_;
  const sim::EulerSolver& solver_;
  FieldSelector field_;
  bool parallel_;
  std::vector<double> series_;  ///< 4 values per analysis step until flushed
};

}  // namespace insched::analysis
