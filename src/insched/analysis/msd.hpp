#pragma once

// Mean squared displacement averaged over a particle group (the paper's A4,
// "msd": hydronium and ions). A temporal analysis in the paper's taxonomy:
// it pre-allocates reference positions (large fm), tracks unwrapped
// displacements every simulation step (it/im), and evaluates <|r-r0|^2> at
// analysis steps. The paper notes A4's large memory and output footprint —
// the per-step displacement tracking is exactly why.

#include <vector>

#include "insched/analysis/analysis.hpp"
#include "insched/sim/particles/particle_system.hpp"

namespace insched::analysis {

struct MsdConfig {
  std::vector<sim::Species> group;  ///< species included in the average
  bool parallel = true;
};

class MsdAnalysis final : public IAnalysis {
 public:
  MsdAnalysis(std::string name, const sim::ParticleSystem& system, MsdConfig config);

  [[nodiscard]] std::string name() const override { return name_; }
  void setup() override;      ///< captures reference positions (fm)
  void per_step() override;   ///< accumulates unwrapped displacements (it)
  AnalysisResult analyze() override;
  double output() override;   ///< writes the sampled MSD curve (om)
  [[nodiscard]] double resident_bytes() const override;

  [[nodiscard]] const std::vector<double>& curve() const noexcept { return curve_; }

 private:
  std::string name_;
  const sim::ParticleSystem& system_;
  MsdConfig config_;
  std::vector<std::size_t> members_;
  std::vector<double> ref_x_, ref_y_, ref_z_;     ///< positions at setup
  std::vector<double> disp_x_, disp_y_, disp_z_;  ///< unwrapped displacement
  std::vector<double> prev_x_, prev_y_, prev_z_;  ///< last wrapped position
  std::vector<double> curve_;                     ///< MSD samples since last output
};

}  // namespace insched::analysis
