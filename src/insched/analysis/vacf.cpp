#include "insched/analysis/vacf.hpp"

#include <algorithm>

#include "insched/support/assert.hpp"
#include "insched/support/parallel.hpp"

namespace insched::analysis {

VacfAnalysis::VacfAnalysis(std::string name, const sim::ParticleSystem& system,
                           VacfConfig config)
    : name_(std::move(name)), system_(system), config_(std::move(config)) {
  INSCHED_EXPECTS(!config_.group.empty());
}

void VacfAnalysis::setup() {
  members_.clear();
  for (sim::Species s : config_.group) {
    const auto idx = system_.indices_of(s);
    members_.insert(members_.end(), idx.begin(), idx.end());
  }
  std::sort(members_.begin(), members_.end());
  const std::size_t n = members_.size();
  v0x_.resize(n);
  v0y_.resize(n);
  v0z_.resize(n);
  for (std::size_t m = 0; m < n; ++m) {
    const std::size_t i = members_[m];
    v0x_[m] = system_.vx[i];
    v0y_[m] = system_.vy[i];
    v0z_[m] = system_.vz[i];
  }
  norm_ = 0.0;
  for (std::size_t m = 0; m < n; ++m)
    norm_ += v0x_[m] * v0x_[m] + v0y_[m] * v0y_[m] + v0z_[m] * v0z_[m];
  curve_.clear();
}

AnalysisResult VacfAnalysis::analyze() {
  const std::size_t n = members_.size();
  double corr = 0.0;
  if (n > 0 && norm_ > 0.0) {
    corr = parallel_reduce_sum(n, [&](std::size_t m) {
             const std::size_t i = members_[m];
             return v0x_[m] * system_.vx[i] + v0y_[m] * system_.vy[i] +
                    v0z_[m] * system_.vz[i];
           }) /
           norm_;
  }
  curve_.push_back(corr);
  AnalysisResult result;
  result.label = name_ + ":vacf";
  result.values = {corr};
  return result;
}

double VacfAnalysis::output() {
  const double bytes = static_cast<double>(curve_.size()) * sizeof(double);
  curve_.clear();
  return bytes;
}

double VacfAnalysis::resident_bytes() const {
  return static_cast<double>(members_.size()) * 3.0 * sizeof(double) +
         static_cast<double>(curve_.size()) * sizeof(double);
}

}  // namespace insched::analysis
