#include "insched/analysis/density_histogram.hpp"

#include <algorithm>

#include "insched/support/assert.hpp"
#include "insched/support/parallel.hpp"
#include "insched/support/thread_annotations.hpp"

namespace insched::analysis {

DensityHistogramAnalysis::DensityHistogramAnalysis(std::string name,
                                                   const sim::ParticleSystem& system,
                                                   DensityHistogramConfig config)
    : name_(std::move(name)), system_(system), config_(config) {
  INSCHED_EXPECTS(config_.axis_a >= 0 && config_.axis_a <= 2);
  INSCHED_EXPECTS(config_.axis_b >= 0 && config_.axis_b <= 2);
  INSCHED_EXPECTS(config_.axis_a != config_.axis_b);
  INSCHED_EXPECTS(config_.bins_a > 0 && config_.bins_b > 0);
}

void DensityHistogramAnalysis::setup() {
  members_ = system_.indices_of(config_.group);
  histogram_.assign(config_.bins_a * config_.bins_b, 0.0);
  samples_ = 0;
}

AnalysisResult DensityHistogramAnalysis::analyze() {
  INSCHED_EXPECTS(!histogram_.empty());
  const sim::Box& box = system_.box();
  const auto coord = [&](std::size_t i, int axis) {
    switch (axis) {
      case 0: return sim::Box::wrap(system_.x[i], box.lx) / box.lx;
      case 1: return sim::Box::wrap(system_.y[i], box.ly) / box.ly;
      default: return sim::Box::wrap(system_.z[i], box.lz) / box.lz;
    }
  };

  const std::size_t shards = config_.parallel ? static_cast<std::size_t>(thread_count()) : 1;
  const std::size_t n = members_.size();
  Mutex merge_mutex;
  parallel_for(
      shards,
      [&](std::size_t sb, std::size_t se) {
        for (std::size_t s = sb; s < se; ++s) {
          const std::size_t begin = s * n / shards;
          const std::size_t end = (s + 1) * n / shards;
          std::vector<double> local(histogram_.size(), 0.0);
          for (std::size_t m = begin; m < end; ++m) {
            const std::size_t i = members_[m];
            auto ba = static_cast<std::size_t>(coord(i, config_.axis_a) *
                                               static_cast<double>(config_.bins_a));
            auto bb = static_cast<std::size_t>(coord(i, config_.axis_b) *
                                               static_cast<double>(config_.bins_b));
            ba = std::min(ba, config_.bins_a - 1);
            bb = std::min(bb, config_.bins_b - 1);
            local[ba * config_.bins_b + bb] += 1.0;
          }
          MutexLock lock(merge_mutex);
          for (std::size_t k = 0; k < histogram_.size(); ++k) histogram_[k] += local[k];
        }
      },
      1);
  ++samples_;

  AnalysisResult result;
  result.label = name_ + ":density2d";
  // Summary: total counts and occupied-bin fraction.
  double total = 0.0;
  double occupied = 0.0;
  for (double v : histogram_) {
    total += v;
    if (v > 0.0) occupied += 1.0;
  }
  result.values = {total, occupied / static_cast<double>(histogram_.size())};
  return result;
}

double DensityHistogramAnalysis::output() {
  const double bytes = static_cast<double>(histogram_.size()) * sizeof(double);
  std::fill(histogram_.begin(), histogram_.end(), 0.0);
  samples_ = 0;
  return bytes;
}

double DensityHistogramAnalysis::resident_bytes() const {
  return static_cast<double>(histogram_.size()) * sizeof(double);
}

}  // namespace insched::analysis
