#pragma once

// Vorticity magnitude |curl v| of the Euler solver's velocity field via
// centered differences on the periodic grid (the paper's F1 — the
// compute-intensive FLASH analysis: it derives three velocity fields and
// allocates a full vorticity field, hence large ct and cm).

#include "insched/analysis/analysis.hpp"
#include "insched/sim/grid/euler.hpp"

namespace insched::analysis {

class VorticityAnalysis final : public IAnalysis {
 public:
  VorticityAnalysis(std::string name, const sim::EulerSolver& solver, bool parallel = true);

  [[nodiscard]] std::string name() const override { return name_; }
  AnalysisResult analyze() override;
  double output() override;
  [[nodiscard]] double resident_bytes() const override;

  /// The last computed vorticity-magnitude field (empty before analyze()).
  [[nodiscard]] const sim::Field3D& field() const noexcept { return vorticity_; }

 private:
  std::string name_;
  const sim::EulerSolver& solver_;
  bool parallel_;
  sim::Field3D vorticity_;
};

}  // namespace insched::analysis
