#pragma once

// Radius of gyration of a particle group (the paper's R1: a single protein):
// Rg^2 = sum_i m_i |r_i - r_cm|^2 / sum_i m_i, computed with minimum-image
// coordinates relative to the group's (periodic-aware) center of mass.

#include <vector>

#include "insched/analysis/analysis.hpp"
#include "insched/sim/particles/particle_system.hpp"

namespace insched::analysis {

class GyrationAnalysis final : public IAnalysis {
 public:
  GyrationAnalysis(std::string name, const sim::ParticleSystem& system, sim::Species group);

  [[nodiscard]] std::string name() const override { return name_; }
  void setup() override;
  AnalysisResult analyze() override;
  double output() override;
  [[nodiscard]] double resident_bytes() const override;

  [[nodiscard]] double last_rg() const noexcept { return last_rg_; }

 private:
  std::string name_;
  const sim::ParticleSystem& system_;
  sim::Species group_;
  std::vector<std::size_t> members_;
  std::vector<double> samples_;
  double last_rg_ = 0.0;
};

}  // namespace insched::analysis
