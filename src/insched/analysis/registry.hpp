#pragma once

// Name-indexed collection of analyses, aligned by construction order with
// the AnalysisParams vector of a ScheduleProblem.

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "insched/analysis/analysis.hpp"

namespace insched::analysis {

class AnalysisRegistry {
 public:
  /// Adds an analysis; the index order is the scheduling order.
  void add(AnalysisPtr analysis);

  [[nodiscard]] std::size_t size() const noexcept { return analyses_.size(); }
  [[nodiscard]] IAnalysis& at(std::size_t i);
  [[nodiscard]] IAnalysis* find(const std::string& name);

  [[nodiscard]] std::vector<std::string> names() const;

 private:
  std::vector<AnalysisPtr> analyses_;
};

}  // namespace insched::analysis
