#pragma once

// Velocity auto-correlation function <v(0) . v(t)> / <v(0) . v(0)> averaged
// over a particle group (the paper's A3: water-oxygen, hydronium-oxygen and
// ion atoms). Captures reference velocities at setup, correlates the current
// velocities against them at analysis steps.

#include <vector>

#include "insched/analysis/analysis.hpp"
#include "insched/sim/particles/particle_system.hpp"

namespace insched::analysis {

struct VacfConfig {
  std::vector<sim::Species> group;
  bool parallel = true;
};

class VacfAnalysis final : public IAnalysis {
 public:
  VacfAnalysis(std::string name, const sim::ParticleSystem& system, VacfConfig config);

  [[nodiscard]] std::string name() const override { return name_; }
  void setup() override;   ///< captures v(0) (fm)
  AnalysisResult analyze() override;
  double output() override;
  [[nodiscard]] double resident_bytes() const override;

  [[nodiscard]] const std::vector<double>& curve() const noexcept { return curve_; }

 private:
  std::string name_;
  const sim::ParticleSystem& system_;
  VacfConfig config_;
  std::vector<std::size_t> members_;
  std::vector<double> v0x_, v0y_, v0z_;
  double norm_ = 0.0;  ///< <v(0).v(0)>
  std::vector<double> curve_;
};

}  // namespace insched::analysis
