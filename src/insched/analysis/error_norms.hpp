#pragma once

// Error norms against the Sedov self-similar reference (the paper's F2 and
// F3): F2 = L1 norms of density and pressure, F3 = L2 norms of the x/y/z
// velocity components. FLASH's Sedov test reports exactly these norms.

#include "insched/analysis/analysis.hpp"
#include "insched/sim/grid/euler.hpp"
#include "insched/sim/grid/sedov.hpp"

namespace insched::analysis {

enum class NormKind { kL1DensityPressure, kL2Velocity };

class ErrorNormAnalysis final : public IAnalysis {
 public:
  ErrorNormAnalysis(std::string name, const sim::EulerSolver& solver,
                    const sim::SedovReference& reference, NormKind kind, bool parallel = true);

  [[nodiscard]] std::string name() const override { return name_; }
  AnalysisResult analyze() override;
  double output() override;
  [[nodiscard]] double resident_bytes() const override;

 private:
  std::string name_;
  const sim::EulerSolver& solver_;
  const sim::SedovReference& reference_;
  NormKind kind_;
  bool parallel_;
  std::vector<double> samples_;
};

}  // namespace insched::analysis
