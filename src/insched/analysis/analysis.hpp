#pragma once

// In-situ analysis interface. The lifecycle mirrors the paper's Table-1 cost
// decomposition exactly:
//   setup()     — once, at step 0                      (ft / fm)
//   per_step()  — every simulation step while active   (it / im)
//   analyze()   — at analysis steps (the set C_i)      (ct / cm)
//   output()    — at output steps (the set O_i)        (ot / om), returns the
//                 bytes written so the runtime can model/track I/O; also
//                 releases accumulation buffers (memory resets to fm, Eq 6).

#include <memory>
#include <string>
#include <vector>

namespace insched::analysis {

struct AnalysisResult {
  std::string label;
  std::vector<double> values;
};

class IAnalysis {
 public:
  virtual ~IAnalysis() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// One-time initialization (allocate fixed buffers).
  virtual void setup() {}

  /// Called every simulation step while the analysis is active (e.g. copy
  /// data needed by temporal analyses before the simulation overwrites it).
  virtual void per_step() {}

  /// The analysis computation; called at analysis steps.
  virtual AnalysisResult analyze() = 0;

  /// Writes/serializes buffered results; returns bytes produced. Default:
  /// nothing buffered, nothing written.
  virtual double output() { return 0.0; }

  /// Approximate resident bytes currently held by the analysis (for the
  /// memory tracker; mirrors fm + accumulated im/cm).
  [[nodiscard]] virtual double resident_bytes() const { return 0.0; }
};

using AnalysisPtr = std::unique_ptr<IAnalysis>;

}  // namespace insched::analysis
