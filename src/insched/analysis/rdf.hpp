#pragma once

// Radial distribution function g(r) between species pairs, accumulated as a
// distance histogram over cutoff-range pairs (cell list) and normalized by
// the ideal-gas shell density. Implements the paper's A1 ("hydronium rdf":
// hydronium-water / hydronium-hydronium / hydronium-ion) and A2 ("ion rdf")
// analyses; results accumulate between outputs ("averaged over all
// molecules" and over analysis steps).

#include <utility>
#include <vector>

#include "insched/analysis/analysis.hpp"
#include "insched/sim/particles/particle_system.hpp"

namespace insched::analysis {

struct RdfConfig {
  std::vector<std::pair<sim::Species, sim::Species>> pairs;  ///< species pairs to histogram
  double r_max = 2.5;
  std::size_t bins = 100;
  bool parallel = true;
};

class RdfAnalysis final : public IAnalysis {
 public:
  RdfAnalysis(std::string name, const sim::ParticleSystem& system, RdfConfig config);

  [[nodiscard]] std::string name() const override { return name_; }
  void setup() override;
  AnalysisResult analyze() override;
  double output() override;
  [[nodiscard]] double resident_bytes() const override;

  /// g(r) for pair `p` from the current accumulation (bins entries).
  [[nodiscard]] std::vector<double> g_of_r(std::size_t p) const;

 private:
  std::string name_;
  const sim::ParticleSystem& system_;
  RdfConfig config_;
  std::vector<std::vector<double>> histograms_;  ///< per pair, per bin
  long samples_ = 0;
};

}  // namespace insched::analysis
