#pragma once

// Measures an analysis kernel's Table-1 cost parameters by running its
// lifecycle against a live simulation state and timing each phase with the
// profiler — the library's stand-in for the paper's HPM/HPCT measurement
// step. The measured (ft, it, ct, ot, fm, im, cm, om) feed the scheduler
// directly, or a KernelPredictor when extrapolating across scales.

#include "insched/analysis/analysis.hpp"
#include "insched/scheduler/params.hpp"

namespace insched::analysis {

struct ProbeOptions {
  int warmup_rounds = 1;     ///< analyze() calls discarded before timing
  int measure_rounds = 3;    ///< timed analyze() calls (median taken)
  int per_step_rounds = 3;   ///< timed per_step() calls
  double write_bw = 1e9;     ///< modeled bandwidth for deriving ot from om
};

/// Runs the probe. The analysis object is consumed (setup and several
/// analyze/output rounds are executed); re-create it before real use.
[[nodiscard]] scheduler::AnalysisParams probe_analysis(IAnalysis& analysis,
                                                       const ProbeOptions& options = {});

}  // namespace insched::analysis
