#include "insched/analysis/error_norms.hpp"

#include <array>

#include <cmath>

#include "insched/support/parallel.hpp"

namespace insched::analysis {

ErrorNormAnalysis::ErrorNormAnalysis(std::string name, const sim::EulerSolver& solver,
                                     const sim::SedovReference& reference, NormKind kind,
                                     bool parallel)
    : name_(std::move(name)),
      solver_(solver),
      reference_(reference),
      kind_(kind),
      parallel_(parallel) {}

AnalysisResult ErrorNormAnalysis::analyze() {
  const sim::GridGeometry& geom = solver_.geometry();
  const std::size_t n = geom.n;
  const double t = std::max(solver_.time(), 1e-12);
  const double center = 0.5 * geom.length;
  const std::size_t cells = geom.cells();

  const auto cell_of = [&](std::size_t flat) {
    const std::size_t i = flat % n;
    const std::size_t j = (flat / n) % n;
    const std::size_t k = flat / (n * n);
    return std::array<std::size_t, 3>{i, j, k};
  };

  AnalysisResult result;
  if (kind_ == NormKind::kL1DensityPressure) {
    // L1 norms: mean absolute difference against the reference profile.
    const auto term_rho = [&](std::size_t flat) {
      const auto [i, j, k] = cell_of(flat);
      const double x = geom.center(i) - center;
      const double y = geom.center(j) - center;
      const double z = geom.center(k) - center;
      const double r = std::sqrt(x * x + y * y + z * z);
      return std::fabs(solver_.density().at(i, j, k) - reference_.density(r, t));
    };
    const auto term_p = [&](std::size_t flat) {
      const auto [i, j, k] = cell_of(flat);
      const double x = geom.center(i) - center;
      const double y = geom.center(j) - center;
      const double z = geom.center(k) - center;
      const double r = std::sqrt(x * x + y * y + z * z);
      const sim::Primitive prim = solver_.cell(i, j, k);
      return std::fabs(prim.p - reference_.pressure(r, t));
    };
    const double inv = 1.0 / static_cast<double>(cells);
    const double l1_rho = (parallel_ ? parallel_reduce_sum(cells, term_rho)
                                     : [&] {
                                         double s = 0.0;
                                         for (std::size_t f = 0; f < cells; ++f) s += term_rho(f);
                                         return s;
                                       }()) *
                          inv;
    const double l1_p = (parallel_ ? parallel_reduce_sum(cells, term_p)
                                   : [&] {
                                       double s = 0.0;
                                       for (std::size_t f = 0; f < cells; ++f) s += term_p(f);
                                       return s;
                                     }()) *
                        inv;
    result.label = name_ + ":l1[rho,p]";
    result.values = {l1_rho, l1_p};
    samples_.push_back(l1_rho);
    samples_.push_back(l1_p);
  } else {
    // L2 norms of the velocity components against the radial reference.
    double l2[3] = {0.0, 0.0, 0.0};
    for (int axis = 0; axis < 3; ++axis) {
      const auto term = [&](std::size_t flat) {
        const auto [i, j, k] = cell_of(flat);
        const double x = geom.center(i) - center;
        const double y = geom.center(j) - center;
        const double z = geom.center(k) - center;
        const double r = std::max(std::sqrt(x * x + y * y + z * z), 1e-12);
        const double vr = reference_.radial_velocity(r, t);
        const double component = axis == 0 ? x / r : (axis == 1 ? y / r : z / r);
        const sim::Primitive prim = solver_.cell(i, j, k);
        const double v = axis == 0 ? prim.u : (axis == 1 ? prim.v : prim.w);
        const double diff = v - vr * component;
        return diff * diff;
      };
      const double sum = parallel_ ? parallel_reduce_sum(cells, term) : [&] {
        double s = 0.0;
        for (std::size_t f = 0; f < cells; ++f) s += term(f);
        return s;
      }();
      l2[axis] = std::sqrt(sum / static_cast<double>(cells));
    }
    result.label = name_ + ":l2[u,v,w]";
    result.values = {l2[0], l2[1], l2[2]};
    samples_.insert(samples_.end(), {l2[0], l2[1], l2[2]});
  }
  return result;
}

double ErrorNormAnalysis::output() {
  const double bytes = static_cast<double>(samples_.size()) * sizeof(double);
  samples_.clear();
  return bytes;
}

double ErrorNormAnalysis::resident_bytes() const {
  return static_cast<double>(samples_.size()) * sizeof(double);
}

}  // namespace insched::analysis
