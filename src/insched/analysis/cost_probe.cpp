#include "insched/analysis/cost_probe.hpp"

#include <algorithm>
#include <chrono>
#include <vector>

#include "insched/support/assert.hpp"

namespace insched::analysis {

namespace {

using Clock = std::chrono::steady_clock;

template <typename F>
double time_call(F&& f) {
  const auto begin = Clock::now();
  f();
  return std::chrono::duration<double>(Clock::now() - begin).count();
}

double median(std::vector<double> values) {
  INSCHED_EXPECTS(!values.empty());
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

}  // namespace

scheduler::AnalysisParams probe_analysis(IAnalysis& analysis, const ProbeOptions& options) {
  INSCHED_EXPECTS(options.measure_rounds >= 1);
  scheduler::AnalysisParams params;
  params.name = analysis.name();

  // ft / fm: one-time setup.
  params.ft = time_call([&] { analysis.setup(); });
  params.fm = analysis.resident_bytes();

  // it: per-simulation-step facilitation.
  if (options.per_step_rounds > 0) {
    std::vector<double> ts;
    const double before = analysis.resident_bytes();
    for (int r = 0; r < options.per_step_rounds; ++r)
      ts.push_back(time_call([&] { analysis.per_step(); }));
    params.it = median(ts);
    const double after = analysis.resident_bytes();
    params.im = std::max(0.0, (after - before) / options.per_step_rounds);
  }

  // ct / cm: the analysis computation.
  for (int r = 0; r < options.warmup_rounds; ++r) (void)analysis.analyze();
  const double before_ct = analysis.resident_bytes();
  std::vector<double> cts;
  for (int r = 0; r < options.measure_rounds; ++r)
    cts.push_back(time_call([&] { (void)analysis.analyze(); }));
  params.ct = median(cts);
  const double after_ct = analysis.resident_bytes();
  params.cm = std::max(0.0, (after_ct - before_ct) /
                                std::max(1, options.measure_rounds));

  // om / ot: output size measured, write time modeled through the bandwidth.
  const double bytes = analysis.output();
  params.om = bytes;
  params.ot = options.write_bw > 0.0 ? bytes / options.write_bw : 0.0;

  return params;
}

}  // namespace insched::analysis
