#include "insched/analysis/msd.hpp"

#include <algorithm>

#include "insched/support/assert.hpp"
#include "insched/support/parallel.hpp"

namespace insched::analysis {

MsdAnalysis::MsdAnalysis(std::string name, const sim::ParticleSystem& system, MsdConfig config)
    : name_(std::move(name)), system_(system), config_(std::move(config)) {
  INSCHED_EXPECTS(!config_.group.empty());
}

void MsdAnalysis::setup() {
  members_.clear();
  for (sim::Species s : config_.group) {
    const auto idx = system_.indices_of(s);
    members_.insert(members_.end(), idx.begin(), idx.end());
  }
  std::sort(members_.begin(), members_.end());
  const std::size_t n = members_.size();
  ref_x_.resize(n);
  ref_y_.resize(n);
  ref_z_.resize(n);
  prev_x_.resize(n);
  prev_y_.resize(n);
  prev_z_.resize(n);
  disp_x_.assign(n, 0.0);
  disp_y_.assign(n, 0.0);
  disp_z_.assign(n, 0.0);
  for (std::size_t m = 0; m < n; ++m) {
    const std::size_t i = members_[m];
    ref_x_[m] = prev_x_[m] = system_.x[i];
    ref_y_[m] = prev_y_[m] = system_.y[i];
    ref_z_[m] = prev_z_[m] = system_.z[i];
  }
  curve_.clear();
}

void MsdAnalysis::per_step() {
  // Unwrap trajectories: accumulate minimum-image deltas so box wrapping
  // does not corrupt the displacement.
  const sim::Box& box = system_.box();
  const std::size_t n = members_.size();
  parallel_for(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t m = begin; m < end; ++m) {
      const std::size_t i = members_[m];
      disp_x_[m] += sim::Box::min_image(system_.x[i] - prev_x_[m], box.lx);
      disp_y_[m] += sim::Box::min_image(system_.y[i] - prev_y_[m], box.ly);
      disp_z_[m] += sim::Box::min_image(system_.z[i] - prev_z_[m], box.lz);
      prev_x_[m] = system_.x[i];
      prev_y_[m] = system_.y[i];
      prev_z_[m] = system_.z[i];
    }
  });
}

AnalysisResult MsdAnalysis::analyze() {
  INSCHED_EXPECTS(!members_.empty() || system_.size() == 0);
  const std::size_t n = members_.size();
  double msd = 0.0;
  if (n > 0) {
    msd = parallel_reduce_sum(n, [&](std::size_t m) {
            return disp_x_[m] * disp_x_[m] + disp_y_[m] * disp_y_[m] +
                   disp_z_[m] * disp_z_[m];
          }) /
          static_cast<double>(n);
  }
  curve_.push_back(msd);
  AnalysisResult result;
  result.label = name_ + ":msd";
  result.values = {msd};
  return result;
}

double MsdAnalysis::output() {
  const double bytes = static_cast<double>(curve_.size()) * sizeof(double);
  curve_.clear();  // buffered samples flushed
  return bytes;
}

double MsdAnalysis::resident_bytes() const {
  return static_cast<double>(members_.size()) * 9.0 * sizeof(double) +
         static_cast<double>(curve_.size()) * sizeof(double);
}

}  // namespace insched::analysis
