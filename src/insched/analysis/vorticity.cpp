#include "insched/analysis/vorticity.hpp"

#include <cmath>

#include "insched/support/parallel.hpp"

namespace insched::analysis {

VorticityAnalysis::VorticityAnalysis(std::string name, const sim::EulerSolver& solver,
                                     bool parallel)
    : name_(std::move(name)), solver_(solver), parallel_(parallel) {}

AnalysisResult VorticityAnalysis::analyze() {
  const std::size_t n = solver_.geometry().n;
  const double inv_2dx = 1.0 / (2.0 * solver_.geometry().dx());

  // Velocity component fields (cm: intermediate allocations).
  const sim::Field3D u = solver_.velocity(0);
  const sim::Field3D v = solver_.velocity(1);
  const sim::Field3D w = solver_.velocity(2);
  vorticity_ = sim::Field3D(n, n, n);

  const auto sweep = [&](std::size_t kb, std::size_t ke) {
    for (std::size_t k = kb; k < ke; ++k)
      for (std::size_t j = 0; j < n; ++j)
        for (std::size_t i = 0; i < n; ++i) {
          const auto si = static_cast<std::ptrdiff_t>(i);
          const auto sj = static_cast<std::ptrdiff_t>(j);
          const auto sk = static_cast<std::ptrdiff_t>(k);
          const double dw_dy = (w.periodic(si, sj + 1, sk) - w.periodic(si, sj - 1, sk)) * inv_2dx;
          const double dv_dz = (v.periodic(si, sj, sk + 1) - v.periodic(si, sj, sk - 1)) * inv_2dx;
          const double du_dz = (u.periodic(si, sj, sk + 1) - u.periodic(si, sj, sk - 1)) * inv_2dx;
          const double dw_dx = (w.periodic(si + 1, sj, sk) - w.periodic(si - 1, sj, sk)) * inv_2dx;
          const double dv_dx = (v.periodic(si + 1, sj, sk) - v.periodic(si - 1, sj, sk)) * inv_2dx;
          const double du_dy = (u.periodic(si, sj + 1, sk) - u.periodic(si, sj - 1, sk)) * inv_2dx;
          const double cx = dw_dy - dv_dz;
          const double cy = du_dz - dw_dx;
          const double cz = dv_dx - du_dy;
          vorticity_.at(i, j, k) = std::sqrt(cx * cx + cy * cy + cz * cz);
        }
  };
  if (parallel_) {
    parallel_for(n, sweep, 1);
  } else {
    sweep(0, n);
  }

  double max_vort = 0.0;
  double mean_vort = 0.0;
  for (double value : vorticity_.data()) {
    max_vort = std::max(max_vort, value);
    mean_vort += value;
  }
  mean_vort /= static_cast<double>(vorticity_.size());

  AnalysisResult result;
  result.label = name_ + ":vorticity";
  result.values = {mean_vort, max_vort};
  return result;
}

double VorticityAnalysis::output() {
  const double bytes = static_cast<double>(vorticity_.size()) * sizeof(double);
  vorticity_ = sim::Field3D();  // release the field (memory resets to fm)
  return bytes;
}

double VorticityAnalysis::resident_bytes() const {
  return static_cast<double>(vorticity_.size()) * sizeof(double);
}

}  // namespace insched::analysis
