#include "insched/analysis/gyration.hpp"

#include <cmath>

#include "insched/support/assert.hpp"

namespace insched::analysis {

GyrationAnalysis::GyrationAnalysis(std::string name, const sim::ParticleSystem& system,
                                   sim::Species group)
    : name_(std::move(name)), system_(system), group_(group) {}

void GyrationAnalysis::setup() {
  members_ = system_.indices_of(group_);
  samples_.clear();
}

AnalysisResult GyrationAnalysis::analyze() {
  AnalysisResult result;
  result.label = name_ + ":rg";
  if (members_.empty()) {
    result.values = {0.0};
    return result;
  }
  const sim::Box& box = system_.box();
  // Reference particle anchors the minimum-image unwrap of the group (valid
  // for compact groups like a protein, which never spans half the box).
  const std::size_t r0 = members_[0];
  double mass_total = 0.0;
  double cx = 0.0, cy = 0.0, cz = 0.0;
  std::vector<double> ux(members_.size()), uy(members_.size()), uz(members_.size());
  for (std::size_t m = 0; m < members_.size(); ++m) {
    const std::size_t i = members_[m];
    ux[m] = system_.x[r0] + sim::Box::min_image(system_.x[i] - system_.x[r0], box.lx);
    uy[m] = system_.y[r0] + sim::Box::min_image(system_.y[i] - system_.y[r0], box.ly);
    uz[m] = system_.z[r0] + sim::Box::min_image(system_.z[i] - system_.z[r0], box.lz);
    const double mi = system_.mass[i];
    mass_total += mi;
    cx += mi * ux[m];
    cy += mi * uy[m];
    cz += mi * uz[m];
  }
  INSCHED_ASSERT(mass_total > 0.0);
  cx /= mass_total;
  cy /= mass_total;
  cz /= mass_total;
  double rg2 = 0.0;
  for (std::size_t m = 0; m < members_.size(); ++m) {
    const double dx = ux[m] - cx;
    const double dy = uy[m] - cy;
    const double dz = uz[m] - cz;
    rg2 += system_.mass[members_[m]] * (dx * dx + dy * dy + dz * dz);
  }
  last_rg_ = std::sqrt(rg2 / mass_total);
  samples_.push_back(last_rg_);
  result.values = {last_rg_};
  return result;
}

double GyrationAnalysis::output() {
  const double bytes = static_cast<double>(samples_.size()) * sizeof(double);
  samples_.clear();
  return bytes;
}

double GyrationAnalysis::resident_bytes() const {
  return static_cast<double>(samples_.size()) * sizeof(double);
}

}  // namespace insched::analysis
