#include "insched/analysis/registry.hpp"

#include "insched/support/assert.hpp"

namespace insched::analysis {

void AnalysisRegistry::add(AnalysisPtr analysis) {
  INSCHED_EXPECTS(analysis != nullptr);
  analyses_.push_back(std::move(analysis));
}

IAnalysis& AnalysisRegistry::at(std::size_t i) {
  INSCHED_EXPECTS(i < analyses_.size());
  return *analyses_[i];
}

IAnalysis* AnalysisRegistry::find(const std::string& name) {
  for (const AnalysisPtr& a : analyses_)
    if (a->name() == name) return a.get();
  return nullptr;
}

std::vector<std::string> AnalysisRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(analyses_.size());
  for (const AnalysisPtr& a : analyses_) out.push_back(a->name());
  return out;
}

}  // namespace insched::analysis
