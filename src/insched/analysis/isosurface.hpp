#pragma once

// Isosurface census — the "visualization" class of in-situ analysis: counts
// the cells crossed by a density isosurface (marching-cubes cell census,
// without emitting geometry) and estimates the triangle count and surface
// area a full extraction would produce. Tracks a moving front (the Sedov
// shock shell) cheaply in-situ; om scales with the front size, which makes
// it a nice scheduling subject.

#include "insched/analysis/analysis.hpp"
#include "insched/sim/grid/euler.hpp"

namespace insched::analysis {

class IsosurfaceAnalysis final : public IAnalysis {
 public:
  IsosurfaceAnalysis(std::string name, const sim::EulerSolver& solver, double iso_density,
                     bool parallel = true);

  [[nodiscard]] std::string name() const override { return name_; }
  /// values = {crossed cells, estimated triangles, estimated area}.
  AnalysisResult analyze() override;
  double output() override;
  [[nodiscard]] double resident_bytes() const override;

  [[nodiscard]] long last_crossed_cells() const noexcept { return last_crossed_; }

 private:
  std::string name_;
  const sim::EulerSolver& solver_;
  double iso_;
  bool parallel_;
  long last_crossed_ = 0;
  double pending_bytes_ = 0.0;  ///< buffered geometry until the next output
};

}  // namespace insched::analysis
