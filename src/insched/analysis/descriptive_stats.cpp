#include "insched/analysis/descriptive_stats.hpp"

#include <cmath>

#include "insched/support/parallel.hpp"

namespace insched::analysis {

DescriptiveStatsAnalysis::DescriptiveStatsAnalysis(std::string name,
                                                   const sim::EulerSolver& solver,
                                                   FieldSelector field, bool parallel)
    : name_(std::move(name)), solver_(solver), field_(field), parallel_(parallel) {}

AnalysisResult DescriptiveStatsAnalysis::analyze() {
  const std::size_t n = solver_.geometry().n;
  const std::size_t cells = solver_.geometry().cells();

  const auto value_of = [&](std::size_t flat) {
    const std::size_t i = flat % n;
    const std::size_t j = (flat / n) % n;
    const std::size_t k = flat / (n * n);
    switch (field_) {
      case FieldSelector::kDensity: return solver_.density().at(i, j, k);
      case FieldSelector::kEnergy: return solver_.energy().at(i, j, k);
      case FieldSelector::kPressure: return solver_.cell(i, j, k).p;
      case FieldSelector::kVelocityMagnitude: {
        const sim::Primitive prim = solver_.cell(i, j, k);
        return std::sqrt(prim.u * prim.u + prim.v * prim.v + prim.w * prim.w);
      }
    }
    return 0.0;
  };

  // Local min/max/sum/sumsq then a shared-memory "allreduce" — the same
  // decomposition the MPI version uses.
  const double inv = 1.0 / static_cast<double>(cells);
  const double sum = parallel_ ? parallel_reduce_sum(cells, value_of) : [&] {
    double s = 0.0;
    for (std::size_t f = 0; f < cells; ++f) s += value_of(f);
    return s;
  }();
  const double mean = sum * inv;
  const double sumsq = parallel_ ? parallel_reduce_sum(cells,
                                                       [&](std::size_t f) {
                                                         const double d = value_of(f) - mean;
                                                         return d * d;
                                                       })
                                 : [&] {
                                     double s = 0.0;
                                     for (std::size_t f = 0; f < cells; ++f) {
                                       const double d = value_of(f) - mean;
                                       s += d * d;
                                     }
                                     return s;
                                   }();
  double lo = value_of(0);
  double hi = lo;
  for (std::size_t f = 1; f < cells; ++f) {
    const double v = value_of(f);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }

  AnalysisResult result;
  result.label = name_ + ":stats";
  result.values = {lo, hi, mean, std::sqrt(sumsq * inv)};
  series_.insert(series_.end(), result.values.begin(), result.values.end());
  return result;
}

double DescriptiveStatsAnalysis::output() {
  const double bytes = static_cast<double>(series_.size()) * sizeof(double);
  series_.clear();
  return bytes;
}

double DescriptiveStatsAnalysis::resident_bytes() const {
  return static_cast<double>(series_.size()) * sizeof(double);
}

}  // namespace insched::analysis
