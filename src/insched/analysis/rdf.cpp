#include "insched/analysis/rdf.hpp"

#include <cmath>
#include <numbers>

#include "insched/sim/particles/cell_list.hpp"
#include "insched/support/assert.hpp"
#include "insched/support/parallel.hpp"
#include "insched/support/thread_annotations.hpp"

namespace insched::analysis {

RdfAnalysis::RdfAnalysis(std::string name, const sim::ParticleSystem& system, RdfConfig config)
    : name_(std::move(name)), system_(system), config_(std::move(config)) {
  INSCHED_EXPECTS(!config_.pairs.empty());
  INSCHED_EXPECTS(config_.r_max > 0.0 && config_.bins > 0);
}

void RdfAnalysis::setup() {
  histograms_.assign(config_.pairs.size(), std::vector<double>(config_.bins, 0.0));
  samples_ = 0;
}

AnalysisResult RdfAnalysis::analyze() {
  INSCHED_EXPECTS(!histograms_.empty());  // setup() must run first
  const double bin_width = config_.r_max / static_cast<double>(config_.bins);
  const std::size_t npairs = config_.pairs.size();
  const sim::CellList cells(system_, config_.r_max);

  const auto visit = [&](std::vector<std::vector<double>>& hist, std::size_t i,
                         std::size_t j, double r2) {
    const sim::Species si = system_.species[i];
    const sim::Species sj = system_.species[j];
    const double r = std::sqrt(r2);
    auto bin = static_cast<std::size_t>(r / bin_width);
    if (bin >= config_.bins) return;
    for (std::size_t p = 0; p < npairs; ++p) {
      const auto& [a, b] = config_.pairs[p];
      if ((si == a && sj == b) || (si == b && sj == a)) hist[p][bin] += 1.0;
    }
  };

  // Shard the cell range over threads; each shard accumulates into a private
  // histogram and merges under a lock — the local-work + reduce pattern of
  // the MPI kernels this models.
  const std::size_t shards =
      config_.parallel ? static_cast<std::size_t>(thread_count()) : 1;
  const std::size_t ncells = cells.num_cells();
  Mutex merge_mutex;
  parallel_for(
      shards,
      [&](std::size_t sb, std::size_t se) {
        for (std::size_t s = sb; s < se; ++s) {
          const std::size_t begin = s * ncells / shards;
          const std::size_t end = (s + 1) * ncells / shards;
          std::vector<std::vector<double>> local(npairs,
                                                 std::vector<double>(config_.bins, 0.0));
          cells.for_each_pair_in_cells(begin, end, [&](std::size_t i, std::size_t j,
                                                       double r2) { visit(local, i, j, r2); });
          MutexLock lock(merge_mutex);
          for (std::size_t p = 0; p < npairs; ++p)
            for (std::size_t b = 0; b < config_.bins; ++b) histograms_[p][b] += local[p][b];
        }
      },
      1);
  ++samples_;

  // Result: first bins of g(r) for the first pair (summary view).
  AnalysisResult result;
  result.label = name_ + ":g(r)";
  result.values = g_of_r(0);
  return result;
}

std::vector<double> RdfAnalysis::g_of_r(std::size_t p) const {
  INSCHED_EXPECTS(p < histograms_.size());
  std::vector<double> g(config_.bins, 0.0);
  if (samples_ == 0) return g;
  const auto& [sa, sb] = config_.pairs[p];
  const double na = static_cast<double>(system_.count(sa));
  const double nb = static_cast<double>(system_.count(sb));
  if (na == 0.0 || nb == 0.0) return g;
  const double volume = system_.box().volume();
  const double bin_width = config_.r_max / static_cast<double>(config_.bins);
  // Normalization: pair count in shell / expected ideal-gas pair count.
  const double pair_norm = sa == sb ? 0.5 * na * (na - 1.0) : na * nb;
  for (std::size_t b = 0; b < config_.bins; ++b) {
    const double r_lo = static_cast<double>(b) * bin_width;
    const double r_hi = r_lo + bin_width;
    const double shell =
        4.0 / 3.0 * std::numbers::pi * (r_hi * r_hi * r_hi - r_lo * r_lo * r_lo);
    const double expected = pair_norm * shell / volume * static_cast<double>(samples_);
    g[b] = expected > 0.0 ? histograms_[p][b] / expected : 0.0;
  }
  return g;
}

double RdfAnalysis::output() {
  double bytes = 0.0;
  for (const auto& h : histograms_) bytes += static_cast<double>(h.size()) * sizeof(double);
  // Histograms restart after an output step (memory conceptually resets).
  for (auto& h : histograms_) std::fill(h.begin(), h.end(), 0.0);
  samples_ = 0;
  return bytes;
}

double RdfAnalysis::resident_bytes() const {
  double bytes = 0.0;
  for (const auto& h : histograms_) bytes += static_cast<double>(h.size()) * sizeof(double);
  return bytes;
}

}  // namespace insched::analysis
