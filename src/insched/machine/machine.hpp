#pragma once

// Machine model: the scalar resource characteristics the scheduler consumes
// (memory per node, I/O bandwidth, core counts, network diameter). Presets
// encode the paper's evaluation system (IBM BG/Q Mira) and a workstation for
// the post-processing comparison of Table 4.

#include <cstdint>
#include <string>

#include "insched/machine/topology.hpp"

namespace insched::machine {

struct MachineModel {
  std::string name;
  std::int64_t nodes = 1;
  int cores_per_node = 1;
  int ranks_per_node = 1;           ///< MPI ranks per node in the run configuration
  double mem_per_node_bytes = 0.0;
  double peak_io_bw = 0.0;          ///< bytes/s to the parallel filesystem, full machine
  double read_bw = 0.0;             ///< bytes/s sequential read (post-processing site)
  double flops_per_core = 0.0;      ///< sustained, for virtual kernel-time estimates

  [[nodiscard]] std::int64_t total_cores() const noexcept {
    return nodes * cores_per_node;
  }
  [[nodiscard]] std::int64_t total_ranks() const noexcept { return nodes * ranks_per_node; }

  /// Memory available per rank.
  [[nodiscard]] double mem_per_rank() const noexcept {
    return ranks_per_node > 0 ? mem_per_node_bytes / ranks_per_node : 0.0;
  }

  /// Effective I/O bandwidth when `used_nodes` of the machine participate:
  /// bandwidth scales with node count until the filesystem peak saturates.
  [[nodiscard]] double io_bandwidth(std::int64_t used_nodes) const noexcept;

  /// A machine restricted to a partition of `used_nodes` nodes (same per-node
  /// characteristics, partition-scaled I/O).
  [[nodiscard]] MachineModel partition(std::int64_t used_nodes) const;
};

/// IBM Blue Gene/Q Mira at Argonne: 48 racks / 49152 nodes, 16 cores and
/// 16 GB per node, 240 GB/s peak to GPFS (paper Section 5.1).
[[nodiscard]] MachineModel mira();

/// A Mira partition with the paper's run configuration of 16 ranks/node.
[[nodiscard]] MachineModel mira_partition(std::int64_t nodes, int ranks_per_node = 16);

/// Serial analysis workstation (Intel Core i7 3.4 GHz class) used for the
/// paper's post-processing baseline in Table 4.
[[nodiscard]] MachineModel workstation();

/// Network diameter of the BG/Q partition that `nodes` maps to.
[[nodiscard]] int partition_diameter(std::int64_t nodes);

/// A generic modern cluster (dragonfly-class interconnect: small fixed
/// diameter, fat nodes, node-local NVMe) — the "other systems" the paper's
/// Section 4 anticipates extending to.
[[nodiscard]] MachineModel generic_cluster(std::int64_t nodes = 512);

}  // namespace insched::machine
