#include "insched/machine/collectives.hpp"

#include <algorithm>
#include <cmath>

#include "insched/support/assert.hpp"

namespace insched::machine {

double CollectiveModel::allreduce_seconds(double bytes) const {
  INSCHED_EXPECTS(bytes >= 0.0);
  const double diameter = topology_.diameter();
  // Reduce + broadcast phases: 2 tree traversals of depth ~ diameter, with
  // the payload on every link plus combine flops at each level.
  const double latency = 2.0 * params_.link_latency_s * diameter;
  const double transfer = 2.0 * bytes / params_.link_bw * std::max(1.0, diameter * 0.5);
  const double combine =
      bytes * params_.reduce_flops_per_byte / params_.node_flops * diameter;
  return latency + transfer + combine;
}

double CollectiveModel::broadcast_seconds(double bytes) const {
  INSCHED_EXPECTS(bytes >= 0.0);
  const double diameter = topology_.diameter();
  return params_.link_latency_s * diameter +
         bytes / params_.link_bw * std::max(1.0, diameter * 0.5);
}

double CollectiveModel::allgather_seconds(double bytes_per_rank, std::int64_t ranks) const {
  INSCHED_EXPECTS(bytes_per_rank >= 0.0 && ranks >= 1);
  // Ring-style allgather: (P-1) steps, each moving one rank's contribution;
  // total bytes on the busiest link ~ bytes_per_rank * (P-1).
  const double total = bytes_per_rank * static_cast<double>(ranks - 1);
  return params_.link_latency_s * static_cast<double>(ranks - 1) + total / params_.link_bw;
}

double CollectiveModel::halo_exchange_seconds(double bytes_per_face) const {
  INSCHED_EXPECTS(bytes_per_face >= 0.0);
  // Six faces, sent pairwise in three phases; single-hop neighbors.
  return 3.0 * (2.0 * params_.link_latency_s + bytes_per_face / params_.link_bw);
}

}  // namespace insched::machine
