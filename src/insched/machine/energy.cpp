#include "insched/machine/energy.hpp"

#include "insched/support/assert.hpp"

namespace insched::machine {

double EnergyModel::node_energy(std::int64_t nodes, double busy_s, double idle_s) const
    noexcept {
  const double busy = static_cast<double>(nodes) * params_.node_power_w * busy_s;
  const double idle = static_cast<double>(nodes) * params_.node_power_w *
                      params_.idle_fraction * idle_s;
  return busy + idle;
}

double EnergyModel::transfer_energy(double bytes) const noexcept {
  return bytes * params_.network_j_per_byte;
}

double EnergyModel::storage_energy(double bytes) const noexcept {
  return bytes * params_.storage_j_per_byte;
}

EnergyBreakdown EnergyModel::run_energy(std::int64_t sim_nodes, double sim_busy_s,
                                        std::int64_t staging_nodes, double staging_busy_s,
                                        double staging_idle_s, double network_bytes,
                                        double storage_bytes) const noexcept {
  EnergyBreakdown out;
  out.compute_joules = node_energy(sim_nodes, sim_busy_s) +
                       node_energy(staging_nodes, staging_busy_s, staging_idle_s);
  out.network_joules = transfer_energy(network_bytes);
  out.storage_joules = storage_energy(storage_bytes);
  return out;
}

}  // namespace insched::machine
