#include "insched/machine/topology.hpp"

#include "insched/support/assert.hpp"
#include "insched/support/string_util.hpp"

namespace insched::machine {

Torus5D::Torus5D(std::array<int, 5> dims) : dims_(dims) {
  for (int d : dims_) INSCHED_EXPECTS(d >= 1);
}

std::int64_t Torus5D::num_nodes() const noexcept {
  std::int64_t n = 1;
  for (int d : dims_) n *= d;
  return n;
}

int Torus5D::diameter() const noexcept {
  int hops = 0;
  for (int d : dims_) hops += d / 2;
  return hops;
}

std::string Torus5D::to_string() const {
  return format("%dx%dx%dx%dx%d", dims_[0], dims_[1], dims_[2], dims_[3], dims_[4]);
}

namespace {

// Published BG/Q partition shapes (A,B,C,D,E) from one midplane up to the
// full 48-rack Mira system.
struct PartitionShape {
  std::int64_t nodes;
  std::array<int, 5> dims;
};

constexpr PartitionShape kShapes[] = {
    {512, {4, 4, 4, 4, 2}},     {1024, {4, 4, 4, 8, 2}},   {2048, {4, 4, 4, 16, 2}},
    {4096, {4, 4, 8, 16, 2}},   {8192, {4, 4, 16, 16, 2}}, {16384, {8, 4, 16, 16, 2}},
    {24576, {4, 24, 16, 8, 2}}, {32768, {8, 8, 16, 16, 2}}, {49152, {8, 12, 16, 16, 2}},
};

}  // namespace

bool is_valid_bgq_partition(std::int64_t nodes) noexcept {
  for (const PartitionShape& s : kShapes)
    if (s.nodes == nodes) return true;
  return false;
}

Torus5D bgq_partition(std::int64_t nodes) {
  for (const PartitionShape& s : kShapes)
    if (s.nodes == nodes) return Torus5D(s.dims);
  INSCHED_EXPECTS(false && "unsupported BG/Q partition size");
  return Torus5D({1, 1, 1, 1, 1});
}

}  // namespace insched::machine
