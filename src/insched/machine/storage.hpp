#pragma once

// Storage models. `StorageModel` does virtual time accounting (bandwidth +
// latency) for paper-scale experiments; `TempDir` provides an RAII scratch
// directory for the real-file post-processing pipeline (Table 4's local
// mode). The write-time model `ot = om / bw` is exactly the substitution the
// paper makes in Section 3.2.

#include <cstdint>
#include <filesystem>
#include <string>

namespace insched::machine {

struct StorageModel {
  double write_bw = 0.0;       ///< bytes/s
  double read_bw = 0.0;        ///< bytes/s
  double latency_s = 0.0;      ///< per-operation fixed cost (metadata, sync)

  [[nodiscard]] double write_time(double bytes) const noexcept {
    return bytes <= 0.0 ? 0.0 : latency_s + bytes / write_bw;
  }
  [[nodiscard]] double read_time(double bytes) const noexcept {
    return bytes <= 0.0 ? 0.0 : latency_s + bytes / read_bw;
  }
};

/// Tracks virtual I/O for one run: bytes written/read and the modeled time.
class SimulatedStore {
 public:
  explicit SimulatedStore(StorageModel model) : model_(model) {}

  /// Returns the modeled duration of the write and accumulates totals.
  double write(double bytes);
  /// Returns the modeled duration of the read and accumulates totals.
  double read(double bytes);

  [[nodiscard]] double bytes_written() const noexcept { return bytes_written_; }
  [[nodiscard]] double bytes_read() const noexcept { return bytes_read_; }
  [[nodiscard]] double write_seconds() const noexcept { return write_seconds_; }
  [[nodiscard]] double read_seconds() const noexcept { return read_seconds_; }
  [[nodiscard]] long writes() const noexcept { return writes_; }
  [[nodiscard]] const StorageModel& model() const noexcept { return model_; }

 private:
  StorageModel model_;
  double bytes_written_ = 0.0;
  double bytes_read_ = 0.0;
  double write_seconds_ = 0.0;
  double read_seconds_ = 0.0;
  long writes_ = 0;
};

/// RAII temporary directory under the system temp path; removed recursively
/// on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& prefix = "insched");
  ~TempDir();
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  [[nodiscard]] const std::filesystem::path& path() const noexcept { return path_; }
  [[nodiscard]] std::filesystem::path file(const std::string& name) const {
    return path_ / name;
  }

 private:
  std::filesystem::path path_;
};

}  // namespace insched::machine
