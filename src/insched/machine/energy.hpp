#pragma once

// Energy model for simulation-time analysis placements — the dimension the
// paper's related work highlights (Gamell et al.: workflow execution time,
// data transfer time and *energy cost* across memory tiers). Simple but
// explicit: node-seconds at a per-node power draw, plus per-byte costs for
// network transfers and storage writes. Used to compare the energy of
// in-situ vs in-transit vs post-processing plans.

#include <cstdint>

namespace insched::machine {

struct EnergyParams {
  double node_power_w = 80.0;        ///< average compute-node draw (BG/Q ~80 W)
  double network_j_per_byte = 5e-10; ///< interconnect transfer energy
  double storage_j_per_byte = 2e-9;  ///< filesystem write energy
  double idle_fraction = 0.7;        ///< idle draw as a fraction of busy draw
};

struct EnergyBreakdown {
  double compute_joules = 0.0;
  double network_joules = 0.0;
  double storage_joules = 0.0;
  [[nodiscard]] double total() const noexcept {
    return compute_joules + network_joules + storage_joules;
  }
};

class EnergyModel {
 public:
  explicit EnergyModel(EnergyParams params) : params_(params) {}

  /// Energy of `nodes` running busy for `busy_s` and idle for `idle_s`.
  [[nodiscard]] double node_energy(std::int64_t nodes, double busy_s,
                                   double idle_s = 0.0) const noexcept;

  [[nodiscard]] double transfer_energy(double bytes) const noexcept;
  [[nodiscard]] double storage_energy(double bytes) const noexcept;

  /// Full accounting of a run: simulation nodes busy for `sim_busy_s`,
  /// staging nodes busy/idle, bytes over the network and to storage.
  [[nodiscard]] EnergyBreakdown run_energy(std::int64_t sim_nodes, double sim_busy_s,
                                           std::int64_t staging_nodes,
                                           double staging_busy_s, double staging_idle_s,
                                           double network_bytes,
                                           double storage_bytes) const noexcept;

  [[nodiscard]] const EnergyParams& params() const noexcept { return params_; }

 private:
  EnergyParams params_;
};

}  // namespace insched::machine
