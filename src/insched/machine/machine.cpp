#include "insched/machine/machine.hpp"

#include <algorithm>

#include "insched/support/assert.hpp"
#include "insched/support/units.hpp"

namespace insched::machine {

double MachineModel::io_bandwidth(std::int64_t used_nodes) const noexcept {
  if (nodes <= 0 || used_nodes <= 0) return 0.0;
  const double share =
      peak_io_bw * static_cast<double>(std::min(used_nodes, nodes)) / static_cast<double>(nodes);
  return std::min(peak_io_bw, share);
}

MachineModel MachineModel::partition(std::int64_t used_nodes) const {
  INSCHED_EXPECTS(used_nodes >= 1 && used_nodes <= nodes);
  MachineModel part = *this;
  part.peak_io_bw = io_bandwidth(used_nodes);
  part.nodes = used_nodes;
  return part;
}

MachineModel mira() {
  MachineModel m;
  m.name = "IBM BG/Q Mira";
  m.nodes = 49152;
  m.cores_per_node = 16;
  m.ranks_per_node = 16;
  m.mem_per_node_bytes = 16.0 * GiB;
  m.peak_io_bw = 240.0 * GB;
  m.read_bw = 240.0 * GB;
  // PowerPC A2 @1.6 GHz, 8 flops/cycle/core sustained fraction ~20%.
  m.flops_per_core = 2.5e9;
  return m;
}

MachineModel mira_partition(std::int64_t nodes, int ranks_per_node) {
  INSCHED_EXPECTS(is_valid_bgq_partition(nodes));
  MachineModel part = mira().partition(nodes);
  part.ranks_per_node = ranks_per_node;
  return part;
}

MachineModel workstation() {
  MachineModel m;
  m.name = "Intel Core i7 3.4 GHz workstation";
  m.nodes = 1;
  m.cores_per_node = 4;
  m.ranks_per_node = 1;
  m.mem_per_node_bytes = 16.0 * GiB;
  // Local disk characteristics typical for the paper's era; the dominating
  // effect in Table 4 is reading the large trajectory through this pipe.
  m.peak_io_bw = 120.0 * MB;
  m.read_bw = 120.0 * MB;
  m.flops_per_core = 8.0e9;
  return m;
}

int partition_diameter(std::int64_t nodes) { return bgq_partition(nodes).diameter(); }

MachineModel generic_cluster(std::int64_t nodes) {
  INSCHED_EXPECTS(nodes >= 1);
  MachineModel m;
  m.name = "generic dragonfly cluster";
  m.nodes = nodes;
  m.cores_per_node = 64;
  m.ranks_per_node = 8;
  m.mem_per_node_bytes = 256.0 * GiB;
  // Lustre-class filesystem shared by the whole machine.
  m.peak_io_bw = 500.0 * GB;
  m.read_bw = 500.0 * GB;
  m.flops_per_core = 3.0e10;
  return m;
}

}  // namespace insched::machine
