#pragma once

// Collective-communication cost model on the 5-D torus. The paper's analysis
// kernels are dominated by MPI_Allreduce-style collectives whose hop count
// scales with the network diameter (Section 4 uses the diameter as the
// interpolation y-variable); this model provides the closed-form costs that
// ground that choice:
//
//   latency term:   alpha * diameter          (store-and-forward hops)
//   bandwidth term: bytes / link_bw * f(P)    (reduction tree traffic)
//   compute term:   bytes * reduce_ops        (combining on the way up)

#include <cstdint>

#include "insched/machine/topology.hpp"

namespace insched::machine {

struct NetworkParams {
  double link_latency_s = 0.5e-6;   ///< per-hop latency (BG/Q ~0.5 us)
  double link_bw = 2.0e9;           ///< bytes/s per link direction (BG/Q 2 GB/s)
  double reduce_flops_per_byte = 0.25;
  double node_flops = 2.0e11;       ///< per-node compute rate for reductions
};

class CollectiveModel {
 public:
  CollectiveModel(Torus5D topology, NetworkParams params)
      : topology_(topology), params_(params) {}

  /// MPI_Allreduce of `bytes` per rank across the whole partition:
  /// tree depth ~ diameter, payload crosses each level once per direction.
  [[nodiscard]] double allreduce_seconds(double bytes) const;

  /// MPI_Bcast of `bytes`: one traversal of the tree.
  [[nodiscard]] double broadcast_seconds(double bytes) const;

  /// MPI_Allgather with `bytes` contributed per rank: payload grows with the
  /// partition, bandwidth-dominated.
  [[nodiscard]] double allgather_seconds(double bytes_per_rank, std::int64_t ranks) const;

  /// Nearest-neighbor halo exchange of `bytes` per face (6 faces assumed).
  [[nodiscard]] double halo_exchange_seconds(double bytes_per_face) const;

  [[nodiscard]] const Torus5D& topology() const noexcept { return topology_; }

 private:
  Torus5D topology_;
  NetworkParams params_;
};

}  // namespace insched::machine
