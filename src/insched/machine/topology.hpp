#pragma once

// 5-D torus network topology (Blue Gene/Q style). The paper uses the network
// diameter as the y-variable when interpolating collective-communication
// times; this module computes diameters for BG/Q-like partitions.

#include <array>
#include <cstdint>
#include <string>

namespace insched::machine {

class Torus5D {
 public:
  /// Dimensions (A, B, C, D, E); every dimension must be >= 1.
  explicit Torus5D(std::array<int, 5> dims);

  [[nodiscard]] std::int64_t num_nodes() const noexcept;

  /// Max-over-pairs shortest-path hop count. On a torus each dimension
  /// contributes floor(d/2) hops (wraparound), except dimensions of extent 1.
  /// BG/Q dimensions of extent <= 4 are mesh-connected within a midplane; we
  /// use the torus rule uniformly, which matches production partition wiring.
  [[nodiscard]] int diameter() const noexcept;

  [[nodiscard]] const std::array<int, 5>& dims() const noexcept { return dims_; }
  [[nodiscard]] std::string to_string() const;

 private:
  std::array<int, 5> dims_;
};

/// Standard Blue Gene/Q partition shape for a node count (512 nodes = one
/// midplane, doubling up to 49152 nodes = 48 racks / full Mira). Node counts
/// must be a power-of-two multiple of 512 within Mira's size.
[[nodiscard]] Torus5D bgq_partition(std::int64_t nodes);

/// True when `nodes` is a valid BG/Q partition size for this model.
[[nodiscard]] bool is_valid_bgq_partition(std::int64_t nodes) noexcept;

}  // namespace insched::machine
