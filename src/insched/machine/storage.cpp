#include "insched/machine/storage.hpp"

#include <random>
#include <system_error>

#include "insched/support/assert.hpp"
#include "insched/support/string_util.hpp"

namespace insched::machine {

double SimulatedStore::write(double bytes) {
  INSCHED_EXPECTS(bytes >= 0.0);
  const double t = model_.write_time(bytes);
  bytes_written_ += bytes;
  write_seconds_ += t;
  ++writes_;
  return t;
}

double SimulatedStore::read(double bytes) {
  INSCHED_EXPECTS(bytes >= 0.0);
  const double t = model_.read_time(bytes);
  bytes_read_ += bytes;
  read_seconds_ += t;
  return t;
}

TempDir::TempDir(const std::string& prefix) {
  std::random_device rd;
  for (int attempt = 0; attempt < 64; ++attempt) {
    auto candidate = std::filesystem::temp_directory_path() /
                     format("%s-%08x", prefix.c_str(), rd());
    std::error_code ec;
    if (std::filesystem::create_directory(candidate, ec)) {
      path_ = std::move(candidate);
      return;
    }
  }
  INSCHED_EXPECTS(false && "could not create temporary directory");
}

TempDir::~TempDir() {
  std::error_code ec;
  std::filesystem::remove_all(path_, ec);  // best-effort cleanup
}

}  // namespace insched::machine
