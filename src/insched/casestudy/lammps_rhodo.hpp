#pragma once

// LAMMPS rhodopsin case study (paper Section 5.2 problem 2): 1 G atoms on
// 32768 cores (2048 nodes) of Mira, analyses R1 (radius of gyration),
// R2 (membrane density histogram), R3 (protein density histogram).
//
// Calibration comes straight from the paper: the simulation takes 5163.03 s
// for 1000 steps; one analysis step followed by its output takes 0.003 s
// (R1), 17.193 s (R2) and 17.194 s (R3); minimum interval 100 steps; the
// simulation writes 91 GB per output step and 10 outputs take 200.6 s, i.e.
// an effective write bandwidth of ~4.54 GB/s (Tables 6 and 7).

#include "insched/scheduler/params.hpp"

namespace insched::casestudy {

inline constexpr double kRhodoSimSeconds = 5163.03;       ///< 1000 steps
inline constexpr double kRhodoSimOutputBytes = 91.0e9;    ///< per output step
inline constexpr double kRhodoOutputSeconds10 = 200.6;    ///< 10 outputs
inline constexpr long kRhodoDefaultOutputSteps = 10;

/// Effective write bandwidth implied by the measured output time.
[[nodiscard]] double rhodopsin_write_bw();

/// Scheduling problem with an absolute analysis-time budget (Table 6/7).
[[nodiscard]] scheduler::ScheduleProblem rhodopsin_problem(double total_threshold_seconds);

}  // namespace insched::casestudy
