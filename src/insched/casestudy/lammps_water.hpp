#pragma once

// LAMMPS water+ions case study (paper Section 5.2 problem 1): 100 M atoms,
// analyses A1 (hydronium rdf), A2 (ion rdf), A3 (vacf), A4 (msd), run on
// Mira partitions of 2 Ki - 32 Ki cores with 16 ranks/node.
//
// Cost calibration is backed out of the paper's own numbers:
//  - Table 5 (16384 cores): A1+A2+A3 cost 2.11 s for 10 steps each
//    (the 1% row), A4 costs 25.34 s per analysis+output step
//    (103.47 = 4 x 25.34 + 2.11), and a setup cost ft_A4 = 1 s makes the
//    20% row recommend 4 rather than 5 A4 steps, matching the paper.
//  - Figure 5: A1/A2 strong-scale (cost ~ 1/P); A4 "does not scale and
//    takes similar times on all core counts" -> constant across scales.

#include <vector>

#include "insched/scheduler/params.hpp"

namespace insched::casestudy {

/// Core counts evaluated in Figure 5.
[[nodiscard]] const std::vector<long>& water_ions_core_counts();

/// Measured simulation seconds per time step at each core count (paper
/// Section 5.3.3: 4.16, 2.12, 1.08, 0.61, 0.4 s).
[[nodiscard]] double water_ions_sim_time_per_step(long cores);

/// The scheduling problem at `cores` with the threshold given as a fraction
/// of simulation time. `include_vacf` = false gives the Figure-5 subset
/// {A1, A2, A4}; true gives the Table-5 set {A1, A2, A3, A4}.
/// `sim_time_override` (seconds/step, 0 = use the Figure-5 series) exists
/// because the paper itself quotes 646.78 s/1000 steps in Table 5 but
/// 0.61 s/step in Figure 5 for the same 16384-core configuration.
[[nodiscard]] scheduler::ScheduleProblem water_ions_problem(long cores,
                                                            double threshold_fraction,
                                                            bool include_vacf = true,
                                                            double sim_time_override = 0.0);

/// Table 5's own simulation time per step (646.78 s / 1000 steps).
inline constexpr double kWaterIonsTable5SimTime = 0.64678;

}  // namespace insched::casestudy
