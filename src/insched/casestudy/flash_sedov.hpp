#pragma once

// FLASH Sedov case study (paper Section 5.2): 3-D Sedov blast with 16^3
// cells per block and 10 mesh variables, on 16384 cores of Mira. Analyses:
// F1 (vorticity), F2 (L1 error norms of density and pressure), F3 (L2 error
// norms of the velocity components).
//
// Calibration: the paper gives compute times 3.5 s (F1), 1.25 s (F2) and
// 2.3 ms (F3) per analysis step and 0.87 s per simulation step. Output
// times are calibrated so both Table-8 weight scenarios reproduce under the
// lexicographic (strict-priority) reading of the importance weights:
// per-step totals 8.15 s (F1: the vorticity field is a bulky product),
// 3.5 s (F2), 0.03 s (F3). EXPERIMENTS.md discusses why the paper's I2 row
// cannot arise from the plain weighted-sum objective.

#include <array>

#include "insched/scheduler/params.hpp"

namespace insched::casestudy {

inline constexpr double kFlashSimTimePerStep = 0.87;

/// The FLASH scheduling problem with per-analysis importance weights and a
/// threshold expressed as a fraction of simulation time (paper: 5%).
[[nodiscard]] scheduler::ScheduleProblem flash_problem(std::array<double, 3> weights,
                                                       double threshold_fraction = 0.05);

}  // namespace insched::casestudy
