#include "insched/casestudy/flash_sedov.hpp"

#include "insched/support/units.hpp"

namespace insched::casestudy {

scheduler::ScheduleProblem flash_problem(std::array<double, 3> weights,
                                         double threshold_fraction) {
  scheduler::ScheduleProblem problem;
  problem.steps = 1000;
  problem.threshold = threshold_fraction;
  problem.threshold_kind = scheduler::ThresholdKind::kFractionOfSimTime;
  problem.sim_time_per_step = kFlashSimTimePerStep;
  problem.output_policy = scheduler::OutputPolicy::kEveryAnalysis;
  // 1024 nodes x 16 GB; FLASH itself is memory-hungry, leave 10% to analyses.
  problem.mth = 1024.0 * 16.0 * GiB * 0.10;
  problem.bw = 4.5 * GB;

  const auto make = [&](const char* name, double compute, double output, double result_mb,
                        double weight) {
    scheduler::AnalysisParams a;
    a.name = name;
    a.ct = compute;
    a.ot = output;
    a.fm = 0.0;  // FLASH allocates and frees analysis memory on the fly
    a.cm = result_mb * MB;
    a.om = result_mb * MB;
    a.itv = 100;
    a.weight = weight;
    return a;
  };
  // Compute times from the paper; output times calibrated (see header).
  problem.analyses.push_back(make("vorticity (F1)", 3.5, 4.65, 2048.0, weights[0]));
  problem.analyses.push_back(make("L1 error norm (F2)", 1.25, 2.25, 16.0, weights[1]));
  problem.analyses.push_back(make("L2 error norm (F3)", 0.0023, 0.0277, 16.0, weights[2]));
  return problem;
}

}  // namespace insched::casestudy
