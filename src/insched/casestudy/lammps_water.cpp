#include "insched/casestudy/lammps_water.hpp"

#include "insched/machine/machine.hpp"
#include "insched/support/assert.hpp"
#include "insched/support/units.hpp"

namespace insched::casestudy {

namespace {

// (cores, sim seconds/step) from Section 5.3.3.
constexpr struct {
  long cores;
  double sim_time;
} kScales[] = {{2048, 4.16}, {4096, 2.12}, {8192, 1.08}, {16384, 0.61}, {32768, 0.4}};

// Per-analysis-step costs at the 16384-core reference scale (seconds).
constexpr double kRefCores = 16384.0;
constexpr double kA1Ref = 0.0803;
constexpr double kA2Ref = 0.0704;
constexpr double kA3Ref = 0.0603;
// A4 (msd): compute + output per analysis step; does not strong-scale.
constexpr double kA4Compute = 20.0;
constexpr double kA4Output = 5.34;
constexpr double kA4Setup = 1.0;

}  // namespace

const std::vector<long>& water_ions_core_counts() {
  static const std::vector<long> counts = {2048, 4096, 8192, 16384, 32768};
  return counts;
}

double water_ions_sim_time_per_step(long cores) {
  for (const auto& scale : kScales)
    if (scale.cores == cores) return scale.sim_time;
  INSCHED_EXPECTS(false && "unsupported core count for the water+ions case");
  return 0.0;
}

scheduler::ScheduleProblem water_ions_problem(long cores, double threshold_fraction,
                                              bool include_vacf, double sim_time_override) {
  const double scale = kRefCores / static_cast<double>(cores);

  scheduler::ScheduleProblem problem;
  problem.steps = 1000;
  problem.threshold = threshold_fraction;
  problem.threshold_kind = scheduler::ThresholdKind::kFractionOfSimTime;
  problem.sim_time_per_step =
      sim_time_override > 0.0 ? sim_time_override : water_ions_sim_time_per_step(cores);
  problem.output_policy = scheduler::OutputPolicy::kEveryAnalysis;
  // 16 ranks/node: memory is not the binding constraint in this case study
  // (the paper's Table 5 is time-driven); a quarter of partition memory is
  // available for analyses.
  const auto nodes = cores / 16;
  problem.mth = static_cast<double>(nodes) * 16.0 * GiB * 0.25;
  problem.bw = machine::mira().io_bandwidth(nodes);

  const auto scaling_analysis = [&](const char* name, double ref_cost, double histogram_mb) {
    scheduler::AnalysisParams a;
    a.name = name;
    a.ct = ref_cost * scale;  // strong-scales with the partition
    a.ot = 0.0;               // result histograms are tiny; folded into ct
    a.fm = histogram_mb * MB;
    a.cm = histogram_mb * MB;
    a.om = histogram_mb * MB;
    a.itv = 100;
    a.weight = 1.0;
    return a;
  };

  problem.analyses.push_back(scaling_analysis("hydronium rdf (A1)", kA1Ref, 2.0));
  problem.analyses.push_back(scaling_analysis("ion rdf (A2)", kA2Ref, 2.0));
  if (include_vacf) problem.analyses.push_back(scaling_analysis("vacf (A3)", kA3Ref, 4.0));

  scheduler::AnalysisParams msd;
  msd.name = "msd (A4)";
  msd.ft = kA4Setup;
  msd.ct = kA4Compute;  // latency-bound collective: flat across core counts
  msd.ot = kA4Output;
  // MSD pre-allocates reference coordinates for 100 M particles and buffers
  // displacement curves; aggregated across the partition.
  msd.fm = 2.4 * GB;
  msd.cm = 0.4 * GB;
  msd.om = 0.8 * GB;
  msd.itv = 100;
  msd.weight = 1.0;
  problem.analyses.push_back(msd);

  return problem;
}

}  // namespace insched::casestudy
