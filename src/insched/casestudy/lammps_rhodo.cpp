#include "insched/casestudy/lammps_rhodo.hpp"

#include "insched/support/units.hpp"

namespace insched::casestudy {

double rhodopsin_write_bw() {
  return kRhodoSimOutputBytes * static_cast<double>(kRhodoDefaultOutputSteps) /
         kRhodoOutputSeconds10;
}

scheduler::ScheduleProblem rhodopsin_problem(double total_threshold_seconds) {
  scheduler::ScheduleProblem problem;
  problem.steps = 1000;
  problem.threshold = total_threshold_seconds;
  problem.threshold_kind = scheduler::ThresholdKind::kTotalSeconds;
  problem.sim_time_per_step = kRhodoSimSeconds / 1000.0;
  problem.output_policy = scheduler::OutputPolicy::kEveryAnalysis;
  problem.bw = rhodopsin_write_bw();
  // 2048 nodes x 16 GB, a quarter available to analyses; not binding here.
  problem.mth = 2048.0 * 16.0 * GiB * 0.25;

  const auto make = [&](const char* name, double step_cost, double result_mb) {
    scheduler::AnalysisParams a;
    a.name = name;
    a.ct = step_cost;  // paper quotes analysis+output per step as one number
    a.ot = 0.0;
    a.fm = result_mb * MB;
    a.cm = result_mb * MB;
    a.om = result_mb * MB;
    a.itv = 100;
    a.weight = 1.0;
    return a;
  };
  problem.analyses.push_back(make("radius of gyration (R1)", 0.003, 0.1));
  problem.analyses.push_back(make("membrane histogram (R2)", 17.193, 64.0));
  problem.analyses.push_back(make("protein histogram (R3)", 17.194, 64.0));
  return problem;
}

}  // namespace insched::casestudy
