#include "insched/lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "insched/support/assert.hpp"
#include "insched/support/log.hpp"

namespace insched::lp {

const char* to_string(SolveStatus status) noexcept {
  switch (status) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kUnbounded: return "unbounded";
    case SolveStatus::kIterationLimit: return "iteration-limit";
    case SolveStatus::kNumericalFailure: return "numerical-failure";
  }
  return "?";
}

namespace {

enum class VarState { kBasic, kAtLower, kAtUpper, kFreeZero };

// Internal working problem: minimize c.z subject to A.z = b, l <= z <= u,
// where z = [structural | slacks | artificials].
class Simplex {
 public:
  Simplex(const Model& model, const SimplexOptions& options)
      : model_(model), opt_(options), m_(model.num_rows()), n_(model.num_columns()) {
    build();
  }

  SimplexResult run();

 private:
  struct Entry {
    int row;
    double coeff;
  };

  void build();
  void add_artificials();
  [[nodiscard]] double nonbasic_value(int j) const;
  void compute_basic_values();
  [[nodiscard]] bool refactorize();
  [[nodiscard]] std::vector<double> compute_duals(const std::vector<double>& cost) const;
  [[nodiscard]] double reduced_cost(int j, const std::vector<double>& cost,
                                    const std::vector<double>& y) const;
  [[nodiscard]] std::vector<double> ftran(int j) const;  // Binv * A_j
  SolveStatus iterate(const std::vector<double>& cost, double* objective_out, int* iters);
  [[nodiscard]] double phase1_infeasibility() const;

  const Model& model_;
  SimplexOptions opt_;
  int m_;               // rows
  int n_;               // structural columns
  int total_ = 0;       // structural + slacks + artificials
  bool maximize_ = false;

  std::vector<std::vector<Entry>> cols_;  // sparse columns of A
  std::vector<double> lower_, upper_;
  std::vector<double> cost2_;             // phase-2 cost (minimize convention)
  std::vector<double> cost1_;             // phase-1 cost (artificial infeasibility)
  std::vector<double> b_;

  std::vector<int> basis_;                // basis_[i] = variable basic in row i
  std::vector<VarState> state_;
  std::vector<double> value_;             // current value of every variable
  std::vector<std::vector<double>> binv_; // dense m x m basis inverse
  int pivots_since_refactor_ = 0;
  int total_iterations_ = 0;
  int phase1_iterations_ = 0;
  int first_artificial_ = 0;
};

void Simplex::build() {
  maximize_ = model_.sense() == Sense::kMaximize;
  total_ = n_ + m_;  // artificials appended later
  cols_.assign(static_cast<std::size_t>(total_), {});
  lower_.resize(static_cast<std::size_t>(total_));
  upper_.resize(static_cast<std::size_t>(total_));
  cost2_.assign(static_cast<std::size_t>(total_), 0.0);
  b_.resize(static_cast<std::size_t>(m_));

  for (int j = 0; j < n_; ++j) {
    const Column& c = model_.column(j);
    lower_[static_cast<std::size_t>(j)] = c.lower;
    upper_[static_cast<std::size_t>(j)] = c.upper;
    cost2_[static_cast<std::size_t>(j)] = maximize_ ? -c.objective : c.objective;
  }
  for (int i = 0; i < m_; ++i) {
    const Row& r = model_.row(i);
    b_[static_cast<std::size_t>(i)] = r.rhs;
    for (const RowEntry& e : r.entries)
      cols_[static_cast<std::size_t>(e.column)].push_back(Entry{i, e.coeff});
    const int slack = n_ + i;
    cols_[static_cast<std::size_t>(slack)].push_back(Entry{i, 1.0});
    switch (r.type) {
      case RowType::kLe:
        lower_[static_cast<std::size_t>(slack)] = 0.0;
        upper_[static_cast<std::size_t>(slack)] = kInf;
        break;
      case RowType::kGe:
        lower_[static_cast<std::size_t>(slack)] = -kInf;
        upper_[static_cast<std::size_t>(slack)] = 0.0;
        break;
      case RowType::kEq:
        lower_[static_cast<std::size_t>(slack)] = 0.0;
        upper_[static_cast<std::size_t>(slack)] = 0.0;
        break;
    }
  }

  // Start every variable nonbasic at the finite bound nearest zero.
  state_.assign(static_cast<std::size_t>(total_), VarState::kAtLower);
  value_.assign(static_cast<std::size_t>(total_), 0.0);
  for (int j = 0; j < total_; ++j) {
    const double lo = lower_[static_cast<std::size_t>(j)];
    const double hi = upper_[static_cast<std::size_t>(j)];
    if (std::isfinite(lo) && std::isfinite(hi)) {
      if (std::fabs(lo) <= std::fabs(hi)) {
        state_[static_cast<std::size_t>(j)] = VarState::kAtLower;
        value_[static_cast<std::size_t>(j)] = lo;
      } else {
        state_[static_cast<std::size_t>(j)] = VarState::kAtUpper;
        value_[static_cast<std::size_t>(j)] = hi;
      }
    } else if (std::isfinite(lo)) {
      state_[static_cast<std::size_t>(j)] = VarState::kAtLower;
      value_[static_cast<std::size_t>(j)] = lo;
    } else if (std::isfinite(hi)) {
      state_[static_cast<std::size_t>(j)] = VarState::kAtUpper;
      value_[static_cast<std::size_t>(j)] = hi;
    } else {
      state_[static_cast<std::size_t>(j)] = VarState::kFreeZero;
      value_[static_cast<std::size_t>(j)] = 0.0;
    }
  }

  add_artificials();
}

void Simplex::add_artificials() {
  // Residual of each row with every variable at its starting value.
  std::vector<double> residual = b_;
  for (int j = 0; j < total_; ++j) {
    const double v = value_[static_cast<std::size_t>(j)];
    if (v == 0.0) continue;
    for (const Entry& e : cols_[static_cast<std::size_t>(j)])
      residual[static_cast<std::size_t>(e.row)] -= e.coeff * v;
  }

  basis_.assign(static_cast<std::size_t>(m_), -1);
  first_artificial_ = total_;
  cost1_.assign(static_cast<std::size_t>(total_), 0.0);

  for (int i = 0; i < m_; ++i) {
    const int slack = n_ + i;
    const double r = residual[static_cast<std::size_t>(i)];
    const double slo = lower_[static_cast<std::size_t>(slack)];
    const double shi = upper_[static_cast<std::size_t>(slack)];
    // The slack column is a unit vector, so making it basic with value
    // (current value + r) is possible; do so when that value is in bounds.
    const double candidate = value_[static_cast<std::size_t>(slack)] + r;
    if (candidate >= slo - opt_.feasibility_tol && candidate <= shi + opt_.feasibility_tol) {
      basis_[static_cast<std::size_t>(i)] = slack;
      state_[static_cast<std::size_t>(slack)] = VarState::kBasic;
      value_[static_cast<std::size_t>(slack)] = candidate;
      continue;
    }
    // Otherwise add a signed artificial carrying the residual.
    const int art = total_++;
    cols_.push_back({Entry{i, 1.0}});
    if (r >= 0.0) {
      lower_.push_back(0.0);
      upper_.push_back(kInf);
      cost1_.push_back(1.0);
    } else {
      lower_.push_back(-kInf);
      upper_.push_back(0.0);
      cost1_.push_back(-1.0);
    }
    cost2_.push_back(0.0);
    state_.push_back(VarState::kBasic);
    value_.push_back(r);
    basis_[static_cast<std::size_t>(i)] = art;
  }
  cost1_.resize(static_cast<std::size_t>(total_), 0.0);

  binv_.assign(static_cast<std::size_t>(m_), std::vector<double>(static_cast<std::size_t>(m_), 0.0));
  for (int i = 0; i < m_; ++i) binv_[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] = 1.0;
}

void Simplex::compute_basic_values() {
  // xB = Binv (b - N xN)
  std::vector<double> rhs = b_;
  for (int j = 0; j < total_; ++j) {
    if (state_[static_cast<std::size_t>(j)] == VarState::kBasic) continue;
    const double v = value_[static_cast<std::size_t>(j)];
    if (v == 0.0) continue;
    for (const Entry& e : cols_[static_cast<std::size_t>(j)])
      rhs[static_cast<std::size_t>(e.row)] -= e.coeff * v;
  }
  for (int i = 0; i < m_; ++i) {
    double v = 0.0;
    const auto& row = binv_[static_cast<std::size_t>(i)];
    for (int k = 0; k < m_; ++k) v += row[static_cast<std::size_t>(k)] * rhs[static_cast<std::size_t>(k)];
    value_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)])] = v;
  }
}

bool Simplex::refactorize() {
  // Rebuild Binv by Gauss-Jordan elimination of the basis matrix.
  std::vector<std::vector<double>> B(static_cast<std::size_t>(m_),
                                     std::vector<double>(static_cast<std::size_t>(m_), 0.0));
  for (int i = 0; i < m_; ++i) {
    const int j = basis_[static_cast<std::size_t>(i)];
    for (const Entry& e : cols_[static_cast<std::size_t>(j)])
      B[static_cast<std::size_t>(e.row)][static_cast<std::size_t>(i)] = e.coeff;
  }
  std::vector<std::vector<double>> inv(static_cast<std::size_t>(m_),
                                       std::vector<double>(static_cast<std::size_t>(m_), 0.0));
  for (int i = 0; i < m_; ++i) inv[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] = 1.0;
  for (int col = 0; col < m_; ++col) {
    int pivot = -1;
    double best = opt_.pivot_tol;
    for (int row = col; row < m_; ++row) {
      const double v = std::fabs(B[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)]);
      if (v > best) {
        best = v;
        pivot = row;
      }
    }
    if (pivot < 0) return false;  // singular basis: numerical trouble
    std::swap(B[static_cast<std::size_t>(col)], B[static_cast<std::size_t>(pivot)]);
    std::swap(inv[static_cast<std::size_t>(col)], inv[static_cast<std::size_t>(pivot)]);
    const double diag = B[static_cast<std::size_t>(col)][static_cast<std::size_t>(col)];
    for (int k = 0; k < m_; ++k) {
      B[static_cast<std::size_t>(col)][static_cast<std::size_t>(k)] /= diag;
      inv[static_cast<std::size_t>(col)][static_cast<std::size_t>(k)] /= diag;
    }
    for (int row = 0; row < m_; ++row) {
      if (row == col) continue;
      const double factor = B[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)];
      if (factor == 0.0) continue;
      for (int k = 0; k < m_; ++k) {
        B[static_cast<std::size_t>(row)][static_cast<std::size_t>(k)] -=
            factor * B[static_cast<std::size_t>(col)][static_cast<std::size_t>(k)];
        inv[static_cast<std::size_t>(row)][static_cast<std::size_t>(k)] -=
            factor * inv[static_cast<std::size_t>(col)][static_cast<std::size_t>(k)];
      }
    }
  }
  // All row operations (including swaps) were applied to both matrices, so
  // inv is exactly B^{-1}.
  binv_ = std::move(inv);
  pivots_since_refactor_ = 0;
  compute_basic_values();
  return true;
}

std::vector<double> Simplex::compute_duals(const std::vector<double>& cost) const {
  std::vector<double> y(static_cast<std::size_t>(m_), 0.0);
  for (int i = 0; i < m_; ++i) {
    const double cb = cost[static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)])];
    if (cb == 0.0) continue;
    const auto& row = binv_[static_cast<std::size_t>(i)];
    for (int k = 0; k < m_; ++k) y[static_cast<std::size_t>(k)] += cb * row[static_cast<std::size_t>(k)];
  }
  return y;
}

double Simplex::reduced_cost(int j, const std::vector<double>& cost,
                             const std::vector<double>& y) const {
  double d = cost[static_cast<std::size_t>(j)];
  for (const Entry& e : cols_[static_cast<std::size_t>(j)])
    d -= y[static_cast<std::size_t>(e.row)] * e.coeff;
  return d;
}

std::vector<double> Simplex::ftran(int j) const {
  std::vector<double> w(static_cast<std::size_t>(m_), 0.0);
  for (const Entry& e : cols_[static_cast<std::size_t>(j)]) {
    const double a = e.coeff;
    for (int i = 0; i < m_; ++i)
      w[static_cast<std::size_t>(i)] += binv_[static_cast<std::size_t>(i)][static_cast<std::size_t>(e.row)] * a;
  }
  return w;
}

double Simplex::phase1_infeasibility() const {
  double total = 0.0;
  for (int j = first_artificial_; j < total_; ++j)
    total += cost1_[static_cast<std::size_t>(j)] * value_[static_cast<std::size_t>(j)];
  return total;
}

SolveStatus Simplex::iterate(const std::vector<double>& cost, double* objective_out, int* iters) {
  int stall = 0;
  bool bland = false;
  double last_objective = kInf;

  while (true) {
    if (total_iterations_ >= opt_.max_iterations) return SolveStatus::kIterationLimit;

    const std::vector<double> y = compute_duals(cost);

    // Pricing: pick the entering variable.
    int entering = -1;
    double best_score = opt_.optimality_tol;
    int entering_dir = 0;  // +1 increase, -1 decrease
    for (int j = 0; j < total_; ++j) {
      const VarState st = state_[static_cast<std::size_t>(j)];
      if (st == VarState::kBasic) continue;
      const double lo = lower_[static_cast<std::size_t>(j)];
      const double hi = upper_[static_cast<std::size_t>(j)];
      if (lo == hi) continue;  // fixed variable can never improve
      const double d = reduced_cost(j, cost, y);
      int dir = 0;
      double score = 0.0;
      if ((st == VarState::kAtLower || st == VarState::kFreeZero) && d < -opt_.optimality_tol) {
        dir = +1;
        score = -d;
      } else if ((st == VarState::kAtUpper || st == VarState::kFreeZero) && d > opt_.optimality_tol) {
        dir = -1;
        score = d;
      }
      if (dir == 0) continue;
      if (bland) {
        entering = j;
        entering_dir = dir;
        break;
      }
      if (score > best_score) {
        best_score = score;
        entering = j;
        entering_dir = dir;
      }
    }
    if (entering < 0) {
      if (objective_out) {
        double obj = 0.0;
        for (int j = 0; j < total_; ++j)
          obj += cost[static_cast<std::size_t>(j)] * value_[static_cast<std::size_t>(j)];
        *objective_out = obj;
      }
      return SolveStatus::kOptimal;
    }

    ++total_iterations_;
    if (iters) ++(*iters);

    const double sigma = static_cast<double>(entering_dir);
    const std::vector<double> w = ftran(entering);

    // Ratio test: how far can the entering variable move?
    const double elo = lower_[static_cast<std::size_t>(entering)];
    const double ehi = upper_[static_cast<std::size_t>(entering)];
    double t_max = kInf;
    if (std::isfinite(elo) && std::isfinite(ehi)) t_max = ehi - elo;  // bound flip distance
    double t_best = t_max;
    int leaving_row = -1;
    bool leaving_at_upper = false;

    for (int i = 0; i < m_; ++i) {
      const double wi = w[static_cast<std::size_t>(i)];
      if (std::fabs(wi) <= opt_.pivot_tol) continue;
      const int bj = basis_[static_cast<std::size_t>(i)];
      const double bv = value_[static_cast<std::size_t>(bj)];
      const double delta = sigma * wi;  // basic var changes by -delta * t
      double limit = kInf;
      bool hits_upper = false;
      if (delta > 0.0) {
        const double lo = lower_[static_cast<std::size_t>(bj)];
        if (std::isfinite(lo)) limit = (bv - lo) / delta;
      } else {
        const double hi = upper_[static_cast<std::size_t>(bj)];
        if (std::isfinite(hi)) {
          limit = (hi - bv) / (-delta);
          hits_upper = true;
        }
      }
      if (limit < -opt_.feasibility_tol) limit = 0.0;  // slight infeasibility: block
      if (limit < t_best - 1e-12 ||
          (leaving_row >= 0 && limit < t_best + 1e-12 &&
           std::fabs(wi) > std::fabs(w[static_cast<std::size_t>(leaving_row)]))) {
        if (bland && leaving_row >= 0 && limit >= t_best - 1e-12 &&
            basis_[static_cast<std::size_t>(i)] > basis_[static_cast<std::size_t>(leaving_row)])
          continue;  // Bland: prefer smallest variable index on ties
        t_best = std::max(limit, 0.0);
        leaving_row = i;
        leaving_at_upper = hits_upper;
      }
    }

    if (!std::isfinite(t_best)) return SolveStatus::kUnbounded;

    if (leaving_row < 0) {
      // Bound flip: entering variable jumps to its opposite bound.
      for (int i = 0; i < m_; ++i) {
        const int bj = basis_[static_cast<std::size_t>(i)];
        value_[static_cast<std::size_t>(bj)] -= sigma * w[static_cast<std::size_t>(i)] * t_best;
      }
      if (entering_dir > 0) {
        state_[static_cast<std::size_t>(entering)] = VarState::kAtUpper;
        value_[static_cast<std::size_t>(entering)] = ehi;
      } else {
        state_[static_cast<std::size_t>(entering)] = VarState::kAtLower;
        value_[static_cast<std::size_t>(entering)] = elo;
      }
    } else {
      // Pivot: update values, basis and the inverse.
      const double wr = w[static_cast<std::size_t>(leaving_row)];
      const int leaving = basis_[static_cast<std::size_t>(leaving_row)];
      for (int i = 0; i < m_; ++i) {
        if (i == leaving_row) continue;
        const int bj = basis_[static_cast<std::size_t>(i)];
        value_[static_cast<std::size_t>(bj)] -= sigma * w[static_cast<std::size_t>(i)] * t_best;
      }
      value_[static_cast<std::size_t>(entering)] += sigma * t_best;
      state_[static_cast<std::size_t>(entering)] = VarState::kBasic;
      if (leaving_at_upper) {
        state_[static_cast<std::size_t>(leaving)] = VarState::kAtUpper;
        value_[static_cast<std::size_t>(leaving)] = upper_[static_cast<std::size_t>(leaving)];
      } else {
        state_[static_cast<std::size_t>(leaving)] = VarState::kAtLower;
        value_[static_cast<std::size_t>(leaving)] = lower_[static_cast<std::size_t>(leaving)];
      }
      basis_[static_cast<std::size_t>(leaving_row)] = entering;

      // Product-form update of Binv.
      auto& pivot_row = binv_[static_cast<std::size_t>(leaving_row)];
      for (int k = 0; k < m_; ++k) pivot_row[static_cast<std::size_t>(k)] /= wr;
      for (int i = 0; i < m_; ++i) {
        if (i == leaving_row) continue;
        const double factor = w[static_cast<std::size_t>(i)];
        if (factor == 0.0) continue;
        auto& row = binv_[static_cast<std::size_t>(i)];
        for (int k = 0; k < m_; ++k)
          row[static_cast<std::size_t>(k)] -= factor * pivot_row[static_cast<std::size_t>(k)];
      }
      if (++pivots_since_refactor_ >= opt_.refactor_interval) {
        if (!refactorize()) return SolveStatus::kNumericalFailure;
      }
    }

    // Anti-cycling: if the objective stops improving, fall back to Bland.
    double obj = 0.0;
    for (int j = 0; j < total_; ++j)
      obj += cost[static_cast<std::size_t>(j)] * value_[static_cast<std::size_t>(j)];
    if (obj < last_objective - 1e-12) {
      stall = 0;
      bland = false;
    } else if (++stall > opt_.stall_limit) {
      bland = true;
    }
    last_objective = obj;
  }
}

SimplexResult Simplex::run() {
  SimplexResult result;

  // Phase 1: drive artificial infeasibility to zero (skipped when the slack
  // start was already feasible).
  if (first_artificial_ < total_) {
    double phase1_obj = 0.0;
    const SolveStatus st = iterate(cost1_, &phase1_obj, &phase1_iterations_);
    result.phase1_iterations = phase1_iterations_;
    if (st == SolveStatus::kIterationLimit || st == SolveStatus::kNumericalFailure) {
      result.status = st;
      result.iterations = total_iterations_;
      return result;
    }
    INSCHED_ASSERT(st != SolveStatus::kUnbounded);  // phase-1 objective >= 0
    if (phase1_infeasibility() > 1e-6) {
      result.status = SolveStatus::kInfeasible;
      result.iterations = total_iterations_;
      return result;
    }
    // Pin artificials at zero for phase 2.
    for (int j = first_artificial_; j < total_; ++j) {
      lower_[static_cast<std::size_t>(j)] = 0.0;
      upper_[static_cast<std::size_t>(j)] = 0.0;
      if (state_[static_cast<std::size_t>(j)] != VarState::kBasic) {
        state_[static_cast<std::size_t>(j)] = VarState::kAtLower;
        value_[static_cast<std::size_t>(j)] = 0.0;
      }
    }
  }

  double phase2_obj = 0.0;
  int phase2_iters = 0;
  const SolveStatus st = iterate(cost2_, &phase2_obj, &phase2_iters);
  result.iterations = total_iterations_;
  result.phase1_iterations = phase1_iterations_;
  result.status = st;
  if (st != SolveStatus::kOptimal) return result;

  result.x.assign(static_cast<std::size_t>(n_), 0.0);
  for (int j = 0; j < n_; ++j) result.x[static_cast<std::size_t>(j)] = value_[static_cast<std::size_t>(j)];
  result.objective = model_.objective_value(result.x);

  const std::vector<double> y = compute_duals(cost2_);
  result.duals.assign(static_cast<std::size_t>(m_), 0.0);
  for (int i = 0; i < m_; ++i)
    result.duals[static_cast<std::size_t>(i)] =
        maximize_ ? -y[static_cast<std::size_t>(i)] : y[static_cast<std::size_t>(i)];
  result.reduced_costs.assign(static_cast<std::size_t>(n_), 0.0);
  for (int j = 0; j < n_; ++j) {
    const double d = reduced_cost(j, cost2_, y);
    result.reduced_costs[static_cast<std::size_t>(j)] = maximize_ ? -d : d;
  }
  return result;
}

}  // namespace

SimplexResult solve_lp(const Model& model, const SimplexOptions& options) {
  Simplex solver(model, options);
  return solver.run();
}

}  // namespace insched::lp
