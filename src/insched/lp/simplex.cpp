#include "insched/lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "insched/support/assert.hpp"
#include "insched/support/log.hpp"

namespace insched::lp {

const char* to_string(SolveStatus status) noexcept {
  switch (status) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kUnbounded: return "unbounded";
    case SolveStatus::kIterationLimit: return "iteration-limit";
    case SolveStatus::kNumericalFailure: return "numerical-failure";
  }
  return "?";
}

namespace {

enum class VarState { kBasic, kAtLower, kAtUpper, kFreeZero };

// Internal working problem: minimize c.z subject to A.z = b, l <= z <= u,
// where z = [structural | slacks | artificials]. One Engine is reusable
// across solves of the same base model with different column bounds: the
// constraint matrix is built once, per-solve state is reset in prepare().
class Engine {
 public:
  Engine(const Model& model, const SimplexOptions& options)
      : model_(model), opt_(options), m_(model.num_rows()), n_(model.num_columns()) {
    build_arrays();
  }

  [[nodiscard]] SimplexResult solve_cold(const std::vector<BoundOverride>& overrides);
  [[nodiscard]] SimplexResult solve_dual(const std::vector<BoundOverride>& overrides,
                                         const Basis& start, const Factorization* hint);

 private:
  struct Entry {
    int row;
    double coeff;
  };

  void build_arrays();
  void prepare(const std::vector<BoundOverride>& overrides);
  void start_cold();
  void add_artificials();
  [[nodiscard]] bool load_basis(const Basis& start, const Factorization* hint);
  void compute_basic_values();
  [[nodiscard]] bool refactorize();
  [[nodiscard]] std::vector<double> compute_duals(const std::vector<double>& cost) const;
  [[nodiscard]] double reduced_cost(int j, const std::vector<double>& cost,
                                    const std::vector<double>& y) const;
  [[nodiscard]] std::vector<double> ftran(int j) const;  // Binv * A_j
  SolveStatus iterate(const std::vector<double>& cost, double* objective_out, int* iters);
  SolveStatus iterate_dual(const std::vector<double>& cost, int* iters);
  [[nodiscard]] double phase1_infeasibility() const;
  [[nodiscard]] bool residuals_ok() const;
  void extract(SimplexResult* result) const;
  void export_basis(SimplexResult* result) const;

  const Model& model_;
  SimplexOptions opt_;
  int m_;               // rows
  int n_;               // structural columns
  int total_ = 0;       // structural + slacks + artificials
  bool maximize_ = false;

  std::vector<std::vector<Entry>> cols_;  // sparse columns of A
  std::vector<double> base_lower_, base_upper_;  // pristine bounds (n + m)
  std::vector<double> lower_, upper_;
  std::vector<double> cost2_;             // phase-2 cost (minimize convention)
  std::vector<double> cost1_;             // phase-1 cost (artificial infeasibility)
  std::vector<double> b_;

  std::vector<int> basis_;                // basis_[i] = variable basic in row i
  std::vector<VarState> state_;
  std::vector<double> value_;             // current value of every variable
  std::vector<std::vector<double>> binv_; // dense m x m basis inverse
  int pivots_since_refactor_ = 0;
  int total_iterations_ = 0;
  int phase1_iterations_ = 0;
  int first_artificial_ = 0;
};

void Engine::build_arrays() {
  maximize_ = model_.sense() == Sense::kMaximize;
  total_ = n_ + m_;
  cols_.assign(static_cast<std::size_t>(total_), {});
  base_lower_.resize(static_cast<std::size_t>(total_));
  base_upper_.resize(static_cast<std::size_t>(total_));
  cost2_.assign(static_cast<std::size_t>(total_), 0.0);
  b_.resize(static_cast<std::size_t>(m_));

  for (int j = 0; j < n_; ++j) {
    const Column& c = model_.column(j);
    base_lower_[static_cast<std::size_t>(j)] = c.lower;
    base_upper_[static_cast<std::size_t>(j)] = c.upper;
    cost2_[static_cast<std::size_t>(j)] = maximize_ ? -c.objective : c.objective;
  }
  for (int i = 0; i < m_; ++i) {
    const Row& r = model_.row(i);
    b_[static_cast<std::size_t>(i)] = r.rhs;
    for (const RowEntry& e : r.entries)
      cols_[static_cast<std::size_t>(e.column)].push_back(Entry{i, e.coeff});
    const int slack = n_ + i;
    cols_[static_cast<std::size_t>(slack)].push_back(Entry{i, 1.0});
    switch (r.type) {
      case RowType::kLe:
        base_lower_[static_cast<std::size_t>(slack)] = 0.0;
        base_upper_[static_cast<std::size_t>(slack)] = kInf;
        break;
      case RowType::kGe:
        base_lower_[static_cast<std::size_t>(slack)] = -kInf;
        base_upper_[static_cast<std::size_t>(slack)] = 0.0;
        break;
      case RowType::kEq:
        base_lower_[static_cast<std::size_t>(slack)] = 0.0;
        base_upper_[static_cast<std::size_t>(slack)] = 0.0;
        break;
    }
  }
}

void Engine::prepare(const std::vector<BoundOverride>& overrides) {
  // Drop artificial columns left over from a previous cold solve on this
  // workspace and restore the pristine bounds.
  total_ = n_ + m_;
  first_artificial_ = total_;
  cols_.resize(static_cast<std::size_t>(total_));
  cost2_.resize(static_cast<std::size_t>(total_));
  lower_ = base_lower_;
  upper_ = base_upper_;
  for (const BoundOverride& o : overrides) {
    INSCHED_ASSERT(o.column >= 0 && o.column < n_);
    lower_[static_cast<std::size_t>(o.column)] = o.lower;
    upper_[static_cast<std::size_t>(o.column)] = o.upper;
  }
  state_.assign(static_cast<std::size_t>(total_), VarState::kAtLower);
  value_.assign(static_cast<std::size_t>(total_), 0.0);
  pivots_since_refactor_ = 0;
  total_iterations_ = 0;
  phase1_iterations_ = 0;
}

void Engine::start_cold() {
  // Start every variable nonbasic at the finite bound nearest zero.
  for (int j = 0; j < total_; ++j) {
    const double lo = lower_[static_cast<std::size_t>(j)];
    const double hi = upper_[static_cast<std::size_t>(j)];
    if (std::isfinite(lo) && std::isfinite(hi)) {
      if (std::fabs(lo) <= std::fabs(hi)) {
        state_[static_cast<std::size_t>(j)] = VarState::kAtLower;
        value_[static_cast<std::size_t>(j)] = lo;
      } else {
        state_[static_cast<std::size_t>(j)] = VarState::kAtUpper;
        value_[static_cast<std::size_t>(j)] = hi;
      }
    } else if (std::isfinite(lo)) {
      state_[static_cast<std::size_t>(j)] = VarState::kAtLower;
      value_[static_cast<std::size_t>(j)] = lo;
    } else if (std::isfinite(hi)) {
      state_[static_cast<std::size_t>(j)] = VarState::kAtUpper;
      value_[static_cast<std::size_t>(j)] = hi;
    } else {
      state_[static_cast<std::size_t>(j)] = VarState::kFreeZero;
      value_[static_cast<std::size_t>(j)] = 0.0;
    }
  }
  add_artificials();
}

void Engine::add_artificials() {
  // Residual of each row with every variable at its starting value.
  std::vector<double> residual = b_;
  for (int j = 0; j < total_; ++j) {
    const double v = value_[static_cast<std::size_t>(j)];
    if (v == 0.0) continue;
    for (const Entry& e : cols_[static_cast<std::size_t>(j)])
      residual[static_cast<std::size_t>(e.row)] -= e.coeff * v;
  }

  basis_.assign(static_cast<std::size_t>(m_), -1);
  first_artificial_ = total_;
  cost1_.assign(static_cast<std::size_t>(total_), 0.0);

  for (int i = 0; i < m_; ++i) {
    const int slack = n_ + i;
    const double r = residual[static_cast<std::size_t>(i)];
    const double slo = lower_[static_cast<std::size_t>(slack)];
    const double shi = upper_[static_cast<std::size_t>(slack)];
    // The slack column is a unit vector, so making it basic with value
    // (current value + r) is possible; do so when that value is in bounds.
    const double candidate = value_[static_cast<std::size_t>(slack)] + r;
    if (candidate >= slo - opt_.feasibility_tol && candidate <= shi + opt_.feasibility_tol) {
      basis_[static_cast<std::size_t>(i)] = slack;
      state_[static_cast<std::size_t>(slack)] = VarState::kBasic;
      value_[static_cast<std::size_t>(slack)] = candidate;
      continue;
    }
    // Otherwise add a signed artificial carrying the residual.
    const int art = total_++;
    cols_.push_back({Entry{i, 1.0}});
    if (r >= 0.0) {
      lower_.push_back(0.0);
      upper_.push_back(kInf);
      cost1_.push_back(1.0);
    } else {
      lower_.push_back(-kInf);
      upper_.push_back(0.0);
      cost1_.push_back(-1.0);
    }
    cost2_.push_back(0.0);
    state_.push_back(VarState::kBasic);
    value_.push_back(r);
    basis_[static_cast<std::size_t>(i)] = art;
  }
  cost1_.resize(static_cast<std::size_t>(total_), 0.0);

  binv_.assign(static_cast<std::size_t>(m_), std::vector<double>(static_cast<std::size_t>(m_), 0.0));
  for (int i = 0; i < m_; ++i) binv_[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] = 1.0;
}

bool Engine::load_basis(const Basis& start, const Factorization* hint) {
  if (start.rows() != m_ || start.variables() != total_) return false;
  if (!start.consistent()) return false;

  basis_ = start.basic;
  for (int j = 0; j < total_; ++j) {
    const double lo = lower_[static_cast<std::size_t>(j)];
    const double hi = upper_[static_cast<std::size_t>(j)];
    VarState st;
    switch (start.status[static_cast<std::size_t>(j)]) {
      case BasisStatus::kBasic: st = VarState::kBasic; break;
      case BasisStatus::kAtLower: st = VarState::kAtLower; break;
      case BasisStatus::kAtUpper: st = VarState::kAtUpper; break;
      default: st = VarState::kFreeZero; break;
    }
    // Snap nonbasic variables onto the (possibly moved) bounds; this is the
    // warm-start step that keeps the basis dual feasible while primal
    // feasibility is restored by the dual pivots.
    if (st == VarState::kAtLower && !std::isfinite(lo)) st = std::isfinite(hi) ? VarState::kAtUpper : VarState::kFreeZero;
    if (st == VarState::kAtUpper && !std::isfinite(hi)) st = std::isfinite(lo) ? VarState::kAtLower : VarState::kFreeZero;
    if (st == VarState::kFreeZero) {
      if (lo > 0.0) st = VarState::kAtLower;
      else if (hi < 0.0) st = VarState::kAtUpper;
    }
    state_[static_cast<std::size_t>(j)] = st;
    switch (st) {
      case VarState::kBasic: break;  // filled by compute_basic_values
      case VarState::kAtLower: value_[static_cast<std::size_t>(j)] = lo; break;
      case VarState::kAtUpper: value_[static_cast<std::size_t>(j)] = hi; break;
      case VarState::kFreeZero: value_[static_cast<std::size_t>(j)] = 0.0; break;
    }
  }

  if (hint != nullptr && hint->rows() == m_) {
    binv_ = hint->binv;
    pivots_since_refactor_ = 0;
    compute_basic_values();
    return true;
  }
  binv_.assign(static_cast<std::size_t>(m_),
               std::vector<double>(static_cast<std::size_t>(m_), 0.0));
  for (int i = 0; i < m_; ++i) binv_[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] = 1.0;
  return refactorize();
}

void Engine::compute_basic_values() {
  // xB = Binv (b - N xN)
  std::vector<double> rhs = b_;
  for (int j = 0; j < total_; ++j) {
    if (state_[static_cast<std::size_t>(j)] == VarState::kBasic) continue;
    const double v = value_[static_cast<std::size_t>(j)];
    if (v == 0.0) continue;
    for (const Entry& e : cols_[static_cast<std::size_t>(j)])
      rhs[static_cast<std::size_t>(e.row)] -= e.coeff * v;
  }
  for (int i = 0; i < m_; ++i) {
    double v = 0.0;
    const auto& row = binv_[static_cast<std::size_t>(i)];
    for (int k = 0; k < m_; ++k) v += row[static_cast<std::size_t>(k)] * rhs[static_cast<std::size_t>(k)];
    value_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)])] = v;
  }
}

bool Engine::refactorize() {
  // Rebuild Binv by Gauss-Jordan elimination of the basis matrix.
  std::vector<std::vector<double>> B(static_cast<std::size_t>(m_),
                                     std::vector<double>(static_cast<std::size_t>(m_), 0.0));
  for (int i = 0; i < m_; ++i) {
    const int j = basis_[static_cast<std::size_t>(i)];
    for (const Entry& e : cols_[static_cast<std::size_t>(j)])
      B[static_cast<std::size_t>(e.row)][static_cast<std::size_t>(i)] = e.coeff;
  }
  std::vector<std::vector<double>> inv(static_cast<std::size_t>(m_),
                                       std::vector<double>(static_cast<std::size_t>(m_), 0.0));
  for (int i = 0; i < m_; ++i) inv[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] = 1.0;
  for (int col = 0; col < m_; ++col) {
    int pivot = -1;
    double best = opt_.pivot_tol;
    for (int row = col; row < m_; ++row) {
      const double v = std::fabs(B[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)]);
      if (v > best) {
        best = v;
        pivot = row;
      }
    }
    if (pivot < 0) return false;  // singular basis: numerical trouble
    std::swap(B[static_cast<std::size_t>(col)], B[static_cast<std::size_t>(pivot)]);
    std::swap(inv[static_cast<std::size_t>(col)], inv[static_cast<std::size_t>(pivot)]);
    const double diag = B[static_cast<std::size_t>(col)][static_cast<std::size_t>(col)];
    for (int k = 0; k < m_; ++k) {
      B[static_cast<std::size_t>(col)][static_cast<std::size_t>(k)] /= diag;
      inv[static_cast<std::size_t>(col)][static_cast<std::size_t>(k)] /= diag;
    }
    for (int row = 0; row < m_; ++row) {
      if (row == col) continue;
      const double factor = B[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)];
      if (factor == 0.0) continue;
      for (int k = 0; k < m_; ++k) {
        B[static_cast<std::size_t>(row)][static_cast<std::size_t>(k)] -=
            factor * B[static_cast<std::size_t>(col)][static_cast<std::size_t>(k)];
        inv[static_cast<std::size_t>(row)][static_cast<std::size_t>(k)] -=
            factor * inv[static_cast<std::size_t>(col)][static_cast<std::size_t>(k)];
      }
    }
  }
  // All row operations (including swaps) were applied to both matrices, so
  // inv is exactly B^{-1}.
  binv_ = std::move(inv);
  pivots_since_refactor_ = 0;
  compute_basic_values();
  return true;
}

std::vector<double> Engine::compute_duals(const std::vector<double>& cost) const {
  std::vector<double> y(static_cast<std::size_t>(m_), 0.0);
  for (int i = 0; i < m_; ++i) {
    const double cb = cost[static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)])];
    if (cb == 0.0) continue;
    const auto& row = binv_[static_cast<std::size_t>(i)];
    for (int k = 0; k < m_; ++k) y[static_cast<std::size_t>(k)] += cb * row[static_cast<std::size_t>(k)];
  }
  return y;
}

double Engine::reduced_cost(int j, const std::vector<double>& cost,
                            const std::vector<double>& y) const {
  double d = cost[static_cast<std::size_t>(j)];
  for (const Entry& e : cols_[static_cast<std::size_t>(j)])
    d -= y[static_cast<std::size_t>(e.row)] * e.coeff;
  return d;
}

std::vector<double> Engine::ftran(int j) const {
  std::vector<double> w(static_cast<std::size_t>(m_), 0.0);
  for (const Entry& e : cols_[static_cast<std::size_t>(j)]) {
    const double a = e.coeff;
    for (int i = 0; i < m_; ++i)
      w[static_cast<std::size_t>(i)] += binv_[static_cast<std::size_t>(i)][static_cast<std::size_t>(e.row)] * a;
  }
  return w;
}

double Engine::phase1_infeasibility() const {
  double total = 0.0;
  for (int j = first_artificial_; j < total_; ++j)
    total += cost1_[static_cast<std::size_t>(j)] * value_[static_cast<std::size_t>(j)];
  return total;
}

bool Engine::residuals_ok() const {
  std::vector<double> activity(static_cast<std::size_t>(m_), 0.0);
  for (int j = 0; j < total_; ++j) {
    const double v = value_[static_cast<std::size_t>(j)];
    if (v == 0.0) continue;
    for (const Entry& e : cols_[static_cast<std::size_t>(j)])
      activity[static_cast<std::size_t>(e.row)] += e.coeff * v;
  }
  for (int i = 0; i < m_; ++i) {
    const double rhs = b_[static_cast<std::size_t>(i)];
    if (std::fabs(activity[static_cast<std::size_t>(i)] - rhs) >
        1e-6 * (1.0 + std::fabs(rhs)))
      return false;
  }
  return true;
}

SolveStatus Engine::iterate(const std::vector<double>& cost, double* objective_out, int* iters) {
  int stall = 0;
  bool bland = false;
  double last_objective = kInf;

  while (true) {
    if (total_iterations_ >= opt_.max_iterations) return SolveStatus::kIterationLimit;

    const std::vector<double> y = compute_duals(cost);

    // Pricing: pick the entering variable.
    int entering = -1;
    double best_score = opt_.optimality_tol;
    int entering_dir = 0;  // +1 increase, -1 decrease
    for (int j = 0; j < total_; ++j) {
      const VarState st = state_[static_cast<std::size_t>(j)];
      if (st == VarState::kBasic) continue;
      const double lo = lower_[static_cast<std::size_t>(j)];
      const double hi = upper_[static_cast<std::size_t>(j)];
      if (lo == hi) continue;  // fixed variable can never improve
      const double d = reduced_cost(j, cost, y);
      int dir = 0;
      double score = 0.0;
      if ((st == VarState::kAtLower || st == VarState::kFreeZero) && d < -opt_.optimality_tol) {
        dir = +1;
        score = -d;
      } else if ((st == VarState::kAtUpper || st == VarState::kFreeZero) && d > opt_.optimality_tol) {
        dir = -1;
        score = d;
      }
      if (dir == 0) continue;
      if (bland) {
        entering = j;
        entering_dir = dir;
        break;
      }
      if (score > best_score) {
        best_score = score;
        entering = j;
        entering_dir = dir;
      }
    }
    if (entering < 0) {
      if (objective_out) {
        double obj = 0.0;
        for (int j = 0; j < total_; ++j)
          obj += cost[static_cast<std::size_t>(j)] * value_[static_cast<std::size_t>(j)];
        *objective_out = obj;
      }
      return SolveStatus::kOptimal;
    }

    ++total_iterations_;
    if (iters) ++(*iters);

    const double sigma = static_cast<double>(entering_dir);
    const std::vector<double> w = ftran(entering);

    // Ratio test: how far can the entering variable move?
    const double elo = lower_[static_cast<std::size_t>(entering)];
    const double ehi = upper_[static_cast<std::size_t>(entering)];
    double t_max = kInf;
    if (std::isfinite(elo) && std::isfinite(ehi)) t_max = ehi - elo;  // bound flip distance
    double t_best = t_max;
    int leaving_row = -1;
    bool leaving_at_upper = false;

    for (int i = 0; i < m_; ++i) {
      const double wi = w[static_cast<std::size_t>(i)];
      if (std::fabs(wi) <= opt_.pivot_tol) continue;
      const int bj = basis_[static_cast<std::size_t>(i)];
      const double bv = value_[static_cast<std::size_t>(bj)];
      const double delta = sigma * wi;  // basic var changes by -delta * t
      double limit = kInf;
      bool hits_upper = false;
      if (delta > 0.0) {
        const double lo = lower_[static_cast<std::size_t>(bj)];
        if (std::isfinite(lo)) limit = (bv - lo) / delta;
      } else {
        const double hi = upper_[static_cast<std::size_t>(bj)];
        if (std::isfinite(hi)) {
          limit = (hi - bv) / (-delta);
          hits_upper = true;
        }
      }
      if (limit < -opt_.feasibility_tol) limit = 0.0;  // slight infeasibility: block
      if (limit < t_best - 1e-12 ||
          (leaving_row >= 0 && limit < t_best + 1e-12 &&
           std::fabs(wi) > std::fabs(w[static_cast<std::size_t>(leaving_row)]))) {
        if (bland && leaving_row >= 0 && limit >= t_best - 1e-12 &&
            basis_[static_cast<std::size_t>(i)] > basis_[static_cast<std::size_t>(leaving_row)])
          continue;  // Bland: prefer smallest variable index on ties
        t_best = std::max(limit, 0.0);
        leaving_row = i;
        leaving_at_upper = hits_upper;
      }
    }

    if (!std::isfinite(t_best)) return SolveStatus::kUnbounded;

    if (leaving_row < 0) {
      // Bound flip: entering variable jumps to its opposite bound.
      for (int i = 0; i < m_; ++i) {
        const int bj = basis_[static_cast<std::size_t>(i)];
        value_[static_cast<std::size_t>(bj)] -= sigma * w[static_cast<std::size_t>(i)] * t_best;
      }
      if (entering_dir > 0) {
        state_[static_cast<std::size_t>(entering)] = VarState::kAtUpper;
        value_[static_cast<std::size_t>(entering)] = ehi;
      } else {
        state_[static_cast<std::size_t>(entering)] = VarState::kAtLower;
        value_[static_cast<std::size_t>(entering)] = elo;
      }
    } else {
      // Pivot: update values, basis and the inverse.
      const double wr = w[static_cast<std::size_t>(leaving_row)];
      const int leaving = basis_[static_cast<std::size_t>(leaving_row)];
      for (int i = 0; i < m_; ++i) {
        if (i == leaving_row) continue;
        const int bj = basis_[static_cast<std::size_t>(i)];
        value_[static_cast<std::size_t>(bj)] -= sigma * w[static_cast<std::size_t>(i)] * t_best;
      }
      value_[static_cast<std::size_t>(entering)] += sigma * t_best;
      state_[static_cast<std::size_t>(entering)] = VarState::kBasic;
      if (leaving_at_upper) {
        state_[static_cast<std::size_t>(leaving)] = VarState::kAtUpper;
        value_[static_cast<std::size_t>(leaving)] = upper_[static_cast<std::size_t>(leaving)];
      } else {
        state_[static_cast<std::size_t>(leaving)] = VarState::kAtLower;
        value_[static_cast<std::size_t>(leaving)] = lower_[static_cast<std::size_t>(leaving)];
      }
      basis_[static_cast<std::size_t>(leaving_row)] = entering;

      // Product-form update of Binv.
      auto& pivot_row = binv_[static_cast<std::size_t>(leaving_row)];
      for (int k = 0; k < m_; ++k) pivot_row[static_cast<std::size_t>(k)] /= wr;
      for (int i = 0; i < m_; ++i) {
        if (i == leaving_row) continue;
        const double factor = w[static_cast<std::size_t>(i)];
        if (factor == 0.0) continue;
        auto& row = binv_[static_cast<std::size_t>(i)];
        for (int k = 0; k < m_; ++k)
          row[static_cast<std::size_t>(k)] -= factor * pivot_row[static_cast<std::size_t>(k)];
      }
      if (++pivots_since_refactor_ >= opt_.refactor_interval) {
        if (!refactorize()) return SolveStatus::kNumericalFailure;
      }
    }

    // Anti-cycling: if the objective stops improving, fall back to Bland.
    double obj = 0.0;
    for (int j = 0; j < total_; ++j)
      obj += cost[static_cast<std::size_t>(j)] * value_[static_cast<std::size_t>(j)];
    if (obj < last_objective - 1e-12) {
      stall = 0;
      bland = false;
    } else if (++stall > opt_.stall_limit) {
      bland = true;
    }
    last_objective = obj;
  }
}

// Bounded-variable dual simplex: the basis is dual feasible (all reduced
// costs have the right sign for their nonbasic state); pivots restore primal
// feasibility row by row. Each iteration selects the most-violated basic
// variable as leaving, then the entering variable by the dual ratio test
// (smallest |d_j / alpha_j| keeps every reduced cost on the right side of
// zero). Ties break to the larger |alpha| for stability, then the smaller
// column index for cross-run determinism.
SolveStatus Engine::iterate_dual(const std::vector<double>& cost, int* iters) {
  int stall = 0;
  bool bland = false;

  while (true) {
    if (total_iterations_ >= opt_.max_iterations) return SolveStatus::kIterationLimit;

    // Leaving row: largest bound violation among basic variables (Bland
    // fallback: smallest basic variable index with any violation).
    int leaving_row = -1;
    bool below = false;
    double worst = opt_.feasibility_tol;
    for (int i = 0; i < m_; ++i) {
      const int bj = basis_[static_cast<std::size_t>(i)];
      const double v = value_[static_cast<std::size_t>(bj)];
      const double viol_lo = lower_[static_cast<std::size_t>(bj)] - v;
      const double viol_hi = v - upper_[static_cast<std::size_t>(bj)];
      if (bland) {
        if (viol_lo > opt_.feasibility_tol || viol_hi > opt_.feasibility_tol) {
          if (leaving_row < 0 ||
              bj < basis_[static_cast<std::size_t>(leaving_row)]) {
            leaving_row = i;
            below = viol_lo > viol_hi;
          }
        }
        continue;
      }
      if (viol_lo > worst) {
        worst = viol_lo;
        leaving_row = i;
        below = true;
      }
      if (viol_hi > worst) {
        worst = viol_hi;
        leaving_row = i;
        below = false;
      }
    }
    if (leaving_row < 0) return SolveStatus::kOptimal;  // primal feasible

    ++total_iterations_;
    if (iters) ++(*iters);

    const int leaving = basis_[static_cast<std::size_t>(leaving_row)];
    const double target = below ? lower_[static_cast<std::size_t>(leaving)]
                                : upper_[static_cast<std::size_t>(leaving)];
    const auto& br = binv_[static_cast<std::size_t>(leaving_row)];  // e_r^T Binv
    const std::vector<double> y = compute_duals(cost);

    // Dual ratio test over the nonbasic columns.
    int entering = -1;
    int entering_dir = 0;
    double best_ratio = kInf;
    double best_alpha = 0.0;
    // Maximum repair of the violated row achievable by columns whose alpha
    // is below pivot_tol. They are unusable as pivots, but a sub-tolerance
    // alpha times a wide variable range (big-M columns) can still move the
    // row, so an eventual "no entering column" verdict proves infeasibility
    // only if the violation exceeds this slack.
    double tiny_gain = 0.0;
    for (int j = 0; j < total_; ++j) {
      if (state_[static_cast<std::size_t>(j)] == VarState::kBasic) continue;
      if (lower_[static_cast<std::size_t>(j)] == upper_[static_cast<std::size_t>(j)])
        continue;  // fixed variable cannot move
      double alpha = 0.0;
      for (const Entry& e : cols_[static_cast<std::size_t>(j)])
        alpha += br[static_cast<std::size_t>(e.row)] * e.coeff;
      if (std::fabs(alpha) <= opt_.pivot_tol) {
        if (alpha != 0.0) {
          // Repair of x_B(r) per unit increase of x_j is -alpha (below
          // violation) or +alpha (above); moving down gives the negative.
          const double range = upper_[static_cast<std::size_t>(j)] -
                               lower_[static_cast<std::size_t>(j)];
          const double up_help = below ? -alpha : alpha;
          const VarState st = state_[static_cast<std::size_t>(j)];
          if (st != VarState::kAtUpper && up_help > 0.0) tiny_gain += up_help * range;
          else if (st != VarState::kAtLower && up_help < 0.0) tiny_gain += -up_help * range;
        }
        continue;
      }
      // x_B(r) changes by -alpha per unit increase of x_j; pick the
      // direction that moves the leaving variable toward its violated bound.
      const int dir = (below ? alpha < 0.0 : alpha > 0.0) ? +1 : -1;
      const VarState st = state_[static_cast<std::size_t>(j)];
      if (dir > 0 && st == VarState::kAtUpper) continue;
      if (dir < 0 && st == VarState::kAtLower) continue;
      const double d = reduced_cost(j, cost, y);
      const double ratio = std::fabs(d) / std::fabs(alpha);
      const bool better =
          entering < 0 || ratio < best_ratio - 1e-12 ||
          (ratio < best_ratio + 1e-12 &&
           (bland ? j < entering
                  : (std::fabs(alpha) > std::fabs(best_alpha) + 1e-12 ||
                     (std::fabs(alpha) >= std::fabs(best_alpha) - 1e-12 && j < entering))));
      if (better) {
        entering = j;
        entering_dir = dir;
        best_ratio = ratio;
        best_alpha = alpha;
      }
    }
    if (entering < 0) {
      // No usable column can repair the violated row: the current nonbasic
      // point extremizes the row's value over the bound box (blocked
      // columns only move it the wrong way), so the row stays violated for
      // every choice of the nonbasics — a valid infeasibility proof
      // provided the sub-tolerance columns' combined slack cannot close the
      // gap. Otherwise the proof is in doubt and the caller must fall back
      // to the cold path.
      const double viol = below
                              ? lower_[static_cast<std::size_t>(leaving)] -
                                    value_[static_cast<std::size_t>(leaving)]
                              : value_[static_cast<std::size_t>(leaving)] -
                                    upper_[static_cast<std::size_t>(leaving)];
      if (viol <= tiny_gain + opt_.feasibility_tol) return SolveStatus::kNumericalFailure;
      // The alphas came from `br`, which may have drifted through
      // product-form updates. The proof is only as good as br being a true
      // row of the basis inverse: check br * B = e_r before certifying.
      for (int i = 0; i < m_; ++i) {
        const int bj = basis_[static_cast<std::size_t>(i)];
        double dot = 0.0;
        for (const Entry& e : cols_[static_cast<std::size_t>(bj)])
          dot += br[static_cast<std::size_t>(e.row)] * e.coeff;
        if (std::fabs(dot - (i == leaving_row ? 1.0 : 0.0)) > 1e-6)
          return SolveStatus::kNumericalFailure;
      }
      return SolveStatus::kInfeasible;
    }

    const double sigma = static_cast<double>(entering_dir);
    const std::vector<double> w = ftran(entering);
    const double wr = w[static_cast<std::size_t>(leaving_row)];
    if (std::fabs(wr) <= opt_.pivot_tol) return SolveStatus::kNumericalFailure;

    // Primal step: drive the leaving variable exactly onto its violated
    // bound. t >= 0 by the entering-direction choice.
    double t = (value_[static_cast<std::size_t>(leaving)] - target) / (sigma * wr);
    if (t < 0.0) t = 0.0;  // degenerate guard against round-off

    for (int i = 0; i < m_; ++i) {
      if (i == leaving_row) continue;
      const int bj = basis_[static_cast<std::size_t>(i)];
      value_[static_cast<std::size_t>(bj)] -= sigma * w[static_cast<std::size_t>(i)] * t;
    }
    value_[static_cast<std::size_t>(entering)] += sigma * t;
    state_[static_cast<std::size_t>(entering)] = VarState::kBasic;
    state_[static_cast<std::size_t>(leaving)] = below ? VarState::kAtLower : VarState::kAtUpper;
    value_[static_cast<std::size_t>(leaving)] = target;
    basis_[static_cast<std::size_t>(leaving_row)] = entering;

    // Product-form update of Binv (same as the primal pivot).
    auto& pivot_row = binv_[static_cast<std::size_t>(leaving_row)];
    for (int k = 0; k < m_; ++k) pivot_row[static_cast<std::size_t>(k)] /= wr;
    for (int i = 0; i < m_; ++i) {
      if (i == leaving_row) continue;
      const double factor = w[static_cast<std::size_t>(i)];
      if (factor == 0.0) continue;
      auto& row = binv_[static_cast<std::size_t>(i)];
      for (int k = 0; k < m_; ++k)
        row[static_cast<std::size_t>(k)] -= factor * pivot_row[static_cast<std::size_t>(k)];
    }
    if (++pivots_since_refactor_ >= opt_.refactor_interval) {
      if (!refactorize()) return SolveStatus::kNumericalFailure;
    }

    // Anti-cycling: degenerate pivots (zero step) switch to Bland-style
    // smallest-index selection until real progress resumes.
    if (t > 1e-12) {
      stall = 0;
      bland = false;
    } else if (++stall > opt_.stall_limit) {
      bland = true;
    }
  }
}

void Engine::extract(SimplexResult* result) const {
  result->x.assign(static_cast<std::size_t>(n_), 0.0);
  for (int j = 0; j < n_; ++j)
    result->x[static_cast<std::size_t>(j)] = value_[static_cast<std::size_t>(j)];
  result->objective = model_.objective_value(result->x);

  if (opt_.want_duals) {
    const std::vector<double> y = compute_duals(cost2_);
    result->duals.assign(static_cast<std::size_t>(m_), 0.0);
    for (int i = 0; i < m_; ++i)
      result->duals[static_cast<std::size_t>(i)] =
          maximize_ ? -y[static_cast<std::size_t>(i)] : y[static_cast<std::size_t>(i)];
    result->reduced_costs.assign(static_cast<std::size_t>(n_), 0.0);
    for (int j = 0; j < n_; ++j) {
      const double d = reduced_cost(j, cost2_, y);
      result->reduced_costs[static_cast<std::size_t>(j)] = maximize_ ? -d : d;
    }
  }
}

void Engine::export_basis(SimplexResult* result) const {
  const int structural_and_slack = n_ + m_;
  for (int i = 0; i < m_; ++i)
    if (basis_[static_cast<std::size_t>(i)] >= structural_and_slack)
      return;  // a basic artificial survived (degenerate); no snapshot
  Basis basis;
  basis.basic = basis_;
  basis.status.resize(static_cast<std::size_t>(structural_and_slack));
  for (int j = 0; j < structural_and_slack; ++j) {
    BasisStatus s;
    switch (state_[static_cast<std::size_t>(j)]) {
      case VarState::kBasic: s = BasisStatus::kBasic; break;
      case VarState::kAtLower: s = BasisStatus::kAtLower; break;
      case VarState::kAtUpper: s = BasisStatus::kAtUpper; break;
      default: s = BasisStatus::kFree; break;
    }
    basis.status[static_cast<std::size_t>(j)] = s;
  }
  auto factor = std::make_shared<Factorization>();
  factor->binv = binv_;
  result->basis = std::move(basis);
  result->factor = std::move(factor);
}

SimplexResult Engine::solve_cold(const std::vector<BoundOverride>& overrides) {
  prepare(overrides);
  for (int j = 0; j < total_; ++j) {
    if (lower_[static_cast<std::size_t>(j)] > upper_[static_cast<std::size_t>(j)]) {
      SimplexResult result;
      result.status = SolveStatus::kInfeasible;
      return result;
    }
  }
  start_cold();

  SimplexResult result;

  // Phase 1: drive artificial infeasibility to zero (skipped when the slack
  // start was already feasible).
  if (first_artificial_ < total_) {
    double phase1_obj = 0.0;
    const SolveStatus st = iterate(cost1_, &phase1_obj, &phase1_iterations_);
    result.phase1_iterations = phase1_iterations_;
    if (st == SolveStatus::kIterationLimit || st == SolveStatus::kNumericalFailure) {
      result.status = st;
      result.iterations = total_iterations_;
      return result;
    }
    INSCHED_ASSERT(st != SolveStatus::kUnbounded);  // phase-1 objective >= 0
    if (phase1_infeasibility() > 1e-6) {
      result.status = SolveStatus::kInfeasible;
      result.iterations = total_iterations_;
      return result;
    }
    // Pin artificials at zero for phase 2.
    for (int j = first_artificial_; j < total_; ++j) {
      lower_[static_cast<std::size_t>(j)] = 0.0;
      upper_[static_cast<std::size_t>(j)] = 0.0;
      if (state_[static_cast<std::size_t>(j)] != VarState::kBasic) {
        state_[static_cast<std::size_t>(j)] = VarState::kAtLower;
        value_[static_cast<std::size_t>(j)] = 0.0;
      }
    }
  }

  double phase2_obj = 0.0;
  int phase2_iters = 0;
  const SolveStatus st = iterate(cost2_, &phase2_obj, &phase2_iters);
  result.iterations = total_iterations_;
  result.phase1_iterations = phase1_iterations_;
  result.status = st;
  if (st != SolveStatus::kOptimal) return result;

  extract(&result);
  if (opt_.collect_basis) export_basis(&result);
  return result;
}

SimplexResult Engine::solve_dual(const std::vector<BoundOverride>& overrides,
                                 const Basis& start, const Factorization* hint) {
  prepare(overrides);
  SimplexResult result;
  for (int j = 0; j < total_; ++j) {
    if (lower_[static_cast<std::size_t>(j)] > upper_[static_cast<std::size_t>(j)]) {
      result.status = SolveStatus::kInfeasible;
      return result;
    }
  }
  if (!load_basis(start, hint)) {
    result.status = SolveStatus::kNumericalFailure;
    return result;
  }

  int dual_iters = 0;
  SolveStatus st = iterate_dual(cost2_, &dual_iters);
  if (st == SolveStatus::kOptimal) {
    // The dual loop restored primal feasibility; a short primal cleanup
    // clears any dual infeasibility introduced by bound snapping (usually
    // zero pivots).
    double obj = 0.0;
    int cleanup_iters = 0;
    st = iterate(cost2_, &obj, &cleanup_iters);
  }
  result.iterations = total_iterations_;
  result.status = st;
  if (st != SolveStatus::kOptimal) return result;
  if (!residuals_ok()) {
    // A stale factorization hint can silently corrupt the solution; verify
    // A x = b before trusting the warm result.
    result.status = SolveStatus::kNumericalFailure;
    return result;
  }

  extract(&result);
  if (opt_.collect_basis) export_basis(&result);
  return result;
}

}  // namespace

struct WarmSimplex::Impl {
  Engine engine;
  Impl(const Model& base, const SimplexOptions& options) : engine(base, options) {}
};

WarmSimplex::WarmSimplex(const Model& base, const SimplexOptions& options)
    : impl_(std::make_unique<Impl>(base, options)) {}
WarmSimplex::~WarmSimplex() = default;
WarmSimplex::WarmSimplex(WarmSimplex&&) noexcept = default;
WarmSimplex& WarmSimplex::operator=(WarmSimplex&&) noexcept = default;

SimplexResult WarmSimplex::solve_dual(const std::vector<BoundOverride>& overrides,
                                      const Basis& start, const Factorization* hint) {
  return impl_->engine.solve_dual(overrides, start, hint);
}

SimplexResult WarmSimplex::solve_cold(const std::vector<BoundOverride>& overrides) {
  return impl_->engine.solve_cold(overrides);
}

SimplexResult solve_lp(const Model& model, const SimplexOptions& options) {
  Engine engine(model, options);
  return engine.solve_cold({});
}

SimplexResult solve_lp_dual(const Model& model, const Basis& start,
                            const SimplexOptions& options) {
  Engine engine(model, options);
  return engine.solve_dual({}, start, nullptr);
}

}  // namespace insched::lp
