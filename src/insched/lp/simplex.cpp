#include "insched/lp/simplex.hpp"

#include <algorithm>
#include <cmath>

#include "insched/lp/factor.hpp"
#include "insched/support/assert.hpp"
#include "insched/support/fault_inject.hpp"
#include "insched/support/log.hpp"

namespace insched::lp {

const char* to_string(SolveStatus status) noexcept {
  switch (status) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kUnbounded: return "unbounded";
    case SolveStatus::kIterationLimit: return "iteration-limit";
    case SolveStatus::kNumericalFailure: return "numerical-failure";
  }
  return "?";
}

namespace {

enum class VarState { kBasic, kAtLower, kAtUpper, kFreeZero };

// Internal working problem: minimize c.z subject to A.z = b, l <= z <= u,
// where z = [structural | slacks | artificials]. One Engine is reusable
// across solves of the same base model with different column bounds: the
// constraint matrix is built once, per-solve state is reset in prepare().
//
// All basis linear algebra goes through the sparse LU + eta-file kernel in
// factor.hpp: pivots append product-form etas, FTRAN/BTRAN exploit
// right-hand-side hyper-sparsity, and duals are maintained incrementally
// (one hyper-sparse BTRAN of the changed row per pivot) instead of the
// former dense O(m^2) recomputation every iteration.
class Engine {
 public:
  Engine(const Model& model, const SimplexOptions& options)
      : model_(model), opt_(options), m_(model.num_rows()), n_(model.num_columns()) {
    build_arrays();
  }

  [[nodiscard]] SimplexResult solve_cold(const std::vector<BoundOverride>& overrides);
  [[nodiscard]] SimplexResult solve_dual(const std::vector<BoundOverride>& overrides,
                                         const Basis& start, const Factorization* hint);

 private:
  struct Entry {
    int row;
    double coeff;
  };

  void build_arrays();
  void prepare(const std::vector<BoundOverride>& overrides);
  [[nodiscard]] bool start_cold();
  [[nodiscard]] bool add_artificials();
  [[nodiscard]] bool load_basis(const Basis& start, const Factorization* hint);
  void compute_basic_values();
  [[nodiscard]] bool factorize_basis(double tau = 0.1, SingularInfo* singular = nullptr);
  [[nodiscard]] bool refactorize();
  [[nodiscard]] bool recover_factorization();
  [[nodiscard]] bool primal_feasible() const;
  void snap_nonbasic_and_recompute();
  void perturb_bounds();
  void unperturb_bounds();
  void compute_duals(const std::vector<double>& cost, std::vector<double>* y);
  [[nodiscard]] double reduced_cost(int j, const std::vector<double>& cost,
                                    const std::vector<double>& y) const;
  void ftran_column(int j);  // w_ := Binv * A_j
  SolveStatus iterate(const std::vector<double>& cost, double* objective_out, int* iters);
  SolveStatus iterate_dual(const std::vector<double>& cost, int* iters);
  [[nodiscard]] double phase1_infeasibility() const;
  [[nodiscard]] bool residuals_ok() const;
  void extract(SimplexResult* result);
  void export_basis(SimplexResult* result) const;

  const Model& model_;
  SimplexOptions opt_;
  int m_;               // rows
  int n_;               // structural columns
  int total_ = 0;       // structural + slacks + artificials
  bool maximize_ = false;

  std::vector<std::vector<Entry>> cols_;  // sparse columns of A
  std::vector<double> base_lower_, base_upper_;  // pristine bounds (n + m)
  std::vector<double> lower_, upper_;
  std::vector<double> cost2_;             // phase-2 cost (minimize convention)
  std::vector<double> cost1_;             // phase-1 cost (artificial infeasibility)
  std::vector<double> b_;

  std::vector<int> basis_;                // basis_[i] = variable basic in row i
  std::vector<VarState> state_;
  std::vector<double> value_;             // current value of every variable
  LuFactors lu_;                          // sparse LU + eta file of the basis
  SparseVec w_;                           // FTRAN image of the entering column
  SparseVec rho_;                         // BTRAN image of the leaving row
  SparseVec alpha_;                       // dual pricing row (alpha per column)
  SparseVec vwork_;                       // generic solve workspace
  std::vector<double> devex_;             // devex reference weights
  std::vector<double> ywork_;             // dual vector, reused across solves
  mutable std::vector<double> actwork_;   // residual-check scratch
  int price_cursor_ = 0;                  // rotating partial-pricing start
  int pivots_since_refactor_ = 0;
  int total_iterations_ = 0;
  int phase1_iterations_ = 0;
  int first_artificial_ = 0;

  // Recovery-ladder state (docs/ROBUSTNESS.md), reset per solve. The ladder
  // shares one budget (`recoveries_` vs opt_.max_recoveries) across all its
  // rungs so a genuinely broken basis cannot loop forever.
  RecoveryStats recovery_;
  int recoveries_ = 0;
  bool perturbed_ = false;      // perturbed bounds are currently in effect
  bool perturb_used_ = false;   // at most one perturbation per solve
  std::vector<double> saved_lower_, saved_upper_;
};

void Engine::build_arrays() {
  maximize_ = model_.sense() == Sense::kMaximize;
  total_ = n_ + m_;
  cols_.assign(static_cast<std::size_t>(total_), {});
  base_lower_.resize(static_cast<std::size_t>(total_));
  base_upper_.resize(static_cast<std::size_t>(total_));
  cost2_.assign(static_cast<std::size_t>(total_), 0.0);
  b_.resize(static_cast<std::size_t>(m_));

  for (int j = 0; j < n_; ++j) {
    const Column& c = model_.column(j);
    base_lower_[static_cast<std::size_t>(j)] = c.lower;
    base_upper_[static_cast<std::size_t>(j)] = c.upper;
    cost2_[static_cast<std::size_t>(j)] = maximize_ ? -c.objective : c.objective;
  }
  for (int i = 0; i < m_; ++i) {
    const Row& r = model_.row(i);
    b_[static_cast<std::size_t>(i)] = r.rhs;
    for (const RowEntry& e : r.entries)
      cols_[static_cast<std::size_t>(e.column)].push_back(Entry{i, e.coeff});
    const int slack = n_ + i;
    cols_[static_cast<std::size_t>(slack)].push_back(Entry{i, 1.0});
    switch (r.type) {
      case RowType::kLe:
        base_lower_[static_cast<std::size_t>(slack)] = 0.0;
        base_upper_[static_cast<std::size_t>(slack)] = kInf;
        break;
      case RowType::kGe:
        base_lower_[static_cast<std::size_t>(slack)] = -kInf;
        base_upper_[static_cast<std::size_t>(slack)] = 0.0;
        break;
      case RowType::kEq:
        base_lower_[static_cast<std::size_t>(slack)] = 0.0;
        base_upper_[static_cast<std::size_t>(slack)] = 0.0;
        break;
    }
  }
}

void Engine::prepare(const std::vector<BoundOverride>& overrides) {
  // Drop artificial columns left over from a previous cold solve on this
  // workspace and restore the pristine bounds.
  total_ = n_ + m_;
  first_artificial_ = total_;
  cols_.resize(static_cast<std::size_t>(total_));
  cost2_.resize(static_cast<std::size_t>(total_));
  lower_ = base_lower_;
  upper_ = base_upper_;
  for (const BoundOverride& o : overrides) {
    INSCHED_ASSERT(o.column >= 0 && o.column < n_);
    lower_[static_cast<std::size_t>(o.column)] = o.lower;
    upper_[static_cast<std::size_t>(o.column)] = o.upper;
  }
  state_.assign(static_cast<std::size_t>(total_), VarState::kAtLower);
  value_.assign(static_cast<std::size_t>(total_), 0.0);
  lu_.reset_stats();
  price_cursor_ = 0;
  pivots_since_refactor_ = 0;
  total_iterations_ = 0;
  phase1_iterations_ = 0;
  recovery_ = RecoveryStats{};
  recoveries_ = 0;
  perturbed_ = false;
  perturb_used_ = false;
}

bool Engine::start_cold() {
  // Start every variable nonbasic at the finite bound nearest zero.
  for (int j = 0; j < total_; ++j) {
    const double lo = lower_[static_cast<std::size_t>(j)];
    const double hi = upper_[static_cast<std::size_t>(j)];
    if (std::isfinite(lo) && std::isfinite(hi)) {
      if (std::fabs(lo) <= std::fabs(hi)) {
        state_[static_cast<std::size_t>(j)] = VarState::kAtLower;
        value_[static_cast<std::size_t>(j)] = lo;
      } else {
        state_[static_cast<std::size_t>(j)] = VarState::kAtUpper;
        value_[static_cast<std::size_t>(j)] = hi;
      }
    } else if (std::isfinite(lo)) {
      state_[static_cast<std::size_t>(j)] = VarState::kAtLower;
      value_[static_cast<std::size_t>(j)] = lo;
    } else if (std::isfinite(hi)) {
      state_[static_cast<std::size_t>(j)] = VarState::kAtUpper;
      value_[static_cast<std::size_t>(j)] = hi;
    } else {
      state_[static_cast<std::size_t>(j)] = VarState::kFreeZero;
      value_[static_cast<std::size_t>(j)] = 0.0;
    }
  }
  return add_artificials();
}

bool Engine::add_artificials() {
  // Residual of each row with every variable at its starting value.
  std::vector<double> residual = b_;
  for (int j = 0; j < total_; ++j) {
    const double v = value_[static_cast<std::size_t>(j)];
    if (v == 0.0) continue;
    for (const Entry& e : cols_[static_cast<std::size_t>(j)])
      residual[static_cast<std::size_t>(e.row)] -= e.coeff * v;
  }

  basis_.assign(static_cast<std::size_t>(m_), -1);
  first_artificial_ = total_;
  cost1_.assign(static_cast<std::size_t>(total_), 0.0);

  for (int i = 0; i < m_; ++i) {
    const int slack = n_ + i;
    const double r = residual[static_cast<std::size_t>(i)];
    const double slo = lower_[static_cast<std::size_t>(slack)];
    const double shi = upper_[static_cast<std::size_t>(slack)];
    // The slack column is a unit vector, so making it basic with value
    // (current value + r) is possible; do so when that value is in bounds.
    const double candidate = value_[static_cast<std::size_t>(slack)] + r;
    if (candidate >= slo - opt_.feasibility_tol && candidate <= shi + opt_.feasibility_tol) {
      basis_[static_cast<std::size_t>(i)] = slack;
      state_[static_cast<std::size_t>(slack)] = VarState::kBasic;
      value_[static_cast<std::size_t>(slack)] = candidate;
      continue;
    }
    // Otherwise add a signed artificial carrying the residual.
    const int art = total_++;
    cols_.push_back({Entry{i, 1.0}});
    if (r >= 0.0) {
      lower_.push_back(0.0);
      upper_.push_back(kInf);
      cost1_.push_back(1.0);
    } else {
      lower_.push_back(-kInf);
      upper_.push_back(0.0);
      cost1_.push_back(-1.0);
    }
    cost2_.push_back(0.0);
    state_.push_back(VarState::kBasic);
    value_.push_back(r);
    basis_[static_cast<std::size_t>(i)] = art;
  }
  cost1_.resize(static_cast<std::size_t>(total_), 0.0);

  // The starting basis is all unit columns (slacks and artificials), so the
  // factorization is a trivial singleton cascade that only fails under
  // injected faults or corrupted memory — both worth surviving.
  if (factorize_basis()) return true;
  return recover_factorization();
}

bool Engine::load_basis(const Basis& start, const Factorization* hint) {
  if (start.rows() != m_ || start.variables() != total_) return false;
  if (!start.consistent()) return false;

  basis_ = start.basic;
  for (int j = 0; j < total_; ++j) {
    const double lo = lower_[static_cast<std::size_t>(j)];
    const double hi = upper_[static_cast<std::size_t>(j)];
    VarState st;
    switch (start.status[static_cast<std::size_t>(j)]) {
      case BasisStatus::kBasic: st = VarState::kBasic; break;
      case BasisStatus::kAtLower: st = VarState::kAtLower; break;
      case BasisStatus::kAtUpper: st = VarState::kAtUpper; break;
      default: st = VarState::kFreeZero; break;
    }
    // Snap nonbasic variables onto the (possibly moved) bounds; this is the
    // warm-start step that keeps the basis dual feasible while primal
    // feasibility is restored by the dual pivots.
    if (st == VarState::kAtLower && !std::isfinite(lo)) st = std::isfinite(hi) ? VarState::kAtUpper : VarState::kFreeZero;
    if (st == VarState::kAtUpper && !std::isfinite(hi)) st = std::isfinite(lo) ? VarState::kAtLower : VarState::kFreeZero;
    if (st == VarState::kFreeZero) {
      if (lo > 0.0) st = VarState::kAtLower;
      else if (hi < 0.0) st = VarState::kAtUpper;
    }
    state_[static_cast<std::size_t>(j)] = st;
    switch (st) {
      case VarState::kBasic: break;  // filled by compute_basic_values
      case VarState::kAtLower: value_[static_cast<std::size_t>(j)] = lo; break;
      case VarState::kAtUpper: value_[static_cast<std::size_t>(j)] = hi; break;
      case VarState::kFreeZero: value_[static_cast<std::size_t>(j)] = 0.0; break;
    }
  }

  if (hint != nullptr && hint->rows() == m_ && hint->core != nullptr) {
    lu_.load(*hint);
    // The hint's eta chain counts against the refactorization budget; a
    // long-chained hint is cheaper to refactorize than to keep applying.
    pivots_since_refactor_ = hint->eta_count();
    if (pivots_since_refactor_ >= opt_.refactor_interval) return refactorize();
    compute_basic_values();
    return true;
  }
  return refactorize();
}

void Engine::compute_basic_values() {
  // xB = Binv (b - N xN), one FTRAN on the (usually mostly dense) rhs.
  vwork_.resize(m_);
  for (int i = 0; i < m_; ++i)
    if (b_[static_cast<std::size_t>(i)] != 0.0) vwork_.add(i, b_[static_cast<std::size_t>(i)]);
  for (int j = 0; j < total_; ++j) {
    if (state_[static_cast<std::size_t>(j)] == VarState::kBasic) continue;
    const double v = value_[static_cast<std::size_t>(j)];
    if (v == 0.0) continue;
    for (const Entry& e : cols_[static_cast<std::size_t>(j)]) vwork_.add(e.row, -e.coeff * v);
  }
  lu_.ftran(&vwork_);
  for (int i = 0; i < m_; ++i)
    value_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)])] =
        vwork_.values[static_cast<std::size_t>(i)];
  vwork_.clear();
}

bool Engine::factorize_basis(double tau, SingularInfo* singular) {
  std::vector<std::vector<LuEntry>> bcols(static_cast<std::size_t>(m_));
  for (int i = 0; i < m_; ++i) {
    const auto& col = cols_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)])];
    auto& out = bcols[static_cast<std::size_t>(i)];
    out.reserve(col.size());
    for (const Entry& e : col) out.push_back({e.row, e.coeff});
  }
  if (!lu_.factorize(bcols, opt_.pivot_tol, tau, singular)) return false;  // singular
  pivots_since_refactor_ = 0;
  return true;
}

// Recovery ladder for a singular (re)factorization: first retry with
// progressively tighter Markowitz thresholds (tau -> 1 forbids the unstable
// small-pivot choices that let the elimination paint itself into a corner),
// then substitute slacks for the basis positions the last attempt left
// unpivoted. A slack column is a unit vector, so the repaired basis is
// structurally nonsingular; the evicted variables park on their nearest
// bound and the caller's pivots restore feasibility and optimality.
bool Engine::recover_factorization() {
  if (!opt_.enable_recovery || recoveries_ >= opt_.max_recoveries) return false;
  ++recoveries_;
  SingularInfo info;
  for (const double tau : {0.5, 0.9}) {
    ++recovery_.refactor_tightened;
    if (factorize_basis(tau, &info)) return true;
  }
  const std::size_t k = std::min(info.rows.size(), info.positions.size());
  long substituted = 0;
  for (std::size_t t = 0; t < k; ++t) {
    const auto pos = static_cast<std::size_t>(info.positions[t]);
    const auto slack = static_cast<std::size_t>(n_ + info.rows[t]);
    if (state_[slack] == VarState::kBasic) continue;  // basic in another row
    const auto old = static_cast<std::size_t>(basis_[pos]);
    const double lo = lower_[old];
    const double hi = upper_[old];
    if (std::isfinite(lo) &&
        (!std::isfinite(hi) || std::fabs(value_[old] - lo) <= std::fabs(hi - value_[old]))) {
      state_[old] = VarState::kAtLower;
      value_[old] = lo;
    } else if (std::isfinite(hi)) {
      state_[old] = VarState::kAtUpper;
      value_[old] = hi;
    } else {
      state_[old] = VarState::kFreeZero;
      value_[old] = 0.0;
    }
    basis_[pos] = static_cast<int>(slack);
    state_[slack] = VarState::kBasic;
    ++substituted;
  }
  if (substituted == 0) return false;
  recovery_.singular_repairs += substituted;
  return factorize_basis(0.9);
}

bool Engine::refactorize() {
  if (!factorize_basis() && !recover_factorization()) return false;
  compute_basic_values();
  if (!residuals_ok()) {
    // Fresh factors can only disagree with A x = b when a solve was
    // corrupted (drifted eta chain, injected FTRAN fault): rebuild once
    // with the tightest threshold; a second drift is terminal.
    ++recovery_.residual_failures;
    if (!opt_.enable_recovery || recoveries_ >= opt_.max_recoveries) return false;
    ++recoveries_;
    if (!factorize_basis(0.9) && !recover_factorization()) return false;
    compute_basic_values();
    if (!residuals_ok()) return false;
  }
  return true;
}

bool Engine::primal_feasible() const {
  for (int i = 0; i < m_; ++i) {
    const auto bj = static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)]);
    const double v = value_[bj];
    if (v < lower_[bj] - opt_.feasibility_tol || v > upper_[bj] + opt_.feasibility_tol)
      return false;
  }
  return true;
}

void Engine::snap_nonbasic_and_recompute() {
  for (int j = 0; j < total_; ++j) {
    const auto s = static_cast<std::size_t>(j);
    if (state_[s] == VarState::kAtLower) value_[s] = lower_[s];
    else if (state_[s] == VarState::kAtUpper) value_[s] = upper_[s];
  }
  compute_basic_values();
}

// Anti-cycling bound perturbation: relax every finite, non-fixed structural
// and slack bound by a tiny deterministic per-column amount. The perturbed
// problem is a relaxation whose degenerate vertices split apart, so a pivot
// sequence that Bland's rule could not unstick resumes making (tiny) real
// progress; unperturb_bounds() restores the exact problem and the clean-up
// pivots finish at its true optimum. The magnitudes stay well below
// feasibility_tol so the restored point is at worst tolerably infeasible,
// which the exit-path feasibility check and dual clean-up absorb.
void Engine::perturb_bounds() {
  saved_lower_ = lower_;
  saved_upper_ = upper_;
  for (int j = 0; j < first_artificial_; ++j) {
    const auto s = static_cast<std::size_t>(j);
    double& lo = lower_[s];
    double& hi = upper_[s];
    if (lo == hi) continue;  // fixed columns must stay fixed
    const unsigned h = static_cast<unsigned>(j) * 2654435761u;  // Fibonacci hash
    const double eps = 1e-10 * (1.0 + static_cast<double>((h >> 8) & 1023) / 1024.0);
    if (std::isfinite(lo)) lo -= eps * (1.0 + std::fabs(lo));
    if (std::isfinite(hi)) hi += eps * (1.0 + std::fabs(hi));
  }
  snap_nonbasic_and_recompute();
  perturbed_ = true;
  perturb_used_ = true;
  ++recovery_.perturbations;
}

void Engine::unperturb_bounds() {
  lower_ = std::move(saved_lower_);
  upper_ = std::move(saved_upper_);
  snap_nonbasic_and_recompute();
  perturbed_ = false;
  ++recovery_.cleanups;
}

void Engine::compute_duals(const std::vector<double>& cost, std::vector<double>* y) {
  // y = cB^T Binv, one BTRAN; the cost vector is sparse in phase 1 and on
  // the scheduling models (most columns are free of objective weight).
  vwork_.resize(m_);
  for (int i = 0; i < m_; ++i) {
    const double cb = cost[static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)])];
    if (cb != 0.0) vwork_.add(i, cb);
  }
  lu_.btran(&vwork_);
  y->assign(static_cast<std::size_t>(m_), 0.0);
  for (int i = 0; i < m_; ++i) (*y)[static_cast<std::size_t>(i)] = vwork_.values[static_cast<std::size_t>(i)];
  vwork_.clear();
}

double Engine::reduced_cost(int j, const std::vector<double>& cost,
                            const std::vector<double>& y) const {
  double d = cost[static_cast<std::size_t>(j)];
  for (const Entry& e : cols_[static_cast<std::size_t>(j)])
    d -= y[static_cast<std::size_t>(e.row)] * e.coeff;
  return d;
}

void Engine::ftran_column(int j) {
  w_.resize(m_);
  for (const Entry& e : cols_[static_cast<std::size_t>(j)]) w_.add(e.row, e.coeff);
  lu_.ftran(&w_);
}

double Engine::phase1_infeasibility() const {
  double total = 0.0;
  for (int j = first_artificial_; j < total_; ++j)
    total += cost1_[static_cast<std::size_t>(j)] * value_[static_cast<std::size_t>(j)];
  return total;
}

bool Engine::residuals_ok() const {
  actwork_.assign(static_cast<std::size_t>(m_), 0.0);
  std::vector<double>& activity = actwork_;
  for (int j = 0; j < total_; ++j) {
    const double v = value_[static_cast<std::size_t>(j)];
    if (v == 0.0) continue;
    for (const Entry& e : cols_[static_cast<std::size_t>(j)])
      activity[static_cast<std::size_t>(e.row)] += e.coeff * v;
  }
  for (int i = 0; i < m_; ++i) {
    const double rhs = b_[static_cast<std::size_t>(i)];
    if (std::fabs(activity[static_cast<std::size_t>(i)] - rhs) >
        1e-6 * (1.0 + std::fabs(rhs)))
      return false;
  }
  return true;
}

SolveStatus Engine::iterate(const std::vector<double>& cost, double* objective_out, int* iters) {
  int stall = 0;
  bool bland = false;
  int repair_rounds = 0;  // dual feasibility-repair passes at the exit

  compute_duals(cost, &ywork_);
  std::vector<double>& y = ywork_;
  bool y_fresh = true;  // exact duals; incremental updates mark them stale
  devex_.assign(static_cast<std::size_t>(total_), 1.0);

  // Candidate test shared by every pricing pass: would column j improve the
  // objective if moved in some direction? Returns the direction (0 = no).
  auto price = [&](int j, double* d_out) -> int {
    const VarState st = state_[static_cast<std::size_t>(j)];
    if (st == VarState::kBasic) return 0;
    if (lower_[static_cast<std::size_t>(j)] == upper_[static_cast<std::size_t>(j)])
      return 0;  // fixed variable can never improve
    const double d = reduced_cost(j, cost, y);
    if ((st == VarState::kAtLower || st == VarState::kFreeZero) && d < -opt_.optimality_tol) {
      *d_out = d;
      return +1;
    }
    if ((st == VarState::kAtUpper || st == VarState::kFreeZero) && d > opt_.optimality_tol) {
      *d_out = d;
      return -1;
    }
    return 0;
  };

  while (true) {
    if (total_iterations_ >= opt_.max_iterations) return SolveStatus::kIterationLimit;

    // Pricing: partial pricing over rotating column blocks with a
    // devex-weighted score d^2 / gamma_j. Scanning stops at the end of the
    // first block holding a candidate; the cursor then advances past the
    // chosen column so later blocks get their turn.
    int entering = -1;
    int entering_dir = 0;  // +1 increase, -1 decrease
    double entering_d = 0.0;
    if (bland) {
      // Bland's rule: smallest improving index over all columns, priced
      // against exact duals — the anti-cycling guarantee needs both.
      if (!y_fresh) {
        compute_duals(cost, &y);
        y_fresh = true;
      }
      for (int j = 0; j < total_; ++j) {
        double d = 0.0;
        const int dir = price(j, &d);
        if (dir != 0) {
          entering = j;
          entering_dir = dir;
          entering_d = d;
          break;
        }
      }
    } else {
      const int block = opt_.price_block_size > 0 ? opt_.price_block_size : total_;
      double best_score = 0.0;
      for (int k = 0; k < total_; ++k) {
        int j = price_cursor_ + k;
        if (j >= total_) j -= total_;
        double d = 0.0;
        const int dir = price(j, &d);
        if (dir != 0) {
          const double score = d * d / devex_[static_cast<std::size_t>(j)];
          if (score > best_score) {
            best_score = score;
            entering = j;
            entering_dir = dir;
            entering_d = d;
          }
        }
        if (entering >= 0 && (k + 1) % block == 0) break;
      }
      if (entering < 0 && !y_fresh) {
        // The incrementally updated duals found nothing; confirm against
        // exact duals with a full scan before declaring optimality.
        compute_duals(cost, &y);
        y_fresh = true;
        best_score = 0.0;
        for (int j = 0; j < total_; ++j) {
          double d = 0.0;
          const int dir = price(j, &d);
          if (dir == 0) continue;
          const double score = d * d / devex_[static_cast<std::size_t>(j)];
          if (score > best_score) {
            best_score = score;
            entering = j;
            entering_dir = dir;
            entering_d = d;
          }
        }
      }
    }
    if (entering < 0) {
      if (perturbed_) {
        // Clean-up phase: restore the exact bounds and keep pivoting; the
        // perturbed optimum is one short pivot sequence from the true one.
        unperturb_bounds();
        compute_duals(cost, &y);
        y_fresh = true;
        stall = 0;
        bland = false;
        continue;
      }
      if (!primal_feasible()) {
        // A singular-basis repair (or perturbation round-off) moved basic
        // values off their bounds, and pricing alone never re-checks them.
        // Restore primal feasibility with dual pivots, then resume pricing.
        if (!opt_.enable_recovery || repair_rounds >= 2)
          return SolveStatus::kNumericalFailure;
        ++repair_rounds;
        const SolveStatus ds = iterate_dual(cost, iters);
        if (ds == SolveStatus::kInfeasible) {
          // The dual loop never prices artificial columns, so its
          // infeasibility proof only stands once no artificial can move
          // (phase 2, where they are pinned at zero).
          for (int j = first_artificial_; j < total_; ++j)
            if (lower_[static_cast<std::size_t>(j)] < upper_[static_cast<std::size_t>(j)])
              return SolveStatus::kNumericalFailure;
          return ds;
        }
        if (ds != SolveStatus::kOptimal) return ds;
        compute_duals(cost, &y);
        y_fresh = true;
        stall = 0;
        bland = false;
        continue;
      }
      if (objective_out) {
        double obj = 0.0;
        for (int j = 0; j < total_; ++j)
          obj += cost[static_cast<std::size_t>(j)] * value_[static_cast<std::size_t>(j)];
        *objective_out = obj;
      }
      return SolveStatus::kOptimal;
    }
    price_cursor_ = entering + 1 >= total_ ? 0 : entering + 1;

    ++total_iterations_;
    if (iters) ++(*iters);

    const double sigma = static_cast<double>(entering_dir);
    ftran_column(entering);  // w_.nz arrives sorted and duplicate-free

    // Ratio test: how far can the entering variable move? Only rows where
    // the entering column's FTRAN image is nonzero can limit the step.
    const double elo = lower_[static_cast<std::size_t>(entering)];
    const double ehi = upper_[static_cast<std::size_t>(entering)];
    double t_max = kInf;
    if (std::isfinite(elo) && std::isfinite(ehi)) t_max = ehi - elo;  // bound flip distance
    double t_best = t_max;
    int leaving_row = -1;
    bool leaving_at_upper = false;

    for (const int i : w_.nz) {
      const double wi = w_.values[static_cast<std::size_t>(i)];
      if (std::fabs(wi) <= opt_.pivot_tol) continue;
      const int bj = basis_[static_cast<std::size_t>(i)];
      const double bv = value_[static_cast<std::size_t>(bj)];
      const double delta = sigma * wi;  // basic var changes by -delta * t
      double limit = kInf;
      bool hits_upper = false;
      if (delta > 0.0) {
        const double lo = lower_[static_cast<std::size_t>(bj)];
        if (std::isfinite(lo)) limit = (bv - lo) / delta;
      } else {
        const double hi = upper_[static_cast<std::size_t>(bj)];
        if (std::isfinite(hi)) {
          limit = (hi - bv) / (-delta);
          hits_upper = true;
        }
      }
      if (limit < -opt_.feasibility_tol) limit = 0.0;  // slight infeasibility: block
      if (limit < t_best - 1e-12 ||
          (leaving_row >= 0 && limit < t_best + 1e-12 &&
           std::fabs(wi) > std::fabs(w_.values[static_cast<std::size_t>(leaving_row)]))) {
        if (bland && leaving_row >= 0 && limit >= t_best - 1e-12 &&
            basis_[static_cast<std::size_t>(i)] > basis_[static_cast<std::size_t>(leaving_row)])
          continue;  // Bland: prefer smallest variable index on ties
        t_best = std::max(limit, 0.0);
        leaving_row = i;
        leaving_at_upper = hits_upper;
      }
    }

    if (!std::isfinite(t_best)) return SolveStatus::kUnbounded;

    if (leaving_row < 0) {
      // Bound flip: entering variable jumps to its opposite bound. Basis
      // and duals are unchanged.
      for (const int i : w_.nz) {
        const int bj = basis_[static_cast<std::size_t>(i)];
        value_[static_cast<std::size_t>(bj)] -=
            sigma * w_.values[static_cast<std::size_t>(i)] * t_best;
      }
      if (entering_dir > 0) {
        state_[static_cast<std::size_t>(entering)] = VarState::kAtUpper;
        value_[static_cast<std::size_t>(entering)] = ehi;
      } else {
        state_[static_cast<std::size_t>(entering)] = VarState::kAtLower;
        value_[static_cast<std::size_t>(entering)] = elo;
      }
    } else {
      // Pivot: update values and basis, then absorb the basis change as a
      // product-form eta instead of an O(m^2) elimination of a dense
      // inverse.
      const double wr = w_.values[static_cast<std::size_t>(leaving_row)];
      const int leaving = basis_[static_cast<std::size_t>(leaving_row)];

      // Incremental dual update: y' = y + (d_q / w_r) rho_r with rho_r the
      // leaving row of the (old) basis inverse — one hyper-sparse BTRAN.
      rho_.resize(m_);
      rho_.add(leaving_row, 1.0);
      lu_.btran(&rho_);
      const double theta = entering_d / wr;
      for (const int r : rho_.nz)
        y[static_cast<std::size_t>(r)] += theta * rho_.values[static_cast<std::size_t>(r)];
      y_fresh = false;

      for (const int i : w_.nz) {
        if (i == leaving_row) continue;
        const int bj = basis_[static_cast<std::size_t>(i)];
        value_[static_cast<std::size_t>(bj)] -=
            sigma * w_.values[static_cast<std::size_t>(i)] * t_best;
      }
      value_[static_cast<std::size_t>(entering)] += sigma * t_best;
      state_[static_cast<std::size_t>(entering)] = VarState::kBasic;
      if (leaving_at_upper) {
        state_[static_cast<std::size_t>(leaving)] = VarState::kAtUpper;
        value_[static_cast<std::size_t>(leaving)] = upper_[static_cast<std::size_t>(leaving)];
      } else {
        state_[static_cast<std::size_t>(leaving)] = VarState::kAtLower;
        value_[static_cast<std::size_t>(leaving)] = lower_[static_cast<std::size_t>(leaving)];
      }
      basis_[static_cast<std::size_t>(leaving_row)] = entering;

      // Cheap devex maintenance: the leaving variable inherits the entering
      // weight projected through the pivot.
      devex_[static_cast<std::size_t>(leaving)] =
          std::max(devex_[static_cast<std::size_t>(entering)] / (wr * wr), 1.0);

      lu_.append_eta(leaving_row, w_);
      if (++pivots_since_refactor_ >= opt_.refactor_interval) {
        if (!refactorize()) return SolveStatus::kNumericalFailure;
        compute_duals(cost, &y);
        y_fresh = true;
      }
    }

    // Anti-cycling: degenerate steps (no movement) switch to Bland-style
    // smallest-index selection until real progress resumes; when even
    // Bland's rule keeps stalling, perturb the bounds once per solve.
    if (t_best > 1e-12) {
      stall = 0;
      bland = false;
    } else if (++stall > opt_.stall_limit) {
      bland = true;
      if (opt_.enable_recovery && !perturb_used_ && stall > 4 * opt_.stall_limit &&
          recoveries_ < opt_.max_recoveries) {
        ++recoveries_;
        perturb_bounds();
        compute_duals(cost, &y);
        y_fresh = true;
        stall = 0;
        bland = false;
      }
    }
  }
}

// Bounded-variable dual simplex: the basis is dual feasible (all reduced
// costs have the right sign for their nonbasic state); pivots restore primal
// feasibility row by row. Each iteration selects the most-violated basic
// variable as leaving, obtains the leaving row of the basis inverse with one
// hyper-sparse BTRAN, builds the pricing row alpha = br A row-wise (only
// rows where br is nonzero contribute), then picks the entering variable by
// the dual ratio test (smallest |d_j / alpha_j| keeps every reduced cost on
// the right side of zero). Ties break to the larger |alpha| for stability,
// then the smaller column index for cross-run determinism.
SolveStatus Engine::iterate_dual(const std::vector<double>& cost, int* iters) {
  int stall = 0;
  bool bland = false;

  // Fault hook: one event per dual-simplex solve; an armed event simulates
  // losing the pivot right away (the shape of a real tiny-|w_r| breakdown).
  if (fault::enabled() && fault::should_fail(fault::Hook::kDualPivot))
    return SolveStatus::kNumericalFailure;

  compute_duals(cost, &ywork_);
  std::vector<double>& y = ywork_;
  bool y_fresh = true;

  // Degenerate cycling is possible despite Bland's rule (tolerance bands
  // defeat the exact-arithmetic termination proof), and a warm solve that
  // cycles is worthless: a healthy dual re-solve of a one-bound perturbation
  // takes a few pivots, so cap the pivot count at a generous multiple of the
  // basis size and report an iteration limit instead of spinning to
  // max_iterations. Callers fall back to the cold primal path, whose
  // phase-1 restart breaks the cycle.
  const int budget = std::max(2000, 50 * m_ + total_ / 4);
  int pivots = 0;

  while (true) {
    if (total_iterations_ >= opt_.max_iterations || pivots >= budget)
      return SolveStatus::kIterationLimit;
    if (bland && !y_fresh) {
      // Bland's anti-cycling selection needs exact reduced costs; the
      // incrementally updated duals drift over degenerate pivots.
      compute_duals(cost, &y);
      y_fresh = true;
    }

    // Leaving row: largest bound violation among basic variables (Bland
    // fallback: smallest basic variable index with any violation).
    int leaving_row = -1;
    bool below = false;
    double worst = opt_.feasibility_tol;
    for (int i = 0; i < m_; ++i) {
      const int bj = basis_[static_cast<std::size_t>(i)];
      const double v = value_[static_cast<std::size_t>(bj)];
      const double viol_lo = lower_[static_cast<std::size_t>(bj)] - v;
      const double viol_hi = v - upper_[static_cast<std::size_t>(bj)];
      if (bland) {
        if (viol_lo > opt_.feasibility_tol || viol_hi > opt_.feasibility_tol) {
          if (leaving_row < 0 ||
              bj < basis_[static_cast<std::size_t>(leaving_row)]) {
            leaving_row = i;
            below = viol_lo > viol_hi;
          }
        }
        continue;
      }
      if (viol_lo > worst) {
        worst = viol_lo;
        leaving_row = i;
        below = true;
      }
      if (viol_hi > worst) {
        worst = viol_hi;
        leaving_row = i;
        below = false;
      }
    }
    if (leaving_row < 0) {
      if (perturbed_) {
        // Clean-up phase: restore the exact bounds; any re-violated rows
        // are repaired by further dual pivots against the true problem.
        unperturb_bounds();
        compute_duals(cost, &y);
        y_fresh = true;
        stall = 0;
        bland = false;
        continue;
      }
      return SolveStatus::kOptimal;  // primal feasible
    }

    ++total_iterations_;
    ++pivots;
    if (iters) ++(*iters);

    const int leaving = basis_[static_cast<std::size_t>(leaving_row)];
    const double target = below ? lower_[static_cast<std::size_t>(leaving)]
                                : upper_[static_cast<std::size_t>(leaving)];
    // br = e_r^T Binv via BTRAN; typically hyper-sparse on staircase models.
    rho_.resize(m_);
    rho_.add(leaving_row, 1.0);
    lu_.btran(&rho_);
    const std::vector<double>& br = rho_.values;  // indexed by original row

    // Pricing row alpha_j = br . A_j, built row-wise from the nonzero rows
    // of br: structural entries come from the model's row lists, the slack
    // of row r contributes br[r] in column n + r. (The dual path never sees
    // artificial columns.)
    alpha_.resize(total_);
    for (const int r : rho_.nz) {
      const double brr = br[static_cast<std::size_t>(r)];
      if (brr == 0.0) continue;
      for (const RowEntry& e : model_.row(r).entries)
        alpha_.add(e.column, brr * e.coeff);
      alpha_.add(n_ + r, brr);
    }
    alpha_.compact();  // ascending-index tie-breaks, each column once

    // Dual ratio test over the columns the pricing row touches.
    int entering = -1;
    int entering_dir = 0;
    double entering_d = 0.0;
    double best_ratio = kInf;
    double best_alpha = 0.0;
    // Maximum repair of the violated row achievable by columns whose alpha
    // is below pivot_tol. They are unusable as pivots, but a sub-tolerance
    // alpha times a wide variable range (big-M columns) can still move the
    // row, so an eventual "no entering column" verdict proves infeasibility
    // only if the violation exceeds this slack.
    double tiny_gain = 0.0;
    for (const int j : alpha_.nz) {
      if (state_[static_cast<std::size_t>(j)] == VarState::kBasic) continue;
      if (lower_[static_cast<std::size_t>(j)] == upper_[static_cast<std::size_t>(j)])
        continue;  // fixed variable cannot move
      const double alpha = alpha_.values[static_cast<std::size_t>(j)];
      if (std::fabs(alpha) <= opt_.pivot_tol) {
        if (alpha != 0.0) {
          // Repair of x_B(r) per unit increase of x_j is -alpha (below
          // violation) or +alpha (above); moving down gives the negative.
          const double range = upper_[static_cast<std::size_t>(j)] -
                               lower_[static_cast<std::size_t>(j)];
          const double up_help = below ? -alpha : alpha;
          const VarState st = state_[static_cast<std::size_t>(j)];
          if (st != VarState::kAtUpper && up_help > 0.0) tiny_gain += up_help * range;
          else if (st != VarState::kAtLower && up_help < 0.0) tiny_gain += -up_help * range;
        }
        continue;
      }
      // x_B(r) changes by -alpha per unit increase of x_j; pick the
      // direction that moves the leaving variable toward its violated bound.
      const int dir = (below ? alpha < 0.0 : alpha > 0.0) ? +1 : -1;
      const VarState st = state_[static_cast<std::size_t>(j)];
      if (dir > 0 && st == VarState::kAtUpper) continue;
      if (dir < 0 && st == VarState::kAtLower) continue;
      const double d = reduced_cost(j, cost, y);
      const double ratio = std::fabs(d) / std::fabs(alpha);
      const bool better =
          entering < 0 || ratio < best_ratio - 1e-12 ||
          (ratio < best_ratio + 1e-12 &&
           (bland ? j < entering
                  : (std::fabs(alpha) > std::fabs(best_alpha) + 1e-12 ||
                     (std::fabs(alpha) >= std::fabs(best_alpha) - 1e-12 && j < entering))));
      if (better) {
        entering = j;
        entering_dir = dir;
        entering_d = d;
        best_ratio = ratio;
        best_alpha = alpha;
      }
    }
    if (entering < 0) {
      // No usable column can repair the violated row: the current nonbasic
      // point extremizes the row's value over the bound box (blocked
      // columns only move it the wrong way), so the row stays violated for
      // every choice of the nonbasics — a valid infeasibility proof
      // provided the sub-tolerance columns' combined slack cannot close the
      // gap. Otherwise the proof is in doubt and the caller must fall back
      // to the cold path.
      const double viol = below
                              ? lower_[static_cast<std::size_t>(leaving)] -
                                    value_[static_cast<std::size_t>(leaving)]
                              : value_[static_cast<std::size_t>(leaving)] -
                                    upper_[static_cast<std::size_t>(leaving)];
      if (viol <= tiny_gain + opt_.feasibility_tol) return SolveStatus::kNumericalFailure;
      // The alphas came from `br`, which is only as good as the LU + eta
      // solve that produced it (a stale hint or an ill-conditioned eta
      // chain can corrupt it). The proof is only as good as br being a
      // true row of the basis inverse: check br * B = e_r before
      // certifying.
      for (int i = 0; i < m_; ++i) {
        const int bj = basis_[static_cast<std::size_t>(i)];
        double dot = 0.0;
        for (const Entry& e : cols_[static_cast<std::size_t>(bj)])
          dot += br[static_cast<std::size_t>(e.row)] * e.coeff;
        if (std::fabs(dot - (i == leaving_row ? 1.0 : 0.0)) > 1e-6)
          return SolveStatus::kNumericalFailure;
      }
      alpha_.clear();
      rho_.clear();
      return SolveStatus::kInfeasible;
    }

    const double sigma = static_cast<double>(entering_dir);
    ftran_column(entering);
    const double wr = w_.values[static_cast<std::size_t>(leaving_row)];
    if (std::fabs(wr) <= opt_.pivot_tol) return SolveStatus::kNumericalFailure;

    // Incremental dual update, using the already-computed leaving row:
    // y' = y + (d_q / alpha_q) br. Exact for the new basis.
    const double theta = entering_d / wr;
    for (const int r : rho_.nz)
      y[static_cast<std::size_t>(r)] += theta * br[static_cast<std::size_t>(r)];
    y_fresh = false;

    // Primal step: drive the leaving variable exactly onto its violated
    // bound. t >= 0 by the entering-direction choice.
    double t = (value_[static_cast<std::size_t>(leaving)] - target) / (sigma * wr);
    if (t < 0.0) t = 0.0;  // degenerate guard against round-off

    for (const int i : w_.nz) {
      if (i == leaving_row) continue;
      const int bj = basis_[static_cast<std::size_t>(i)];
      value_[static_cast<std::size_t>(bj)] -=
          sigma * w_.values[static_cast<std::size_t>(i)] * t;
    }
    value_[static_cast<std::size_t>(entering)] += sigma * t;
    state_[static_cast<std::size_t>(entering)] = VarState::kBasic;
    state_[static_cast<std::size_t>(leaving)] = below ? VarState::kAtLower : VarState::kAtUpper;
    value_[static_cast<std::size_t>(leaving)] = target;
    basis_[static_cast<std::size_t>(leaving_row)] = entering;

    lu_.append_eta(leaving_row, w_);
    if (++pivots_since_refactor_ >= opt_.refactor_interval) {
      if (!refactorize()) return SolveStatus::kNumericalFailure;
      compute_duals(cost, &y);
      y_fresh = true;
    }

    // Anti-cycling: degenerate pivots (zero step) switch to Bland-style
    // smallest-index selection until real progress resumes; when even
    // Bland's rule keeps stalling, perturb the bounds once per solve.
    if (t > 1e-12) {
      stall = 0;
      bland = false;
    } else if (++stall > opt_.stall_limit) {
      bland = true;
      if (opt_.enable_recovery && !perturb_used_ && stall > 4 * opt_.stall_limit &&
          recoveries_ < opt_.max_recoveries) {
        ++recoveries_;
        perturb_bounds();
        compute_duals(cost, &y);
        y_fresh = true;
        stall = 0;
        bland = false;
      }
    }
  }
}

void Engine::extract(SimplexResult* result) {
  result->x.assign(static_cast<std::size_t>(n_), 0.0);
  for (int j = 0; j < n_; ++j)
    result->x[static_cast<std::size_t>(j)] = value_[static_cast<std::size_t>(j)];
  result->objective = model_.objective_value(result->x);

  if (opt_.want_duals) {
    compute_duals(cost2_, &ywork_);
    const std::vector<double>& y = ywork_;
    result->duals.assign(static_cast<std::size_t>(m_), 0.0);
    for (int i = 0; i < m_; ++i)
      result->duals[static_cast<std::size_t>(i)] =
          maximize_ ? -y[static_cast<std::size_t>(i)] : y[static_cast<std::size_t>(i)];
    result->reduced_costs.assign(static_cast<std::size_t>(n_), 0.0);
    for (int j = 0; j < n_; ++j) {
      const double d = reduced_cost(j, cost2_, y);
      result->reduced_costs[static_cast<std::size_t>(j)] = maximize_ ? -d : d;
    }
  }
}

void Engine::export_basis(SimplexResult* result) const {
  const int structural_and_slack = n_ + m_;
  for (int i = 0; i < m_; ++i)
    if (basis_[static_cast<std::size_t>(i)] >= structural_and_slack)
      return;  // a basic artificial survived (degenerate); no snapshot
  Basis basis;
  basis.basic = basis_;
  basis.status.resize(static_cast<std::size_t>(structural_and_slack));
  for (int j = 0; j < structural_and_slack; ++j) {
    BasisStatus s;
    switch (state_[static_cast<std::size_t>(j)]) {
      case VarState::kBasic: s = BasisStatus::kBasic; break;
      case VarState::kAtLower: s = BasisStatus::kAtLower; break;
      case VarState::kAtUpper: s = BasisStatus::kAtUpper; break;
      default: s = BasisStatus::kFree; break;
    }
    basis.status[static_cast<std::size_t>(j)] = s;
  }
  result->basis = std::move(basis);
  result->factor = std::make_shared<Factorization>(lu_.snapshot());
}

SimplexResult Engine::solve_cold(const std::vector<BoundOverride>& overrides) {
  prepare(overrides);
  for (int j = 0; j < total_; ++j) {
    if (lower_[static_cast<std::size_t>(j)] > upper_[static_cast<std::size_t>(j)]) {
      SimplexResult result;
      result.status = SolveStatus::kInfeasible;
      return result;
    }
  }
  SimplexResult result;
  if (!start_cold()) {
    result.status = SolveStatus::kNumericalFailure;
    result.factor_stats = lu_.stats();
    result.recovery = recovery_;
    return result;
  }

  // Phase 1: drive artificial infeasibility to zero (skipped when the slack
  // start was already feasible).
  if (first_artificial_ < total_) {
    double phase1_obj = 0.0;
    SolveStatus st = iterate(cost1_, &phase1_obj, &phase1_iterations_);
    result.phase1_iterations = phase1_iterations_;
    if (st == SolveStatus::kIterationLimit || st == SolveStatus::kNumericalFailure) {
      result.status = st;
      result.iterations = total_iterations_;
      result.factor_stats = lu_.stats();
      result.recovery = recovery_;
      return result;
    }
    INSCHED_ASSERT(st != SolveStatus::kUnbounded);  // phase-1 objective >= 0
    if (phase1_infeasibility() > 1e-6) {
      // Never declare infeasibility off drifted values: when the residual
      // check fails, re-derive the point from fresh factors and
      // re-optimize phase 1 once before trusting the verdict.
      if (opt_.enable_recovery && !residuals_ok() && recoveries_ < opt_.max_recoveries) {
        ++recoveries_;
        ++recovery_.residual_failures;
        ++recovery_.resolves;
        if (refactorize()) {
          st = iterate(cost1_, &phase1_obj, &phase1_iterations_);
          result.phase1_iterations = phase1_iterations_;
          if (st != SolveStatus::kOptimal) {
            result.status = st == SolveStatus::kUnbounded ? SolveStatus::kNumericalFailure : st;
            result.iterations = total_iterations_;
            result.factor_stats = lu_.stats();
            result.recovery = recovery_;
            return result;
          }
        }
      }
      if (phase1_infeasibility() > 1e-6) {
        result.status = SolveStatus::kInfeasible;
        result.iterations = total_iterations_;
        result.factor_stats = lu_.stats();
        result.recovery = recovery_;
        return result;
      }
    }
    // Pin artificials at zero for phase 2.
    for (int j = first_artificial_; j < total_; ++j) {
      lower_[static_cast<std::size_t>(j)] = 0.0;
      upper_[static_cast<std::size_t>(j)] = 0.0;
      if (state_[static_cast<std::size_t>(j)] != VarState::kBasic) {
        state_[static_cast<std::size_t>(j)] = VarState::kAtLower;
        value_[static_cast<std::size_t>(j)] = 0.0;
      }
    }
  }

  double phase2_obj = 0.0;
  int phase2_iters = 0;
  SolveStatus st = iterate(cost2_, &phase2_obj, &phase2_iters);
  if (st == SolveStatus::kOptimal && !residuals_ok()) {
    // Detection at the exit: the optimal point must satisfy A x = b. On
    // drift, re-solve once from fresh factors before reporting failure.
    ++recovery_.residual_failures;
    st = SolveStatus::kNumericalFailure;
    if (opt_.enable_recovery && recoveries_ < opt_.max_recoveries) {
      ++recoveries_;
      ++recovery_.resolves;
      if (refactorize()) {
        st = iterate(cost2_, &phase2_obj, &phase2_iters);
        if (st == SolveStatus::kOptimal && !residuals_ok())
          st = SolveStatus::kNumericalFailure;
      }
    }
  }
  result.iterations = total_iterations_;
  result.phase1_iterations = phase1_iterations_;
  result.status = st;
  if (st != SolveStatus::kOptimal) {
    result.factor_stats = lu_.stats();
    result.recovery = recovery_;
    return result;
  }

  extract(&result);
  if (opt_.collect_basis) export_basis(&result);
  result.factor_stats = lu_.stats();
  result.recovery = recovery_;
  return result;
}

SimplexResult Engine::solve_dual(const std::vector<BoundOverride>& overrides,
                                 const Basis& start, const Factorization* hint) {
  prepare(overrides);
  SimplexResult result;
  for (int j = 0; j < total_; ++j) {
    if (lower_[static_cast<std::size_t>(j)] > upper_[static_cast<std::size_t>(j)]) {
      result.status = SolveStatus::kInfeasible;
      return result;
    }
  }
  if (!load_basis(start, hint)) {
    result.status = SolveStatus::kNumericalFailure;
    result.factor_stats = lu_.stats();
    result.recovery = recovery_;
    return result;
  }

  // One dual+cleanup pass; run_pass is re-entered by the in-engine re-solve
  // rungs below (fresh factors, same basis) before the caller pays for a
  // cold restart.
  auto run_pass = [&]() -> SolveStatus {
    int dual_iters = 0;
    SolveStatus st = iterate_dual(cost2_, &dual_iters);
    if (st == SolveStatus::kOptimal) {
      // The dual loop restored primal feasibility; a short primal cleanup
      // clears any dual infeasibility introduced by bound snapping (usually
      // zero pivots).
      double obj = 0.0;
      int cleanup_iters = 0;
      st = iterate(cost2_, &obj, &cleanup_iters);
    }
    return st;
  };

  SolveStatus st = run_pass();
  if (st == SolveStatus::kNumericalFailure && opt_.enable_recovery &&
      recoveries_ < opt_.max_recoveries) {
    ++recoveries_;
    ++recovery_.resolves;
    if (refactorize()) st = run_pass();
  }
  if (st == SolveStatus::kOptimal && !residuals_ok()) {
    // A stale factorization hint can silently corrupt the solution; verify
    // A x = b before trusting the warm result, re-solving once from fresh
    // factors when it drifted.
    ++recovery_.residual_failures;
    st = SolveStatus::kNumericalFailure;
    if (opt_.enable_recovery && recoveries_ < opt_.max_recoveries) {
      ++recoveries_;
      ++recovery_.resolves;
      if (refactorize()) {
        st = run_pass();
        if (st == SolveStatus::kOptimal && !residuals_ok())
          st = SolveStatus::kNumericalFailure;
      }
    }
  }
  result.iterations = total_iterations_;
  result.status = st;
  if (st != SolveStatus::kOptimal) {
    result.factor_stats = lu_.stats();
    result.recovery = recovery_;
    return result;
  }

  extract(&result);
  if (opt_.collect_basis) export_basis(&result);
  result.factor_stats = lu_.stats();
  result.recovery = recovery_;
  return result;
}

}  // namespace

struct WarmSimplex::Impl {
  Engine engine;
  Impl(const Model& base, const SimplexOptions& options) : engine(base, options) {}
};

WarmSimplex::WarmSimplex(const Model& base, const SimplexOptions& options)
    : impl_(std::make_unique<Impl>(base, options)) {}
WarmSimplex::~WarmSimplex() = default;
WarmSimplex::WarmSimplex(WarmSimplex&&) noexcept = default;
WarmSimplex& WarmSimplex::operator=(WarmSimplex&&) noexcept = default;

SimplexResult WarmSimplex::solve_dual(const std::vector<BoundOverride>& overrides,
                                      const Basis& start, const Factorization* hint) {
  return impl_->engine.solve_dual(overrides, start, hint);
}

SimplexResult WarmSimplex::solve_cold(const std::vector<BoundOverride>& overrides) {
  return impl_->engine.solve_cold(overrides);
}

SimplexResult solve_lp(const Model& model, const SimplexOptions& options) {
  Engine engine(model, options);
  return engine.solve_cold({});
}

SimplexResult solve_lp_dual(const Model& model, const Basis& start,
                            const SimplexOptions& options) {
  Engine engine(model, options);
  return engine.solve_dual({}, start, nullptr);
}

}  // namespace insched::lp
