#include "insched/lp/presolve.hpp"

#include <cmath>

#include "insched/support/assert.hpp"

namespace insched::lp {

namespace {
constexpr double kTol = 1e-9;

/// Rounds integer-variable bounds inward to the integer lattice.
void integralize_bounds(VarType type, double& lo, double& hi) {
  if (type == VarType::kContinuous) return;
  if (std::isfinite(lo)) lo = std::ceil(lo - kTol);
  if (std::isfinite(hi)) hi = std::floor(hi + kTol);
}
}  // namespace

std::vector<double> PresolveResult::restore(const std::vector<double>& reduced_x) const {
  std::vector<double> x(column_map.size(), 0.0);
  for (std::size_t j = 0; j < column_map.size(); ++j) {
    const int mapped = column_map[j];
    x[j] = mapped >= 0 ? reduced_x.at(static_cast<std::size_t>(mapped)) : fixed_values[j];
  }
  // Aggregated columns read their (already restored) source column. A source
  // may itself be aggregated; resolve in passes so chains settle regardless
  // of record order (chains are short — binary equivalence classes).
  for (std::size_t pass = 0; pass < aggregated.size() + 1; ++pass) {
    bool changed = false;
    for (const AggregatedColumn& a : aggregated) {
      const double v =
          a.scale * x.at(static_cast<std::size_t>(a.source)) + a.offset;
      auto& slot = x.at(static_cast<std::size_t>(a.column));
      if (slot != v) {
        slot = v;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return x;
}

PresolveResult presolve(const Model& model) {
  PresolveResult out;
  const int n = model.num_columns();
  const int m = model.num_rows();

  std::vector<double> lo(static_cast<std::size_t>(n));
  std::vector<double> hi(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    lo[static_cast<std::size_t>(j)] = model.column(j).lower;
    hi[static_cast<std::size_t>(j)] = model.column(j).upper;
    integralize_bounds(model.column(j).type, lo[static_cast<std::size_t>(j)],
                       hi[static_cast<std::size_t>(j)]);
    if (lo[static_cast<std::size_t>(j)] > hi[static_cast<std::size_t>(j)] + kTol) {
      out.infeasible = true;
      return out;
    }
  }

  // Singleton-row bound tightening, iterated to a fixed point (each pass can
  // expose new singletons only through fixing, so a couple of sweeps suffice;
  // we loop until no change for full generality).
  std::vector<bool> row_dropped(static_cast<std::size_t>(m), false);
  bool changed = true;
  while (changed) {
    changed = false;
    for (int i = 0; i < m; ++i) {
      if (row_dropped[static_cast<std::size_t>(i)]) continue;
      const Row& row = model.row(i);
      // Count entries on not-yet-fixed columns; accumulate fixed activity.
      int live = -1;
      int live_count = 0;
      double fixed_activity = 0.0;
      for (const RowEntry& e : row.entries) {
        const auto j = static_cast<std::size_t>(e.column);
        if (hi[j] - lo[j] <= kTol) {
          fixed_activity += e.coeff * lo[j];
        } else {
          ++live_count;
          live = e.column;
        }
      }
      if (live_count > 1) continue;
      const double rhs = row.rhs - fixed_activity;
      if (live_count == 0) {
        const bool ok = (row.type == RowType::kLe && rhs >= -1e-7) ||
                        (row.type == RowType::kGe && rhs <= 1e-7) ||
                        (row.type == RowType::kEq && std::fabs(rhs) <= 1e-7);
        if (!ok) {
          out.infeasible = true;
          return out;
        }
        row_dropped[static_cast<std::size_t>(i)] = true;
        changed = true;
        continue;
      }
      // Singleton: a * x (op) rhs tightens x's bounds.
      const auto j = static_cast<std::size_t>(live);
      double a = 0.0;
      for (const RowEntry& e : row.entries)
        if (e.column == live) a += e.coeff;
      if (std::fabs(a) <= kTol) continue;
      double new_lo = lo[j];
      double new_hi = hi[j];
      const double bound = rhs / a;
      switch (row.type) {
        case RowType::kLe:
          if (a > 0) new_hi = std::min(new_hi, bound);
          else new_lo = std::max(new_lo, bound);
          break;
        case RowType::kGe:
          if (a > 0) new_lo = std::max(new_lo, bound);
          else new_hi = std::min(new_hi, bound);
          break;
        case RowType::kEq:
          new_lo = std::max(new_lo, bound);
          new_hi = std::min(new_hi, bound);
          break;
      }
      integralize_bounds(model.column(live).type, new_lo, new_hi);
      if (new_lo > new_hi + 1e-7) {
        out.infeasible = true;
        return out;
      }
      if (new_lo > lo[j] + kTol || new_hi < hi[j] - kTol) {
        lo[j] = std::max(lo[j], new_lo);
        hi[j] = std::min(hi[j], new_hi);
        changed = true;
      }
      row_dropped[static_cast<std::size_t>(i)] = true;
    }
  }

  // Build the reduced model: drop fixed columns and dropped rows.
  out.column_map.assign(static_cast<std::size_t>(n), -1);
  out.fixed_values.assign(static_cast<std::size_t>(n), 0.0);
  out.reduced.set_sense(model.sense());
  double obj_constant = model.objective_constant();
  for (int j = 0; j < n; ++j) {
    const auto js = static_cast<std::size_t>(j);
    const Column& c = model.column(j);
    if (hi[js] - lo[js] <= kTol) {
      out.fixed_values[js] = lo[js];
      obj_constant += c.objective * lo[js];
      ++out.removed_columns;
      continue;
    }
    out.column_map[js] =
        out.reduced.add_column(c.name, lo[js], hi[js], c.objective, c.type);
  }
  out.reduced.set_objective_constant(obj_constant);

  for (int i = 0; i < m; ++i) {
    if (row_dropped[static_cast<std::size_t>(i)]) {
      ++out.removed_rows;
      continue;
    }
    const Row& row = model.row(i);
    double fixed_activity = 0.0;
    std::vector<RowEntry> entries;
    entries.reserve(row.entries.size());
    for (const RowEntry& e : row.entries) {
      const int mapped = out.column_map[static_cast<std::size_t>(e.column)];
      if (mapped < 0) {
        fixed_activity += e.coeff * out.fixed_values[static_cast<std::size_t>(e.column)];
      } else {
        entries.push_back(RowEntry{mapped, e.coeff});
      }
    }
    if (entries.empty()) {
      const double rhs = row.rhs - fixed_activity;
      const bool ok = (row.type == RowType::kLe && rhs >= -1e-7) ||
                      (row.type == RowType::kGe && rhs <= 1e-7) ||
                      (row.type == RowType::kEq && std::fabs(rhs) <= 1e-7);
      if (!ok) {
        out.infeasible = true;
        return out;
      }
      ++out.removed_rows;
      continue;
    }
    const int r =
        out.reduced.add_row(row.name, row.type, row.rhs - fixed_activity, std::move(entries));
    out.reduced.set_row_kind(r, row.kind);
  }
  return out;
}

}  // namespace insched::lp
