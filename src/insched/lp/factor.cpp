#include "insched/lp/factor.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "insched/support/fault_inject.hpp"

namespace insched::lp {

long LuCore::nnz() const noexcept {
  long n = m;  // diagonal
  for (const auto& c : lcols) n += static_cast<long>(c.size());
  for (const auto& r : urows) n += static_cast<long>(r.size());
  return n;
}

std::size_t LuCore::bytes() const noexcept {
  std::size_t b = sizeof(LuCore);
  b += (pr.capacity() + pc.capacity() + rowstep.capacity() + colstep.capacity()) * sizeof(int);
  b += diag.capacity() * sizeof(double);
  for (const auto& c : lcols) b += sizeof(c) + c.capacity() * sizeof(LuEntry);
  for (const auto& r : urows) b += sizeof(r) + r.capacity() * sizeof(LuEntry);
  return b;
}

std::size_t Factorization::bytes() const noexcept {
  std::size_t b = sizeof(Factorization);
  if (core) b += core->bytes();
  for (const EtaVector& e : etas) b += e.bytes();
  return b;
}

namespace {

// Working state of one elimination. The active submatrix lives row-wise in
// `rows`; `colrows` is an append-only (possibly stale) column-to-rows index
// validated against the exact `col_count` during scans.
struct Elimination {
  int m;
  std::vector<std::vector<LuEntry>> rows;  // rows[i]: (basis position, value)
  std::vector<std::vector<int>> colrows;   // colrows[j]: candidate row ids
  std::vector<int> row_count, col_count;
  std::vector<char> row_active, col_active;
  std::vector<int> col_single, row_single;  // pending singleton candidates
  std::vector<int> wpos;                    // scatter: column -> index+1 in a row

  explicit Elimination(int m_) : m(m_) {
    rows.resize(static_cast<std::size_t>(m));
    colrows.resize(static_cast<std::size_t>(m));
    row_count.assign(static_cast<std::size_t>(m), 0);
    col_count.assign(static_cast<std::size_t>(m), 0);
    row_active.assign(static_cast<std::size_t>(m), 1);
    col_active.assign(static_cast<std::size_t>(m), 1);
    wpos.assign(static_cast<std::size_t>(m), 0);
  }

  // Position of column j in rows[i], or -1.
  [[nodiscard]] int find(int i, int j) const {
    const auto& r = rows[static_cast<std::size_t>(i)];
    for (std::size_t k = 0; k < r.size(); ++k)
      if (r[k].index == j) return static_cast<int>(k);
    return -1;
  }

  void note_col_count(int j) {
    if (col_count[static_cast<std::size_t>(j)] == 1) col_single.push_back(j);
  }
  void note_row_count(int i) {
    if (row_count[static_cast<std::size_t>(i)] == 1) row_single.push_back(i);
  }
};

// Injected solve corruption: scaling the largest entry far past the drift
// tolerance guarantees the downstream detection layer (residual checks in
// simplex.cpp, br*B = e_r proof validation) can observe the fault.
void corrupt_solution(SparseVec* x) {
  if (x->nz.empty()) {
    x->add(0, 1.0);
    return;
  }
  int worst = x->nz.front();
  for (const int i : x->nz)
    if (std::fabs(x->values[static_cast<std::size_t>(i)]) >
        std::fabs(x->values[static_cast<std::size_t>(worst)]))
      worst = i;
  x->values[static_cast<std::size_t>(worst)] *= 64.0;
}

}  // namespace

bool LuFactors::factorize(const std::vector<std::vector<LuEntry>>& basis_cols,
                          double pivot_tol, double tau, SingularInfo* singular) {
  const int m = static_cast<int>(basis_cols.size());
  if (singular != nullptr) {
    singular->rows.clear();
    singular->positions.clear();
  }
  if (fault::should_fail(fault::Hook::kLuFactorize)) {
    // Injected singularity: report every row/position as stuck so the
    // repair rung has the same information as a structurally rank-0 basis.
    if (singular != nullptr) {
      for (int i = 0; i < m; ++i) {
        singular->rows.push_back(i);
        singular->positions.push_back(i);
      }
    }
    return false;
  }
  auto core = std::make_shared<LuCore>();
  core->m = m;
  core->pr.resize(static_cast<std::size_t>(m));
  core->pc.resize(static_cast<std::size_t>(m));
  core->diag.resize(static_cast<std::size_t>(m));
  core->lcols.assign(static_cast<std::size_t>(m), {});
  core->urows.assign(static_cast<std::size_t>(m), {});

  Elimination el(m);
  // Reports the still-active (unpivoted) slice of a failed elimination, so
  // the caller can repair it by slack substitution.
  auto fail = [&]() {
    if (singular != nullptr) {
      for (int i = 0; i < m; ++i)
        if (el.row_active[static_cast<std::size_t>(i)]) singular->rows.push_back(i);
      for (int j = 0; j < m; ++j)
        if (el.col_active[static_cast<std::size_t>(j)]) singular->positions.push_back(j);
    }
    return false;
  };
  for (int j = 0; j < m; ++j) {
    for (const LuEntry& e : basis_cols[static_cast<std::size_t>(j)]) {
      if (e.value == 0.0) continue;
      if (e.index < 0 || e.index >= m) return fail();
      el.rows[static_cast<std::size_t>(e.index)].push_back({j, e.value});
      el.colrows[static_cast<std::size_t>(j)].push_back(e.index);
      ++el.row_count[static_cast<std::size_t>(e.index)];
      ++el.col_count[static_cast<std::size_t>(j)];
    }
  }
  for (int j = 0; j < m; ++j) {
    if (el.col_count[static_cast<std::size_t>(j)] == 0) return fail();  // empty column
    el.note_col_count(j);
  }
  for (int i = 0; i < m; ++i) {
    if (el.row_count[static_cast<std::size_t>(i)] == 0) return fail();  // empty row
    el.note_row_count(i);
  }

  // U rows are recorded with basis-position indices during elimination and
  // translated to step indices afterwards (colstep is only complete then).
  std::vector<std::vector<LuEntry>> urows_pos(static_cast<std::size_t>(m));

  // Eliminates all active rows carrying column `pj` against pivot row `pi`
  // and retires the pivot row/column. Returns false only on internal
  // inconsistency (stale counts), which indicates a singular slice.
  auto apply_pivot = [&](int k, int pi, int pj, double a) {
    core->pr[static_cast<std::size_t>(k)] = pi;
    core->pc[static_cast<std::size_t>(k)] = pj;
    core->diag[static_cast<std::size_t>(k)] = a;
    el.row_active[static_cast<std::size_t>(pi)] = 0;
    el.col_active[static_cast<std::size_t>(pj)] = 0;

    auto& prow = el.rows[static_cast<std::size_t>(pi)];
    // Retire the pivot row: its non-pivot entries are U's row k.
    for (const LuEntry& e : prow) {
      if (e.index == pj) continue;
      urows_pos[static_cast<std::size_t>(k)].push_back(e);
      if (--el.col_count[static_cast<std::size_t>(e.index)] == 1)
        el.col_single.push_back(e.index);
    }
    el.col_count[static_cast<std::size_t>(pj)] = 0;

    // Eliminate the remaining rows of column pj.
    auto& candidates = el.colrows[static_cast<std::size_t>(pj)];
    for (const int i : candidates) {
      if (!el.row_active[static_cast<std::size_t>(i)]) continue;
      const int at = el.find(i, pj);
      if (at < 0) continue;  // stale index entry
      auto& row = el.rows[static_cast<std::size_t>(i)];
      const double l = row[static_cast<std::size_t>(at)].value / a;
      core->lcols[static_cast<std::size_t>(k)].push_back({i, l});
      // Remove the pj entry (cancels exactly by construction).
      row[static_cast<std::size_t>(at)] = row.back();
      row.pop_back();
      --el.row_count[static_cast<std::size_t>(i)];
      if (l != 0.0 && !prow.empty()) {
        // row_i -= l * pivot_row over the non-pivot entries (scatter).
        for (std::size_t t = 0; t < row.size(); ++t)
          el.wpos[static_cast<std::size_t>(row[t].index)] = static_cast<int>(t) + 1;
        for (const LuEntry& e : prow) {
          if (e.index == pj) continue;
          const int p = el.wpos[static_cast<std::size_t>(e.index)];
          if (p > 0) {
            row[static_cast<std::size_t>(p - 1)].value -= l * e.value;
          } else {
            row.push_back({e.index, -l * e.value});
            el.wpos[static_cast<std::size_t>(e.index)] = static_cast<int>(row.size());
            el.colrows[static_cast<std::size_t>(e.index)].push_back(i);
            ++el.col_count[static_cast<std::size_t>(e.index)];
            ++el.row_count[static_cast<std::size_t>(i)];
          }
        }
        for (const LuEntry& e : row) el.wpos[static_cast<std::size_t>(e.index)] = 0;
      }
      el.note_row_count(i);
    }
    candidates.clear();
    candidates.shrink_to_fit();
    prow.clear();
    prow.shrink_to_fit();
  };

  for (int k = 0; k < m; ++k) {
    int pi = -1, pj = -1;
    double pivot = 0.0;

    // 1) Column singletons: the only active entry of a column is a perfect
    //    Markowitz pivot (merit 0 on the column side, no multiplier fill).
    while (pi < 0 && !el.col_single.empty()) {
      const int j = el.col_single.back();
      el.col_single.pop_back();
      if (!el.col_active[static_cast<std::size_t>(j)] ||
          el.col_count[static_cast<std::size_t>(j)] != 1)
        continue;
      for (const int i : el.colrows[static_cast<std::size_t>(j)]) {
        if (!el.row_active[static_cast<std::size_t>(i)]) continue;
        const int at = el.find(i, j);
        if (at < 0) continue;
        const double v = el.rows[static_cast<std::size_t>(i)][static_cast<std::size_t>(at)].value;
        if (std::fabs(v) <= pivot_tol) return fail();  // forced tiny pivot: singular
        pi = i;
        pj = j;
        pivot = v;
        break;
      }
    }

    // 2) Row singletons: symmetric case, no fill either.
    while (pi < 0 && !el.row_single.empty()) {
      const int i = el.row_single.back();
      el.row_single.pop_back();
      if (!el.row_active[static_cast<std::size_t>(i)] ||
          el.row_count[static_cast<std::size_t>(i)] != 1)
        continue;
      const auto& row = el.rows[static_cast<std::size_t>(i)];
      // The row may hold stale zero-count entries? No: entries are exact.
      const LuEntry e = row.front();
      if (std::fabs(e.value) <= pivot_tol) continue;  // try other pivots for this column
      pi = i;
      pj = e.index;
      pivot = e.value;
    }

    // 3) Bump: Markowitz merit (r-1)(c-1) with threshold partial pivoting,
    //    searching the lowest-count active columns first.
    if (pi < 0) {
      constexpr int kSearchCols = 8;
      std::vector<int> order;
      for (int j = 0; j < m; ++j)
        if (el.col_active[static_cast<std::size_t>(j)]) order.push_back(j);
      if (order.empty()) return fail();
      std::sort(order.begin(), order.end(), [&](int a, int b) {
        const int ca = el.col_count[static_cast<std::size_t>(a)];
        const int cb = el.col_count[static_cast<std::size_t>(b)];
        return ca != cb ? ca < cb : a < b;
      });
      double best_merit = 0.0;
      int searched = 0;
      for (const int j : order) {
        if (searched >= kSearchCols && pi >= 0) break;
        ++searched;
        // Column max over the active entries, then threshold candidates.
        double colmax = 0.0;
        for (const int i : el.colrows[static_cast<std::size_t>(j)]) {
          if (!el.row_active[static_cast<std::size_t>(i)]) continue;
          const int at = el.find(i, j);
          if (at < 0) continue;
          colmax = std::max(
              colmax,
              std::fabs(el.rows[static_cast<std::size_t>(i)][static_cast<std::size_t>(at)].value));
        }
        if (colmax <= pivot_tol) continue;
        const double threshold = std::max(tau * colmax, pivot_tol);
        for (const int i : el.colrows[static_cast<std::size_t>(j)]) {
          if (!el.row_active[static_cast<std::size_t>(i)]) continue;
          const int at = el.find(i, j);
          if (at < 0) continue;
          const double v =
              el.rows[static_cast<std::size_t>(i)][static_cast<std::size_t>(at)].value;
          if (std::fabs(v) < threshold) continue;
          const double merit =
              static_cast<double>(el.row_count[static_cast<std::size_t>(i)] - 1) *
              static_cast<double>(el.col_count[static_cast<std::size_t>(j)] - 1);
          if (pi < 0 || merit < best_merit ||
              (merit == best_merit && std::fabs(v) > std::fabs(pivot))) {
            pi = i;
            pj = j;
            pivot = v;
            best_merit = merit;
          }
        }
      }
      if (pi < 0) return fail();  // no admissible pivot anywhere: singular
    }

    apply_pivot(k, pi, pj, pivot);
  }

  // Permutation inverses and the position -> step translation of U.
  core->rowstep.assign(static_cast<std::size_t>(m), -1);
  core->colstep.assign(static_cast<std::size_t>(m), -1);
  for (int k = 0; k < m; ++k) {
    core->rowstep[static_cast<std::size_t>(core->pr[static_cast<std::size_t>(k)])] = k;
    core->colstep[static_cast<std::size_t>(core->pc[static_cast<std::size_t>(k)])] = k;
  }
  for (int k = 0; k < m; ++k) {
    auto& out = core->urows[static_cast<std::size_t>(k)];
    out.reserve(urows_pos[static_cast<std::size_t>(k)].size());
    for (const LuEntry& e : urows_pos[static_cast<std::size_t>(k)]) {
      if (e.value == 0.0) continue;
      out.push_back({core->colstep[static_cast<std::size_t>(e.index)], e.value});
    }
  }

  core_ = std::move(core);
  etas_.clear();
  ++stats_.refactorizations;
  ensure_workspace(m);
  return true;
}

void LuFactors::load(const Factorization& snapshot) {
  core_ = snapshot.core;
  etas_ = snapshot.etas;
  ensure_workspace(rows());
}

Factorization LuFactors::snapshot() const {
  Factorization f;
  f.core = core_;
  f.etas = etas_;
  return f;
}

void LuFactors::append_eta(int pivot_pos, const SparseVec& w) {
  EtaVector eta;
  eta.pivot_pos = pivot_pos;
  eta.pivot_value = w.values[static_cast<std::size_t>(pivot_pos)];
  eta.entries.reserve(w.nz.size());
  for (const int i : w.nz) {
    if (i == pivot_pos) continue;
    const double v = w.values[static_cast<std::size_t>(i)];
    if (v != 0.0) eta.entries.push_back({i, v});
  }
  etas_.push_back(std::move(eta));
  ++stats_.eta_pivots;
  stats_.peak_eta_length =
      std::max(stats_.peak_eta_length, static_cast<int>(etas_.size()));
}

void LuFactors::ensure_workspace(int m) {
  if (static_cast<int>(work_.size()) < m) work_.assign(static_cast<std::size_t>(m), 0.0);
}

void LuFactors::ftran(SparseVec* x) {
  const LuCore& lu = *core_;
  const int m = lu.m;
  ++stats_.ftran_calls;
  stats_.rhs_nonzeros += x->nonzeros();
  stats_.rhs_dimension += m;

  // L solve in original row space; skipping zero positions is what makes a
  // hyper-sparse (few-nonzero) right-hand side cheap.
  auto& v = x->values;
  for (int k = 0; k < m; ++k) {
    const double xk = v[static_cast<std::size_t>(lu.pr[static_cast<std::size_t>(k)])];
    if (xk == 0.0) continue;
    for (const LuEntry& e : lu.lcols[static_cast<std::size_t>(k)]) {
      const auto s = static_cast<std::size_t>(e.index);
      if (v[s] == 0.0) x->nz.push_back(e.index);
      v[s] -= e.value * xk;
    }
  }
  // U backward solve into the step-indexed workspace.
  for (int k = m - 1; k >= 0; --k) {
    double acc = v[static_cast<std::size_t>(lu.pr[static_cast<std::size_t>(k)])];
    for (const LuEntry& e : lu.urows[static_cast<std::size_t>(k)]) {
      const double z = work_[static_cast<std::size_t>(e.index)];
      if (z != 0.0) acc -= e.value * z;
    }
    work_[static_cast<std::size_t>(k)] =
        acc == 0.0 ? 0.0 : acc / lu.diag[static_cast<std::size_t>(k)];
  }
  // Scatter back in basis-position space.
  x->clear();
  for (int k = 0; k < m; ++k) {
    const double z = work_[static_cast<std::size_t>(k)];
    work_[static_cast<std::size_t>(k)] = 0.0;
    if (z != 0.0) x->add(lu.pc[static_cast<std::size_t>(k)], z);
  }
  // Eta file, oldest first: x := E^-1 x.
  for (const EtaVector& eta : etas_) {
    const auto p = static_cast<std::size_t>(eta.pivot_pos);
    const double xp = v[p];
    if (xp == 0.0) continue;
    const double t = xp / eta.pivot_value;
    v[p] = t;
    for (const LuEntry& e : eta.entries) {
      const auto s = static_cast<std::size_t>(e.index);
      if (v[s] == 0.0) x->nz.push_back(e.index);
      v[s] -= e.value * t;
    }
  }
  x->compact();
  if (fault::enabled() && fault::should_fail(fault::Hook::kLuFtran))
    corrupt_solution(x);
}

void LuFactors::btran(SparseVec* y) {
  const LuCore& lu = *core_;
  const int m = lu.m;
  ++stats_.btran_calls;
  stats_.rhs_nonzeros += y->nonzeros();
  stats_.rhs_dimension += m;

  auto& v = y->values;
  // Eta file, newest first: y_p := (y_p - sum_{i != p} w_i y_i) / w_p.
  for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
    const EtaVector& eta = *it;
    const auto p = static_cast<std::size_t>(eta.pivot_pos);
    double acc = v[p];
    for (const LuEntry& e : eta.entries) {
      const double yi = v[static_cast<std::size_t>(e.index)];
      if (yi != 0.0) acc -= e.value * yi;
    }
    if (v[p] == 0.0 && acc != 0.0) y->nz.push_back(eta.pivot_pos);
    v[p] = acc == 0.0 ? 0.0 : acc / eta.pivot_value;
  }
  // U^T forward solve (scatter), input gathered from basis-position space.
  for (int k = 0; k < m; ++k)
    work_[static_cast<std::size_t>(k)] = v[static_cast<std::size_t>(lu.pc[static_cast<std::size_t>(k)])];
  for (int k = 0; k < m; ++k) {
    const double acc = work_[static_cast<std::size_t>(k)];
    if (acc == 0.0) continue;
    const double t = acc / lu.diag[static_cast<std::size_t>(k)];
    work_[static_cast<std::size_t>(k)] = t;
    for (const LuEntry& e : lu.urows[static_cast<std::size_t>(k)])
      work_[static_cast<std::size_t>(e.index)] -= e.value * t;
  }
  // L^T backward solve; multiplier rows pivot at later steps, so descending
  // step order sees finished values.
  for (int k = m - 1; k >= 0; --k) {
    double acc = work_[static_cast<std::size_t>(k)];
    for (const LuEntry& e : lu.lcols[static_cast<std::size_t>(k)]) {
      const double z =
          work_[static_cast<std::size_t>(lu.rowstep[static_cast<std::size_t>(e.index)])];
      if (z != 0.0) acc -= e.value * z;
    }
    work_[static_cast<std::size_t>(k)] = acc;
  }
  // Back to original row space.
  y->clear();
  for (int k = 0; k < m; ++k) {
    const double z = work_[static_cast<std::size_t>(k)];
    work_[static_cast<std::size_t>(k)] = 0.0;
    if (z != 0.0) y->add(lu.pr[static_cast<std::size_t>(k)], z);
  }
  y->compact();
  if (fault::enabled() && fault::should_fail(fault::Hook::kLuBtran))
    corrupt_solution(y);
}

// ---------------------------------------------------------------------------
// Serialization ("factor v1"): the cross-process warm-start handoff format.
// Doubles use max_digits10 so values round-trip exactly.

namespace {

void write_entries(std::ostringstream& out, const std::vector<LuEntry>& entries) {
  out << entries.size();
  for (const LuEntry& e : entries) out << ' ' << e.index << ' ' << e.value;
  out << '\n';
}

bool read_entries(std::istringstream& in, std::vector<LuEntry>* entries) {
  std::size_t n = 0;
  if (!(in >> n)) return false;
  entries->resize(n);
  for (LuEntry& e : *entries)
    if (!(in >> e.index >> e.value)) return false;
  return true;
}

}  // namespace

std::string Factorization::to_string() const {
  std::ostringstream out;
  out << std::setprecision(17);
  const int m = rows();
  out << "factor v1 " << m << ' ' << etas.size() << '\n';
  if (core) {
    for (int k = 0; k < m; ++k) {
      out << core->pr[static_cast<std::size_t>(k)] << ' '
          << core->pc[static_cast<std::size_t>(k)] << ' '
          << core->diag[static_cast<std::size_t>(k)] << '\n';
      write_entries(out, core->lcols[static_cast<std::size_t>(k)]);
      write_entries(out, core->urows[static_cast<std::size_t>(k)]);
    }
  }
  for (const EtaVector& eta : etas) {
    out << eta.pivot_pos << ' ' << eta.pivot_value << '\n';
    write_entries(out, eta.entries);
  }
  return out.str();
}

std::optional<Factorization> Factorization::from_string(const std::string& text) {
  std::istringstream in(text);
  std::string tag, version;
  int m = 0;
  std::size_t netas = 0;
  if (!(in >> tag >> version >> m >> netas)) return std::nullopt;
  if (tag != "factor" || version != "v1" || m < 0) return std::nullopt;
  auto core = std::make_shared<LuCore>();
  core->m = m;
  core->pr.resize(static_cast<std::size_t>(m));
  core->pc.resize(static_cast<std::size_t>(m));
  core->diag.resize(static_cast<std::size_t>(m));
  core->lcols.resize(static_cast<std::size_t>(m));
  core->urows.resize(static_cast<std::size_t>(m));
  core->rowstep.assign(static_cast<std::size_t>(m), -1);
  core->colstep.assign(static_cast<std::size_t>(m), -1);
  for (int k = 0; k < m; ++k) {
    int pr = 0, pc = 0;
    double diag = 0.0;
    if (!(in >> pr >> pc >> diag)) return std::nullopt;
    if (pr < 0 || pr >= m || pc < 0 || pc >= m || diag == 0.0) return std::nullopt;
    if (core->rowstep[static_cast<std::size_t>(pr)] != -1) return std::nullopt;
    if (core->colstep[static_cast<std::size_t>(pc)] != -1) return std::nullopt;
    core->pr[static_cast<std::size_t>(k)] = pr;
    core->pc[static_cast<std::size_t>(k)] = pc;
    core->diag[static_cast<std::size_t>(k)] = diag;
    core->rowstep[static_cast<std::size_t>(pr)] = k;
    core->colstep[static_cast<std::size_t>(pc)] = k;
    if (!read_entries(in, &core->lcols[static_cast<std::size_t>(k)])) return std::nullopt;
    if (!read_entries(in, &core->urows[static_cast<std::size_t>(k)])) return std::nullopt;
    for (const LuEntry& e : core->lcols[static_cast<std::size_t>(k)])
      if (e.index < 0 || e.index >= m) return std::nullopt;
    for (const LuEntry& e : core->urows[static_cast<std::size_t>(k)])
      if (e.index <= k || e.index >= m) return std::nullopt;
  }
  Factorization out;
  out.etas.resize(netas);
  for (EtaVector& eta : out.etas) {
    if (!(in >> eta.pivot_pos >> eta.pivot_value)) return std::nullopt;
    if (eta.pivot_pos < 0 || eta.pivot_pos >= m || eta.pivot_value == 0.0)
      return std::nullopt;
    if (!read_entries(in, &eta.entries)) return std::nullopt;
    for (const LuEntry& e : eta.entries)
      if (e.index < 0 || e.index >= m) return std::nullopt;
  }
  out.core = std::move(core);
  return out;
}

}  // namespace insched::lp
