#pragma once

// Simplex basis snapshots. A `Basis` records, for one solved LP, which
// variable is basic in each row and at which bound every nonbasic variable
// rests. Together with the (unchanged) constraint matrix this fully
// determines the vertex, so a child problem that differs only in column
// bounds — exactly what branch-and-bound produces — can restart the dual
// simplex from the parent's optimal basis and re-solve in a handful of
// pivots instead of a two-phase cold start.
//
// A `Factorization` (see factor.hpp) is the sparse LU + eta-chain snapshot
// that goes with a Basis. It is optional: a warm start without one
// refactorizes from the basis (O(nnz fill)); with one it starts pivoting
// immediately. The MIP search keeps factorizations in a small LRU cache
// keyed by node id, so hot subtrees skip refactorization entirely while
// memory stays bounded — at O(nnz) per snapshot instead of the former dense
// O(m^2) inverse.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "insched/lp/factor.hpp"

namespace insched::lp {

/// Where a variable sits in a basis snapshot. Variables are indexed
/// [0, n) structural then [n, n + m) row slacks, matching the simplex
/// working problem.
enum class BasisStatus : std::uint8_t {
  kBasic = 0,
  kAtLower = 1,
  kAtUpper = 2,
  kFree = 3,  ///< nonbasic free variable pinned at zero
};

struct Basis {
  std::vector<int> basic;               ///< basic[i] = variable basic in row i
  std::vector<BasisStatus> status;      ///< one entry per structural + slack variable

  [[nodiscard]] bool empty() const noexcept { return basic.empty(); }
  [[nodiscard]] int rows() const noexcept { return static_cast<int>(basic.size()); }
  [[nodiscard]] int variables() const noexcept { return static_cast<int>(status.size()); }

  /// Structural consistency: sizes agree, every basic index is in range and
  /// marked kBasic, no variable is basic in two rows.
  [[nodiscard]] bool consistent() const noexcept;

  /// Compact text form ("basis v1 ..."), stable across platforms; use for
  /// debugging dumps and cross-process warm-start handoff.
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] static std::optional<Basis> from_string(const std::string& text);
};

/// One column-bound change relative to a base model (the branch decisions on
/// the path from the root to a node).
struct BoundOverride {
  int column = -1;
  double lower = 0.0;
  double upper = 0.0;
};

}  // namespace insched::lp
