#pragma once

// Lightweight LP/MIP presolve: removes fixed columns, singleton rows and
// empty rows, and detects trivial infeasibility, producing a smaller model
// plus the mapping needed to recover a solution of the original model.

#include <optional>
#include <vector>

#include "insched/lp/model.hpp"

namespace insched::lp {

/// One eliminated-by-substitution column: the original column `column` was
/// rewritten everywhere as `scale * source + offset` where `source` is
/// another *original* column index (kept or itself reduced). Produced by the
/// probing presolve for binary equivalences (y == x: scale 1, offset 0) and
/// complements (y == 1 - x: scale -1, offset 1).
struct AggregatedColumn {
  int column = -1;
  int source = -1;
  double scale = 1.0;
  double offset = 0.0;
};

struct PresolveResult {
  Model reduced;                       ///< the smaller model (valid if !infeasible)
  bool infeasible = false;
  std::vector<int> column_map;         ///< original column -> reduced column, -1 if eliminated
  std::vector<double> fixed_values;    ///< value for every eliminated column
  std::vector<AggregatedColumn> aggregated;  ///< substituted (not fixed) columns
  int removed_columns = 0;
  int removed_rows = 0;

  /// Expands a solution of the reduced model back to the original space:
  /// mapped columns copy through, fixed columns take their stored value, and
  /// aggregated columns are re-derived from their source column (sources are
  /// resolved transitively, so chained aggregations round-trip too).
  [[nodiscard]] std::vector<double> restore(const std::vector<double>& reduced_x) const;
};

/// Applies bound tightening from singleton rows, then eliminates fixed
/// columns (lower == upper) and empty rows. Integer columns whose tightened
/// bounds exclude all integers make the model infeasible.
[[nodiscard]] PresolveResult presolve(const Model& model);

}  // namespace insched::lp
