#pragma once

// Lightweight LP/MIP presolve: removes fixed columns, singleton rows and
// empty rows, and detects trivial infeasibility, producing a smaller model
// plus the mapping needed to recover a solution of the original model.

#include <optional>
#include <vector>

#include "insched/lp/model.hpp"

namespace insched::lp {

struct PresolveResult {
  Model reduced;                       ///< the smaller model (valid if !infeasible)
  bool infeasible = false;
  std::vector<int> column_map;         ///< original column -> reduced column, -1 if eliminated
  std::vector<double> fixed_values;    ///< value for every eliminated column
  int removed_columns = 0;
  int removed_rows = 0;

  /// Expands a solution of the reduced model back to the original space.
  [[nodiscard]] std::vector<double> restore(const std::vector<double>& reduced_x) const;
};

/// Applies bound tightening from singleton rows, then eliminates fixed
/// columns (lower == upper) and empty rows. Integer columns whose tightened
/// bounds exclude all integers make the model infeasible.
[[nodiscard]] PresolveResult presolve(const Model& model);

}  // namespace insched::lp
