#pragma once

// CPLEX LP-format writer and reader. The paper's workflow expressed the
// model in GAMS and handed it to CPLEX; this module gives the equivalent
// interoperability: any Model can be exported for an external solver, and
// instances written by other tools can be imported and solved here.
// Supported subset: objective, constraints, bounds, General/Binary sections
// (what our models use; no SOS/semicontinuous/quadratic terms).

#include <string>

#include "insched/lp/model.hpp"

namespace insched::lp {

/// Serializes `model` in LP format. Column names are sanitized (LP format
/// forbids spaces and operators); unnamed columns become x<j>.
[[nodiscard]] std::string write_lp(const Model& model);

/// Parses LP-format text into a Model. Throws std::runtime_error with a
/// token context on malformed input.
[[nodiscard]] Model read_lp(const std::string& text);

}  // namespace insched::lp
