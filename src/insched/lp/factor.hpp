#pragma once

// Sparse LU basis factorization for the revised simplex. Replaces the dense
// m x m explicit basis inverse: the basis matrix B (one sparse column per
// basic variable) is factorized as P B Q = L U by Markowitz-ordered Gaussian
// elimination with threshold partial pivoting, and subsequent simplex pivots
// are absorbed as product-form eta vectors instead of O(m^2) row
// eliminations. FTRAN (solve B x = a) and BTRAN (solve B^T y = c) walk the
// sparse factors and the eta file, skipping zero entries in the right-hand
// side, so a pivot on a staircase scheduling model costs O(band of touched
// rows) instead of O(m^2) and a refactorization costs O(nnz fill) instead of
// O(m^3).
//
// Two layers:
//  * `LuCore` / `EtaVector` / `Factorization` — immutable snapshot data.
//    `Factorization` (shared LuCore + eta chain) is what the MIP search
//    caches per node: O(nnz) memory instead of the former dense O(m^2)
//    `binv` snapshot. LuCore is shared between sibling snapshots that differ
//    only in appended etas.
//  * `LuFactors` — the mutable engine-side state: one LuCore plus a growing
//    eta file, workspaces, and observability counters (ftran/btran calls,
//    right-hand-side density, refactorization count).

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace insched::lp {

/// One nonzero of a sparse factor column/row: `index` is an original row id,
/// a basis position, or an elimination step depending on the container.
struct LuEntry {
  int index = 0;
  double value = 0.0;
};

/// Sparse vector workspace: dense value array plus the list of positions
/// that may be nonzero (exact zeros can linger in `nz`; consumers skip
/// them). Reused across solves, so clear() only zeroes the listed entries.
struct SparseVec {
  std::vector<double> values;
  std::vector<int> nz;

  void resize(int m) {
    clear();
    values.resize(static_cast<std::size_t>(m), 0.0);
  }
  void clear() {
    for (const int i : nz) values[static_cast<std::size_t>(i)] = 0.0;
    nz.clear();
  }
  /// Adds `v` at position `i`, registering the position on first touch.
  /// A position whose value cancels to exact zero and is touched again ends
  /// up listed twice — harmless for dense reads and for clear(), but
  /// callers that *iterate* nz destructively must compact() first.
  void add(int i, double v) {
    const auto s = static_cast<std::size_t>(i);
    if (values[s] == 0.0) nz.push_back(i);
    values[s] += v;
  }
  /// Sorts nz ascending, removes duplicates and exact zeros. FTRAN/BTRAN
  /// outputs are always compacted, so simplex loops over nz (ratio tests,
  /// value updates, eta capture) see each position exactly once, in a
  /// deterministic order.
  void compact() {
    // Dense-ish vectors (small bases, fill-heavy solves): one ordered scan
    // over `values` beats sort+unique and is O(m) regardless of duplicates.
    // Hyper-sparse vectors keep the O(nnz log nnz) path so large staircase
    // solves never pay an O(m) sweep per FTRAN/BTRAN.
    if (nz.size() * 4 >= values.size()) {
      nz.clear();
      const int m = static_cast<int>(values.size());
      for (int i = 0; i < m; ++i)
        if (values[static_cast<std::size_t>(i)] != 0.0) nz.push_back(i);
      return;
    }
    std::sort(nz.begin(), nz.end());
    nz.erase(std::unique(nz.begin(), nz.end()), nz.end());
    std::size_t out = 0;
    for (const int i : nz)
      if (values[static_cast<std::size_t>(i)] != 0.0) nz[out++] = i;
    nz.resize(out);
  }
  [[nodiscard]] int nonzeros() const noexcept {
    int n = 0;
    for (const int i : nz)
      if (values[static_cast<std::size_t>(i)] != 0.0) ++n;
    return n;
  }
};

/// One product-form update: basis position `pivot_pos` was replaced by a
/// column whose FTRAN image had `pivot_value` in that position and `entries`
/// elsewhere (basis-position indices, pivot excluded).
struct EtaVector {
  int pivot_pos = -1;
  double pivot_value = 0.0;
  std::vector<LuEntry> entries;

  [[nodiscard]] std::size_t bytes() const noexcept {
    return sizeof(EtaVector) + entries.capacity() * sizeof(LuEntry);
  }
};

/// Immutable sparse LU factors of one basis matrix: P B Q = L U.
/// `pr[k]`/`pc[k]` give the original row / basis position pivoted at
/// elimination step k; `lcols[k]` holds the unit-lower-triangular multiplier
/// column of step k (indices = original rows, all pivoted at steps > k);
/// `urows[k]` holds the off-diagonal entries of U's row k (indices =
/// elimination steps > k); `diag[k]` is the pivot value.
struct LuCore {
  int m = 0;
  std::vector<int> pr, pc;            ///< step -> original row / basis position
  std::vector<int> rowstep, colstep;  ///< inverse permutations
  std::vector<double> diag;
  std::vector<std::vector<LuEntry>> lcols;
  std::vector<std::vector<LuEntry>> urows;

  [[nodiscard]] long nnz() const noexcept;
  [[nodiscard]] std::size_t bytes() const noexcept;
};

/// Compact factorization snapshot attached to a `Basis`: the shared LU core
/// plus the eta chain accumulated since it was computed. Immutable once
/// built; sibling branch-and-bound nodes share it by shared_ptr, and the
/// core itself is shared between snapshots taken between refactorizations.
struct Factorization {
  std::shared_ptr<const LuCore> core;
  std::vector<EtaVector> etas;

  [[nodiscard]] int rows() const noexcept { return core ? core->m : 0; }
  [[nodiscard]] int eta_count() const noexcept { return static_cast<int>(etas.size()); }
  /// Approximate resident size. The shared core is charged in full (callers
  /// that account a cache of sibling snapshots overcount shared cores).
  [[nodiscard]] std::size_t bytes() const noexcept;
  /// Dense-inverse equivalent footprint (what the pre-LU snapshot cost).
  [[nodiscard]] std::size_t dense_equivalent_bytes() const noexcept {
    const auto m = static_cast<std::size_t>(rows());
    return m * m * sizeof(double) + m * sizeof(void*);
  }

  /// Compact text form ("factor v1 ..."), value-exact across platforms; the
  /// cross-process warm-start handoff companion of `Basis::to_string`.
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] static std::optional<Factorization> from_string(const std::string& text);
};

/// Observability counters for one engine lifetime (reset per solve).
struct FactorStats {
  long ftran_calls = 0;
  long btran_calls = 0;
  long refactorizations = 0;
  long eta_pivots = 0;      ///< product-form updates appended
  int peak_eta_length = 0;  ///< longest eta chain reached between refactorizations
  long rhs_nonzeros = 0;   ///< summed input nonzeros over all ftran/btran calls
  long rhs_dimension = 0;  ///< summed vector length over the same calls

  /// Average input density of ftran/btran right-hand sides in [0, 1].
  [[nodiscard]] double rhs_density() const noexcept {
    return rhs_dimension > 0 ? static_cast<double>(rhs_nonzeros) /
                                   static_cast<double>(rhs_dimension)
                             : 0.0;
  }
};

/// Mutable factorization state of one simplex engine: LU core + eta file +
/// workspaces. Not thread-safe; each engine owns one.
/// Where a failed factorization got stuck: the original rows and the basis
/// positions (columns of the basis matrix) that never received a pivot.
/// Pairing position[k] with row[k] and substituting the slack of that row
/// for the stuck basic variable makes the basis structurally nonsingular
/// again — the singular-basis repair rung of the recovery ladder
/// (docs/ROBUSTNESS.md).
struct SingularInfo {
  std::vector<int> rows;       ///< original row indices left unpivoted
  std::vector<int> positions;  ///< basis positions left unpivoted
};

class LuFactors {
 public:
  /// (Re)factorizes the basis given by `basis_cols`: m sparse columns, each
  /// a list of (original row, coefficient). Entries with |pivot| below
  /// `pivot_tol` are never chosen; `tau` is the threshold-partial-pivoting
  /// relaxation (a bump pivot must be >= tau * column max). Returns false on
  /// a (numerically) singular basis; the previous factors stay untouched
  /// and, when `singular` is given, it receives the unpivoted rows and
  /// basis positions for slack-substitution repair.
  [[nodiscard]] bool factorize(const std::vector<std::vector<LuEntry>>& basis_cols,
                               double pivot_tol, double tau = 0.1,
                               SingularInfo* singular = nullptr);

  /// Loads a snapshot (shared core, copied eta chain).
  void load(const Factorization& snapshot);

  /// Snapshot of the current state (shares the core, copies the etas).
  [[nodiscard]] Factorization snapshot() const;

  /// Appends a product-form update: the FTRAN image `w` of the entering
  /// column replaces basis position `pivot_pos`. `w` is consumed.
  void append_eta(int pivot_pos, const SparseVec& w);

  /// x := B^-1 x. Input indexed by original row, output by basis position.
  void ftran(SparseVec* x);

  /// y := B^-T y. Input indexed by basis position, output by original row.
  void btran(SparseVec* y);

  [[nodiscard]] bool ready() const noexcept { return core_ != nullptr; }
  [[nodiscard]] int rows() const noexcept { return core_ ? core_->m : 0; }
  [[nodiscard]] int eta_count() const noexcept { return static_cast<int>(etas_.size()); }

  [[nodiscard]] const FactorStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

 private:
  void ensure_workspace(int m);

  std::shared_ptr<const LuCore> core_;
  std::vector<EtaVector> etas_;
  std::vector<double> work_;  ///< step-indexed scratch for the triangular solves
  FactorStats stats_;
};

}  // namespace insched::lp
