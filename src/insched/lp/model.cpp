#include "insched/lp/model.hpp"

#include <cmath>
#include <map>

#include "insched/support/assert.hpp"
#include "insched/support/string_util.hpp"

namespace insched::lp {

int Model::add_column(std::string name, double lower, double upper, double objective,
                      VarType type) {
  INSCHED_EXPECTS(lower <= upper);
  if (type == VarType::kBinary) {
    INSCHED_EXPECTS(lower >= 0.0 && upper <= 1.0);
  }
  columns_.push_back(Column{std::move(name), lower, upper, objective, type});
  return num_columns() - 1;
}

int Model::add_row(std::string name, RowType type, double rhs, std::vector<RowEntry> entries) {
  // Merge duplicates so downstream dense expansion stays well-defined.
  std::map<int, double> merged;
  for (const RowEntry& e : entries) {
    INSCHED_EXPECTS(e.column >= 0 && e.column < num_columns());
    merged[e.column] += e.coeff;
  }
  Row row;
  row.name = std::move(name);
  row.type = type;
  row.rhs = rhs;
  row.entries.reserve(merged.size());
  for (const auto& [col, coeff] : merged) {
    if (coeff != 0.0) row.entries.push_back(RowEntry{col, coeff});
  }
  rows_.push_back(std::move(row));
  return num_rows() - 1;
}

void Model::add_entry(int row, int column, double coeff) {
  INSCHED_EXPECTS(row >= 0 && row < num_rows());
  INSCHED_EXPECTS(column >= 0 && column < num_columns());
  for (RowEntry& e : rows_[static_cast<std::size_t>(row)].entries) {
    if (e.column == column) {
      e.coeff += coeff;
      return;
    }
  }
  rows_[static_cast<std::size_t>(row)].entries.push_back(RowEntry{column, coeff});
}

void Model::set_objective(int column, double coeff) {
  INSCHED_EXPECTS(column >= 0 && column < num_columns());
  columns_[static_cast<std::size_t>(column)].objective = coeff;
}

void Model::set_type(int column, VarType type) {
  INSCHED_EXPECTS(column >= 0 && column < num_columns());
  columns_[static_cast<std::size_t>(column)].type = type;
}

void Model::set_row_kind(int row, RowKind kind) {
  INSCHED_EXPECTS(row >= 0 && row < num_rows());
  rows_[static_cast<std::size_t>(row)].kind = kind;
}

void Model::set_row_coeff(int row, int entry_index, double coeff) {
  INSCHED_EXPECTS(row >= 0 && row < num_rows());
  auto& entries = rows_[static_cast<std::size_t>(row)].entries;
  INSCHED_EXPECTS(entry_index >= 0 && entry_index < static_cast<int>(entries.size()));
  entries[static_cast<std::size_t>(entry_index)].coeff = coeff;
}

void Model::set_row_rhs(int row, double rhs) {
  INSCHED_EXPECTS(row >= 0 && row < num_rows());
  rows_[static_cast<std::size_t>(row)].rhs = rhs;
}

void Model::set_bounds(int column, double lower, double upper) {
  INSCHED_EXPECTS(column >= 0 && column < num_columns());
  INSCHED_EXPECTS(lower <= upper);
  columns_[static_cast<std::size_t>(column)].lower = lower;
  columns_[static_cast<std::size_t>(column)].upper = upper;
}

bool Model::has_integers() const noexcept {
  for (const Column& c : columns_) {
    if (c.type != VarType::kContinuous) return true;
  }
  return false;
}

double Model::objective_value(const std::vector<double>& x) const {
  INSCHED_EXPECTS(x.size() == columns_.size());
  double value = obj_constant_;
  for (std::size_t j = 0; j < columns_.size(); ++j) value += columns_[j].objective * x[j];
  return value;
}

double Model::row_activity(int row, const std::vector<double>& x) const {
  INSCHED_EXPECTS(row >= 0 && row < num_rows());
  INSCHED_EXPECTS(x.size() == columns_.size());
  double activity = 0.0;
  for (const RowEntry& e : rows_[static_cast<std::size_t>(row)].entries)
    activity += e.coeff * x[static_cast<std::size_t>(e.column)];
  return activity;
}

bool Model::is_feasible(const std::vector<double>& x, double tol) const {
  if (x.size() != columns_.size()) return false;
  for (std::size_t j = 0; j < columns_.size(); ++j) {
    const Column& c = columns_[j];
    if (x[j] < c.lower - tol || x[j] > c.upper + tol) return false;
    if (c.type != VarType::kContinuous &&
        std::fabs(x[j] - std::round(x[j])) > tol)
      return false;
  }
  for (int i = 0; i < num_rows(); ++i) {
    const double activity = row_activity(i, x);
    const Row& r = rows_[static_cast<std::size_t>(i)];
    switch (r.type) {
      case RowType::kLe:
        if (activity > r.rhs + tol) return false;
        break;
      case RowType::kGe:
        if (activity < r.rhs - tol) return false;
        break;
      case RowType::kEq:
        if (std::fabs(activity - r.rhs) > tol) return false;
        break;
    }
  }
  return true;
}

std::string Model::to_string() const {
  std::string out = sense_ == Sense::kMinimize ? "minimize\n " : "maximize\n ";
  for (int j = 0; j < num_columns(); ++j) {
    const Column& c = columns_[static_cast<std::size_t>(j)];
    if (c.objective != 0.0)
      out += format(" %+g %s", c.objective, c.name.empty() ? format("x%d", j).c_str()
                                                            : c.name.c_str());
  }
  out += "\nsubject to\n";
  for (const Row& r : rows_) {
    out += " ";
    for (const RowEntry& e : r.entries) {
      const Column& c = columns_[static_cast<std::size_t>(e.column)];
      out += format(" %+g %s", e.coeff,
                    c.name.empty() ? format("x%d", e.column).c_str() : c.name.c_str());
    }
    const char* op = r.type == RowType::kLe ? "<=" : (r.type == RowType::kGe ? ">=" : "=");
    out += format(" %s %g", op, r.rhs);
    if (!r.name.empty()) out += "   (" + r.name + ")";
    out += '\n';
  }
  out += "bounds\n";
  for (int j = 0; j < num_columns(); ++j) {
    const Column& c = columns_[static_cast<std::size_t>(j)];
    out += format(" %g <= %s <= %g%s\n", c.lower,
                  c.name.empty() ? format("x%d", j).c_str() : c.name.c_str(), c.upper,
                  c.type == VarType::kContinuous ? "" : " integer");
  }
  return out;
}

}  // namespace insched::lp
