#include "insched/lp/basis.hpp"

#include <sstream>

namespace insched::lp {

bool Basis::consistent() const noexcept {
  if (basic.empty() || status.empty()) return false;
  if (basic.size() > status.size()) return false;
  std::vector<bool> seen(status.size(), false);
  for (const int j : basic) {
    if (j < 0 || j >= variables()) return false;
    if (status[static_cast<std::size_t>(j)] != BasisStatus::kBasic) return false;
    if (seen[static_cast<std::size_t>(j)]) return false;
    seen[static_cast<std::size_t>(j)] = true;
  }
  int basic_marks = 0;
  for (const BasisStatus s : status)
    if (s == BasisStatus::kBasic) ++basic_marks;
  return basic_marks == rows();
}

std::string Basis::to_string() const {
  std::ostringstream out;
  out << "basis v1 " << rows() << ' ' << variables() << '\n';
  for (std::size_t i = 0; i < basic.size(); ++i) {
    if (i != 0) out << ' ';
    out << basic[i];
  }
  out << '\n';
  static constexpr char kCode[] = {'B', 'L', 'U', 'F'};
  for (const BasisStatus s : status) out << kCode[static_cast<int>(s)];
  out << '\n';
  return out.str();
}

std::optional<Basis> Basis::from_string(const std::string& text) {
  std::istringstream in(text);
  std::string tag, version;
  int m = 0, total = 0;
  if (!(in >> tag >> version >> m >> total)) return std::nullopt;
  if (tag != "basis" || version != "v1" || m < 0 || total < m) return std::nullopt;
  Basis out;
  out.basic.resize(static_cast<std::size_t>(m));
  for (int& j : out.basic)
    if (!(in >> j)) return std::nullopt;
  std::string codes;
  if (!(in >> codes) || codes.size() != static_cast<std::size_t>(total)) return std::nullopt;
  out.status.reserve(codes.size());
  for (const char c : codes) {
    switch (c) {
      case 'B': out.status.push_back(BasisStatus::kBasic); break;
      case 'L': out.status.push_back(BasisStatus::kAtLower); break;
      case 'U': out.status.push_back(BasisStatus::kAtUpper); break;
      case 'F': out.status.push_back(BasisStatus::kFree); break;
      default: return std::nullopt;
    }
  }
  if (!out.consistent()) return std::nullopt;
  return out;
}

}  // namespace insched::lp
