#include "insched/lp/lp_format.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <map>
#include <sstream>
#include <stdexcept>

#include "insched/support/string_util.hpp"

namespace insched::lp {

namespace {

/// LP-format identifiers: letters, digits and a few punctuation characters;
/// must not start with a digit or '.', must not contain operators/spaces.
std::string sanitize(const std::string& name, int index) {
  if (name.empty()) return format("x%d", index);
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' ||
                    c == '#';
    out += ok ? c : '_';
  }
  if (std::isdigit(static_cast<unsigned char>(out[0])) || out[0] == '.')
    out.insert(out.begin(), 'v');
  return out;
}

void write_terms(std::string& out, const std::vector<std::pair<int, double>>& terms,
                 const std::vector<std::string>& names) {
  bool first = true;
  for (const auto& [col, coeff] : terms) {
    if (coeff == 0.0) continue;
    if (first) {
      out += coeff < 0.0 ? "- " : "";
      first = false;
    } else {
      out += coeff < 0.0 ? " - " : " + ";
    }
    const double mag = std::fabs(coeff);
    if (mag != 1.0) out += format("%.17g ", mag);
    out += names[static_cast<std::size_t>(col)];
  }
  if (first) out += "0 x0_dummy_";  // empty expression placeholder (never used by us)
}

}  // namespace

std::string write_lp(const Model& model) {
  const int n = model.num_columns();
  std::vector<std::string> names;
  names.reserve(static_cast<std::size_t>(n));
  std::map<std::string, int> used;
  for (int j = 0; j < n; ++j) {
    std::string name = sanitize(model.column(j).name, j);
    // Uniquify collisions after sanitizing.
    auto [it, inserted] = used.emplace(name, 0);
    if (!inserted) {
      ++it->second;
      name += format("_%d", it->second);
    }
    names.push_back(std::move(name));
  }

  std::string out =
      model.sense() == Sense::kMaximize ? "Maximize\n obj: " : "Minimize\n obj: ";
  {
    std::vector<std::pair<int, double>> terms;
    for (int j = 0; j < n; ++j) {
      if (model.column(j).objective != 0.0) terms.emplace_back(j, model.column(j).objective);
    }
    write_terms(out, terms, names);
    out += '\n';
  }

  out += "Subject To\n";
  for (int i = 0; i < model.num_rows(); ++i) {
    const Row& row = model.row(i);
    out += format(" c%d: ", i);
    std::vector<std::pair<int, double>> terms;
    for (const RowEntry& e : row.entries) terms.emplace_back(e.column, e.coeff);
    write_terms(out, terms, names);
    const char* op = row.type == RowType::kLe ? "<=" : (row.type == RowType::kGe ? ">=" : "=");
    out += format(" %s %.17g\n", op, row.rhs);
  }

  out += "Bounds\n";
  for (int j = 0; j < n; ++j) {
    const Column& c = model.column(j);
    const std::string& name = names[static_cast<std::size_t>(j)];
    if (std::isinf(c.lower) && std::isinf(c.upper)) {
      out += format(" %s free\n", name.c_str());
    } else if (std::isinf(c.upper)) {
      out += format(" %s >= %.17g\n", name.c_str(), c.lower);
    } else if (std::isinf(c.lower)) {
      out += format(" %s <= %.17g\n", name.c_str(), c.upper);
    } else {
      out += format(" %.17g <= %s <= %.17g\n", c.lower, name.c_str(), c.upper);
    }
  }

  std::string generals, binaries;
  for (int j = 0; j < n; ++j) {
    if (model.column(j).type == VarType::kInteger)
      generals += " " + names[static_cast<std::size_t>(j)] + "\n";
    else if (model.column(j).type == VarType::kBinary)
      binaries += " " + names[static_cast<std::size_t>(j)] + "\n";
  }
  if (!generals.empty()) out += "General\n" + generals;
  if (!binaries.empty()) out += "Binary\n" + binaries;
  out += "End\n";
  return out;
}

namespace {

struct Tokenizer {
  explicit Tokenizer(const std::string& text) : text_(text) {}

  /// Next token: a number, an identifier, an operator (<=, >=, =, +, -, :).
  [[nodiscard]] std::string next() {
    skip_space();
    if (pos_ >= text_.size()) return {};
    const char c = text_[pos_];
    if (c == '<' || c == '>') {
      std::string tok(1, c);
      ++pos_;
      if (pos_ < text_.size() && text_[pos_] == '=') {
        tok += '=';
        ++pos_;
      }
      return tok;
    }
    if (c == '=' || c == '+' || c == '-' || c == ':') {
      ++pos_;
      return std::string(1, c);
    }
    std::size_t start = pos_;
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
              text_[pos_] == 'e' || text_[pos_] == 'E' ||
              ((text_[pos_] == '+' || text_[pos_] == '-') &&
               (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E'))))
        ++pos_;
      return text_.substr(start, pos_ - start);
    }
    while (pos_ < text_.size() && !std::isspace(static_cast<unsigned char>(text_[pos_])) &&
           text_[pos_] != '<' && text_[pos_] != '>' && text_[pos_] != '=' &&
           text_[pos_] != '+' && text_[pos_] != '-' && text_[pos_] != ':')
      ++pos_;
    return text_.substr(start, pos_ - start);
  }

  [[nodiscard]] std::string peek() {
    const std::size_t saved = pos_;
    std::string tok = next();
    pos_ = saved;
    return tok;
  }

  void skip_space() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\\') {  // LP comments run to end of line
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else {
        break;
      }
    }
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
};

bool is_number(const std::string& tok) {
  return !tok.empty() &&
         (std::isdigit(static_cast<unsigned char>(tok[0])) || tok[0] == '.');
}

bool is_keyword(const std::string& tok, const char* keyword) {
  if (tok.size() != std::string(keyword).size()) return false;
  for (std::size_t i = 0; i < tok.size(); ++i)
    if (std::tolower(static_cast<unsigned char>(tok[i])) != keyword[i]) return false;
  return true;
}

}  // namespace

Model read_lp(const std::string& text) {
  Model model;
  Tokenizer tok(text);
  std::map<std::string, int> columns;

  const auto column_of = [&](const std::string& name) {
    const auto it = columns.find(name);
    if (it != columns.end()) return it->second;
    const int col = model.add_column(name, 0.0, kInf, 0.0);
    columns.emplace(name, col);
    return col;
  };

  // Sense.
  std::string t = tok.next();
  if (is_keyword(t, "maximize") || is_keyword(t, "max")) {
    model.set_sense(Sense::kMaximize);
  } else if (is_keyword(t, "minimize") || is_keyword(t, "min")) {
    model.set_sense(Sense::kMinimize);
  } else {
    throw std::runtime_error("lp: expected Maximize/Minimize, got '" + t + "'");
  }

  // Linear expression reader: returns terms and the token that ended it.
  const auto read_expression = [&](std::string first,
                                   std::vector<RowEntry>& entries) -> std::string {
    double sign = 1.0;
    bool pending_coeff = false;
    double coeff = 1.0;
    std::string cur = std::move(first);
    while (true) {
      if (cur.empty()) return cur;
      if (cur == "+" || cur == "-") {
        sign = cur == "-" ? -sign : sign;
        cur = tok.next();
        continue;
      }
      if (is_number(cur)) {
        coeff = std::stod(cur);
        pending_coeff = true;
        cur = tok.next();
        continue;
      }
      if (cur == "<=" || cur == ">=" || cur == "=" || cur == "<" || cur == ">" ||
          is_keyword(cur, "subject") || is_keyword(cur, "st") || is_keyword(cur, "s.t.") ||
          is_keyword(cur, "bounds") || is_keyword(cur, "general") ||
          is_keyword(cur, "binary") || is_keyword(cur, "end") || is_keyword(cur, "to")) {
        return cur;  // delimiter; any dangling number is the caller's rhs
      }
      // Identifier term.
      entries.push_back(RowEntry{column_of(cur), sign * (pending_coeff ? coeff : 1.0)});
      sign = 1.0;
      coeff = 1.0;
      pending_coeff = false;
      cur = tok.next();
    }
  };

  // Objective (with optional "obj:" label).
  std::string cur = tok.next();
  if (tok.peek() == ":") {
    (void)tok.next();  // consume ':'
    cur = tok.next();
  }
  std::vector<RowEntry> obj_terms;
  cur = read_expression(cur, obj_terms);
  for (const RowEntry& e : obj_terms) model.set_objective(e.column, e.coeff);

  // Subject To.
  if (is_keyword(cur, "subject")) {
    cur = tok.next();  // "To"
    if (!is_keyword(cur, "to")) throw std::runtime_error("lp: expected 'To'");
  } else if (!(is_keyword(cur, "st") || is_keyword(cur, "s.t."))) {
    throw std::runtime_error("lp: expected 'Subject To', got '" + cur + "'");
  }

  cur = tok.next();
  while (!cur.empty() && !is_keyword(cur, "bounds") && !is_keyword(cur, "general") &&
         !is_keyword(cur, "binary") && !is_keyword(cur, "end")) {
    std::string row_name;
    if (tok.peek() == ":") {
      row_name = cur;
      (void)tok.next();
      cur = tok.next();
    }
    std::vector<RowEntry> entries;
    cur = read_expression(cur, entries);
    RowType type;
    if (cur == "<=" || cur == "<") type = RowType::kLe;
    else if (cur == ">=" || cur == ">") type = RowType::kGe;
    else if (cur == "=") type = RowType::kEq;
    else throw std::runtime_error("lp: expected relation in constraint, got '" + cur + "'");
    std::string rhs_tok = tok.next();
    double rhs_sign = 1.0;
    while (rhs_tok == "-" || rhs_tok == "+") {
      if (rhs_tok == "-") rhs_sign = -rhs_sign;
      rhs_tok = tok.next();
    }
    if (!is_number(rhs_tok)) throw std::runtime_error("lp: expected rhs, got '" + rhs_tok + "'");
    model.add_row(row_name, type, rhs_sign * std::stod(rhs_tok), std::move(entries));
    cur = tok.next();
  }

  // Bounds.
  if (is_keyword(cur, "bounds")) {
    cur = tok.next();
    while (!cur.empty() && !is_keyword(cur, "general") && !is_keyword(cur, "binary") &&
           !is_keyword(cur, "end")) {
      // Forms: "lo <= x <= hi", "x <= hi", "x >= lo", "x free".
      double sign = 1.0;
      while (cur == "-" || cur == "+") {
        if (cur == "-") sign = -sign;
        cur = tok.next();
      }
      if (is_number(cur)) {
        const double lo = sign * std::stod(cur);
        if (tok.next() != "<=") throw std::runtime_error("lp: malformed bound");
        const std::string var = tok.next();
        const int col = column_of(var);
        double hi = model.column(col).upper;
        if (tok.peek() == "<=") {
          (void)tok.next();
          std::string hi_tok = tok.next();
          double hs = 1.0;
          while (hi_tok == "-" || hi_tok == "+") {
            if (hi_tok == "-") hs = -hs;
            hi_tok = tok.next();
          }
          hi = hs * std::stod(hi_tok);
        }
        model.set_bounds(col, lo, hi);
      } else {
        const int col = column_of(cur);
        const std::string rel = tok.next();
        if (is_keyword(rel, "free")) {
          model.set_bounds(col, -kInf, kInf);
        } else {
          std::string val_tok = tok.next();
          double vs = 1.0;
          while (val_tok == "-" || val_tok == "+") {
            if (val_tok == "-") vs = -vs;
            val_tok = tok.next();
          }
          const double value = vs * std::stod(val_tok);
          if (rel == "<=" || rel == "<") model.set_bounds(col, model.column(col).lower, value);
          else if (rel == ">=" || rel == ">") model.set_bounds(col, value, model.column(col).upper);
          else if (rel == "=") model.set_bounds(col, value, value);
          else throw std::runtime_error("lp: malformed bound relation '" + rel + "'");
        }
      }
      cur = tok.next();
    }
  }

  // General / Binary sections.
  while (!cur.empty() && !is_keyword(cur, "end")) {
    if (is_keyword(cur, "general") || is_keyword(cur, "binary")) {
      const bool binary = is_keyword(cur, "binary");
      cur = tok.next();
      while (!cur.empty() && !is_keyword(cur, "end") && !is_keyword(cur, "general") &&
             !is_keyword(cur, "binary")) {
        const int col = column_of(cur);
        // Mutating the type requires rebuilding bounds for binaries.
        const Column& c = model.column(col);
        const double lo = binary ? std::max(0.0, c.lower) : c.lower;
        const double hi = binary ? std::min(1.0, c.upper) : c.upper;
        model.set_bounds(col, lo, hi);
        // There's no direct type setter; emulate by re-adding? Model stores
        // type in Column — add a setter instead.
        model.set_type(col, binary ? VarType::kBinary : VarType::kInteger);
        cur = tok.next();
      }
    } else {
      throw std::runtime_error("lp: unexpected token '" + cur + "'");
    }
  }
  return model;
}

}  // namespace insched::lp
