#pragma once

// Linear/mixed-integer model container. Columns are variables with bounds
// (+-infinity allowed), rows are linear constraints. The same Model feeds the
// pure-LP simplex (integrality ignored) and the branch-and-bound MIP solver.

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace insched::lp {

inline constexpr double kInf = std::numeric_limits<double>::infinity();

enum class Sense { kMinimize, kMaximize };
enum class RowType { kLe, kGe, kEq };
enum class VarType { kContinuous, kInteger, kBinary };

/// Optional structure hint attached to a row by the model builder. Cut
/// separators use it to go straight to the rows a cut family targets
/// (knapsack covers on budget rows, GUB/clique cuts on interval windows)
/// instead of pattern-scanning the whole matrix; kGeneric rows are still
/// scanned, so hints are an accelerator, never a correctness requirement.
enum class RowKind : std::uint8_t {
  kGeneric,   ///< no structural promise
  kBudget,    ///< additive resource budget (paper Eqs 2-8 collapsed rows)
  kInterval,  ///< GUB/cardinality window: sum of binaries <= small rhs (Eq 9)
};

struct Column {
  std::string name;
  double lower = 0.0;
  double upper = kInf;
  double objective = 0.0;
  VarType type = VarType::kContinuous;
};

struct RowEntry {
  int column = -1;
  double coeff = 0.0;
};

struct Row {
  std::string name;
  RowType type = RowType::kLe;
  RowKind kind = RowKind::kGeneric;
  double rhs = 0.0;
  std::vector<RowEntry> entries;
};

class Model {
 public:
  /// Adds a variable; returns its column index.
  int add_column(std::string name, double lower, double upper, double objective,
                 VarType type = VarType::kContinuous);

  /// Adds a constraint with the given entries; returns its row index.
  /// Duplicate column indices within one row are summed.
  int add_row(std::string name, RowType type, double rhs, std::vector<RowEntry> entries);

  /// Appends one coefficient to an existing row.
  void add_entry(int row, int column, double coeff);

  void set_sense(Sense sense) noexcept { sense_ = sense; }
  [[nodiscard]] Sense sense() const noexcept { return sense_; }

  void set_objective_constant(double c) noexcept { obj_constant_ = c; }
  [[nodiscard]] double objective_constant() const noexcept { return obj_constant_; }

  void set_objective(int column, double coeff);
  void set_bounds(int column, double lower, double upper);
  void set_type(int column, VarType type);
  void set_row_kind(int row, RowKind kind);
  /// Overwrites the coefficient of the `entry_index`-th entry of `row`
  /// (presolve coefficient tightening; does not add/remove entries).
  void set_row_coeff(int row, int entry_index, double coeff);
  void set_row_rhs(int row, double rhs);

  [[nodiscard]] int num_columns() const noexcept { return static_cast<int>(columns_.size()); }
  [[nodiscard]] int num_rows() const noexcept { return static_cast<int>(rows_.size()); }
  [[nodiscard]] const Column& column(int j) const { return columns_.at(static_cast<std::size_t>(j)); }
  [[nodiscard]] const Row& row(int i) const { return rows_.at(static_cast<std::size_t>(i)); }
  [[nodiscard]] const std::vector<Column>& columns() const noexcept { return columns_; }
  [[nodiscard]] const std::vector<Row>& rows() const noexcept { return rows_; }

  [[nodiscard]] bool has_integers() const noexcept;

  /// Evaluates the objective (including constant) at a point.
  [[nodiscard]] double objective_value(const std::vector<double>& x) const;

  /// Evaluates row activity sum(a_ij x_j).
  [[nodiscard]] double row_activity(int row, const std::vector<double>& x) const;

  /// True when `x` satisfies all rows and bounds within `tol`, and integral
  /// columns are integral within `tol`.
  [[nodiscard]] bool is_feasible(const std::vector<double>& x, double tol = 1e-6) const;

  /// Human-readable dump (LP-format-like) for debugging.
  [[nodiscard]] std::string to_string() const;

 private:
  Sense sense_ = Sense::kMinimize;
  double obj_constant_ = 0.0;
  std::vector<Column> columns_;
  std::vector<Row> rows_;
};

}  // namespace insched::lp
