#pragma once

// Sparse revised simplex with bounded variables: a two-phase *primal* cold
// start (artificial variables, phase-1 infeasibility minimization) and a
// *dual* warm-start path that re-solves a bound-perturbed problem from a
// given basis. The LP engine under the branch-and-bound MIP solver: the
// scheduling MILPs the paper solves with CPLEX are solved here instead.
//
// Scope: sparse LU basis factorization with product-form eta updates
// (factor.hpp), hyper-sparse FTRAN/BTRAN, periodic refactorization,
// incremental dual updates, and partial pricing over rotating column blocks
// with devex-weighted scores plus a Bland's-rule fallback for anti-cycling.
// Sized for the staircase time-expanded models this library produces
// (thousands of rows with a handful of nonzeros each).
//
// Warm starts: branch-and-bound children differ from their parent only in
// one tightened column bound, which keeps the parent's optimal basis dual
// feasible. `WarmSimplex` keeps a per-thread workspace bound to one base
// model and re-solves `base + bound overrides` with the dual simplex from a
// `Basis` snapshot (optionally seeded with the parent's `Factorization` to
// skip refactorization).
//
// Resilience: numerical trouble is first *detected* (residual checks after
// every refactorization and at optimal exits, self-validating infeasibility
// proofs, stall counters) and then *recovered* through a bounded ladder —
// refactorization with a tightened Markowitz threshold, singular-basis
// repair by slack substitution, anti-cycling bound perturbation with an
// exact clean-up phase, and a full in-engine re-solve (docs/ROBUSTNESS.md).
// Only when the ladder is exhausted does kNumericalFailure escape to the
// caller, which falls back to the cold primal path. Every rung taken is
// counted in SimplexResult::recovery.

#include <memory>
#include <string>
#include <vector>

#include "insched/lp/basis.hpp"
#include "insched/lp/model.hpp"

namespace insched::lp {

enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  kNumericalFailure,
};

[[nodiscard]] const char* to_string(SolveStatus status) noexcept;

struct SimplexOptions {
  double pivot_tol = 1e-9;        ///< minimum |pivot| accepted
  double feasibility_tol = 1e-7;  ///< bound/row violation tolerance
  double optimality_tol = 1e-9;   ///< reduced-cost tolerance
  int max_iterations = 200000;    ///< across both phases
  int refactor_interval = 128;    ///< pivots between basis refactorizations
  int stall_limit = 64;           ///< degenerate pivots before Bland's rule
  int price_block_size = 512;     ///< partial-pricing block (<= 0: full Dantzig scan)
  bool collect_basis = false;     ///< export the optimal basis + factorization
  bool want_duals = true;         ///< compute duals/reduced costs on optimal exit
  bool enable_recovery = true;    ///< run the numerical-recovery ladder
  int max_recoveries = 8;         ///< ladder invocations per solve before giving up
};

/// Counters of the numerical-recovery ladder: every detection event and
/// every rung taken during one solve (see docs/ROBUSTNESS.md).
struct RecoveryStats {
  long refactor_tightened = 0;  ///< refactorization retries with tightened tau
  long singular_repairs = 0;    ///< slack columns substituted into a singular basis
  long perturbations = 0;       ///< anti-cycling bound perturbations applied
  long cleanups = 0;            ///< perturbation clean-up phases run
  long residual_failures = 0;   ///< A x = b drift detections
  long resolves = 0;            ///< in-engine re-solve restarts

  [[nodiscard]] long total() const noexcept {
    return refactor_tightened + singular_repairs + perturbations + residual_failures +
           resolves;
  }
  void add(const RecoveryStats& other) noexcept {
    refactor_tightened += other.refactor_tightened;
    singular_repairs += other.singular_repairs;
    perturbations += other.perturbations;
    cleanups += other.cleanups;
    residual_failures += other.residual_failures;
    resolves += other.resolves;
  }
};

struct SimplexResult {
  SolveStatus status = SolveStatus::kNumericalFailure;
  double objective = 0.0;              ///< in the model's own sense
  std::vector<double> x;               ///< structural variable values
  std::vector<double> duals;           ///< one per row (model sense)
  std::vector<double> reduced_costs;   ///< one per structural column (model sense)
  int iterations = 0;
  int phase1_iterations = 0;
  /// Factorization observability for this solve: ftran/btran call counts,
  /// average right-hand-side density, eta-chain length, refactorizations.
  FactorStats factor_stats;
  /// Recovery-ladder actions taken during this solve (all zero on a clean
  /// run); nonzero counters with kOptimal mean the ladder worked.
  RecoveryStats recovery;

  /// Optimal basis snapshot; filled when `collect_basis` is set, the solve
  /// proved optimality, and no artificial variable remained basic.
  Basis basis;
  /// Basis-inverse snapshot matching `basis` (same conditions).
  std::shared_ptr<const Factorization> factor;

  [[nodiscard]] bool optimal() const noexcept { return status == SolveStatus::kOptimal; }
};

/// Solves the LP relaxation of `model` (integrality marks are ignored) with
/// the two-phase primal simplex from a fresh slack basis.
[[nodiscard]] SimplexResult solve_lp(const Model& model, const SimplexOptions& options = {});

/// One-shot dual warm start: re-solves `model` starting from `start`.
/// Convenience wrapper over WarmSimplex for tests and external callers.
[[nodiscard]] SimplexResult solve_lp_dual(const Model& model, const Basis& start,
                                          const SimplexOptions& options = {});

/// Reusable solve workspace bound to one base model. Not thread-safe; the
/// MIP search keeps one per worker thread. Both entry points solve
/// `base + overrides` where overrides replace column bounds.
class WarmSimplex {
 public:
  explicit WarmSimplex(const Model& base, const SimplexOptions& options = {});
  ~WarmSimplex();
  WarmSimplex(WarmSimplex&&) noexcept;
  WarmSimplex& operator=(WarmSimplex&&) noexcept;

  /// Dual-simplex re-solve from `start` (parent basis). `hint`, when given,
  /// must be the factorization captured together with `start`; it skips the
  /// initial refactorization. Returns kNumericalFailure when the basis
  /// cannot be loaded — callers should fall back to solve_cold.
  [[nodiscard]] SimplexResult solve_dual(const std::vector<BoundOverride>& overrides,
                                         const Basis& start,
                                         const Factorization* hint = nullptr);

  /// Two-phase primal cold solve on the same workspace (the fallback path).
  [[nodiscard]] SimplexResult solve_cold(const std::vector<BoundOverride>& overrides = {});

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace insched::lp
