#pragma once

// Dense revised primal simplex with bounded variables and a two-phase start
// (artificial variables, phase-1 infeasibility minimization). This is the LP
// engine under the branch-and-bound MIP solver: the scheduling MILPs the
// paper solves with CPLEX are solved here instead.
//
// Scope: exact dense linear algebra with an explicitly maintained basis
// inverse, periodic refactorization, Dantzig pricing with a Bland's-rule
// fallback for anti-cycling. Intended for the small/medium instances this
// library produces (tens to a few thousand variables), not for general
// large-scale LP.

#include <string>
#include <vector>

#include "insched/lp/model.hpp"

namespace insched::lp {

enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  kNumericalFailure,
};

[[nodiscard]] const char* to_string(SolveStatus status) noexcept;

struct SimplexOptions {
  double pivot_tol = 1e-9;        ///< minimum |pivot| accepted
  double feasibility_tol = 1e-7;  ///< bound/row violation tolerance
  double optimality_tol = 1e-9;   ///< reduced-cost tolerance
  int max_iterations = 200000;    ///< across both phases
  int refactor_interval = 128;    ///< pivots between basis re-inversions
  int stall_limit = 64;           ///< degenerate pivots before Bland's rule
};

struct SimplexResult {
  SolveStatus status = SolveStatus::kNumericalFailure;
  double objective = 0.0;              ///< in the model's own sense
  std::vector<double> x;               ///< structural variable values
  std::vector<double> duals;           ///< one per row (model sense)
  std::vector<double> reduced_costs;   ///< one per structural column (model sense)
  int iterations = 0;
  int phase1_iterations = 0;

  [[nodiscard]] bool optimal() const noexcept { return status == SolveStatus::kOptimal; }
};

/// Solves the LP relaxation of `model` (integrality marks are ignored).
[[nodiscard]] SimplexResult solve_lp(const Model& model, const SimplexOptions& options = {});

}  // namespace insched::lp
