#pragma once

// Small descriptive-statistics helpers used by the profiler, the performance
// model and the benches.

#include <cstddef>
#include <span>
#include <vector>

namespace insched {

struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
  double sum = 0.0;
};

/// Summarizes `values`; empty input yields a zeroed Summary.
[[nodiscard]] Summary summarize(std::span<const double> values);

/// Linear-interpolated percentile, q in [0, 100]. Precondition: non-empty.
[[nodiscard]] double percentile(std::span<const double> values, double q);

/// Mean absolute relative error of `predicted` vs `actual` (same length,
/// actual entries non-zero). Used to evaluate interpolation accuracy (Fig 2).
[[nodiscard]] double mean_relative_error(std::span<const double> predicted,
                                         std::span<const double> actual);

/// Max absolute relative error; same preconditions as mean_relative_error.
[[nodiscard]] double max_relative_error(std::span<const double> predicted,
                                        std::span<const double> actual);

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;
};

/// Ordinary least squares fit y = slope*x + intercept. Needs >= 2 points.
[[nodiscard]] LinearFit linear_fit(std::span<const double> x, std::span<const double> y);

/// Online accumulator (Welford) for streaming mean/variance.
class Accumulator {
 public:
  void add(double x) noexcept;
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept;  ///< sample variance
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

}  // namespace insched
