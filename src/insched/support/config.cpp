#include "insched/support/config.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "insched/support/string_util.hpp"

namespace insched {

namespace {

std::string lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

}  // namespace

std::optional<double> parse_number_with_units(std::string_view text) {
  const std::string_view trimmed = trim(text);
  if (trimmed.empty()) return std::nullopt;

  // Split into numeric prefix and unit suffix.
  std::size_t pos = 0;
  while (pos < trimmed.size() &&
         (std::isdigit(static_cast<unsigned char>(trimmed[pos])) || trimmed[pos] == '+' ||
          trimmed[pos] == '-' || trimmed[pos] == '.' || trimmed[pos] == 'e' ||
          trimmed[pos] == 'E' ||
          ((trimmed[pos] == '+' || trimmed[pos] == '-') && pos > 0 &&
           (trimmed[pos - 1] == 'e' || trimmed[pos - 1] == 'E'))))
    ++pos;
  // Back off if an exponent marker was actually the start of a unit ("s"
  // cannot be confused, but "e" alone could); keep it simple: retry parse.
  double value = 0.0;
  std::string_view digits = trimmed.substr(0, pos);
  auto [ptr, ec] = std::from_chars(digits.data(), digits.data() + digits.size(), value);
  if (ec != std::errc() || ptr != digits.data() + digits.size()) {
    // Retry without a trailing 'e'/'E' swallowed from a unit suffix.
    if (!digits.empty() && (digits.back() == 'e' || digits.back() == 'E')) {
      digits = digits.substr(0, digits.size() - 1);
      --pos;
      auto [p2, e2] = std::from_chars(digits.data(), digits.data() + digits.size(), value);
      if (e2 != std::errc() || p2 != digits.data() + digits.size()) return std::nullopt;
    } else {
      return std::nullopt;
    }
  }

  const std::string unit = lower(trim(trimmed.substr(pos)));
  if (unit.empty()) return value;
  if (unit == "kb") return value * 1e3;
  if (unit == "mb") return value * 1e6;
  if (unit == "gb") return value * 1e9;
  if (unit == "tb") return value * 1e12;
  if (unit == "kib") return value * 1024.0;
  if (unit == "mib") return value * 1024.0 * 1024.0;
  if (unit == "gib") return value * 1024.0 * 1024.0 * 1024.0;
  if (unit == "tib") return value * 1024.0 * 1024.0 * 1024.0 * 1024.0;
  if (unit == "b" || unit == "bytes") return value;
  if (unit == "s" || unit == "sec" || unit == "seconds") return value;
  if (unit == "ms") return value * 1e-3;
  if (unit == "us") return value * 1e-6;
  if (unit == "min" || unit == "m") return value * 60.0;
  if (unit == "h" || unit == "hours") return value * 3600.0;
  if (unit == "%" || unit == "percent") return value / 100.0;
  return std::nullopt;
}

void ConfigSection::set(std::string key, std::string value) {
  entries_.emplace_back(std::move(key), std::move(value));
}

bool ConfigSection::has(std::string_view key) const noexcept {
  for (const auto& [k, v] : entries_)
    if (k == key) return true;
  return false;
}

std::optional<std::string> ConfigSection::get(std::string_view key) const {
  // Last assignment wins, matching common INI semantics.
  std::optional<std::string> found;
  for (const auto& [k, v] : entries_)
    if (k == key) found = v;
  return found;
}

std::string ConfigSection::get_string(std::string_view key, const std::string& fallback) const {
  const auto v = get(key);
  return v ? *v : fallback;
}

double ConfigSection::get_number(std::string_view key, double fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  const auto parsed = parse_number_with_units(*v);
  if (!parsed)
    throw std::runtime_error(format("config: key '%.*s' has non-numeric value '%s'",
                                    static_cast<int>(key.size()), key.data(), v->c_str()));
  return *parsed;
}

long ConfigSection::get_integer(std::string_view key, long fallback) const {
  return std::lround(get_number(key, static_cast<double>(fallback)));
}

bool ConfigSection::get_bool(std::string_view key, bool fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  const std::string s = lower(trim(*v));
  if (s == "true" || s == "yes" || s == "on" || s == "1") return true;
  if (s == "false" || s == "no" || s == "off" || s == "0") return false;
  throw std::runtime_error(format("config: key '%.*s' has non-boolean value '%s'",
                                  static_cast<int>(key.size()), key.data(), v->c_str()));
}

Config Config::parse(std::string_view text) {
  Config config;
  config.sections_.emplace_back("");  // the unnamed preamble section
  int line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find('\n', start);
    std::string_view line =
        text.substr(start, end == std::string_view::npos ? std::string_view::npos
                                                         : end - start);
    start = end == std::string_view::npos ? text.size() + 1 : end + 1;
    ++line_no;

    // Strip comments (# and ;) and whitespace.
    const std::size_t comment = line.find_first_of("#;");
    if (comment != std::string_view::npos) line = line.substr(0, comment);
    line = trim(line);
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']')
        throw std::runtime_error(format("config line %d: unterminated section header", line_no));
      config.sections_.emplace_back(std::string(trim(line.substr(1, line.size() - 2))));
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos)
      throw std::runtime_error(format("config line %d: expected key = value", line_no));
    const std::string key{trim(line.substr(0, eq))};
    const std::string value{trim(line.substr(eq + 1))};
    if (key.empty())
      throw std::runtime_error(format("config line %d: empty key", line_no));
    config.sections_.back().set(key, value);
  }
  return config;
}

Config Config::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("config: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

const ConfigSection* Config::section(std::string_view name) const {
  for (const ConfigSection& s : sections_)
    if (s.name() == name) return &s;
  return nullptr;
}

std::vector<const ConfigSection*> Config::sections(std::string_view name) const {
  std::vector<const ConfigSection*> out;
  for (const ConfigSection& s : sections_)
    if (s.name() == name) out.push_back(&s);
  return out;
}

}  // namespace insched
