#pragma once

// Contract-checking macros in the spirit of the C++ Core Guidelines GSL
// `Expects`/`Ensures`. Violations are programming errors: they abort with a
// message rather than throwing, since the library cannot recover from a
// broken precondition.

#include <cstdio>
#include <cstdlib>

namespace insched {

[[noreturn]] inline void contract_violation(const char* kind, const char* expr,
                                            const char* file, int line) {
  std::fprintf(stderr, "insched: %s failed: %s (%s:%d)\n", kind, expr, file, line);
  std::abort();
}

}  // namespace insched

#define INSCHED_EXPECTS(cond)                                                \
  ((cond) ? static_cast<void>(0)                                             \
          : ::insched::contract_violation("precondition", #cond, __FILE__,   \
                                          __LINE__))

#define INSCHED_ENSURES(cond)                                                \
  ((cond) ? static_cast<void>(0)                                             \
          : ::insched::contract_violation("postcondition", #cond, __FILE__,  \
                                          __LINE__))

#define INSCHED_ASSERT(cond)                                                 \
  ((cond) ? static_cast<void>(0)                                             \
          : ::insched::contract_violation("assertion", #cond, __FILE__,      \
                                          __LINE__))
