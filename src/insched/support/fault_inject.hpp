#pragma once

// Deterministic fault-injection harness for the numerical-resilience layer
// (docs/ROBUSTNESS.md). Production code places named hook points at the
// spots where hardware, round-off or I/O can genuinely fail; tests arm a
// hook to fire at its Nth observed event and assert that the recovery
// ladder restores the documented behaviour. With no hook armed and no
// counting scope active, a hook call is a single relaxed atomic load.
//
// All state is process-global and atomic: hooks may be hit concurrently
// from branch-and-bound worker threads, and arming is single-shot — once
// the armed event fires the hook disarms itself, so one injection yields
// exactly one failure regardless of thread interleaving.
//
// Arming sources, in precedence order:
//   1. explicit arm() / ScopedFault in tests,
//   2. mip::MipOptions::fault_spec (armed at solve_mip entry),
//   3. the INSCHED_FAULT environment variable (parsed once at startup).
// Specs use the syntax "hook:N[:count][,hook:N[:count]...]" where `hook`
// is a name from to_string(), `N` is the 1-based event index of the first
// failure and `count` (default 1) makes the next `count` events fail in a
// row — consecutive failures are what pushes the recovery ladder past its
// first rung.

#include <string>

namespace insched::fault {

enum class Hook : int {
  kLuFactorize = 0,  ///< "lu_factorize": LU reports the basis as singular
  kLuFtran,          ///< "lu_ftran": FTRAN solution corrupted (drift)
  kLuBtran,          ///< "lu_btran": BTRAN solution corrupted (drift)
  kDualPivot,        ///< "dual_pivot": a dual-simplex solve loses its pivot
  kCutSeparation,    ///< "cut_separation": a separation round yields nothing
  kRuntimeAnalyze,   ///< "runtime_analyze": IAnalysis::analyze throws
  kRuntimeOutput,    ///< "runtime_output": IAnalysis::output throws
  kCount,
};

[[nodiscard]] const char* to_string(Hook hook) noexcept;

/// Fast path guard: true while any hook is armed or a counting scope is
/// active. Hook sites may (but need not) check it before should_fail().
[[nodiscard]] bool enabled() noexcept;

/// Counts one event at `hook` and reports whether the armed failure window
/// covers it. Events are only counted while enabled(), so event indices are
/// stable across runs that arm the same spec.
[[nodiscard]] bool should_fail(Hook hook) noexcept;

/// Events observed at `hook` since the last reset_counts().
[[nodiscard]] long events(Hook hook) noexcept;

/// Failures actually injected at `hook` since the last reset_counts().
[[nodiscard]] long injected(Hook hook) noexcept;

/// Arms `hook` to fail at events [nth, nth + count); nth <= 0 or count <= 0
/// disarms the hook. Arming resets the hook's event counter so the index is
/// relative to the arming point.
void arm(Hook hook, long nth, long count = 1) noexcept;
void disarm_all() noexcept;
void reset_counts() noexcept;

/// Parses and arms a "hook:N[:count][,...]" spec. Returns false (arming
/// nothing) on a malformed spec or unknown hook name. An empty spec is
/// valid and arms nothing.
bool arm_from_spec(const std::string& spec);

/// RAII: enables event counting without arming anything, so a clean run can
/// report how many events each hook emits (the sweep bound for tests).
class ScopedCounting {
 public:
  ScopedCounting() noexcept;
  ~ScopedCounting();
  ScopedCounting(const ScopedCounting&) = delete;
  ScopedCounting& operator=(const ScopedCounting&) = delete;
};

/// RAII: arms one hook on construction, disarms everything and resets the
/// counters on destruction.
class ScopedFault {
 public:
  ScopedFault(Hook hook, long nth, long count = 1) noexcept;
  ~ScopedFault();
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;
};

}  // namespace insched::fault
