#pragma once

// xoshiro256** PRNG (Blackman & Vigna). Deterministic across platforms —
// unlike std::mt19937 + std::uniform_real_distribution, whose outputs are
// implementation-defined — so tests and synthetic workloads reproduce
// bit-identically everywhere.

#include <cmath>
#include <cstdint>

#include "insched/support/assert.hpp"

namespace insched {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    // SplitMix64 expansion of the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  [[nodiscard]] std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Precondition: n > 0.
  [[nodiscard]] std::uint64_t uniform_index(std::uint64_t n) noexcept {
    INSCHED_ASSERT(n > 0);
    // Multiply-shift rejection-free mapping; bias is < 2^-64 per draw, which
    // is negligible for workload generation.
    return static_cast<std::uint64_t>((static_cast<__uint128_t>(next_u64()) * n) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    INSCHED_ASSERT(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    uniform_index(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Standard normal via Marsaglia polar method.
  [[nodiscard]] double normal() noexcept {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = sqrt_ratio(s);
    spare_ = v * factor;
    have_spare_ = true;
    return u * factor;
  }

  [[nodiscard]] double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  [[nodiscard]] bool bernoulli(double p) noexcept { return uniform() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  static double sqrt_ratio(double s) noexcept { return std::sqrt(-2.0 * std::log(s) / s); }

  std::uint64_t state_[4]{};
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace insched
