#pragma once

// Clang -Wthread-safety annotation macros and annotated synchronization
// wrappers (docs/STATIC_ANALYSIS.md).
//
// The concurrent solver core (mip::CutPool, mip::NodePool, the factor
// cache, incumbent state, the support thread pool) declares its locking
// discipline with these macros so a Clang build with -Wthread-safety
// -Werror rejects a mis-locked access at compile time — the static
// counterpart of the TSan smoke pass, which only catches a race when a test
// happens to interleave it. On compilers without the attributes (GCC, MSVC)
// every macro expands to nothing and the wrappers behave exactly like the
// std primitives they wrap, so the annotations cost nothing off-Clang.
//
// Usage:
//   class INSCHED_CAPABILITY("mutex") ... — provided below as `Mutex`.
//   Mutex mu_;
//   int shared_ INSCHED_GUARDED_BY(mu_);
//   void touch() INSCHED_REQUIRES(mu_);     // caller must hold mu_
//   void api() INSCHED_EXCLUDES(mu_);       // caller must NOT hold mu_
//
// tools/check_thread_safety.sh compiles a deliberately mis-locked access
// and asserts Clang rejects it (the negative-compile gate registered as
// part of the static_analysis_smoke ctest target).

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by) && __has_attribute(acquire_capability)
#define INSCHED_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef INSCHED_THREAD_ANNOTATION
#define INSCHED_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

#define INSCHED_CAPABILITY(x) INSCHED_THREAD_ANNOTATION(capability(x))
#define INSCHED_SCOPED_CAPABILITY INSCHED_THREAD_ANNOTATION(scoped_lockable)
#define INSCHED_GUARDED_BY(x) INSCHED_THREAD_ANNOTATION(guarded_by(x))
#define INSCHED_PT_GUARDED_BY(x) INSCHED_THREAD_ANNOTATION(pt_guarded_by(x))
#define INSCHED_ACQUIRED_BEFORE(...) INSCHED_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define INSCHED_ACQUIRED_AFTER(...) INSCHED_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define INSCHED_REQUIRES(...) INSCHED_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define INSCHED_REQUIRES_SHARED(...) \
  INSCHED_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define INSCHED_ACQUIRE(...) INSCHED_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define INSCHED_ACQUIRE_SHARED(...) \
  INSCHED_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define INSCHED_RELEASE(...) INSCHED_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define INSCHED_RELEASE_SHARED(...) \
  INSCHED_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define INSCHED_TRY_ACQUIRE(...) INSCHED_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define INSCHED_EXCLUDES(...) INSCHED_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define INSCHED_ASSERT_CAPABILITY(x) INSCHED_THREAD_ANNOTATION(assert_capability(x))
#define INSCHED_RETURN_CAPABILITY(x) INSCHED_THREAD_ANNOTATION(lock_returned(x))
#define INSCHED_NO_THREAD_SAFETY_ANALYSIS INSCHED_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace insched {

/// std::mutex with the `capability` attribute so members can be declared
/// INSCHED_GUARDED_BY it. Zero-overhead: the wrapper is exactly one
/// std::mutex and every method forwards inline.
class INSCHED_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() INSCHED_ACQUIRE() { mu_.lock(); }
  void unlock() INSCHED_RELEASE() { mu_.unlock(); }
  bool try_lock() INSCHED_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock on a Mutex (the annotated replacement for
/// std::lock_guard / std::unique_lock). Supports explicit unlock()/lock()
/// cycles for drop-the-lock-around-work patterns; the destructor releases
/// only when the lock is currently held.
class INSCHED_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) INSCHED_ACQUIRE(mu) : mu_(mu), owned_(true) { mu_.lock(); }
  ~MutexLock() INSCHED_RELEASE() {
    if (owned_) mu_.unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Temporarily releases the mutex (e.g. to run a queued job).
  void unlock() INSCHED_RELEASE() {
    mu_.unlock();
    owned_ = false;
  }
  /// Re-acquires after unlock().
  void lock() INSCHED_ACQUIRE() {
    mu_.lock();
    owned_ = true;
  }

 private:
  Mutex& mu_;
  bool owned_;
};

/// Condition variable bound to `Mutex` holders. wait() declares
/// INSCHED_REQUIRES(mu): the caller provably holds the mutex, the wait
/// releases it atomically while blocked and re-acquires before returning —
/// the analysis treats the capability as held across the call, which
/// matches the caller-visible contract.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) INSCHED_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's MutexLock
  }
  template <typename Predicate>
  void wait(Mutex& mu, Predicate pred) INSCHED_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock, std::move(pred));
    lock.release();
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace insched
