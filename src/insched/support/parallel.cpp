#include "insched/support/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <thread>
#include <vector>

#include "insched/support/thread_annotations.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace insched {

namespace {
std::atomic<int> g_threads{0};

int default_threads() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}
}  // namespace

int hardware_threads() noexcept { return default_threads(); }

void set_thread_count(int count) noexcept { g_threads.store(count, std::memory_order_relaxed); }

int thread_count() noexcept {
  const int t = g_threads.load(std::memory_order_relaxed);
  return t > 0 ? t : default_threads();
}

void parallel_for(std::size_t n, const std::function<void(std::size_t, std::size_t)>& body,
                  std::size_t grain) {
  if (n == 0) return;
  const int threads =
      static_cast<int>(std::min<std::size_t>(static_cast<std::size_t>(thread_count()), n));
  if (threads == 1 || n < grain) {
    body(0, n);
    return;
  }
#ifdef _OPENMP
  const std::size_t chunk = (n + threads - 1) / threads;
#pragma omp parallel for num_threads(threads) schedule(static)
  for (int t = 0; t < threads; ++t) {
    const std::size_t begin = static_cast<std::size_t>(t) * chunk;
    const std::size_t end = std::min(begin + chunk, n);
    if (begin < end) body(begin, end);
  }
#else
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  const std::size_t chunk = (n + threads - 1) / threads;
  for (int t = 0; t < threads; ++t) {
    const std::size_t begin = static_cast<std::size_t>(t) * chunk;
    const std::size_t end = std::min(begin + chunk, n);
    if (begin < end) pool.emplace_back([&, begin, end] { body(begin, end); });
  }
  for (auto& th : pool) th.join();
#endif
}

namespace {

// Process-wide persistent worker pool behind parallel_run. Workers are
// spawned lazily up to the largest concurrency ever requested and park on a
// condition variable between jobs. submit() only hands a job to the pool
// when an idle worker is guaranteed to pick it up, so a caller that is
// itself a pool worker (nested parallelism) degrades to inline execution
// instead of deadlocking.
class TaskPool {
 public:
  static TaskPool& instance() {
    static TaskPool pool;
    return pool;
  }

  ~TaskPool() {
    std::vector<std::thread> workers;
    {
      MutexLock lock(mu_);
      stop_ = true;
      workers.swap(workers_);  // join outside the lock
    }
    cv_.notify_all();
    for (std::thread& t : workers) t.join();
  }

  void ensure_workers(int wanted) {
    MutexLock lock(mu_);
    const int cap = std::max(2 * hardware_threads(), 16);
    wanted = std::min(wanted, cap);
    while (static_cast<int>(workers_.size()) < wanted && !stop_)
      workers_.emplace_back([this] { worker_loop(); });
  }

  /// Queues `job` if an idle worker can take it immediately; returns false
  /// (job not queued) otherwise.
  bool try_submit(std::function<void()> job) {
    {
      MutexLock lock(mu_);
      if (stop_ || idle_ <= static_cast<int>(queue_.size())) return false;
      queue_.push_back(std::move(job));
    }
    cv_.notify_one();
    return true;
  }

  [[nodiscard]] int size() const {
    MutexLock lock(mu_);
    return static_cast<int>(workers_.size());
  }

 private:
  TaskPool() = default;

  void worker_loop() {
    MutexLock lock(mu_);
    ++idle_;
    while (true) {
      while (!stop_ && queue_.empty()) cv_.wait(mu_);
      if (stop_) break;
      std::function<void()> job = std::move(queue_.front());
      queue_.pop_front();
      --idle_;
      lock.unlock();
      job();
      lock.lock();
      ++idle_;
    }
  }

  mutable Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ INSCHED_GUARDED_BY(mu_);
  // Joined by the destructor; grown under mu_ (never shrunk while running).
  std::vector<std::thread> workers_ INSCHED_GUARDED_BY(mu_);
  int idle_ INSCHED_GUARDED_BY(mu_) = 0;
  bool stop_ INSCHED_GUARDED_BY(mu_) = false;
};

}  // namespace

void parallel_run(int threads, const std::function<void(int)>& worker) {
  threads = std::max(1, threads);
  if (threads == 1) {
    worker(0);
    return;
  }
  TaskPool& pool = TaskPool::instance();
  pool.ensure_workers(threads - 1);

  Mutex done_mu;
  CondVar done_cv;
  int remaining = threads - 1;
  auto finish_one = [&] {
    MutexLock lock(done_mu);
    if (--remaining == 0) done_cv.notify_one();
  };

  std::vector<int> inline_tids;
  for (int tid = 1; tid < threads; ++tid) {
    if (!pool.try_submit([&, tid] {
          worker(tid);
          finish_one();
        }))
      inline_tids.push_back(tid);
  }
  worker(0);
  for (const int tid : inline_tids) {
    worker(tid);
    finish_one();
  }
  MutexLock lock(done_mu);
  while (remaining != 0) done_cv.wait(done_mu);
}

int task_pool_size() noexcept { return TaskPool::instance().size(); }

double parallel_reduce_sum(std::size_t n, const std::function<double(std::size_t)>& term) {
  if (n == 0) return 0.0;
  if (thread_count() == 1 || n < 1024) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) total += term(i);
    return total;
  }
#ifdef _OPENMP
  double total = 0.0;
#pragma omp parallel for reduction(+ : total) num_threads(thread_count()) schedule(static)
  for (long long i = 0; i < static_cast<long long>(n); ++i)
    total += term(static_cast<std::size_t>(i));
  return total;
#else
  std::atomic<double> total{0.0};
  parallel_for(n, [&](std::size_t begin, std::size_t end) {
    double local = 0.0;
    for (std::size_t i = begin; i < end; ++i) local += term(i);
    double expected = total.load();
    while (!total.compare_exchange_weak(expected, expected + local)) {
    }
  });
  return total.load();
#endif
}

}  // namespace insched
