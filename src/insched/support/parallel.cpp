#include "insched/support/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace insched {

namespace {
std::atomic<int> g_threads{0};

int default_threads() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}
}  // namespace

int hardware_threads() noexcept { return default_threads(); }

void set_thread_count(int count) noexcept { g_threads.store(count, std::memory_order_relaxed); }

int thread_count() noexcept {
  const int t = g_threads.load(std::memory_order_relaxed);
  return t > 0 ? t : default_threads();
}

void parallel_for(std::size_t n, const std::function<void(std::size_t, std::size_t)>& body,
                  std::size_t grain) {
  if (n == 0) return;
  const int threads =
      static_cast<int>(std::min<std::size_t>(static_cast<std::size_t>(thread_count()), n));
  if (threads == 1 || n < grain) {
    body(0, n);
    return;
  }
#ifdef _OPENMP
  const std::size_t chunk = (n + threads - 1) / threads;
#pragma omp parallel for num_threads(threads) schedule(static)
  for (int t = 0; t < threads; ++t) {
    const std::size_t begin = static_cast<std::size_t>(t) * chunk;
    const std::size_t end = std::min(begin + chunk, n);
    if (begin < end) body(begin, end);
  }
#else
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  const std::size_t chunk = (n + threads - 1) / threads;
  for (int t = 0; t < threads; ++t) {
    const std::size_t begin = static_cast<std::size_t>(t) * chunk;
    const std::size_t end = std::min(begin + chunk, n);
    if (begin < end) pool.emplace_back([&, begin, end] { body(begin, end); });
  }
  for (auto& th : pool) th.join();
#endif
}

double parallel_reduce_sum(std::size_t n, const std::function<double(std::size_t)>& term) {
  if (n == 0) return 0.0;
  if (thread_count() == 1 || n < 1024) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) total += term(i);
    return total;
  }
#ifdef _OPENMP
  double total = 0.0;
#pragma omp parallel for reduction(+ : total) num_threads(thread_count()) schedule(static)
  for (long long i = 0; i < static_cast<long long>(n); ++i)
    total += term(static_cast<std::size_t>(i));
  return total;
#else
  std::atomic<double> total{0.0};
  parallel_for(n, [&](std::size_t begin, std::size_t end) {
    double local = 0.0;
    for (std::size_t i = begin; i < end; ++i) local += term(i);
    double expected = total.load();
    while (!total.compare_exchange_weak(expected, expected + local)) {
    }
  });
  return total.load();
#endif
}

}  // namespace insched
