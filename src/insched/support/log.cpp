#include "insched/support/log.hpp"

#include <atomic>

#include "insched/support/thread_annotations.hpp"

namespace insched {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
Mutex g_mutex;  // serializes writes so concurrent log lines never interleave

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

namespace detail {

bool log_enabled(LogLevel level) noexcept {
  return static_cast<int>(level) >= static_cast<int>(log_level());
}

void log_line(LogLevel level, const std::string& msg) {
  MutexLock lock(g_mutex);
  std::fprintf(stderr, "[insched %-5s] %s\n", level_name(level), msg.c_str());
}

}  // namespace detail
}  // namespace insched
