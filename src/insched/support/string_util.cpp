#include "insched/support/string_util.hpp"

#include <cstdarg>
#include <cstdio>
#include <cmath>

namespace insched {

std::string format(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      fields.emplace_back(text.substr(start));
      break;
    }
    fields.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return fields;
}

std::string_view trim(std::string_view text) noexcept {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v';
  };
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && is_space(text[begin])) ++begin;
  while (end > begin && is_space(text[end - 1])) --end;
  return text.substr(begin, end - begin);
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(items[i]);
  }
  return out;
}

std::string format_seconds(double seconds) {
  const double abs = std::fabs(seconds);
  if (abs < 1e-6) return format("%.1f ns", seconds * 1e9);
  if (abs < 1e-3) return format("%.2f us", seconds * 1e6);
  if (abs < 1.0) return format("%.2f ms", seconds * 1e3);
  if (abs < 120.0) return format("%.2f s", seconds);
  if (abs < 7200.0) return format("%.1f min", seconds / 60.0);
  return format("%.2f h", seconds / 3600.0);
}

std::string format_bytes(double bytes) {
  const double abs = std::fabs(bytes);
  if (abs < 1024.0) return format("%.0f B", bytes);
  if (abs < 1024.0 * 1024.0) return format("%.2f KiB", bytes / 1024.0);
  if (abs < 1024.0 * 1024.0 * 1024.0) return format("%.2f MiB", bytes / (1024.0 * 1024.0));
  return format("%.2f GiB", bytes / (1024.0 * 1024.0 * 1024.0));
}

}  // namespace insched
