#include "insched/support/csv.hpp"

#include <stdexcept>

#include "insched/support/string_util.hpp"

namespace insched {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_values(const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(format("%.10g", v));
  write_row(cells);
}

void CsvWriter::close() {
  if (out_.is_open()) out_.close();
}

}  // namespace insched
