#pragma once

// Minimal CSV writer for bench artifacts (plot-ready series).

#include <fstream>
#include <string>
#include <vector>

namespace insched {

class CsvWriter {
 public:
  /// Opens `path` for writing; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  void write_row(const std::vector<std::string>& cells);
  void write_values(const std::vector<double>& values);

  /// Flushes and closes. Called by the destructor if not called explicitly.
  void close();

 private:
  static std::string escape(const std::string& cell);
  std::ofstream out_;
};

}  // namespace insched
