#pragma once

// ASCII table renderer used by the experiment benches to print paper-style
// tables ("paper vs measured" rows) in a readable fixed-width layout.

#include <string>
#include <vector>

namespace insched {

class Table {
 public:
  explicit Table(std::string title = {}) : title_(std::move(title)) {}

  /// Sets the header row. Must be called before adding rows.
  void set_header(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Convenience: formats each cell with printf-style "%g"/"%s" free mix.
  template <typename... Cells>
  void add(Cells&&... cells) {
    add_row({to_cell(std::forward<Cells>(cells))...});
  }

  /// Renders with column widths fitted to content.
  [[nodiscard]] std::string render() const;

  /// Renders to stdout.
  void print() const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  static std::string to_cell(const std::string& s) { return s; }
  static std::string to_cell(const char* s) { return s; }
  static std::string to_cell(std::string&& s) { return std::move(s); }
  static std::string to_cell(double v);
  static std::string to_cell(int v);
  static std::string to_cell(long v);
  static std::string to_cell(unsigned long v);

  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace insched
