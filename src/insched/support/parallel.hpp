#pragma once

// Shared-memory parallel helpers. The analysis kernels are data-parallel
// loops with reductions — the same decomposition the paper's MPI kernels use
// (local work + MPI_Allreduce); here the "ranks" are OpenMP threads and the
// reduction is in shared memory.

#include <cstddef>
#include <functional>

namespace insched {

/// Number of worker threads the parallel helpers will use.
[[nodiscard]] int hardware_threads() noexcept;

/// Overrides the thread count (0 restores the hardware default). Benches use
/// this to study kernel scaling.
void set_thread_count(int count) noexcept;
[[nodiscard]] int thread_count() noexcept;

/// Runs body(begin, end) on chunked subranges of [0, n) across threads and
/// blocks until done. Falls back to serial when n < grain or one thread.
/// Use grain = 1 for coarse tasks (each index is substantial work).
void parallel_for(std::size_t n, const std::function<void(std::size_t, std::size_t)>& body,
                  std::size_t grain = 1024);

/// Parallel sum-reduction: each thread accumulates term(i) over its chunk.
[[nodiscard]] double parallel_reduce_sum(std::size_t n,
                                         const std::function<double(std::size_t)>& term);

/// Runs worker(tid) for tid in [0, threads) and blocks until all return.
/// tid 0 executes on the calling thread; the rest are dispatched to a
/// process-wide persistent worker pool (threads are created once and parked
/// between calls, so repeated short-lived parallel sections — e.g. one MIP
/// solve per scheduling query — pay wake-up cost, not thread-spawn cost).
/// When the pool is saturated (e.g. nested parallel sections) the remaining
/// workers run inline on the caller, so the call can never deadlock.
void parallel_run(int threads, const std::function<void(int)>& worker);

/// Number of persistent pool workers currently alive (for tests/telemetry).
[[nodiscard]] int task_pool_size() noexcept;

}  // namespace insched
