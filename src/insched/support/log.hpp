#pragma once

// Minimal leveled logger. Thread-safe at the line level (single write call).
// Intended for library diagnostics; benches and examples print their own
// structured output via support/table.hpp.

#include <cstdio>
#include <string>

namespace insched {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Global threshold; messages below it are discarded. Defaults to kWarn so
/// library internals stay quiet unless asked.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

namespace detail {
void log_line(LogLevel level, const std::string& msg);
[[nodiscard]] bool log_enabled(LogLevel level) noexcept;
}  // namespace detail

template <typename... Args>
void log(LogLevel level, const char* fmt, Args... args) {
  if (!detail::log_enabled(level)) return;
  char buf[1024];
  std::snprintf(buf, sizeof buf, fmt, args...);
  detail::log_line(level, buf);
}

#define INSCHED_LOG_DEBUG(...) ::insched::log(::insched::LogLevel::kDebug, __VA_ARGS__)
#define INSCHED_LOG_INFO(...) ::insched::log(::insched::LogLevel::kInfo, __VA_ARGS__)
#define INSCHED_LOG_WARN(...) ::insched::log(::insched::LogLevel::kWarn, __VA_ARGS__)
#define INSCHED_LOG_ERROR(...) ::insched::log(::insched::LogLevel::kError, __VA_ARGS__)

}  // namespace insched
