#include "insched/support/table.hpp"

#include <algorithm>
#include <cstdio>

#include "insched/support/assert.hpp"
#include "insched/support/string_util.hpp"

namespace insched {

void Table::set_header(std::vector<std::string> header) {
  INSCHED_EXPECTS(rows_.empty());
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  if (!header_.empty()) INSCHED_EXPECTS(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::to_cell(double v) { return format("%.4g", v); }
std::string Table::to_cell(int v) { return format("%d", v); }
std::string Table::to_cell(long v) { return format("%ld", v); }
std::string Table::to_cell(unsigned long v) { return format("%lu", v); }

std::string Table::render() const {
  const std::size_t cols = header_.empty() ? (rows_.empty() ? 0 : rows_[0].size())
                                           : header_.size();
  std::vector<std::size_t> width(cols, 0);
  const auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < std::min(cols, row.size()); ++c)
      width[c] = std::max(width[c], row[c].size());
  };
  if (!header_.empty()) widen(header_);
  for (const auto& row : rows_) widen(row);

  std::string out;
  const auto rule = [&] {
    out += '+';
    for (std::size_t c = 0; c < cols; ++c) {
      out.append(width[c] + 2, '-');
      out += '+';
    }
    out += '\n';
  };
  const auto emit = [&](const std::vector<std::string>& row) {
    out += '|';
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      out += ' ';
      out += cell;
      out.append(width[c] - cell.size() + 1, ' ');
      out += '|';
    }
    out += '\n';
  };

  if (!title_.empty()) {
    out += title_;
    out += '\n';
  }
  rule();
  if (!header_.empty()) {
    emit(header_);
    rule();
  }
  for (const auto& row : rows_) emit(row);
  rule();
  return out;
}

void Table::print() const { std::fputs(render().c_str(), stdout); }

}  // namespace insched
