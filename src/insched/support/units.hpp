#pragma once

// Unit helpers. Times are plain `double` seconds and memory plain `double`
// bytes throughout the library; these helpers make call sites read naturally
// (`4.0 * GiB`) and keep conversion factors in one place.

namespace insched {

inline constexpr double KiB = 1024.0;
inline constexpr double MiB = 1024.0 * KiB;
inline constexpr double GiB = 1024.0 * MiB;
inline constexpr double TiB = 1024.0 * GiB;

inline constexpr double KB = 1e3;
inline constexpr double MB = 1e6;
inline constexpr double GB = 1e9;

inline constexpr double ms = 1e-3;
inline constexpr double us = 1e-6;

/// Converts bytes to GiB for display.
[[nodiscard]] constexpr double to_gib(double bytes) noexcept { return bytes / GiB; }

}  // namespace insched
