#include "insched/support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "insched/support/assert.hpp"

namespace insched {

Summary summarize(std::span<const double> values) {
  Summary s;
  if (values.empty()) return s;
  s.count = values.size();
  s.min = values[0];
  s.max = values[0];
  for (double v : values) {
    s.sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = s.sum / static_cast<double>(s.count);
  if (s.count > 1) {
    double ss = 0.0;
    for (double v : values) {
      const double d = v - s.mean;
      ss += d * d;
    }
    s.stddev = std::sqrt(ss / static_cast<double>(s.count - 1));
  }
  return s;
}

double percentile(std::span<const double> values, double q) {
  INSCHED_EXPECTS(!values.empty());
  INSCHED_EXPECTS(q >= 0.0 && q <= 100.0);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double mean_relative_error(std::span<const double> predicted,
                           std::span<const double> actual) {
  INSCHED_EXPECTS(predicted.size() == actual.size());
  INSCHED_EXPECTS(!actual.empty());
  double total = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    INSCHED_EXPECTS(actual[i] != 0.0);
    total += std::abs(predicted[i] - actual[i]) / std::abs(actual[i]);
  }
  return total / static_cast<double>(actual.size());
}

double max_relative_error(std::span<const double> predicted,
                          std::span<const double> actual) {
  INSCHED_EXPECTS(predicted.size() == actual.size());
  INSCHED_EXPECTS(!actual.empty());
  double worst = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    INSCHED_EXPECTS(actual[i] != 0.0);
    worst = std::max(worst, std::abs(predicted[i] - actual[i]) / std::abs(actual[i]));
  }
  return worst;
}

LinearFit linear_fit(std::span<const double> x, std::span<const double> y) {
  INSCHED_EXPECTS(x.size() == y.size());
  INSCHED_EXPECTS(x.size() >= 2);
  const auto n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  LinearFit fit;
  const double denom = n * sxx - sx * sx;
  INSCHED_EXPECTS(denom != 0.0);
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  if (ss_tot > 0.0) {
    double ss_res = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double r = y[i] - (fit.slope * x[i] + fit.intercept);
      ss_res += r * r;
    }
    fit.r2 = 1.0 - ss_res / ss_tot;
  } else {
    fit.r2 = 1.0;
  }
  return fit;
}

void Accumulator::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace insched
