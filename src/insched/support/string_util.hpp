#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace insched {

/// Formats with printf semantics into a std::string.
[[nodiscard]] std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Splits on a single-character delimiter; keeps empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view text, char delim);

/// Strips ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view text) noexcept;

/// Joins items with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& items, std::string_view sep);

/// Human-readable seconds: "12.3 ms", "4.56 s", "1 h 02 m".
[[nodiscard]] std::string format_seconds(double seconds);

/// Human-readable bytes: "1.50 GiB".
[[nodiscard]] std::string format_bytes(double bytes);

}  // namespace insched
