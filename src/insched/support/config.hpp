#pragma once

// Minimal INI-style configuration reader used by the command-line planner:
//
//   # comment
//   [section]          ; repeated section names create repeated sections
//   key = value
//
// Values are kept as strings; typed getters parse on access. Sections with
// the same name are preserved in order (used for repeated [analysis] blocks).

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace insched {

class ConfigSection {
 public:
  ConfigSection() = default;
  explicit ConfigSection(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  void set(std::string key, std::string value);
  [[nodiscard]] bool has(std::string_view key) const noexcept;

  [[nodiscard]] std::optional<std::string> get(std::string_view key) const;
  [[nodiscard]] std::string get_string(std::string_view key,
                                       const std::string& fallback = {}) const;
  /// Parses a double; accepts unit suffixes KB/MB/GB/TB (decimal) and
  /// KiB/MiB/GiB (binary), e.g. "16 GiB", "4.5GB", "250ms", "2h".
  [[nodiscard]] double get_number(std::string_view key, double fallback) const;
  [[nodiscard]] long get_integer(std::string_view key, long fallback) const;
  [[nodiscard]] bool get_bool(std::string_view key, bool fallback) const;

  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>& entries()
      const noexcept {
    return entries_;
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> entries_;
};

class Config {
 public:
  /// Parses text; throws std::runtime_error with a line number on syntax
  /// errors. Keys before any [section] land in an unnamed section "".
  static Config parse(std::string_view text);

  /// Loads and parses a file; throws std::runtime_error if unreadable.
  static Config load(const std::string& path);

  /// First section with this name, if any.
  [[nodiscard]] const ConfigSection* section(std::string_view name) const;

  /// All sections with this name, in file order.
  [[nodiscard]] std::vector<const ConfigSection*> sections(std::string_view name) const;

  [[nodiscard]] const std::vector<ConfigSection>& all() const noexcept { return sections_; }

 private:
  std::vector<ConfigSection> sections_;
};

/// Parses a number with an optional unit suffix (see ConfigSection::get_number).
/// Returns nullopt when the text is not a number.
[[nodiscard]] std::optional<double> parse_number_with_units(std::string_view text);

}  // namespace insched
