#include "insched/support/fault_inject.hpp"

#include <atomic>
#include <cstdlib>
#include <vector>

#include "insched/support/log.hpp"
#include "insched/support/string_util.hpp"

namespace insched::fault {

namespace {

constexpr int kHooks = static_cast<int>(Hook::kCount);

struct HookState {
  std::atomic<long> count{0};     ///< events observed while enabled
  std::atomic<long> first{0};     ///< first armed event index (0 = disarmed)
  std::atomic<long> remaining{0}; ///< failures left in the armed window
  std::atomic<long> fired{0};     ///< failures actually injected
};

HookState g_hooks[kHooks];
std::atomic<int> g_armed_hooks{0};
std::atomic<int> g_counting_scopes{0};

HookState& state_of(Hook hook) noexcept {
  return g_hooks[static_cast<int>(hook)];
}

// INSCHED_FAULT is parsed once, on the first enabled()/should_fail() call
// (a static-init-order-safe lazy read instead of a global constructor).
std::atomic<bool> g_env_parsed{false};

void parse_env_once() noexcept {
  bool expected = false;
  if (!g_env_parsed.compare_exchange_strong(expected, true)) return;
  const char* spec = std::getenv("INSCHED_FAULT");
  if (spec != nullptr && *spec != '\0' && !arm_from_spec(spec)) {
    INSCHED_LOG_WARN("ignoring malformed INSCHED_FAULT spec: %s", spec);
  }
}

}  // namespace

const char* to_string(Hook hook) noexcept {
  switch (hook) {
    case Hook::kLuFactorize: return "lu_factorize";
    case Hook::kLuFtran: return "lu_ftran";
    case Hook::kLuBtran: return "lu_btran";
    case Hook::kDualPivot: return "dual_pivot";
    case Hook::kCutSeparation: return "cut_separation";
    case Hook::kRuntimeAnalyze: return "runtime_analyze";
    case Hook::kRuntimeOutput: return "runtime_output";
    case Hook::kCount: break;
  }
  return "unknown";
}

bool enabled() noexcept {
  parse_env_once();
  return g_armed_hooks.load(std::memory_order_relaxed) > 0 ||
         g_counting_scopes.load(std::memory_order_relaxed) > 0;
}

bool should_fail(Hook hook) noexcept {
  if (!enabled()) return false;
  HookState& s = state_of(hook);
  const long event = s.count.fetch_add(1, std::memory_order_relaxed) + 1;
  const long first = s.first.load(std::memory_order_relaxed);
  if (first <= 0 || event < first) return false;
  // Claim one failure from the armed window; the last claim disarms the
  // hook so concurrent callers inject exactly `count` failures in total.
  long left = s.remaining.load(std::memory_order_relaxed);
  while (left > 0) {
    if (s.remaining.compare_exchange_weak(left, left - 1, std::memory_order_relaxed)) {
      if (left == 1) {
        s.first.store(0, std::memory_order_relaxed);
        g_armed_hooks.fetch_sub(1, std::memory_order_relaxed);
      }
      s.fired.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

long events(Hook hook) noexcept {
  return state_of(hook).count.load(std::memory_order_relaxed);
}

long injected(Hook hook) noexcept {
  return state_of(hook).fired.load(std::memory_order_relaxed);
}

void arm(Hook hook, long nth, long count) noexcept {
  HookState& s = state_of(hook);
  const bool was_armed = s.first.load(std::memory_order_relaxed) > 0;
  if (nth <= 0 || count <= 0) {
    if (was_armed) {
      s.first.store(0, std::memory_order_relaxed);
      s.remaining.store(0, std::memory_order_relaxed);
      g_armed_hooks.fetch_sub(1, std::memory_order_relaxed);
    }
    return;
  }
  s.count.store(0, std::memory_order_relaxed);
  s.remaining.store(count, std::memory_order_relaxed);
  s.first.store(nth, std::memory_order_relaxed);
  if (!was_armed) g_armed_hooks.fetch_add(1, std::memory_order_relaxed);
}

void disarm_all() noexcept {
  for (int h = 0; h < kHooks; ++h) arm(static_cast<Hook>(h), 0);
}

void reset_counts() noexcept {
  for (int h = 0; h < kHooks; ++h) {
    g_hooks[h].count.store(0, std::memory_order_relaxed);
    g_hooks[h].fired.store(0, std::memory_order_relaxed);
  }
}

bool arm_from_spec(const std::string& spec) {
  struct Parsed {
    Hook hook;
    long nth;
    long count;
  };
  std::vector<Parsed> parsed;
  for (const std::string& part : split(spec, ',')) {
    const std::string entry{trim(part)};
    if (entry.empty()) continue;
    const std::vector<std::string> fields = split(entry, ':');
    if (fields.size() < 2 || fields.size() > 3) return false;
    Hook hook = Hook::kCount;
    for (int h = 0; h < kHooks; ++h) {
      if (trim(fields[0]) == to_string(static_cast<Hook>(h))) {
        hook = static_cast<Hook>(h);
        break;
      }
    }
    if (hook == Hook::kCount) return false;
    char* end = nullptr;
    const long nth = std::strtol(fields[1].c_str(), &end, 10);
    if (end == fields[1].c_str() || *end != '\0' || nth <= 0) return false;
    long count = 1;
    if (fields.size() == 3) {
      count = std::strtol(fields[2].c_str(), &end, 10);
      if (end == fields[2].c_str() || *end != '\0' || count <= 0) return false;
    }
    parsed.push_back({hook, nth, count});
  }
  for (const Parsed& p : parsed) arm(p.hook, p.nth, p.count);
  return true;
}

ScopedCounting::ScopedCounting() noexcept {
  g_counting_scopes.fetch_add(1, std::memory_order_relaxed);
}

ScopedCounting::~ScopedCounting() {
  g_counting_scopes.fetch_sub(1, std::memory_order_relaxed);
}

ScopedFault::ScopedFault(Hook hook, long nth, long count) noexcept {
  arm(hook, nth, count);
}

ScopedFault::~ScopedFault() {
  disarm_all();
  reset_counts();
}

}  // namespace insched::fault
