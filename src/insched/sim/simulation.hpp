#pragma once

// Minimal simulation interface the in-situ runtime drives: advance one time
// step, report the size of a simulation output frame. Concrete simulations
// (the LAMMPS-like mini-MD, the FLASH-like Euler/Sedov grid) also expose
// their typed state, which the analysis kernels capture directly — exactly
// how in-situ analyses in LAMMPS/FLASH read simulation memory (Section 1).

#include <string>

namespace insched::sim {

class ISimulation {
 public:
  virtual ~ISimulation() = default;

  /// Advances the simulation by one time step.
  virtual void step() = 0;

  /// Steps taken so far.
  [[nodiscard]] virtual long current_step() const noexcept = 0;

  /// Size of one simulation output frame (bytes), for I/O modeling.
  [[nodiscard]] virtual double output_frame_bytes() const noexcept = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace insched::sim
