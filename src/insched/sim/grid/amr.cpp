#include "insched/sim/grid/amr.hpp"

#include <algorithm>
#include <cmath>

#include "insched/support/assert.hpp"

namespace insched::sim {

AmrMesh::AmrMesh(const Field3D& density, const GridGeometry& geometry, AmrConfig config)
    : config_(config) {
  INSCHED_EXPECTS(config_.cells_per_block >= 2);
  INSCHED_EXPECTS(geometry.n == density.nx());
  INSCHED_EXPECTS(geometry.n % config_.cells_per_block == 0);
  nb_axis_ = geometry.n / config_.cells_per_block;
  refined_.assign(nb_axis_ * nb_axis_ * nb_axis_, false);

  const std::size_t nb = config_.cells_per_block;
  const std::size_t n = geometry.n;

  // Refinement criterion per block: max relative density jump between
  // neighboring cells (|drho| / rho), the standard FLASH-style indicator.
  for (std::size_t bz = 0; bz < nb_axis_; ++bz)
    for (std::size_t by = 0; by < nb_axis_; ++by)
      for (std::size_t bx = 0; bx < nb_axis_; ++bx) {
        double worst = 0.0;
        for (std::size_t k = bz * nb; k < (bz + 1) * nb; ++k)
          for (std::size_t j = by * nb; j < (by + 1) * nb; ++j)
            for (std::size_t i = bx * nb; i < (bx + 1) * nb; ++i) {
              const double rho = density.at(i, j, k);
              if (rho <= 0.0) continue;
              const double dxp = density.at((i + 1) % n, j, k) - rho;
              const double dyp = density.at(i, (j + 1) % n, k) - rho;
              const double dzp = density.at(i, j, (k + 1) % n) - rho;
              const double jump =
                  std::max({std::fabs(dxp), std::fabs(dyp), std::fabs(dzp)}) / rho;
              worst = std::max(worst, jump);
            }
        refined_[(bz * nb_axis_ + by) * nb_axis_ + bx] = worst >= config_.refine_threshold;
      }
}

bool AmrMesh::is_refined(std::size_t bx, std::size_t by, std::size_t bz) const {
  INSCHED_EXPECTS(bx < nb_axis_ && by < nb_axis_ && bz < nb_axis_);
  return refined_[(bz * nb_axis_ + by) * nb_axis_ + bx];
}

std::size_t AmrMesh::coarse_blocks() const noexcept {
  std::size_t count = 0;
  for (bool r : refined_)
    if (!r) ++count;
  return count;
}

std::size_t AmrMesh::refined_blocks() const noexcept {
  std::size_t count = 0;
  for (bool r : refined_)
    if (r) count += 8;  // each refined block is replaced by 8 children
  return count;
}

std::size_t AmrMesh::leaf_cells() const noexcept {
  const std::size_t per_block =
      config_.cells_per_block * config_.cells_per_block * config_.cells_per_block;
  return coarse_blocks() * per_block + refined_blocks() * per_block;
}

double AmrMesh::checkpoint_bytes() const noexcept {
  return static_cast<double>(leaf_cells()) *
         static_cast<double>(config_.variables_per_cell) * sizeof(double);
}

double AmrMesh::compression_ratio() const noexcept {
  // Everything-at-fine-resolution cells: 8 x the level-0 cell count.
  const std::size_t per_block =
      config_.cells_per_block * config_.cells_per_block * config_.cells_per_block;
  const std::size_t full_fine = refined_.size() * per_block * 8;
  return leaf_cells() > 0 ? static_cast<double>(full_fine) /
                                static_cast<double>(leaf_cells())
                          : 1.0;
}

Field3D AmrMesh::restrict_field(const Field3D& fine) {
  INSCHED_EXPECTS(fine.nx() % 2 == 0 && fine.ny() % 2 == 0 && fine.nz() % 2 == 0);
  Field3D coarse(fine.nx() / 2, fine.ny() / 2, fine.nz() / 2);
  for (std::size_t k = 0; k < coarse.nz(); ++k)
    for (std::size_t j = 0; j < coarse.ny(); ++j)
      for (std::size_t i = 0; i < coarse.nx(); ++i) {
        double sum = 0.0;
        for (int c = 0; c < 8; ++c)
          sum += fine.at(2 * i + (c & 1), 2 * j + ((c >> 1) & 1), 2 * k + ((c >> 2) & 1));
        coarse.at(i, j, k) = sum / 8.0;  // volume-weighted (equal volumes)
      }
  return coarse;
}

Field3D AmrMesh::prolong_field(const Field3D& coarse) {
  Field3D fine(coarse.nx() * 2, coarse.ny() * 2, coarse.nz() * 2);
  for (std::size_t k = 0; k < fine.nz(); ++k)
    for (std::size_t j = 0; j < fine.ny(); ++j)
      for (std::size_t i = 0; i < fine.nx(); ++i)
        fine.at(i, j, k) = coarse.at(i / 2, j / 2, k / 2);
  return fine;
}

}  // namespace insched::sim
