#pragma once

// Sedov blast problem (the FLASH configuration the paper evaluates): a
// delta-function energy deposit in a cold uniform medium drives a
// self-similar spherical shock. Provides the initial condition for the Euler
// solver plus an approximate analytic reference profile used by the L1/L2
// error-norm analyses (F2, F3).
//
// The reference uses the exact Sedov-Taylor shock-position scaling
//   R(t) = xi0 * (E t^2 / rho0)^(1/5)
// with the standard gamma=1.4 similarity constant, and a power-law fit of
// the interior profiles. FLASH's own Sedov test compares against the same
// self-similar solution; the fit error is far below the discretization error
// of a first-order solver, which is what the norms measure.

#include "insched/sim/grid/euler.hpp"

namespace insched::sim {

struct SedovSpec {
  double blast_energy = 1.0;
  double ambient_density = 1.0;
  double ambient_pressure = 1e-5;
  double deposit_radius_cells = 1.5;  ///< energy spread over a few cells
};

/// Deposits the blast energy at the grid center of `solver`.
void initialize_sedov(EulerSolver& solver, const SedovSpec& spec);

/// Self-similar reference at time t (> 0) and radius r from the center.
class SedovReference {
 public:
  SedovReference(const SedovSpec& spec, double gamma);

  /// Shock radius at time t.
  [[nodiscard]] double shock_radius(double t) const;

  /// Reference density/pressure/radial-velocity at (r, t).
  [[nodiscard]] double density(double r, double t) const;
  [[nodiscard]] double pressure(double r, double t) const;
  [[nodiscard]] double radial_velocity(double r, double t) const;

 private:
  SedovSpec spec_;
  double gamma_;
  double xi0_;  ///< similarity constant
};

}  // namespace insched::sim
