#include "insched/sim/grid/sedov.hpp"

#include <cmath>

#include "insched/support/assert.hpp"

namespace insched::sim {

void initialize_sedov(EulerSolver& solver, const SedovSpec& spec) {
  const GridGeometry& geom = solver.geometry();
  const std::size_t n = geom.n;
  const double dx = geom.dx();
  const double center = 0.5 * geom.length;
  const double r_dep = spec.deposit_radius_cells * dx;

  // Count deposit cells first so the total energy is exact.
  std::size_t deposit_cells = 0;
  for (std::size_t k = 0; k < n; ++k)
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t i = 0; i < n; ++i) {
        const double x = geom.center(i) - center;
        const double y = geom.center(j) - center;
        const double z = geom.center(k) - center;
        if (std::sqrt(x * x + y * y + z * z) <= r_dep) ++deposit_cells;
      }
  INSCHED_ASSERT(deposit_cells > 0);

  const double cell_volume = dx * dx * dx;
  const double e_per_cell = spec.blast_energy / (static_cast<double>(deposit_cells) * cell_volume);
  const double gamma = solver.params().gamma;

  for (std::size_t k = 0; k < n; ++k)
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t i = 0; i < n; ++i) {
        const double x = geom.center(i) - center;
        const double y = geom.center(j) - center;
        const double z = geom.center(k) - center;
        const bool inside = std::sqrt(x * x + y * y + z * z) <= r_dep;
        Primitive prim;
        prim.rho = spec.ambient_density;
        prim.p = inside ? (gamma - 1.0) * e_per_cell : spec.ambient_pressure;
        solver.set_cell(i, j, k, prim);
      }
}

SedovReference::SedovReference(const SedovSpec& spec, double gamma)
    : spec_(spec), gamma_(gamma) {
  INSCHED_EXPECTS(gamma > 1.0);
  // Similarity constant for 3-D (spherical) Sedov-Taylor; 1.1517 for
  // gamma = 1.4 (Sedov 1959, standard tables); a weak gamma-dependence fit
  // covers nearby gamma values.
  xi0_ = 1.1517 * std::pow(1.4 / gamma, 0.2);
}

double SedovReference::shock_radius(double t) const {
  INSCHED_EXPECTS(t > 0.0);
  return xi0_ * std::pow(spec_.blast_energy * t * t / spec_.ambient_density, 0.2);
}

double SedovReference::density(double r, double t) const {
  const double rs = shock_radius(t);
  if (r >= rs) return spec_.ambient_density;
  // Immediately behind the shock: strong-shock jump rho2 = rho0 (g+1)/(g-1);
  // interior falls off steeply toward the hot, rarefied center. The
  // power-law exponent 3/(gamma-1) matches the exact solution's behaviour
  // near the shock front.
  const double rho2 = spec_.ambient_density * (gamma_ + 1.0) / (gamma_ - 1.0);
  const double xi = std::max(r / rs, 1e-6);
  return rho2 * std::pow(xi, 3.0 / (gamma_ - 1.0));
}

double SedovReference::pressure(double r, double t) const {
  const double rs = shock_radius(t);
  const double us = 0.4 * rs / t;  // shock speed = dR/dt = (2/5) R / t
  const double p2 =
      2.0 / (gamma_ + 1.0) * spec_.ambient_density * us * us;  // strong-shock jump
  if (r >= rs) return spec_.ambient_pressure;
  // Pressure is nearly flat in the interior (~0.3-0.4 p2 at the center for
  // gamma = 1.4).
  const double xi = r / rs;
  const double p_center = 0.35 * p2;
  return p_center + (p2 - p_center) * std::pow(xi, 3.0);
}

double SedovReference::radial_velocity(double r, double t) const {
  const double rs = shock_radius(t);
  if (r >= rs) return 0.0;
  const double us = 0.4 * rs / t;
  const double u2 = 2.0 / (gamma_ + 1.0) * us;  // post-shock gas speed
  // Velocity is close to linear in radius inside the blast.
  return u2 * (r / rs);
}

}  // namespace insched::sim
