#include "insched/sim/grid/grid3d.hpp"

namespace insched::sim {

double Field3D::periodic(std::ptrdiff_t i, std::ptrdiff_t j, std::ptrdiff_t k) const {
  const auto wrap = [](std::ptrdiff_t v, std::size_t n) {
    const auto sn = static_cast<std::ptrdiff_t>(n);
    v %= sn;
    if (v < 0) v += sn;
    return static_cast<std::size_t>(v);
  };
  return at(wrap(i, nx_), wrap(j, ny_), wrap(k, nz_));
}

}  // namespace insched::sim
