#pragma once

// Block-structured AMR mesh (PARAMESH-style, as used by FLASH): the domain
// is tiled with nb^3-cell blocks (FLASH runs 16^3); blocks whose solution is
// "interesting" (large density gradient) are refined into 8 children at twice
// the resolution. This module builds the block hierarchy from a uniform
// solution, provides conservative restriction / prolongation between levels,
// and reports the AMR-compressed storage footprint — which is what couples
// the mesh to the *scheduling* problem: a FLASH checkpoint's size (om, ot)
// tracks the refined block count, which changes as features (the Sedov
// shock) evolve.

#include <array>
#include <cstdint>
#include <vector>

#include "insched/sim/grid/grid3d.hpp"

namespace insched::sim {

struct AmrBlockId {
  int level = 0;                    ///< 0 = coarse, 1 = refined
  std::array<std::size_t, 3> pos;   ///< block coordinates at its level
};

struct AmrConfig {
  std::size_t cells_per_block = 16;   ///< FLASH default: 16^3 cells per block
  double refine_threshold = 0.2;      ///< max |grad rho| * dx / rho to refine
  double derefine_threshold = 0.05;   ///< below this a refined block coarsens
  int variables_per_cell = 10;        ///< FLASH: 10 mesh variables
};

class AmrMesh {
 public:
  /// Builds the hierarchy for a uniform field whose extent is a multiple of
  /// cells_per_block. Refinement decisions use the relative density
  /// gradient within each block.
  AmrMesh(const Field3D& density, const GridGeometry& geometry, AmrConfig config);

  /// Blocks per axis at level 0.
  [[nodiscard]] std::size_t blocks_per_axis() const noexcept { return nb_axis_; }
  [[nodiscard]] std::size_t coarse_blocks() const noexcept;   ///< unrefined level-0 blocks
  [[nodiscard]] std::size_t refined_blocks() const noexcept;  ///< level-1 child blocks
  [[nodiscard]] std::size_t leaf_blocks() const noexcept {
    return coarse_blocks() + refined_blocks();
  }
  [[nodiscard]] bool is_refined(std::size_t bx, std::size_t by, std::size_t bz) const;

  /// Total cells stored by the AMR representation (leaves only).
  [[nodiscard]] std::size_t leaf_cells() const noexcept;

  /// Checkpoint bytes of this mesh (leaf cells x variables x 8 bytes) —
  /// the om/output-size model for a FLASH-like code.
  [[nodiscard]] double checkpoint_bytes() const noexcept;

  /// Compression vs. storing everything at the fine resolution.
  [[nodiscard]] double compression_ratio() const noexcept;

  [[nodiscard]] const AmrConfig& config() const noexcept { return config_; }

  // --- Level transfer operators -------------------------------------------
  /// Conservative restriction: averages 2x2x2 fine cells onto one coarse
  /// cell. Output extent is half the input per axis (input extents even).
  [[nodiscard]] static Field3D restrict_field(const Field3D& fine);

  /// Piecewise-constant prolongation: injects each coarse cell into its
  /// 2x2x2 fine children. Exact adjoint of restrict_field.
  [[nodiscard]] static Field3D prolong_field(const Field3D& coarse);

 private:
  AmrConfig config_;
  std::size_t nb_axis_ = 0;
  std::vector<bool> refined_;  ///< per level-0 block
};

}  // namespace insched::sim
