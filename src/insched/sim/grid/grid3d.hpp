#pragma once

// Regular 3-D scalar field and grid geometry — the Eulerian storage the
// FLASH-like hydrodynamics solver and its diagnostics (vorticity, error
// norms) operate on. Uniform-grid equivalent of FLASH's UG mode; the paper's
// Sedov runs use 16^3-cell blocks, which a uniform grid of the same total
// extent models for analysis purposes.

#include <algorithm>
#include <cstddef>
#include <vector>

#include "insched/support/assert.hpp"

namespace insched::sim {

class Field3D {
 public:
  Field3D() = default;
  Field3D(std::size_t nx, std::size_t ny, std::size_t nz, double fill = 0.0)
      : nx_(nx), ny_(ny), nz_(nz), data_(nx * ny * nz, fill) {}

  [[nodiscard]] std::size_t nx() const noexcept { return nx_; }
  [[nodiscard]] std::size_t ny() const noexcept { return ny_; }
  [[nodiscard]] std::size_t nz() const noexcept { return nz_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }

  [[nodiscard]] double& at(std::size_t i, std::size_t j, std::size_t k) {
    INSCHED_ASSERT(i < nx_ && j < ny_ && k < nz_);
    return data_[(k * ny_ + j) * nx_ + i];
  }
  [[nodiscard]] double at(std::size_t i, std::size_t j, std::size_t k) const {
    INSCHED_ASSERT(i < nx_ && j < ny_ && k < nz_);
    return data_[(k * ny_ + j) * nx_ + i];
  }

  /// Periodic accessor (used by centered differences at the boundary).
  [[nodiscard]] double periodic(std::ptrdiff_t i, std::ptrdiff_t j, std::ptrdiff_t k) const;

  [[nodiscard]] std::vector<double>& data() noexcept { return data_; }
  [[nodiscard]] const std::vector<double>& data() const noexcept { return data_; }

  void fill(double value) { std::fill(data_.begin(), data_.end(), value); }

 private:
  std::size_t nx_ = 0, ny_ = 0, nz_ = 0;
  std::vector<double> data_;
};

/// Grid geometry: a cube [0, length]^3 with n cells per axis.
struct GridGeometry {
  std::size_t n = 16;
  double length = 1.0;

  [[nodiscard]] double dx() const noexcept { return length / static_cast<double>(n); }
  /// Cell-center coordinate along one axis.
  [[nodiscard]] double center(std::size_t i) const noexcept {
    return (static_cast<double>(i) + 0.5) * dx();
  }
  [[nodiscard]] std::size_t cells() const noexcept { return n * n * n; }
};

}  // namespace insched::sim
