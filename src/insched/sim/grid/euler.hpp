#pragma once

// Compressible Euler solver on a periodic uniform 3-D grid: finite-volume
// update with Rusanov (local Lax-Friedrichs) fluxes, ideal-gas EOS, CFL time
// stepping. First-order but conservative and robust across strong shocks —
// sufficient to evolve the Sedov blast the FLASH case study analyzes.

#include <array>

#include "insched/sim/grid/grid3d.hpp"
#include "insched/sim/simulation.hpp"

namespace insched::sim {

struct EulerParams {
  double gamma = 1.4;  ///< ideal-gas ratio of specific heats
  double cfl = 0.4;
  double density_floor = 1e-10;
  double pressure_floor = 1e-10;
};

/// Primitive state of one cell.
struct Primitive {
  double rho = 0.0;
  double u = 0.0, v = 0.0, w = 0.0;
  double p = 0.0;
};

class EulerSolver final : public ISimulation {
 public:
  EulerSolver(GridGeometry geometry, EulerParams params);

  /// Sets one cell from primitive variables.
  void set_cell(std::size_t i, std::size_t j, std::size_t k, const Primitive& prim);
  [[nodiscard]] Primitive cell(std::size_t i, std::size_t j, std::size_t k) const;

  /// One CFL-limited time step.
  void step() override;
  [[nodiscard]] long current_step() const noexcept override { return step_; }
  [[nodiscard]] double output_frame_bytes() const noexcept override {
    // 10 mesh variables per cell, matching the paper's FLASH configuration.
    return static_cast<double>(geometry_.cells()) * 10.0 * sizeof(double);
  }
  [[nodiscard]] std::string name() const override { return "euler3d"; }

  [[nodiscard]] double time() const noexcept { return time_; }
  [[nodiscard]] const GridGeometry& geometry() const noexcept { return geometry_; }
  [[nodiscard]] const EulerParams& params() const noexcept { return params_; }

  // Conserved fields, exposed for analyses (FLASH diagnostics read the mesh).
  [[nodiscard]] const Field3D& density() const noexcept { return rho_; }
  [[nodiscard]] const Field3D& momentum_x() const noexcept { return mx_; }
  [[nodiscard]] const Field3D& momentum_y() const noexcept { return my_; }
  [[nodiscard]] const Field3D& momentum_z() const noexcept { return mz_; }
  [[nodiscard]] const Field3D& energy() const noexcept { return e_; }

  /// Derived primitive fields (recomputed on call).
  [[nodiscard]] Field3D pressure() const;
  [[nodiscard]] Field3D velocity(int axis) const;

  /// Total mass and total energy (conserved quantities; tests watch these).
  [[nodiscard]] double total_mass() const noexcept;
  [[nodiscard]] double total_energy() const noexcept;

 private:
  [[nodiscard]] double max_wave_speed() const;
  void flux_update(double dt);

  GridGeometry geometry_;
  EulerParams params_;
  Field3D rho_, mx_, my_, mz_, e_;
  double time_ = 0.0;
  long step_ = 0;
};

}  // namespace insched::sim
