#include "insched/sim/grid/euler.hpp"

#include <algorithm>
#include <cmath>

#include "insched/support/assert.hpp"
#include "insched/support/parallel.hpp"

namespace insched::sim {

namespace {

/// Conserved state vector of one cell.
struct Conserved {
  double rho, mx, my, mz, e;
};

struct FluxVec {
  double rho, mx, my, mz, e;
};

}  // namespace

EulerSolver::EulerSolver(GridGeometry geometry, EulerParams params)
    : geometry_(geometry),
      params_(params),
      rho_(geometry.n, geometry.n, geometry.n, 1.0),
      mx_(geometry.n, geometry.n, geometry.n, 0.0),
      my_(geometry.n, geometry.n, geometry.n, 0.0),
      mz_(geometry.n, geometry.n, geometry.n, 0.0),
      e_(geometry.n, geometry.n, geometry.n, 1.0) {
  INSCHED_EXPECTS(geometry.n >= 2);
  INSCHED_EXPECTS(params.gamma > 1.0);
}

void EulerSolver::set_cell(std::size_t i, std::size_t j, std::size_t k,
                           const Primitive& prim) {
  INSCHED_EXPECTS(prim.rho > 0.0 && prim.p > 0.0);
  rho_.at(i, j, k) = prim.rho;
  mx_.at(i, j, k) = prim.rho * prim.u;
  my_.at(i, j, k) = prim.rho * prim.v;
  mz_.at(i, j, k) = prim.rho * prim.w;
  const double kinetic = 0.5 * prim.rho * (prim.u * prim.u + prim.v * prim.v + prim.w * prim.w);
  e_.at(i, j, k) = prim.p / (params_.gamma - 1.0) + kinetic;
}

Primitive EulerSolver::cell(std::size_t i, std::size_t j, std::size_t k) const {
  Primitive prim;
  prim.rho = std::max(rho_.at(i, j, k), params_.density_floor);
  prim.u = mx_.at(i, j, k) / prim.rho;
  prim.v = my_.at(i, j, k) / prim.rho;
  prim.w = mz_.at(i, j, k) / prim.rho;
  const double kinetic = 0.5 * prim.rho * (prim.u * prim.u + prim.v * prim.v + prim.w * prim.w);
  prim.p = std::max((params_.gamma - 1.0) * (e_.at(i, j, k) - kinetic), params_.pressure_floor);
  return prim;
}

double EulerSolver::max_wave_speed() const {
  const std::size_t n = geometry_.n;
  double max_speed = 1e-12;
  for (std::size_t k = 0; k < n; ++k)
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t i = 0; i < n; ++i) {
        const Primitive prim = cell(i, j, k);
        const double c = std::sqrt(params_.gamma * prim.p / prim.rho);
        const double speed =
            std::max({std::fabs(prim.u), std::fabs(prim.v), std::fabs(prim.w)}) + c;
        max_speed = std::max(max_speed, speed);
      }
  return max_speed;
}

void EulerSolver::flux_update(double dt) {
  const std::size_t n = geometry_.n;
  const double dx = geometry_.dx();
  const double lambda = dt / dx;
  const double gamma = params_.gamma;

  // Rusanov flux through the face between left and right states along `axis`.
  const auto rusanov = [&](const Conserved& left, const Conserved& right,
                           int axis) -> FluxVec {
    const auto primitive = [&](const Conserved& c) {
      Primitive p;
      p.rho = std::max(c.rho, params_.density_floor);
      p.u = c.mx / p.rho;
      p.v = c.my / p.rho;
      p.w = c.mz / p.rho;
      const double kin = 0.5 * p.rho * (p.u * p.u + p.v * p.v + p.w * p.w);
      p.p = std::max((gamma - 1.0) * (c.e - kin), params_.pressure_floor);
      return p;
    };
    const auto physical_flux = [&](const Conserved& c, const Primitive& p) -> FluxVec {
      const double vel = axis == 0 ? p.u : (axis == 1 ? p.v : p.w);
      FluxVec f;
      f.rho = c.rho * vel;
      f.mx = c.mx * vel + (axis == 0 ? p.p : 0.0);
      f.my = c.my * vel + (axis == 1 ? p.p : 0.0);
      f.mz = c.mz * vel + (axis == 2 ? p.p : 0.0);
      f.e = (c.e + p.p) * vel;
      return f;
    };
    const Primitive pl = primitive(left);
    const Primitive pr = primitive(right);
    const FluxVec fl = physical_flux(left, pl);
    const FluxVec fr = physical_flux(right, pr);
    const double vl = axis == 0 ? pl.u : (axis == 1 ? pl.v : pl.w);
    const double vr = axis == 0 ? pr.u : (axis == 1 ? pr.v : pr.w);
    const double cl = std::sqrt(gamma * pl.p / pl.rho);
    const double cr = std::sqrt(gamma * pr.p / pr.rho);
    const double s = std::max(std::fabs(vl) + cl, std::fabs(vr) + cr);
    return FluxVec{0.5 * (fl.rho + fr.rho) - 0.5 * s * (right.rho - left.rho),
                   0.5 * (fl.mx + fr.mx) - 0.5 * s * (right.mx - left.mx),
                   0.5 * (fl.my + fr.my) - 0.5 * s * (right.my - left.my),
                   0.5 * (fl.mz + fr.mz) - 0.5 * s * (right.mz - left.mz),
                   0.5 * (fl.e + fr.e) - 0.5 * s * (right.e - left.e)};
  };

  const auto load = [&](std::size_t i, std::size_t j, std::size_t k) -> Conserved {
    return Conserved{rho_.at(i, j, k), mx_.at(i, j, k), my_.at(i, j, k), mz_.at(i, j, k),
                     e_.at(i, j, k)};
  };

  Field3D new_rho = rho_, new_mx = mx_, new_my = my_, new_mz = mz_, new_e = e_;

  // Dimension-by-dimension flux differencing over the periodic grid; the
  // outer k-sweep is parallel (each k plane writes disjoint cells).
  parallel_for(n, [&](std::size_t kb, std::size_t ke) {
    for (std::size_t k = kb; k < ke; ++k)
      for (std::size_t j = 0; j < n; ++j)
        for (std::size_t i = 0; i < n; ++i) {
          const Conserved c = load(i, j, k);
          const std::size_t ip = (i + 1) % n, im = (i + n - 1) % n;
          const std::size_t jp = (j + 1) % n, jm = (j + n - 1) % n;
          const std::size_t kp = (k + 1) % n, km = (k + n - 1) % n;

          const FluxVec fxp = rusanov(c, load(ip, j, k), 0);
          const FluxVec fxm = rusanov(load(im, j, k), c, 0);
          const FluxVec fyp = rusanov(c, load(i, jp, k), 1);
          const FluxVec fym = rusanov(load(i, jm, k), c, 1);
          const FluxVec fzp = rusanov(c, load(i, j, kp), 2);
          const FluxVec fzm = rusanov(load(i, j, km), c, 2);

          new_rho.at(i, j, k) =
              c.rho - lambda * (fxp.rho - fxm.rho + fyp.rho - fym.rho + fzp.rho - fzm.rho);
          new_mx.at(i, j, k) =
              c.mx - lambda * (fxp.mx - fxm.mx + fyp.mx - fym.mx + fzp.mx - fzm.mx);
          new_my.at(i, j, k) =
              c.my - lambda * (fxp.my - fxm.my + fyp.my - fym.my + fzp.my - fzm.my);
          new_mz.at(i, j, k) =
              c.mz - lambda * (fxp.mz - fxm.mz + fyp.mz - fym.mz + fzp.mz - fzm.mz);
          new_e.at(i, j, k) =
              c.e - lambda * (fxp.e - fxm.e + fyp.e - fym.e + fzp.e - fzm.e);
        }
  });

  rho_ = std::move(new_rho);
  mx_ = std::move(new_mx);
  my_ = std::move(new_my);
  mz_ = std::move(new_mz);
  e_ = std::move(new_e);
}

void EulerSolver::step() {
  const double dt = params_.cfl * geometry_.dx() / max_wave_speed();
  flux_update(dt);
  time_ += dt;
  ++step_;
}

Field3D EulerSolver::pressure() const {
  const std::size_t n = geometry_.n;
  Field3D p(n, n, n);
  for (std::size_t k = 0; k < n; ++k)
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t i = 0; i < n; ++i) p.at(i, j, k) = cell(i, j, k).p;
  return p;
}

Field3D EulerSolver::velocity(int axis) const {
  INSCHED_EXPECTS(axis >= 0 && axis <= 2);
  const std::size_t n = geometry_.n;
  Field3D v(n, n, n);
  for (std::size_t k = 0; k < n; ++k)
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t i = 0; i < n; ++i) {
        const Primitive prim = cell(i, j, k);
        v.at(i, j, k) = axis == 0 ? prim.u : (axis == 1 ? prim.v : prim.w);
      }
  return v;
}

double EulerSolver::total_mass() const noexcept {
  double total = 0.0;
  for (double v : rho_.data()) total += v;
  const double cell_volume = geometry_.dx() * geometry_.dx() * geometry_.dx();
  return total * cell_volume;
}

double EulerSolver::total_energy() const noexcept {
  double total = 0.0;
  for (double v : e_.data()) total += v;
  const double cell_volume = geometry_.dx() * geometry_.dx() * geometry_.dx();
  return total * cell_volume;
}

}  // namespace insched::sim
