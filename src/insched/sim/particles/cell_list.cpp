#include "insched/sim/particles/cell_list.hpp"

#include <algorithm>
#include <cmath>

#include "insched/support/assert.hpp"
#include "insched/support/parallel.hpp"

namespace insched::sim {

CellList::CellList(const ParticleSystem& system, double cutoff)
    : system_(system), cutoff_(cutoff), cutoff2_(cutoff * cutoff) {
  INSCHED_EXPECTS(cutoff > 0.0);
  const Box& box = system.box();
  INSCHED_EXPECTS(box.lx >= cutoff && box.ly >= cutoff && box.lz >= cutoff);

  ncx_ = std::max(1, static_cast<int>(box.lx / cutoff));
  ncy_ = std::max(1, static_cast<int>(box.ly / cutoff));
  ncz_ = std::max(1, static_cast<int>(box.lz / cutoff));

  head_.assign(static_cast<std::size_t>(ncx_) * ncy_ * ncz_, -1);
  next_.assign(system.size(), -1);
  for (std::size_t i = 0; i < system.size(); ++i) {
    const int cx = std::min(ncx_ - 1, static_cast<int>(Box::wrap(system.x[i], box.lx) /
                                                       box.lx * ncx_));
    const int cy = std::min(ncy_ - 1, static_cast<int>(Box::wrap(system.y[i], box.ly) /
                                                       box.ly * ncy_));
    const int cz = std::min(ncz_ - 1, static_cast<int>(Box::wrap(system.z[i], box.lz) /
                                                       box.lz * ncz_));
    const int cell = cell_index(cx, cy, cz);
    next_[i] = head_[static_cast<std::size_t>(cell)];
    head_[static_cast<std::size_t>(cell)] = static_cast<int>(i);
  }
}

void CellList::visit_cell_pairs(
    int cell, const std::function<void(std::size_t, std::size_t, double)>& visit) const {
  const Box& box = system_.box();
  const int cx = cell % ncx_;
  const int cy = (cell / ncx_) % ncy_;
  const int cz = cell / (ncx_ * ncy_);

  const auto pair_check = [&](int i, int j) {
    const double dx = Box::min_image(system_.x[static_cast<std::size_t>(i)] -
                                         system_.x[static_cast<std::size_t>(j)],
                                     box.lx);
    const double dy = Box::min_image(system_.y[static_cast<std::size_t>(i)] -
                                         system_.y[static_cast<std::size_t>(j)],
                                     box.ly);
    const double dz = Box::min_image(system_.z[static_cast<std::size_t>(i)] -
                                         system_.z[static_cast<std::size_t>(j)],
                                     box.lz);
    const double r2 = dx * dx + dy * dy + dz * dz;
    if (r2 <= cutoff2_)
      visit(static_cast<std::size_t>(i), static_cast<std::size_t>(j), r2);
  };

  // Full 27-stencil, deduplicated (periodic wrap can alias several offsets
  // to the same neighbor when a dimension has few cells). Each unordered
  // cell pair is handled once by the `other > cell` ordering; within the
  // cell itself the linked-list traversal yields each particle pair once.
  int neighbors[27];
  int neighbor_count = 0;
  for (int dz = -1; dz <= 1; ++dz)
    for (int dy = -1; dy <= 1; ++dy)
      for (int dx = -1; dx <= 1; ++dx) {
        const int nx = (cx + dx + ncx_) % ncx_;
        const int ny = (cy + dy + ncy_) % ncy_;
        const int nz = (cz + dz + ncz_) % ncz_;
        const int other = cell_index(nx, ny, nz);
        if (other <= cell) continue;  // self handled below; pairs ordered
        bool seen = false;
        for (int k = 0; k < neighbor_count; ++k) seen = seen || neighbors[k] == other;
        if (!seen) neighbors[neighbor_count++] = other;
      }

  // Self pairs.
  for (int i = head_[static_cast<std::size_t>(cell)]; i >= 0;
       i = next_[static_cast<std::size_t>(i)])
    for (int j = next_[static_cast<std::size_t>(i)]; j >= 0;
         j = next_[static_cast<std::size_t>(j)])
      pair_check(i, j);

  // Cross-cell pairs.
  for (int k = 0; k < neighbor_count; ++k) {
    const int other = neighbors[k];
    for (int i = head_[static_cast<std::size_t>(cell)]; i >= 0;
         i = next_[static_cast<std::size_t>(i)])
      for (int j = head_[static_cast<std::size_t>(other)]; j >= 0;
           j = next_[static_cast<std::size_t>(j)])
        pair_check(i, j);
  }
}

void CellList::for_each_pair_in_cells(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t, double)>& visit) const {
  INSCHED_EXPECTS(begin <= end && end <= head_.size());
  for (std::size_t c = begin; c < end; ++c) visit_cell_pairs(static_cast<int>(c), visit);
}

void CellList::for_each_pair(
    const std::function<void(std::size_t, std::size_t, double)>& visit, bool parallel) const {
  const std::size_t cells = head_.size();
  if (!parallel) {
    for_each_pair_in_cells(0, cells, visit);
    return;
  }
  parallel_for(cells, [&](std::size_t begin, std::size_t end) {
    for_each_pair_in_cells(begin, end, visit);
  });
}

}  // namespace insched::sim
