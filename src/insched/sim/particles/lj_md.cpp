#include "insched/sim/particles/lj_md.hpp"

#include <atomic>
#include <cmath>

#include "insched/sim/particles/cell_list.hpp"
#include "insched/support/assert.hpp"

namespace insched::sim {

LjSimulation::LjSimulation(ParticleSystem system, MdParams params)
    : system_(std::move(system)), params_(params), rng_(params.seed) {
  INSCHED_EXPECTS(params_.dt > 0.0);
  INSCHED_EXPECTS(params_.cutoff > 0.0);
  fx_.assign(system_.size(), 0.0);
  fy_.assign(system_.size(), 0.0);
  fz_.assign(system_.size(), 0.0);
  system_.wrap_positions();
  compute_forces();
}

void LjSimulation::thermalize(std::uint64_t seed) {
  Rng rng(seed);
  double px = 0.0, py = 0.0, pz = 0.0;
  for (std::size_t i = 0; i < system_.size(); ++i) {
    const double s = std::sqrt(params_.temperature / system_.mass[i]);
    system_.vx[i] = rng.normal(0.0, s);
    system_.vy[i] = rng.normal(0.0, s);
    system_.vz[i] = rng.normal(0.0, s);
    px += system_.mass[i] * system_.vx[i];
    py += system_.mass[i] * system_.vy[i];
    pz += system_.mass[i] * system_.vz[i];
  }
  if (system_.size() > 0) {
    double total_mass = 0.0;
    for (double m : system_.mass) total_mass += m;
    for (std::size_t i = 0; i < system_.size(); ++i) {
      system_.vx[i] -= px / total_mass;
      system_.vy[i] -= py / total_mass;
      system_.vz[i] -= pz / total_mass;
    }
  }
}

void LjSimulation::minimize(int iterations, double max_move) {
  INSCHED_EXPECTS(iterations >= 0 && max_move > 0.0);
  for (int it = 0; it < iterations; ++it) {
    double f_max = 0.0;
    for (std::size_t i = 0; i < system_.size(); ++i) {
      const double f =
          std::sqrt(fx_[i] * fx_[i] + fy_[i] * fy_[i] + fz_[i] * fz_[i]);
      f_max = std::max(f_max, f);
    }
    if (f_max < 1e-8) break;
    const double scale = std::min(max_move / f_max, 1e-3);
    for (std::size_t i = 0; i < system_.size(); ++i) {
      system_.x[i] += scale * fx_[i];
      system_.y[i] += scale * fy_[i];
      system_.z[i] += scale * fz_[i];
    }
    system_.wrap_positions();
    compute_forces();
  }
}

void LjSimulation::compute_forces() {
  std::fill(fx_.begin(), fx_.end(), 0.0);
  std::fill(fy_.begin(), fy_.end(), 0.0);
  std::fill(fz_.begin(), fz_.end(), 0.0);

  const double rc2 = params_.cutoff * params_.cutoff;

  const CellList cells(system_, params_.cutoff);
  const Box& box = system_.box();
  double pe = 0.0;

  // Serial pair sweep: force accumulation into both endpoints makes a naive
  // parallel sweep racy; at laptop problem sizes the cell-list sweep is
  // already fast, and determinism matters more for tests.
  cells.for_each_pair([&](std::size_t i, std::size_t j, double r2) {
    const double dx = Box::min_image(system_.x[i] - system_.x[j], box.lx);
    const double dy = Box::min_image(system_.y[i] - system_.y[j], box.ly);
    const double dz = Box::min_image(system_.z[i] - system_.z[j], box.lz);
    INSCHED_ASSERT(r2 > 0.0);
    // Lorentz mixing of per-species diameters.
    const double scale_i =
        params_.species_sigma_scale[static_cast<std::size_t>(system_.species[i])];
    const double scale_j =
        params_.species_sigma_scale[static_cast<std::size_t>(system_.species[j])];
    const double sigma_ij = params_.sigma * 0.5 * (scale_i + scale_j);
    const double sigma2 = sigma_ij * sigma_ij;
    // Potential shift so U(rc) = 0 (truncated-shifted LJ).
    const double sr2c = sigma2 / rc2;
    const double sr6c = sr2c * sr2c * sr2c;
    const double u_shift = 4.0 * params_.epsilon * (sr6c * sr6c - sr6c);
    const double sr2 = sigma2 / r2;
    const double sr6 = sr2 * sr2 * sr2;
    const double sr12 = sr6 * sr6;
    pe += 4.0 * params_.epsilon * (sr12 - sr6) - u_shift;
    const double f_over_r = 24.0 * params_.epsilon * (2.0 * sr12 - sr6) / r2;
    fx_[i] += f_over_r * dx;
    fy_[i] += f_over_r * dy;
    fz_[i] += f_over_r * dz;
    fx_[j] -= f_over_r * dx;
    fy_[j] -= f_over_r * dy;
    fz_[j] -= f_over_r * dz;
  });
  potential_energy_ = pe;
}

void LjSimulation::step() {
  const double dt = params_.dt;
  const std::size_t n = system_.size();

  // Velocity Verlet: half-kick, drift, force, half-kick.
  for (std::size_t i = 0; i < n; ++i) {
    const double inv_m = 1.0 / system_.mass[i];
    system_.vx[i] += 0.5 * dt * fx_[i] * inv_m;
    system_.vy[i] += 0.5 * dt * fy_[i] * inv_m;
    system_.vz[i] += 0.5 * dt * fz_[i] * inv_m;
    system_.x[i] += dt * system_.vx[i];
    system_.y[i] += dt * system_.vy[i];
    system_.z[i] += dt * system_.vz[i];
  }
  system_.wrap_positions();
  compute_forces();
  for (std::size_t i = 0; i < n; ++i) {
    const double inv_m = 1.0 / system_.mass[i];
    system_.vx[i] += 0.5 * dt * fx_[i] * inv_m;
    system_.vy[i] += 0.5 * dt * fy_[i] * inv_m;
    system_.vz[i] += 0.5 * dt * fz_[i] * inv_m;
  }

  // Langevin thermostat (BAOAB-lite: exact OU velocity update).
  if (params_.gamma > 0.0) {
    const double c1 = std::exp(-params_.gamma * dt);
    for (std::size_t i = 0; i < n; ++i) {
      const double c2 = std::sqrt((1.0 - c1 * c1) * params_.temperature / system_.mass[i]);
      system_.vx[i] = c1 * system_.vx[i] + c2 * rng_.normal();
      system_.vy[i] = c1 * system_.vy[i] + c2 * rng_.normal();
      system_.vz[i] = c1 * system_.vz[i] + c2 * rng_.normal();
    }
  }
  ++step_;
}

}  // namespace insched::sim
