#pragma once

// Linked-cell neighbor structure for cutoff-range pair iteration under
// periodic boundaries. Shared by the force loop of the mini-MD engine and
// the RDF analysis kernel. Pair visits are parallelized over cells with a
// half-stencil so every pair is produced exactly once.

#include <array>
#include <cstddef>
#include <functional>
#include <vector>

#include "insched/sim/particles/particle_system.hpp"

namespace insched::sim {

class CellList {
 public:
  /// Builds the binning for `system` at interaction range `cutoff`. The box
  /// must be at least one cutoff wide in each axis.
  CellList(const ParticleSystem& system, double cutoff);

  /// Calls visit(i, j, r2) for every unordered pair (i < j implied unique)
  /// with squared minimum-image distance r2 <= cutoff^2. Serial order is
  /// deterministic; `parallel` distributes cells over threads (the visitor
  /// must then be thread-safe).
  void for_each_pair(const std::function<void(std::size_t, std::size_t, double)>& visit,
                     bool parallel = false) const;

  [[nodiscard]] double cutoff() const noexcept { return cutoff_; }
  [[nodiscard]] std::array<int, 3> cell_counts() const noexcept { return {ncx_, ncy_, ncz_}; }
  [[nodiscard]] std::size_t num_cells() const noexcept { return head_.size(); }

  /// Serial pair sweep restricted to cells [begin, end) — building block for
  /// callers that parallelize with per-range accumulation buffers.
  void for_each_pair_in_cells(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t, double)>& visit) const;

 private:
  [[nodiscard]] int cell_index(int cx, int cy, int cz) const noexcept {
    return (cz * ncy_ + cy) * ncx_ + cx;
  }
  void visit_cell_pairs(int cell,
                        const std::function<void(std::size_t, std::size_t, double)>& visit) const;

  const ParticleSystem& system_;
  double cutoff_;
  double cutoff2_;
  int ncx_ = 0, ncy_ = 0, ncz_ = 0;
  std::vector<int> head_;  ///< first particle in each cell (-1 = empty)
  std::vector<int> next_;  ///< next particle in the same cell (-1 = end)
};

}  // namespace insched::sim
