#include "insched/sim/particles/builders.hpp"

#include <array>
#include <cmath>
#include <numbers>

#include "insched/support/assert.hpp"
#include "insched/support/random.hpp"

namespace insched::sim {

namespace {
constexpr double kPi = std::numbers::pi;
}

namespace {

/// Cubic box sized for `count` particles at `density`, with a jittered
/// simple-cubic lattice filling it. Returns lattice sites (possibly slightly
/// more than `count`; the caller consumes the first `count`).
struct Lattice {
  Box box;
  std::vector<std::array<double, 3>> sites;
};

Lattice make_lattice(std::size_t count, double density, Rng& rng) {
  INSCHED_EXPECTS(count > 0 && density > 0.0);
  const double volume = static_cast<double>(count) / density;
  const double side = std::cbrt(volume);
  const auto per_axis = static_cast<std::size_t>(std::ceil(std::cbrt(static_cast<double>(count))));
  const double spacing = side / static_cast<double>(per_axis);

  Lattice lat;
  lat.box = Box{side, side, side};
  lat.sites.reserve(per_axis * per_axis * per_axis);
  for (std::size_t i = 0; i < per_axis; ++i)
    for (std::size_t j = 0; j < per_axis; ++j)
      for (std::size_t k = 0; k < per_axis; ++k) {
        const double jitter = 0.1 * spacing;
        lat.sites.push_back({(static_cast<double>(i) + 0.5) * spacing +
                                 rng.uniform(-jitter, jitter),
                             (static_cast<double>(j) + 0.5) * spacing +
                                 rng.uniform(-jitter, jitter),
                             (static_cast<double>(k) + 0.5) * spacing +
                                 rng.uniform(-jitter, jitter)});
      }
  return lat;
}

}  // namespace

ParticleSystem water_ions(const WaterIonsSpec& spec) {
  Rng rng(spec.seed);
  // Each water molecule contributes one O site and two tightly bound H
  // particles; hydronium and ions replace whole molecules.
  const std::size_t sites_needed = spec.molecules;
  Lattice lat = make_lattice(sites_needed, spec.density / 3.0, rng);

  ParticleSystem sys(lat.box);
  const double h_offset = 0.35;  // O-H distance in sigma units
  for (std::size_t m = 0; m < spec.molecules; ++m) {
    const auto& site = lat.sites[m];
    const double pick = rng.uniform();
    if (pick < spec.hydronium_fraction) {
      sys.add_particle(Species::kHydronium, site[0], site[1], site[2], 19.0);
    } else if (pick < spec.hydronium_fraction + spec.ion_fraction) {
      sys.add_particle(Species::kIon, site[0], site[1], site[2], 35.0);
    } else {
      sys.add_particle(Species::kWaterO, site[0], site[1], site[2], 16.0);
      for (int h = 0; h < 2; ++h) {
        const double theta = rng.uniform(0.0, 2.0 * kPi);
        const double phi = std::acos(rng.uniform(-1.0, 1.0));
        sys.add_particle(Species::kWaterH,
                         Box::wrap(site[0] + h_offset * std::sin(phi) * std::cos(theta),
                                   lat.box.lx),
                         Box::wrap(site[1] + h_offset * std::sin(phi) * std::sin(theta),
                                   lat.box.ly),
                         Box::wrap(site[2] + h_offset * std::cos(phi), lat.box.lz), 1.0);
      }
    }
  }
  return sys;
}

ParticleSystem rhodopsin_like(const RhodopsinSpec& spec) {
  Rng rng(spec.seed);
  Lattice lat = make_lattice(spec.total_particles, spec.density, rng);
  INSCHED_ASSERT(lat.sites.size() >= spec.total_particles);

  ParticleSystem sys(lat.box);
  const Box& box = lat.box;
  // Protein: sphere in the box center sized to hold protein_fraction of the
  // particles at uniform density.
  const double protein_volume = spec.protein_fraction * box.volume();
  const double protein_radius = std::cbrt(3.0 * protein_volume / (4.0 * kPi));
  // Membrane: a slab around z = Lz/2 holding membrane_fraction of the box.
  const double half_slab = 0.5 * spec.membrane_fraction * box.lz;

  for (std::size_t p = 0; p < spec.total_particles; ++p) {
    const auto& site = lat.sites[p];
    const double dx = site[0] - 0.5 * box.lx;
    const double dy = site[1] - 0.5 * box.ly;
    const double dz = site[2] - 0.5 * box.lz;
    const double r = std::sqrt(dx * dx + dy * dy + dz * dz);
    if (r < protein_radius) {
      sys.add_particle(Species::kProtein, site[0], site[1], site[2], 12.0);
    } else if (std::fabs(dz) < half_slab) {
      sys.add_particle(Species::kMembrane, site[0], site[1], site[2], 14.0);
    } else if (rng.uniform() < spec.ion_fraction) {
      sys.add_particle(Species::kIon, site[0], site[1], site[2], 35.0);
    } else {
      sys.add_particle(Species::kWaterO, site[0], site[1], site[2], 16.0);
    }
  }
  return sys;
}

}  // namespace insched::sim
