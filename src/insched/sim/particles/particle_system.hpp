#pragma once

// Structure-of-arrays particle container with a periodic orthorhombic box —
// the simulation-memory layout the LAMMPS-like analyses read in place.

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace insched::sim {

/// Particle species used by the two LAMMPS-like case studies.
enum class Species : std::uint8_t {
  kWaterO = 0,
  kWaterH = 1,
  kHydronium = 2,
  kIon = 3,
  kProtein = 4,
  kMembrane = 5,
};
inline constexpr int kSpeciesCount = 6;

struct Box {
  double lx = 1.0, ly = 1.0, lz = 1.0;

  [[nodiscard]] double volume() const noexcept { return lx * ly * lz; }

  /// Minimum-image displacement component for a periodic axis of length l.
  static double min_image(double d, double l) noexcept {
    if (d > 0.5 * l) return d - l;
    if (d < -0.5 * l) return d + l;
    return d;
  }

  /// Wraps a coordinate into [0, l). fmod-based: O(1) even for coordinates
  /// many box lengths away (a diverging integrator must not hang the wrap).
  static double wrap(double c, double l) noexcept {
    double w = std::fmod(c, l);
    if (w < 0.0) w += l;
    if (w >= l) w -= l;
    return w;
  }
};

class ParticleSystem {
 public:
  ParticleSystem() = default;
  explicit ParticleSystem(Box box) : box_(box) {}

  std::size_t add_particle(Species species, double px, double py, double pz, double mass = 1.0);

  [[nodiscard]] std::size_t size() const noexcept { return x.size(); }
  [[nodiscard]] const Box& box() const noexcept { return box_; }
  void set_box(Box box) noexcept { box_ = box; }

  /// Particle count of one species.
  [[nodiscard]] std::size_t count(Species species) const noexcept;

  /// Indices of all particles of one species.
  [[nodiscard]] std::vector<std::size_t> indices_of(Species species) const;

  /// Total kinetic energy (1/2 m v^2).
  [[nodiscard]] double kinetic_energy() const noexcept;

  /// Instantaneous temperature in reduced units (kB = 1): 2 KE / (3 N).
  [[nodiscard]] double temperature() const noexcept;

  /// Wraps all coordinates back into the box.
  void wrap_positions() noexcept;

  /// Bytes of one trajectory frame of this system (positions + velocities).
  [[nodiscard]] double frame_bytes() const noexcept {
    return static_cast<double>(size()) * 6.0 * sizeof(double);
  }

  // SoA storage, public on purpose: analysis kernels iterate these directly,
  // mirroring how LAMMPS computes read the simulation's atom arrays.
  std::vector<double> x, y, z;
  std::vector<double> vx, vy, vz;
  std::vector<double> mass;
  std::vector<Species> species;

 private:
  Box box_;
};

}  // namespace insched::sim
