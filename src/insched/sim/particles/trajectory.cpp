#include "insched/sim/particles/trajectory.hpp"

#include <stdexcept>

#include "insched/support/assert.hpp"

namespace insched::sim {

namespace {
constexpr std::uint32_t kMagic = 0x4a525449;  // "ITRJ"
}

TrajectoryWriter::TrajectoryWriter(const std::string& path, std::size_t natoms)
    : out_(path, std::ios::binary), natoms_(natoms) {
  if (!out_) throw std::runtime_error("TrajectoryWriter: cannot open " + path);
  const auto n64 = static_cast<std::uint64_t>(natoms);
  const std::uint64_t stride = sizeof(std::uint64_t) + natoms * 6 * sizeof(double);
  out_.write(reinterpret_cast<const char*>(&kMagic), sizeof kMagic);
  out_.write(reinterpret_cast<const char*>(&n64), sizeof n64);
  out_.write(reinterpret_cast<const char*>(&stride), sizeof stride);
}

void TrajectoryWriter::write_frame(long step, const ParticleSystem& system) {
  INSCHED_EXPECTS(system.size() == natoms_);
  const auto s64 = static_cast<std::uint64_t>(step);
  out_.write(reinterpret_cast<const char*>(&s64), sizeof s64);
  const auto dump = [&](const std::vector<double>& v) {
    out_.write(reinterpret_cast<const char*>(v.data()),
               static_cast<std::streamsize>(v.size() * sizeof(double)));
  };
  dump(system.x);
  dump(system.y);
  dump(system.z);
  dump(system.vx);
  dump(system.vy);
  dump(system.vz);
  if (!out_) throw std::runtime_error("TrajectoryWriter: write failed");
  ++frames_;
}

double TrajectoryWriter::bytes_written() const noexcept {
  return 20.0 + static_cast<double>(frames_) *
                    (sizeof(std::uint64_t) + static_cast<double>(natoms_) * 6 * sizeof(double));
}

void TrajectoryWriter::close() {
  if (out_.is_open()) out_.close();
}

TrajectoryReader::TrajectoryReader(const std::string& path) : in_(path, std::ios::binary) {
  if (!in_) throw std::runtime_error("TrajectoryReader: cannot open " + path);
  std::uint32_t magic = 0;
  std::uint64_t n64 = 0, stride = 0;
  in_.read(reinterpret_cast<char*>(&magic), sizeof magic);
  in_.read(reinterpret_cast<char*>(&n64), sizeof n64);
  in_.read(reinterpret_cast<char*>(&stride), sizeof stride);
  if (!in_ || magic != kMagic)
    throw std::runtime_error("TrajectoryReader: bad header in " + path);
  natoms_ = static_cast<std::size_t>(n64);
}

bool TrajectoryReader::read_frame(TrajectoryFrame& frame) {
  std::uint64_t s64 = 0;
  in_.read(reinterpret_cast<char*>(&s64), sizeof s64);
  if (!in_) return false;
  frame.step = static_cast<long>(s64);
  const auto load = [&](std::vector<double>& v) {
    v.resize(natoms_);
    in_.read(reinterpret_cast<char*>(v.data()),
             static_cast<std::streamsize>(natoms_ * sizeof(double)));
  };
  load(frame.x);
  load(frame.y);
  load(frame.z);
  load(frame.vx);
  load(frame.vy);
  load(frame.vz);
  return static_cast<bool>(in_);
}

}  // namespace insched::sim
