#pragma once

// Synthetic system builders mirroring the paper's two LAMMPS problems:
//  - water_ions(): box of water molecules solvating hydronium and other ions
//    (Section 5.2 problem 1, analyses A1-A4),
//  - rhodopsin_like(): a protein sphere embedded in a membrane slab and
//    solvated with water and ions (Section 5.2 problem 2, analyses R1-R3).
// Particles are placed on a jittered lattice at liquid-like density and
// thermalized; the point is realistic data layouts and species mixes for the
// analysis kernels, not chemical accuracy.

#include <cstdint>

#include "insched/sim/particles/particle_system.hpp"

namespace insched::sim {

struct WaterIonsSpec {
  std::size_t molecules = 1000;    ///< water molecules (3 particles each)
  double hydronium_fraction = 0.01;
  double ion_fraction = 0.01;
  double density = 0.8;            ///< particles per sigma^3
  std::uint64_t seed = 42;
};

[[nodiscard]] ParticleSystem water_ions(const WaterIonsSpec& spec);

struct RhodopsinSpec {
  std::size_t total_particles = 32000;
  double protein_fraction = 0.10;   ///< particles in the central protein sphere
  double membrane_fraction = 0.25;  ///< particles in the mid-plane slab
  double ion_fraction = 0.01;
  double density = 0.8;
  std::uint64_t seed = 42;
};

[[nodiscard]] ParticleSystem rhodopsin_like(const RhodopsinSpec& spec);

}  // namespace insched::sim
