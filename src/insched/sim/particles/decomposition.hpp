#pragma once

// Spatial domain decomposition of a particle system over virtual MPI ranks —
// the decomposition LAMMPS uses. Provides the quantities the performance
// model consumes: per-rank particle counts (load balance), halo-exchange
// volumes at a given interaction cutoff, and per-rank memory footprints.
// Together with machine::CollectiveModel this turns "run the RDF on 16384
// ranks" into concrete communication bytes and times.

#include <array>
#include <cstdint>
#include <vector>

#include "insched/sim/particles/particle_system.hpp"

namespace insched::sim {

struct DecompositionStats {
  std::int64_t ranks = 0;
  double mean_particles = 0.0;
  std::size_t max_particles = 0;
  std::size_t min_particles = 0;
  /// max / mean — 1.0 is perfect balance.
  double imbalance = 0.0;
  /// Particles within `cutoff` of a subdomain face (counted once per face
  /// they are close to) — the halo-exchange payload in particles.
  double mean_halo_particles = 0.0;
  /// Halo bytes per rank per exchange (positions + velocities).
  double mean_halo_bytes = 0.0;
};

class DomainDecomposition {
 public:
  /// Splits the box into ranks_per_axis^3 equal subdomains.
  DomainDecomposition(const ParticleSystem& system, int ranks_per_axis);

  [[nodiscard]] std::int64_t ranks() const noexcept;
  [[nodiscard]] int ranks_per_axis() const noexcept { return ranks_axis_; }

  /// Rank owning particle i.
  [[nodiscard]] std::int64_t owner(std::size_t i) const;

  /// Particle count per rank.
  [[nodiscard]] const std::vector<std::size_t>& counts() const noexcept { return counts_; }

  /// Aggregate statistics at the given interaction cutoff.
  [[nodiscard]] DecompositionStats stats(double cutoff) const;

 private:
  const ParticleSystem& system_;
  int ranks_axis_;
  std::vector<std::size_t> counts_;
};

}  // namespace insched::sim
