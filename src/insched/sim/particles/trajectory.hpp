#pragma once

// Binary trajectory format for the post-processing pipeline (Table 4): the
// simulation writes frames to disk; the post-processing analyzer reads them
// back — paying exactly the storage cost the paper's in-situ mode avoids.
//
// Layout (little-endian doubles):
//   header: magic 'ITRJ', u64 natoms, u64 frame-stride-bytes
//   frame:  u64 step, natoms * (x y z vx vy vz)

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "insched/sim/particles/particle_system.hpp"

namespace insched::sim {

class TrajectoryWriter {
 public:
  /// Opens `path` and writes the header; throws std::runtime_error on error.
  TrajectoryWriter(const std::string& path, std::size_t natoms);

  /// Appends one frame. The system must have exactly `natoms` particles.
  void write_frame(long step, const ParticleSystem& system);

  [[nodiscard]] std::size_t frames_written() const noexcept { return frames_; }
  [[nodiscard]] double bytes_written() const noexcept;

  void close();

 private:
  std::ofstream out_;
  std::size_t natoms_;
  std::size_t frames_ = 0;
};

/// One frame as read back from disk.
struct TrajectoryFrame {
  long step = 0;
  std::vector<double> x, y, z, vx, vy, vz;
};

class TrajectoryReader {
 public:
  explicit TrajectoryReader(const std::string& path);

  [[nodiscard]] std::size_t natoms() const noexcept { return natoms_; }

  /// Reads the next frame; false at end-of-file.
  [[nodiscard]] bool read_frame(TrajectoryFrame& frame);

 private:
  std::ifstream in_;
  std::size_t natoms_ = 0;
};

}  // namespace insched::sim
