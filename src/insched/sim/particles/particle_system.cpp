#include "insched/sim/particles/particle_system.hpp"

#include "insched/support/assert.hpp"

namespace insched::sim {

std::size_t ParticleSystem::add_particle(Species s, double px, double py, double pz,
                                         double m) {
  INSCHED_EXPECTS(m > 0.0);
  x.push_back(px);
  y.push_back(py);
  z.push_back(pz);
  vx.push_back(0.0);
  vy.push_back(0.0);
  vz.push_back(0.0);
  mass.push_back(m);
  species.push_back(s);
  return size() - 1;
}

std::size_t ParticleSystem::count(Species s) const noexcept {
  std::size_t n = 0;
  for (Species sp : species)
    if (sp == s) ++n;
  return n;
}

std::vector<std::size_t> ParticleSystem::indices_of(Species s) const {
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < size(); ++i)
    if (species[i] == s) idx.push_back(i);
  return idx;
}

double ParticleSystem::kinetic_energy() const noexcept {
  double ke = 0.0;
  for (std::size_t i = 0; i < size(); ++i)
    ke += 0.5 * mass[i] * (vx[i] * vx[i] + vy[i] * vy[i] + vz[i] * vz[i]);
  return ke;
}

double ParticleSystem::temperature() const noexcept {
  if (size() == 0) return 0.0;
  return 2.0 * kinetic_energy() / (3.0 * static_cast<double>(size()));
}

void ParticleSystem::wrap_positions() noexcept {
  for (std::size_t i = 0; i < size(); ++i) {
    x[i] = Box::wrap(x[i], box_.lx);
    y[i] = Box::wrap(y[i], box_.ly);
    z[i] = Box::wrap(z[i], box_.lz);
  }
}

}  // namespace insched::sim
