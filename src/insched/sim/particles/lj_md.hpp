#pragma once

// Mini molecular-dynamics engine: truncated-shifted Lennard-Jones forces via
// the linked-cell list, velocity-Verlet integration, optional Langevin
// thermostat. The LAMMPS substitute at laptop scale — it produces real
// particle trajectories for the in-situ analyses (RDF, MSD, VACF, radius of
// gyration, density histograms) to consume.

#include <array>
#include <memory>

#include "insched/sim/particles/particle_system.hpp"
#include "insched/sim/simulation.hpp"
#include "insched/support/random.hpp"

namespace insched::sim {

struct MdParams {
  double dt = 0.005;         ///< integration step (reduced units)
  double cutoff = 2.5;       ///< LJ cutoff (sigma units)
  double epsilon = 1.0;
  double sigma = 1.0;        ///< base LJ diameter, scaled per species below
  double temperature = 1.0;  ///< thermostat target (reduced, kB = 1)
  double gamma = 0.1;        ///< Langevin friction; 0 disables the thermostat
  std::uint64_t seed = 1234; ///< thermostat noise seed

  /// Per-species diameter scale (Lorentz mixing: sigma_ij is the mean).
  /// Water hydrogens are small so the intra-molecular O-H contact stays
  /// softly repulsive instead of blowing up a single-size LJ fluid.
  std::array<double, kSpeciesCount> species_sigma_scale = {1.0, 0.4, 1.0, 1.0, 1.0, 1.0};
};

class LjSimulation final : public ISimulation {
 public:
  LjSimulation(ParticleSystem system, MdParams params);

  void step() override;
  [[nodiscard]] long current_step() const noexcept override { return step_; }
  [[nodiscard]] double output_frame_bytes() const noexcept override {
    return system_.frame_bytes();
  }
  [[nodiscard]] std::string name() const override { return "lj-md"; }

  [[nodiscard]] ParticleSystem& system() noexcept { return system_; }
  [[nodiscard]] const ParticleSystem& system() const noexcept { return system_; }
  [[nodiscard]] const MdParams& params() const noexcept { return params_; }
  [[nodiscard]] double potential_energy() const noexcept { return potential_energy_; }
  [[nodiscard]] double total_energy() const noexcept {
    return potential_energy_ + system_.kinetic_energy();
  }

  /// Assigns Maxwell-Boltzmann velocities at the target temperature and
  /// removes the net momentum drift.
  void thermalize(std::uint64_t seed);

  /// Steepest-descent energy minimization with per-particle displacement
  /// capped at `max_move` — resolves builder overlaps before dynamics (the
  /// equivalent of LAMMPS `minimize` before `run`).
  void minimize(int iterations = 100, double max_move = 0.05);

 private:
  void compute_forces();

  ParticleSystem system_;
  MdParams params_;
  std::vector<double> fx_, fy_, fz_;
  double potential_energy_ = 0.0;
  long step_ = 0;
  Rng rng_;
};

}  // namespace insched::sim
