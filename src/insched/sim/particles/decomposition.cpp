#include "insched/sim/particles/decomposition.hpp"

#include <algorithm>
#include <cmath>

#include "insched/support/assert.hpp"

namespace insched::sim {

DomainDecomposition::DomainDecomposition(const ParticleSystem& system, int ranks_per_axis)
    : system_(system), ranks_axis_(ranks_per_axis) {
  INSCHED_EXPECTS(ranks_per_axis >= 1);
  counts_.assign(static_cast<std::size_t>(ranks()), 0);
  for (std::size_t i = 0; i < system.size(); ++i)
    ++counts_[static_cast<std::size_t>(owner(i))];
}

std::int64_t DomainDecomposition::ranks() const noexcept {
  const auto r = static_cast<std::int64_t>(ranks_axis_);
  return r * r * r;
}

std::int64_t DomainDecomposition::owner(std::size_t i) const {
  INSCHED_EXPECTS(i < system_.size());
  const Box& box = system_.box();
  const auto cell = [&](double coord, double extent) {
    const double w = Box::wrap(coord, extent);
    return std::min<std::int64_t>(ranks_axis_ - 1,
                                  static_cast<std::int64_t>(w / extent * ranks_axis_));
  };
  const std::int64_t cx = cell(system_.x[i], box.lx);
  const std::int64_t cy = cell(system_.y[i], box.ly);
  const std::int64_t cz = cell(system_.z[i], box.lz);
  return (cz * ranks_axis_ + cy) * ranks_axis_ + cx;
}

DecompositionStats DomainDecomposition::stats(double cutoff) const {
  INSCHED_EXPECTS(cutoff >= 0.0);
  DecompositionStats out;
  out.ranks = ranks();
  out.min_particles = counts_.empty() ? 0 : *std::min_element(counts_.begin(), counts_.end());
  out.max_particles = counts_.empty() ? 0 : *std::max_element(counts_.begin(), counts_.end());
  out.mean_particles =
      static_cast<double>(system_.size()) / static_cast<double>(out.ranks);
  out.imbalance = out.mean_particles > 0.0
                      ? static_cast<double>(out.max_particles) / out.mean_particles
                      : 1.0;

  // Halo census: a particle contributes one copy per subdomain face it sits
  // within `cutoff` of (corner particles are shipped to several neighbors).
  const Box& box = system_.box();
  const double wx = box.lx / ranks_axis_;
  const double wy = box.ly / ranks_axis_;
  const double wz = box.lz / ranks_axis_;
  double halo = 0.0;
  for (std::size_t i = 0; i < system_.size(); ++i) {
    const auto near_face = [&](double coord, double width) {
      const double local = std::fmod(Box::wrap(coord, width * ranks_axis_), width);
      return (local < cutoff || width - local < cutoff) ? 1.0 : 0.0;
    };
    halo += near_face(system_.x[i], wx) + near_face(system_.y[i], wy) +
            near_face(system_.z[i], wz);
  }
  out.mean_halo_particles = halo / static_cast<double>(out.ranks);
  out.mean_halo_bytes = out.mean_halo_particles * 6.0 * sizeof(double);
  return out;
}

}  // namespace insched::sim
