#pragma once

// Bilinear interpolation over a SampleGrid — the paper's performance
// prediction strategy (Section 4, Figure 2). Axes may be linear or
// logarithmic: problem sizes and process counts usually span decades, and
// interpolating in log-space keeps the relative error flat across scales.

#include "insched/perfmodel/sample_grid.hpp"

namespace insched::perfmodel {

enum class AxisScale { kLinear, kLog };

class BilinearInterpolator {
 public:
  BilinearInterpolator() = default;

  /// The grid must contain at least one point per axis; log-scaled axes
  /// require strictly positive coordinates. A log `value_scale` interpolates
  /// log(z) and exponentiates the result — exact for power-law surfaces
  /// (t ~ n^a / p^b), which is what keeps execution-time prediction error in
  /// the paper's <6%/<8% band on coarse factor-2 measurement grids. Requires
  /// strictly positive sample values.
  explicit BilinearInterpolator(SampleGrid grid, AxisScale x_scale = AxisScale::kLinear,
                                AxisScale y_scale = AxisScale::kLinear,
                                AxisScale value_scale = AxisScale::kLinear);

  /// Interpolates at (x, y). Points outside the sampled rectangle are
  /// linearly extrapolated from the nearest edge cell.
  [[nodiscard]] double operator()(double x, double y) const;

  [[nodiscard]] const SampleGrid& grid() const noexcept { return grid_; }

 private:
  [[nodiscard]] double map_x(double x) const;
  [[nodiscard]] double map_y(double y) const;

  SampleGrid grid_;
  AxisScale x_scale_ = AxisScale::kLinear;
  AxisScale y_scale_ = AxisScale::kLinear;
  AxisScale value_scale_ = AxisScale::kLinear;
  std::vector<double> mapped_xs_;
  std::vector<double> mapped_ys_;
};

}  // namespace insched::perfmodel
