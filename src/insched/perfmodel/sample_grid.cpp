#include "insched/perfmodel/sample_grid.hpp"

#include <algorithm>

#include "insched/support/assert.hpp"

namespace insched::perfmodel {

SampleGrid::SampleGrid(std::vector<double> xs, std::vector<double> ys,
                       std::vector<double> values)
    : xs_(std::move(xs)), ys_(std::move(ys)), values_(std::move(values)) {
  INSCHED_EXPECTS(!xs_.empty() && !ys_.empty());
  INSCHED_EXPECTS(values_.size() == xs_.size() * ys_.size());
  INSCHED_EXPECTS(std::is_sorted(xs_.begin(), xs_.end()));
  INSCHED_EXPECTS(std::is_sorted(ys_.begin(), ys_.end()));
  INSCHED_EXPECTS(std::adjacent_find(xs_.begin(), xs_.end()) == xs_.end());
  INSCHED_EXPECTS(std::adjacent_find(ys_.begin(), ys_.end()) == ys_.end());
}

double SampleGrid::at(std::size_t ix, std::size_t iy) const {
  INSCHED_EXPECTS(ix < nx() && iy < ny());
  return values_[iy * nx() + ix];
}

bool SampleGrid::contains(double x, double y) const noexcept {
  if (empty()) return false;
  return x >= xs_.front() && x <= xs_.back() && y >= ys_.front() && y <= ys_.back();
}

}  // namespace insched::perfmodel
