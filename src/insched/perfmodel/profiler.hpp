#pragma once

// Region profiler in the spirit of IBM's HPM (HPM_Start/HPM_Stop): named
// regions accumulate call counts and wall-clock totals; nested regions are
// recorded with a path key ("runtime/analysis/rdf"). Thread-safe; each
// thread keeps its own region stack.

#include <chrono>
#include <map>
#include <string>

#include "insched/support/thread_annotations.hpp"

namespace insched::perfmodel {

struct RegionStats {
  long count = 0;
  double total_s = 0.0;
  double min_s = 0.0;
  double max_s = 0.0;
  [[nodiscard]] double mean_s() const noexcept {
    return count > 0 ? total_s / static_cast<double>(count) : 0.0;
  }
};

class Profiler {
 public:
  /// Pushes a region; regions nest per thread.
  void start(const std::string& name);

  /// Pops the innermost region; `name` must match the innermost start().
  void stop(const std::string& name);

  /// Adds an externally timed sample to a region (used by the virtual
  /// executor, whose "time" is modeled rather than measured).
  void add_sample(const std::string& path, double seconds);

  [[nodiscard]] RegionStats stats(const std::string& path) const;
  [[nodiscard]] std::map<std::string, RegionStats> all() const;

  void reset();

  /// Renders an aligned report sorted by total time.
  [[nodiscard]] std::string report() const;

  /// Process-wide instance used by the INSCHED_PROFILE macro.
  static Profiler& global();

 private:
  mutable Mutex mutex_;
  std::map<std::string, RegionStats> regions_ INSCHED_GUARDED_BY(mutex_);
};

/// RAII region guard.
class ScopedRegion {
 public:
  ScopedRegion(Profiler& profiler, std::string name)
      : profiler_(profiler), name_(std::move(name)) {
    profiler_.start(name_);
  }
  ~ScopedRegion() { profiler_.stop(name_); }
  ScopedRegion(const ScopedRegion&) = delete;
  ScopedRegion& operator=(const ScopedRegion&) = delete;

 private:
  Profiler& profiler_;
  std::string name_;
};

#define INSCHED_PROFILE(name) \
  ::insched::perfmodel::ScopedRegion insched_profile_region_(::insched::perfmodel::Profiler::global(), name)

}  // namespace insched::perfmodel
