#include "insched/perfmodel/bilinear.hpp"

#include <algorithm>
#include <cmath>

#include "insched/support/assert.hpp"

namespace insched::perfmodel {

namespace {

double map_axis(double v, AxisScale scale) {
  if (scale == AxisScale::kLog) {
    INSCHED_EXPECTS(v > 0.0);
    return std::log(v);
  }
  return v;
}

/// Index of the cell [i, i+1] to use for coordinate t over sorted axis `a`;
/// clamps to edge cells so out-of-range queries extrapolate linearly.
std::size_t locate(const std::vector<double>& a, double t) {
  if (a.size() == 1) return 0;
  const auto it = std::upper_bound(a.begin(), a.end(), t);
  std::size_t hi = static_cast<std::size_t>(it - a.begin());
  hi = std::clamp<std::size_t>(hi, 1, a.size() - 1);
  return hi - 1;
}

/// Interpolation weight within cell [a[i], a[i+1]]; unclamped (allows
/// extrapolation weights < 0 or > 1).
double weight(const std::vector<double>& a, std::size_t i, double t) {
  if (a.size() == 1) return 0.0;
  const double lo = a[i];
  const double hi = a[i + 1];
  return (t - lo) / (hi - lo);
}

}  // namespace

BilinearInterpolator::BilinearInterpolator(SampleGrid grid, AxisScale x_scale,
                                           AxisScale y_scale, AxisScale value_scale)
    : grid_(std::move(grid)), x_scale_(x_scale), y_scale_(y_scale), value_scale_(value_scale) {
  INSCHED_EXPECTS(!grid_.empty());
  mapped_xs_.reserve(grid_.nx());
  for (double x : grid_.xs()) mapped_xs_.push_back(map_axis(x, x_scale_));
  mapped_ys_.reserve(grid_.ny());
  for (double y : grid_.ys()) mapped_ys_.push_back(map_axis(y, y_scale_));
}

double BilinearInterpolator::map_x(double x) const { return map_axis(x, x_scale_); }
double BilinearInterpolator::map_y(double y) const { return map_axis(y, y_scale_); }

double BilinearInterpolator::operator()(double x, double y) const {
  INSCHED_EXPECTS(!grid_.empty());
  const double tx = map_x(x);
  const double ty = map_y(y);
  const std::size_t ix = locate(mapped_xs_, tx);
  const std::size_t iy = locate(mapped_ys_, ty);
  const double wx = weight(mapped_xs_, ix, tx);
  const double wy = weight(mapped_ys_, iy, ty);

  const std::size_t ix1 = grid_.nx() == 1 ? ix : ix + 1;
  const std::size_t iy1 = grid_.ny() == 1 ? iy : iy + 1;
  double z00 = grid_.at(ix, iy);
  double z10 = grid_.at(ix1, iy);
  double z01 = grid_.at(ix, iy1);
  double z11 = grid_.at(ix1, iy1);
  if (value_scale_ == AxisScale::kLog) {
    z00 = map_axis(z00, AxisScale::kLog);
    z10 = map_axis(z10, AxisScale::kLog);
    z01 = map_axis(z01, AxisScale::kLog);
    z11 = map_axis(z11, AxisScale::kLog);
  }
  const double z = z00 * (1.0 - wx) * (1.0 - wy) + z10 * wx * (1.0 - wy) +
                   z01 * (1.0 - wx) * wy + z11 * wx * wy;
  return value_scale_ == AxisScale::kLog ? std::exp(z) : z;
}

}  // namespace insched::perfmodel
