#pragma once

// Kernel performance predictor (paper Section 4): bilinear interpolation of
// measured execution times and memory.
//   - compute time:        x = problem size, y = process count
//   - communication time:  x = problem size, y = network diameter
//   - memory:              x = problem size, y = process count
// The paper reports <6% compute and <8% communication prediction error with
// this scheme; tests and bench/fig2_interpolation reproduce those bounds on
// synthetic cost surfaces.

#include <optional>

#include "insched/perfmodel/bilinear.hpp"

namespace insched::perfmodel {

struct PredictorScales {
  AxisScale problem_size = AxisScale::kLog;  ///< sizes span decades
  AxisScale process_count = AxisScale::kLog;
  AxisScale diameter = AxisScale::kLinear;   ///< network diameters are small ints
};

class KernelPredictor {
 public:
  KernelPredictor() = default;

  KernelPredictor& set_compute(SampleGrid grid);
  KernelPredictor& set_communication(SampleGrid grid);
  KernelPredictor& set_memory(SampleGrid grid);
  KernelPredictor& set_scales(PredictorScales scales);

  /// Predicted compute seconds at (problem size, process count).
  [[nodiscard]] double compute_time(double problem_size, double procs) const;

  /// Predicted communication seconds at (problem size, network diameter).
  [[nodiscard]] double comm_time(double problem_size, double diameter) const;

  /// Predicted total kernel seconds; communication term is omitted when no
  /// communication grid was provided.
  [[nodiscard]] double total_time(double problem_size, double procs, double diameter) const;

  /// Predicted memory bytes per rank at (problem size, process count).
  [[nodiscard]] double memory(double problem_size, double procs) const;

  [[nodiscard]] bool has_compute() const noexcept { return compute_.has_value(); }
  [[nodiscard]] bool has_communication() const noexcept { return comm_.has_value(); }
  [[nodiscard]] bool has_memory() const noexcept { return memory_.has_value(); }

 private:
  PredictorScales scales_;
  std::optional<BilinearInterpolator> compute_;
  std::optional<BilinearInterpolator> comm_;
  std::optional<BilinearInterpolator> memory_;
  // Grids retained until scales are known (interpolators are built lazily).
  std::optional<SampleGrid> compute_grid_, comm_grid_, memory_grid_;
  void rebuild();
};

}  // namespace insched::perfmodel
