#include "insched/perfmodel/profiler.hpp"

#include <algorithm>
#include <vector>

#include "insched/support/assert.hpp"
#include "insched/support/string_util.hpp"
#include "insched/support/table.hpp"

namespace insched::perfmodel {

namespace {

using Clock = std::chrono::steady_clock;

struct Frame {
  std::string path;
  std::string name;  ///< as passed to start(); names may themselves contain '/'
  Clock::time_point begin;
};

thread_local std::vector<Frame> t_stack;

}  // namespace

void Profiler::start(const std::string& name) {
  std::string path = t_stack.empty() ? name : t_stack.back().path + "/" + name;
  t_stack.push_back(Frame{std::move(path), name, Clock::now()});
}

void Profiler::stop(const std::string& name) {
  INSCHED_EXPECTS(!t_stack.empty());
  const Frame frame = t_stack.back();
  t_stack.pop_back();
  // The innermost region must be the one being stopped.
  INSCHED_EXPECTS(frame.name == name);
  const double seconds = std::chrono::duration<double>(Clock::now() - frame.begin).count();
  add_sample(frame.path, seconds);
}

void Profiler::add_sample(const std::string& path, double seconds) {
  MutexLock lock(mutex_);
  RegionStats& s = regions_[path];
  if (s.count == 0) {
    s.min_s = seconds;
    s.max_s = seconds;
  } else {
    s.min_s = std::min(s.min_s, seconds);
    s.max_s = std::max(s.max_s, seconds);
  }
  ++s.count;
  s.total_s += seconds;
}

RegionStats Profiler::stats(const std::string& path) const {
  MutexLock lock(mutex_);
  const auto it = regions_.find(path);
  return it == regions_.end() ? RegionStats{} : it->second;
}

std::map<std::string, RegionStats> Profiler::all() const {
  MutexLock lock(mutex_);
  return regions_;
}

void Profiler::reset() {
  MutexLock lock(mutex_);
  regions_.clear();
}

std::string Profiler::report() const {
  const auto snapshot = all();
  std::vector<std::pair<std::string, RegionStats>> rows(snapshot.begin(), snapshot.end());
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.second.total_s > b.second.total_s; });
  Table table("profiler report");
  table.set_header({"region", "count", "total", "mean", "min", "max"});
  for (const auto& [path, s] : rows) {
    table.add_row({path, format("%ld", s.count), format_seconds(s.total_s),
                   format_seconds(s.mean_s()), format_seconds(s.min_s),
                   format_seconds(s.max_s)});
  }
  return table.render();
}

Profiler& Profiler::global() {
  static Profiler instance;
  return instance;
}

}  // namespace insched::perfmodel
