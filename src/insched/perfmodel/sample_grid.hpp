#pragma once

// Rectilinear grid of measured samples: values z(x, y) on the cross product
// of sorted x-coordinates (problem size) and y-coordinates (process count or
// network diameter). Feeds the bilinear interpolator (paper Section 4).

#include <cstddef>
#include <vector>

namespace insched::perfmodel {

class SampleGrid {
 public:
  SampleGrid() = default;

  /// Builds a grid from coordinate axes and a row-major value matrix
  /// (values[iy * xs.size() + ix]). Axes must be strictly increasing.
  SampleGrid(std::vector<double> xs, std::vector<double> ys, std::vector<double> values);

  [[nodiscard]] std::size_t nx() const noexcept { return xs_.size(); }
  [[nodiscard]] std::size_t ny() const noexcept { return ys_.size(); }
  [[nodiscard]] const std::vector<double>& xs() const noexcept { return xs_; }
  [[nodiscard]] const std::vector<double>& ys() const noexcept { return ys_; }
  [[nodiscard]] double at(std::size_t ix, std::size_t iy) const;
  [[nodiscard]] bool empty() const noexcept { return xs_.empty() || ys_.empty(); }

  /// True when (x, y) lies inside the sampled rectangle (no extrapolation).
  [[nodiscard]] bool contains(double x, double y) const noexcept;

 private:
  std::vector<double> xs_;
  std::vector<double> ys_;
  std::vector<double> values_;  // row-major [iy][ix]
};

/// Convenience builder: samples `f` on the given axes to produce a grid.
/// Used by tests and by cost probes that measure a kernel at grid points.
template <typename F>
[[nodiscard]] SampleGrid sample_function(std::vector<double> xs, std::vector<double> ys, F&& f) {
  std::vector<double> values;
  values.reserve(xs.size() * ys.size());
  for (double y : ys)
    for (double x : xs) values.push_back(f(x, y));
  return SampleGrid(std::move(xs), std::move(ys), std::move(values));
}

}  // namespace insched::perfmodel
