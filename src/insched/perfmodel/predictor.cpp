#include "insched/perfmodel/predictor.hpp"

#include "insched/support/assert.hpp"

namespace insched::perfmodel {

void KernelPredictor::rebuild() {
  if (compute_grid_)
    compute_.emplace(*compute_grid_, scales_.problem_size, scales_.process_count);
  if (comm_grid_) comm_.emplace(*comm_grid_, scales_.problem_size, scales_.diameter);
  if (memory_grid_)
    memory_.emplace(*memory_grid_, scales_.problem_size, scales_.process_count);
}

KernelPredictor& KernelPredictor::set_compute(SampleGrid grid) {
  compute_grid_ = std::move(grid);
  rebuild();
  return *this;
}

KernelPredictor& KernelPredictor::set_communication(SampleGrid grid) {
  comm_grid_ = std::move(grid);
  rebuild();
  return *this;
}

KernelPredictor& KernelPredictor::set_memory(SampleGrid grid) {
  memory_grid_ = std::move(grid);
  rebuild();
  return *this;
}

KernelPredictor& KernelPredictor::set_scales(PredictorScales scales) {
  scales_ = scales;
  rebuild();
  return *this;
}

double KernelPredictor::compute_time(double problem_size, double procs) const {
  INSCHED_EXPECTS(compute_.has_value());
  return (*compute_)(problem_size, procs);
}

double KernelPredictor::comm_time(double problem_size, double diameter) const {
  INSCHED_EXPECTS(comm_.has_value());
  return (*comm_)(problem_size, diameter);
}

double KernelPredictor::total_time(double problem_size, double procs, double diameter) const {
  double total = compute_time(problem_size, procs);
  if (comm_) total += (*comm_)(problem_size, diameter);
  return total;
}

double KernelPredictor::memory(double problem_size, double procs) const {
  INSCHED_EXPECTS(memory_.has_value());
  return (*memory_)(problem_size, procs);
}

}  // namespace insched::perfmodel
