#include "insched/mip/heuristics.hpp"

#include <algorithm>
#include <cmath>

#include "insched/support/assert.hpp"

namespace insched::mip {

namespace {

[[nodiscard]] double clamp_round(const lp::Column& col, double v) {
  double r = std::round(v);
  r = std::max(r, std::ceil(col.lower - 1e-9));
  r = std::min(r, std::floor(col.upper + 1e-9));
  return r;
}

[[nodiscard]] bool is_fractional(double v, double tol) {
  return std::fabs(v - std::round(v)) > tol;
}

}  // namespace

std::optional<std::vector<double>> round_and_fix(const lp::Model& model,
                                                 const std::vector<double>& lp_point,
                                                 const lp::SimplexOptions& lp_options,
                                                 double int_tol) {
  INSCHED_EXPECTS(lp_point.size() == static_cast<std::size_t>(model.num_columns()));
  lp::Model fixed = model;
  bool any_integer = false;
  for (int j = 0; j < model.num_columns(); ++j) {
    const lp::Column& c = model.column(j);
    if (c.type == lp::VarType::kContinuous) continue;
    any_integer = true;
    const double r = clamp_round(c, lp_point[static_cast<std::size_t>(j)]);
    if (r < c.lower - 1e-9 || r > c.upper + 1e-9) return std::nullopt;
    fixed.set_bounds(j, r, r);
  }
  if (!any_integer) return lp_point;

  const lp::SimplexResult res = lp::solve_lp(fixed, lp_options);
  if (!res.optimal()) return std::nullopt;
  std::vector<double> x = res.x;
  // Snap the integers exactly to avoid tolerance drift downstream.
  for (int j = 0; j < model.num_columns(); ++j) {
    if (model.column(j).type != lp::VarType::kContinuous)
      x[static_cast<std::size_t>(j)] = std::round(x[static_cast<std::size_t>(j)]);
  }
  if (!model.is_feasible(x, std::max(int_tol, 1e-6))) return std::nullopt;
  return x;
}

std::optional<std::vector<double>> dive(const lp::Model& model,
                                        const std::vector<double>& lp_point,
                                        const lp::SimplexOptions& lp_options,
                                        double int_tol, int max_depth) {
  lp::Model work = model;
  std::vector<double> current = lp_point;
  for (int depth = 0; depth < max_depth; ++depth) {
    // Pick the least-fractional unfixed integer variable.
    int pick = -1;
    double best_dist = 0.5 + 1e-9;
    for (int j = 0; j < work.num_columns(); ++j) {
      const lp::Column& c = work.column(j);
      if (c.type == lp::VarType::kContinuous) continue;
      if (c.lower == c.upper) continue;
      const double v = current[static_cast<std::size_t>(j)];
      if (!is_fractional(v, int_tol)) continue;
      const double dist = std::fabs(v - std::round(v));
      if (dist < best_dist) {
        best_dist = dist;
        pick = j;
      }
    }
    if (pick < 0) {
      // All integral: try to finish with a plain round-and-fix (also fixes
      // near-integral drift and re-checks feasibility).
      return round_and_fix(model, current, lp_options, int_tol);
    }
    const lp::Column& col = work.column(pick);
    const double v = current[static_cast<std::size_t>(pick)];
    const double nearest = clamp_round(col, v);
    // Nearest first; if that direction is LP-infeasible, try the other side.
    const double other =
        nearest >= v ? std::max(nearest - 1.0, std::ceil(col.lower - 1e-9))
                     : std::min(nearest + 1.0, std::floor(col.upper + 1e-9));
    const double saved_lo = col.lower;
    const double saved_hi = col.upper;
    work.set_bounds(pick, nearest, nearest);
    lp::SimplexResult res = lp::solve_lp(work, lp_options);
    if (!res.optimal() && other != nearest) {
      work.set_bounds(pick, other, other);
      res = lp::solve_lp(work, lp_options);
    }
    if (!res.optimal()) {
      work.set_bounds(pick, saved_lo, saved_hi);
      return std::nullopt;
    }
    current = res.x;
  }
  return std::nullopt;
}

namespace {

// Shared state for the greedy_fill passes below: the 0/1-capable integer
// columns, their transposed row entries, and the running row activities.
struct FillState {
  struct ColEntry {
    int row = -1;
    double coeff = 0.0;
  };
  const lp::Model* model = nullptr;
  std::vector<double>* x = nullptr;
  std::vector<int> cols;                       ///< 0/1-capable integer columns
  std::vector<char> is01;                      ///< column -> member of `cols`
  std::vector<std::vector<ColEntry>> col_rows; ///< transpose, those columns only
  std::vector<double> gain;                    ///< objective gain of col at 1
  std::vector<double> usage;                   ///< sum of the col's kLe coeffs
  std::vector<double> act;                     ///< row activities of *x

  static constexpr double kTol = 1e-7;

  void build(const lp::Model& m, std::vector<double>* point) {
    model = &m;
    x = point;
    const bool maximize = m.sense() == lp::Sense::kMaximize;
    is01.assign(static_cast<std::size_t>(m.num_columns()), 0);
    gain.assign(static_cast<std::size_t>(m.num_columns()), 0.0);
    usage.assign(static_cast<std::size_t>(m.num_columns()), 0.0);
    for (int j = 0; j < m.num_columns(); ++j) {
      const lp::Column& c = m.column(j);
      if (c.type == lp::VarType::kContinuous) continue;
      if (c.lower > kTol || c.upper < 1.0 - kTol) continue;
      cols.push_back(j);
      is01[static_cast<std::size_t>(j)] = 1;
      gain[static_cast<std::size_t>(j)] = maximize ? c.objective : -c.objective;
    }
    act.assign(static_cast<std::size_t>(m.num_rows()), 0.0);
    col_rows.assign(static_cast<std::size_t>(m.num_columns()), {});
    for (int i = 0; i < m.num_rows(); ++i) {
      const lp::Row& row = m.row(i);
      double a = 0.0;
      for (const lp::RowEntry& e : row.entries) {
        a += e.coeff * (*x)[static_cast<std::size_t>(e.column)];
        if (is01[static_cast<std::size_t>(e.column)]) {
          col_rows[static_cast<std::size_t>(e.column)].push_back({i, e.coeff});
          if (row.type == lp::RowType::kLe)
            usage[static_cast<std::size_t>(e.column)] += e.coeff;
        }
      }
      act[static_cast<std::size_t>(i)] = a;
    }
  }

  [[nodiscard]] bool at(int j, double v) const {
    return std::fabs((*x)[static_cast<std::size_t>(j)] - v) <= kTol;
  }

  [[nodiscard]] bool row_ok(const lp::Row& row, double na) const {
    switch (row.type) {
      case lp::RowType::kLe: return na <= row.rhs + kTol;
      case lp::RowType::kGe: return na >= row.rhs - kTol;
      case lp::RowType::kEq: return std::fabs(na - row.rhs) <= kTol;
    }
    return false;
  }

  void apply(int j, double delta) {
    (*x)[static_cast<std::size_t>(j)] += delta;
    for (const ColEntry& e : col_rows[static_cast<std::size_t>(j)])
      act[static_cast<std::size_t>(e.row)] += delta * e.coeff;
  }

  /// Can column `j` move by `delta` with every row staying feasible?
  [[nodiscard]] bool move_ok(int j, double delta) const {
    for (const ColEntry& e : col_rows[static_cast<std::size_t>(j)]) {
      const double na = act[static_cast<std::size_t>(e.row)] + delta * e.coeff;
      if (!row_ok(model->row(e.row), na)) return false;
    }
    return true;
  }

  /// Can `off` replace `on` (simultaneous -1/+1) feasibly? Rows shared by
  /// both columns see the combined delta.
  [[nodiscard]] bool swap_ok(int on, int off) const {
    const auto& on_rows = col_rows[static_cast<std::size_t>(on)];
    auto coeff_in = [&](int row) {
      for (const ColEntry& e : on_rows)
        if (e.row == row) return e.coeff;
      return 0.0;
    };
    for (const ColEntry& e : col_rows[static_cast<std::size_t>(off)]) {
      const double na =
          act[static_cast<std::size_t>(e.row)] + e.coeff - coeff_in(e.row);
      if (!row_ok(model->row(e.row), na)) return false;
    }
    for (const ColEntry& e : on_rows) {
      bool shared = false;
      for (const ColEntry& f : col_rows[static_cast<std::size_t>(off)])
        if (f.row == e.row) { shared = true; break; }
      if (shared) continue;  // handled above with the combined delta
      const double na = act[static_cast<std::size_t>(e.row)] - e.coeff;
      if (!row_ok(model->row(e.row), na)) return false;
    }
    return true;
  }

  struct Move {
    int col = -1;
    double delta = 0.0;
  };

  /// Merges the per-row deltas of a simultaneous multi-column move and
  /// returns (row, delta) pairs sorted by row.
  [[nodiscard]] std::vector<std::pair<int, double>> move_deltas(
      const std::vector<Move>& moves) const {
    std::vector<std::pair<int, double>> rd;
    for (const Move& m : moves)
      for (const ColEntry& e : col_rows[static_cast<std::size_t>(m.col)])
        rd.emplace_back(e.row, m.delta * e.coeff);
    std::sort(rd.begin(), rd.end());
    std::size_t out = 0;
    for (std::size_t k = 0; k < rd.size(); ++k) {
      if (out > 0 && rd[out - 1].first == rd[k].first) rd[out - 1].second += rd[k].second;
      else rd[out++] = rd[k];
    }
    rd.resize(out);
    return rd;
  }

  /// First row a simultaneous move would violate, or -1 if feasible.
  [[nodiscard]] int first_blocked(const std::vector<Move>& moves) const {
    for (const auto& [row, delta] : move_deltas(moves)) {
      if (!row_ok(model->row(row), act[static_cast<std::size_t>(row)] + delta))
        return row;
    }
    return -1;
  }

  void apply_moves(const std::vector<Move>& moves) {
    for (const Move& m : moves) apply(m.col, m.delta);
  }
};

/// One greedy pass flipping on, in descending objective-gain order, every
/// improving 0/1 column whose activation keeps all rows feasible.
int fill_pass(FillState* st) {
  struct Cand {
    int col = -1;
    double gain = 0.0;
  };
  std::vector<Cand> cands;
  for (int j : st->cols) {
    if (!st->at(j, 0.0)) continue;
    const double g = st->gain[static_cast<std::size_t>(j)];
    if (g > FillState::kTol) cands.push_back({j, g});
  }
  std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
    if (a.gain != b.gain) return a.gain > b.gain;
    return a.col < b.col;
  });
  int flips = 0;
  for (const Cand& c : cands) {
    if (!st->move_ok(c.col, 1.0)) continue;
    st->apply(c.col, 1.0);
    ++flips;
  }
  return flips;
}

/// One lateral pass replacing active columns with equal-gain columns of
/// strictly smaller kLe-row usage. The objective is unchanged but budget-type
/// slack strictly grows, which is what unlocks the next fill pass on rows
/// packed with near-equal coefficients (e.g. the paper's R2/R3 analyses at
/// 17.193 vs 17.194 s/step: the optimum uses only the cheaper one).
int swap_pass(FillState* st) {
  std::vector<int> on;
  std::vector<int> off;
  for (int j : st->cols) {
    if (st->at(j, 1.0)) on.push_back(j);
    else if (st->at(j, 0.0)) off.push_back(j);
  }
  // Most wasteful first; candidate replacements cheapest first.
  std::sort(on.begin(), on.end(), [&](int a, int b) {
    const double ua = st->usage[static_cast<std::size_t>(a)];
    const double ub = st->usage[static_cast<std::size_t>(b)];
    if (ua != ub) return ua > ub;
    return a < b;
  });
  std::sort(off.begin(), off.end(), [&](int a, int b) {
    const double ua = st->usage[static_cast<std::size_t>(a)];
    const double ub = st->usage[static_cast<std::size_t>(b)];
    if (ua != ub) return ua < ub;
    return a < b;
  });
  int swaps = 0;
  for (int u : on) {
    for (int v : off) {
      if (st->usage[static_cast<std::size_t>(v)] >=
          st->usage[static_cast<std::size_t>(u)] - 1e-12)
        break;  // off is usage-sorted: no cheaper replacement exists
      if (std::fabs(st->gain[static_cast<std::size_t>(v)] -
                    st->gain[static_cast<std::size_t>(u)]) > 1e-9)
        continue;
      if (!st->swap_ok(u, v)) continue;
      st->apply(u, -1.0);
      st->apply(v, 1.0);
      ++swaps;
      break;
    }
  }
  return swaps;
}

/// Activation-repair pass for the linked active/step structure (paper Eqs 2-9
/// collapsed): a positive-gain binary u (an `a_i` activation) can be blocked
/// by a kGe support row requiring a second binary v (one `x_{i,j}` step) to
/// come up with it, and the pair can in turn overrun a kLe budget row that a
/// lower-gain binary w must vacate. Tries u alone is skipped (fill_pass owns
/// it), then {u,v}, then {u,v,-w}; every accepted move strictly raises the
/// objective.
int repair_pass(FillState* st) {
  struct Cand {
    int col = -1;
    double gain = 0.0;
  };
  std::vector<Cand> cands;
  for (int j : st->cols) {
    if (!st->at(j, 0.0)) continue;
    const double g = st->gain[static_cast<std::size_t>(j)];
    if (g > FillState::kTol) cands.push_back({j, g});
  }
  std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
    if (a.gain != b.gain) return a.gain > b.gain;
    return a.col < b.col;
  });

  int repairs = 0;
  for (const Cand& cand : cands) {
    const int u = cand.col;
    if (!st->at(u, 0.0)) continue;       // an earlier repair flipped it
    if (st->move_ok(u, 1.0)) continue;   // fill_pass territory
    // The move needs support: find the kGe row the lone flip violates.
    int support_row = -1;
    for (const auto& e : st->col_rows[static_cast<std::size_t>(u)]) {
      const lp::Row& row = st->model->row(e.row);
      if (row.type != lp::RowType::kGe) continue;
      if (!st->row_ok(row, st->act[static_cast<std::size_t>(e.row)] + e.coeff)) {
        support_row = e.row;
        break;
      }
    }
    if (support_row < 0) continue;
    // Supporters: off binaries raising the violated kGe row, cheapest first.
    std::vector<int> supporters;
    for (const lp::RowEntry& e : st->model->row(support_row).entries) {
      if (e.column == u || e.coeff <= 0.0) continue;
      if (!st->is01[static_cast<std::size_t>(e.column)]) continue;
      if (st->at(e.column, 0.0)) supporters.push_back(e.column);
    }
    std::sort(supporters.begin(), supporters.end(), [&](int a, int b) {
      const double ua = st->usage[static_cast<std::size_t>(a)];
      const double ub = st->usage[static_cast<std::size_t>(b)];
      if (ua != ub) return ua < ub;
      return a < b;
    });
    constexpr int kMaxSupporters = 64;
    constexpr int kMaxVacate = 64;
    bool done = false;
    int tried = 0;
    for (int v : supporters) {
      if (done || ++tried > kMaxSupporters) break;
      std::vector<FillState::Move> pair_mv{{u, 1.0}, {v, 1.0}};
      const int blocked = st->first_blocked(pair_mv);
      if (blocked < 0) {
        st->apply_moves(pair_mv);
        ++repairs;
        done = true;
        break;
      }
      const lp::Row& brow = st->model->row(blocked);
      if (brow.type != lp::RowType::kLe) continue;
      // Budget overrun: vacate one lower-gain binary that frees enough of it.
      // `over` is how far the pair overruns this row, so only on-columns
      // whose coefficient covers it are worth a full feasibility test.
      double pair_delta = 0.0;
      for (const lp::RowEntry& e : brow.entries)
        if (e.column == u || e.column == v) pair_delta += e.coeff;
      const double over =
          st->act[static_cast<std::size_t>(blocked)] + pair_delta - brow.rhs;
      const double pair_gain = cand.gain + st->gain[static_cast<std::size_t>(v)];
      int attempts = 0;
      for (const lp::RowEntry& e : brow.entries) {
        const int w = e.column;
        if (w == u || w == v || e.coeff < over - FillState::kTol) continue;
        if (!st->is01[static_cast<std::size_t>(w)] || !st->at(w, 1.0)) continue;
        if (st->gain[static_cast<std::size_t>(w)] >= pair_gain - FillState::kTol)
          continue;  // the 3-move must still improve the objective
        if (++attempts > kMaxVacate) break;
        std::vector<FillState::Move> triple{{u, 1.0}, {v, 1.0}, {w, -1.0}};
        if (st->first_blocked(triple) >= 0) continue;
        st->apply_moves(triple);
        ++repairs;
        done = true;
        break;
      }
    }
  }
  return repairs;
}

}  // namespace

int greedy_fill(const lp::Model& model, std::vector<double>* x) {
  INSCHED_EXPECTS(x != nullptr &&
                  x->size() == static_cast<std::size_t>(model.num_columns()));
  FillState st;
  st.build(model, x);
  if (st.cols.empty()) return 0;
  // Alternate the passes: fills and repairs raise the objective, swaps free
  // budget for the next fill. Each accepted move strictly improves
  // (objective, -usage) lexicographically, so the loop cannot cycle; the cap
  // is just a backstop.
  int improved = 0;
  for (int round = 0; round < 8; ++round) {
    improved += fill_pass(&st);
    const int swaps = swap_pass(&st);
    const int repairs = repair_pass(&st);
    improved += repairs;
    if (swaps + repairs == 0) break;
  }
  return improved;
}

}  // namespace insched::mip
