#include "insched/mip/heuristics.hpp"

#include <algorithm>
#include <cmath>

#include "insched/support/assert.hpp"

namespace insched::mip {

namespace {

[[nodiscard]] double clamp_round(const lp::Column& col, double v) {
  double r = std::round(v);
  r = std::max(r, std::ceil(col.lower - 1e-9));
  r = std::min(r, std::floor(col.upper + 1e-9));
  return r;
}

[[nodiscard]] bool is_fractional(double v, double tol) {
  return std::fabs(v - std::round(v)) > tol;
}

}  // namespace

std::optional<std::vector<double>> round_and_fix(const lp::Model& model,
                                                 const std::vector<double>& lp_point,
                                                 const lp::SimplexOptions& lp_options,
                                                 double int_tol) {
  INSCHED_EXPECTS(lp_point.size() == static_cast<std::size_t>(model.num_columns()));
  lp::Model fixed = model;
  bool any_integer = false;
  for (int j = 0; j < model.num_columns(); ++j) {
    const lp::Column& c = model.column(j);
    if (c.type == lp::VarType::kContinuous) continue;
    any_integer = true;
    const double r = clamp_round(c, lp_point[static_cast<std::size_t>(j)]);
    if (r < c.lower - 1e-9 || r > c.upper + 1e-9) return std::nullopt;
    fixed.set_bounds(j, r, r);
  }
  if (!any_integer) return lp_point;

  const lp::SimplexResult res = lp::solve_lp(fixed, lp_options);
  if (!res.optimal()) return std::nullopt;
  std::vector<double> x = res.x;
  // Snap the integers exactly to avoid tolerance drift downstream.
  for (int j = 0; j < model.num_columns(); ++j) {
    if (model.column(j).type != lp::VarType::kContinuous)
      x[static_cast<std::size_t>(j)] = std::round(x[static_cast<std::size_t>(j)]);
  }
  if (!model.is_feasible(x, std::max(int_tol, 1e-6))) return std::nullopt;
  return x;
}

std::optional<std::vector<double>> dive(const lp::Model& model,
                                        const std::vector<double>& lp_point,
                                        const lp::SimplexOptions& lp_options,
                                        double int_tol, int max_depth) {
  lp::Model work = model;
  std::vector<double> current = lp_point;
  for (int depth = 0; depth < max_depth; ++depth) {
    // Pick the least-fractional unfixed integer variable.
    int pick = -1;
    double best_dist = 0.5 + 1e-9;
    for (int j = 0; j < work.num_columns(); ++j) {
      const lp::Column& c = work.column(j);
      if (c.type == lp::VarType::kContinuous) continue;
      if (c.lower == c.upper) continue;
      const double v = current[static_cast<std::size_t>(j)];
      if (!is_fractional(v, int_tol)) continue;
      const double dist = std::fabs(v - std::round(v));
      if (dist < best_dist) {
        best_dist = dist;
        pick = j;
      }
    }
    if (pick < 0) {
      // All integral: try to finish with a plain round-and-fix (also fixes
      // near-integral drift and re-checks feasibility).
      return round_and_fix(model, current, lp_options, int_tol);
    }
    const lp::Column& col = work.column(pick);
    const double v = current[static_cast<std::size_t>(pick)];
    const double nearest = clamp_round(col, v);
    // Nearest first; if that direction is LP-infeasible, try the other side.
    const double other =
        nearest >= v ? std::max(nearest - 1.0, std::ceil(col.lower - 1e-9))
                     : std::min(nearest + 1.0, std::floor(col.upper + 1e-9));
    const double saved_lo = col.lower;
    const double saved_hi = col.upper;
    work.set_bounds(pick, nearest, nearest);
    lp::SimplexResult res = lp::solve_lp(work, lp_options);
    if (!res.optimal() && other != nearest) {
      work.set_bounds(pick, other, other);
      res = lp::solve_lp(work, lp_options);
    }
    if (!res.optimal()) {
      work.set_bounds(pick, saved_lo, saved_hi);
      return std::nullopt;
    }
    current = res.x;
  }
  return std::nullopt;
}

}  // namespace insched::mip
