#include "insched/mip/node_pool.hpp"

#include <algorithm>

#include "insched/support/assert.hpp"

namespace insched::mip {

// ---------------------------------------------------------------------------
// NodePool

NodePool::NodePool(int workers)
    : inflight_(static_cast<std::size_t>(std::max(1, workers)),
                std::numeric_limits<double>::infinity()) {}

void NodePool::push(NodePtr node, int tid) {
  node->producer = tid;
  {
    MutexLock lock(mu_);
    open_.insert(std::move(node));
  }
  cv_.notify_one();
}

NodePtr NodePool::pop(int tid) {
  MutexLock lock(mu_);
  while (true) {
    if (stop_.load(std::memory_order_relaxed)) return nullptr;
    if (!open_.empty()) {
      NodePtr node = *open_.begin();
      open_.erase(open_.begin());
      ++active_;
      inflight_[static_cast<std::size_t>(tid)] = node->parent_bound;
      if (node->producer != tid) steals_.fetch_add(1, std::memory_order_relaxed);
      return node;
    }
    if (active_ == 0) {
      // Globally idle and empty: wake everyone so all workers exit.
      cv_.notify_all();
      return nullptr;
    }
    cv_.wait(mu_);
  }
}

void NodePool::task_done(int tid) {
  bool was_last = false;
  {
    MutexLock lock(mu_);
    INSCHED_ASSERT(active_ > 0);
    --active_;
    inflight_[static_cast<std::size_t>(tid)] = std::numeric_limits<double>::infinity();
    was_last = active_ == 0 && open_.empty();
  }
  // A retiring worker may have been the last producer: wake sleepers either
  // to pick up children it pushed or to observe global termination.
  if (was_last) cv_.notify_all();
}

void NodePool::stop() {
  stop_.store(true, std::memory_order_relaxed);
  cv_.notify_all();
}

double NodePool::best_open_bound() const {
  MutexLock lock(mu_);
  double best = std::numeric_limits<double>::infinity();
  if (!open_.empty()) best = (*open_.begin())->parent_bound;
  for (const double b : inflight_) best = std::min(best, b);
  return best;
}

std::size_t NodePool::size() const {
  MutexLock lock(mu_);
  return open_.size();
}

// ---------------------------------------------------------------------------
// FactorCache

FactorCache::FactorCache(std::size_t capacity) : capacity_(std::max<std::size_t>(1, capacity)) {}

void FactorCache::put(long id, std::shared_ptr<const lp::Factorization> factor) {
  if (!factor) return;
  const std::size_t bytes = factor->bytes();
  const std::size_t dense_bytes = factor->dense_equivalent_bytes();
  MutexLock lock(mu_);
  auto it = map_.find(id);
  if (it != map_.end()) {
    bytes_ += bytes - it->second.bytes;
    dense_bytes_ += dense_bytes - it->second.dense_bytes;
    order_.erase(it->second.pos);
    order_.push_front(id);
    it->second = {std::move(factor), order_.begin(), bytes, dense_bytes};
  } else {
    order_.push_front(id);
    map_.emplace(id, Slot{std::move(factor), order_.begin(), bytes, dense_bytes});
    bytes_ += bytes;
    dense_bytes_ += dense_bytes;
    while (map_.size() > capacity_) {
      auto victim = map_.find(order_.back());
      bytes_ -= victim->second.bytes;
      dense_bytes_ -= victim->second.dense_bytes;
      map_.erase(victim);
      order_.pop_back();
    }
  }
  if (bytes_ > peak_bytes_.load(std::memory_order_relaxed))
    peak_bytes_.store(bytes_, std::memory_order_relaxed);
  if (dense_bytes_ > peak_dense_bytes_.load(std::memory_order_relaxed))
    peak_dense_bytes_.store(dense_bytes_, std::memory_order_relaxed);
}

std::shared_ptr<const lp::Factorization> FactorCache::get(long id) {
  MutexLock lock(mu_);
  auto it = map_.find(id);
  if (it == map_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  order_.erase(it->second.pos);
  order_.push_front(id);
  it->second.pos = order_.begin();
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second.factor;
}

// ---------------------------------------------------------------------------
// Incumbent

bool Incumbent::offer(double obj, const std::vector<double>& x, long node_id) {
  MutexLock lock(mu_);
  const double current = obj_.load(std::memory_order_relaxed);
  const bool better = obj < current - 1e-12;
  const bool tie_wins = obj < current + 1e-12 && node_id < node_id_;
  if (!better && !tie_wins) return false;
  // Tie acceptances keep the *objective* monotone: never store a larger one.
  obj_.store(std::min(obj, current), std::memory_order_relaxed);
  x_ = x;
  node_id_ = node_id;
  return true;
}

std::pair<double, std::vector<double>> Incumbent::snapshot() const {
  MutexLock lock(mu_);
  return {obj_.load(std::memory_order_relaxed), x_};
}

// ---------------------------------------------------------------------------
// Pseudo-costs

void PseudoCostTable::resize(int columns) {
  up_sum.assign(static_cast<std::size_t>(columns), 0.0);
  down_sum.assign(static_cast<std::size_t>(columns), 0.0);
  up_n.assign(static_cast<std::size_t>(columns), 0);
  down_n.assign(static_cast<std::size_t>(columns), 0);
}

void PseudoCostTable::record(int column, bool up, double degradation, double frac) {
  if (frac <= 1e-12) return;
  const double per_unit = degradation / frac;
  const auto j = static_cast<std::size_t>(column);
  if (up) {
    up_sum[j] += per_unit;
    ++up_n[j];
  } else {
    down_sum[j] += per_unit;
    ++down_n[j];
  }
}

void PseudoCostTable::add(const PseudoCostTable& delta) {
  for (std::size_t j = 0; j < up_sum.size() && j < delta.up_sum.size(); ++j) {
    up_sum[j] += delta.up_sum[j];
    down_sum[j] += delta.down_sum[j];
    up_n[j] += delta.up_n[j];
    down_n[j] += delta.down_n[j];
  }
}

void PseudoCostTable::clear_counts() {
  std::fill(up_sum.begin(), up_sum.end(), 0.0);
  std::fill(down_sum.begin(), down_sum.end(), 0.0);
  std::fill(up_n.begin(), up_n.end(), 0L);
  std::fill(down_n.begin(), down_n.end(), 0L);
}

SharedPseudoCosts::SharedPseudoCosts(int columns) { global_.resize(columns); }

void SharedPseudoCosts::merge(PseudoCostTable* delta, PseudoCostTable* snapshot) {
  MutexLock lock(mu_);
  global_.add(*delta);
  delta->clear_counts();
  if (snapshot) *snapshot = global_;
  merges_.fetch_add(1, std::memory_order_relaxed);
}

PseudoCostTable SharedPseudoCosts::snapshot() const {
  MutexLock lock(mu_);
  return global_;
}

}  // namespace insched::mip
