#pragma once

// Probing presolve over the binary variables of a MIP. For every candidate
// binary x_j both assignments are tried and propagated through the rows with
// activity-bound (interval) arithmetic:
//
//  * probe x_j = v infeasible            -> fix x_j = 1 - v globally;
//  * both probes force the same y = w    -> fix y = w globally;
//  * the probes force y = w0 and y = w1  -> y is an affine function of x_j
//    (y == x_j or y == 1 - x_j): aggregate y away;
//  * probe x_j = 1 forces y = 0 (or vice versa) -> conflict edge, recorded
//    as an implication and fed to the clique separator.
//
// `apply_probing` turns the findings into an `lp::PresolveResult`: fixed and
// aggregated columns are substituted out of every row and the objective, and
// the surviving <=/>= rows get their binary coefficients tightened against
// the row activity bounds (a_j' = a_j - delta, rhs' = rhs - delta with
// delta = rhs - maxact_without_j > 0 cuts fractional points but no integer
// ones). `PresolveResult::restore` re-derives the eliminated columns.

#include <vector>

#include "insched/lp/model.hpp"
#include "insched/lp/presolve.hpp"

namespace insched::mip {

struct ProbingOptions {
  int max_probe_columns = 2048;  ///< probe at most this many binaries
  int max_passes = 3;            ///< propagation sweeps per probe
  double feas_tol = 1e-7;
};

/// One discovered implication between binary columns: `antecedent == value`
/// forces `consequent == forced`.
struct Implication {
  int antecedent = -1;
  bool value = false;
  int consequent = -1;
  bool forced = false;
};

struct ProbingResult {
  bool infeasible = false;
  /// Columns fixed by probing (indices into the probed model), with values.
  std::vector<int> fixed_columns;
  std::vector<double> fixed_values;
  /// Binary columns that turned out affine in another binary.
  std::vector<lp::AggregatedColumn> aggregations;
  /// Conflict-flavoured implications that survive as neither fixing nor
  /// aggregation (used to extend the clique separator's conflict graph).
  std::vector<Implication> implications;
  long probes = 0;  ///< 0/1 assignments propagated

  [[nodiscard]] bool has_reductions() const noexcept {
    return infeasible || !fixed_columns.empty() || !aggregations.empty();
  }
};

[[nodiscard]] ProbingResult probe_binaries(const lp::Model& model,
                                           const ProbingOptions& options = {});

/// Applies fixings + aggregations to `model`, tightens coefficients, and
/// returns the reduction (with `tightened` reporting how many coefficients
/// moved). Only valid when `!result.infeasible`.
[[nodiscard]] lp::PresolveResult apply_probing(const lp::Model& model,
                                               const ProbingResult& result,
                                               long* tightened = nullptr);

/// Conflict graph over binary columns: an edge (i, j) means x_i + x_j <= 1.
/// Built from small GUB-style rows (at-most-one windows, pairwise-exclusive
/// knapsack pairs) plus probing implications; queried by the clique
/// separator.
class ConflictGraph {
 public:
  ConflictGraph() = default;
  explicit ConflictGraph(int columns) { adj_.resize(static_cast<std::size_t>(columns)); }

  void resize(int columns) { adj_.resize(static_cast<std::size_t>(columns)); }
  void add_edge(int a, int b);
  /// Adds edges implied by `model`'s rows (rows with more than
  /// `max_row_entries` live entries are skipped to bound the quadratic pair
  /// scan) and by (x=1 -> y=0)-shaped implications.
  void build(const lp::Model& model, const std::vector<Implication>& implications,
             int max_row_entries = 96);

  [[nodiscard]] bool adjacent(int a, int b) const;
  [[nodiscard]] const std::vector<int>& neighbors(int a) const {
    return adj_[static_cast<std::size_t>(a)];
  }
  [[nodiscard]] int columns() const noexcept { return static_cast<int>(adj_.size()); }
  [[nodiscard]] long edges() const noexcept { return edges_; }

 private:
  std::vector<std::vector<int>> adj_;  ///< sorted, deduplicated after build()
  long edges_ = 0;
};

}  // namespace insched::mip
