#include "insched/mip/probing.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "insched/support/assert.hpp"

namespace insched::mip {
namespace {

constexpr double kChangeTol = 1e-6;  ///< minimum bound improvement worth keeping

/// Rounds a derived bound onto the integer lattice for integer columns. The
/// margin is looser than the presolve one because propagated bounds carry
/// accumulated arithmetic error from chained rows.
double round_down(double v) { return std::floor(v + 1e-6 + 1e-9 * std::fabs(v)); }
double round_up(double v) { return std::ceil(v - 1e-6 - 1e-9 * std::fabs(v)); }

/// Queue-driven activity-bound propagator over the rows of a fixed model.
/// Bound vectors are owned by the caller so one Propagator serves both the
/// global bounds and the per-probe scratch copies.
class Propagator {
 public:
  Propagator(const lp::Model& model, double ftol) : model_(&model), ftol_(ftol) {
    const int n = model.num_columns();
    col_rows_.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < model.num_rows(); ++i) {
      for (const lp::RowEntry& e : model.row(i).entries)
        col_rows_[static_cast<std::size_t>(e.column)].push_back(i);
    }
    in_queue_.assign(static_cast<std::size_t>(model.num_rows()), 0);
    col_touched_.assign(static_cast<std::size_t>(n), 0);
  }

  void seed_all_rows() {
    for (int i = 0; i < model_->num_rows(); ++i) enqueue(i);
  }
  void seed_column(int j) {
    for (int r : col_rows_[static_cast<std::size_t>(j)]) enqueue(r);
  }

  /// Drains the queue, tightening `lo`/`hi` in place. Columns whose bounds
  /// move are appended to `touched` (each at most once per run). Returns
  /// false when a row is proven infeasible. `budget` caps entry visits so
  /// pathological big-M chains cannot spin; running out is safe (bounds stay
  /// valid, just less tight).
  bool run(std::vector<double>& lo, std::vector<double>& hi, std::vector<int>& touched,
           long budget) {
    touched.clear();
    bool feasible = true;
    while (!queue_.empty()) {
      const int r = queue_.back();
      queue_.pop_back();
      in_queue_[static_cast<std::size_t>(r)] = 0;
      if (!feasible) continue;  // drain bookkeeping, no more work
      const lp::Row& row = model_->row(r);
      budget -= static_cast<long>(row.entries.size());
      if (budget < 0) {
        // Out of budget: drain remaining queue flags and stop tightening.
        for (int q : queue_) in_queue_[static_cast<std::size_t>(q)] = 0;
        queue_.clear();
        break;
      }
      if (!process_row(r, row, lo, hi, touched)) feasible = false;
    }
    for (int j : touched) col_touched_[static_cast<std::size_t>(j)] = 0;
    return feasible;
  }

 private:
  void enqueue(int r) {
    auto& flag = in_queue_[static_cast<std::size_t>(r)];
    if (flag) return;
    flag = 1;
    queue_.push_back(r);
  }

  void touch(int j, std::vector<int>& touched) {
    auto& flag = col_touched_[static_cast<std::size_t>(j)];
    if (!flag) {
      flag = 1;
      touched.push_back(j);
    }
    seed_column(j);
  }

  bool process_row(int /*r*/, const lp::Row& row, std::vector<double>& lo,
                   std::vector<double>& hi, std::vector<int>& touched) {
    // Activity bounds with infinity counting so a single unbounded column can
    // still receive a bound from the finite remainder.
    double amin = 0.0;
    double amax = 0.0;
    int inf_min = 0;
    int inf_max = 0;
    int inf_min_col = -1;
    int inf_max_col = -1;
    for (const lp::RowEntry& e : row.entries) {
      const auto j = static_cast<std::size_t>(e.column);
      const double cmin = e.coeff > 0 ? e.coeff * lo[j] : e.coeff * hi[j];
      const double cmax = e.coeff > 0 ? e.coeff * hi[j] : e.coeff * lo[j];
      if (std::isfinite(cmin)) {
        amin += cmin;
      } else {
        ++inf_min;
        inf_min_col = e.column;
      }
      if (std::isfinite(cmax)) {
        amax += cmax;
      } else {
        ++inf_max;
        inf_max_col = e.column;
      }
    }
    const double rtol = ftol_ * (1.0 + std::fabs(row.rhs));
    const bool need_le = row.type != lp::RowType::kGe;  // Le or Eq: activity <= rhs
    const bool need_ge = row.type != lp::RowType::kLe;  // Ge or Eq: activity >= rhs
    if (need_le && inf_min == 0 && amin > row.rhs + rtol) return false;
    if (need_ge && inf_max == 0 && amax < row.rhs - rtol) return false;

    for (const lp::RowEntry& e : row.entries) {
      const auto j = static_cast<std::size_t>(e.column);
      const bool integral = model_->column(e.column).type != lp::VarType::kContinuous;
      if (need_le && (inf_min == 0 || (inf_min == 1 && inf_min_col == e.column))) {
        const double cmin = e.coeff > 0 ? e.coeff * lo[j] : e.coeff * hi[j];
        const double rest = inf_min == 0 ? amin - cmin : amin;
        double bound = (row.rhs - rest) / e.coeff;
        if (e.coeff > 0) {
          if (integral) bound = round_down(bound);
          if (bound < hi[j] - kChangeTol) {
            hi[j] = bound;
            if (lo[j] > hi[j] + ftol_) return false;
            touch(e.column, touched);
          }
        } else {
          if (integral) bound = round_up(bound);
          if (bound > lo[j] + kChangeTol) {
            lo[j] = bound;
            if (lo[j] > hi[j] + ftol_) return false;
            touch(e.column, touched);
          }
        }
      }
      if (need_ge && (inf_max == 0 || (inf_max == 1 && inf_max_col == e.column))) {
        const double cmax = e.coeff > 0 ? e.coeff * hi[j] : e.coeff * lo[j];
        const double rest = inf_max == 0 ? amax - cmax : amax;
        double bound = (row.rhs - rest) / e.coeff;
        if (e.coeff > 0) {
          if (integral) bound = round_up(bound);
          if (bound > lo[j] + kChangeTol) {
            lo[j] = bound;
            if (lo[j] > hi[j] + ftol_) return false;
            touch(e.column, touched);
          }
        } else {
          if (integral) bound = round_down(bound);
          if (bound < hi[j] - kChangeTol) {
            hi[j] = bound;
            if (lo[j] > hi[j] + ftol_) return false;
            touch(e.column, touched);
          }
        }
      }
    }
    return true;
  }

  const lp::Model* model_;
  double ftol_;
  std::vector<std::vector<int>> col_rows_;
  std::vector<int> queue_;
  std::vector<char> in_queue_;
  std::vector<char> col_touched_;
};

enum class ColState : char { kFree, kFixed, kAggregated };

}  // namespace

ProbingResult probe_binaries(const lp::Model& model, const ProbingOptions& options) {
  ProbingResult out;
  const int n = model.num_columns();
  if (n == 0 || model.num_rows() == 0) return out;

  std::vector<double> glo(static_cast<std::size_t>(n));
  std::vector<double> ghi(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    const lp::Column& c = model.column(j);
    double lo = c.lower;
    double hi = c.upper;
    if (c.type != lp::VarType::kContinuous) {
      if (std::isfinite(lo)) lo = round_up(lo);
      if (std::isfinite(hi)) hi = round_down(hi);
    }
    if (lo > hi + options.feas_tol) {
      out.infeasible = true;
      return out;
    }
    glo[static_cast<std::size_t>(j)] = lo;
    ghi[static_cast<std::size_t>(j)] = hi;
  }

  Propagator prop(model, options.feas_tol);
  const long nnz = [&] {
    long t = 0;
    for (int i = 0; i < model.num_rows(); ++i)
      t += static_cast<long>(model.row(i).entries.size());
    return t;
  }();
  const long probe_budget = std::max<long>(4096, options.max_passes * nnz);
  std::vector<int> touched;

  // Root propagation: logical consequences of the bounds alone.
  prop.seed_all_rows();
  if (!prop.run(glo, ghi, touched, 4 * probe_budget)) {
    out.infeasible = true;
    return out;
  }

  std::vector<ColState> state(static_cast<std::size_t>(n), ColState::kFree);
  const auto record_fix = [&](int j, double v) {
    if (model.column(j).type != lp::VarType::kContinuous) v = std::round(v);
    state[static_cast<std::size_t>(j)] = ColState::kFixed;
    out.fixed_columns.push_back(j);
    out.fixed_values.push_back(v);
  };
  // Columns the root propagation already pinned.
  for (int j = 0; j < n; ++j) {
    const auto js = static_cast<std::size_t>(j);
    if (ghi[js] - glo[js] <= options.feas_tol &&
        !(model.column(j).lower >= model.column(j).upper))
      record_fix(j, glo[js]);
    else if (model.column(j).lower >= model.column(j).upper)
      state[js] = ColState::kFixed;  // fixed in the input model; not ours to report
  }

  // Candidate binaries, probed in column order (deterministic).
  std::vector<int> candidates;
  for (int j = 0; j < n; ++j) {
    const auto js = static_cast<std::size_t>(j);
    if (state[js] != ColState::kFree) continue;
    if (model.column(j).type == lp::VarType::kContinuous) continue;
    if (glo[js] == 0.0 && ghi[js] == 1.0) candidates.push_back(j);
    if (static_cast<int>(candidates.size()) >= options.max_probe_columns) break;
  }

  std::vector<double> lo0;
  std::vector<double> hi0;
  std::vector<double> lo1;
  std::vector<double> hi1;
  std::vector<int> touched0;
  std::vector<int> touched1;
  const auto fix_and_propagate = [&](int j, double v) -> bool {
    glo[static_cast<std::size_t>(j)] = v;
    ghi[static_cast<std::size_t>(j)] = v;
    record_fix(j, v);
    prop.seed_column(j);
    if (!prop.run(glo, ghi, touched, probe_budget)) return false;
    for (int k : touched) {
      const auto ks = static_cast<std::size_t>(k);
      if (state[ks] == ColState::kFree && ghi[ks] - glo[ks] <= options.feas_tol)
        record_fix(k, glo[ks]);
    }
    return true;
  };

  constexpr std::size_t kMaxImplications = 200000;
  for (const int j : candidates) {
    const auto js = static_cast<std::size_t>(j);
    if (state[js] != ColState::kFree) continue;
    if (glo[js] != 0.0 || ghi[js] != 1.0) continue;  // tightened meanwhile

    lo0 = glo;
    hi0 = ghi;
    lo1 = glo;
    hi1 = ghi;
    lo0[js] = hi0[js] = 0.0;
    lo1[js] = hi1[js] = 1.0;
    prop.seed_column(j);
    const bool feas0 = prop.run(lo0, hi0, touched0, probe_budget);
    prop.seed_column(j);
    const bool feas1 = prop.run(lo1, hi1, touched1, probe_budget);
    out.probes += 2;

    if (!feas0 && !feas1) {
      out.infeasible = true;
      return out;
    }
    if (!feas0 || !feas1) {
      if (!fix_and_propagate(j, feas0 ? 0.0 : 1.0)) {
        out.infeasible = true;
        return out;
      }
      continue;
    }

    // Both probes feasible: inspect binaries forced by either side. Only
    // columns touched by a probe can differ from the global bounds.
    for (const std::vector<int>* tl : {&touched0, &touched1}) {
      for (const int k : *tl) {
        const auto ks = static_cast<std::size_t>(k);
        if (k == j || state[ks] != ColState::kFree) continue;
        if (glo[ks] != 0.0 || ghi[ks] != 1.0) continue;  // only clean binaries
        const bool f0 = hi0[ks] - lo0[ks] <= options.feas_tol;
        const bool f1 = hi1[ks] - lo1[ks] <= options.feas_tol;
        if (!f0 && !f1) continue;
        const double v0 = f0 ? std::round(lo0[ks]) : -1.0;
        const double v1 = f1 ? std::round(lo1[ks]) : -1.0;
        if (f0 && f1) {
          if (v0 == v1) {
            if (!fix_and_propagate(k, v0)) {
              out.infeasible = true;
              return out;
            }
          } else {
            // k == v0 + (v1 - v0) * j, i.e. k == j or k == 1 - j.
            state[ks] = ColState::kAggregated;
            out.aggregations.push_back(lp::AggregatedColumn{k, j, v1 - v0, v0});
          }
        } else if (f1 && out.implications.size() < kMaxImplications) {
          out.implications.push_back(Implication{j, true, k, v1 != 0.0});
        } else if (f0 && out.implications.size() < kMaxImplications) {
          out.implications.push_back(Implication{j, false, k, v0 != 0.0});
        }
      }
    }
  }
  return out;
}

lp::PresolveResult apply_probing(const lp::Model& model, const ProbingResult& result,
                                 long* tightened) {
  INSCHED_EXPECTS(!result.infeasible);
  const int n = model.num_columns();
  const int m = model.num_rows();
  lp::PresolveResult out;
  if (tightened) *tightened = 0;

  enum class S : char { kKeep, kFixed, kAgg };
  std::vector<S> st(static_cast<std::size_t>(n), S::kKeep);
  std::vector<double> fixed(static_cast<std::size_t>(n), 0.0);
  struct Affine {
    int source = -1;
    double scale = 1.0;
    double offset = 0.0;
  };
  std::vector<Affine> agg(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < result.fixed_columns.size(); ++i) {
    const auto c = static_cast<std::size_t>(result.fixed_columns[i]);
    st[c] = S::kFixed;
    fixed[c] = result.fixed_values[i];
  }
  for (const lp::AggregatedColumn& a : result.aggregations) {
    const auto c = static_cast<std::size_t>(a.column);
    INSCHED_EXPECTS(st[c] == S::kKeep);
    st[c] = S::kAgg;
    agg[c] = Affine{a.source, a.scale, a.offset};
  }
  // Resolve aggregation chains to a kept source or a constant. Chains are
  // acyclic by construction (each edge points at a column that was still free
  // when the edge was recorded).
  for (int c = 0; c < n; ++c) {
    const auto cs = static_cast<std::size_t>(c);
    if (st[cs] != S::kAgg) continue;
    double sc = agg[cs].scale;
    double off = agg[cs].offset;
    int s = agg[cs].source;
    int guard = 0;
    while (st[static_cast<std::size_t>(s)] == S::kAgg) {
      const Affine& a = agg[static_cast<std::size_t>(s)];
      off += sc * a.offset;
      sc *= a.scale;
      s = a.source;
      INSCHED_EXPECTS(++guard <= n);
    }
    if (st[static_cast<std::size_t>(s)] == S::kFixed) {
      st[cs] = S::kFixed;
      fixed[cs] = sc * fixed[static_cast<std::size_t>(s)] + off;
    } else {
      agg[cs] = Affine{s, sc, off};
    }
  }

  // Columns: kept ones carry objective mass folded in from their aggregates.
  out.column_map.assign(static_cast<std::size_t>(n), -1);
  out.fixed_values.assign(static_cast<std::size_t>(n), 0.0);
  std::vector<double> obj(static_cast<std::size_t>(n), 0.0);
  double obj_constant = model.objective_constant();
  for (int c = 0; c < n; ++c) {
    const auto cs = static_cast<std::size_t>(c);
    const double w = model.column(c).objective;
    switch (st[cs]) {
      case S::kKeep:
        obj[cs] += w;
        break;
      case S::kFixed:
        out.fixed_values[cs] = fixed[cs];
        obj_constant += w * fixed[cs];
        ++out.removed_columns;
        break;
      case S::kAgg:
        obj[static_cast<std::size_t>(agg[cs].source)] += w * agg[cs].scale;
        obj_constant += w * agg[cs].offset;
        ++out.removed_columns;
        break;
    }
  }
  out.reduced.set_sense(model.sense());
  for (int c = 0; c < n; ++c) {
    const auto cs = static_cast<std::size_t>(c);
    if (st[cs] != S::kKeep) continue;
    const lp::Column& col = model.column(c);
    out.column_map[cs] =
        out.reduced.add_column(col.name, col.lower, col.upper, obj[cs], col.type);
  }
  out.reduced.set_objective_constant(obj_constant);
  for (const lp::AggregatedColumn& a : result.aggregations) {
    const auto cs = static_cast<std::size_t>(a.column);
    if (st[cs] == S::kAgg)
      out.aggregated.push_back(lp::AggregatedColumn{a.column, agg[cs].source,
                                                    agg[cs].scale, agg[cs].offset});
    // chains that resolved to constants are plain fixed columns now
  }

  // Rows: substitute, then tighten binary coefficients on inequality rows.
  constexpr double kRowTol = 1e-7;
  for (int i = 0; i < m; ++i) {
    const lp::Row& row = model.row(i);
    double shift = 0.0;
    std::vector<lp::RowEntry> entries;
    entries.reserve(row.entries.size());
    for (const lp::RowEntry& e : row.entries) {
      const auto cs = static_cast<std::size_t>(e.column);
      switch (st[cs]) {
        case S::kKeep:
          entries.push_back(lp::RowEntry{out.column_map[cs], e.coeff});
          break;
        case S::kFixed:
          shift += e.coeff * fixed[cs];
          break;
        case S::kAgg: {
          const Affine& a = agg[cs];
          entries.push_back(lp::RowEntry{
              out.column_map[static_cast<std::size_t>(a.source)], e.coeff * a.scale});
          shift += e.coeff * a.offset;
          break;
        }
      }
    }
    double rhs = row.rhs - shift;
    if (entries.empty()) {
      const bool ok = (row.type == lp::RowType::kLe && rhs >= -kRowTol) ||
                      (row.type == lp::RowType::kGe && rhs <= kRowTol) ||
                      (row.type == lp::RowType::kEq && std::fabs(rhs) <= kRowTol);
      if (!ok) {
        out.infeasible = true;
        return out;
      }
      ++out.removed_rows;
      continue;
    }
    const int r = out.reduced.add_row(row.name, row.type, rhs, std::move(entries));
    out.reduced.set_row_kind(r, row.kind);
  }

  // Coefficient tightening pass over the rebuilt inequality rows. For a <=
  // row with binary x_j, coeff a > 0 and slack at "everything else maxed,
  // x_j = 0" of delta = rhs - maxact_without_j in (0, a): replacing (a, rhs)
  // with (a - delta, rhs - delta) keeps every integer point and shaves the
  // fractional corner. Negative coefficients pull toward zero symmetrically.
  long tight = 0;
  for (int i = 0; i < out.reduced.num_rows(); ++i) {
    const lp::Row& row = out.reduced.row(i);
    if (row.type == lp::RowType::kEq) continue;
    const double sign = row.type == lp::RowType::kLe ? 1.0 : -1.0;
    double maxact = 0.0;  // of sign * activity
    bool finite = true;
    for (const lp::RowEntry& e : row.entries) {
      const lp::Column& c = out.reduced.column(e.column);
      const double a = sign * e.coeff;
      const double top = a > 0 ? a * c.upper : a * c.lower;
      if (!std::isfinite(top)) {
        finite = false;
        break;
      }
      maxact += top;
    }
    if (!finite) continue;
    double rhs = sign * row.rhs;
    if (maxact <= rhs + kRowTol) continue;  // redundant rows are rare; leave them
    for (std::size_t k = 0; k < row.entries.size(); ++k) {
      const lp::RowEntry e = row.entries[k];
      const lp::Column& c = out.reduced.column(e.column);
      if (c.type == lp::VarType::kContinuous || c.lower != 0.0 || c.upper != 1.0)
        continue;
      const double a = sign * e.coeff;
      if (a > kRowTol) {
        const double delta = rhs - (maxact - a);
        if (delta > kRowTol && delta < a - kRowTol) {
          out.reduced.set_row_coeff(i, static_cast<int>(k), sign * (a - delta));
          out.reduced.set_row_rhs(i, sign * (rhs - delta));
          rhs -= delta;
          maxact -= delta;
          ++tight;
        }
      } else if (a < -kRowTol) {
        // max contribution of x_j is 0; when x_j = 1 the row relaxes by |a|.
        const double delta = rhs - (maxact + a);
        if (delta > kRowTol) {
          const double na = std::min(0.0, a + delta);
          out.reduced.set_row_coeff(i, static_cast<int>(k), sign * na);
          ++tight;
        }
      }
    }
  }
  if (tightened) *tightened = tight;
  return out;
}

void ConflictGraph::add_edge(int a, int b) {
  if (a == b) return;
  adj_[static_cast<std::size_t>(a)].push_back(b);
  adj_[static_cast<std::size_t>(b)].push_back(a);
}

void ConflictGraph::build(const lp::Model& model, const std::vector<Implication>& implications,
                          int max_row_entries) {
  resize(model.num_columns());
  const auto is_binary = [&](int j) {
    const lp::Column& c = model.column(j);
    return c.type != lp::VarType::kContinuous && c.lower == 0.0 && c.upper == 1.0;
  };
  for (int i = 0; i < model.num_rows(); ++i) {
    const lp::Row& row = model.row(i);
    if (row.type == lp::RowType::kGe) continue;  // Le and Eq give an upper side
    // Interval windows (Eq 9: sum of binaries <= small rhs) are structural
    // clique rows, so they always participate regardless of width.
    if (static_cast<int>(row.entries.size()) > max_row_entries &&
        row.kind != lp::RowKind::kInterval)
      continue;
    // min activity over the box; pairs whose joint activation must exceed rhs
    // even under the most forgiving completion conflict.
    double amin = 0.0;
    bool finite = true;
    for (const lp::RowEntry& e : row.entries) {
      const lp::Column& c = model.column(e.column);
      const double v = e.coeff > 0 ? e.coeff * c.lower : e.coeff * c.upper;
      if (!std::isfinite(v)) {
        finite = false;
        break;
      }
      amin += v;
    }
    if (!finite) continue;
    for (std::size_t p = 0; p < row.entries.size(); ++p) {
      const lp::RowEntry& ep = row.entries[p];
      if (ep.coeff <= 0 || !is_binary(ep.column)) continue;
      for (std::size_t q = p + 1; q < row.entries.size(); ++q) {
        const lp::RowEntry& eq = row.entries[q];
        if (eq.coeff <= 0 || !is_binary(eq.column)) continue;
        // min contributions of p and q are 0 (positive coeff, binary).
        if (amin + ep.coeff + eq.coeff > row.rhs + 1e-7) add_edge(ep.column, eq.column);
      }
    }
  }
  for (const Implication& imp : implications) {
    if (imp.antecedent < 0 || imp.consequent < 0) continue;
    if (imp.antecedent >= columns() || imp.consequent >= columns()) continue;
    if (imp.value && !imp.forced) add_edge(imp.antecedent, imp.consequent);
  }
  edges_ = 0;
  for (auto& nb : adj_) {
    std::sort(nb.begin(), nb.end());
    nb.erase(std::unique(nb.begin(), nb.end()), nb.end());
    edges_ += static_cast<long>(nb.size());
  }
  edges_ /= 2;
}

bool ConflictGraph::adjacent(int a, int b) const {
  const auto& nb = adj_[static_cast<std::size_t>(a)];
  return std::binary_search(nb.begin(), nb.end(), b);
}

}  // namespace insched::mip
