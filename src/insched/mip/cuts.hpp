#pragma once

// Cutting-plane separators for the MIP search.
//
//  * Knapsack cover cuts (optionally lifted) on <= rows over positive binary
//    coefficients — the paper's collapsed budget rows (Eqs 2-8).
//  * Clique/GUB cuts on the conflict graph assembled from interval windows
//    (Eq 9) and probing implications.
//  * Gomory mixed-integer cuts read off the simplex tableau: one BTRAN of
//    e_r against the LU factorization per candidate row, then the cut is
//    rewritten in structural space by substituting the row slacks out.
//
// Every separator returns globally valid cuts (derived from rows + global
// bounds only), except generate_gomory_cuts, which bakes the *current* column
// bounds into the slack substitution and must therefore only be called at
// the root (or with node-local validity handling).

#include <cstdint>
#include <vector>

#include "insched/lp/basis.hpp"
#include "insched/lp/model.hpp"
#include "insched/mip/probing.hpp"

namespace insched::mip {

enum class CutFamily : std::uint8_t { kCover, kLiftedCover, kClique, kGomory, kMir };

[[nodiscard]] const char* cut_family_name(CutFamily family) noexcept;

struct Cut {
  lp::RowType type = lp::RowType::kLe;
  CutFamily family = CutFamily::kCover;
  double rhs = 0.0;
  std::vector<lp::RowEntry> entries;  ///< sorted by column, no duplicates
  double violation = 0.0;  ///< amount by which the LP point violates the cut
};

/// Scans every <= row whose live entries are all binary columns with positive
/// coefficients, finds a minimal cover C (sum of coefficients over C exceeds
/// the rhs), and emits sum_{j in C} x_j <= |C|-1 when the LP point violates
/// it by more than `min_violation`. With `lift` set, variables outside the
/// cover get exact sequentially-lifted coefficients (computed by a
/// profit-space knapsack DP over the cover + previously lifted items), which
/// strengthens the cut without ever cutting an integer point of the row.
[[nodiscard]] std::vector<Cut> generate_cover_cuts(const lp::Model& model,
                                                   const std::vector<double>& x,
                                                   double min_violation = 1e-4,
                                                   bool lift = true);

/// Greedily grows cliques in `conflicts` around fractional binaries (largest
/// LP value first) and emits sum_{j in clique} x_j <= 1 when violated. Cuts
/// are valid for any point satisfying the pairwise conflicts, i.e. globally.
[[nodiscard]] std::vector<Cut> generate_clique_cuts(const lp::Model& model,
                                                    const std::vector<double>& x,
                                                    const ConflictGraph& conflicts,
                                                    double min_violation = 1e-4,
                                                    int max_cuts = 32);

/// Mixed-integer-rounding cuts on single <= rows over positive binary
/// coefficients (the staircase budget rows). For a row sum a_j x_j <= b and a
/// divisor d drawn from the row's own distinct coefficients, the MIR
/// inequality sum (floor(a_j/d) + (frac(a_j/d)-f0)^+ / (1-f0)) x_j <=
/// floor(b/d) with f0 = frac(b/d) is valid for all nonnegative-integer
/// feasible points of the row, hence globally. This is the separator that
/// closes the symmetric budget plateau: near-equal analysis costs make the
/// LP spread sum a_j x_j right up to b, and rounding by d = max cost yields
/// the cardinality bound sum x_j <= floor(b/d) that branching alone cannot
/// infer. Emits at most one (best-violation) cut per row.
[[nodiscard]] std::vector<Cut> generate_mir_cuts(const lp::Model& model,
                                                 const std::vector<double>& x,
                                                 double min_violation = 1e-4,
                                                 int max_cuts = 32);

/// Gomory mixed-integer cuts from the optimal simplex tableau. `basis` must
/// be the optimal basis of `model` at point `x` (structural + slack space as
/// produced by the engine); `factor_hint`, when given and row-compatible, is
/// loaded instead of refactorizing. Each candidate row (an integer structural
/// variable basic at a fractional value) costs exactly one BTRAN; the
/// resulting cut is substituted back into structural space and discarded on
/// any numerical doubt (basic-variable residue in the tableau row, extreme
/// dynamic range, unbounded columns under small-coefficient cleanup).
/// `btrans`, when non-null, accumulates the number of BTRAN calls spent.
[[nodiscard]] std::vector<Cut> generate_gomory_cuts(const lp::Model& model,
                                                    const std::vector<double>& x,
                                                    const lp::Basis& basis,
                                                    const lp::Factorization* factor_hint,
                                                    int max_cuts = 16,
                                                    double min_violation = 1e-4,
                                                    long* btrans = nullptr);

}  // namespace insched::mip
