#pragma once

// Cutting planes that need no simplex-tableau access:
// knapsack cover cuts for <= rows over binary variables.

#include <vector>

#include "insched/lp/model.hpp"

namespace insched::mip {

struct Cut {
  lp::RowType type = lp::RowType::kLe;
  double rhs = 0.0;
  std::vector<lp::RowEntry> entries;
  double violation = 0.0;  ///< amount by which the LP point violates the cut
};

/// Scans every <= row whose live entries are all binary columns with positive
/// coefficients, finds a minimal cover C (sum of coefficients over C exceeds
/// the rhs), and emits sum_{j in C} x_j <= |C|-1 when the LP point violates
/// it by more than `min_violation`.
[[nodiscard]] std::vector<Cut> generate_cover_cuts(const lp::Model& model,
                                                   const std::vector<double>& x,
                                                   double min_violation = 1e-4);

}  // namespace insched::mip
