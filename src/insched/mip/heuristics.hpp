#pragma once

// Primal heuristics for the MIP solver: they try to turn a fractional LP
// point into an integer-feasible incumbent quickly, which tightens pruning.

#include <optional>
#include <vector>

#include "insched/lp/model.hpp"
#include "insched/lp/simplex.hpp"

namespace insched::mip {

/// Fix-and-solve rounding: round every integer column of `lp_point` to the
/// nearest integer within its bounds, fix those columns, and re-solve the LP
/// for the continuous ones. Returns the full point when feasible.
[[nodiscard]] std::optional<std::vector<double>> round_and_fix(
    const lp::Model& model, const std::vector<double>& lp_point,
    const lp::SimplexOptions& lp_options, double int_tol);

/// Iterative diving: repeatedly fix the least-fractional integer variable to
/// its nearest integer and re-solve, up to `max_depth` re-solves. Cheaper to
/// succeed than plain rounding on tightly coupled models.
[[nodiscard]] std::optional<std::vector<double>> dive(
    const lp::Model& model, const std::vector<double>& lp_point,
    const lp::SimplexOptions& lp_options, double int_tol, int max_depth = 64);

/// Greedy 0->1 polish of an integer-feasible point: flips on, in descending
/// objective-gain order, every binary whose activation keeps all row
/// activities feasible (continuous columns keep their current values). Pure
/// activity arithmetic, no LP solve. Fixes the classic dive failure mode on
/// budget-constrained schedules — the dive strands one affordable analysis
/// step behind an already-rounded window — and returns the number of flips.
int greedy_fill(const lp::Model& model, std::vector<double>* x);

}  // namespace insched::mip
