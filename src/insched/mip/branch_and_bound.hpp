#pragma once

// Branch-and-bound MIP solver on top of the simplex LP engine. Replaces the
// GAMS + CPLEX 12.6.1 stack the paper used for the in-situ scheduling MILPs.
//
// Features: best-bound parallel tree search over a shared node pool,
// warm-started dual-simplex node re-solves (parent basis copy-on-branch with
// an LRU of factorizations, cold primal fallback on numerical failure),
// reliability branching (pseudo-costs initialized by bounded strong-branch
// dual probes) with cross-thread pseudo-cost sharing, fix-and-solve rounding
// heuristic, probing presolve, a root cutting loop (lifted knapsack covers,
// GUB/clique cuts from the conflict graph, Gomory mixed-integer cuts off the
// LU tableau) feeding a shared cut pool, in-tree separation with
// cut-and-branch restarts, optional presolve, and a deterministic mode whose
// search tree — and hence incumbent — is bit-identical across thread counts,
// cuts included. Proves optimality (the schedule experiments rely on exact
// optima, not approximations).

#include <cstddef>
#include <string>
#include <vector>

#include "insched/lp/model.hpp"
#include "insched/lp/simplex.hpp"

namespace insched::mip {

enum class Branching {
  kMostFractional,
  kPseudoCost,
  /// Pseudo-costs whose per-column estimates are initialized by bounded
  /// strong-branching dual-simplex probes until the column has been observed
  /// `MipOptions::reliability` times on each side.
  kReliability,
};

/// Why the search stopped (orthogonal to `MipResult::status`, which keeps
/// the coarse LP-style status for backward compatibility).
enum class MipTermination {
  kProvedOptimal,    ///< tree exhausted with an incumbent
  kProvedInfeasible, ///< tree exhausted without an incumbent
  kNodeLimit,        ///< max_nodes hit; best_bound/gap() reflect the open tree
  kTimeLimit,        ///< time_limit_s hit; best_bound/gap() reflect the open tree
  kWorkLimit,        ///< max_lp_iterations hit; best_bound/gap() reflect the open tree
  kUnbounded,        ///< LP relaxation unbounded
  kNumericalFailure, ///< root relaxation could not be solved
};

[[nodiscard]] const char* to_string(MipTermination termination) noexcept;

struct MipOptions {
  double int_tol = 1e-6;        ///< integrality tolerance
  double gap_abs = 1e-6;        ///< terminate when bound-incumbent gap below this
  double gap_rel = 1e-9;
  long max_nodes = 500000;
  /// Wall-clock limit. A non-positive limit expires right after the root LP
  /// and its heuristic, so the result is a deterministic kTimeLimit
  /// truncation (usually with the root-heuristic incumbent), never a crash.
  /// `scheduler::solve_schedule` additionally short-circuits a non-positive
  /// budget before building the MILP at all and degrades to its greedy
  /// fallback (docs/ROBUSTNESS.md).
  double time_limit_s = 120.0;
  /// Deterministic work limit: total simplex iterations across every LP in
  /// the search (0 = unlimited). Unlike time_limit_s this truncates at the
  /// same tree point on every machine; the result reports kWorkLimit with
  /// the usual certified best_bound/gap.
  long max_lp_iterations = 0;
  Branching branching = Branching::kReliability;
  bool use_presolve = true;
  /// Probing presolve over the binary variables before the root LP: fixes
  /// and aggregates columns, records conflict implications for the clique
  /// separator, and tightens row coefficients (see mip/probing.hpp).
  bool use_probing = true;
  bool use_rounding_heuristic = true;
  bool use_cover_cuts = true;
  /// Exact sequential lifting of cover cuts (profit-space DP).
  bool lift_cover_cuts = true;
  /// GUB/clique cuts from interval windows + probing conflict edges.
  bool use_clique_cuts = true;
  /// Gomory mixed-integer cuts from the root LU tableau (root-only: the
  /// slack substitution bakes in the current column bounds).
  bool use_gomory_cuts = true;
  /// Mixed-integer-rounding cuts on binary <= rows (budget rows): rounding
  /// by a row coefficient yields the cardinality bound that closes the
  /// near-equal-cost plateau. Globally valid, so also separated in-tree.
  bool use_mir_cuts = true;
  int max_cut_rounds = 4;
  /// Cuts appended to the model per root separation round (violation-ranked,
  /// parallelism-filtered pool selection).
  int max_root_cuts_per_round = 64;
  int max_gomory_cuts_per_round = 16;
  /// Minimum normalized violation for a pool cut to be selected.
  double cut_min_violation = 1e-4;
  /// Selection skips a cut whose cosine against an already selected one
  /// reaches this value.
  double cut_max_parallel = 0.95;
  /// Selection rounds a pooled cut survives unselected before aging out.
  int cut_max_age = 4;
  /// Hard cap on pooled (unapplied) cuts; 0 = unbounded. At capacity the
  /// pool evicts its stalest entry (highest age, oldest id) per new offer,
  /// bounding pool memory on cut-heavy models.
  int cut_pool_capacity = 0;
  /// In-tree separation: shallow nodes also run the (globally valid) cover
  /// and clique separators into the shared pool; when enough fresh cuts
  /// accumulate early, the tree is restarted with the cuts appended to the
  /// model (cut-and-branch). Node workspaces are bound to a fixed row set,
  /// so a restart is the only way tree cuts can enter the node LPs.
  bool in_tree_cuts = true;
  int cut_node_depth = 8;        ///< separate at nodes no deeper than this
  int max_tree_restarts = 2;
  long restart_node_budget = 2048;  ///< no restarts after this many nodes
  int min_restart_cuts = 8;         ///< pooled fresh cuts needed to restart
  /// Reliability branching: observations per side before a column's
  /// pseudo-cost is trusted without probing.
  int reliability = 4;
  int strong_branch_candidates = 8;   ///< probed columns per node (2 LPs each)
  int strong_branch_iterations = 100; ///< dual pivot cap per probe
  int strong_branch_depth = 16;       ///< probe only at nodes this shallow

  /// Worker threads for the tree search; 0 = insched::thread_count().
  /// Requests beyond the machine's hardware concurrency are clamped (extra
  /// workers on an oversubscribed core are pure scheduling overhead for the
  /// sub-millisecond node LPs solved here) unless `oversubscribe` is set.
  int threads = 1;
  /// Allow more workers than hardware threads. Off by default; the
  /// concurrency tests enable it so the multi-worker code paths are
  /// exercised even on single-core CI machines.
  bool oversubscribe = false;
  /// Synchronous wave-parallel search: node selection, incumbent updates,
  /// branching, and pseudo-costs are applied in node-id order on the
  /// coordinating thread while only the node LP solves run in parallel, so
  /// the search tree (and the incumbent, bit for bit) is identical for any
  /// thread count. Costs some parallel efficiency; node/time limits may
  /// still truncate at a thread-dependent point when they fire.
  bool deterministic = false;
  /// Nodes solved per synchronization wave in deterministic mode (fixed, so
  /// the tree does not depend on `threads`).
  int wave_size = 16;
  /// Re-solve node LPs with the dual simplex warm-started from the parent
  /// basis; falls back to the cold primal path on numerical failure.
  bool warm_start = true;
  /// Capacity of the LRU cache of basis factorizations (async search).
  int factor_cache_size = 32;
  /// Deterministic mode pins the parent factorization in the node itself
  /// (no shared cache) when the model has at most this many rows. With the
  /// sparse LU + eta snapshot a pinned factor costs O(nnz) instead of the
  /// former dense O(rows^2), so the cutoff is far higher than the dense-era
  /// 256.
  int pin_factor_rows = 4096;
  /// Worker-local pseudo-cost deltas merge into the shared table every this
  /// many processed nodes.
  int pc_merge_interval = 32;

  /// Fault-injection spec ("hook:N[:count][,...]", see
  /// support/fault_inject.hpp) armed at solve_mip entry. Empty = none; used
  /// by the resilience tests to exercise the recovery ladder
  /// deterministically.
  std::string fault_spec;

  lp::SimplexOptions lp;
};

/// Per-phase search counters surfaced for benchmarks and tuning.
struct MipCounters {
  long warm_solves = 0;      ///< node LPs finished by the warm dual path
  long cold_solves = 0;      ///< node LPs solved from a cold primal start
  long warm_failures = 0;    ///< warm attempts that fell back to cold
  long steals = 0;           ///< nodes popped by a thread that did not create them
  long factor_hits = 0;      ///< LRU factorization cache hits
  long factor_misses = 0;    ///< warm solves that had to refactorize
  long pc_merges = 0;        ///< pseudo-cost table synchronizations
  long heur_warm = 0;        ///< rounding-heuristic LPs solved warm
  long heur_warm_failed = 0; ///< warm heuristic re-solves that found nothing

  // Cutting-plane engine (root rounds + in-tree separation via the pool).
  long cuts_separated = 0;   ///< cuts offered to the pool by all separators
  long cuts_applied = 0;     ///< cuts selected out of the pool
  long cuts_aged = 0;        ///< pooled cuts dropped by aging
  long cuts_duplicate = 0;   ///< offers rejected as already seen
  long cuts_evicted = 0;     ///< pooled cuts evicted by the capacity cap
  long tree_restarts = 0;    ///< cut-and-branch restarts performed

  // Numerical-recovery ladder, summed over every LP solve in the search
  // (lp::SimplexResult::recovery), plus the tree-level retry rungs
  // (docs/ROBUSTNESS.md). All zero on a numerically clean run.
  long lp_recover_refactor = 0;  ///< tightened-tau refactorization retries
  long lp_recover_repair = 0;    ///< slack columns substituted into singular bases
  long lp_recover_perturb = 0;   ///< anti-cycling bound perturbations
  long lp_recover_residual = 0;  ///< A x = b drift detections
  long lp_recover_resolve = 0;   ///< in-engine re-solve restarts
  long node_retries = 0;         ///< node LPs re-solved with conservative settings
  long root_retries = 0;         ///< root LPs re-solved with conservative settings

  /// Total recovery actions across LP ladder and tree retries; nonzero with
  /// an optimal result means the resilience layer did its job.
  [[nodiscard]] long recoveries() const noexcept {
    return lp_recover_refactor + lp_recover_repair + lp_recover_perturb +
           lp_recover_residual + lp_recover_resolve + node_retries + root_retries;
  }

  // Probing presolve (filled by solve_mip, which runs probing before the
  // search object exists).
  long probing_probes = 0;      ///< 0/1 assignments propagated
  long probing_fixed = 0;       ///< columns fixed by probing
  long probing_aggregated = 0;  ///< columns substituted out (y == x, y == 1-x)
  long probing_implications = 0;///< conflict implications recorded
  long probing_tightened = 0;   ///< row coefficients tightened

  // Reliability branching.
  long strong_branch_lps = 0;   ///< bounded strong-branching dual solves

  // Basis-factorization observability, summed over every node LP solve
  // (warm, cold, and heuristic) from lp::SimplexResult::factor_stats.
  long lp_ftran = 0;             ///< FTRAN solves against the LU + eta file
  long lp_btran = 0;             ///< BTRAN solves
  long lp_refactorizations = 0;  ///< sparse LU refactorizations
  long lp_eta_pivots = 0;        ///< product-form eta updates appended
  long lp_rhs_nonzeros = 0;      ///< summed FTRAN/BTRAN input nonzeros
  long lp_rhs_dimension = 0;     ///< summed FTRAN/BTRAN input lengths
  /// Peak resident bytes of the factorization LRU cache (LU + eta format).
  std::size_t factor_cache_peak_bytes = 0;
  /// Same peak population priced as dense m x m inverses (pre-LU format).
  std::size_t factor_cache_peak_dense_bytes = 0;

  /// Average FTRAN/BTRAN right-hand-side density over the whole search.
  [[nodiscard]] double lp_rhs_density() const noexcept {
    return lp_rhs_dimension > 0 ? static_cast<double>(lp_rhs_nonzeros) /
                                      static_cast<double>(lp_rhs_dimension)
                                : 0.0;
  }
};

struct MipResult {
  lp::SolveStatus status = lp::SolveStatus::kNumericalFailure;
  MipTermination termination = MipTermination::kNumericalFailure;
  bool has_solution = false;
  double objective = 0.0;       ///< incumbent objective (model sense)
  double best_bound = 0.0;      ///< proven bound on the optimum (model sense)
  std::vector<double> x;        ///< incumbent point (integral entries rounded exactly)
  long nodes = 0;
  long lp_iterations = 0;
  int cuts_added = 0;
  int threads_used = 1;
  MipCounters counters;
  double solve_seconds = 0.0;

  [[nodiscard]] bool optimal() const noexcept {
    return status == lp::SolveStatus::kOptimal && has_solution;
  }
  /// True when the search stopped on a node/time/work limit (never reported
  /// as optimal even when an incumbent exists).
  [[nodiscard]] bool truncated() const noexcept {
    return termination == MipTermination::kNodeLimit ||
           termination == MipTermination::kTimeLimit ||
           termination == MipTermination::kWorkLimit;
  }
  /// Absolute gap between incumbent and proven bound: exactly 0 on a proved
  /// optimum, +inf without an incumbent.
  [[nodiscard]] double gap() const noexcept;
  /// Relative gap: gap() / max(1, |objective|).
  [[nodiscard]] double gap_rel() const noexcept;
};

[[nodiscard]] MipResult solve_mip(const lp::Model& model, const MipOptions& options = {});

}  // namespace insched::mip
