#pragma once

// Branch-and-bound MIP solver on top of the simplex LP engine. Replaces the
// GAMS + CPLEX 12.6.1 stack the paper used for the in-situ scheduling MILPs.
//
// Features: best-bound node selection with an initial depth-first dive,
// most-fractional or pseudo-cost branching, fix-and-solve rounding heuristic,
// root-node knapsack cover cuts, optional presolve. Proves optimality (the
// schedule experiments rely on exact optima, not approximations).

#include <vector>

#include "insched/lp/model.hpp"
#include "insched/lp/simplex.hpp"

namespace insched::mip {

enum class Branching { kMostFractional, kPseudoCost };

struct MipOptions {
  double int_tol = 1e-6;        ///< integrality tolerance
  double gap_abs = 1e-6;        ///< terminate when bound-incumbent gap below this
  double gap_rel = 1e-9;
  long max_nodes = 500000;
  double time_limit_s = 120.0;
  Branching branching = Branching::kPseudoCost;
  bool use_presolve = true;
  bool use_rounding_heuristic = true;
  bool use_cover_cuts = true;
  int max_cut_rounds = 4;
  lp::SimplexOptions lp;
};

struct MipResult {
  lp::SolveStatus status = lp::SolveStatus::kNumericalFailure;
  bool has_solution = false;
  double objective = 0.0;       ///< incumbent objective (model sense)
  double best_bound = 0.0;      ///< proven bound on the optimum (model sense)
  std::vector<double> x;        ///< incumbent point (integral entries rounded exactly)
  long nodes = 0;
  long lp_iterations = 0;
  int cuts_added = 0;
  double solve_seconds = 0.0;

  [[nodiscard]] bool optimal() const noexcept {
    return status == lp::SolveStatus::kOptimal && has_solution;
  }
  /// Absolute gap between incumbent and bound.
  [[nodiscard]] double gap() const noexcept;
};

[[nodiscard]] MipResult solve_mip(const lp::Model& model, const MipOptions& options = {});

}  // namespace insched::mip
