#pragma once

// Branch-and-bound MIP solver on top of the simplex LP engine. Replaces the
// GAMS + CPLEX 12.6.1 stack the paper used for the in-situ scheduling MILPs.
//
// Features: best-bound parallel tree search over a shared node pool,
// warm-started dual-simplex node re-solves (parent basis copy-on-branch with
// an LRU of factorizations, cold primal fallback on numerical failure),
// most-fractional or pseudo-cost branching with cross-thread pseudo-cost
// sharing, fix-and-solve rounding heuristic, root-node knapsack cover cuts,
// optional presolve, and a deterministic mode whose search tree — and hence
// incumbent — is bit-identical across thread counts. Proves optimality (the
// schedule experiments rely on exact optima, not approximations).

#include <cstddef>
#include <vector>

#include "insched/lp/model.hpp"
#include "insched/lp/simplex.hpp"

namespace insched::mip {

enum class Branching { kMostFractional, kPseudoCost };

/// Why the search stopped (orthogonal to `MipResult::status`, which keeps
/// the coarse LP-style status for backward compatibility).
enum class MipTermination {
  kProvedOptimal,    ///< tree exhausted with an incumbent
  kProvedInfeasible, ///< tree exhausted without an incumbent
  kNodeLimit,        ///< max_nodes hit; best_bound/gap() reflect the open tree
  kTimeLimit,        ///< time_limit_s hit; best_bound/gap() reflect the open tree
  kUnbounded,        ///< LP relaxation unbounded
  kNumericalFailure, ///< root relaxation could not be solved
};

[[nodiscard]] const char* to_string(MipTermination termination) noexcept;

struct MipOptions {
  double int_tol = 1e-6;        ///< integrality tolerance
  double gap_abs = 1e-6;        ///< terminate when bound-incumbent gap below this
  double gap_rel = 1e-9;
  long max_nodes = 500000;
  double time_limit_s = 120.0;
  Branching branching = Branching::kPseudoCost;
  bool use_presolve = true;
  bool use_rounding_heuristic = true;
  bool use_cover_cuts = true;
  int max_cut_rounds = 4;

  /// Worker threads for the tree search; 0 = insched::thread_count().
  /// Requests beyond the machine's hardware concurrency are clamped (extra
  /// workers on an oversubscribed core are pure scheduling overhead for the
  /// sub-millisecond node LPs solved here) unless `oversubscribe` is set.
  int threads = 1;
  /// Allow more workers than hardware threads. Off by default; the
  /// concurrency tests enable it so the multi-worker code paths are
  /// exercised even on single-core CI machines.
  bool oversubscribe = false;
  /// Synchronous wave-parallel search: node selection, incumbent updates,
  /// branching, and pseudo-costs are applied in node-id order on the
  /// coordinating thread while only the node LP solves run in parallel, so
  /// the search tree (and the incumbent, bit for bit) is identical for any
  /// thread count. Costs some parallel efficiency; node/time limits may
  /// still truncate at a thread-dependent point when they fire.
  bool deterministic = false;
  /// Nodes solved per synchronization wave in deterministic mode (fixed, so
  /// the tree does not depend on `threads`).
  int wave_size = 16;
  /// Re-solve node LPs with the dual simplex warm-started from the parent
  /// basis; falls back to the cold primal path on numerical failure.
  bool warm_start = true;
  /// Capacity of the LRU cache of basis factorizations (async search).
  int factor_cache_size = 32;
  /// Deterministic mode pins the parent factorization in the node itself
  /// (no shared cache) when the model has at most this many rows. With the
  /// sparse LU + eta snapshot a pinned factor costs O(nnz) instead of the
  /// former dense O(rows^2), so the cutoff is far higher than the dense-era
  /// 256.
  int pin_factor_rows = 4096;
  /// Worker-local pseudo-cost deltas merge into the shared table every this
  /// many processed nodes.
  int pc_merge_interval = 32;

  lp::SimplexOptions lp;
};

/// Per-phase search counters surfaced for benchmarks and tuning.
struct MipCounters {
  long warm_solves = 0;      ///< node LPs finished by the warm dual path
  long cold_solves = 0;      ///< node LPs solved from a cold primal start
  long warm_failures = 0;    ///< warm attempts that fell back to cold
  long steals = 0;           ///< nodes popped by a thread that did not create them
  long factor_hits = 0;      ///< LRU factorization cache hits
  long factor_misses = 0;    ///< warm solves that had to refactorize
  long pc_merges = 0;        ///< pseudo-cost table synchronizations
  long heur_warm = 0;        ///< rounding-heuristic LPs solved warm
  long heur_warm_failed = 0; ///< warm heuristic re-solves that found nothing

  // Basis-factorization observability, summed over every node LP solve
  // (warm, cold, and heuristic) from lp::SimplexResult::factor_stats.
  long lp_ftran = 0;             ///< FTRAN solves against the LU + eta file
  long lp_btran = 0;             ///< BTRAN solves
  long lp_refactorizations = 0;  ///< sparse LU refactorizations
  long lp_eta_pivots = 0;        ///< product-form eta updates appended
  long lp_rhs_nonzeros = 0;      ///< summed FTRAN/BTRAN input nonzeros
  long lp_rhs_dimension = 0;     ///< summed FTRAN/BTRAN input lengths
  /// Peak resident bytes of the factorization LRU cache (LU + eta format).
  std::size_t factor_cache_peak_bytes = 0;
  /// Same peak population priced as dense m x m inverses (pre-LU format).
  std::size_t factor_cache_peak_dense_bytes = 0;

  /// Average FTRAN/BTRAN right-hand-side density over the whole search.
  [[nodiscard]] double lp_rhs_density() const noexcept {
    return lp_rhs_dimension > 0 ? static_cast<double>(lp_rhs_nonzeros) /
                                      static_cast<double>(lp_rhs_dimension)
                                : 0.0;
  }
};

struct MipResult {
  lp::SolveStatus status = lp::SolveStatus::kNumericalFailure;
  MipTermination termination = MipTermination::kNumericalFailure;
  bool has_solution = false;
  double objective = 0.0;       ///< incumbent objective (model sense)
  double best_bound = 0.0;      ///< proven bound on the optimum (model sense)
  std::vector<double> x;        ///< incumbent point (integral entries rounded exactly)
  long nodes = 0;
  long lp_iterations = 0;
  int cuts_added = 0;
  int threads_used = 1;
  MipCounters counters;
  double solve_seconds = 0.0;

  [[nodiscard]] bool optimal() const noexcept {
    return status == lp::SolveStatus::kOptimal && has_solution;
  }
  /// True when the search stopped on a node/time limit (never reported as
  /// optimal even when an incumbent exists).
  [[nodiscard]] bool truncated() const noexcept {
    return termination == MipTermination::kNodeLimit ||
           termination == MipTermination::kTimeLimit;
  }
  /// Absolute gap between incumbent and proven bound: exactly 0 on a proved
  /// optimum, +inf without an incumbent.
  [[nodiscard]] double gap() const noexcept;
  /// Relative gap: gap() / max(1, |objective|).
  [[nodiscard]] double gap_rel() const noexcept;
};

[[nodiscard]] MipResult solve_mip(const lp::Model& model, const MipOptions& options = {});

}  // namespace insched::mip
