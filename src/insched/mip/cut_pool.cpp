#include "insched/mip/cut_pool.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>

namespace insched::mip {
namespace {

/// FNV-1a over the rounded cut data. Coefficients are already normalized by
/// the separators (integers for covers/cliques, max-abs 1 for GMI), so a
/// fixed 1e-9 quantum distinguishes genuinely different cuts.
std::uint64_t cut_hash(const Cut& cut) {
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  mix(static_cast<std::uint64_t>(cut.type));
  mix(static_cast<std::uint64_t>(std::llround(cut.rhs * 1e9)));
  for (const lp::RowEntry& e : cut.entries) {
    mix(static_cast<std::uint64_t>(e.column));
    mix(static_cast<std::uint64_t>(std::llround(e.coeff * 1e9)));
  }
  return h;
}

double entry_norm(const Cut& cut) {
  double s = 0.0;
  for (const lp::RowEntry& e : cut.entries) s += e.coeff * e.coeff;
  return std::sqrt(std::max(s, 1e-12));
}

/// Cosine between two sorted sparse entry lists.
double cosine(const Cut& a, double na, const Cut& b, double nb) {
  double dot = 0.0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.entries.size() && j < b.entries.size()) {
    if (a.entries[i].column < b.entries[j].column) {
      ++i;
    } else if (a.entries[i].column > b.entries[j].column) {
      ++j;
    } else {
      dot += a.entries[i].coeff * b.entries[j].coeff;
      ++i;
      ++j;
    }
  }
  return dot / (na * nb);
}

}  // namespace

bool CutPool::add(Cut cut) {
  if (cut.entries.empty()) return false;
  const std::uint64_t h = cut_hash(cut);
  MutexLock lock(mu_);
  ++counters_.separated;
  if (!seen_.insert(h).second) {
    ++counters_.duplicates;
    return false;
  }
  if (capacity_ > 0 && static_cast<int>(entries_.size()) >= capacity_) {
    // Evict the stalest pooled cut (highest age, oldest id on ties): a cut
    // that survived many selection rounds unselected is the least likely to
    // ever be applied, and the fresh offer is violated *now*.
    std::size_t victim = 0;
    for (std::size_t k = 1; k < entries_.size(); ++k) {
      const Entry& a = entries_[k];
      const Entry& b = entries_[victim];
      if (a.age > b.age || (a.age == b.age && a.id < b.id)) victim = k;
    }
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(victim));
    ++counters_.evicted;
  }
  Entry e;
  e.norm = entry_norm(cut);
  e.cut = std::move(cut);
  e.id = next_id_++;
  entries_.push_back(std::move(e));
  return true;
}

int CutPool::add_all(std::vector<Cut> cuts) {
  int fresh = 0;
  for (Cut& c : cuts)
    if (add(std::move(c))) ++fresh;
  return fresh;
}

std::vector<Cut> CutPool::select(const std::vector<double>& x, int max_cuts,
                                 double min_violation, double max_parallel) {
  MutexLock lock(mu_);
  struct Scored {
    std::size_t index;
    double score;
    long id;
  };
  std::vector<Scored> scored;
  scored.reserve(entries_.size());
  for (std::size_t k = 0; k < entries_.size(); ++k) {
    const Cut& c = entries_[k].cut;
    double lhs = 0.0;
    for (const lp::RowEntry& e : c.entries) {
      if (e.column < 0 || e.column >= static_cast<int>(x.size())) {
        lhs = std::numeric_limits<double>::quiet_NaN();
        break;
      }
      lhs += e.coeff * x[static_cast<std::size_t>(e.column)];
    }
    const double raw = c.type == lp::RowType::kLe ? lhs - c.rhs : c.rhs - lhs;
    const double score = raw / entries_[k].norm;
    if (std::isfinite(score) && score >= min_violation)
      scored.push_back(Scored{k, score, entries_[k].id});
  }
  std::sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
    return a.score != b.score ? a.score > b.score : a.id < b.id;
  });

  std::vector<Cut> out;
  std::vector<std::size_t> taken;
  for (const Scored& s : scored) {
    if (static_cast<int>(out.size()) >= max_cuts) break;
    const Entry& cand = entries_[s.index];
    bool parallel = false;
    for (const std::size_t t : taken) {
      const Entry& sel = entries_[t];
      if (std::fabs(cosine(cand.cut, cand.norm, sel.cut, sel.norm)) >= max_parallel) {
        parallel = true;
        break;
      }
    }
    if (parallel) continue;
    taken.push_back(s.index);
    out.push_back(cand.cut);
  }
  counters_.applied += static_cast<long>(out.size());

  // Remove the selected cuts, age the rest.
  std::vector<char> remove(entries_.size(), 0);
  for (const std::size_t t : taken) remove[t] = 1;
  std::vector<Entry> kept;
  kept.reserve(entries_.size() - taken.size());
  for (std::size_t k = 0; k < entries_.size(); ++k) {
    if (remove[k]) continue;
    Entry& e = entries_[k];
    if (++e.age > max_age_) {
      ++counters_.aged_out;
      continue;
    }
    kept.push_back(std::move(e));
  }
  entries_ = std::move(kept);
  return out;
}

int CutPool::size() const {
  MutexLock lock(mu_);
  return static_cast<int>(entries_.size());
}

CutPoolCounters CutPool::counters() const {
  MutexLock lock(mu_);
  return counters_;
}

}  // namespace insched::mip
