#pragma once

// Shared-state building blocks for the parallel branch-and-bound search:
//
//  * SearchNode      — one open subproblem (bound overrides + warm-start
//                      basis inherited copy-on-branch from the parent).
//  * NodePool        — thread-safe best-bound node pool with idle blocking
//                      and global-termination detection. Workers that pop a
//                      node another thread produced are counted as steals.
//  * FactorCache     — small LRU of basis factorizations keyed by node id,
//                      so hot subtrees skip refactorization while memory
//                      stays bounded.
//  * Incumbent       — atomic bound for lock-free pruning reads plus a
//                      mutex-guarded solution swap; ties break to the
//                      smaller node id so deterministic mode is reproducible
//                      across thread counts.
//  * SharedPseudoCosts — global pseudo-cost table; workers accumulate local
//                      deltas and merge on a fixed cadence.

#include <atomic>
#include <cstdint>
#include <limits>
#include <list>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "insched/lp/basis.hpp"
#include "insched/support/thread_annotations.hpp"

namespace insched::mip {

struct SearchNode {
  // Bound overrides relative to the base model, one per integer column
  // touched on the path from the root.
  std::vector<lp::BoundOverride> bounds;
  double parent_bound = 0.0;  ///< LP bound inherited from the parent (internal minimize)
  int depth = 0;
  long id = 0;
  long parent_id = -1;        ///< FactorCache key for the warm-start hint
  int producer = 0;           ///< worker tid that created the node
  double branch_frac = 0.0;   ///< fractionality of the parent's branch variable
  std::shared_ptr<const lp::Basis> warm_basis;             ///< parent's optimal basis
  std::shared_ptr<const lp::Factorization> pinned_factor;  ///< deterministic mode only
};

using NodePtr = std::shared_ptr<SearchNode>;

/// Deterministic best-bound order: smaller bound first, then deeper (cheap
/// dive behaviour), then smaller id.
struct NodeOrder {
  bool operator()(const NodePtr& a, const NodePtr& b) const noexcept {
    if (a->parent_bound != b->parent_bound) return a->parent_bound < b->parent_bound;
    if (a->depth != b->depth) return a->depth > b->depth;
    return a->id < b->id;
  }
};

class NodePool {
 public:
  explicit NodePool(int workers);

  void push(NodePtr node, int tid);

  /// Blocks until a node is available; returns nullptr on global
  /// termination (stopped, or empty with no worker mid-node). The returned
  /// node counts as in-flight until task_done(tid).
  [[nodiscard]] NodePtr pop(int tid);

  /// Marks the node handed out by the last pop(tid) as retired.
  void task_done(int tid);

  /// Aborts the search: blocked and future pops return nullptr.
  void stop();
  [[nodiscard]] bool stopped() const noexcept { return stop_.load(std::memory_order_relaxed); }

  /// Smallest bound among queued + in-flight nodes (internal minimize
  /// convention); +inf when none. Exact only after the search quiesced.
  [[nodiscard]] double best_open_bound() const;

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] long steals() const noexcept { return steals_.load(std::memory_order_relaxed); }

 private:
  mutable Mutex mu_;
  CondVar cv_;
  std::multiset<NodePtr, NodeOrder> open_ INSCHED_GUARDED_BY(mu_);
  // Per-tid bound of the node being processed.
  std::vector<double> inflight_ INSCHED_GUARDED_BY(mu_);
  int active_ INSCHED_GUARDED_BY(mu_) = 0;
  std::atomic<bool> stop_{false};
  std::atomic<long> steals_{0};
};

class FactorCache {
 public:
  explicit FactorCache(std::size_t capacity);

  void put(long id, std::shared_ptr<const lp::Factorization> factor);
  [[nodiscard]] std::shared_ptr<const lp::Factorization> get(long id);
  [[nodiscard]] long hits() const noexcept { return hits_.load(std::memory_order_relaxed); }
  [[nodiscard]] long misses() const noexcept { return misses_.load(std::memory_order_relaxed); }
  /// Peak resident size of the cached LU+eta snapshots (shared cores counted
  /// once per entry, an overcount when siblings share a core).
  [[nodiscard]] std::size_t peak_bytes() const noexcept {
    return peak_bytes_.load(std::memory_order_relaxed);
  }
  /// What the same peak population would have cost as dense m x m inverses —
  /// the pre-LU snapshot format. The sparse/dense ratio is the memory win.
  [[nodiscard]] std::size_t peak_dense_bytes() const noexcept {
    return peak_dense_bytes_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::shared_ptr<const lp::Factorization> factor;
    std::list<long>::iterator pos;
    std::size_t bytes = 0;        // factor->bytes() at insertion
    std::size_t dense_bytes = 0;  // factor->dense_equivalent_bytes()
  };

  Mutex mu_;
  const std::size_t capacity_;
  std::list<long> order_ INSCHED_GUARDED_BY(mu_);  // most recent first
  std::unordered_map<long, Slot> map_ INSCHED_GUARDED_BY(mu_);
  std::size_t bytes_ INSCHED_GUARDED_BY(mu_) = 0;        // current resident total
  std::size_t dense_bytes_ INSCHED_GUARDED_BY(mu_) = 0;  // dense-equivalent counterpart
  std::atomic<long> hits_{0};
  std::atomic<long> misses_{0};
  std::atomic<std::size_t> peak_bytes_{0};
  std::atomic<std::size_t> peak_dense_bytes_{0};
};

class Incumbent {
 public:
  /// Accepts strictly better objectives; on a tie (within 1e-12) the smaller
  /// node id wins, which makes the final incumbent independent of discovery
  /// order. Returns true when the incumbent changed. `obj` is in the
  /// internal minimize convention.
  bool offer(double obj, const std::vector<double>& x, long node_id);

  /// Lock-free objective read for pruning (+inf when no incumbent yet).
  [[nodiscard]] double bound() const noexcept { return obj_.load(std::memory_order_relaxed); }
  [[nodiscard]] bool has() const noexcept {
    return obj_.load(std::memory_order_relaxed) < std::numeric_limits<double>::infinity();
  }

  /// Final snapshot; call after the search quiesced.
  [[nodiscard]] std::pair<double, std::vector<double>> snapshot() const;

 private:
  // obj_ is written only under mu_ but read lock-free by pruning; it stays a
  // bare atomic (GUARDED_BY would outlaw the lock-free bound() fast path).
  std::atomic<double> obj_{std::numeric_limits<double>::infinity()};
  mutable Mutex mu_;
  std::vector<double> x_ INSCHED_GUARDED_BY(mu_);
  long node_id_ INSCHED_GUARDED_BY(mu_) = std::numeric_limits<long>::max();
};

/// Per-column pseudo-cost statistics: average objective degradation per unit
/// of fractional distance, separately for up and down branches.
struct PseudoCostTable {
  std::vector<double> up_sum, down_sum;
  std::vector<long> up_n, down_n;

  void resize(int columns);
  void record(int column, bool up, double degradation, double frac);
  void add(const PseudoCostTable& delta);
  void clear_counts();
};

class SharedPseudoCosts {
 public:
  explicit SharedPseudoCosts(int columns);

  /// Folds `delta` into the global table and refreshes `snapshot` with the
  /// merged state; `delta` is cleared.
  void merge(PseudoCostTable* delta, PseudoCostTable* snapshot);
  [[nodiscard]] PseudoCostTable snapshot() const;
  [[nodiscard]] long merges() const noexcept { return merges_.load(std::memory_order_relaxed); }

 private:
  mutable Mutex mu_;
  PseudoCostTable global_ INSCHED_GUARDED_BY(mu_);
  std::atomic<long> merges_{0};
};

}  // namespace insched::mip
