#include "insched/mip/cuts.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace insched::mip {

std::vector<Cut> generate_cover_cuts(const lp::Model& model, const std::vector<double>& x,
                                     double min_violation) {
  std::vector<Cut> cuts;
  for (int i = 0; i < model.num_rows(); ++i) {
    const lp::Row& row = model.row(i);
    if (row.type != lp::RowType::kLe) continue;

    // Candidate knapsack: all entries binary with positive coefficients.
    bool knapsack = !row.entries.empty();
    for (const lp::RowEntry& e : row.entries) {
      const lp::Column& c = model.column(e.column);
      const bool binary_like =
          c.type != lp::VarType::kContinuous && c.lower >= -1e-12 && c.upper <= 1.0 + 1e-12;
      if (!binary_like || e.coeff <= 0.0) {
        knapsack = false;
        break;
      }
    }
    if (!knapsack || row.rhs < 0.0) continue;

    // Greedy minimal cover: add items by descending LP value until the
    // coefficient sum exceeds the rhs.
    std::vector<int> order(row.entries.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return x[static_cast<std::size_t>(row.entries[static_cast<std::size_t>(a)].column)] >
             x[static_cast<std::size_t>(row.entries[static_cast<std::size_t>(b)].column)];
    });
    double weight = 0.0;
    std::vector<int> cover;
    for (int idx : order) {
      const lp::RowEntry& e = row.entries[static_cast<std::size_t>(idx)];
      cover.push_back(e.column);
      weight += e.coeff;
      if (weight > row.rhs + 1e-9) break;
    }
    if (weight <= row.rhs + 1e-9) continue;  // row can never bind: no cover

    // Minimalize: drop items that keep the cover property, lightest first.
    std::sort(cover.begin(), cover.end(), [&](int a, int b) {
      double ca = 0.0, cb = 0.0;
      for (const lp::RowEntry& e : row.entries) {
        if (e.column == a) ca = e.coeff;
        if (e.column == b) cb = e.coeff;
      }
      return ca < cb;
    });
    for (std::size_t k = 0; k < cover.size();) {
      double ck = 0.0;
      for (const lp::RowEntry& e : row.entries)
        if (e.column == cover[k]) ck = e.coeff;
      if (weight - ck > row.rhs + 1e-9) {
        weight -= ck;
        cover.erase(cover.begin() + static_cast<std::ptrdiff_t>(k));
      } else {
        ++k;
      }
    }
    if (cover.size() < 2) continue;

    double lhs = 0.0;
    for (int col : cover) lhs += x[static_cast<std::size_t>(col)];
    const double rhs = static_cast<double>(cover.size()) - 1.0;
    const double violation = lhs - rhs;
    if (violation < min_violation) continue;

    Cut cut;
    cut.type = lp::RowType::kLe;
    cut.rhs = rhs;
    cut.violation = violation;
    cut.entries.reserve(cover.size());
    for (int col : cover) cut.entries.push_back(lp::RowEntry{col, 1.0});
    cuts.push_back(std::move(cut));
  }
  std::sort(cuts.begin(), cuts.end(),
            [](const Cut& a, const Cut& b) { return a.violation > b.violation; });
  return cuts;
}

}  // namespace insched::mip
